package sgb_test

import (
	"fmt"
	"log"

	"sgb"
)

// The paper's Figure 2: two cliques and a point overlapping both, grouped
// with each ON-OVERLAP semantics.
func ExampleGroupAll() {
	points := []sgb.Point{{1, 1}, {2, 2}, {6, 1}, {7, 2}, {4, 1.5}}
	for _, overlap := range []sgb.Overlap{sgb.JoinAny, sgb.Eliminate, sgb.FormNewGroup} {
		res, err := sgb.GroupAll(points, sgb.Options{
			Metric:    sgb.LInf,
			Eps:       3,
			Overlap:   overlap,
			Algorithm: sgb.IndexBounds,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(overlap, res.Sizes())
	}
	// Output:
	// JOIN-ANY [3 2]
	// ELIMINATE [2 2]
	// FORM-NEW-GROUP [2 2 1]
}

// DISTANCE-TO-ANY merges every group the bridging point touches.
func ExampleGroupAny() {
	points := []sgb.Point{{1, 1}, {2, 2}, {6, 1}, {7, 2}, {4, 1.5}}
	res, err := sgb.GroupAny(points, sgb.Options{
		Metric: sgb.LInf, Eps: 3, Algorithm: sgb.IndexBounds,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(res.Sizes())
	// Output:
	// [5]
}

// Streaming use: feed points one at a time, then materialize.
func ExampleNewAnyGrouper() {
	g, err := sgb.NewAnyGrouper(sgb.Options{Metric: sgb.L2, Eps: 1.5, Algorithm: sgb.IndexBounds})
	if err != nil {
		log.Fatal(err)
	}
	for _, p := range []sgb.Point{{0, 0}, {1, 0}, {2, 0}, {9, 9}} {
		if _, err := g.Add(p); err != nil {
			log.Fatal(err)
		}
	}
	res, err := g.Finish()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(len(res.Groups), "groups")
	// Output:
	// 2 groups
}

// The SQL entry point with the similarity-extended GROUP BY grammar.
func ExampleNewDB() {
	db := sgb.NewDB()
	mustExec := func(q string) {
		if _, err := db.Exec(q); err != nil {
			log.Fatal(err)
		}
	}
	mustExec("CREATE TABLE gpspoints (id INT, lat FLOAT, lon FLOAT)")
	mustExec(`INSERT INTO gpspoints VALUES
		(1, 1, 1), (2, 2, 2), (3, 6, 1), (4, 7, 2), (5, 4, 1.5)`)
	res, err := db.Query(`
		SELECT count(*) FROM gpspoints
		GROUP BY lat, lon DISTANCE-TO-ALL LINF WITHIN 3
		ON-OVERLAP ELIMINATE
		ORDER BY count(*) DESC`)
	if err != nil {
		log.Fatal(err)
	}
	for _, row := range res.Rows {
		fmt.Println("group of", row[0])
	}
	// Output:
	// group of 2
	// group of 2
}
