package engine

import (
	"context"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"reflect"
	"testing"
)

// loadGrid populates a table with ε-grid-adversarial float coordinates:
// exact multiples of eps nudged by ±ULP-scale deltas, the inputs most likely
// to expose any disagreement between the row path's per-point geom.Within
// calls and the columnar path's batch kernels.
func loadGrid(t *testing.T, db *DB, n int, dim int, eps float64, seed int64) {
	t.Helper()
	cols := "x FLOAT"
	if dim >= 2 {
		cols += ", y FLOAT"
	}
	if dim >= 3 {
		cols += ", z FLOAT"
	}
	if _, err := db.Exec(fmt.Sprintf("CREATE TABLE pts (id INT, %s)", cols)); err != nil {
		t.Fatal(err)
	}
	tab, err := db.Catalog().Get("pts")
	if err != nil {
		t.Fatal(err)
	}
	r := rand.New(rand.NewSource(seed))
	deltas := []float64{0, 0, 1e-16, -1e-16, 1e-9, -1e-9, eps / 2}
	rows := make([]Row, n)
	for i := range rows {
		row := Row{NewInt(int64(i))}
		for d := 0; d < dim; d++ {
			cell := float64(r.Intn(9) - 4)
			row = append(row, NewFloat(cell*eps+deltas[r.Intn(len(deltas))]))
		}
		rows[i] = row
	}
	if err := tab.Insert(rows...); err != nil {
		t.Fatal(err)
	}
}

// TestColumnarMatchesRowPath is the end-to-end equivalence property: every
// eligible SGB query must return bit-identical rows whether it executes on
// the tuple-free columnar fast path (the default) or the row-at-a-time path
// (SetColumnar(false)), across metrics, semantics, algorithms, ε values, and
// worker counts. Run under -race this also exercises the parallel columnar
// collection.
func TestColumnarMatchesRowPath(t *testing.T) {
	for _, dim := range []int{1, 2} {
		for _, eps := range []float64{0.25, 1.0} {
			db := NewDB()
			loadGrid(t, db, 900, dim, eps, int64(100*dim)+int64(eps*4))
			db.SetBatchSize(64) // many morsels; table > one batch enables parallel plans
			group := "x"
			if dim == 2 {
				group = "x, y"
			}
			var queries []string
			for _, m := range []string{"L2", "LINF", "L1"} {
				queries = append(queries,
					fmt.Sprintf("SELECT %s, count(*) FROM pts GROUP BY %s DISTANCE-TO-ANY %s WITHIN %g", group, group, m, eps),
					fmt.Sprintf("SELECT %s, count(*) FROM pts WHERE id < 700 GROUP BY %s DISTANCE-TO-ANY %s WITHIN %g", group, group, m, eps),
					fmt.Sprintf("SELECT %s, count(*) FROM pts GROUP BY %s DISTANCE-TO-ALL %s WITHIN %g ON-OVERLAP JOIN-ANY", group, group, m, eps),
					fmt.Sprintf("SELECT %s, count(*) FROM pts GROUP BY %s DISTANCE-TO-ALL %s WITHIN %g ON-OVERLAP ELIMINATE", group, group, m, eps),
					fmt.Sprintf("SELECT %s, count(*) FROM pts GROUP BY %s DISTANCE-TO-ALL %s WITHIN %g ON-OVERLAP FORM-NEW-GROUP", group, group, m, eps),
				)
			}
			for _, q := range queries {
				for _, workers := range []int{1, 2, 4} {
					db.SetParallelism(workers)
					db.SetColumnar(false)
					want, err := db.Query(q)
					if err != nil {
						t.Fatalf("%s (row, %d workers): %v", q, workers, err)
					}
					db.SetColumnar(true)
					got, err := db.Query(q)
					if err != nil {
						t.Fatalf("%s (columnar, %d workers): %v", q, workers, err)
					}
					if !reflect.DeepEqual(rowStrings(got), rowStrings(want)) {
						t.Fatalf("%s with %d workers: columnar path differs from row path\ncolumnar: %v\nrow:      %v",
							q, workers, rowStrings(got), rowStrings(want))
					}
				}
			}
		}
	}
}

// TestColumnarPlanGate pins the fast-path eligibility decision: the plans
// that must take it take it, and every disqualifier (session toggle,
// non-count(*) aggregate, computed grouping expression, non-FLOAT grouping
// column, projection in the pipeline) falls back to the row path.
func TestColumnarPlanGate(t *testing.T) {
	db := NewDB()
	loadNums(t, db, 100, 17)
	qc := newQueryCtx(context.Background(), Limits{})

	plan := func(q string, noColumnar bool) *sgbAggOp {
		t.Helper()
		stmt, err := Parse(q)
		if err != nil {
			t.Fatalf("%s: %v", q, err)
		}
		qc.noColumnar = noColumnar
		pc := &planContext{db: db, qc: qc}
		if _, err := pc.planSelect(stmt.(*SelectStmt)); err != nil {
			t.Fatalf("%s: %v", q, err)
		}
		if len(pc.sgbOps) != 1 {
			t.Fatalf("%s: %d SGB operators, want 1", q, len(pc.sgbOps))
		}
		return pc.sgbOps[0]
	}

	eligible := []string{
		"SELECT x, y, count(*) FROM nums GROUP BY x, y DISTANCE-TO-ANY L2 WITHIN 3",
		"SELECT x, count(*) FROM nums WHERE v > 100 GROUP BY x DISTANCE-TO-ANY L1 WITHIN 2",
		"SELECT x, y, count(*) FROM nums GROUP BY x, y DISTANCE-TO-ALL LINF WITHIN 3 ON-OVERLAP ELIMINATE",
	}
	for _, q := range eligible {
		if op := plan(q, false); op.colPlan == nil {
			t.Errorf("%s: expected the columnar fast path, got row path", q)
		}
		if op := plan(q, true); op.colPlan != nil {
			t.Errorf("%s: SetColumnar(false) must force the row path", q)
		}
	}
	rowPath := []string{
		// min(id) needs tuple access.
		"SELECT count(*), min(id) FROM nums GROUP BY x, y DISTANCE-TO-ANY L2 WITHIN 3",
		// count(v) is not count(*).
		"SELECT count(v) FROM nums GROUP BY x, y DISTANCE-TO-ANY L2 WITHIN 3",
		// Computed grouping expression.
		"SELECT count(*) FROM nums GROUP BY x + 1, y DISTANCE-TO-ANY L2 WITHIN 3",
		// INT grouping column: the stored Value is not a float.
		"SELECT count(*) FROM nums GROUP BY k, v DISTANCE-TO-ANY L2 WITHIN 3",
		// Subquery predicate: fragment extraction fails.
		"SELECT count(*) FROM nums WHERE v > (SELECT min(v) FROM nums) GROUP BY x, y DISTANCE-TO-ANY L2 WITHIN 3",
	}
	for _, q := range rowPath {
		if op := plan(q, false); op.colPlan != nil {
			t.Errorf("%s: must not take the columnar fast path", q)
		}
	}
}

// TestColumnarRespectsLimits pins that the fast path charges collected rows
// against MaxRowsMaterialized exactly like the row collectors do.
func TestColumnarRespectsLimits(t *testing.T) {
	db := NewDB()
	loadNums(t, db, 3000, 19)
	db.SetLimits(Limits{MaxRowsMaterialized: 500})
	_, err := db.Query("SELECT x, y, count(*) FROM nums GROUP BY x, y DISTANCE-TO-ANY L2 WITHIN 3")
	var rle *ResourceLimitError
	if !errors.As(err, &rle) {
		t.Fatalf("err = %v, want ResourceLimitError", err)
	}
}

// alwaysFalse compiles to a predicate no row satisfies.
func alwaysFalse(Row) (Value, error) { return NewBool(false), nil }

// TestFilterCancellationNonBatchChild pins the fix for the cancellation hole
// in the batch fallback: a qualify-nothing filter over an operator chain with
// no batch-aware member (distinctOp adapts row-at-a-time) must observe a
// canceled statement within one batch, not after scanning the whole input —
// and must not spin forever on an infinite source.
func TestFilterCancellationNonBatchChild(t *testing.T) {
	rows := make([]Row, 200000)
	for i := range rows {
		rows[i] = Row{NewInt(int64(i))}
	}
	sch := Schema{{Name: "id", T: TypeInt}}
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // canceled before the first batch
	qc := newQueryCtx(ctx, Limits{})
	f := &filterOp{
		child: &distinctOp{child: &valuesOp{rows: rows, sch: sch}},
		pred:  alwaysFalse,
		qc:    qc,
	}
	if err := f.open(); err != nil {
		t.Fatal(err)
	}
	defer f.close()
	_, err := f.nextBatch(make([]Row, 0, 64))
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("nextBatch = %v, want context.Canceled", err)
	}
}

// TestBatchBufferRetainContract pins the batchOperator contract: rows a
// consumer retains from a returned batch must stay valid (same contents)
// after subsequent nextBatch calls reuse the destination buffer, through a
// rename→project→filter→limit stack over a values source.
func TestBatchBufferRetainContract(t *testing.T) {
	n := 10 * defaultBatchSize
	rows := make([]Row, n)
	for i := range rows {
		rows[i] = Row{NewInt(int64(i)), NewString(fmt.Sprintf("s%d", i))}
	}
	sch := Schema{{Name: "id", T: TypeInt}, {Name: "s", T: TypeString}}
	qc := newQueryCtx(context.Background(), Limits{})
	var op operator = &valuesOp{rows: rows, sch: sch}
	op = &renameOp{child: op, sch: sch, qc: qc}
	op = &projectOp{child: op, sch: sch, fns: []evalFn{
		func(r Row) (Value, error) { return r[0], nil },
		func(r Row) (Value, error) { return r[1], nil },
	}, qc: qc}
	op = &filterOp{child: op, pred: func(r Row) (Value, error) {
		return NewBool(r[0].I%3 != 1), nil
	}, qc: qc}
	op = &limitOp{child: op, n: n, offset: 5, qc: qc}
	if err := op.open(); err != nil {
		t.Fatal(err)
	}
	defer op.close()

	b := op.(batchOperator)
	type kept struct {
		row  Row
		want []Value
	}
	var retained []kept
	buf := make([]Row, 0, 128)
	for {
		batch, err := b.nextBatch(buf)
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		// Retain a reference to the first row of every batch, with a deep
		// copy of its expected contents.
		r := batch[0]
		retained = append(retained, kept{row: r, want: append([]Value(nil), r...)})
		buf = batch // hand the same header back, as materialize does
	}
	if len(retained) < 10 {
		t.Fatalf("only %d batches seen, want >= 10", len(retained))
	}
	for i, k := range retained {
		if !reflect.DeepEqual([]Value(k.row), k.want) {
			t.Fatalf("retained row from batch %d was clobbered by a later nextBatch: %v != %v", i, k.row, k.want)
		}
	}
}
