package engine

import (
	"fmt"
	"strings"
	"testing"
	"time"
)

// waitForStats polls the table's statistics until cond holds or the deadline
// passes — the auto-ANALYZE worker is asynchronous by design.
func waitForStats(t *testing.T, db *DB, table string, cond func(*TableStats) bool) *TableStats {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		s := db.StatsSnapshot(table)
		if cond(s) {
			return s
		}
		if time.Now().After(deadline) {
			t.Fatalf("stats never reached expected state; last = %+v", s)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestAutoAnalyzeSeedsAndRefreshes drives the two trigger edges: a
// never-analyzed table crossing the seeding floor gets its first ANALYZE, and
// churning more than half the analyzed rows gets a refresh.
func TestAutoAnalyzeSeedsAndRefreshes(t *testing.T) {
	db := NewDB()
	db.SetAutoAnalyze(true)
	defer db.SetAutoAnalyze(false)
	mustExec(t, db, "CREATE TABLE pts (id INT, x FLOAT, y FLOAT)")

	// Stay below the seeding floor: no ANALYZE may trigger.
	insertN(t, db, 0, autoAnalyzeMinRows-1)
	time.Sleep(20 * time.Millisecond)
	if s := db.StatsSnapshot("pts"); s != nil && s.AnalyzedRows != 0 {
		t.Fatalf("analyzed below the seeding floor: %+v", s)
	}

	// Crossing the floor seeds the first ANALYZE in the background.
	insertN(t, db, autoAnalyzeMinRows-1, autoAnalyzeMinRows)
	s := waitForStats(t, db, "pts", func(s *TableStats) bool {
		return s != nil && s.AnalyzedRows == autoAnalyzeMinRows && s.Stale == 0
	})
	if !s.Fresh() {
		t.Fatalf("seeded stats not fresh: %+v", s)
	}

	// Churn past half the analyzed rows: Fresh() flips false and the worker
	// refreshes. The final state has every inserted row analyzed.
	insertN(t, db, autoAnalyzeMinRows, 2*autoAnalyzeMinRows)
	waitForStats(t, db, "pts", func(s *TableStats) bool {
		return s != nil && s.AnalyzedRows == 2*autoAnalyzeMinRows && s.Fresh()
	})
}

// TestAutoAnalyzeDisabled pins that the default-off state never analyzes.
func TestAutoAnalyzeDisabled(t *testing.T) {
	db := NewDB()
	mustExec(t, db, "CREATE TABLE pts (id INT, x FLOAT, y FLOAT)")
	insertN(t, db, 0, 2*autoAnalyzeMinRows)
	time.Sleep(20 * time.Millisecond)
	if s := db.StatsSnapshot("pts"); s != nil && s.AnalyzedRows != 0 {
		t.Fatalf("auto-ANALYZE ran while disabled: %+v", s)
	}
}

// insertN appends rows [from, to) in a few batches, the way a live workload
// would trickle them in.
func insertN(t *testing.T, db *DB, from, to int) {
	t.Helper()
	const batch = 64
	for lo := from; lo < to; lo += batch {
		hi := lo + batch
		if hi > to {
			hi = to
		}
		var sb strings.Builder
		sb.WriteString("INSERT INTO pts VALUES ")
		for i := lo; i < hi; i++ {
			if i > lo {
				sb.WriteString(", ")
			}
			fmt.Fprintf(&sb, "(%d, %d.5, %d.5)", i, i%50, i%30)
		}
		mustExec(t, db, sb.String())
	}
}
