package engine

import (
	"fmt"
	"time"

	"sgb/internal/core"
	"sgb/internal/obs"
)

// DB is the engine's top-level handle: a catalog plus session settings.
// It is not safe for concurrent use; callers requiring concurrency should
// synchronize externally (the benchmark harness and examples are
// single-threaded, like the paper's single-session measurements).
type DB struct {
	cat     *Catalog
	sgbAlg  core.Algorithm
	metrics *obs.Registry

	// lastSGBStats holds the cost counters of the most recent SGB operator
	// execution, when the last statement contained one.
	lastSGBStats *core.Stats

	// trace is the in-flight statement trace (set by Exec so the parse span
	// survives into ExecStmt); lastTrace is the completed trace of the most
	// recent statement.
	trace     *obs.Trace
	lastTrace *obs.Trace
}

// NewDB returns an empty database. The SGB physical algorithm defaults to
// the on-the-fly index, the paper's best-performing variant. Each DB owns
// its metrics registry; callers wanting process-wide aggregation can swap in
// obs.Default via SetMetrics.
func NewDB() *DB {
	return &DB{cat: NewCatalog(), sgbAlg: core.IndexBounds, metrics: obs.NewRegistry()}
}

// Metrics exposes the engine's metrics registry: query/error counters,
// latency histograms, and the cumulative SGB cost counters of the paper's
// analysis (sgb_distance_comps_total and friends).
func (db *DB) Metrics() *obs.Registry { return db.metrics }

// SetMetrics replaces the metrics registry (e.g. with obs.Default to share
// one registry across several DBs in a process). reg must not be nil.
func (db *DB) SetMetrics(reg *obs.Registry) {
	if reg != nil {
		db.metrics = reg
	}
}

// LastTrace returns the span trace (parse/plan/execute) of the most recent
// statement, or nil before the first one.
func (db *DB) LastTrace() *obs.Trace { return db.lastTrace }

// Catalog exposes the table catalog for programmatic loading (the data
// generators bypass SQL INSERT for bulk loads).
func (db *DB) Catalog() *Catalog { return db.cat }

// SetSGBAlgorithm selects the physical implementation used by subsequent
// similarity group-by executions (All-Pairs, Bounds-Checking, or the
// on-the-fly index). It is the engine-level switch the benchmark harness
// flips between the paper's algorithm variants.
func (db *DB) SetSGBAlgorithm(a core.Algorithm) { db.sgbAlg = a }

// SGBAlgorithm reports the currently selected SGB implementation.
func (db *DB) SGBAlgorithm() core.Algorithm { return db.sgbAlg }

// LastSGBStats returns the core operator counters from the most recent
// statement that executed a similarity group-by, or nil.
func (db *DB) LastSGBStats() *core.Stats { return db.lastSGBStats }

// Result is a materialized statement result.
type Result struct {
	// Columns names the output columns (empty for DDL/DML).
	Columns []string
	// Rows holds the output tuples.
	Rows []Row
	// RowsAffected counts rows inserted, updated, deleted or copied by DML.
	RowsAffected int
}

// Exec parses and executes one SQL statement.
func (db *DB) Exec(sql string) (*Result, error) {
	tr := obs.NewTrace()
	span := tr.StartSpan("parse")
	stmt, err := Parse(sql)
	span.End()
	if err != nil {
		db.trace = nil
		db.lastTrace = tr
		db.metrics.Counter("engine_parse_errors_total").Inc()
		return nil, err
	}
	db.trace = tr
	return db.ExecStmt(stmt)
}

// ExecStmt executes an already parsed statement.
func (db *DB) ExecStmt(stmt Statement) (*Result, error) {
	tr := db.trace
	db.trace = nil
	if tr == nil {
		tr = obs.NewTrace()
	}
	db.lastTrace = tr
	db.metrics.Counter("engine_statements_total").Inc()
	res, err := db.execStmt(stmt, tr)
	if err != nil {
		db.metrics.Counter("engine_errors_total").Inc()
	}
	return res, err
}

// recordQueryMetrics folds one executed query into the registry and stashes
// the SGB cost counters for LastSGBStats and the trace annotations.
func (db *DB) recordQueryMetrics(pc *planContext, tr *obs.Trace, dur time.Duration, rowsOut int) {
	m := db.metrics
	m.Counter("engine_queries_total").Inc()
	m.Counter("engine_rows_returned_total").Add(int64(rowsOut))
	m.Histogram("engine_query_seconds", obs.DefBuckets).Observe(dur.Seconds())
	if n := len(pc.sgbOps); n > 0 {
		stats := pc.sgbOps[n-1].lastStats
		db.lastSGBStats = &stats
	} else {
		db.lastSGBStats = nil
	}
	for _, op := range pc.sgbOps {
		s := op.lastStats
		m.Counter("sgb_queries_total").Inc()
		m.Counter("sgb_points_total").Add(int64(s.Points))
		m.Counter("sgb_distance_comps_total").Add(s.DistanceComps)
		m.Counter("sgb_rect_tests_total").Add(s.RectTests)
		m.Counter("sgb_hull_tests_total").Add(s.HullTests)
		m.Counter("sgb_window_queries_total").Add(s.WindowQueries)
		m.Counter("sgb_index_updates_total").Add(s.IndexUpdates)
		m.Counter("sgb_groups_merged_total").Add(s.GroupsMerged)
		m.Counter("sgb_rounds_total").Add(int64(s.Rounds))
		tr.Annotate("points=%d distance_comps=%d rounds=%d",
			s.Points, s.DistanceComps, s.Rounds)
	}
}

func (db *DB) execStmt(stmt Statement, tr *obs.Trace) (*Result, error) {
	switch stmt := stmt.(type) {
	case *CreateTableStmt:
		if _, err := db.cat.Create(stmt.Name, stmt.Columns); err != nil {
			return nil, err
		}
		db.metrics.Gauge("engine_catalog_tables").Set(float64(len(db.cat.Names())))
		return &Result{}, nil

	case *DropTableStmt:
		db.cat.Drop(stmt.Name)
		db.metrics.Gauge("engine_catalog_tables").Set(float64(len(db.cat.Names())))
		return &Result{}, nil

	case *CreateViewStmt:
		// Validate the definition eagerly so broken views fail at
		// creation, not first use.
		pc := &planContext{db: db}
		if _, err := pc.planSelect(stmt.Query); err != nil {
			return nil, fmt.Errorf("engine: invalid view definition: %w", err)
		}
		if err := db.cat.CreateView(stmt.Name, stmt.Query); err != nil {
			return nil, err
		}
		return &Result{}, nil

	case *DropViewStmt:
		if !db.cat.DropView(stmt.Name) {
			return nil, fmt.Errorf("engine: unknown view %q", stmt.Name)
		}
		return &Result{}, nil

	case *InsertStmt:
		t, err := db.cat.Get(stmt.Table)
		if err != nil {
			return nil, err
		}
		res := &Result{}
		if stmt.Query != nil {
			pc := &planContext{db: db}
			rows, _, err := pc.run(stmt.Query)
			if err != nil {
				return nil, err
			}
			for _, row := range rows {
				if err := t.Insert(row.Clone()); err != nil {
					return nil, err
				}
				res.RowsAffected++
			}
			return res, nil
		}
		for _, exprs := range stmt.Rows {
			row := make(Row, len(exprs))
			for i, e := range exprs {
				f, err := compileExpr(e, nil, nil)
				if err != nil {
					return nil, fmt.Errorf("engine: INSERT values must be constants: %w", err)
				}
				if row[i], err = f(nil); err != nil {
					return nil, err
				}
			}
			if err := t.Insert(row); err != nil {
				return nil, err
			}
			res.RowsAffected++
		}
		return res, nil

	case *UpdateStmt:
		t, err := db.cat.Get(stmt.Table)
		if err != nil {
			return nil, err
		}
		var pred evalFn
		if stmt.Where != nil {
			pc := &planContext{db: db}
			if pred, err = compileExpr(stmt.Where, t.Schema, pc); err != nil {
				return nil, err
			}
		}
		type assign struct {
			col int
			fn  evalFn
		}
		assigns := make([]assign, len(stmt.Set))
		for i, sc := range stmt.Set {
			col, err := t.Schema.Resolve("", sc.Column)
			if err != nil {
				return nil, err
			}
			pc := &planContext{db: db}
			fn, err := compileExpr(sc.Value, t.Schema, pc)
			if err != nil {
				return nil, err
			}
			assigns[i] = assign{col: col, fn: fn}
		}
		res := &Result{}
		for ri, row := range t.Rows {
			if pred != nil {
				v, err := pred(row)
				if err != nil {
					return nil, err
				}
				if !v.Truthy() {
					continue
				}
			}
			// Evaluate all assignments against the pre-update row, then
			// apply — SQL's simultaneous-assignment semantics.
			newVals := make([]Value, len(assigns))
			for i, a := range assigns {
				v, err := a.fn(row)
				if err != nil {
					return nil, err
				}
				if !v.IsNull() {
					want := t.Schema[a.col].T
					if want == TypeFloat && v.T == TypeInt {
						v = NewFloat(float64(v.I))
					} else if v.T != want {
						return nil, fmt.Errorf("engine: UPDATE column %s expects %s, got %s",
							t.Schema[a.col].Name, want, v.T)
					}
				}
				newVals[i] = v
			}
			updated := row.Clone()
			for i, a := range assigns {
				updated[a.col] = newVals[i]
			}
			t.Rows[ri] = updated
			res.RowsAffected++
		}
		if res.RowsAffected > 0 {
			t.invalidateIndexes()
		}
		return res, nil

	case *DeleteStmt:
		t, err := db.cat.Get(stmt.Table)
		if err != nil {
			return nil, err
		}
		if stmt.Where == nil {
			n := len(t.Rows)
			t.Rows = nil
			t.invalidateIndexes()
			return &Result{RowsAffected: n}, nil
		}
		pc := &planContext{db: db}
		pred, err := compileExpr(stmt.Where, t.Schema, pc)
		if err != nil {
			return nil, err
		}
		res := &Result{}
		keep := t.Rows[:0]
		for _, row := range t.Rows {
			v, err := pred(row)
			if err != nil {
				return nil, err
			}
			if v.Truthy() {
				res.RowsAffected++
			} else {
				keep = append(keep, row)
			}
		}
		t.Rows = keep
		if res.RowsAffected > 0 {
			t.invalidateIndexes()
		}
		return res, nil

	case *CreateIndexStmt:
		t, err := db.cat.Get(stmt.Table)
		if err != nil {
			return nil, err
		}
		if _, err := t.CreateIndex(stmt.Name, stmt.Column); err != nil {
			return nil, err
		}
		return &Result{}, nil

	case *DropIndexStmt:
		t, err := db.cat.Get(stmt.Table)
		if err != nil {
			return nil, err
		}
		if !t.DropIndex(stmt.Name) {
			return nil, fmt.Errorf("engine: no index %q on table %s", stmt.Name, stmt.Table)
		}
		return &Result{}, nil

	case *CopyStmt:
		t, err := db.cat.Get(stmt.Table)
		if err != nil {
			return nil, err
		}
		n, err := copyFromCSV(t, stmt.Path)
		if err != nil {
			return nil, err
		}
		return &Result{RowsAffected: n}, nil

	case *ExplainStmt:
		pc := &planContext{db: db}
		span := tr.StartSpan("plan")
		planStart := time.Now()
		op, err := pc.planSelect(stmt.Query)
		planDur := time.Since(planStart)
		span.End()
		if err != nil {
			return nil, err
		}
		res := &Result{Columns: []string{"plan"}}
		if !stmt.Analyze {
			for _, line := range explainPlan(op) {
				res.Rows = append(res.Rows, Row{NewString(line)})
			}
			return res, nil
		}
		// EXPLAIN ANALYZE: wrap every operator, run the query to completion
		// (discarding its rows), and render the annotated tree.
		root := instrument(op)
		span = tr.StartSpan("execute")
		execStart := time.Now()
		rows, err := drain(root)
		execDur := time.Since(execStart)
		span.End()
		if err != nil {
			return nil, err
		}
		db.recordQueryMetrics(pc, tr, execDur, len(rows))
		for _, line := range explainPlan(root) {
			res.Rows = append(res.Rows, Row{NewString(line)})
		}
		res.Rows = append(res.Rows,
			Row{NewString(fmt.Sprintf("Planning Time: %.3f ms", float64(planDur.Nanoseconds())/1e6))},
			Row{NewString(fmt.Sprintf("Execution Time: %.3f ms", float64(execDur.Nanoseconds())/1e6))})
		return res, nil

	case *SelectStmt:
		pc := &planContext{db: db}
		span := tr.StartSpan("plan")
		op, err := pc.planSelect(stmt)
		span.End()
		if err != nil {
			return nil, err
		}
		span = tr.StartSpan("execute")
		execStart := time.Now()
		rows, err := drain(op)
		execDur := time.Since(execStart)
		span.End()
		if err != nil {
			return nil, err
		}
		db.recordQueryMetrics(pc, tr, execDur, len(rows))
		return &Result{Columns: op.schema().Names(), Rows: rows}, nil
	}
	return nil, fmt.Errorf("engine: unsupported statement %T", stmt)
}

// Query is a convenience wrapper asserting the statement is a SELECT.
func (db *DB) Query(sql string) (*Result, error) {
	stmt, err := Parse(sql)
	if err != nil {
		return nil, err
	}
	if _, ok := stmt.(*SelectStmt); !ok {
		return nil, fmt.Errorf("engine: Query expects a SELECT statement")
	}
	return db.ExecStmt(stmt)
}
