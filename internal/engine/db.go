package engine

import (
	"fmt"

	"sgb/internal/core"
)

// DB is the engine's top-level handle: a catalog plus session settings.
// It is not safe for concurrent use; callers requiring concurrency should
// synchronize externally (the benchmark harness and examples are
// single-threaded, like the paper's single-session measurements).
type DB struct {
	cat    *Catalog
	sgbAlg core.Algorithm

	// lastSGBStats holds the cost counters of the most recent SGB operator
	// execution, when the last statement contained one.
	lastSGBStats *core.Stats
}

// NewDB returns an empty database. The SGB physical algorithm defaults to
// the on-the-fly index, the paper's best-performing variant.
func NewDB() *DB {
	return &DB{cat: NewCatalog(), sgbAlg: core.IndexBounds}
}

// Catalog exposes the table catalog for programmatic loading (the data
// generators bypass SQL INSERT for bulk loads).
func (db *DB) Catalog() *Catalog { return db.cat }

// SetSGBAlgorithm selects the physical implementation used by subsequent
// similarity group-by executions (All-Pairs, Bounds-Checking, or the
// on-the-fly index). It is the engine-level switch the benchmark harness
// flips between the paper's algorithm variants.
func (db *DB) SetSGBAlgorithm(a core.Algorithm) { db.sgbAlg = a }

// SGBAlgorithm reports the currently selected SGB implementation.
func (db *DB) SGBAlgorithm() core.Algorithm { return db.sgbAlg }

// LastSGBStats returns the core operator counters from the most recent
// statement that executed a similarity group-by, or nil.
func (db *DB) LastSGBStats() *core.Stats { return db.lastSGBStats }

// Result is a materialized statement result.
type Result struct {
	// Columns names the output columns (empty for DDL/DML).
	Columns []string
	// Rows holds the output tuples.
	Rows []Row
	// RowsAffected counts rows inserted, updated, deleted or copied by DML.
	RowsAffected int
}

// Exec parses and executes one SQL statement.
func (db *DB) Exec(sql string) (*Result, error) {
	stmt, err := Parse(sql)
	if err != nil {
		return nil, err
	}
	return db.ExecStmt(stmt)
}

// ExecStmt executes an already parsed statement.
func (db *DB) ExecStmt(stmt Statement) (*Result, error) {
	switch stmt := stmt.(type) {
	case *CreateTableStmt:
		if _, err := db.cat.Create(stmt.Name, stmt.Columns); err != nil {
			return nil, err
		}
		return &Result{}, nil

	case *DropTableStmt:
		db.cat.Drop(stmt.Name)
		return &Result{}, nil

	case *CreateViewStmt:
		// Validate the definition eagerly so broken views fail at
		// creation, not first use.
		pc := &planContext{db: db}
		if _, err := pc.planSelect(stmt.Query); err != nil {
			return nil, fmt.Errorf("engine: invalid view definition: %w", err)
		}
		if err := db.cat.CreateView(stmt.Name, stmt.Query); err != nil {
			return nil, err
		}
		return &Result{}, nil

	case *DropViewStmt:
		if !db.cat.DropView(stmt.Name) {
			return nil, fmt.Errorf("engine: unknown view %q", stmt.Name)
		}
		return &Result{}, nil

	case *InsertStmt:
		t, err := db.cat.Get(stmt.Table)
		if err != nil {
			return nil, err
		}
		res := &Result{}
		if stmt.Query != nil {
			pc := &planContext{db: db}
			rows, _, err := pc.run(stmt.Query)
			if err != nil {
				return nil, err
			}
			for _, row := range rows {
				if err := t.Insert(row.Clone()); err != nil {
					return nil, err
				}
				res.RowsAffected++
			}
			return res, nil
		}
		for _, exprs := range stmt.Rows {
			row := make(Row, len(exprs))
			for i, e := range exprs {
				f, err := compileExpr(e, nil, nil)
				if err != nil {
					return nil, fmt.Errorf("engine: INSERT values must be constants: %w", err)
				}
				if row[i], err = f(nil); err != nil {
					return nil, err
				}
			}
			if err := t.Insert(row); err != nil {
				return nil, err
			}
			res.RowsAffected++
		}
		return res, nil

	case *UpdateStmt:
		t, err := db.cat.Get(stmt.Table)
		if err != nil {
			return nil, err
		}
		var pred evalFn
		if stmt.Where != nil {
			pc := &planContext{db: db}
			if pred, err = compileExpr(stmt.Where, t.Schema, pc); err != nil {
				return nil, err
			}
		}
		type assign struct {
			col int
			fn  evalFn
		}
		assigns := make([]assign, len(stmt.Set))
		for i, sc := range stmt.Set {
			col, err := t.Schema.Resolve("", sc.Column)
			if err != nil {
				return nil, err
			}
			pc := &planContext{db: db}
			fn, err := compileExpr(sc.Value, t.Schema, pc)
			if err != nil {
				return nil, err
			}
			assigns[i] = assign{col: col, fn: fn}
		}
		res := &Result{}
		for ri, row := range t.Rows {
			if pred != nil {
				v, err := pred(row)
				if err != nil {
					return nil, err
				}
				if !v.Truthy() {
					continue
				}
			}
			// Evaluate all assignments against the pre-update row, then
			// apply — SQL's simultaneous-assignment semantics.
			newVals := make([]Value, len(assigns))
			for i, a := range assigns {
				v, err := a.fn(row)
				if err != nil {
					return nil, err
				}
				if !v.IsNull() {
					want := t.Schema[a.col].T
					if want == TypeFloat && v.T == TypeInt {
						v = NewFloat(float64(v.I))
					} else if v.T != want {
						return nil, fmt.Errorf("engine: UPDATE column %s expects %s, got %s",
							t.Schema[a.col].Name, want, v.T)
					}
				}
				newVals[i] = v
			}
			updated := row.Clone()
			for i, a := range assigns {
				updated[a.col] = newVals[i]
			}
			t.Rows[ri] = updated
			res.RowsAffected++
		}
		if res.RowsAffected > 0 {
			t.invalidateIndexes()
		}
		return res, nil

	case *DeleteStmt:
		t, err := db.cat.Get(stmt.Table)
		if err != nil {
			return nil, err
		}
		if stmt.Where == nil {
			n := len(t.Rows)
			t.Rows = nil
			t.invalidateIndexes()
			return &Result{RowsAffected: n}, nil
		}
		pc := &planContext{db: db}
		pred, err := compileExpr(stmt.Where, t.Schema, pc)
		if err != nil {
			return nil, err
		}
		res := &Result{}
		keep := t.Rows[:0]
		for _, row := range t.Rows {
			v, err := pred(row)
			if err != nil {
				return nil, err
			}
			if v.Truthy() {
				res.RowsAffected++
			} else {
				keep = append(keep, row)
			}
		}
		t.Rows = keep
		if res.RowsAffected > 0 {
			t.invalidateIndexes()
		}
		return res, nil

	case *CreateIndexStmt:
		t, err := db.cat.Get(stmt.Table)
		if err != nil {
			return nil, err
		}
		if _, err := t.CreateIndex(stmt.Name, stmt.Column); err != nil {
			return nil, err
		}
		return &Result{}, nil

	case *DropIndexStmt:
		t, err := db.cat.Get(stmt.Table)
		if err != nil {
			return nil, err
		}
		if !t.DropIndex(stmt.Name) {
			return nil, fmt.Errorf("engine: no index %q on table %s", stmt.Name, stmt.Table)
		}
		return &Result{}, nil

	case *CopyStmt:
		t, err := db.cat.Get(stmt.Table)
		if err != nil {
			return nil, err
		}
		n, err := copyFromCSV(t, stmt.Path)
		if err != nil {
			return nil, err
		}
		return &Result{RowsAffected: n}, nil

	case *ExplainStmt:
		pc := &planContext{db: db}
		op, err := pc.planSelect(stmt.Query)
		if err != nil {
			return nil, err
		}
		res := &Result{Columns: []string{"plan"}}
		for _, line := range explainPlan(op) {
			res.Rows = append(res.Rows, Row{NewString(line)})
		}
		return res, nil

	case *SelectStmt:
		pc := &planContext{db: db}
		rows, sch, err := pc.run(stmt)
		if err != nil {
			return nil, err
		}
		if n := len(pc.sgbOps); n > 0 {
			stats := pc.sgbOps[n-1].lastStats
			db.lastSGBStats = &stats
		} else {
			db.lastSGBStats = nil
		}
		return &Result{Columns: sch.Names(), Rows: rows}, nil
	}
	return nil, fmt.Errorf("engine: unsupported statement %T", stmt)
}

// Query is a convenience wrapper asserting the statement is a SELECT.
func (db *DB) Query(sql string) (*Result, error) {
	stmt, err := Parse(sql)
	if err != nil {
		return nil, err
	}
	if _, ok := stmt.(*SelectStmt); !ok {
		return nil, fmt.Errorf("engine: Query expects a SELECT statement")
	}
	return db.ExecStmt(stmt)
}
