package engine

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"sgb/internal/core"
	"sgb/internal/obs"
)

// DB is the engine's top-level handle: a catalog plus session settings.
//
// A DB is safe for concurrent use. Statements are isolated by a
// readers-writer lock: read-only statements (SELECT, EXPLAIN) run
// concurrently with each other, while DDL/DML (CREATE, DROP, INSERT, UPDATE,
// DELETE, COPY, index maintenance) runs exclusively. A statement that fails
// or is canceled mid-flight leaves no partial catalog or table mutations
// behind. Per-session state accessors (LastTrace, LastSGBStats,
// SetSGBAlgorithm, SetLimits, ...) are individually thread-safe and reflect
// the most recently completed statement.
type DB struct {
	// mu is the statement lock: RLock for read-only statements, Lock for
	// DDL/DML.
	mu  sync.RWMutex
	cat *Catalog

	// stateMu guards the session settings and most-recent-statement state
	// below, which concurrent read statements would otherwise race on.
	stateMu sync.Mutex
	sgbAlg  core.Algorithm
	// sgbAuto, when set, lets the cost-based optimizer choose the SGB
	// algorithm per query; sgbAlg is then only the fallback hint. Explicit
	// SetSGBAlgorithm clears it, making sgbAlg a manual override.
	sgbAuto bool
	// noOptimize disables the cost-based analyzer rules (the plans fall back
	// to the naive lowering) — the reference behaviour property tests compare
	// against.
	noOptimize bool
	limits     Limits
	// parallelism is the session worker count for morsel-parallel fragments:
	// 0 = auto (GOMAXPROCS), 1 = serial. batchSize is the batch/morsel row
	// count; 0 = defaultBatchSize.
	parallelism int
	batchSize   int
	noColumnar  bool

	metrics atomic.Pointer[obs.Registry]

	// traceEvery is the plan-capture sampling rate: every Nth statement runs
	// with instrumented operators and stashes its EXPLAIN ANALYZE tree on the
	// trace. 1 = every statement, 0 = never. sampleTick is the statement
	// counter the rate divides.
	traceEvery atomic.Int64
	sampleTick atomic.Uint64

	// commitHook, when set, is invoked for every successfully applied
	// mutating statement while the exclusive statement lock is still held —
	// the engine's durability seam. See SetCommitHook.
	commitHook atomic.Pointer[CommitHook]

	// execHook, when set, runs with every statement's SQL text on the
	// executing goroutine before parsing. It exists for fault injection: the
	// chaos tests install a hook that panics or stalls at a precise engine
	// point. See SetExecHook.
	execHook atomic.Pointer[func(string)]

	// gov is the process-wide memory governor: statement admission and
	// scratch-memory accounting. See SetMemoryBudget.
	gov memGovernor

	// aaMu guards the auto-ANALYZE trigger state: aaCh is the pending-table
	// queue (nil = disabled), aaPending dedups queued tables by lowercased
	// name. See autoanalyze.go.
	aaMu      sync.Mutex
	aaCh      chan string
	aaPending map[string]struct{}

	// lastSGBStats holds the cost counters of the most recent SGB operator
	// execution, when the last statement contained one.
	lastSGBStats *core.Stats

	// lastTrace is the completed trace of the most recent statement.
	lastTrace *obs.Trace
}

// NewDB returns an empty database. SGB algorithm selection defaults to auto
// (the cost-based optimizer picks per query, falling back to the on-the-fly
// index — the paper's best-performing variant — when it has nothing to go
// on). Each DB owns its metrics registry; callers wanting process-wide
// aggregation can swap in obs.Default via SetMetrics.
func NewDB() *DB {
	db := &DB{cat: NewCatalog(), sgbAlg: core.IndexBounds, sgbAuto: true}
	db.metrics.Store(obs.NewRegistry())
	db.traceEvery.Store(DefaultTraceSampling)
	db.gov.db = db
	db.gov.queueCap = defaultMemQueueCap
	return db
}

// SetExecHook installs a hook invoked with every statement's SQL text on the
// executing goroutine, before parsing; nil removes it. It is a fault-
// injection seam for the chaos tests — a hook that panics simulates an engine
// bug inside statement execution, proving the serving layer's isolation.
func (db *DB) SetExecHook(h func(sql string)) {
	if h == nil {
		db.execHook.Store(nil)
		return
	}
	db.execHook.Store(&h)
}

// DefaultTraceSampling is the default plan-capture rate: one statement in 64
// runs instrumented. Cheap enough to leave on in production (the acceptance
// bar is <3% overhead on the benchmark probes) while still populating the
// server's slow-query log with real operator actuals.
const DefaultTraceSampling = 64

// SetTraceSampling sets the plan-capture sampling rate: every nth statement
// executes with instrumented operators and attaches its EXPLAIN ANALYZE tree
// (per-operator actual rows/loops/time) to the statement trace. n = 1
// instruments every statement, n = 0 disables capture entirely.
func (db *DB) SetTraceSampling(n int) {
	if n < 0 {
		n = 0
	}
	db.traceEvery.Store(int64(n))
}

// TraceSampling reports the current plan-capture sampling rate.
func (db *DB) TraceSampling() int { return int(db.traceEvery.Load()) }

// sampleNow decides whether the statement starting now is a sampled one.
func (db *DB) sampleNow() bool {
	n := db.traceEvery.Load()
	if n <= 0 {
		return false
	}
	return db.sampleTick.Add(1)%uint64(n) == 0
}

// Metrics exposes the engine's metrics registry: query/error counters,
// latency histograms, and the cumulative SGB cost counters of the paper's
// analysis (sgb_distance_comps_total and friends).
func (db *DB) Metrics() *obs.Registry { return db.metrics.Load() }

// SetMetrics replaces the metrics registry (e.g. with obs.Default to share
// one registry across several DBs in a process). reg must not be nil.
func (db *DB) SetMetrics(reg *obs.Registry) {
	if reg != nil {
		db.metrics.Store(reg)
	}
}

// CommitHook is the durability seam: it runs after a mutating statement
// (DDL/DML) has applied successfully, while the exclusive statement lock is
// still held, and before the statement is reported successful to the caller.
// A write-ahead log hooks here to make the statement durable; a non-nil
// error fails the statement with a *DurabilityError, so it is never
// acknowledged without its log record.
//
// sql is the statement's original text when it entered through ExecContext /
// Session.ExecContext, and "" for pre-parsed statements (ExecStmtContext),
// which a logging hook may refuse. tr is the statement's live trace (never
// nil): a WAL hook records wal_append/wal_fsync spans on it so the commit's
// durability cost shows up in the query's end-to-end breakdown. The hook must
// not re-enter the DB.
type CommitHook func(stmt Statement, sql string, tr *obs.Trace) error

// SetCommitHook installs hook (nil removes it). It is normally wired once at
// boot, after recovery replay, so replayed statements are not re-logged.
func (db *DB) SetCommitHook(hook CommitHook) {
	if hook == nil {
		db.commitHook.Store(nil)
		return
	}
	db.commitHook.Store(&hook)
}

// DurabilityError reports that a statement applied in memory but its commit
// hook (the write-ahead log) failed, so durability is not guaranteed and the
// statement was not acknowledged. The in-process state may be ahead of the
// durable state; the serving layer treats this as fatal for subsequent
// writes.
type DurabilityError struct {
	Err error
}

func (e *DurabilityError) Error() string {
	return fmt.Sprintf("engine: commit not durable: %v", e.Err)
}

func (e *DurabilityError) Unwrap() error { return e.Err }

// LastTrace returns the span trace (parse/plan/execute) of the most recent
// statement, or nil before the first one.
func (db *DB) LastTrace() *obs.Trace {
	db.stateMu.Lock()
	defer db.stateMu.Unlock()
	return db.lastTrace
}

// Catalog exposes the table catalog for programmatic loading (the data
// generators bypass SQL INSERT for bulk loads). The catalog is not
// independently locked; load data before serving concurrent queries, or
// synchronize externally.
func (db *DB) Catalog() *Catalog { return db.cat }

// SetSGBAlgorithm forces the physical implementation used by subsequent
// similarity group-by executions (All-Pairs, Bounds-Checking, or the
// on-the-fly index), overriding the optimizer's cost-based choice. It is the
// engine-level switch the benchmark harness flips between the paper's
// algorithm variants; SetSGBAlgorithmAuto restores cost-based selection.
func (db *DB) SetSGBAlgorithm(a core.Algorithm) {
	db.stateMu.Lock()
	db.sgbAlg = a
	db.sgbAuto = false
	db.stateMu.Unlock()
}

// SetSGBAlgorithmAuto restores cost-based SGB algorithm selection (the
// default): the optimizer picks per query from the statistics catalog.
func (db *DB) SetSGBAlgorithmAuto() {
	db.stateMu.Lock()
	db.sgbAuto = true
	db.stateMu.Unlock()
}

// SGBAlgorithm reports the currently selected SGB implementation (under auto
// selection: the fallback hint the optimizer starts from).
func (db *DB) SGBAlgorithm() core.Algorithm {
	db.stateMu.Lock()
	defer db.stateMu.Unlock()
	return db.sgbAlg
}

// SGBAlgorithmIsAuto reports whether SGB algorithm selection is cost-based
// (true, the default) or forced by SetSGBAlgorithm.
func (db *DB) SGBAlgorithmIsAuto() bool {
	db.stateMu.Lock()
	defer db.stateMu.Unlock()
	return db.sgbAuto
}

// SetOptimizer enables or disables the cost-based analyzer rules for
// subsequent statements. Disabling (on=false) yields the naive plan lowering
// — semantically identical, used as the reference in plan-equivalence tests.
func (db *DB) SetOptimizer(on bool) {
	db.stateMu.Lock()
	db.noOptimize = !on
	db.stateMu.Unlock()
}

// SetLimits installs per-query resource limits applied to every subsequent
// statement. The zero Limits removes all bounds.
func (db *DB) SetLimits(lim Limits) {
	db.stateMu.Lock()
	db.limits = lim
	db.stateMu.Unlock()
}

// Limits reports the currently configured per-query resource limits.
func (db *DB) Limits() Limits {
	db.stateMu.Lock()
	defer db.stateMu.Unlock()
	return db.limits
}

// SetParallelism sets the worker count used by morsel-parallel query
// fragments in subsequent statements. n <= 0 restores the default: one worker
// per logical CPU (GOMAXPROCS). 1 forces serial execution.
func (db *DB) SetParallelism(n int) {
	if n < 0 {
		n = 0
	}
	db.stateMu.Lock()
	db.parallelism = n
	db.stateMu.Unlock()
}

// Parallelism reports the resolved worker count for new statements (never 0;
// the auto setting resolves to GOMAXPROCS).
func (db *DB) Parallelism() int {
	db.stateMu.Lock()
	n := db.parallelism
	db.stateMu.Unlock()
	if n <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return n
}

// SetBatchSize sets the batch/morsel row count used by the vectorized
// executor in subsequent statements. n <= 0 restores defaultBatchSize.
// Small values are mainly useful to force morsel-parallel plans on small
// tables in tests.
func (db *DB) SetBatchSize(n int) {
	if n < 0 {
		n = 0
	}
	db.stateMu.Lock()
	db.batchSize = n
	db.stateMu.Unlock()
}

// SetColumnar enables or disables the columnar SGB fast path for subsequent
// statements. It is enabled by default; disabling is mainly useful for
// benchmarks comparing against the row-at-a-time path.
func (db *DB) SetColumnar(on bool) {
	db.stateMu.Lock()
	db.noColumnar = !on
	db.stateMu.Unlock()
}

// Columnar reports whether the columnar SGB fast path is enabled for new
// statements.
func (db *DB) Columnar() bool {
	db.stateMu.Lock()
	defer db.stateMu.Unlock()
	return !db.noColumnar
}

// BatchSize reports the resolved batch/morsel row count for new statements.
func (db *DB) BatchSize() int {
	db.stateMu.Lock()
	n := db.batchSize
	db.stateMu.Unlock()
	if n <= 0 {
		return defaultBatchSize
	}
	return n
}

// LastSGBStats returns the core operator counters from the most recent
// statement that executed a similarity group-by, or nil.
func (db *DB) LastSGBStats() *core.Stats {
	db.stateMu.Lock()
	defer db.stateMu.Unlock()
	return db.lastSGBStats
}

// Result is a materialized statement result.
type Result struct {
	// Columns names the output columns (empty for DDL/DML).
	Columns []string
	// Rows holds the output tuples.
	Rows []Row
	// RowsAffected counts rows inserted, updated, deleted or copied by DML.
	RowsAffected int
}

// Exec parses and executes one SQL statement.
func (db *DB) Exec(sql string) (*Result, error) {
	return db.ExecContext(context.Background(), sql)
}

// ExecContext parses and executes one SQL statement under a context: once
// ctx is canceled or its deadline expires, the statement aborts promptly
// (operators poll on a row stride) and ExecContext returns ctx.Err(). A
// canceled statement leaves no partial catalog or table mutations behind.
func (db *DB) ExecContext(ctx context.Context, sql string) (*Result, error) {
	return db.execSQL(ctx, sql, db.settings())
}

// settings snapshots the DB-level default settings. DB-level setters
// (SetSGBAlgorithm, SetLimits, SetParallelism, SetBatchSize) configure this
// default; Sessions take an independent copy at creation time.
func (db *DB) settings() Settings {
	db.stateMu.Lock()
	defer db.stateMu.Unlock()
	return Settings{
		SGBAlgorithm: db.sgbAlg,
		SGBAuto:      db.sgbAuto,
		Limits:       db.limits,
		Parallelism:  db.parallelism,
		BatchSize:    db.batchSize,
		NoColumnar:   db.noColumnar,
		NoOptimize:   db.noOptimize,
	}
}

// execSQL is the shared parse-then-execute driver behind DB.ExecContext and
// Session.ExecContext; set is the caller's settings snapshot.
func (db *DB) execSQL(ctx context.Context, sql string, set Settings) (*Result, error) {
	return db.execSQLTrace(ctx, sql, set, obs.NewTrace())
}

// execSQLTrace is execSQL recording onto a caller-provided trace — the
// server threads each remote query's propagated trace through here, so the
// engine's parse/plan/execute spans land on the same trace as the server's
// wire-decode and streaming spans.
func (db *DB) execSQLTrace(ctx context.Context, sql string, set Settings, tr *obs.Trace) (*Result, error) {
	if hp := db.execHook.Load(); hp != nil {
		(*hp)(sql)
	}
	tr.SetState("parsing")
	span := tr.StartSpan("parse")
	stmt, err := Parse(sql)
	span.End()
	if err != nil {
		db.stateMu.Lock()
		db.lastTrace = tr
		db.stateMu.Unlock()
		db.Metrics().Counter("engine_parse_errors_total").Inc()
		return nil, err
	}
	return db.execTraced(ctx, stmt, tr, set, sql)
}

// ExecStmt executes an already parsed statement.
func (db *DB) ExecStmt(stmt Statement) (*Result, error) {
	return db.ExecStmtContext(context.Background(), stmt)
}

// ExecStmtContext executes an already parsed statement under a context, with
// the same cancellation semantics as ExecContext.
func (db *DB) ExecStmtContext(ctx context.Context, stmt Statement) (*Result, error) {
	return db.execTraced(ctx, stmt, obs.NewTrace(), db.settings(), "")
}

// isReadOnly reports whether stmt cannot mutate the catalog or table data,
// and may therefore share the statement lock with other readers. EXPLAIN
// ANALYZE executes its query but discards the rows, so it is a reader too.
func isReadOnly(stmt Statement) bool {
	switch stmt.(type) {
	case *SelectStmt, *ExplainStmt:
		return true
	}
	return false
}

// execTraced is the shared statement driver: it applies the configured time
// limit, takes the statement lock in the right mode, runs the statement, and
// folds the outcome into the metrics registry and the session state. set is
// the caller's settings snapshot — the statement's whole execution shape
// (algorithm, limits, parallelism, batch size) is fixed here, at plan time,
// so concurrent sessions adjusting their own knobs cannot affect it. sql is
// the statement's original text ("" for pre-parsed statements), handed to
// the commit hook for write-ahead logging.
func (db *DB) execTraced(ctx context.Context, stmt Statement, tr *obs.Trace, set Settings, sql string) (*Result, error) {
	m := db.Metrics()
	m.Counter("engine_statements_total").Inc()

	lim := set.Limits
	parent := ctx
	if lim.MaxExecutionTime > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, lim.MaxExecutionTime)
		defer cancel()
	}

	var res *Result
	err := ctx.Err()
	// Memory admission: when a process budget (or per-query memory limit) is
	// configured, the statement gets an account with the governor before it
	// takes the statement lock — an exhausted pool queues or sheds it here,
	// where it holds no locks, rather than mid-execution.
	var acct *memAccount
	if err == nil {
		tr.SetState("admitting")
		acct, err = db.gov.admit(ctx, lim.MaxMemoryBytes)
		if acct != nil {
			defer acct.release()
		}
	}
	if err == nil {
		qc := newQueryCtx(ctx, lim)
		qc.mem = acct
		qc.workers = set.Parallelism
		if qc.workers <= 0 {
			qc.workers = runtime.GOMAXPROCS(0)
		}
		qc.batch = set.BatchSize
		qc.alg = set.SGBAlgorithm
		qc.algAuto = set.SGBAuto
		qc.noColumnar = set.NoColumnar
		qc.noOpt = set.NoOptimize
		if qc.analyze = db.sampleNow(); qc.analyze {
			m.Counter("engine_statements_sampled_total").Inc()
		}
		tr.SetState("executing")
		if isReadOnly(stmt) {
			db.mu.RLock()
			res, err = db.execStmt(stmt, tr, qc)
			db.mu.RUnlock()
		} else {
			db.mu.Lock()
			// SELECT-ish statements record their own plan/execute spans inside
			// execStmt; give every other write its execute span here so plain
			// DML/DDL traces still cover the whole application phase.
			var span *obs.Span
			if ins, ok := stmt.(*InsertStmt); !ok || ins.Query == nil {
				span = tr.StartSpan("execute")
			}
			res, err = db.execStmt(stmt, tr, qc)
			if span != nil {
				span.End()
			}
			// Durability seam: the statement has applied; log it before it
			// can be acknowledged, while the exclusive lock still serializes
			// the commit order against other writers and checkpoints.
			if err == nil {
				if hp := db.commitHook.Load(); hp != nil {
					tr.SetState("committing")
					hookStart := time.Now()
					herr := (*hp)(stmt, sql, tr)
					m.Histogram("engine_commit_hook_seconds", obs.DefBuckets).
						Observe(time.Since(hookStart).Seconds())
					if herr != nil {
						m.Counter("engine_commit_hook_failures_total").Inc()
						err = &DurabilityError{Err: herr}
					}
				}
			}
			// With the write committed (and durable), check whether it pushed
			// the table's statistics past the staleness threshold; if so, queue
			// a background re-ANALYZE. Non-blocking — see autoanalyze.go.
			if err == nil {
				db.maybeAutoAnalyze(stmt)
			}
			db.mu.Unlock()
		}
	}
	// A deadline installed by MaxExecutionTime (rather than by the caller's
	// own context) surfaces as the typed limit error, not a cancellation.
	if errors.Is(err, context.DeadlineExceeded) && parent.Err() == nil && lim.MaxExecutionTime > 0 {
		err = &ResourceLimitError{Resource: "time", Limit: lim.MaxExecutionTime.String()}
	}
	db.stateMu.Lock()
	db.lastTrace = tr
	db.stateMu.Unlock()
	if err != nil {
		m.Counter("engine_errors_total").Inc()
		var rle *ResourceLimitError
		switch {
		case errors.As(err, &rle):
			m.Counter("engine_queries_limited_total").Inc()
		case errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded):
			m.Counter("engine_queries_canceled_total").Inc()
		}
	}
	return res, err
}

// recordQueryMetrics folds one executed query into the registry and stashes
// the SGB cost counters for LastSGBStats and the trace annotations.
func (db *DB) recordQueryMetrics(pc *planContext, tr *obs.Trace, dur time.Duration, rowsOut int) {
	m := db.Metrics()
	m.Counter("engine_queries_total").Inc()
	m.Counter("engine_rows_returned_total").Add(int64(rowsOut))
	m.Histogram("engine_query_seconds", obs.DefBuckets).Observe(dur.Seconds())
	db.stateMu.Lock()
	if n := len(pc.sgbOps); n > 0 {
		stats := pc.sgbOps[n-1].lastStats
		db.lastSGBStats = &stats
	} else {
		db.lastSGBStats = nil
	}
	db.stateMu.Unlock()
	for _, op := range pc.parOps {
		w, mor := op.parallelRun()
		if w > 1 && mor > 0 {
			m.Counter("engine_parallel_morsels_total").Add(int64(mor))
			m.Gauge("engine_parallel_workers").Set(float64(w))
		}
	}
	for _, op := range pc.sgbOps {
		s := op.lastStats
		m.Counter("sgb_queries_total").Inc()
		m.Counter("sgb_points_total").Add(int64(s.Points))
		m.Counter("sgb_distance_comps_total").Add(s.DistanceComps)
		m.Counter("sgb_rect_tests_total").Add(s.RectTests)
		m.Counter("sgb_hull_tests_total").Add(s.HullTests)
		m.Counter("sgb_window_queries_total").Add(s.WindowQueries)
		m.Counter("sgb_index_updates_total").Add(s.IndexUpdates)
		m.Counter("sgb_groups_merged_total").Add(s.GroupsMerged)
		m.Counter("sgb_rounds_total").Add(int64(s.Rounds))
		tr.Annotate("points=%d distance_comps=%d rounds=%d",
			s.Points, s.DistanceComps, s.Rounds)
		// Surface what the planner picked: operators can tell auto selection
		// from a manual \alg override, so \timing and the slowlog show both
		// the algorithm and how it was chosen.
		how := "manual"
		if op.algAuto {
			how = "auto"
		}
		tr.Annotate("sgb_alg=%s (%s)", op.algorithm, how)
	}
}

func (db *DB) execStmt(stmt Statement, tr *obs.Trace, qc *queryCtx) (*Result, error) {
	switch stmt := stmt.(type) {
	case *CreateTableStmt:
		if _, err := db.cat.Create(stmt.Name, stmt.Columns); err != nil {
			return nil, err
		}
		db.Metrics().Gauge("engine_catalog_tables").Set(float64(len(db.cat.Names())))
		return &Result{}, nil

	case *DropTableStmt:
		if deps := db.MatViewsOn(stmt.Name); len(deps) != 0 {
			return nil, fmt.Errorf("engine: cannot drop table %q: materialized view %s depends on it",
				stmt.Name, deps[0])
		}
		db.cat.Drop(stmt.Name)
		db.Metrics().Gauge("engine_catalog_tables").Set(float64(len(db.cat.Names())))
		return &Result{}, nil

	case *CreateViewStmt:
		// Validate the definition eagerly so broken views fail at
		// creation, not first use.
		pc := &planContext{db: db}
		if _, err := pc.planSelect(stmt.Query); err != nil {
			return nil, fmt.Errorf("engine: invalid view definition: %w", err)
		}
		if err := db.cat.CreateView(stmt.Name, stmt.Query); err != nil {
			return nil, err
		}
		return &Result{}, nil

	case *DropViewStmt:
		if !db.cat.DropView(stmt.Name) {
			return nil, fmt.Errorf("engine: unknown view %q", stmt.Name)
		}
		return &Result{}, nil

	case *CreateMaterializedViewStmt:
		// Validate both ways a definition can be broken: as a query (it must
		// plan) and as a maintainable stream (it must match the incremental
		// shape — see matViewShape).
		pc := &planContext{db: db}
		if _, err := pc.planSelect(stmt.Query); err != nil {
			return nil, fmt.Errorf("engine: invalid materialized view definition: %w", err)
		}
		shape, err := db.matViewShape(stmt.Query)
		if err != nil {
			return nil, err
		}
		mv := &MatView{Name: stmt.Name, Query: stmt.Query, SQL: stmt.QuerySQL, Shape: shape}
		if err := db.cat.CreateMatView(mv); err != nil {
			return nil, err
		}
		return &Result{}, nil

	case *DropMaterializedViewStmt:
		if !db.cat.DropMatView(stmt.Name) {
			return nil, fmt.Errorf("engine: unknown materialized view %q", stmt.Name)
		}
		return &Result{}, nil

	case *InsertStmt:
		t, err := db.cat.Get(stmt.Table)
		if err != nil {
			return nil, err
		}
		// Stage every row before touching the table: Table.Insert validates
		// the whole batch up front, so a failed or canceled INSERT leaves no
		// partial rows behind.
		var rows []Row
		if stmt.Query != nil {
			pc := &planContext{db: db, qc: qc}
			span := tr.StartSpan("plan")
			op, err := pc.planSelect(stmt.Query)
			span.End()
			if err != nil {
				return nil, err
			}
			root := op
			if qc != nil && qc.analyze {
				root = instrument(op)
			}
			span = tr.StartSpan("execute")
			qrows, err := materialize(root, qc)
			span.End()
			if err != nil {
				return nil, err
			}
			if qc != nil && qc.analyze {
				tr.SetPlan(explainPlan(root))
			}
			rows = make([]Row, len(qrows))
			for i, row := range qrows {
				rows[i] = row.Clone()
			}
		} else {
			rows = make([]Row, 0, len(stmt.Rows))
			for _, exprs := range stmt.Rows {
				if err := qc.tick(); err != nil {
					return nil, err
				}
				row := make(Row, len(exprs))
				for i, e := range exprs {
					f, err := compileExpr(e, nil, nil)
					if err != nil {
						return nil, fmt.Errorf("engine: INSERT values must be constants: %w", err)
					}
					if row[i], err = f(nil); err != nil {
						return nil, err
					}
				}
				rows = append(rows, row)
			}
		}
		if err := t.Insert(rows...); err != nil {
			return nil, err
		}
		return &Result{RowsAffected: len(rows)}, nil

	case *UpdateStmt:
		t, err := db.cat.Get(stmt.Table)
		if err != nil {
			return nil, err
		}
		var pred evalFn
		if stmt.Where != nil {
			pc := &planContext{db: db, qc: qc}
			if pred, err = compileExpr(stmt.Where, t.Schema, pc); err != nil {
				return nil, err
			}
		}
		type assign struct {
			col int
			fn  evalFn
		}
		assigns := make([]assign, len(stmt.Set))
		for i, sc := range stmt.Set {
			col, err := t.Schema.Resolve("", sc.Column)
			if err != nil {
				return nil, err
			}
			pc := &planContext{db: db, qc: qc}
			fn, err := compileExpr(sc.Value, t.Schema, pc)
			if err != nil {
				return nil, err
			}
			assigns[i] = assign{col: col, fn: fn}
		}
		// Evaluate the whole scan into a staged change list before applying
		// anything, so an evaluation error or cancellation mid-table leaves
		// every row untouched.
		type change struct {
			ri  int
			row Row
		}
		var changes []change
		for ri, row := range t.Rows {
			if err := qc.tick(); err != nil {
				return nil, err
			}
			if pred != nil {
				v, err := pred(row)
				if err != nil {
					return nil, err
				}
				if !v.Truthy() {
					continue
				}
			}
			// Evaluate all assignments against the pre-update row, then
			// apply — SQL's simultaneous-assignment semantics.
			newVals := make([]Value, len(assigns))
			for i, a := range assigns {
				v, err := a.fn(row)
				if err != nil {
					return nil, err
				}
				if !v.IsNull() {
					want := t.Schema[a.col].T
					if want == TypeFloat && v.T == TypeInt {
						v = NewFloat(float64(v.I))
					} else if v.T != want {
						return nil, fmt.Errorf("engine: UPDATE column %s expects %s, got %s",
							t.Schema[a.col].Name, want, v.T)
					}
				}
				newVals[i] = v
			}
			updated := row.Clone()
			for i, a := range assigns {
				updated[a.col] = newVals[i]
			}
			changes = append(changes, change{ri: ri, row: updated})
		}
		for _, c := range changes {
			t.Rows[c.ri] = c.row
		}
		res := &Result{RowsAffected: len(changes)}
		if res.RowsAffected > 0 {
			t.invalidateIndexes()
			// Only reached after every change applied: an error or
			// cancellation above returns before the staged changes (and thus
			// the staleness counter) touch the table.
			t.statsNoteUpdate(res.RowsAffected)
		}
		return res, nil

	case *DeleteStmt:
		t, err := db.cat.Get(stmt.Table)
		if err != nil {
			return nil, err
		}
		if stmt.Where == nil {
			n := len(t.Rows)
			t.Rows = nil
			t.invalidateIndexes()
			t.statsNoteDelete(n)
			return &Result{RowsAffected: n}, nil
		}
		pc := &planContext{db: db, qc: qc}
		pred, err := compileExpr(stmt.Where, t.Schema, pc)
		if err != nil {
			return nil, err
		}
		// Build the survivor list in fresh storage and swap it in only after
		// the full scan succeeds, so a predicate error or cancellation
		// mid-table cannot leave a half-deleted relation.
		res := &Result{}
		keep := make([]Row, 0, len(t.Rows))
		for _, row := range t.Rows {
			if err := qc.tick(); err != nil {
				return nil, err
			}
			v, err := pred(row)
			if err != nil {
				return nil, err
			}
			if v.Truthy() {
				res.RowsAffected++
			} else {
				keep = append(keep, row)
			}
		}
		t.Rows = keep
		if res.RowsAffected > 0 {
			t.invalidateIndexes()
			t.statsNoteDelete(res.RowsAffected)
		}
		return res, nil

	case *CreateIndexStmt:
		t, err := db.cat.Get(stmt.Table)
		if err != nil {
			return nil, err
		}
		if _, err := t.CreateIndex(stmt.Name, stmt.Column); err != nil {
			return nil, err
		}
		return &Result{}, nil

	case *DropIndexStmt:
		t, err := db.cat.Get(stmt.Table)
		if err != nil {
			return nil, err
		}
		if !t.DropIndex(stmt.Name) {
			return nil, fmt.Errorf("engine: no index %q on table %s", stmt.Name, stmt.Table)
		}
		return &Result{}, nil

	case *AnalyzeStmt:
		// ANALYZE runs as a write: it mutates the statistics catalog under
		// the exclusive lock and flows through the commit hook, so statistics
		// survive WAL replay deterministically.
		return db.analyzeTables(stmt.Table)

	case *CopyStmt:
		t, err := db.cat.Get(stmt.Table)
		if err != nil {
			return nil, err
		}
		n, err := copyFromCSV(t, stmt.Path)
		if err != nil {
			return nil, err
		}
		return &Result{RowsAffected: n}, nil

	case *ExplainStmt:
		pc := &planContext{db: db, qc: qc}
		span := tr.StartSpan("plan")
		planStart := time.Now()
		op, err := pc.planSelect(stmt.Query)
		planDur := time.Since(planStart)
		span.End()
		if err != nil {
			return nil, err
		}
		res := &Result{Columns: []string{"plan"}}
		if !stmt.Analyze {
			for _, line := range explainPlan(op) {
				res.Rows = append(res.Rows, Row{NewString(line)})
			}
			return res, nil
		}
		// EXPLAIN ANALYZE: wrap every operator, run the query to completion
		// (discarding its rows), and render the annotated tree.
		root := instrument(op)
		span = tr.StartSpan("execute")
		execStart := time.Now()
		rows, err := materialize(root, qc)
		execDur := time.Since(execStart)
		span.End()
		if err != nil {
			return nil, err
		}
		db.recordQueryMetrics(pc, tr, execDur, len(rows))
		for _, line := range explainPlan(root) {
			res.Rows = append(res.Rows, Row{NewString(line)})
		}
		res.Rows = append(res.Rows,
			Row{NewString(fmt.Sprintf("Planning Time: %.3f ms", float64(planDur.Nanoseconds())/1e6))},
			Row{NewString(fmt.Sprintf("Execution Time: %.3f ms", float64(execDur.Nanoseconds())/1e6))})
		return res, nil

	case *SelectStmt:
		pc := &planContext{db: db, qc: qc}
		span := tr.StartSpan("plan")
		op, err := pc.planSelect(stmt)
		span.End()
		if err != nil {
			return nil, err
		}
		// A sampled statement runs the instrumented tree, so its trace carries
		// the EXPLAIN ANALYZE rendering with per-operator actuals.
		root := op
		if qc != nil && qc.analyze {
			root = instrument(op)
		}
		span = tr.StartSpan("execute")
		execStart := time.Now()
		rows, err := materialize(root, qc)
		execDur := time.Since(execStart)
		span.End()
		if err != nil {
			return nil, err
		}
		db.recordQueryMetrics(pc, tr, execDur, len(rows))
		if qc != nil && qc.analyze {
			tr.SetPlan(explainPlan(root))
		}
		return &Result{Columns: op.schema().Names(), Rows: rows}, nil
	}
	return nil, fmt.Errorf("engine: unsupported statement %T", stmt)
}

// Query is a convenience wrapper asserting the statement is a SELECT.
func (db *DB) Query(sql string) (*Result, error) {
	return db.QueryContext(context.Background(), sql)
}

// QueryContext is Query with ExecContext's cancellation semantics.
func (db *DB) QueryContext(ctx context.Context, sql string) (*Result, error) {
	stmt, err := Parse(sql)
	if err != nil {
		return nil, err
	}
	if _, ok := stmt.(*SelectStmt); !ok {
		return nil, fmt.Errorf("engine: Query expects a SELECT statement")
	}
	return db.ExecStmtContext(ctx, stmt)
}
