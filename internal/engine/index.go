package engine

import (
	"fmt"
	"io"
	"strings"
	"sync"
)

// Index is a single-column hash index supporting equality lookups. The
// bucket map is built lazily and invalidated by DML, so persistence
// round-trips only the metadata.
type Index struct {
	Name   string
	Column string

	// mu guards the lazily built bucket map: read-only statements share the
	// DB statement lock, so two concurrent SELECTs may race to (re)build the
	// buckets without it.
	mu      sync.Mutex
	buckets map[string][]int // value key -> row positions; nil = stale
}

// indexKey normalizes a value the same way the hash join does (see
// canonicalKeyValue), so integer predicates hit float columns and vice versa
// without rounding distinct int keys above 2^53 together.
func indexKey(v Value) string {
	return Key([]Value{canonicalKeyValue(v)})
}

// CreateIndex registers a hash index over the named column.
func (t *Table) CreateIndex(name, column string) (*Index, error) {
	for _, ix := range t.Indexes {
		if strings.EqualFold(ix.Name, name) {
			return nil, fmt.Errorf("engine: index %q already exists on table %s", name, t.Name)
		}
	}
	if _, err := t.Schema.Resolve("", column); err != nil {
		return nil, err
	}
	ix := &Index{Name: name, Column: column}
	t.Indexes = append(t.Indexes, ix)
	return ix, nil
}

// DropIndex removes the named index; it reports whether one was dropped.
func (t *Table) DropIndex(name string) bool {
	for i, ix := range t.Indexes {
		if strings.EqualFold(ix.Name, name) {
			t.Indexes = append(t.Indexes[:i], t.Indexes[i+1:]...)
			return true
		}
	}
	return false
}

// indexOn returns a usable index over the named column, or nil.
func (t *Table) indexOn(column string) *Index {
	for _, ix := range t.Indexes {
		if strings.EqualFold(ix.Column, column) {
			return ix
		}
	}
	return nil
}

// invalidateIndexes marks every index stale after destructive DML.
func (t *Table) invalidateIndexes() {
	for _, ix := range t.Indexes {
		ix.mu.Lock()
		ix.buckets = nil
		ix.mu.Unlock()
	}
}

// lookup returns the row positions whose indexed column equals v,
// (re)building the bucket map if necessary.
func (ix *Index) lookup(t *Table, v Value) ([]int, error) {
	ix.mu.Lock()
	defer ix.mu.Unlock()
	if ix.buckets == nil {
		col, err := t.Schema.Resolve("", ix.Column)
		if err != nil {
			return nil, err
		}
		ix.buckets = make(map[string][]int, len(t.Rows))
		for pos, row := range t.Rows {
			if row[col].IsNull() {
				continue
			}
			k := indexKey(row[col])
			ix.buckets[k] = append(ix.buckets[k], pos)
		}
	}
	if v.IsNull() {
		return nil, nil // NULL never equals anything
	}
	return ix.buckets[indexKey(v)], nil
}

// addRow maintains a live bucket map on insert (no-op when stale).
func (ix *Index) addRow(t *Table, pos int) {
	ix.mu.Lock()
	defer ix.mu.Unlock()
	if ix.buckets == nil {
		return
	}
	col, err := t.Schema.Resolve("", ix.Column)
	if err != nil {
		ix.buckets = nil
		return
	}
	v := t.Rows[pos][col]
	if v.IsNull() {
		return
	}
	k := indexKey(v)
	ix.buckets[k] = append(ix.buckets[k], pos)
}

// CreateIndexStmt is a parsed CREATE INDEX name ON table (column).
type CreateIndexStmt struct {
	Name   string
	Table  string
	Column string
}

func (*CreateIndexStmt) stmt() {}

// DropIndexStmt is a parsed DROP INDEX name ON table.
type DropIndexStmt struct {
	Name  string
	Table string
}

func (*DropIndexStmt) stmt() {}

// indexScanOp serves rows matching an equality predicate from a hash index
// instead of scanning the heap.
type indexScanOp struct {
	planEst
	table *Table
	ix    *Index
	sch   Schema
	keyFn evalFn // constant expression evaluated at open time

	positions []int
	pos       int
}

func (s *indexScanOp) schema() Schema { return s.sch }
func (s *indexScanOp) close() error   { return nil }

func (s *indexScanOp) open() error {
	v, err := s.keyFn(nil)
	if err != nil {
		return err
	}
	s.positions, err = s.ix.lookup(s.table, v)
	if err != nil {
		return err
	}
	s.pos = 0
	return nil
}

func (s *indexScanOp) next() (Row, error) {
	if s.pos >= len(s.positions) {
		return nil, io.EOF
	}
	r := s.table.Rows[s.positions[s.pos]]
	s.pos++
	return r, nil
}

// isConstExpr reports whether e references no columns or subqueries, so it
// can be evaluated once against the empty row.
func isConstExpr(e Expr) bool {
	switch e := e.(type) {
	case *Literal:
		return true
	case *UnaryExpr:
		return isConstExpr(e.X)
	case *BinaryExpr:
		return isConstExpr(e.L) && isConstExpr(e.R)
	case *FuncCall:
		if isAggregateName(e.Name) {
			return false
		}
		for _, a := range e.Args {
			if !isConstExpr(a) {
				return false
			}
		}
		return true
	case *InList:
		if !isConstExpr(e.X) {
			return false
		}
		for _, it := range e.Items {
			if !isConstExpr(it) {
				return false
			}
		}
		return true
	default:
		return false
	}
}

// tryIndexScan rewrites a sequential scan plus an equality conjunct
// (col = constant) into an index scan when a matching index exists. It
// returns the (possibly replaced) source and the surviving conjuncts.
func tryIndexScan(src operator, conjuncts []Expr) (operator, []Expr) {
	scan, ok := src.(*scanOp)
	if !ok {
		return src, conjuncts
	}
	for i, c := range conjuncts {
		be, ok := c.(*BinaryExpr)
		if !ok || be.Op != "=" {
			continue
		}
		colSide, constSide := be.L, be.R
		cr, ok := colSide.(*ColumnRef)
		if !ok || !isConstExpr(constSide) {
			cr, ok = constSide.(*ColumnRef)
			if !ok || !isConstExpr(colSide) {
				continue
			}
			constSide = be.L
		}
		idx, err := scan.sch.Resolve(cr.Table, cr.Name)
		if err != nil {
			continue
		}
		ix := scan.table.indexOn(scan.table.Schema[idx].Name)
		if ix == nil {
			continue
		}
		keyFn, err := compileExpr(constSide, nil, nil)
		if err != nil {
			continue
		}
		rest := append(append([]Expr{}, conjuncts[:i]...), conjuncts[i+1:]...)
		return &indexScanOp{table: scan.table, ix: ix, sch: scan.sch, keyFn: keyFn}, rest
	}
	return src, conjuncts
}
