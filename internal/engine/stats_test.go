package engine

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// statsDB builds a small two-float-column table and returns it analyzed.
func statsDB(t *testing.T) (*DB, *Table) {
	t.Helper()
	db := NewDB()
	mustExec(t, db, "CREATE TABLE pts (id INT, x FLOAT, y FLOAT)")
	mustExec(t, db, "INSERT INTO pts VALUES (1, 0, 0), (2, 10, 10), (3, 5, 5), (4, 5, 6), (5, 0, 10)")
	tab, err := db.Catalog().Get("pts")
	if err != nil {
		t.Fatal(err)
	}
	return db, tab
}

// TestAnalyzeStatement pins the ANALYZE result shape and the catalog entry it
// produces: exact row count, per-column ranges and distinct counts, and a
// density sketch over the first two FLOAT columns.
func TestAnalyzeStatement(t *testing.T) {
	db, tab := statsDB(t)
	res := mustExec(t, db, "ANALYZE pts")
	if got, want := strings.Join(res.Columns, ","), "table,rows,sketch"; got != want {
		t.Fatalf("columns = %s, want %s", got, want)
	}
	if len(res.Rows) != 1 {
		t.Fatalf("rows = %d, want 1", len(res.Rows))
	}
	if got := rowStrings(res)[0]; got != "pts|5|48x48 over (x, y)" {
		t.Errorf("summary row = %q", got)
	}

	s := tab.Stats
	if s == nil || !s.Fresh() {
		t.Fatalf("stats not fresh after ANALYZE: %+v", s)
	}
	if s.RowCount != 5 || s.AnalyzedRows != 5 || s.Stale != 0 {
		t.Errorf("counters = %+v", s)
	}
	id := s.Col(0)
	if id.DistinctEst != 5 || !id.HasRange || id.Min != 1 || id.Max != 5 {
		t.Errorf("id stats = %+v", id)
	}
	x := s.Col(1)
	if x.DistinctEst != 3 || x.Min != 0 || x.Max != 10 {
		t.Errorf("x stats = %+v", x)
	}
	if s.Sketch == nil || s.Sketch.N != 5 || s.Sketch.ColX != 1 || s.Sketch.ColY != 2 {
		t.Errorf("sketch = %+v", s.Sketch)
	}

	// Bare ANALYZE covers the whole catalog, one summary row per table.
	mustExec(t, db, "CREATE TABLE other (a INT)")
	res = mustExec(t, db, "ANALYZE")
	if len(res.Rows) != 2 {
		t.Fatalf("catalog ANALYZE rows = %d, want 2", len(res.Rows))
	}
	if _, err := db.Exec("ANALYZE nosuch"); err == nil {
		t.Error("ANALYZE of a missing table succeeded")
	}
}

// TestStatsIncrementalMaintenance checks the DML hooks: INSERT widens ranges
// and grows the sketch, UPDATE and DELETE churn the staleness counter, and
// enough churn flips Fresh off until the next ANALYZE.
func TestStatsIncrementalMaintenance(t *testing.T) {
	db, tab := statsDB(t)
	mustExec(t, db, "ANALYZE pts")
	s := tab.Stats

	mustExec(t, db, "INSERT INTO pts VALUES (6, -5, 20)")
	if s.RowCount != 6 || s.Stale != 1 {
		t.Errorf("after insert: %+v", s)
	}
	if x := s.Col(1); x.Min != -5 {
		t.Errorf("x range not widened: %+v", x)
	}
	if s.Sketch.N != 6 {
		t.Errorf("sketch not maintained: N=%d", s.Sketch.N)
	}

	mustExec(t, db, "UPDATE pts SET x = 1 WHERE id = 3")
	if s.RowCount != 6 || s.Stale != 2 {
		t.Errorf("after update: %+v", s)
	}
	if !s.Fresh() {
		t.Errorf("2 stale rows of 5 analyzed should still count as fresh")
	}

	mustExec(t, db, "DELETE FROM pts WHERE id = 1")
	if s.RowCount != 5 || s.Stale != 3 {
		t.Errorf("after delete: %+v", s)
	}
	if s.Fresh() {
		t.Errorf("stats still fresh past the half-churn threshold: %+v", s)
	}
	mustExec(t, db, "ANALYZE pts")
	if s = tab.Stats; !s.Fresh() || s.Stale != 0 || s.RowCount != 5 {
		t.Errorf("re-ANALYZE did not reset: %+v", s)
	}
}

// TestStatsRollbackRegression is the failure-atomicity regression test: an
// INSERT, UPDATE, or COPY that errors after validating (or mutating) part of
// its input must leave both the data and every statistics counter untouched.
func TestStatsRollbackRegression(t *testing.T) {
	db, tab := statsDB(t)
	mustExec(t, db, "ANALYZE pts")
	before := *tab.Stats
	beforeSketchN := tab.Stats.Sketch.N

	// INSERT whose second row is invalid: the batch validates before it
	// appends, so nothing lands.
	if _, err := db.Exec("INSERT INTO pts VALUES (7, 1, 1), (8, 'bad', 2)"); err == nil {
		t.Fatal("expected INSERT type error")
	}
	// UPDATE whose assignment fails on the second matching row, after the
	// first was already staged.
	if _, err := db.Exec("UPDATE pts SET x = CASE WHEN id = 1 THEN 0.5 ELSE 'bad' END"); err == nil {
		t.Fatal("expected UPDATE type error")
	}
	// COPY whose CSV breaks mid-file: parsed fully before insertion.
	path := filepath.Join(t.TempDir(), "bad.csv")
	if err := os.WriteFile(path, []byte("id,x,y\n9,1,1\n10,nope,2\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Exec("COPY pts FROM '" + path + "'"); err == nil {
		t.Fatal("expected COPY parse error")
	}

	after := tab.Stats
	if after.RowCount != before.RowCount || after.Stale != before.Stale ||
		after.AnalyzedRows != before.AnalyzedRows {
		t.Errorf("counters moved on rolled-back DML: before %+v after %+v", before, after)
	}
	if after.Sketch.N != beforeSketchN {
		t.Errorf("sketch grew on rolled-back DML: %d -> %d", beforeSketchN, after.Sketch.N)
	}
	if n := len(tab.Rows); n != 5 {
		t.Errorf("table has %d rows after failed DML, want 5", n)
	}
}

// TestStatsSurviveSnapshot round-trips the statistics catalog through
// save/load: a restored table plans with the same statistics it was saved
// with.
func TestStatsSurviveSnapshot(t *testing.T) {
	db, tab := statsDB(t)
	mustExec(t, db, "ANALYZE pts")
	var buf bytes.Buffer
	if err := db.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	lt, err := loaded.Catalog().Get("pts")
	if err != nil {
		t.Fatal(err)
	}
	if lt.Stats == nil || !lt.Stats.Fresh() {
		t.Fatalf("stats lost in snapshot round-trip: %+v", lt.Stats)
	}
	if lt.Stats.AnalyzedRows != tab.Stats.AnalyzedRows || lt.Stats.Sketch.N != tab.Stats.Sketch.N {
		t.Errorf("stats mismatch after load: %+v vs %+v", lt.Stats, tab.Stats)
	}
	if !loaded.SGBAlgorithmIsAuto() {
		t.Error("auto algorithm selection lost in snapshot round-trip")
	}
}

// TestDensitySketchEstimates sanity-checks the two sketch estimators on a
// uniform grid, where both have closed-form expectations.
func TestDensitySketchEstimates(t *testing.T) {
	db := NewDB()
	mustExec(t, db, "CREATE TABLE grid (x FLOAT, y FLOAT)")
	tab, err := db.Catalog().Get("grid")
	if err != nil {
		t.Fatal(err)
	}
	var rows []Row
	for i := 0; i < 48; i++ {
		for j := 0; j < 48; j++ {
			rows = append(rows, Row{NewFloat(float64(i)), NewFloat(float64(j))})
		}
	}
	if err := tab.Insert(rows...); err != nil {
		t.Fatal(err)
	}
	s := tab.Analyze()
	sk := s.Sketch
	if sk == nil {
		t.Fatal("no sketch over a two-float table")
	}
	// One point per cell (modulo the shrunken boundary cells): a neighborhood
	// of area A should contain about A/cellArea ≈ A points.
	cell := sk.CellW * sk.CellH
	if k := sk.ExpectedNeighbors(9 * cell); k < 6 || k > 30 {
		t.Errorf("ExpectedNeighbors(9 cells) = %.1f on a uniform grid, want ≈9-ish", k)
	}
	occ := sk.OccupiedArea()
	total := float64(sketchGridSide*sketchGridSide) * cell
	if occ < total*0.5 || occ > total*1.01 {
		t.Errorf("OccupiedArea = %.1f of %.1f on a uniform grid", occ, total)
	}
	// Clamp check: a point far outside the analyzed bounding box still lands
	// in the sketch.
	n := sk.N
	sk.add(1e9, -1e9)
	if sk.N != n+1 {
		t.Errorf("out-of-box add lost: N=%d", sk.N)
	}
}
