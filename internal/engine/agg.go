package engine

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"sgb/internal/geom"
	"sgb/internal/hull"
)

// isAggregateName reports whether name denotes an aggregate function.
func isAggregateName(name string) bool {
	switch name {
	case "count", "sum", "avg", "average", "min", "max",
		"array_agg", "list_id", "st_polygon", "stddev", "variance":
		return true
	}
	return false
}

// aggState accumulates one aggregate over the rows of one group. merge folds
// another accumulator of the same concrete type into the receiver — the
// second phase of two-phase parallel aggregation, where per-morsel partial
// states are combined in morsel order into the global state.
type aggState interface {
	add(args []Value) error
	merge(other aggState) error
	result() Value
}

// newAggState constructs the accumulator for an aggregate call.
func newAggState(name string, star bool, argc int) (aggState, error) {
	switch name {
	case "count":
		if !star && argc != 1 {
			return nil, fmt.Errorf("engine: count() expects * or one argument")
		}
		return &countAgg{star: star}, nil
	case "sum":
		if argc != 1 {
			return nil, fmt.Errorf("engine: sum() expects one argument")
		}
		return &sumAgg{}, nil
	case "avg", "average":
		if argc != 1 {
			return nil, fmt.Errorf("engine: avg() expects one argument")
		}
		return &avgAgg{}, nil
	case "min", "max":
		if argc != 1 {
			return nil, fmt.Errorf("engine: %s() expects one argument", name)
		}
		return &minMaxAgg{max: name == "max"}, nil
	case "array_agg", "list_id":
		if argc != 1 {
			return nil, fmt.Errorf("engine: %s() expects one argument", name)
		}
		return &arrayAgg{}, nil
	case "st_polygon":
		if argc != 2 {
			return nil, fmt.Errorf("engine: st_polygon() expects two arguments (x, y)")
		}
		return &polygonAgg{}, nil
	case "stddev", "variance":
		if argc != 1 {
			return nil, fmt.Errorf("engine: %s() expects one argument", name)
		}
		return &varianceAgg{stddev: name == "stddev"}, nil
	}
	return nil, fmt.Errorf("engine: unknown aggregate %s()", name)
}

type countAgg struct {
	star bool
	n    int64
}

func (a *countAgg) add(args []Value) error {
	if a.star || !args[0].IsNull() {
		a.n++
	}
	return nil
}

func (a *countAgg) result() Value { return NewInt(a.n) }

func (a *countAgg) merge(other aggState) error {
	a.n += other.(*countAgg).n
	return nil
}

type sumAgg struct {
	anyRow  bool
	isFloat bool // a float input — or an int64 overflow — promoted the sum
	i       int64
	f       float64
}

func (a *sumAgg) add(args []Value) error {
	v := args[0]
	if v.IsNull() {
		return nil
	}
	a.anyRow = true
	switch v.T {
	case TypeInt:
		if a.isFloat {
			a.f += float64(v.I)
			return nil
		}
		s := a.i + v.I
		if (a.i > 0 && v.I > 0 && s < 0) || (a.i < 0 && v.I < 0 && s >= 0) {
			// The exact int64 sum just overflowed: degrade to float, keeping
			// the magnitude right instead of silently wrapping the sign.
			a.isFloat = true
			a.f = float64(a.i) + float64(v.I)
			return nil
		}
		a.i = s
	case TypeFloat:
		if !a.isFloat {
			a.isFloat = true
			a.f = float64(a.i)
		}
		a.f += v.F
	default:
		return fmt.Errorf("engine: sum over non-numeric %s", v.T)
	}
	return nil
}

func (a *sumAgg) merge(other aggState) error {
	b := other.(*sumAgg)
	if !b.anyRow {
		return nil
	}
	if !a.anyRow {
		*a = *b
		return nil
	}
	if a.isFloat || b.isFloat {
		af, bf := a.f, b.f
		if !a.isFloat {
			af = float64(a.i)
		}
		if !b.isFloat {
			bf = float64(b.i)
		}
		a.isFloat, a.f = true, af+bf
		return nil
	}
	s := a.i + b.i
	if (a.i > 0 && b.i > 0 && s < 0) || (a.i < 0 && b.i < 0 && s >= 0) {
		a.isFloat = true
		a.f = float64(a.i) + float64(b.i)
		return nil
	}
	a.i = s
	return nil
}

func (a *sumAgg) result() Value {
	if !a.anyRow {
		return Null
	}
	if a.isFloat {
		return NewFloat(a.f)
	}
	return NewInt(a.i)
}

type avgAgg struct {
	n int64
	f float64
}

func (a *avgAgg) add(args []Value) error {
	v := args[0]
	if v.IsNull() {
		return nil
	}
	f, err := v.AsFloat()
	if err != nil {
		return fmt.Errorf("engine: avg over non-numeric %s", v.T)
	}
	a.n++
	a.f += f
	return nil
}

func (a *avgAgg) merge(other aggState) error {
	b := other.(*avgAgg)
	a.n += b.n
	a.f += b.f
	return nil
}

func (a *avgAgg) result() Value {
	if a.n == 0 {
		return Null
	}
	return NewFloat(a.f / float64(a.n))
}

type minMaxAgg struct {
	max  bool
	seen bool
	best Value
}

func (a *minMaxAgg) add(args []Value) error {
	v := args[0]
	if v.IsNull() {
		return nil
	}
	if !a.seen {
		a.best, a.seen = v, true
		return nil
	}
	c, err := Compare(v, a.best)
	if err != nil {
		return err
	}
	if (a.max && c > 0) || (!a.max && c < 0) {
		a.best = v
	}
	return nil
}

func (a *minMaxAgg) merge(other aggState) error {
	b := other.(*minMaxAgg)
	if !b.seen {
		return nil
	}
	return a.add([]Value{b.best})
}

func (a *minMaxAgg) result() Value {
	if !a.seen {
		return Null
	}
	return a.best
}

// arrayAgg renders the collected values PostgreSQL-style: {v1,v2,...}.
type arrayAgg struct {
	items []string
}

func (a *arrayAgg) add(args []Value) error {
	if !args[0].IsNull() {
		a.items = append(a.items, args[0].String())
	}
	return nil
}

func (a *arrayAgg) merge(other aggState) error {
	a.items = append(a.items, other.(*arrayAgg).items...)
	return nil
}

func (a *arrayAgg) result() Value {
	return NewString("{" + strings.Join(a.items, ",") + "}")
}

// polygonAgg implements ST_Polygon(x, y): the WKT convex-hull polygon of the
// group's points, used by the paper's MANET and geo-social queries.
type polygonAgg struct {
	pts []geom.Point
}

func (a *polygonAgg) add(args []Value) error {
	if args[0].IsNull() || args[1].IsNull() {
		return nil
	}
	x, err := args[0].AsFloat()
	if err != nil {
		return fmt.Errorf("engine: st_polygon x: %v", err)
	}
	y, err := args[1].AsFloat()
	if err != nil {
		return fmt.Errorf("engine: st_polygon y: %v", err)
	}
	a.pts = append(a.pts, geom.Point{x, y})
	return nil
}

func (a *polygonAgg) merge(other aggState) error {
	a.pts = append(a.pts, other.(*polygonAgg).pts...)
	return nil
}

func (a *polygonAgg) result() Value {
	if len(a.pts) == 0 {
		return Null
	}
	h := hull.Compute(a.pts)
	var sb strings.Builder
	switch len(h) {
	case 1:
		fmt.Fprintf(&sb, "POINT(%g %g)", h[0][0], h[0][1])
	case 2:
		fmt.Fprintf(&sb, "LINESTRING(%g %g, %g %g)", h[0][0], h[0][1], h[1][0], h[1][1])
	default:
		sb.WriteString("POLYGON((")
		for _, p := range h {
			fmt.Fprintf(&sb, "%g %g, ", p[0], p[1])
		}
		fmt.Fprintf(&sb, "%g %g))", h[0][0], h[0][1]) // close the ring
	}
	return NewString(sb.String())
}

// varianceAgg computes the sample variance with Welford's online algorithm;
// stddev is its square root.
type varianceAgg struct {
	stddev bool
	n      int64
	mean   float64
	m2     float64
}

func (a *varianceAgg) add(args []Value) error {
	v := args[0]
	if v.IsNull() {
		return nil
	}
	f, err := v.AsFloat()
	if err != nil {
		return fmt.Errorf("engine: variance over non-numeric %s", v.T)
	}
	a.n++
	delta := f - a.mean
	a.mean += delta / float64(a.n)
	a.m2 += delta * (f - a.mean)
	return nil
}

// merge combines two Welford states with the parallel-variance update of
// Chan, Golub & LeVeque, keeping the numerically stable m2 formulation.
func (a *varianceAgg) merge(other aggState) error {
	b := other.(*varianceAgg)
	if b.n == 0 {
		return nil
	}
	if a.n == 0 {
		a.n, a.mean, a.m2 = b.n, b.mean, b.m2
		return nil
	}
	n := a.n + b.n
	delta := b.mean - a.mean
	a.mean += delta * float64(b.n) / float64(n)
	a.m2 += b.m2 + delta*delta*float64(a.n)*float64(b.n)/float64(n)
	a.n = n
	return nil
}

func (a *varianceAgg) result() Value {
	if a.n < 2 {
		return Null // sample variance is undefined below two values
	}
	v := a.m2 / float64(a.n-1)
	if a.stddev {
		return NewFloat(sqrtNonNeg(v))
	}
	return NewFloat(v)
}

func sqrtNonNeg(v float64) float64 {
	if v < 0 {
		return 0 // numerical noise on constant inputs
	}
	return math.Sqrt(v)
}

// aggCall is one aggregate invocation extracted from the SELECT/HAVING
// expressions by the grouping rewrite.
type aggCall struct {
	name     string
	star     bool
	distinct bool
	args     []evalFn
}

func (c *aggCall) newState() (aggState, error) {
	st, err := newAggState(c.name, c.star, len(c.args))
	if err != nil {
		return nil, err
	}
	if c.distinct {
		if c.star {
			return nil, fmt.Errorf("engine: %s(DISTINCT *) is not valid", c.name)
		}
		st = &distinctAgg{inner: st, seen: make(map[string]bool)}
	}
	return st, nil
}

// mergeable reports whether the call's partial states can be combined with
// aggState.merge. DISTINCT aggregates cannot: deduplication must see every
// tuple of the group in one place.
func (c *aggCall) mergeable() bool { return !c.distinct }

// distinctAgg wraps an accumulator so each distinct argument tuple is
// accumulated once per group (count/sum/avg/... DISTINCT).
type distinctAgg struct {
	inner aggState
	seen  map[string]bool
}

func (a *distinctAgg) add(args []Value) error {
	k := Key(args)
	if a.seen[k] {
		return nil
	}
	a.seen[k] = true
	return a.inner.add(args)
}

// merge is unsupported: two partial DISTINCT states have already folded their
// deduplicated tuples into the inner accumulators, so cross-partial duplicates
// cannot be undone. The planner never marks plans with DISTINCT aggregates
// parallel (see aggCall.mergeable); this is the backstop.
func (a *distinctAgg) merge(other aggState) error {
	return fmt.Errorf("engine: internal error: DISTINCT aggregate state cannot be merged")
}

func (a *distinctAgg) result() Value { return a.inner.result() }

func (c *aggCall) evalArgs(r Row) ([]Value, error) {
	out := make([]Value, len(c.args))
	for i, f := range c.args {
		v, err := f(r)
		if err != nil {
			return nil, err
		}
		out[i] = v
	}
	return out, nil
}

// groupAccumulator bundles the states of all aggregate calls for one group.
type groupAccumulator struct {
	states []aggState
}

func newGroupAccumulator(calls []*aggCall) (*groupAccumulator, error) {
	acc := &groupAccumulator{states: make([]aggState, len(calls))}
	for i, c := range calls {
		st, err := c.newState()
		if err != nil {
			return nil, err
		}
		acc.states[i] = st
	}
	return acc, nil
}

func (g *groupAccumulator) add(calls []*aggCall, r Row) error {
	for i, c := range calls {
		args, err := c.evalArgs(r)
		if err != nil {
			return err
		}
		if err := g.states[i].add(args); err != nil {
			return err
		}
	}
	return nil
}

// merge folds another group's partial states into g, call by call.
func (g *groupAccumulator) merge(o *groupAccumulator) error {
	for i, st := range g.states {
		if err := st.merge(o.states[i]); err != nil {
			return err
		}
	}
	return nil
}

func (g *groupAccumulator) results() []Value {
	out := make([]Value, len(g.states))
	for i, st := range g.states {
		out[i] = st.result()
	}
	return out
}

// exprEqual reports structural equality of two expressions, used to match
// SELECT items against GROUP BY expressions.
func exprEqual(a, b Expr) bool {
	switch a := a.(type) {
	case *ColumnRef:
		b, ok := b.(*ColumnRef)
		return ok && strings.EqualFold(a.Table, b.Table) && strings.EqualFold(a.Name, b.Name)
	case *Literal:
		b, ok := b.(*Literal)
		return ok && a.V == b.V
	case *UnaryExpr:
		b, ok := b.(*UnaryExpr)
		return ok && a.Op == b.Op && exprEqual(a.X, b.X)
	case *BinaryExpr:
		b, ok := b.(*BinaryExpr)
		return ok && a.Op == b.Op && exprEqual(a.L, b.L) && exprEqual(a.R, b.R)
	case *FuncCall:
		b, ok := b.(*FuncCall)
		if !ok || a.Name != b.Name || a.Star != b.Star || a.Distinct != b.Distinct || len(a.Args) != len(b.Args) {
			return false
		}
		for i := range a.Args {
			if !exprEqual(a.Args[i], b.Args[i]) {
				return false
			}
		}
		return true
	case *CaseExpr:
		b, ok := b.(*CaseExpr)
		if !ok || len(a.Whens) != len(b.Whens) ||
			(a.Operand == nil) != (b.Operand == nil) || (a.Else == nil) != (b.Else == nil) {
			return false
		}
		if a.Operand != nil && !exprEqual(a.Operand, b.Operand) {
			return false
		}
		for i := range a.Whens {
			if !exprEqual(a.Whens[i].Cond, b.Whens[i].Cond) ||
				!exprEqual(a.Whens[i].Result, b.Whens[i].Result) {
				return false
			}
		}
		return a.Else == nil || exprEqual(a.Else, b.Else)
	}
	return false
}

// matchGroupExpr returns the index of e among the grouping expressions. A
// bare column reference also matches when it resolves to the same column as
// a (possibly qualified) grouping expression.
func matchGroupExpr(e Expr, groupExprs []Expr, schema Schema) int {
	for i, g := range groupExprs {
		if exprEqual(e, g) {
			return i
		}
	}
	// Resolve-based match for column refs with differing qualification.
	if ec, ok := e.(*ColumnRef); ok {
		ei, err := schema.Resolve(ec.Table, ec.Name)
		if err != nil {
			return -1
		}
		for i, g := range groupExprs {
			if gc, ok := g.(*ColumnRef); ok {
				gi, err := schema.Resolve(gc.Table, gc.Name)
				if err == nil && gi == ei {
					return i
				}
			}
		}
	}
	return -1
}

// sortRowsStable sorts rows by the given key columns ascending — used to make
// hash-aggregate output deterministic.
func sortRowsStable(rows []Row, keyWidth int) {
	sort.SliceStable(rows, func(i, j int) bool {
		for k := 0; k < keyWidth; k++ {
			c, err := Compare(rows[i][k], rows[j][k])
			if err != nil {
				return false
			}
			if c != 0 {
				return c < 0
			}
		}
		return false
	})
}
