package engine

import (
	"fmt"
	"strings"
)

// ExplainStmt is a parsed EXPLAIN SELECT.
type ExplainStmt struct {
	Query *SelectStmt
}

func (*ExplainStmt) stmt() {}

// explainPlan renders an operator tree as indented text, one operator per
// line, in execution order (children before parents reads bottom-up; the
// rendering is top-down like PostgreSQL's EXPLAIN).
func explainPlan(op operator) []string {
	var lines []string
	var walk func(op operator, depth int)
	walk = func(op operator, depth int) {
		indent := strings.Repeat("  ", depth)
		switch op := op.(type) {
		case *indexScanOp:
			lines = append(lines, fmt.Sprintf("%sIndexScan on %s using %s (%s = const)",
				indent, op.table.Name, op.ix.Name, op.ix.Column))
		case *scanOp:
			lines = append(lines, fmt.Sprintf("%sSeqScan on %s (%d rows)", indent, op.table.Name, len(op.table.Rows)))
		case *valuesOp:
			lines = append(lines, fmt.Sprintf("%sValues (%d rows)", indent, len(op.rows)))
		case *renameOp:
			lines = append(lines, fmt.Sprintf("%sSubqueryScan as %s", indent, op.sch[0].Table))
			walk(op.child, depth+1)
		case *filterOp:
			lines = append(lines, indent+"Filter")
			walk(op.child, depth+1)
		case *projectOp:
			lines = append(lines, fmt.Sprintf("%sProject (%s)", indent, strings.Join(op.sch.Names(), ", ")))
			walk(op.child, depth+1)
		case *hashJoinOp:
			lines = append(lines, fmt.Sprintf("%sHashJoin (%d key(s))", indent, len(op.leftKeys)))
			walk(op.left, depth+1)
			walk(op.right, depth+1)
		case *crossJoinOp:
			lines = append(lines, indent+"NestedLoop (cross)")
			walk(op.left, depth+1)
			walk(op.right, depth+1)
		case *sortOp:
			lines = append(lines, fmt.Sprintf("%sSort (%d key(s))", indent, len(op.keys)))
			walk(op.child, depth+1)
		case *distinctOp:
			lines = append(lines, indent+"Distinct")
			walk(op.child, depth+1)
		case *limitOp:
			label := fmt.Sprintf("%sLimit %d", indent, op.n)
			if op.offset > 0 {
				label += fmt.Sprintf(" Offset %d", op.offset)
			}
			lines = append(lines, label)
			walk(op.child, depth+1)
		case *hashAggOp:
			lines = append(lines, fmt.Sprintf("%sHashAggregate (%d group key(s), %d aggregate(s))",
				indent, len(op.groupExprs), len(op.calls)))
			walk(op.child, depth+1)
		case *sgbAggOp:
			mode := "DISTANCE-TO-ALL " + op.spec.Overlap.String()
			if op.spec.Mode == SGBAnyMode {
				mode = "DISTANCE-TO-ANY"
			}
			lines = append(lines, fmt.Sprintf("%sSimilarityGroupBy %s %s WITHIN %g [%s] (%d aggregate(s))",
				indent, mode, op.spec.Metric, op.spec.Eps, op.algorithm, len(op.calls)))
			walk(op.child, depth+1)
		default:
			lines = append(lines, fmt.Sprintf("%s%T", indent, op))
		}
	}
	walk(op, 0)
	return lines
}
