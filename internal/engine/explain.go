package engine

import (
	"fmt"
	"strings"
)

// ExplainStmt is a parsed EXPLAIN [ANALYZE] SELECT. With Analyze set the
// query is executed and the plan is annotated with actual row counts,
// per-operator wall time, and the SGB cost counters.
type ExplainStmt struct {
	Query   *SelectStmt
	Analyze bool
}

func (*ExplainStmt) stmt() {}

// describeOp returns the EXPLAIN label and the children of one physical
// operator. known is false for operator types the switch does not cover —
// TestExplainCoversAllOperators walks every plan shape the planner produces
// and fails on unknown nodes, so new operators cannot silently regress
// EXPLAIN output. instrumentedOp is transparent here: callers unwrap it
// before describing (see renderPlan).
func describeOp(op operator) (label string, children []operator, known bool) {
	switch op := op.(type) {
	case *indexScanOp:
		return fmt.Sprintf("IndexScan on %s using %s (%s = const)",
			op.table.Name, op.ix.Name, op.ix.Column), nil, true
	case *scanOp:
		return fmt.Sprintf("SeqScan on %s (%d rows)", op.table.Name, len(op.table.Rows)), nil, true
	case *valuesOp:
		return fmt.Sprintf("Values (%d rows)", len(op.rows)), nil, true
	case *renameOp:
		return fmt.Sprintf("SubqueryScan as %s", op.sch[0].Table), []operator{op.child}, true
	case *filterOp:
		return "Filter", []operator{op.child}, true
	case *projectOp:
		return fmt.Sprintf("Project (%s)", strings.Join(op.sch.Names(), ", ")), []operator{op.child}, true
	case *hashJoinOp:
		return fmt.Sprintf("HashJoin (%d key(s))", len(op.leftKeys)), []operator{op.left, op.right}, true
	case *crossJoinOp:
		return "NestedLoop (cross)", []operator{op.left, op.right}, true
	case *sortOp:
		return fmt.Sprintf("Sort (%d key(s))", len(op.keys)), []operator{op.child}, true
	case *distinctOp:
		return "Distinct", []operator{op.child}, true
	case *limitOp:
		label := fmt.Sprintf("Limit %d", op.n)
		if op.offset > 0 {
			label += fmt.Sprintf(" Offset %d", op.offset)
		}
		return label, []operator{op.child}, true
	case *hashAggOp:
		prefix := ""
		if op.frag != nil && op.workers > 1 {
			prefix = "Parallel "
		}
		return fmt.Sprintf("%sHashAggregate (%d group key(s), %d aggregate(s))",
			prefix, len(op.groupExprs), len(op.calls)), []operator{op.child}, true
	case *sgbAggOp:
		mode := "DISTANCE-TO-ALL " + op.spec.Overlap.String()
		if op.spec.Mode == SGBAnyMode {
			mode = "DISTANCE-TO-ANY"
		}
		prefix := ""
		if op.frag != nil && op.workers > 1 {
			prefix = "Parallel "
		}
		return fmt.Sprintf("%sSimilarityGroupBy %s %s WITHIN %g [%s] (%d aggregate(s))",
			prefix, mode, op.spec.Metric, op.spec.Eps, op.algorithm, len(op.calls)), []operator{op.child}, true
	}
	return fmt.Sprintf("%T", op), nil, false
}

// explainPlan renders an operator tree as indented text, one operator per
// line, in execution order (children before parents reads bottom-up; the
// rendering is top-down like PostgreSQL's EXPLAIN). Instrumented nodes —
// present after an EXPLAIN ANALYZE run — additionally carry
// "(actual rows=N loops=L time=T ms)" and, for stateful operators, an
// indented annotation line with buffer sizes and SGB cost counters.
func explainPlan(root operator) []string {
	var lines []string
	var walk func(op operator, depth int)
	walk = func(op operator, depth int) {
		var inst *instrumentedOp
		if i, ok := op.(*instrumentedOp); ok {
			inst = i
			op = i.child
		}
		label, children, _ := describeOp(op)
		indent := strings.Repeat("  ", depth)
		line := indent + label
		// Planner estimates, when the node carries them (estimateTree runs on
		// every planned statement). EXPLAIN ANALYZE then shows the estimates
		// and the actuals side by side, so the cost model itself can be
		// regressed against real runs.
		if c, ok := op.(costed); ok && c.estimated() {
			line += fmt.Sprintf(" (est_rows=%.0f est_cost=%.1f)", c.EstRows(), c.Cost())
		}
		if inst != nil {
			line += fmt.Sprintf(" (actual rows=%d loops=%d time=%.3f ms)",
				inst.rowsOut, inst.loops, float64(inst.elapsed.Nanoseconds())/1e6)
		}
		lines = append(lines, line)
		if inst != nil {
			if a, ok := op.(opActuals); ok {
				lines = append(lines, indent+"  "+a.actuals())
			}
		}
		for _, c := range children {
			walk(c, depth+1)
		}
	}
	walk(root, 0)
	return lines
}
