package engine

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"
)

// govTestDB builds a DB with a loaded table sized so SGB/aggregation queries
// charge a meaningful number of bytes against the governor.
func govTestDB(t *testing.T, rows int) *DB {
	t.Helper()
	db := NewDB()
	if _, err := db.Exec("CREATE TABLE pts (id INT, x FLOAT, y FLOAT)"); err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	sb.WriteString("INSERT INTO pts VALUES ")
	for i := 0; i < rows; i++ {
		if i > 0 {
			sb.WriteString(", ")
		}
		fmt.Fprintf(&sb, "(%d, %d.%d, %d.5)", i, i%97, i%7, i%61)
	}
	if _, err := db.Exec(sb.String()); err != nil {
		t.Fatal(err)
	}
	return db
}

const govQuery = "SELECT count(*), avg(x) FROM pts GROUP BY x, y DISTANCE-TO-ANY L2 WITHIN 2.5 ORDER BY count(*)"

// TestMemoryGovernorPerQueryLimit: a statement over its per-query cap fails
// with a query-scoped typed error, and the pool drains back to zero.
func TestMemoryGovernorPerQueryLimit(t *testing.T) {
	db := govTestDB(t, 2000)
	lim := db.Limits()
	lim.MaxMemoryBytes = 4 << 10 // far below the query's working set
	db.SetLimits(lim)

	_, err := db.Exec(govQuery)
	var rle *ResourceLimitError
	if !errors.As(err, &rle) {
		t.Fatalf("got %v, want *ResourceLimitError", err)
	}
	if rle.Global() {
		t.Fatalf("per-query overrun reported as global: %v", rle)
	}
	if rle.Resource != "memory" {
		t.Fatalf("resource %q, want memory", rle.Resource)
	}
	if used := db.MemoryUsed(); used != 0 {
		t.Fatalf("pool holds %d bytes after the failed statement", used)
	}

	// Raising the limit lets the same statement through.
	lim.MaxMemoryBytes = 0
	db.SetLimits(lim)
	if _, err := db.Exec(govQuery); err != nil {
		t.Fatalf("unlimited rerun: %v", err)
	}
	if used := db.MemoryUsed(); used != 0 {
		t.Fatalf("pool holds %d bytes after a successful statement", used)
	}
}

// TestMemoryGovernorGlobalBudget: with a tiny process budget, a heavy
// statement fails with a global-scoped error; removing the budget heals it.
func TestMemoryGovernorGlobalBudget(t *testing.T) {
	db := govTestDB(t, 2000)
	db.SetMemoryBudget(16 << 10)

	_, err := db.Exec(govQuery)
	var rle *ResourceLimitError
	if !errors.As(err, &rle) {
		t.Fatalf("got %v, want *ResourceLimitError", err)
	}
	if !rle.Global() {
		t.Fatalf("budget overrun reported as per-query: %v", rle)
	}
	if used := db.MemoryUsed(); used != 0 {
		t.Fatalf("pool holds %d bytes after the failed statement", used)
	}

	db.SetMemoryBudget(0)
	if _, err := db.Exec(govQuery); err != nil {
		t.Fatalf("after removing budget: %v", err)
	}
}

// TestMemoryGovernorSmallFryExempt: statements with tiny footprints never
// fail on global pressure, even when background reservations have pushed the
// pool past its budget.
func TestMemoryGovernorSmallFryExempt(t *testing.T) {
	db := govTestDB(t, 50)
	db.SetMemoryBudget(1 << 20)
	// Background state holds the whole budget.
	db.ReserveMemory(1 << 20)
	defer db.ReserveMemory(-(1 << 20))

	// The pool is exhausted, so the statement waits for admission — release
	// enough for the wake, then verify the small query completes despite the
	// pool running over.
	done := make(chan error, 1)
	go func() {
		_, err := db.Exec("SELECT count(*) FROM pts")
		done <- err
	}()
	time.Sleep(50 * time.Millisecond)
	db.ReserveMemory(-1024) // tiny headroom: wakes the waiter
	defer db.ReserveMemory(1024)
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("small statement failed under global pressure: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("small statement never admitted")
	}
}

// TestMemoryGovernorQueueAndShed: when the pool is exhausted, statements
// queue; beyond the queue cap they shed immediately with a global error.
func TestMemoryGovernorQueueAndShed(t *testing.T) {
	db := govTestDB(t, 50)
	db.SetMemoryBudget(1 << 20)
	db.SetMemoryAdmissionQueue(1)
	db.ReserveMemory(2 << 20) // pool exhausted
	defer db.ReserveMemory(-(2 << 20))

	// First statement queues.
	queuedErr := make(chan error, 1)
	go func() {
		_, err := db.Exec("SELECT count(*) FROM pts")
		queuedErr <- err
	}()
	deadline := time.Now().Add(5 * time.Second)
	for db.Metrics().Counter("engine_mem_admission_waits_total").Value() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("first statement never queued")
		}
		time.Sleep(time.Millisecond)
	}

	// Second statement finds the queue full and sheds.
	_, err := db.Exec("SELECT count(*) FROM pts")
	var rle *ResourceLimitError
	if !errors.As(err, &rle) || !rle.Global() {
		t.Fatalf("over-queue statement got %v, want global *ResourceLimitError", err)
	}
	if got := db.Metrics().Counter("engine_mem_queries_shed_total").Value(); got == 0 {
		t.Fatal("engine_mem_queries_shed_total not incremented")
	}

	// Free the pool: the queued statement completes.
	db.ReserveMemory(-(2 << 20))
	defer db.ReserveMemory(2 << 20) // rebalance the deferred releases
	select {
	case err := <-queuedErr:
		if err != nil {
			t.Fatalf("queued statement: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("queued statement never completed")
	}
}

// TestMemoryGovernorCanceledWhileQueued: a context cancellation while waiting
// for admission returns the context error promptly.
func TestMemoryGovernorCanceledWhileQueued(t *testing.T) {
	db := govTestDB(t, 50)
	db.SetMemoryBudget(1 << 20)
	db.ReserveMemory(2 << 20)
	defer db.ReserveMemory(-(2 << 20))

	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := db.ExecContext(ctx, "SELECT count(*) FROM pts")
		done <- err
	}()
	deadline := time.Now().Add(5 * time.Second)
	for db.Metrics().Counter("engine_mem_admission_waits_total").Value() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("statement never queued")
		}
		time.Sleep(time.Millisecond)
	}
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("canceled waiter got %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("canceled waiter never returned")
	}
}

// TestMemoryGovernorStress is the acceptance stress: under a budget sized so
// some statements shed or queue, concurrent in-budget queries that do
// complete return results bit-identical to an unloaded run, and the pool
// returns to zero. Run under -race in CI's chaos suite.
func TestMemoryGovernorStress(t *testing.T) {
	db := govTestDB(t, 1500)

	// Reference results on the unloaded, un-governed engine.
	want, err := db.Exec(govQuery)
	if err != nil {
		t.Fatal(err)
	}
	wantSmall, err := db.Exec("SELECT count(*) FROM pts")
	if err != nil {
		t.Fatal(err)
	}

	db.SetMemoryBudget(2 << 20)
	db.SetMemoryAdmissionQueue(4)

	const workers = 8
	const rounds = 6
	var wg sync.WaitGroup
	errs := make(chan error, workers*rounds)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				q, ref := govQuery, want
				if w%2 == 0 {
					q, ref = "SELECT count(*) FROM pts", wantSmall
				}
				res, err := db.Exec(q)
				if err != nil {
					var rle *ResourceLimitError
					if errors.As(err, &rle) {
						continue // shed or over budget: typed, acceptable
					}
					errs <- fmt.Errorf("worker %d: untyped failure: %w", w, err)
					return
				}
				if len(res.Rows) != len(ref.Rows) {
					errs <- fmt.Errorf("worker %d: %d rows, want %d", w, len(res.Rows), len(ref.Rows))
					return
				}
				for i := range ref.Rows {
					for j := range ref.Rows[i] {
						if res.Rows[i][j] != ref.Rows[i][j] {
							errs <- fmt.Errorf("worker %d: row %d col %d: %v != %v",
								w, i, j, res.Rows[i][j], ref.Rows[i][j])
							return
						}
					}
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	if used := db.MemoryUsed(); used != 0 {
		t.Fatalf("pool holds %d bytes after the stress run", used)
	}
}
