package engine

import (
	"reflect"
	"strings"
	"testing"
)

func TestCreateAndQueryView(t *testing.T) {
	db := testDB(t)
	if _, err := db.Exec(`CREATE VIEW rich AS
		SELECT name, salary FROM emp WHERE salary >= 1200`); err != nil {
		t.Fatal(err)
	}
	got := queryStrings(t, db, "SELECT name FROM rich ORDER BY name")
	want := [][]string{{"bob"}, {"dan"}, {"eve"}}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("got %v", got)
	}
	// Views join with tables and take aliases.
	got = queryStrings(t, db, `
		SELECT r.name, d.dname FROM rich r, emp e, dept d
		WHERE r.name = e.name AND e.dept = d.id ORDER BY r.name`)
	if len(got) != 3 || got[0][1] != "eng" {
		t.Fatalf("view join: %v", got)
	}
}

func TestViewReflectsBaseTableChanges(t *testing.T) {
	db := testDB(t)
	if _, err := db.Exec("CREATE VIEW engs AS SELECT name FROM emp WHERE dept = 10"); err != nil {
		t.Fatal(err)
	}
	if n := len(queryStrings(t, db, "SELECT name FROM engs")); n != 2 {
		t.Fatalf("initial view rows = %d", n)
	}
	if _, err := db.Exec("INSERT INTO emp VALUES (7, 'fred', 10, 900.0)"); err != nil {
		t.Fatal(err)
	}
	if n := len(queryStrings(t, db, "SELECT name FROM engs")); n != 3 {
		t.Fatal("view did not reflect the insert")
	}
}

func TestViewOverView(t *testing.T) {
	db := testDB(t)
	mustExec := func(q string) {
		t.Helper()
		if _, err := db.Exec(q); err != nil {
			t.Fatalf("%s: %v", q, err)
		}
	}
	mustExec("CREATE VIEW v1 AS SELECT name, salary FROM emp WHERE salary > 900")
	mustExec("CREATE VIEW v2 AS SELECT name FROM v1 WHERE salary < 1600")
	got := queryStrings(t, db, "SELECT name FROM v2 ORDER BY name")
	want := [][]string{{"ann"}, {"bob"}, {"dan"}}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("got %v", got)
	}
}

func TestViewWithSGB(t *testing.T) {
	db := sgbDB(t)
	if _, err := db.Exec(`CREATE VIEW clusters AS
		SELECT count(*) AS members FROM pts
		GROUP BY x, y DISTANCE-TO-ANY LINF WITHIN 3`); err != nil {
		t.Fatal(err)
	}
	got := queryStrings(t, db, "SELECT sum(members) FROM clusters")
	if got[0][0] != "5" {
		t.Fatalf("SGB view: %v", got)
	}
}

func TestViewErrors(t *testing.T) {
	db := testDB(t)
	if _, err := db.Exec("CREATE VIEW bad AS SELECT nosuch FROM emp"); err == nil {
		t.Error("invalid view definition accepted")
	}
	if _, err := db.Exec("CREATE VIEW emp AS SELECT 1"); err == nil {
		t.Error("view shadowing a table accepted")
	}
	if _, err := db.Exec("CREATE VIEW v AS SELECT 1"); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Exec("CREATE VIEW v AS SELECT 2"); err == nil {
		t.Error("duplicate view accepted")
	}
	if _, err := db.Exec("CREATE TABLE v (a INT)"); err == nil {
		t.Error("table shadowing a view accepted")
	}
	if _, err := db.Exec("DROP VIEW v"); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Exec("DROP VIEW v"); err == nil {
		t.Error("double drop succeeded")
	}
}

func TestOffset(t *testing.T) {
	db := testDB(t)
	got := queryStrings(t, db, "SELECT name FROM emp ORDER BY name LIMIT 2 OFFSET 1")
	want := [][]string{{"bob"}, {"cat"}}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("got %v", got)
	}
	// OFFSET past the end yields nothing.
	if got := queryStrings(t, db, "SELECT name FROM emp ORDER BY name LIMIT 3 OFFSET 10"); len(got) != 0 {
		t.Fatalf("offset past end returned %v", got)
	}
	// OFFSET without LIMIT.
	got = queryStrings(t, db, "SELECT name FROM emp ORDER BY name OFFSET 3")
	want = [][]string{{"dan"}, {"eve"}}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("got %v", got)
	}
	if _, err := Parse("SELECT 1 OFFSET -1"); err == nil {
		t.Error("negative offset accepted")
	}
	// EXPLAIN shows the offset.
	res, err := db.Exec("EXPLAIN SELECT name FROM emp LIMIT 2 OFFSET 1")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(planText(res), "Limit 2 Offset 1") {
		t.Fatalf("plan missing offset:\n%s", planText(res))
	}
}
