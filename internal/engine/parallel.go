package engine

import (
	"sync"
	"sync/atomic"
)

// This file implements HyPer-style morsel-driven parallelism over the batch
// layer in batch.go: the planner extracts a parallel-safe scan→filter(→project)
// pipeline fragment feeding an aggregation, and the fragment's input table is
// carved into fixed-size morsels that a worker pool claims with an atomic
// counter. Each morsel is evaluated through the fragment's stages entirely on
// one worker and handed to the consumer tagged with its morsel index, so
// order-sensitive consumers (two-phase hash aggregation, SGB input collection)
// can merge partial results in ascending morsel order and stay deterministic
// regardless of scheduling.

// morselStage is one pipeline stage applied to a morsel's rows: a filter
// predicate or a projection. Exactly one of pred/fns is set.
type morselStage struct {
	pred evalFn
	fns  []evalFn
}

// morselFragment is a parallel-safe pipeline fragment: a base table scan plus
// filter/projection stages whose compiled expressions are goroutine-safe
// (see exprParallelSafe). Stages are stored bottom-up (scan side first).
type morselFragment struct {
	table  *Table
	stages []morselStage
}

// extractFragment walks an operator chain top-down through parallel-safe
// filters and projections to a sequential table scan. It returns nil when any
// node is of another kind (joins, subquery scans, index scans) or carries a
// compiled expression that is not goroutine-safe — those plans keep the
// serial path.
func extractFragment(op operator) *morselFragment {
	var stages []morselStage
	for {
		switch o := op.(type) {
		case *filterOp:
			if !o.parSafe {
				return nil
			}
			stages = append(stages, morselStage{pred: o.pred})
			op = o.child
		case *projectOp:
			if !o.parSafe {
				return nil
			}
			stages = append(stages, morselStage{fns: o.fns})
			op = o.child
		case *scanOp:
			// Stages were collected top-down; morsels apply them bottom-up.
			for i, j := 0, len(stages)-1; i < j; i, j = i+1, j-1 {
				stages[i], stages[j] = stages[j], stages[i]
			}
			return &morselFragment{table: o.table, stages: stages}
		default:
			return nil
		}
	}
}

// morselCount is the number of morsels the fragment's table splits into at
// the statement's batch size.
func (f *morselFragment) morselCount(qc *queryCtx) int {
	batch := qc.batchSize()
	return (len(f.table.Rows) + batch - 1) / batch
}

// run executes the fragment over all morsels with a pool of up to workers
// goroutines and calls emit once per morsel with the surviving rows. emit is
// called concurrently from multiple workers (each morsel index exactly once),
// so it must be safe for concurrent use across distinct indices; the rows
// slice is reused by the worker after emit returns and must not be retained,
// though the Row values themselves may be. Workers poll qc once per morsel,
// and the first error (emit failure, expression error, cancellation) stops
// the pool. Returns the morsel count and the worker count actually used.
func (f *morselFragment) run(qc *queryCtx, workers int, emit func(morsel int, rows []Row) error) (morsels, used int, err error) {
	rows := f.table.Rows
	batch := qc.batchSize()
	n := f.morselCount(qc)
	if n == 0 {
		return 0, 0, nil
	}
	if workers > n {
		workers = n
	}
	if workers < 1 {
		workers = 1
	}
	var next atomic.Int64
	var failed atomic.Bool
	errs := make([]error, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			buf := make([]Row, 0, batch)
			var projBuf []Row
			for !failed.Load() {
				m := int(next.Add(1)) - 1
				if m >= n {
					return
				}
				if err := qc.poll(); err != nil {
					errs[w] = err
					failed.Store(true)
					return
				}
				lo, hi := m*batch, (m+1)*batch
				if hi > len(rows) {
					hi = len(rows)
				}
				out := append(buf[:0], rows[lo:hi]...)
				for _, st := range f.stages {
					if st.pred != nil {
						k := 0
						for _, r := range out {
							v, err := st.pred(r)
							if err != nil {
								errs[w] = err
								failed.Store(true)
								return
							}
							if v.Truthy() {
								out[k] = r
								k++
							}
						}
						out = out[:k]
					} else {
						if projBuf == nil {
							projBuf = make([]Row, 0, batch)
						}
						var err error
						if projBuf, err = projectBatch(out, st.fns, projBuf, qc); err != nil {
							errs[w] = err
							failed.Store(true)
							return
						}
						out, projBuf = projBuf, out
					}
				}
				if err := emit(m, out); err != nil {
					errs[w] = err
					failed.Store(true)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	for _, e := range errs {
		if e != nil {
			return n, workers, e
		}
	}
	return n, workers, qc.poll()
}

// exprParallelSafe reports whether the closure compiled from e may be called
// concurrently from several workers. Everything compileExpr produces is pure
// except subqueries, whose closures lazily populate a result cache on first
// call — racing workers would double-execute the subquery and race on the
// cache, so any plan containing one stays serial.
func exprParallelSafe(e Expr) bool {
	switch e := e.(type) {
	case nil:
		return true
	case *Literal, *ColumnRef:
		return true
	case *UnaryExpr:
		return exprParallelSafe(e.X)
	case *BinaryExpr:
		return exprParallelSafe(e.L) && exprParallelSafe(e.R)
	case *FuncCall:
		for _, a := range e.Args {
			if !exprParallelSafe(a) {
				return false
			}
		}
		return true
	case *InList:
		if !exprParallelSafe(e.X) {
			return false
		}
		for _, it := range e.Items {
			if !exprParallelSafe(it) {
				return false
			}
		}
		return true
	case *InSubquery, *ScalarSubquery:
		return false
	case *CaseExpr:
		if e.Operand != nil && !exprParallelSafe(e.Operand) {
			return false
		}
		for _, w := range e.Whens {
			if !exprParallelSafe(w.Cond) || !exprParallelSafe(w.Result) {
				return false
			}
		}
		return e.Else == nil || exprParallelSafe(e.Else)
	}
	return false
}

// parallelReporter is implemented by operators that may execute a morsel-
// parallel fragment; the DB reads the counts after execution to feed the
// engine_parallel_* metrics.
type parallelReporter interface {
	parallelRun() (workers, morsels int)
}
