package engine

import (
	"regexp"
	"strings"
	"testing"

	"sgb/internal/core"
)

// explainDB builds deterministic fixtures for the EXPLAIN golden tests:
// an indexed employee/department pair and the paper's Figure 2 points.
func explainDB(t *testing.T) *DB {
	t.Helper()
	db := NewDB()
	for _, q := range []string{
		"CREATE TABLE emp (id INT, name TEXT, dept INT, salary FLOAT)",
		"INSERT INTO emp VALUES (1, 'ann', 10, 100), (2, 'bob', 10, 200), (3, 'cat', 20, 300), (4, 'dan', 20, 400)",
		"CREATE TABLE dept (dno INT, dname TEXT)",
		"INSERT INTO dept VALUES (10, 'eng'), (20, 'ops')",
		"CREATE INDEX emp_dept ON emp (dept)",
		"CREATE TABLE pts (id INT, x FLOAT, y FLOAT)",
		"INSERT INTO pts VALUES (1, 1, 1), (2, 2, 2), (3, 6, 1), (4, 7, 2), (5, 4, 1.5)",
	} {
		if _, err := db.Exec(q); err != nil {
			t.Fatalf("%s: %v", q, err)
		}
	}
	return db
}

func planLines(t *testing.T, db *DB, sql string) []string {
	t.Helper()
	res, err := db.Exec(sql)
	if err != nil {
		t.Fatalf("%s: %v", sql, err)
	}
	lines := make([]string, len(res.Rows))
	for i, r := range res.Rows {
		lines[i] = r[0].String()
	}
	return lines
}

// TestExplainGolden pins the exact EXPLAIN rendering of every plan shape the
// planner produces: scans (seq + index), filter, both joins, sort, distinct,
// limit, hash aggregation, derived tables, FROM-less values, and the SGB
// operator in all ON-OVERLAP and metric variants.
func TestExplainGolden(t *testing.T) {
	db := explainDB(t)
	cases := []struct {
		name string
		sql  string
		alg  string // manual \alg override; "" keeps the auto default
		want []string
	}{
		{
			name: "values",
			sql:  "EXPLAIN SELECT 1",
			want: []string{
				"Project (col1) (est_rows=1 est_cost=1.5)",
				"  Values (1 rows) (est_rows=1 est_cost=0.5)",
			},
		},
		{
			name: "index scan",
			sql:  "EXPLAIN SELECT name FROM emp WHERE dept = 10",
			want: []string{
				"Project (name) (est_rows=0 est_cost=0.6)",
				"  IndexScan on emp using emp_dept (dept = const) (est_rows=0 est_cost=0.2)",
			},
		},
		{
			name: "seq scan with filter",
			sql:  "EXPLAIN SELECT name FROM emp WHERE salary > 150",
			want: []string{
				"Project (name) (est_rows=1 est_cost=7.3)",
				"  Filter (est_rows=1 est_cost=6.0)",
				"    SeqScan on emp (4 rows) (est_rows=4 est_cost=2.0)",
			},
		},
		{
			name: "hash join",
			sql:  "EXPLAIN SELECT e.name, d.dname FROM emp e, dept d WHERE e.dept = d.dno",
			want: []string{
				"Project (name, dname) (est_rows=4 est_cost=23.0)",
				"  HashJoin (1 key(s)) (est_rows=4 est_cost=15.0)",
				"    SeqScan on emp (4 rows) (est_rows=4 est_cost=2.0)",
				"    SeqScan on dept (2 rows) (est_rows=2 est_cost=1.0)",
			},
		},
		{
			name: "cross join",
			sql:  "EXPLAIN SELECT e.name FROM emp e, dept d",
			want: []string{
				"Project (name) (est_rows=8 est_cost=15.0)",
				"  NestedLoop (cross) (est_rows=8 est_cost=7.0)",
				"    SeqScan on emp (4 rows) (est_rows=4 est_cost=2.0)",
				"    SeqScan on dept (2 rows) (est_rows=2 est_cost=1.0)",
			},
		},
		{
			name: "sort distinct limit",
			sql:  "EXPLAIN SELECT DISTINCT dept FROM emp ORDER BY dept LIMIT 2",
			want: []string{
				"Limit 2 (est_rows=2 est_cost=9.6)",
				"  Distinct (est_rows=4 est_cost=19.2)",
				"    Project (dept) (est_rows=4 est_cost=11.2)",
				"      Sort (1 key(s)) (est_rows=4 est_cost=7.2)",
				"        SeqScan on emp (4 rows) (est_rows=4 est_cost=2.0)",
			},
		},
		{
			name: "hash aggregate",
			sql:  "EXPLAIN SELECT dept, count(*) FROM emp GROUP BY dept",
			want: []string{
				"Project (dept, count) (est_rows=1 est_cost=13.8)",
				"  HashAggregate (1 group key(s), 1 aggregate(s)) (est_rows=1 est_cost=11.2)",
				"    SeqScan on emp (4 rows) (est_rows=4 est_cost=2.0)",
			},
		},
		{
			name: "subquery scan",
			sql:  "EXPLAIN SELECT s.c FROM (SELECT count(*) AS c FROM emp) s",
			want: []string{
				"Project (c) (est_rows=1 est_cost=12.8)",
				"  SubqueryScan as s (est_rows=1 est_cost=11.8)",
				"    Project (c) (est_rows=1 est_cost=11.8)",
				"      HashAggregate (0 group key(s), 1 aggregate(s)) (est_rows=1 est_cost=10.8)",
				"        SeqScan on emp (4 rows) (est_rows=4 est_cost=2.0)",
			},
		},
		{
			// Five points is far below the index algorithms' breakeven, so the
			// cost-based selector picks All-Pairs for every SGB shape here.
			name: "sgb all join-any l2",
			sql:  "EXPLAIN SELECT count(*) FROM pts GROUP BY x, y DISTANCE-TO-ALL L2 WITHIN 3 ON-OVERLAP JOIN-ANY",
			want: []string{
				"Project (count) (est_rows=1 est_cost=19.0)",
				"  SimilarityGroupBy DISTANCE-TO-ALL JOIN-ANY L2 WITHIN 3 [All-Pairs] (1 aggregate(s)) (est_rows=1 est_cost=17.8)",
				"    SeqScan on pts (5 rows) (est_rows=5 est_cost=2.5)",
			},
		},
		{
			name: "sgb all eliminate linf",
			sql:  "EXPLAIN SELECT count(*) FROM pts GROUP BY x, y DISTANCE-TO-ALL LINF WITHIN 3 ON-OVERLAP ELIMINATE",
			want: []string{
				"Project (count) (est_rows=1 est_cost=19.0)",
				"  SimilarityGroupBy DISTANCE-TO-ALL ELIMINATE LINF WITHIN 3 [All-Pairs] (1 aggregate(s)) (est_rows=1 est_cost=17.8)",
				"    SeqScan on pts (5 rows) (est_rows=5 est_cost=2.5)",
			},
		},
		{
			name: "sgb all form-new-group linf",
			sql:  "EXPLAIN SELECT count(*) FROM pts GROUP BY x, y DISTANCE-TO-ALL LINF WITHIN 3 ON-OVERLAP FORM-NEW-GROUP",
			want: []string{
				"Project (count) (est_rows=1 est_cost=19.0)",
				"  SimilarityGroupBy DISTANCE-TO-ALL FORM-NEW-GROUP LINF WITHIN 3 [All-Pairs] (1 aggregate(s)) (est_rows=1 est_cost=17.8)",
				"    SeqScan on pts (5 rows) (est_rows=5 est_cost=2.5)",
			},
		},
		{
			name: "sgb any l2",
			sql:  "EXPLAIN SELECT count(*) FROM pts GROUP BY x, y DISTANCE-TO-ANY L2 WITHIN 1.5",
			want: []string{
				"Project (count) (est_rows=1 est_cost=25.2)",
				"  SimilarityGroupBy DISTANCE-TO-ANY L2 WITHIN 1.5 [All-Pairs] (1 aggregate(s)) (est_rows=1 est_cost=24.0)",
				"    SeqScan on pts (5 rows) (est_rows=5 est_cost=2.5)",
			},
		},
		{
			// A manual \alg override bypasses the cost-based choice entirely.
			name: "sgb manual index override",
			sql:  "EXPLAIN SELECT count(*) FROM pts GROUP BY x, y DISTANCE-TO-ANY L2 WITHIN 1.5",
			alg:  "index",
			want: []string{
				"Project (count) (est_rows=1 est_cost=319.5)",
				"  SimilarityGroupBy DISTANCE-TO-ANY L2 WITHIN 1.5 [on-the-fly Index] (1 aggregate(s)) (est_rows=1 est_cost=318.3)",
				"    SeqScan on pts (5 rows) (est_rows=5 est_cost=2.5)",
			},
		},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if c.alg == "index" {
				db.SetSGBAlgorithm(core.IndexBounds)
				defer db.SetSGBAlgorithmAuto()
			}
			got := planLines(t, db, c.sql)
			if len(got) != len(c.want) {
				t.Fatalf("got %d lines, want %d:\n%s", len(got), len(c.want), strings.Join(got, "\n"))
			}
			for i := range got {
				if got[i] != c.want[i] {
					t.Errorf("line %d:\n got %q\nwant %q", i, got[i], c.want[i])
				}
			}
		})
	}
}

var (
	timeRe      = regexp.MustCompile(`time=\d+\.\d+ ms`)
	phaseTimeRe = regexp.MustCompile(`(Planning|Execution) Time: \d+\.\d+ ms`)
)

// normalizeAnalyze replaces wall-clock measurements with "X" so EXPLAIN
// ANALYZE output can be compared against golden text.
func normalizeAnalyze(lines []string) []string {
	out := make([]string, len(lines))
	for i, l := range lines {
		l = timeRe.ReplaceAllString(l, "time=X ms")
		l = phaseTimeRe.ReplaceAllString(l, "$1 Time: X ms")
		out[i] = l
	}
	return out
}

// TestExplainAnalyzeGolden pins the EXPLAIN ANALYZE rendering — actual row
// counts, loop counts, buffer sizes, and the SGB cost counters — with wall
// times normalized out.
func TestExplainAnalyzeGolden(t *testing.T) {
	db := explainDB(t)
	cases := []struct {
		name string
		sql  string
		want []string
	}{
		{
			name: "filter scan",
			sql:  "EXPLAIN ANALYZE SELECT name FROM emp WHERE salary > 150",
			want: []string{
				"Project (name) (est_rows=1 est_cost=7.3) (actual rows=3 loops=1 time=X ms)",
				"  Filter (est_rows=1 est_cost=6.0) (actual rows=3 loops=1 time=X ms)",
				"    SeqScan on emp (4 rows) (est_rows=4 est_cost=2.0) (actual rows=4 loops=1 time=X ms)",
				"Planning Time: X ms",
				"Execution Time: X ms",
			},
		},
		{
			name: "hash join",
			sql:  "EXPLAIN ANALYZE SELECT e.name, d.dname FROM emp e, dept d WHERE e.dept = d.dno",
			want: []string{
				"Project (name, dname) (est_rows=4 est_cost=23.0) (actual rows=4 loops=1 time=X ms)",
				"  HashJoin (1 key(s)) (est_rows=4 est_cost=15.0) (actual rows=4 loops=1 time=X ms)",
				"    Hash Build: rows=2 buckets=2",
				"    SeqScan on emp (4 rows) (est_rows=4 est_cost=2.0) (actual rows=4 loops=1 time=X ms)",
				"    SeqScan on dept (2 rows) (est_rows=2 est_cost=1.0) (actual rows=2 loops=1 time=X ms)",
				"Planning Time: X ms",
				"Execution Time: X ms",
			},
		},
		{
			name: "sort distinct limit",
			sql:  "EXPLAIN ANALYZE SELECT DISTINCT dept FROM emp ORDER BY dept LIMIT 2",
			want: []string{
				"Limit 2 (est_rows=2 est_cost=9.6) (actual rows=2 loops=1 time=X ms)",
				"  Distinct (est_rows=4 est_cost=19.2) (actual rows=2 loops=1 time=X ms)",
				"    Distinct Set: keys=2",
				"    Project (dept) (est_rows=4 est_cost=11.2) (actual rows=3 loops=1 time=X ms)",
				"      Sort (1 key(s)) (est_rows=4 est_cost=7.2) (actual rows=3 loops=1 time=X ms)",
				"        Sort Buffer: rows=4",
				"        SeqScan on emp (4 rows) (est_rows=4 est_cost=2.0) (actual rows=4 loops=1 time=X ms)",
				"Planning Time: X ms",
				"Execution Time: X ms",
			},
		},
		{
			name: "hash aggregate",
			sql:  "EXPLAIN ANALYZE SELECT dept, count(*) FROM emp GROUP BY dept",
			want: []string{
				"Project (dept, count) (est_rows=1 est_cost=13.8) (actual rows=2 loops=1 time=X ms)",
				"  HashAggregate (1 group key(s), 1 aggregate(s)) (est_rows=1 est_cost=11.2) (actual rows=2 loops=1 time=X ms)",
				"    Hash Table: groups=2 input rows=4",
				"    SeqScan on emp (4 rows) (est_rows=4 est_cost=2.0) (actual rows=4 loops=1 time=X ms)",
				"Planning Time: X ms",
				"Execution Time: X ms",
			},
		},
		{
			// The Figure 2 points under LINF/3 with JOIN-ANY form groups
			// {1,2,5} and {3,4} (first-candidate arbitration). Auto selection
			// picks All-Pairs at n=5, so the counters show distance
			// computations instead of window queries.
			name: "sgb all join-any linf",
			sql:  "EXPLAIN ANALYZE SELECT count(*) FROM pts GROUP BY x, y DISTANCE-TO-ALL LINF WITHIN 3 ON-OVERLAP JOIN-ANY",
			want: []string{
				"Project (count) (est_rows=1 est_cost=19.0) (actual rows=2 loops=1 time=X ms)",
				"  SimilarityGroupBy DISTANCE-TO-ALL JOIN-ANY LINF WITHIN 3 [All-Pairs] (1 aggregate(s)) (est_rows=1 est_cost=17.8) (actual rows=2 loops=1 time=X ms)",
				"    SGB Stats: points=5 distance_comps=8 rect_tests=0 hull_tests=0 window_queries=0 index_updates=0 rounds=1 merged=0 dropped=0",
				"    SeqScan on pts (5 rows) (est_rows=5 est_cost=2.5) (actual rows=5 loops=1 time=X ms)",
				"Planning Time: X ms",
				"Execution Time: X ms",
			},
		},
		{
			name: "sgb all eliminate linf",
			sql:  "EXPLAIN ANALYZE SELECT count(*) FROM pts GROUP BY x, y DISTANCE-TO-ALL LINF WITHIN 3 ON-OVERLAP ELIMINATE",
			want: []string{
				"Project (count) (est_rows=1 est_cost=19.0) (actual rows=2 loops=1 time=X ms)",
				"  SimilarityGroupBy DISTANCE-TO-ALL ELIMINATE LINF WITHIN 3 [All-Pairs] (1 aggregate(s)) (est_rows=1 est_cost=17.8) (actual rows=2 loops=1 time=X ms)",
				"    SGB Stats: points=5 distance_comps=10 rect_tests=0 hull_tests=0 window_queries=0 index_updates=0 rounds=1 merged=0 dropped=1",
				"    SeqScan on pts (5 rows) (est_rows=5 est_cost=2.5) (actual rows=5 loops=1 time=X ms)",
				"Planning Time: X ms",
				"Execution Time: X ms",
			},
		},
		{
			name: "sgb any l2",
			sql:  "EXPLAIN ANALYZE SELECT count(*) FROM pts GROUP BY x, y DISTANCE-TO-ANY L2 WITHIN 1.5",
			want: []string{
				"Project (count) (est_rows=1 est_cost=25.2) (actual rows=3 loops=1 time=X ms)",
				"  SimilarityGroupBy DISTANCE-TO-ANY L2 WITHIN 1.5 [All-Pairs] (1 aggregate(s)) (est_rows=1 est_cost=24.0) (actual rows=3 loops=1 time=X ms)",
				"    SGB Stats: points=5 distance_comps=10 rect_tests=0 hull_tests=0 window_queries=0 index_updates=0 rounds=1 merged=2 dropped=0",
				"    SeqScan on pts (5 rows) (est_rows=5 est_cost=2.5) (actual rows=5 loops=1 time=X ms)",
				"Planning Time: X ms",
				"Execution Time: X ms",
			},
		},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			got := normalizeAnalyze(planLines(t, db, c.sql))
			if len(got) != len(c.want) {
				t.Fatalf("got %d lines, want %d:\n%s", len(got), len(c.want), strings.Join(got, "\n"))
			}
			for i := range got {
				if got[i] != c.want[i] {
					t.Errorf("line %d:\n got %q\nwant %q", i, got[i], c.want[i])
				}
			}
		})
	}
}

// TestExplainCoversAllOperators plans a suite of queries that together
// exercise every physical operator the planner can produce, walks each tree,
// and fails if describeOp does not recognize a node. A new operator that
// reaches any of these plan shapes therefore cannot silently fall back to
// the raw Go type name in EXPLAIN output.
func TestExplainCoversAllOperators(t *testing.T) {
	db := explainDB(t)
	queries := []string{
		"SELECT 1",
		"SELECT name FROM emp WHERE dept = 10",
		"SELECT name FROM emp WHERE salary > 150",
		"SELECT e.name, d.dname FROM emp e, dept d WHERE e.dept = d.dno",
		"SELECT e.name FROM emp e, dept d",
		"SELECT DISTINCT dept FROM emp ORDER BY dept LIMIT 2 OFFSET 1",
		"SELECT dept, count(*) FROM emp GROUP BY dept HAVING count(*) > 0",
		"SELECT s.c FROM (SELECT count(*) AS c FROM emp) s",
		"SELECT count(*) FROM pts GROUP BY x, y DISTANCE-TO-ALL L2 WITHIN 3 ON-OVERLAP JOIN-ANY",
		"SELECT count(*) FROM pts GROUP BY x, y DISTANCE-TO-ANY LINF WITHIN 1.5",
	}
	seen := map[string]bool{}
	for _, q := range queries {
		stmt, err := Parse(q)
		if err != nil {
			t.Fatalf("%s: %v", q, err)
		}
		pc := &planContext{db: db}
		op, err := pc.planSelect(stmt.(*SelectStmt))
		if err != nil {
			t.Fatalf("%s: %v", q, err)
		}
		var walk func(op operator)
		walk = func(op operator) {
			if i, ok := op.(*instrumentedOp); ok {
				op = i.child
			}
			label, children, known := describeOp(op)
			if !known {
				t.Errorf("%s: operator %s has no EXPLAIN case", q, label)
			}
			seen[label[:strings.IndexAny(label+" ", " ")]] = true
			for _, c := range children {
				walk(c)
			}
		}
		walk(op)
	}
	// The suite must reach every operator kind the planner can emit today.
	for _, kind := range []string{
		"Values", "IndexScan", "SeqScan", "Filter", "Project", "HashJoin",
		"NestedLoop", "Sort", "Distinct", "Limit", "HashAggregate",
		"SimilarityGroupBy", "SubqueryScan",
	} {
		if !seen[kind] {
			t.Errorf("operator kind %s not exercised by the coverage suite", kind)
		}
	}
	// And nothing may render as a raw Go type name.
	for label := range seen {
		if strings.Contains(label, "engine.") {
			t.Errorf("raw Go type name leaked into EXPLAIN: %q", label)
		}
	}
}

// TestQueryMetricsAndTrace asserts the acceptance criterion: after one SGB
// query, the registry reports nonzero engine_queries_total and
// sgb_distance_comps_total, the latency histogram has an observation, and
// the trace carries parse/plan/execute spans.
func TestQueryMetricsAndTrace(t *testing.T) {
	db := explainDB(t)
	base := db.Metrics().Snapshot()
	if _, err := db.Exec("SELECT count(*) FROM pts GROUP BY x, y DISTANCE-TO-ALL L2 WITHIN 3 ON-OVERLAP JOIN-ANY"); err != nil {
		t.Fatal(err)
	}
	s := db.Metrics().Snapshot()
	if got := s.Counters["engine_queries_total"] - base.Counters["engine_queries_total"]; got != 1 {
		t.Errorf("engine_queries_total delta = %d, want 1", got)
	}
	if s.Counters["sgb_distance_comps_total"] <= base.Counters["sgb_distance_comps_total"] {
		t.Errorf("sgb_distance_comps_total did not advance: %d", s.Counters["sgb_distance_comps_total"])
	}
	if s.Counters["sgb_queries_total"] == 0 || s.Counters["sgb_points_total"] == 0 {
		t.Errorf("sgb counters missing: %v", s.Counters)
	}
	if h := s.Histograms["engine_query_seconds"]; h.Count == 0 {
		t.Errorf("latency histogram empty")
	}
	tr := db.LastTrace()
	if tr == nil {
		t.Fatal("no trace recorded")
	}
	var names []string
	for _, sp := range tr.Spans() {
		names = append(names, sp.Name)
	}
	if got := strings.Join(names, ","); got != "parse,plan,execute" {
		t.Errorf("trace spans = %s, want parse,plan,execute", got)
	}
	if len(tr.Notes()) == 0 || !strings.Contains(tr.Notes()[0], "distance_comps=") {
		t.Errorf("trace notes missing SGB annotation: %v", tr.Notes())
	}

	// Errors are counted too.
	if _, err := db.Exec("SELECT nosuch FROM emp"); err == nil {
		t.Fatal("expected error")
	}
	if got := db.Metrics().Snapshot().Counters["engine_errors_total"]; got == 0 {
		t.Error("engine_errors_total not incremented")
	}
}

// TestExplainAnalyzeMatchesDirectExecution guards against the instrumented
// tree changing query semantics: EXPLAIN ANALYZE must execute the same
// query and report the row count the plain SELECT produces.
func TestExplainAnalyzeMatchesDirectExecution(t *testing.T) {
	db := explainDB(t)
	sel, err := db.Exec("SELECT count(*) FROM pts GROUP BY x, y DISTANCE-TO-ANY L2 WITHIN 1.5")
	if err != nil {
		t.Fatal(err)
	}
	lines := planLines(t, db, "EXPLAIN ANALYZE SELECT count(*) FROM pts GROUP BY x, y DISTANCE-TO-ANY L2 WITHIN 1.5")
	rootRe := regexp.MustCompile(`actual rows=(\d+)`)
	m := rootRe.FindStringSubmatch(lines[0])
	if m == nil {
		t.Fatalf("no actual rows on root line: %q", lines[0])
	}
	if want := len(sel.Rows); m[1] != itoa(want) {
		t.Errorf("EXPLAIN ANALYZE root rows=%s, SELECT returned %d", m[1], want)
	}
}

func itoa(n int) string {
	return string(rune('0' + n%10)) // test fixture row counts are single-digit
}
