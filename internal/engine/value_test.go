package engine

import (
	"testing"
)

func TestValueConstructorsAndString(t *testing.T) {
	cases := []struct {
		v    Value
		want string
	}{
		{NewInt(42), "42"},
		{NewInt(-7), "-7"},
		{NewFloat(2.5), "2.5"},
		{NewString("hi"), "hi"},
		{NewBool(true), "true"},
		{NewBool(false), "false"},
		{Null, "NULL"},
	}
	for _, c := range cases {
		if got := c.v.String(); got != c.want {
			t.Errorf("%+v.String() = %q, want %q", c.v, got, c.want)
		}
	}
}

func TestValueCoercions(t *testing.T) {
	if f, err := NewInt(3).AsFloat(); err != nil || f != 3 {
		t.Errorf("int AsFloat = %v, %v", f, err)
	}
	if i, err := NewFloat(3.9).AsInt(); err != nil || i != 3 {
		t.Errorf("float AsInt = %v, %v", i, err)
	}
	if _, err := NewString("x").AsFloat(); err == nil {
		t.Error("string coerced to float")
	}
	if !Null.IsNull() || NewInt(0).IsNull() {
		t.Error("IsNull wrong")
	}
	if Null.Truthy() || NewBool(false).Truthy() || !NewBool(true).Truthy() {
		t.Error("Truthy wrong")
	}
}

func TestCompare(t *testing.T) {
	cases := []struct {
		a, b Value
		want int
	}{
		{NewInt(1), NewInt(2), -1},
		{NewInt(2), NewInt(2), 0},
		{NewInt(3), NewInt(2), 1},
		{NewInt(1), NewFloat(1.5), -1},
		{NewFloat(2.0), NewInt(2), 0},
		{NewString("a"), NewString("b"), -1},
		{NewBool(false), NewBool(true), -1},
		{Null, NewInt(0), -1},
		{NewInt(0), Null, 1},
		{Null, Null, 0},
	}
	for _, c := range cases {
		got, err := Compare(c.a, c.b)
		if err != nil || got != c.want {
			t.Errorf("Compare(%v, %v) = %d, %v; want %d", c.a, c.b, got, err, c.want)
		}
	}
	if _, err := Compare(NewString("a"), NewInt(1)); err == nil {
		t.Error("cross-type string/int comparison succeeded")
	}
}

func TestKeyInjective(t *testing.T) {
	// Values that render similarly must still key differently.
	pairs := [][2][]Value{
		{{NewInt(1)}, {NewString("1")}},
		{{NewString("a|b")}, {NewString("a"), NewString("b")}},
		{{NewString("")}, {Null}},
		{{NewBool(true)}, {NewInt(1)}},
		{{NewFloat(1)}, {NewInt(1)}},
		{{NewString("12")}, {NewString("1"), NewString("2")}},
	}
	for _, p := range pairs {
		if Key(p[0]) == Key(p[1]) {
			t.Errorf("Key collision between %v and %v", p[0], p[1])
		}
	}
	if Key([]Value{NewInt(5), NewString("x")}) != Key([]Value{NewInt(5), NewString("x")}) {
		t.Error("Key not deterministic")
	}
}

func TestParseTypeNames(t *testing.T) {
	for in, want := range map[string]Type{
		"int": TypeInt, "INTEGER": TypeInt, "bigint": TypeInt,
		"float": TypeFloat, "DOUBLE": TypeFloat, "numeric": TypeFloat,
		"text": TypeString, "VARCHAR": TypeString,
		"bool": TypeBool, "BOOLEAN": TypeBool,
	} {
		got, err := ParseType(in)
		if err != nil || got != want {
			t.Errorf("ParseType(%q) = %v, %v", in, got, err)
		}
	}
	if _, err := ParseType("blob"); err == nil {
		t.Error("ParseType accepted unknown type")
	}
}

func TestSchemaResolve(t *testing.T) {
	s := Schema{
		{Table: "t1", Name: "a", T: TypeInt},
		{Table: "t1", Name: "b", T: TypeInt},
		{Table: "t2", Name: "b", T: TypeFloat},
	}
	if i, err := s.Resolve("", "a"); err != nil || i != 0 {
		t.Errorf("Resolve a = %d, %v", i, err)
	}
	if _, err := s.Resolve("", "b"); err == nil {
		t.Error("ambiguous unqualified b resolved")
	}
	if i, err := s.Resolve("t2", "b"); err != nil || i != 2 {
		t.Errorf("Resolve t2.b = %d, %v", i, err)
	}
	if i, err := s.Resolve("T1", "B"); err != nil || i != 1 {
		t.Errorf("case-insensitive resolve = %d, %v", i, err)
	}
	if _, err := s.Resolve("", "zz"); err == nil {
		t.Error("unknown column resolved")
	}
	if _, err := s.Resolve("t3", "a"); err == nil {
		t.Error("unknown qualifier resolved")
	}
}

func TestCatalog(t *testing.T) {
	c := NewCatalog()
	tbl, err := c.Create("Points", Schema{{Name: "x", T: TypeFloat}, {Name: "y", T: TypeFloat}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Create("points", nil); err == nil {
		t.Error("duplicate create (case-insensitive) succeeded")
	}
	if _, err := c.Get("POINTS"); err != nil {
		t.Error("case-insensitive lookup failed")
	}
	if err := tbl.Insert(Row{NewInt(1), NewFloat(2)}); err != nil {
		t.Fatalf("insert with int->float coercion failed: %v", err)
	}
	if tbl.Rows[0][0].T != TypeFloat {
		t.Error("int was not coerced to declared float column")
	}
	if err := tbl.Insert(Row{NewFloat(1)}); err == nil {
		t.Error("arity mismatch accepted")
	}
	if err := tbl.Insert(Row{NewString("x"), NewFloat(0)}); err == nil {
		t.Error("type mismatch accepted")
	}
	c.Drop("points")
	if _, err := c.Get("points"); err == nil {
		t.Error("dropped table still resolvable")
	}
}
