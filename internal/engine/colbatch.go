package engine

import (
	"fmt"
	"strings"

	"sgb/internal/core"
	"sgb/internal/geom"
)

// This file implements the tuple-free columnar SGB fast path. When a
// similarity aggregation's shape allows it, the engine skips per-tuple Row
// materialization entirely: the grouping coordinates are read straight out of
// the stored rows into flat float64 columns (geom.Cols), the columns flow
// through the core groupers' batch kernels, and the output rows are
// synthesized from the columns and the group sizes. The gate is deliberately
// narrow — the point is that the common analytical query
//
//	SELECT x, y, count(*) FROM t [WHERE ...] GROUP BY x, y DISTANCE-TO-ANY ...
//
// never touches a Row between the scan and the result set.

// colPlan describes a planned tuple-free columnar SGB execution.
type colPlan struct {
	// frag is the scan→filter pipeline feeding the aggregation. Its stages
	// are all predicates (markColumnarSGB rejects projections), so a
	// surviving row has the scan table's column layout.
	frag *morselFragment
	// colIdx maps each grouping dimension to its scan-row column index.
	colIdx []int
	// workers is the worker count for collection and grouping: >1 only when
	// the grouping itself may run on the grid-parallel SGB-Any path, so the
	// serial/parallel decision is identical to the row path's.
	workers int
}

// markColumnarSGB flags an SGB aggregation for the tuple-free columnar fast
// path. Eligibility:
//
//   - the session has not disabled it (DB.SetColumnar / Session.SetColumnar);
//   - every aggregate call is a plain count(*) — the only aggregate whose
//     result is derivable from group membership alone, with no tuple access;
//   - every grouping expression is a bare column reference to a FLOAT column
//     of the scanned table, so the stored Value is bit-identical to the
//     float the column carries (Table.Insert coerces ints on the way in) and
//     the representative output values can be rebuilt with NewFloat;
//   - the input pipeline is an extractable scan→filter fragment with no
//     projection stage (a projection would re-layout the rows under colIdx)
//     and no goroutine-unsafe predicate.
//
// Everything else falls back to the row path, which remains fully general.
func (pc *planContext) markColumnarSGB(op *sgbAggOp, groupExprs []Expr, rw *aggRewriter) {
	// Analyzer rule columnar_selection: the tuple-free path is a cost-based
	// choice (its collection cost is strictly lower when eligible — see
	// estimateTree's sgbAggOp case), so disabling the optimizer keeps the
	// row path, the naive reference plan.
	if !pc.qc.columnar() || !pc.qc.optimize() || len(groupExprs) == 0 {
		return
	}
	for _, c := range rw.calls {
		if !strings.EqualFold(c.name, "count") || !c.star || c.distinct {
			return
		}
	}
	sch := op.child.schema()
	colIdx := make([]int, len(groupExprs))
	for i, g := range groupExprs {
		ref, ok := g.(*ColumnRef)
		if !ok {
			return
		}
		idx, err := sch.Resolve(ref.Table, ref.Name)
		if err != nil || sch[idx].T != TypeFloat {
			return
		}
		colIdx[i] = idx
	}
	frag := extractFragment(op.child)
	if frag == nil {
		return
	}
	for _, st := range frag.stages {
		if st.fns != nil {
			return
		}
	}
	// Same parallel-grouping gate as markParallelSGB: only SGB-Any under the
	// default on-the-fly-index algorithm has a provably order-free parallel
	// grouping, and tiny tables stay serial for machine-independent output.
	workers := 1
	if op.spec.Mode == SGBAnyMode && op.algorithm == core.IndexBounds &&
		pc.qc.parallelism() > 1 && len(frag.table.Rows) > pc.qc.batchSize() {
		workers = pc.qc.parallelism()
	}
	op.colPlan = &colPlan{frag: frag, colIdx: colIdx, workers: workers}
	pc.ruleApplied("columnar_selection")
}

// collectColumnar evaluates the fragment morsel-wise and transposes the
// surviving rows' grouping attributes into one columnar chunk per morsel,
// then concatenates the chunks in ascending morsel order — which, morsels
// being contiguous input ranges, reproduces the serial input order exactly.
// Rows are charged against the statement budget per morsel, like the row
// collectors.
func (a *sgbAggOp) collectColumnar() (geom.Cols, int, int, error) {
	cp := a.colPlan
	dim := len(cp.colIdx)
	chunks := make([]geom.Cols, cp.frag.morselCount(a.qc))
	morsels, used, err := cp.frag.run(a.qc, cp.workers, func(m int, rows []Row) error {
		if err := a.qc.addRows(len(rows)); err != nil {
			return err
		}
		if err := a.qc.growMem(int64(dim) * int64(len(rows)) * 8); err != nil {
			return err
		}
		c := geom.MakeCols(dim, len(rows))
		for d, idx := range cp.colIdx {
			col := c.Col(d)
			for t, r := range rows {
				v := r[idx]
				if v.IsNull() {
					return fmt.Errorf("engine: NULL in similarity grouping attribute %d", d+1)
				}
				f, err := v.AsFloat()
				if err != nil {
					return fmt.Errorf("engine: similarity grouping attribute %d: %v", d+1, err)
				}
				col[t] = f
			}
		}
		chunks[m] = c
		return nil
	})
	if err != nil {
		return geom.Cols{}, 0, 0, err
	}
	var total int
	for _, c := range chunks {
		total += c.Len()
	}
	if err := a.qc.growMem(int64(dim) * int64(total) * 8); err != nil {
		return geom.Cols{}, 0, 0, err
	}
	cols := geom.MakeCols(dim, total)
	for d := 0; d < dim; d++ {
		dst := cols.Col(d)[:0]
		for _, c := range chunks {
			if c.Len() > 0 {
				dst = append(dst, c.Col(d)...)
			}
		}
	}
	return cols, morsels, used, nil
}

// openColumnar is sgbAggOp.open's tuple-free execution: columnar collection,
// columnar grouping, and output rows synthesized from the coordinate columns
// (representative = the group's first member) and the group sizes (count(*)).
// Its output is bit-identical to the row path's for every plan the gate
// admits.
func (a *sgbAggOp) openColumnar() error {
	cols, morsels, used, err := a.collectColumnar()
	if err != nil {
		return err
	}
	a.rows = a.rows[:0]
	if cols.Len() == 0 {
		a.pos = 0
		return nil
	}
	opt := core.Options{
		Metric:    a.spec.Metric,
		Eps:       a.spec.Eps,
		Overlap:   a.spec.Overlap,
		Algorithm: a.algorithm,
	}
	var res *core.Result
	if a.colPlan.workers > 1 {
		res, err = core.SGBAnyParallelColsCtx(a.qc.context(), cols, opt, a.colPlan.workers)
		a.lastWorkers, a.lastMorsels = used, morsels
	} else {
		res, err = a.groupSerial(cols, opt)
	}
	if err != nil {
		return err
	}
	a.lastStats = res.Stats
	a.lastDropped = len(res.Dropped)
	dim := cols.Dim()
	for _, grp := range res.Groups {
		rep := grp.IDs[0]
		out := make(Row, 0, dim+len(a.calls))
		for d := 0; d < dim; d++ {
			out = append(out, NewFloat(cols.Col(d)[rep]))
		}
		for range a.calls {
			out = append(out, NewInt(int64(len(grp.IDs))))
		}
		a.rows = append(a.rows, out)
	}
	a.pos = 0
	return nil
}
