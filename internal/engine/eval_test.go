package engine

import (
	"strings"
	"testing"

	"sgb/internal/core"
)

// evalScalar parses and evaluates a single constant SELECT item.
func evalScalar(t *testing.T, db *DB, expr string) (Value, error) {
	t.Helper()
	res, err := db.Query("SELECT " + expr)
	if err != nil {
		return Null, err
	}
	if len(res.Rows) != 1 || len(res.Rows[0]) != 1 {
		t.Fatalf("scalar query returned %d rows", len(res.Rows))
	}
	return res.Rows[0][0], nil
}

// TestExpressionEvalTable drives the expression evaluator through a broad
// table of cases covering arithmetic, comparisons, logic, NULL propagation
// and coercions.
func TestExpressionEvalTable(t *testing.T) {
	db := NewDB()
	cases := []struct {
		expr string
		want string
	}{
		// Integer arithmetic stays integral except division.
		{"1 + 2", "3"},
		{"7 - 10", "-3"},
		{"6 * 7", "42"},
		{"7 / 2", "3.5"},
		{"2 * 3 + 4 * 5", "26"},
		{"(2 + 3) * 4", "20"},
		{"-(3 + 4)", "-7"},
		{"- - 5", "5"},
		// Mixed-type arithmetic promotes to float.
		{"1 + 2.5", "3.5"},
		{"10 * 0.5", "5"},
		// Comparisons.
		{"1 < 2", "true"},
		{"2 <= 2", "true"},
		{"3 > 4", "false"},
		{"3 >= 4", "false"},
		{"1 = 1.0", "true"},
		{"1 <> 2", "true"},
		{"'abc' < 'abd'", "true"},
		{"'a' = 'a'", "true"},
		{"TRUE = TRUE", "true"},
		{"FALSE < TRUE", "true"},
		// Logic.
		{"TRUE AND FALSE", "false"},
		{"TRUE OR FALSE", "true"},
		{"NOT TRUE", "false"},
		{"NOT FALSE AND TRUE", "true"},
		// NULL propagation.
		{"NULL + 1", "NULL"},
		{"NULL = NULL", "NULL"},
		{"NOT NULL", "NULL"},
		{"NULL AND TRUE", "NULL"},
		{"NULL AND FALSE", "false"}, // short-circuit three-valued logic
		{"NULL OR TRUE", "true"},
		{"NULL OR FALSE", "NULL"},
		{"coalesce(NULL, NULL, 7)", "7"},
		{"coalesce(NULL, NULL)", "NULL"},
		// Strings.
		{"'a' || 'b' || 'c'", "abc"},
		{"1 || 'x'", "1x"},
		{"length('héllo')", "6"}, // bytes, not runes
		{"upper('mixed') || lower('CASE')", "MIXEDcase"},
		// Scalar functions.
		{"abs(-2.5)", "2.5"},
		{"abs(3)", "3"},
		{"sqrt(16.0)", "4"},
		{"floor(3.9)", "3"},
		{"ceil(3.1)", "4"},
		{"mod(17, 5)", "2"},
		{"least(5, 2, 9)", "2"},
		{"greatest(5, 2, 9)", "9"},
		{"least('b', 'a', 'c')", "a"},
		// IN lists.
		{"2 IN (1, 2, 3)", "true"},
		{"5 IN (1, 2, 3)", "false"},
		{"5 NOT IN (1, 2, 3)", "true"},
		{"NULL IN (1, 2)", "NULL"},
		// CASE.
		{"CASE WHEN 1 < 2 THEN 'y' ELSE 'n' END", "y"},
		{"CASE 3 WHEN 1 THEN 'a' WHEN 3 THEN 'c' END", "c"},
		{"CASE 9 WHEN 1 THEN 'a' END", "NULL"},
		// BETWEEN-desugared.
		{"5 BETWEEN 1 AND 10", "true"},
		{"0 BETWEEN 1 AND 10", "false"},
		{"0 NOT BETWEEN 1 AND 10", "true"},
		// LIKE.
		{"'hello' LIKE 'he%'", "true"},
		{"'hello' LIKE 'h_llo'", "true"},
		{"'hello' NOT LIKE '%z%'", "true"},
	}
	for _, c := range cases {
		v, err := evalScalar(t, db, c.expr)
		if err != nil {
			t.Errorf("%s: %v", c.expr, err)
			continue
		}
		if v.String() != c.want {
			t.Errorf("%s = %s, want %s", c.expr, v.String(), c.want)
		}
	}
}

// TestExpressionEvalErrors drives the evaluator's error paths.
func TestExpressionEvalErrors(t *testing.T) {
	db := NewDB()
	bad := []string{
		"1 / 0",
		"1.0 / 0.0",
		"mod(1, 0)",
		"sqrt(-1.0)",
		"'a' + 1",
		"'a' < 1",
		"NOT 5",
		"-'x'",
		"TRUE AND 3",
		"5 OR FALSE",
		"abs('x')",
		"abs(1, 2)",
		"least()",
		"5 LIKE '%'",
	}
	for _, expr := range bad {
		if _, err := evalScalar(t, db, expr); err == nil {
			t.Errorf("%s evaluated without error", expr)
		}
	}
}

// TestErrorPropagationThroughOperators: runtime errors raised mid-stream
// must surface through every operator, not be swallowed.
func TestErrorPropagationThroughOperators(t *testing.T) {
	db := testDB(t)
	bad := []string{
		// filter
		"SELECT name FROM emp WHERE salary / (dept - 10) > 0",
		// projection
		"SELECT salary / (dept - 10) FROM emp",
		// sort key
		"SELECT name FROM emp ORDER BY salary / (dept - 10)",
		// aggregation input
		"SELECT sum(salary / (dept - 10)) FROM emp",
		// having
		"SELECT dept FROM emp GROUP BY dept HAVING sum(salary) / (min(dept) - 10) > 0",
		// join key evaluation
		"SELECT e.name FROM emp e, dept d WHERE e.dept / (e.dept - 10) = d.id",
		// SGB grouping attribute
		"SELECT count(*) FROM emp GROUP BY salary / (dept - 10), salary DISTANCE-TO-ALL L2 WITHIN 1",
	}
	for _, q := range bad {
		if _, err := db.Query(q); err == nil {
			t.Errorf("error swallowed: %s", q)
		} else if !strings.Contains(err.Error(), "division by zero") {
			t.Errorf("%s: unexpected error %v", q, err)
		}
	}
}

// TestAllPairsExactComparisonCount pins the All-Pairs cost model: under
// ELIMINATE (no early break) with all points isolated (every point its own
// group, no overlaps), FindCloseGroups performs exactly n(n-1)/2 distance
// computations — the paper's quadratic bound, measured not estimated.
func TestAllPairsExactComparisonCount(t *testing.T) {
	db := NewDB()
	if _, err := db.Exec("CREATE TABLE iso (x FLOAT, y FLOAT)"); err != nil {
		t.Fatal(err)
	}
	tbl, _ := db.Catalog().Get("iso")
	const n = 40
	for i := 0; i < n; i++ {
		// Far apart: no groups ever merge, no overlaps.
		if err := tbl.Insert(Row{NewFloat(float64(i) * 100), NewFloat(0)}); err != nil {
			t.Fatal(err)
		}
	}
	db.SetSGBAlgorithm(core.AllPairs)
	if _, err := db.Query("SELECT count(*) FROM iso GROUP BY x, y DISTANCE-TO-ALL L2 WITHIN 1 ON-OVERLAP ELIMINATE"); err != nil {
		t.Fatal(err)
	}
	st := db.LastSGBStats()
	if st == nil {
		t.Fatal("no stats")
	}
	want := int64(n * (n - 1) / 2)
	if st.DistanceComps != want {
		t.Fatalf("All-Pairs performed %d comparisons, want exactly %d", st.DistanceComps, want)
	}
}
