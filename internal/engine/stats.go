package engine

import (
	"fmt"
	"math"

	"sgb/internal/geom"
)

// This file is the statistics catalog behind the cost-based planner: per-table
// row counts, per-column min/max and distinct estimates, and a 2-D grid
// density sketch over the first two FLOAT columns — the grouping space of the
// paper's similarity queries. Full statistics are computed by ANALYZE;
// between ANALYZE runs the counters are maintained incrementally on DML, with
// a staleness counter so the planner can tell how much it should trust them.

// AnalyzeStmt is a parsed ANALYZE [table]. An empty Table analyzes the whole
// catalog. ANALYZE recomputes the target tables' statistics from scratch and
// resets their staleness counters.
type AnalyzeStmt struct {
	Table string
}

func (*AnalyzeStmt) stmt() {}

// sketchGridSide is the density sketch resolution per axis. 48×48 cells keep
// the sketch a few KB per table while resolving clusters well below the
// epsilon ranges the benchmarks sweep.
const sketchGridSide = 48

// ColumnStats summarizes one column for selectivity estimation.
type ColumnStats struct {
	// Min and Max bound the column's numeric values; valid when HasRange.
	// They are widened incrementally on INSERT but never narrowed until the
	// next ANALYZE, so they stay conservative under DELETE/UPDATE.
	Min, Max float64
	HasRange bool
	// DistinctEst estimates the number of distinct non-null values
	// (exact as of the last ANALYZE).
	DistinctEst int64
	// NullCount counts NULLs as of the last ANALYZE.
	NullCount int64
}

// DensitySketch is a 2-D grid histogram over two FLOAT columns: the planner's
// stand-in for the paper's n/ε/skew regimes. Cell counts answer two questions
// an SGB cost model needs: the expected number of ε-neighbors of a random
// point (how much distance work per tuple) and the occupied area (how many
// ε-sized groups the data can sustain). Cells are sized from the data's
// bounding box at ANALYZE time; estimates for a query ε rescale analytically.
type DensitySketch struct {
	// ColX, ColY are the sketched columns' schema positions.
	ColX, ColY int
	// MinX, MinY anchor the grid; CellW, CellH are the cell dimensions.
	MinX, MinY   float64
	CellW, CellH float64
	// Counts is the sketchGridSide×sketchGridSide histogram, row-major.
	Counts []int64
	// N is the number of points in the sketch.
	N int64
}

// TableStats is a table's statistics catalog entry. All fields are exported
// so snapshots gob-encode them alongside the table.
type TableStats struct {
	// RowCount is the live row count, maintained incrementally on DML.
	RowCount int64
	// AnalyzedRows is the row count observed by the last ANALYZE
	// (0 = never analyzed: only RowCount and Stale are meaningful).
	AnalyzedRows int64
	// Stale counts rows inserted, updated, or deleted since the last
	// ANALYZE — the staleness counter the planner checks before trusting
	// the distribution statistics.
	Stale int64
	// Columns holds per-column statistics, parallel to the table schema.
	Columns []ColumnStats
	// Sketch is the 2-D density sketch over the first two FLOAT columns,
	// nil when the table has fewer than two.
	Sketch *DensitySketch
}

// Fresh reports whether the distribution statistics (ranges, distincts,
// sketch) are trustworthy: an ANALYZE has run and fewer than half the
// analyzed rows have churned since.
func (s *TableStats) Fresh() bool {
	return s != nil && s.AnalyzedRows > 0 && s.Stale*2 <= s.AnalyzedRows
}

// Col returns the statistics for schema column i, or nil.
func (s *TableStats) Col(i int) *ColumnStats {
	if s == nil || i < 0 || i >= len(s.Columns) {
		return nil
	}
	return &s.Columns[i]
}

// ensureStats lazily attaches a stats entry whose row count starts at base
// (the table's pre-mutation cardinality, for tables that predate statistics —
// e.g. restored from an old snapshot).
func (t *Table) ensureStats(base int) *TableStats {
	if t.Stats == nil {
		t.Stats = &TableStats{RowCount: int64(base)}
	}
	return t.Stats
}

// statsNoteInsert folds a successfully appended batch into the incremental
// statistics. It must only be called after the rows are committed to the
// table (Table.Insert validates the whole batch first), so a failed or
// rolled-back INSERT never bumps the counters.
func (t *Table) statsNoteInsert(rows []Row) {
	s := t.ensureStats(len(t.Rows) - len(rows))
	s.RowCount += int64(len(rows))
	s.Stale += int64(len(rows))
	if s.AnalyzedRows == 0 {
		return
	}
	for _, r := range rows {
		for i, v := range r {
			if i >= len(s.Columns) || v.IsNull() {
				continue
			}
			f, err := v.AsFloat()
			if err != nil {
				continue
			}
			c := &s.Columns[i]
			if c.HasRange {
				if f < c.Min {
					c.Min = f
				}
				if f > c.Max {
					c.Max = f
				}
			}
		}
		if sk := s.Sketch; sk != nil {
			x, errX := r[sk.ColX].AsFloat()
			y, errY := r[sk.ColY].AsFloat()
			if errX == nil && errY == nil && !r[sk.ColX].IsNull() && !r[sk.ColY].IsNull() {
				sk.add(x, y)
			}
		}
	}
}

// statsNoteUpdate records n updated rows: values moved, so the distribution
// statistics degrade but the cardinality is unchanged.
func (t *Table) statsNoteUpdate(n int) {
	if n <= 0 {
		return
	}
	s := t.ensureStats(len(t.Rows))
	s.Stale += int64(n)
}

// statsNoteDelete records n deleted rows.
func (t *Table) statsNoteDelete(n int) {
	if n <= 0 {
		return
	}
	s := t.ensureStats(len(t.Rows) + n)
	s.RowCount -= int64(n)
	s.Stale += int64(n)
}

// Analyze recomputes the table's statistics from scratch: exact row count,
// per-column min/max/distinct/null counts, and the density sketch over the
// first two FLOAT columns. The staleness counter resets to zero.
func (t *Table) Analyze() *TableStats {
	s := &TableStats{
		RowCount:     int64(len(t.Rows)),
		AnalyzedRows: int64(len(t.Rows)),
		Columns:      make([]ColumnStats, len(t.Schema)),
	}
	distinct := make([]map[string]struct{}, len(t.Schema))
	for i := range distinct {
		distinct[i] = make(map[string]struct{})
	}
	for _, r := range t.Rows {
		for i, v := range r {
			if i >= len(s.Columns) {
				break
			}
			c := &s.Columns[i]
			if v.IsNull() {
				c.NullCount++
				continue
			}
			distinct[i][Key(Row{v})] = struct{}{}
			if t.Schema[i].T == TypeInt || t.Schema[i].T == TypeFloat {
				f, err := v.AsFloat()
				if err == nil {
					if !c.HasRange {
						c.Min, c.Max, c.HasRange = f, f, true
					} else {
						if f < c.Min {
							c.Min = f
						}
						if f > c.Max {
							c.Max = f
						}
					}
				}
			}
		}
	}
	for i := range s.Columns {
		s.Columns[i].DistinctEst = int64(len(distinct[i]))
	}
	s.Sketch = t.buildSketch(s)
	t.Stats = s
	return s
}

// buildSketch builds the density sketch over the table's first two FLOAT
// columns, or returns nil when the table has fewer than two (or no rows).
func (t *Table) buildSketch(s *TableStats) *DensitySketch {
	colX, colY := -1, -1
	for i, c := range t.Schema {
		if c.T != TypeFloat {
			continue
		}
		if colX < 0 {
			colX = i
		} else {
			colY = i
			break
		}
	}
	if colX < 0 || colY < 0 || len(t.Rows) == 0 {
		return nil
	}
	cx, cy := s.Col(colX), s.Col(colY)
	if cx == nil || cy == nil || !cx.HasRange || !cy.HasRange {
		return nil
	}
	sk := &DensitySketch{
		ColX: colX, ColY: colY,
		MinX: cx.Min, MinY: cy.Min,
		CellW:  cellSize(cx.Min, cx.Max),
		CellH:  cellSize(cy.Min, cy.Max),
		Counts: make([]int64, sketchGridSide*sketchGridSide),
	}
	for _, r := range t.Rows {
		if r[colX].IsNull() || r[colY].IsNull() {
			continue
		}
		x, errX := r[colX].AsFloat()
		y, errY := r[colY].AsFloat()
		if errX != nil || errY != nil {
			continue
		}
		sk.add(x, y)
	}
	return sk
}

// cellSize sizes one sketch cell along an axis spanning [min, max]. A
// degenerate (single-valued) axis gets a unit cell so densities stay finite.
func cellSize(min, max float64) float64 {
	w := (max - min) / sketchGridSide
	if w <= 0 || math.IsNaN(w) || math.IsInf(w, 0) {
		return 1
	}
	return w
}

// add counts one point, clamping coordinates outside the grid onto the edge
// cells so incremental inserts beyond the analyzed bounding box still land
// somewhere and N stays consistent with the counts.
func (sk *DensitySketch) add(x, y float64) {
	cx := clampCell(int((x - sk.MinX) / sk.CellW))
	cy := clampCell(int((y - sk.MinY) / sk.CellH))
	sk.Counts[cy*sketchGridSide+cx]++
	sk.N++
}

func clampCell(i int) int {
	if i < 0 {
		return 0
	}
	if i >= sketchGridSide {
		return sketchGridSide - 1
	}
	return i
}

// neighborArea is the area of the ε-neighborhood under a metric: the region a
// point's similarity predicate covers in the 2-D grouping space.
func neighborArea(m geom.Metric, eps float64) float64 {
	switch m {
	case geom.L2:
		return math.Pi * eps * eps
	case geom.L1:
		return 2 * eps * eps
	default: // LInf: a (2ε)² square
		return 4 * eps * eps
	}
}

// ExpectedNeighbors estimates how many ε-neighbors a random point has: the
// population-weighted local density times the neighborhood area,
// E[k] = Σ_cells (n_c/N)·(n_c/cellArea)·A_ε. This is the density sketch's
// expected-neighbors-per-cell figure the SGB cost model consumes.
func (sk *DensitySketch) ExpectedNeighbors(area float64) float64 {
	if sk == nil || sk.N == 0 {
		return 0
	}
	cell := sk.CellW * sk.CellH
	var sumSq float64
	for _, c := range sk.Counts {
		sumSq += float64(c) * float64(c)
	}
	k := sumSq / float64(sk.N) / cell * area
	if k > float64(sk.N) {
		k = float64(sk.N)
	}
	return k
}

// OccupiedArea is the total area of non-empty sketch cells: the footprint the
// data actually covers, which bounds how many ε-sized groups it can sustain.
func (sk *DensitySketch) OccupiedArea() float64 {
	if sk == nil {
		return 0
	}
	var occupied int
	for _, c := range sk.Counts {
		if c > 0 {
			occupied++
		}
	}
	return float64(occupied) * sk.CellW * sk.CellH
}

// StatsSnapshot returns a copy of the table's statistics entry taken under
// the statement read lock, or nil when the table is unknown or has no
// statistics yet — a race-free probe for tests and monitoring (the live
// *TableStats is mutated by concurrent writers and ANALYZE).
func (db *DB) StatsSnapshot(table string) *TableStats {
	db.mu.RLock()
	defer db.mu.RUnlock()
	t, err := db.cat.Get(table)
	if err != nil || t.Stats == nil {
		return nil
	}
	s := *t.Stats
	s.Columns = append([]ColumnStats(nil), t.Stats.Columns...)
	if sk := t.Stats.Sketch; sk != nil {
		skCopy := *sk
		skCopy.Counts = append([]int64(nil), sk.Counts...)
		s.Sketch = &skCopy
	}
	return &s
}

// analyzeTables runs ANALYZE over one table or the whole catalog, returning
// one summary row per table.
func (db *DB) analyzeTables(name string) (*Result, error) {
	var tables []*Table
	if name != "" {
		t, err := db.cat.Get(name)
		if err != nil {
			return nil, err
		}
		tables = append(tables, t)
	} else {
		for _, n := range db.cat.Names() {
			t, err := db.cat.Get(n)
			if err != nil {
				return nil, err
			}
			tables = append(tables, t)
		}
	}
	res := &Result{Columns: []string{"table", "rows", "sketch"}}
	for _, t := range tables {
		s := t.Analyze()
		sketch := "none"
		if s.Sketch != nil {
			sketch = fmt.Sprintf("%dx%d over (%s, %s)", sketchGridSide, sketchGridSide,
				t.Schema[s.Sketch.ColX].Name, t.Schema[s.Sketch.ColY].Name)
		}
		res.Rows = append(res.Rows, Row{NewString(t.Name), NewInt(s.RowCount), NewString(sketch)})
	}
	sortRowsStable(res.Rows, 1)
	return res, nil
}
