package engine

import (
	"fmt"
	"math"
	"strings"
)

// evalFn evaluates a compiled expression against an input row.
type evalFn func(Row) (Value, error)

// compileExpr resolves column references against schema and returns an
// evaluator. pc supplies subquery planning for IN (SELECT ...); it may be
// nil when the expression cannot contain subqueries.
func compileExpr(e Expr, schema Schema, pc *planContext) (evalFn, error) {
	switch e := e.(type) {
	case *Literal:
		v := e.V
		return func(Row) (Value, error) { return v, nil }, nil

	case *ColumnRef:
		idx, err := schema.Resolve(e.Table, e.Name)
		if err != nil {
			return nil, err
		}
		return func(r Row) (Value, error) { return r[idx], nil }, nil

	case *UnaryExpr:
		x, err := compileExpr(e.X, schema, pc)
		if err != nil {
			return nil, err
		}
		switch e.Op {
		case "-":
			return func(r Row) (Value, error) {
				v, err := x(r)
				if err != nil || v.IsNull() {
					return Null, err
				}
				switch v.T {
				case TypeInt:
					return NewInt(-v.I), nil
				case TypeFloat:
					return NewFloat(-v.F), nil
				}
				return Null, fmt.Errorf("engine: cannot negate %s", v.T)
			}, nil
		case "NOT":
			return func(r Row) (Value, error) {
				v, err := x(r)
				if err != nil || v.IsNull() {
					return Null, err
				}
				if v.T != TypeBool {
					return Null, fmt.Errorf("engine: NOT expects a boolean, got %s", v.T)
				}
				return NewBool(!v.B), nil
			}, nil
		}
		return nil, fmt.Errorf("engine: unknown unary operator %q", e.Op)

	case *BinaryExpr:
		l, err := compileExpr(e.L, schema, pc)
		if err != nil {
			return nil, err
		}
		r, err := compileExpr(e.R, schema, pc)
		if err != nil {
			return nil, err
		}
		return compileBinary(e.Op, l, r)

	case *FuncCall:
		if isAggregateName(e.Name) {
			return nil, fmt.Errorf("engine: aggregate %s() is not allowed here", e.Name)
		}
		return compileScalarCall(e, schema, pc)

	case *InList:
		x, err := compileExpr(e.X, schema, pc)
		if err != nil {
			return nil, err
		}
		items := make([]evalFn, len(e.Items))
		for i, it := range e.Items {
			if items[i], err = compileExpr(it, schema, pc); err != nil {
				return nil, err
			}
		}
		not := e.Not
		return func(r Row) (Value, error) {
			v, err := x(r)
			if err != nil {
				return Null, err
			}
			if v.IsNull() {
				return Null, nil
			}
			for _, it := range items {
				iv, err := it(r)
				if err != nil {
					return Null, err
				}
				c, err := Compare(v, iv)
				if err != nil {
					return Null, err
				}
				if c == 0 && !iv.IsNull() {
					return NewBool(!not), nil
				}
			}
			return NewBool(not), nil
		}, nil

	case *CaseExpr:
		var operand evalFn
		if e.Operand != nil {
			var err error
			if operand, err = compileExpr(e.Operand, schema, pc); err != nil {
				return nil, err
			}
		}
		conds := make([]evalFn, len(e.Whens))
		results := make([]evalFn, len(e.Whens))
		for i, w := range e.Whens {
			var err error
			if conds[i], err = compileExpr(w.Cond, schema, pc); err != nil {
				return nil, err
			}
			if results[i], err = compileExpr(w.Result, schema, pc); err != nil {
				return nil, err
			}
		}
		var elseFn evalFn
		if e.Else != nil {
			var err error
			if elseFn, err = compileExpr(e.Else, schema, pc); err != nil {
				return nil, err
			}
		}
		return func(r Row) (Value, error) {
			var opVal Value
			if operand != nil {
				v, err := operand(r)
				if err != nil {
					return Null, err
				}
				opVal = v
			}
			for i, cond := range conds {
				cv, err := cond(r)
				if err != nil {
					return Null, err
				}
				matched := false
				if operand != nil {
					if !opVal.IsNull() && !cv.IsNull() {
						c, err := Compare(opVal, cv)
						if err != nil {
							return Null, err
						}
						matched = c == 0
					}
				} else {
					matched = cv.Truthy()
				}
				if matched {
					return results[i](r)
				}
			}
			if elseFn != nil {
				return elseFn(r)
			}
			return Null, nil
		}, nil

	case *ScalarSubquery:
		if pc == nil {
			return nil, fmt.Errorf("engine: subquery is not allowed here")
		}
		var cached *Value
		query := e.Query
		planCtx := pc
		return func(Row) (Value, error) {
			if cached == nil {
				rows, rschema, err := planCtx.run(query)
				if err != nil {
					return Null, err
				}
				if len(rschema) != 1 {
					return Null, fmt.Errorf("engine: scalar subquery must return one column, got %d", len(rschema))
				}
				if len(rows) > 1 {
					return Null, fmt.Errorf("engine: scalar subquery returned %d rows", len(rows))
				}
				v := Null
				if len(rows) == 1 {
					v = rows[0][0]
				}
				cached = &v
			}
			return *cached, nil
		}, nil

	case *InSubquery:
		if pc == nil {
			return nil, fmt.Errorf("engine: subquery is not allowed here")
		}
		x, err := compileExpr(e.X, schema, pc)
		if err != nil {
			return nil, err
		}
		// Uncorrelated: materialize the subquery once, lazily.
		var set map[string]bool
		not := e.Not
		query := e.Query
		planCtx := pc
		return func(r Row) (Value, error) {
			if set == nil {
				rows, rschema, err := planCtx.run(query)
				if err != nil {
					return Null, err
				}
				if len(rschema) != 1 {
					return Null, fmt.Errorf("engine: IN subquery must return one column, got %d", len(rschema))
				}
				set = make(map[string]bool, len(rows))
				for _, row := range rows {
					set[Key(row[:1])] = true
				}
			}
			v, err := x(r)
			if err != nil {
				return Null, err
			}
			if v.IsNull() {
				return Null, nil
			}
			// Match integer keys against float sets and vice versa by
			// probing both encodings.
			hit := set[Key([]Value{v})]
			if !hit {
				if v.T == TypeInt {
					hit = set[Key([]Value{NewFloat(float64(v.I))})]
				} else if v.T == TypeFloat && v.F == math.Trunc(v.F) {
					hit = set[Key([]Value{NewInt(int64(v.F))})]
				}
			}
			return NewBool(hit != not), nil
		}, nil
	}
	return nil, fmt.Errorf("engine: cannot compile expression %T", e)
}

func compileBinary(op string, l, r evalFn) (evalFn, error) {
	switch op {
	case "AND":
		return func(row Row) (Value, error) {
			lv, err := l(row)
			if err != nil {
				return Null, err
			}
			if lv.T == TypeBool && !lv.B {
				return NewBool(false), nil
			}
			rv, err := r(row)
			if err != nil {
				return Null, err
			}
			if rv.T == TypeBool && !rv.B {
				return NewBool(false), nil
			}
			if lv.IsNull() || rv.IsNull() {
				return Null, nil
			}
			if lv.T != TypeBool || rv.T != TypeBool {
				return Null, fmt.Errorf("engine: AND expects booleans")
			}
			return NewBool(true), nil
		}, nil
	case "OR":
		return func(row Row) (Value, error) {
			lv, err := l(row)
			if err != nil {
				return Null, err
			}
			if lv.T == TypeBool && lv.B {
				return NewBool(true), nil
			}
			rv, err := r(row)
			if err != nil {
				return Null, err
			}
			if rv.T == TypeBool && rv.B {
				return NewBool(true), nil
			}
			if lv.IsNull() || rv.IsNull() {
				return Null, nil
			}
			if lv.T != TypeBool || rv.T != TypeBool {
				return Null, fmt.Errorf("engine: OR expects booleans")
			}
			return NewBool(false), nil
		}, nil
	case "=", "<>", "<", "<=", ">", ">=":
		return func(row Row) (Value, error) {
			lv, err := l(row)
			if err != nil {
				return Null, err
			}
			rv, err := r(row)
			if err != nil {
				return Null, err
			}
			if lv.IsNull() || rv.IsNull() {
				return Null, nil
			}
			c, err := Compare(lv, rv)
			if err != nil {
				return Null, err
			}
			switch op {
			case "=":
				return NewBool(c == 0), nil
			case "<>":
				return NewBool(c != 0), nil
			case "<":
				return NewBool(c < 0), nil
			case "<=":
				return NewBool(c <= 0), nil
			case ">":
				return NewBool(c > 0), nil
			default:
				return NewBool(c >= 0), nil
			}
		}, nil
	case "LIKE":
		return func(row Row) (Value, error) {
			lv, err := l(row)
			if err != nil {
				return Null, err
			}
			rv, err := r(row)
			if err != nil {
				return Null, err
			}
			if lv.IsNull() || rv.IsNull() {
				return Null, nil
			}
			if lv.T != TypeString || rv.T != TypeString {
				return Null, fmt.Errorf("engine: LIKE expects strings")
			}
			return NewBool(likeMatch(rv.S, lv.S)), nil
		}, nil
	case "||":
		return func(row Row) (Value, error) {
			lv, err := l(row)
			if err != nil {
				return Null, err
			}
			rv, err := r(row)
			if err != nil {
				return Null, err
			}
			if lv.IsNull() || rv.IsNull() {
				return Null, nil
			}
			return NewString(lv.String() + rv.String()), nil
		}, nil
	case "+", "-", "*", "/":
		return func(row Row) (Value, error) {
			lv, err := l(row)
			if err != nil {
				return Null, err
			}
			rv, err := r(row)
			if err != nil {
				return Null, err
			}
			if lv.IsNull() || rv.IsNull() {
				return Null, nil
			}
			return arith(op, lv, rv)
		}, nil
	}
	return nil, fmt.Errorf("engine: unknown operator %q", op)
}

func arith(op string, a, b Value) (Value, error) {
	ai, bi, af, bf, isInt, err := numericPair(a, b)
	if err != nil {
		return Null, fmt.Errorf("engine: %s requires numeric operands (%s, %s)", op, a.T, b.T)
	}
	if isInt && op != "/" {
		switch op {
		case "+":
			return NewInt(ai + bi), nil
		case "-":
			return NewInt(ai - bi), nil
		case "*":
			return NewInt(ai * bi), nil
		}
	}
	if isInt {
		af, bf = float64(ai), float64(bi)
	}
	switch op {
	case "+":
		return NewFloat(af + bf), nil
	case "-":
		return NewFloat(af - bf), nil
	case "*":
		return NewFloat(af * bf), nil
	case "/":
		if bf == 0 {
			return Null, fmt.Errorf("engine: division by zero")
		}
		return NewFloat(af / bf), nil
	}
	return Null, fmt.Errorf("engine: unknown arithmetic operator %q", op)
}

// compileScalarCall compiles the supported scalar functions.
func compileScalarCall(e *FuncCall, schema Schema, pc *planContext) (evalFn, error) {
	if e.Distinct {
		return nil, fmt.Errorf("engine: DISTINCT is only valid inside aggregates, not %s()", e.Name)
	}
	args := make([]evalFn, len(e.Args))
	for i, a := range e.Args {
		f, err := compileExpr(a, schema, pc)
		if err != nil {
			return nil, err
		}
		args[i] = f
	}
	need := func(n int) error {
		if len(args) != n {
			return fmt.Errorf("engine: %s() expects %d argument(s), got %d", e.Name, n, len(args))
		}
		return nil
	}
	evalArgs := func(r Row) ([]Value, error) {
		out := make([]Value, len(args))
		for i, f := range args {
			v, err := f(r)
			if err != nil {
				return nil, err
			}
			out[i] = v
		}
		return out, nil
	}
	switch e.Name {
	case "abs":
		if err := need(1); err != nil {
			return nil, err
		}
		return func(r Row) (Value, error) {
			vs, err := evalArgs(r)
			if err != nil || vs[0].IsNull() {
				return Null, err
			}
			switch vs[0].T {
			case TypeInt:
				if vs[0].I < 0 {
					return NewInt(-vs[0].I), nil
				}
				return vs[0], nil
			case TypeFloat:
				return NewFloat(math.Abs(vs[0].F)), nil
			}
			return Null, fmt.Errorf("engine: abs expects a number")
		}, nil
	case "sqrt", "floor", "ceil":
		if err := need(1); err != nil {
			return nil, err
		}
		name := e.Name
		return func(r Row) (Value, error) {
			vs, err := evalArgs(r)
			if err != nil || vs[0].IsNull() {
				return Null, err
			}
			f, err := vs[0].AsFloat()
			if err != nil {
				return Null, err
			}
			switch name {
			case "sqrt":
				if f < 0 {
					return Null, fmt.Errorf("engine: sqrt of negative value")
				}
				return NewFloat(math.Sqrt(f)), nil
			case "floor":
				return NewFloat(math.Floor(f)), nil
			default:
				return NewFloat(math.Ceil(f)), nil
			}
		}, nil
	case "mod":
		if err := need(2); err != nil {
			return nil, err
		}
		return func(r Row) (Value, error) {
			vs, err := evalArgs(r)
			if err != nil || vs[0].IsNull() || vs[1].IsNull() {
				return Null, err
			}
			a, err := vs[0].AsInt()
			if err != nil {
				return Null, err
			}
			b, err := vs[1].AsInt()
			if err != nil {
				return Null, err
			}
			if b == 0 {
				return Null, fmt.Errorf("engine: mod by zero")
			}
			return NewInt(a % b), nil
		}, nil
	case "least", "greatest":
		if len(args) == 0 {
			return nil, fmt.Errorf("engine: %s() expects at least one argument", e.Name)
		}
		greatest := e.Name == "greatest"
		return func(r Row) (Value, error) {
			vs, err := evalArgs(r)
			if err != nil {
				return Null, err
			}
			best := vs[0]
			for _, v := range vs[1:] {
				if v.IsNull() {
					return Null, nil
				}
				c, err := Compare(v, best)
				if err != nil {
					return Null, err
				}
				if (greatest && c > 0) || (!greatest && c < 0) {
					best = v
				}
			}
			return best, nil
		}, nil
	case "coalesce":
		return func(r Row) (Value, error) {
			vs, err := evalArgs(r)
			if err != nil {
				return Null, err
			}
			for _, v := range vs {
				if !v.IsNull() {
					return v, nil
				}
			}
			return Null, nil
		}, nil
	case "length":
		if err := need(1); err != nil {
			return nil, err
		}
		return func(r Row) (Value, error) {
			vs, err := evalArgs(r)
			if err != nil || vs[0].IsNull() {
				return Null, err
			}
			return NewInt(int64(len(vs[0].String()))), nil
		}, nil
	case "lower", "upper":
		if err := need(1); err != nil {
			return nil, err
		}
		up := e.Name == "upper"
		return func(r Row) (Value, error) {
			vs, err := evalArgs(r)
			if err != nil || vs[0].IsNull() {
				return Null, err
			}
			if up {
				return NewString(strings.ToUpper(vs[0].String())), nil
			}
			return NewString(strings.ToLower(vs[0].String())), nil
		}, nil
	}
	return nil, fmt.Errorf("engine: unknown function %s()", e.Name)
}

// likeMatch implements SQL LIKE: '%' matches any run of characters, '_'
// matches exactly one character, everything else matches literally
// (case-sensitive, no escape syntax).
func likeMatch(pattern, s string) bool {
	// Iterative two-pointer match with backtracking on the last '%'.
	pi, si := 0, 0
	star, starS := -1, 0
	for si < len(s) {
		switch {
		case pi < len(pattern) && (pattern[pi] == '_' || pattern[pi] == s[si]):
			pi++
			si++
		case pi < len(pattern) && pattern[pi] == '%':
			star, starS = pi, si
			pi++
		case star != -1:
			pi = star + 1
			starS++
			si = starS
		default:
			return false
		}
	}
	for pi < len(pattern) && pattern[pi] == '%' {
		pi++
	}
	return pi == len(pattern)
}
