package engine

import (
	"reflect"
	"testing"
)

func TestDeleteWithWhere(t *testing.T) {
	db := testDB(t)
	res, err := db.Exec("DELETE FROM emp WHERE dept = 10")
	if err != nil {
		t.Fatal(err)
	}
	if res.RowsAffected != 2 {
		t.Fatalf("deleted %d rows, want 2", res.RowsAffected)
	}
	got := queryStrings(t, db, "SELECT name FROM emp ORDER BY name")
	want := [][]string{{"cat"}, {"dan"}, {"eve"}}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("got %v", got)
	}
}

func TestDeleteAll(t *testing.T) {
	db := testDB(t)
	res, err := db.Exec("DELETE FROM emp")
	if err != nil {
		t.Fatal(err)
	}
	if res.RowsAffected != 5 {
		t.Fatalf("deleted %d rows", res.RowsAffected)
	}
	got := queryStrings(t, db, "SELECT count(*) FROM emp")
	if got[0][0] != "0" {
		t.Fatalf("table not emptied: %v", got)
	}
}

func TestUpdateSimple(t *testing.T) {
	db := testDB(t)
	res, err := db.Exec("UPDATE emp SET salary = salary * 1.1 WHERE dept = 20")
	if err != nil {
		t.Fatal(err)
	}
	if res.RowsAffected != 2 {
		t.Fatalf("updated %d rows, want 2", res.RowsAffected)
	}
	got := queryStrings(t, db, "SELECT name, salary FROM emp WHERE dept = 20 ORDER BY name")
	want := [][]string{{"cat", "990.0000000000001"}, {"dan", "1650.0000000000002"}}
	if len(got) != 2 || got[0][0] != "cat" {
		t.Fatalf("got %v", got)
	}
	_ = want // float rendering is checked loosely above
	// Untouched rows keep their values.
	got = queryStrings(t, db, "SELECT salary FROM emp WHERE name = 'ann'")
	if got[0][0] != "1000" {
		t.Fatalf("unrelated row changed: %v", got)
	}
}

func TestUpdateSimultaneousAssignment(t *testing.T) {
	db := NewDB()
	if _, err := db.Exec("CREATE TABLE p (a INT, b INT)"); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Exec("INSERT INTO p VALUES (1, 2)"); err != nil {
		t.Fatal(err)
	}
	// SQL evaluates the right-hand sides against the pre-update row: a swap
	// must work.
	if _, err := db.Exec("UPDATE p SET a = b, b = a"); err != nil {
		t.Fatal(err)
	}
	got := queryStrings(t, db, "SELECT a, b FROM p")
	want := [][]string{{"2", "1"}}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("swap failed: %v", got)
	}
}

func TestUpdateMultipleColumnsAndCoercion(t *testing.T) {
	db := testDB(t)
	res, err := db.Exec("UPDATE emp SET salary = 2000, dept = 99 WHERE name = 'ann'")
	if err != nil {
		t.Fatal(err)
	}
	if res.RowsAffected != 1 {
		t.Fatalf("updated %d rows", res.RowsAffected)
	}
	got := queryStrings(t, db, "SELECT salary, dept FROM emp WHERE name = 'ann'")
	want := [][]string{{"2000", "99"}}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("got %v", got)
	}
}

func TestUpdateErrors(t *testing.T) {
	db := testDB(t)
	if _, err := db.Exec("UPDATE emp SET nosuch = 1"); err == nil {
		t.Error("updated unknown column")
	}
	if _, err := db.Exec("UPDATE emp SET salary = 'text'"); err == nil {
		t.Error("type-mismatched update accepted")
	}
	if _, err := db.Exec("UPDATE nosuch SET a = 1"); err == nil {
		t.Error("updated unknown table")
	}
	if _, err := db.Exec("DELETE FROM nosuch"); err == nil {
		t.Error("deleted from unknown table")
	}
	// An update with a subquery predicate.
	res, err := db.Exec("UPDATE emp SET salary = 0 WHERE dept IN (SELECT id FROM dept WHERE dname = 'hr')")
	if err != nil {
		t.Fatal(err)
	}
	if res.RowsAffected != 1 {
		t.Fatalf("subquery-predicated update affected %d", res.RowsAffected)
	}
}

func TestDeleteThenSGBStillCorrect(t *testing.T) {
	db := sgbDB(t)
	// Deleting the bridge point a5 separates the two cliques completely.
	if _, err := db.Exec("DELETE FROM pts WHERE id = 5"); err != nil {
		t.Fatal(err)
	}
	got := queryStrings(t, db, `
		SELECT count(*) FROM pts
		GROUP BY x, y DISTANCE-TO-ANY LINF WITHIN 3
		ORDER BY count(*)`)
	want := [][]string{{"2"}, {"2"}}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("got %v", got)
	}
}
