package engine

import (
	"bytes"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"sgb/internal/core"
)

func TestExplainSimple(t *testing.T) {
	db := testDB(t)
	res, err := db.Exec("EXPLAIN SELECT name FROM emp WHERE dept = 10 ORDER BY name LIMIT 2")
	if err != nil {
		t.Fatal(err)
	}
	plan := planText(res)
	for _, want := range []string{"Limit 2", "Project", "Sort", "Filter", "SeqScan on emp"} {
		if !strings.Contains(plan, want) {
			t.Errorf("plan missing %q:\n%s", want, plan)
		}
	}
}

func TestExplainJoinAndAggregate(t *testing.T) {
	db := testDB(t)
	res, err := db.Exec(`EXPLAIN SELECT d.dname, count(*)
		FROM emp e, dept d WHERE e.dept = d.id GROUP BY d.dname`)
	if err != nil {
		t.Fatal(err)
	}
	plan := planText(res)
	for _, want := range []string{"HashJoin", "HashAggregate", "SeqScan on emp", "SeqScan on dept"} {
		if !strings.Contains(plan, want) {
			t.Errorf("plan missing %q:\n%s", want, plan)
		}
	}
}

func TestExplainSGB(t *testing.T) {
	db := NewDB()
	if _, err := db.Exec("CREATE TABLE pts (x FLOAT, y FLOAT)"); err != nil {
		t.Fatal(err)
	}
	res, err := db.Exec(`EXPLAIN SELECT count(*) FROM pts
		GROUP BY x, y DISTANCE-TO-ALL L2 WITHIN 0.5 ON-OVERLAP ELIMINATE`)
	if err != nil {
		t.Fatal(err)
	}
	plan := planText(res)
	if !strings.Contains(plan, "SimilarityGroupBy DISTANCE-TO-ALL ELIMINATE L2 WITHIN 0.5") {
		t.Errorf("SGB operator not in plan:\n%s", plan)
	}
	db.SetSGBAlgorithm(core.BoundsChecking)
	res, err = db.Exec(`EXPLAIN SELECT count(*) FROM pts
		GROUP BY x, y DISTANCE-TO-ANY LINF WITHIN 2`)
	if err != nil {
		t.Fatal(err)
	}
	plan = planText(res)
	if !strings.Contains(plan, "DISTANCE-TO-ANY LINF WITHIN 2") {
		t.Errorf("SGB-Any not in plan:\n%s", plan)
	}
}

func planText(res *Result) string {
	var sb strings.Builder
	for _, r := range res.Rows {
		sb.WriteString(r[0].S)
		sb.WriteByte('\n')
	}
	return sb.String()
}

func TestCopyFromCSV(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "pts.csv")
	csv := "id,x,y,label\n1,0.5,1.5,a\n2,2.5,3.5,b\n3,,,c\n"
	if err := os.WriteFile(path, []byte(csv), 0o644); err != nil {
		t.Fatal(err)
	}
	db := NewDB()
	if _, err := db.Exec("CREATE TABLE pts (id INT, x FLOAT, y FLOAT, label TEXT)"); err != nil {
		t.Fatal(err)
	}
	res, err := db.Exec("COPY pts FROM '" + path + "'")
	if err != nil {
		t.Fatal(err)
	}
	if res.RowsAffected != 3 {
		t.Fatalf("copied %d rows", res.RowsAffected)
	}
	got := queryStrings(t, db, "SELECT id, x, label FROM pts ORDER BY id")
	want := [][]string{{"1", "0.5", "a"}, {"2", "2.5", "b"}, {"3", "NULL", "c"}}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("got %v", got)
	}
}

func TestCopyHeaderReordered(t *testing.T) {
	db := NewDB()
	if _, err := db.Exec("CREATE TABLE t (a INT, b TEXT)"); err != nil {
		t.Fatal(err)
	}
	tbl, _ := db.Catalog().Get("t")
	n, err := copyFromReader(tbl, strings.NewReader("b,a\nx,1\ny,2\n"))
	if err != nil || n != 2 {
		t.Fatalf("copy: %d, %v", n, err)
	}
	if tbl.Rows[0][0].I != 1 || tbl.Rows[0][1].S != "x" {
		t.Fatalf("reordered header mis-mapped: %v", tbl.Rows[0])
	}
}

func TestCopyErrors(t *testing.T) {
	db := NewDB()
	if _, err := db.Exec("CREATE TABLE t (a INT, b TEXT)"); err != nil {
		t.Fatal(err)
	}
	tbl, _ := db.Catalog().Get("t")
	cases := []string{
		"a,zz\n1,x\n",       // unknown column
		"a,a\n1,2\n",        // duplicate column
		"a\n1\n",            // missing column
		"a,b\nnotanint,x\n", // bad int
	}
	for _, csv := range cases {
		if _, err := copyFromReader(tbl, strings.NewReader(csv)); err == nil {
			t.Errorf("copy accepted bad input %q", csv)
		}
	}
	if _, err := db.Exec("COPY t FROM '/nonexistent/file.csv'"); err == nil {
		t.Error("COPY from missing file succeeded")
	}
	if _, err := db.Exec("COPY nosuch FROM 'x.csv'"); err == nil {
		t.Error("COPY into missing table succeeded")
	}
	if _, err := Parse("COPY t FROM notquoted"); err == nil {
		t.Error("COPY without quoted path parsed")
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	db := testDB(t)
	db.SetSGBAlgorithm(core.BoundsChecking)
	var buf bytes.Buffer
	if err := db.Save(&buf); err != nil {
		t.Fatal(err)
	}
	restored, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if restored.SGBAlgorithm() != core.BoundsChecking {
		t.Error("SGB algorithm not restored")
	}
	// The restored database answers queries identically.
	want := queryStrings(t, db, "SELECT name, salary FROM emp ORDER BY id")
	got := queryStrings(t, restored, "SELECT name, salary FROM emp ORDER BY id")
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("restored rows differ:\n%v\nvs\n%v", got, want)
	}
	// Joins still resolve (schema qualifiers survived).
	got = queryStrings(t, restored, "SELECT e.name FROM emp e, dept d WHERE e.dept = d.id AND d.dname = 'hr'")
	if len(got) != 1 || got[0][0] != "eve" {
		t.Fatalf("restored join wrong: %v", got)
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	if _, err := Load(strings.NewReader("not a gob stream")); err == nil {
		t.Error("Load accepted garbage")
	}
}
