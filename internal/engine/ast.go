package engine

import (
	"sgb/internal/core"
	"sgb/internal/geom"
)

// Expr is a SQL expression node.
type Expr interface{ expr() }

// ColumnRef references a (possibly qualified) column.
type ColumnRef struct {
	Table string // optional qualifier
	Name  string
}

// Literal wraps a constant value.
type Literal struct {
	V Value
}

// BinaryExpr applies a binary operator.
type BinaryExpr struct {
	Op   string // "+", "-", "*", "/", "=", "<>", "<", "<=", ">", ">=", "AND", "OR"
	L, R Expr
}

// UnaryExpr applies a prefix operator ("-" or "NOT").
type UnaryExpr struct {
	Op string
	X  Expr
}

// FuncCall invokes a scalar or aggregate function.
type FuncCall struct {
	Name     string // lower-cased
	Args     []Expr
	Star     bool // count(*)
	Distinct bool // aggregate DISTINCT, e.g. count(DISTINCT x)
}

// InSubquery is `expr IN (SELECT ...)` over an uncorrelated subquery.
type InSubquery struct {
	X     Expr
	Query *SelectStmt
	Not   bool
}

// InList is `expr IN (v1, v2, ...)`.
type InList struct {
	X     Expr
	Items []Expr
	Not   bool
}

func (*ColumnRef) expr()      {}
func (*Literal) expr()        {}
func (*BinaryExpr) expr()     {}
func (*UnaryExpr) expr()      {}
func (*FuncCall) expr()       {}
func (*InSubquery) expr()     {}
func (*InList) expr()         {}
func (*CaseExpr) expr()       {}
func (*ScalarSubquery) expr() {}

// ScalarSubquery is an uncorrelated subquery used as a value: it must
// produce one column and at most one row (zero rows yield NULL).
type ScalarSubquery struct {
	Query *SelectStmt
}

// WhenClause is one WHEN ... THEN ... arm of a CASE expression.
type WhenClause struct {
	Cond   Expr // comparison value (simple CASE) or boolean condition
	Result Expr
}

// CaseExpr is a simple (CASE x WHEN v THEN r ...) or searched
// (CASE WHEN cond THEN r ...) conditional expression.
type CaseExpr struct {
	Operand Expr // nil for the searched form
	Whens   []WhenClause
	Else    Expr // nil means ELSE NULL
}

// SelectItem is one SELECT-list entry.
type SelectItem struct {
	Expr  Expr
	Alias string
	Star  bool // SELECT *
}

// FromItem is one FROM-list source: a base table or a derived table.
type FromItem struct {
	Table    string
	Subquery *SelectStmt
	Alias    string
}

// SGBMode distinguishes the two similarity grouping semantics.
type SGBMode uint8

const (
	// SGBAllMode is DISTANCE-TO-ALL.
	SGBAllMode SGBMode = iota
	// SGBAnyMode is DISTANCE-TO-ANY.
	SGBAnyMode
)

// SimilaritySpec carries the similarity clauses attached to GROUP BY.
type SimilaritySpec struct {
	Mode    SGBMode
	Metric  geom.Metric
	Eps     float64
	Overlap core.Overlap // DISTANCE-TO-ALL only
}

// GroupByClause is the (possibly similarity-extended) GROUP BY.
type GroupByClause struct {
	Exprs      []Expr
	Similarity *SimilaritySpec // nil for the standard equality Group-By
}

// OrderItem is one ORDER BY entry.
type OrderItem struct {
	Expr Expr
	Desc bool
}

// SelectStmt is a parsed SELECT.
type SelectStmt struct {
	Distinct bool
	Select   []SelectItem
	From     []FromItem
	Where    Expr
	GroupBy  *GroupByClause
	Having   Expr
	OrderBy  []OrderItem
	Limit    int // -1 when absent
	Offset   int // 0 when absent
}

// Statement is any parsed SQL statement.
type Statement interface{ stmt() }

func (*SelectStmt) stmt() {}

// CreateTableStmt is a parsed CREATE TABLE.
type CreateTableStmt struct {
	Name    string
	Columns Schema
}

func (*CreateTableStmt) stmt() {}

// InsertStmt is a parsed INSERT INTO ... VALUES or INSERT INTO ... SELECT.
type InsertStmt struct {
	Table string
	Rows  [][]Expr    // VALUES form
	Query *SelectStmt // SELECT form (exclusive with Rows)
}

func (*InsertStmt) stmt() {}

// DropTableStmt is a parsed DROP TABLE.
type DropTableStmt struct {
	Name string
}

func (*DropTableStmt) stmt() {}

// SetClause is one assignment of an UPDATE.
type SetClause struct {
	Column string
	Value  Expr
}

// UpdateStmt is a parsed UPDATE ... SET ... [WHERE ...].
type UpdateStmt struct {
	Table string
	Set   []SetClause
	Where Expr
}

func (*UpdateStmt) stmt() {}

// DeleteStmt is a parsed DELETE FROM ... [WHERE ...].
type DeleteStmt struct {
	Table string
	Where Expr
}

func (*DeleteStmt) stmt() {}

// CreateViewStmt is a parsed CREATE VIEW name AS SELECT ...
type CreateViewStmt struct {
	Name  string
	Query *SelectStmt
}

func (*CreateViewStmt) stmt() {}

// DropViewStmt is a parsed DROP VIEW.
type DropViewStmt struct {
	Name string
}

func (*DropViewStmt) stmt() {}

// CreateMaterializedViewStmt is a parsed CREATE MATERIALIZED VIEW name AS
// SELECT ... — a similarity-group view whose group state is maintained
// incrementally from committed writes (see internal/stream). QuerySQL is the
// definition's original SELECT text, captured so the view can be persisted in
// snapshots and re-parsed on load.
type CreateMaterializedViewStmt struct {
	Name     string
	Query    *SelectStmt
	QuerySQL string
}

func (*CreateMaterializedViewStmt) stmt() {}

// DropMaterializedViewStmt is a parsed DROP MATERIALIZED VIEW.
type DropMaterializedViewStmt struct {
	Name string
}

func (*DropMaterializedViewStmt) stmt() {}
