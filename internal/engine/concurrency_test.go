package engine

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"strings"
	"sync"
	"testing"
	"time"

	"sgb/internal/core"
)

// loadPoints bulk-creates a 2-D point table of n rows for long-running SGB
// queries.
func loadPoints(t *testing.T, db *DB, name string, n int, seed int64) {
	t.Helper()
	if _, err := db.Exec(fmt.Sprintf("CREATE TABLE %s (id INT, x FLOAT, y FLOAT)", name)); err != nil {
		t.Fatal(err)
	}
	tab, err := db.Catalog().Get(name)
	if err != nil {
		t.Fatal(err)
	}
	r := rand.New(rand.NewSource(seed))
	rows := make([]Row, n)
	for i := range rows {
		rows[i] = Row{NewInt(int64(i)), NewFloat(r.Float64() * 100), NewFloat(r.Float64() * 100)}
	}
	if err := tab.Insert(rows...); err != nil {
		t.Fatal(err)
	}
}

// slowSGBQuery is a query whose all-pairs SGB run over the big point table
// takes far longer than the test's cancellation window.
const slowSGBQuery = "SELECT count(*) FROM pts GROUP BY x, y DISTANCE-TO-ANY L2 WITHIN 0.001"

// TestExecContextCancellation is the tentpole acceptance check: canceling a
// long SGB query mid-flight returns context.Canceled promptly, bumps the
// canceled-queries counter, and leaves the DB fully usable.
func TestExecContextCancellation(t *testing.T) {
	db := NewDB()
	db.SetSGBAlgorithm(core.AllPairs)
	loadPoints(t, db, "pts", 30000, 7)

	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(50 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	_, err := db.ExecContext(ctx, slowSGBQuery)
	elapsed := time.Since(start)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	// The full all-pairs run takes many seconds; a prompt abort lands well
	// under one second after the cancel.
	if elapsed > time.Second {
		t.Fatalf("cancellation took %v, want well under 1s", elapsed)
	}
	if got := db.Metrics().Counter("engine_queries_canceled_total").Value(); got != 1 {
		t.Fatalf("engine_queries_canceled_total = %d, want 1", got)
	}
	// The DB must stay fully usable after a canceled statement.
	got := queryStrings(t, db, "SELECT count(*) FROM pts")
	if got[0][0] != "30000" {
		t.Fatalf("post-cancel count = %v", got)
	}
}

// TestExecContextPreCanceledDDL: a statement arriving with an already-dead
// context performs no catalog mutation at all.
func TestExecContextPreCanceledDDL(t *testing.T) {
	db := NewDB()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := db.ExecContext(ctx, "CREATE TABLE t (a INT)"); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if _, err := db.Catalog().Get("t"); err == nil {
		t.Fatal("canceled CREATE TABLE mutated the catalog")
	}
}

// TestCallerDeadlineSurfacesAsContextError: a deadline set by the caller (not
// by SetLimits) must surface as context.DeadlineExceeded, not as a typed
// resource-limit error.
func TestCallerDeadlineSurfacesAsContextError(t *testing.T) {
	db := NewDB()
	db.SetSGBAlgorithm(core.AllPairs)
	loadPoints(t, db, "pts", 30000, 11)
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	_, err := db.ExecContext(ctx, slowSGBQuery)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded", err)
	}
	var rle *ResourceLimitError
	if errors.As(err, &rle) {
		t.Fatalf("caller deadline misreported as resource limit: %v", err)
	}
}

func TestMaxExecutionTimeLimit(t *testing.T) {
	db := NewDB()
	db.SetSGBAlgorithm(core.AllPairs)
	loadPoints(t, db, "pts", 30000, 13)
	db.SetLimits(Limits{MaxExecutionTime: 50 * time.Millisecond})
	start := time.Now()
	_, err := db.Exec(slowSGBQuery)
	elapsed := time.Since(start)
	var rle *ResourceLimitError
	if !errors.As(err, &rle) || rle.Resource != "time" {
		t.Fatalf("err = %v, want *ResourceLimitError{time}", err)
	}
	if elapsed > time.Second {
		t.Fatalf("time limit enforcement took %v", elapsed)
	}
	if got := db.Metrics().Counter("engine_queries_limited_total").Value(); got != 1 {
		t.Fatalf("engine_queries_limited_total = %d, want 1", got)
	}
	// Removing the limit restores unbounded execution.
	db.SetLimits(Limits{})
	if _, err := db.Exec("SELECT count(*) FROM pts"); err != nil {
		t.Fatalf("post-limit query failed: %v", err)
	}
}

func TestMaxRowsMaterializedLimit(t *testing.T) {
	db := testDB(t)
	db.SetLimits(Limits{MaxRowsMaterialized: 3})
	_, err := db.Query("SELECT * FROM emp")
	var rle *ResourceLimitError
	if !errors.As(err, &rle) || rle.Resource != "rows" {
		t.Fatalf("err = %v, want *ResourceLimitError{rows}", err)
	}
	if !strings.Contains(err.Error(), "rows") {
		t.Fatalf("unhelpful message: %v", err)
	}
	// Queries under the budget still work.
	if _, err := db.Query("SELECT * FROM emp WHERE dept = 30"); err != nil {
		t.Fatalf("small query rejected: %v", err)
	}
}

// TestRowLimitLeavesDMLAtomic: an INSERT..SELECT that trips the row budget
// midway must not append any rows to the target table.
func TestRowLimitLeavesDMLAtomic(t *testing.T) {
	db := testDB(t)
	if _, err := db.Exec("CREATE TABLE emp2 (id INT, name TEXT, dept INT, salary FLOAT)"); err != nil {
		t.Fatal(err)
	}
	db.SetLimits(Limits{MaxRowsMaterialized: 2})
	if _, err := db.Exec("INSERT INTO emp2 SELECT * FROM emp"); err == nil {
		t.Fatal("expected the row limit to fail the INSERT")
	}
	db.SetLimits(Limits{})
	got := queryStrings(t, db, "SELECT count(*) FROM emp2")
	if got[0][0] != "0" {
		t.Fatalf("failed INSERT left %v staged rows behind", got[0][0])
	}
}

// TestConcurrentExecStress hammers one DB from concurrent readers and
// writers; run under -race it is the PR's data-race acceptance check.
func TestConcurrentExecStress(t *testing.T) {
	db := NewDB()
	if _, err := db.Exec("CREATE TABLE kv (k INT, v FLOAT)"); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Exec("CREATE TABLE pts (id INT, x FLOAT, y FLOAT)"); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		if _, err := db.Exec(fmt.Sprintf("INSERT INTO kv VALUES (%d, %d.5)", i, i)); err != nil {
			t.Fatal(err)
		}
		if _, err := db.Exec(fmt.Sprintf("INSERT INTO pts VALUES (%d, %d.0, %d.0)", i, i%10, i/10)); err != nil {
			t.Fatal(err)
		}
	}

	const iters = 30
	var wg sync.WaitGroup
	errCh := make(chan error, 64)
	report := func(err error) {
		if err != nil {
			select {
			case errCh <- err:
			default:
			}
		}
	}

	readQueries := []string{
		"SELECT count(*), sum(v) FROM kv",
		"SELECT k, v FROM kv WHERE k < 25 ORDER BY k",
		"SELECT count(*) FROM pts GROUP BY x, y DISTANCE-TO-ANY L2 WITHIN 1.5",
		"EXPLAIN ANALYZE SELECT count(*) FROM kv",
		"SELECT a.k FROM kv a, kv b WHERE a.k = b.k AND a.k < 5",
	}
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				_, err := db.Exec(readQueries[(r+i)%len(readQueries)])
				report(err)
			}
		}(r)
	}
	// Writers: DML on kv plus churn on private tables.
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				switch i % 3 {
				case 0:
					_, err := db.Exec(fmt.Sprintf("INSERT INTO kv VALUES (%d, 1.0)", 1000+w*iters+i))
					report(err)
				case 1:
					_, err := db.Exec(fmt.Sprintf("UPDATE kv SET v = v + 1 WHERE k = %d", i))
					report(err)
				case 2:
					_, err := db.Exec(fmt.Sprintf("DELETE FROM kv WHERE k = %d", 1000+w*iters+i-1))
					report(err)
				}
			}
		}(w)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < iters; i++ {
			name := fmt.Sprintf("scratch_%d", i)
			if _, err := db.Exec(fmt.Sprintf("CREATE TABLE %s (a INT)", name)); err != nil {
				report(err)
				continue
			}
			_, err := db.Exec(fmt.Sprintf("DROP TABLE %s", name))
			report(err)
		}
	}()
	// Session-state churn alongside the statements.
	wg.Add(1)
	go func() {
		defer wg.Done()
		algs := []core.Algorithm{core.AllPairs, core.IndexBounds}
		for i := 0; i < iters; i++ {
			db.SetSGBAlgorithm(algs[i%2])
			_ = db.SGBAlgorithm()
			_ = db.LastTrace()
			_ = db.LastSGBStats()
		}
	}()
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Errorf("concurrent statement failed: %v", err)
	}
	if _, err := db.Exec("SELECT count(*) FROM kv"); err != nil {
		t.Fatalf("DB unusable after stress: %v", err)
	}
}

// TestConcurrentReadersShareLock proves genuinely parallel readers: two
// SELECTs sleeping on the same RLock would serialize with a mutex, but must
// overlap with a readers-writer lock. It is a smoke test on timing, kept
// coarse (4x margin) to stay robust on loaded CI machines.
func TestConcurrentReadersShareLock(t *testing.T) {
	db := NewDB()
	db.SetSGBAlgorithm(core.AllPairs)
	loadPoints(t, db, "pts", 4000, 17)
	q := "SELECT count(*) FROM pts GROUP BY x, y DISTANCE-TO-ANY L2 WITHIN 0.001"

	solo := time.Now()
	if _, err := db.Exec(q); err != nil {
		t.Fatal(err)
	}
	soloDur := time.Since(solo)

	const n = 4
	var wg sync.WaitGroup
	start := time.Now()
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := db.Exec(q); err != nil {
				t.Error(err)
			}
		}()
	}
	wg.Wait()
	parallelDur := time.Since(start)
	// Fully serialized execution would take about n*soloDur.
	if parallelDur > time.Duration(n)*soloDur*3/4+100*time.Millisecond {
		t.Logf("parallel %v vs solo %v: readers may be serializing", parallelDur, soloDur)
	}
}
