package engine

import (
	"bytes"
	"fmt"
	"math/rand"
	"reflect"
	"strings"
	"testing"
)

func TestCreateIndexAndLookup(t *testing.T) {
	db := testDB(t)
	if _, err := db.Exec("CREATE INDEX emp_dept ON emp (dept)"); err != nil {
		t.Fatal(err)
	}
	// The plan now uses the index for equality on dept.
	res, err := db.Exec("EXPLAIN SELECT name FROM emp WHERE dept = 10")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(planText(res), "IndexScan on emp using emp_dept") {
		t.Fatalf("plan does not use the index:\n%s", planText(res))
	}
	got := queryStrings(t, db, "SELECT name FROM emp WHERE dept = 10 ORDER BY name")
	want := [][]string{{"ann"}, {"bob"}}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("index scan answered %v", got)
	}
	// Other predicates still work alongside the index.
	got = queryStrings(t, db, "SELECT name FROM emp WHERE dept = 10 AND salary > 1100")
	if len(got) != 1 || got[0][0] != "bob" {
		t.Fatalf("combined predicate via index: %v", got)
	}
}

func TestIndexMatchesSeqScanRandomized(t *testing.T) {
	db := NewDB()
	if _, err := db.Exec("CREATE TABLE nums (k INT, v FLOAT)"); err != nil {
		t.Fatal(err)
	}
	r := rand.New(rand.NewSource(9))
	tbl, _ := db.Catalog().Get("nums")
	for i := 0; i < 2000; i++ {
		if err := tbl.Insert(Row{NewInt(int64(r.Intn(50))), NewFloat(r.Float64())}); err != nil {
			t.Fatal(err)
		}
	}
	// Answers before and after indexing must be identical.
	q := func(k int) string {
		return fmt.Sprintf("SELECT count(*), sum(v) FROM nums WHERE k = %d", k)
	}
	var before [][][]string
	for k := 0; k < 55; k++ {
		before = append(before, queryStrings(t, db, q(k)))
	}
	if _, err := db.Exec("CREATE INDEX nums_k ON nums (k)"); err != nil {
		t.Fatal(err)
	}
	for k := 0; k < 55; k++ {
		after := queryStrings(t, db, q(k))
		if !reflect.DeepEqual(after, before[k]) {
			t.Fatalf("k=%d: index answer %v, seq answer %v", k, after, before[k])
		}
	}
}

func TestIndexMaintainedOnInsert(t *testing.T) {
	db := testDB(t)
	if _, err := db.Exec("CREATE INDEX emp_dept ON emp (dept)"); err != nil {
		t.Fatal(err)
	}
	// Force the bucket build, then insert and re-query.
	_ = queryStrings(t, db, "SELECT count(*) FROM emp WHERE dept = 10")
	if _, err := db.Exec("INSERT INTO emp VALUES (9, 'zed', 10, 1.0)"); err != nil {
		t.Fatal(err)
	}
	got := queryStrings(t, db, "SELECT count(*) FROM emp WHERE dept = 10")
	if got[0][0] != "3" {
		t.Fatalf("index stale after insert: %v", got)
	}
}

func TestIndexInvalidatedByDML(t *testing.T) {
	db := testDB(t)
	if _, err := db.Exec("CREATE INDEX emp_dept ON emp (dept)"); err != nil {
		t.Fatal(err)
	}
	_ = queryStrings(t, db, "SELECT count(*) FROM emp WHERE dept = 20") // build buckets
	if _, err := db.Exec("DELETE FROM emp WHERE name = 'cat'"); err != nil {
		t.Fatal(err)
	}
	got := queryStrings(t, db, "SELECT count(*) FROM emp WHERE dept = 20")
	if got[0][0] != "1" {
		t.Fatalf("index stale after delete: %v", got)
	}
	if _, err := db.Exec("UPDATE emp SET dept = 20 WHERE name = 'ann'"); err != nil {
		t.Fatal(err)
	}
	got = queryStrings(t, db, "SELECT count(*) FROM emp WHERE dept = 20")
	if got[0][0] != "2" {
		t.Fatalf("index stale after update: %v", got)
	}
}

func TestIndexCrossTypeEquality(t *testing.T) {
	db := NewDB()
	if _, err := db.Exec("CREATE TABLE f (v FLOAT)"); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Exec("INSERT INTO f VALUES (1.0), (2.0), (2.0)"); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Exec("CREATE INDEX f_v ON f (v)"); err != nil {
		t.Fatal(err)
	}
	// Integer literal against a float column must hit via the index.
	got := queryStrings(t, db, "SELECT count(*) FROM f WHERE v = 2")
	if got[0][0] != "2" {
		t.Fatalf("cross-type index lookup: %v", got)
	}
}

func TestIndexErrorsAndDrop(t *testing.T) {
	db := testDB(t)
	if _, err := db.Exec("CREATE INDEX i1 ON emp (nosuch)"); err == nil {
		t.Error("indexed unknown column")
	}
	if _, err := db.Exec("CREATE INDEX i1 ON nosuch (a)"); err == nil {
		t.Error("indexed unknown table")
	}
	if _, err := db.Exec("CREATE INDEX i1 ON emp (dept)"); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Exec("CREATE INDEX i1 ON emp (salary)"); err == nil {
		t.Error("duplicate index name accepted")
	}
	if _, err := db.Exec("DROP INDEX i1 ON emp"); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Exec("DROP INDEX i1 ON emp"); err == nil {
		t.Error("dropped missing index")
	}
	// After dropping, the plan reverts to a sequential scan.
	res, err := db.Exec("EXPLAIN SELECT name FROM emp WHERE dept = 10")
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(planText(res), "IndexScan") {
		t.Fatal("plan still uses a dropped index")
	}
}

func TestIndexSurvivesSnapshot(t *testing.T) {
	db := testDB(t)
	if _, err := db.Exec("CREATE INDEX emp_dept ON emp (dept)"); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := db.Save(&buf); err != nil {
		t.Fatal(err)
	}
	restored, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	res, err := restored.Exec("EXPLAIN SELECT name FROM emp WHERE dept = 10")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(planText(res), "IndexScan") {
		t.Fatalf("index metadata lost across snapshot:\n%s", planText(res))
	}
	got := queryStrings(t, restored, "SELECT count(*) FROM emp WHERE dept = 10")
	if got[0][0] != "2" {
		t.Fatalf("restored index answers wrong: %v", got)
	}
}

func TestIndexNullsNeverMatch(t *testing.T) {
	db := NewDB()
	if _, err := db.Exec("CREATE TABLE n (v INT)"); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Exec("INSERT INTO n VALUES (NULL), (1), (NULL)"); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Exec("CREATE INDEX n_v ON n (v)"); err != nil {
		t.Fatal(err)
	}
	got := queryStrings(t, db, "SELECT count(*) FROM n WHERE v = 1")
	if got[0][0] != "1" {
		t.Fatalf("got %v", got)
	}
	got = queryStrings(t, db, "SELECT count(*) FROM n WHERE v = NULL")
	if got[0][0] != "0" {
		t.Fatalf("NULL equality matched rows: %v", got)
	}
}
