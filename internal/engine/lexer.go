package engine

import (
	"fmt"
	"strings"
	"unicode"
)

type tokenKind uint8

const (
	tokEOF tokenKind = iota
	tokIdent
	tokNumber
	tokString
	tokPunct // single/multi-char operators and punctuation
)

type token struct {
	kind tokenKind
	text string // identifiers keep original case; upper() helper for keywords
	pos  int
}

func (t token) upper() string { return strings.ToUpper(t.text) }

// lexer tokenizes the SQL dialect: identifiers, numeric and string literals,
// and punctuation/operators. Hyphenated keywords such as DISTANCE-TO-ALL are
// handled by the parser as IDENT '-' IDENT sequences so that '-' keeps
// working as the minus operator.
type lexer struct {
	src    string
	pos    int
	tokens []token
}

func lex(src string) ([]token, error) {
	l := &lexer{src: src}
	for {
		l.skipSpaceAndComments()
		if l.pos >= len(l.src) {
			l.emit(token{kind: tokEOF, pos: l.pos})
			return l.tokens, nil
		}
		c := l.src[l.pos]
		switch {
		case isIdentStart(rune(c)):
			l.lexIdent()
		case c >= '0' && c <= '9', c == '.' && l.pos+1 < len(l.src) && isDigit(l.src[l.pos+1]):
			if err := l.lexNumber(); err != nil {
				return nil, err
			}
		case c == '\'':
			if err := l.lexString(); err != nil {
				return nil, err
			}
		default:
			if err := l.lexPunct(); err != nil {
				return nil, err
			}
		}
	}
}

func (l *lexer) emit(t token) { l.tokens = append(l.tokens, t) }

func (l *lexer) skipSpaceAndComments() {
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			l.pos++
		case c == '-' && l.pos+1 < len(l.src) && l.src[l.pos+1] == '-':
			for l.pos < len(l.src) && l.src[l.pos] != '\n' {
				l.pos++
			}
		default:
			return
		}
	}
}

func isIdentStart(r rune) bool {
	return unicode.IsLetter(r) || r == '_'
}

func isIdentPart(r rune) bool {
	return unicode.IsLetter(r) || unicode.IsDigit(r) || r == '_'
}

func isDigit(c byte) bool { return c >= '0' && c <= '9' }

func (l *lexer) lexIdent() {
	start := l.pos
	for l.pos < len(l.src) && isIdentPart(rune(l.src[l.pos])) {
		l.pos++
	}
	l.emit(token{kind: tokIdent, text: l.src[start:l.pos], pos: start})
}

func (l *lexer) lexNumber() error {
	start := l.pos
	seenDot, seenExp := false, false
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		switch {
		case isDigit(c):
			l.pos++
		case c == '.' && !seenDot && !seenExp:
			seenDot = true
			l.pos++
		case (c == 'e' || c == 'E') && !seenExp && l.pos > start:
			seenExp = true
			l.pos++
			if l.pos < len(l.src) && (l.src[l.pos] == '+' || l.src[l.pos] == '-') {
				l.pos++
			}
		default:
			goto done
		}
	}
done:
	text := l.src[start:l.pos]
	if text == "." {
		return fmt.Errorf("engine: bad number at offset %d", start)
	}
	l.emit(token{kind: tokNumber, text: text, pos: start})
	return nil
}

func (l *lexer) lexString() error {
	start := l.pos
	l.pos++ // opening quote
	var sb strings.Builder
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		if c == '\'' {
			if l.pos+1 < len(l.src) && l.src[l.pos+1] == '\'' {
				sb.WriteByte('\'') // escaped quote
				l.pos += 2
				continue
			}
			l.pos++
			l.emit(token{kind: tokString, text: sb.String(), pos: start})
			return nil
		}
		sb.WriteByte(c)
		l.pos++
	}
	return fmt.Errorf("engine: unterminated string literal at offset %d", start)
}

func (l *lexer) lexPunct() error {
	start := l.pos
	two := ""
	if l.pos+1 < len(l.src) {
		two = l.src[l.pos : l.pos+2]
	}
	switch two {
	case "<=", ">=", "<>", "!=", "||":
		l.pos += 2
		text := two
		if text == "!=" {
			text = "<>"
		}
		l.emit(token{kind: tokPunct, text: text, pos: start})
		return nil
	}
	c := l.src[l.pos]
	switch c {
	case '(', ')', ',', '.', ';', '*', '/', '+', '-', '=', '<', '>':
		l.pos++
		l.emit(token{kind: tokPunct, text: string(c), pos: start})
		return nil
	}
	return fmt.Errorf("engine: unexpected character %q at offset %d", c, l.pos)
}
