package engine

import (
	"fmt"
	"strings"
)

// MatViewShape is the streamable core of a materialized view definition: a
// single-table similarity GROUP BY whose group state can be maintained
// incrementally by feeding committed rows, in row order, to a long-lived
// grouper (see internal/stream). Definitions that fall outside this shape are
// rejected at CREATE MATERIALIZED VIEW time rather than silently degrading to
// full recomputation.
type MatViewShape struct {
	// Table is the base table name as written in FROM (original casing).
	Table string
	// Columns holds the bare names of the grouping columns in GROUP BY order.
	Columns []string
	// ColIdx holds the schema indexes of Columns in the base table.
	ColIdx []int
	// Spec is the similarity clause (mode, metric, eps, overlap).
	Spec SimilaritySpec
}

// matViewShape validates that q is maintainable and extracts its shape. The
// restrictions exist because incremental maintenance replays the base table's
// committed row stream directly into a grouper: a WHERE filter, HAVING, or a
// second table would make group membership depend on state the stream layer
// does not track.
func (db *DB) matViewShape(q *SelectStmt) (*MatViewShape, error) {
	if len(q.From) != 1 || q.From[0].Subquery != nil {
		return nil, fmt.Errorf("engine: materialized view must select FROM exactly one base table")
	}
	from := q.From[0]
	if _, ok := db.cat.View(from.Table); ok {
		return nil, fmt.Errorf("engine: materialized view cannot be defined over view %q", from.Table)
	}
	if _, ok := db.cat.MatView(from.Table); ok {
		return nil, fmt.Errorf("engine: materialized view cannot be defined over materialized view %q", from.Table)
	}
	t, err := db.cat.Get(from.Table)
	if err != nil {
		return nil, err
	}
	switch {
	case q.Where != nil:
		return nil, fmt.Errorf("engine: materialized view does not support WHERE")
	case q.Having != nil:
		return nil, fmt.Errorf("engine: materialized view does not support HAVING")
	case len(q.OrderBy) != 0:
		return nil, fmt.Errorf("engine: materialized view does not support ORDER BY")
	case q.Limit != -1 || q.Offset != 0:
		return nil, fmt.Errorf("engine: materialized view does not support LIMIT/OFFSET")
	case q.Distinct:
		return nil, fmt.Errorf("engine: materialized view does not support DISTINCT")
	}
	if q.GroupBy == nil || q.GroupBy.Similarity == nil {
		return nil, fmt.Errorf("engine: materialized view requires a similarity GROUP BY (WITHIN eps)")
	}
	sch := t.Schema
	if from.Alias != "" {
		sch = sch.Qualify(from.Alias)
	}
	shape := &MatViewShape{Table: from.Table, Spec: *q.GroupBy.Similarity}
	for _, e := range q.GroupBy.Exprs {
		ref, ok := e.(*ColumnRef)
		if !ok {
			return nil, fmt.Errorf("engine: materialized view GROUP BY entries must be plain columns")
		}
		idx, err := sch.Resolve(ref.Table, ref.Name)
		if err != nil {
			return nil, err
		}
		if ty := sch[idx].T; ty != TypeFloat && ty != TypeInt {
			return nil, fmt.Errorf("engine: materialized view grouping column %s must be numeric, not %s",
				sch[idx].Name, ty)
		}
		shape.Columns = append(shape.Columns, sch[idx].Name)
		shape.ColIdx = append(shape.ColIdx, idx)
	}
	return shape, nil
}

// MatViewsOn returns the names of every materialized view defined over the
// given base table, sorted.
func (db *DB) MatViewsOn(table string) []string {
	var out []string
	for _, mv := range db.cat.MatViews() {
		if strings.EqualFold(mv.Shape.Table, table) {
			out = append(out, mv.Name)
		}
	}
	return out
}

// ScanFloats streams the grouping coordinates of the named table's rows
// [from, len) to fn, converting each projected value to float64; it returns
// the table's current row count. A NULL or non-numeric value is an error (a
// materialized view cannot place such a row in a distance-based group).
//
// Callers must already hold the statement lock — the intended call sites are
// commit hooks and commit observers, which the engine invokes under it — or
// otherwise have exclusive access to the DB.
func (db *DB) ScanFloats(table string, colIdx []int, from int, fn func(row int, coords []float64) error) (int, error) {
	t, err := db.cat.Get(table)
	if err != nil {
		return 0, err
	}
	coords := make([]float64, len(colIdx))
	for row := from; row < len(t.Rows); row++ {
		r := t.Rows[row]
		for i, ci := range colIdx {
			if ci >= len(r) {
				return 0, fmt.Errorf("engine: row %d of %s has no column %d", row, table, ci)
			}
			f, err := r[ci].AsFloat()
			if err != nil {
				return 0, fmt.Errorf("engine: %s row %d: %w", table, row, err)
			}
			coords[i] = f
		}
		if err := fn(row, coords); err != nil {
			return 0, err
		}
	}
	return len(t.Rows), nil
}

// TableLen returns the named table's current row count. Like ScanFloats it is
// meant for commit observers already holding the statement lock.
func (db *DB) TableLen(table string) (int, error) {
	t, err := db.cat.Get(table)
	if err != nil {
		return 0, err
	}
	return len(t.Rows), nil
}
