package engine

import (
	"fmt"
	"strconv"
	"strings"

	"sgb/internal/core"
	"sgb/internal/geom"
)

// reserved words that terminate expressions and cannot be implicit aliases.
var reserved = map[string]bool{
	"SELECT": true, "FROM": true, "WHERE": true, "GROUP": true, "BY": true,
	"HAVING": true, "ORDER": true, "LIMIT": true, "AS": true, "AND": true,
	"OR": true, "NOT": true, "IN": true, "ON": true, "USING": true,
	"WITHIN": true, "DISTANCE": true, "ASC": true, "DESC": true,
	"JOIN": true, "INNER": true, "VALUES": true, "CREATE": true,
	"INSERT": true, "INTO": true, "TABLE": true, "DROP": true, "NULL": true,
	"TRUE": true, "FALSE": true, "EXPLAIN": true, "COPY": true,
	"DISTINCT": true, "BETWEEN": true, "LIKE": true,
	"UPDATE": true, "DELETE": true, "SET": true, "INDEX": true,
	"CASE": true, "WHEN": true, "THEN": true, "ELSE": true, "END": true,
	"VIEW": true, "OFFSET": true,
}

// parser is a recursive-descent parser for the engine's SQL dialect,
// including the paper's similarity grouping grammar:
//
//	GROUP BY e1, e2 DISTANCE-TO-ALL [L1|L2|LINF] WITHIN eps
//	         [USING lone|ltwo] [ON[-]OVERLAP JOIN-ANY|ELIMINATE|FORM-NEW-GROUP]
//	GROUP BY e1, e2 DISTANCE-TO-ANY [L1|L2|LINF] WITHIN eps [USING lone|ltwo]
//
// The DISTANCE-ALL / DISTANCE-ANY shorthand from the paper's Table 2 is also
// accepted.
type parser struct {
	toks []token
	pos  int
	src  string // original statement text, for raw-SQL capture (matviews)
}

// Parse parses a single SQL statement (an optional trailing ';' is allowed).
func Parse(src string) (Statement, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks, src: src}
	stmt, err := p.parseStatement()
	if err != nil {
		return nil, err
	}
	p.acceptPunct(";")
	if !p.atEOF() {
		return nil, fmt.Errorf("engine: unexpected %q after statement", p.peek().text)
	}
	return stmt, nil
}

func (p *parser) peek() token   { return p.toks[p.pos] }
func (p *parser) atEOF() bool   { return p.peek().kind == tokEOF }
func (p *parser) next() token   { t := p.toks[p.pos]; p.pos++; return t }
func (p *parser) save() int     { return p.pos }
func (p *parser) restore(s int) { p.pos = s }

func (p *parser) peekKeyword(kw string) bool {
	t := p.peek()
	return t.kind == tokIdent && t.upper() == kw
}

func (p *parser) acceptKeyword(kw string) bool {
	if p.peekKeyword(kw) {
		p.pos++
		return true
	}
	return false
}

func (p *parser) expectKeyword(kw string) error {
	if !p.acceptKeyword(kw) {
		return fmt.Errorf("engine: expected %s, found %q", kw, p.peek().text)
	}
	return nil
}

func (p *parser) peekPunct(s string) bool {
	t := p.peek()
	return t.kind == tokPunct && t.text == s
}

func (p *parser) acceptPunct(s string) bool {
	if p.peekPunct(s) {
		p.pos++
		return true
	}
	return false
}

func (p *parser) expectPunct(s string) error {
	if !p.acceptPunct(s) {
		return fmt.Errorf("engine: expected %q, found %q", s, p.peek().text)
	}
	return nil
}

func (p *parser) expectIdent() (string, error) {
	t := p.peek()
	if t.kind != tokIdent {
		return "", fmt.Errorf("engine: expected identifier, found %q", t.text)
	}
	p.pos++
	return t.text, nil
}

func (p *parser) parseStatement() (Statement, error) {
	switch {
	case p.peekKeyword("SELECT"):
		return p.parseSelect()
	case p.peekKeyword("CREATE"):
		return p.parseCreateTable()
	case p.peekKeyword("INSERT"):
		return p.parseInsert()
	case p.peekKeyword("DROP"):
		return p.parseDropTable()
	case p.peekKeyword("EXPLAIN"):
		p.next()
		// ANALYZE is contextual, not reserved: it only acts as a keyword
		// directly after EXPLAIN, so columns named "analyze" keep working.
		analyze := p.acceptKeyword("ANALYZE")
		sel, err := p.parseSelect()
		if err != nil {
			return nil, err
		}
		return &ExplainStmt{Query: sel, Analyze: analyze}, nil
	case p.peekKeyword("ANALYZE"):
		// ANALYZE stays a contextual keyword: it is only recognized at
		// statement start, so columns named "analyze" keep working.
		p.next()
		stmt := &AnalyzeStmt{}
		if p.peek().kind == tokIdent {
			stmt.Table = p.next().text
		}
		return stmt, nil
	case p.peekKeyword("COPY"):
		return p.parseCopy()
	case p.peekKeyword("UPDATE"):
		return p.parseUpdate()
	case p.peekKeyword("DELETE"):
		return p.parseDelete()
	default:
		return nil, fmt.Errorf("engine: expected statement, found %q", p.peek().text)
	}
}

func (p *parser) parseCopy() (Statement, error) {
	p.next() // COPY
	name, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	if err := p.expectKeyword("FROM"); err != nil {
		return nil, err
	}
	t := p.peek()
	if t.kind != tokString {
		return nil, fmt.Errorf("engine: COPY expects a quoted file path, found %q", t.text)
	}
	p.pos++
	return &CopyStmt{Table: name, Path: t.text}, nil
}

func (p *parser) parseUpdate() (Statement, error) {
	p.next() // UPDATE
	name, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	if err := p.expectKeyword("SET"); err != nil {
		return nil, err
	}
	stmt := &UpdateStmt{Table: name}
	for {
		col, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		if err := p.expectPunct("="); err != nil {
			return nil, err
		}
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		stmt.Set = append(stmt.Set, SetClause{Column: col, Value: e})
		if p.acceptPunct(",") {
			continue
		}
		break
	}
	if p.acceptKeyword("WHERE") {
		w, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		stmt.Where = w
	}
	return stmt, nil
}

func (p *parser) parseDelete() (Statement, error) {
	p.next() // DELETE
	if err := p.expectKeyword("FROM"); err != nil {
		return nil, err
	}
	name, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	stmt := &DeleteStmt{Table: name}
	if p.acceptKeyword("WHERE") {
		w, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		stmt.Where = w
	}
	return stmt, nil
}

func (p *parser) parseCreateTable() (Statement, error) {
	p.next() // CREATE
	if p.acceptKeyword("MATERIALIZED") {
		if err := p.expectKeyword("VIEW"); err != nil {
			return nil, err
		}
		name, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		if err := p.expectKeyword("AS"); err != nil {
			return nil, err
		}
		// Capture the definition's raw SELECT text by token offsets so the
		// view can be persisted and re-parsed verbatim.
		start := p.peek().pos
		sel, err := p.parseSelect()
		if err != nil {
			return nil, err
		}
		end := p.peek().pos
		sql := strings.TrimSpace(p.src[start:end])
		return &CreateMaterializedViewStmt{Name: name, Query: sel, QuerySQL: sql}, nil
	}
	if p.acceptKeyword("VIEW") {
		name, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		if err := p.expectKeyword("AS"); err != nil {
			return nil, err
		}
		sel, err := p.parseSelect()
		if err != nil {
			return nil, err
		}
		return &CreateViewStmt{Name: name, Query: sel}, nil
	}
	if p.acceptKeyword("INDEX") {
		name, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		if err := p.expectKeyword("ON"); err != nil {
			return nil, err
		}
		table, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		if err := p.expectPunct("("); err != nil {
			return nil, err
		}
		col, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		if err := p.expectPunct(")"); err != nil {
			return nil, err
		}
		return &CreateIndexStmt{Name: name, Table: table, Column: col}, nil
	}
	if err := p.expectKeyword("TABLE"); err != nil {
		return nil, err
	}
	name, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	if err := p.expectPunct("("); err != nil {
		return nil, err
	}
	var schema Schema
	for {
		col, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		typName, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		typ, err := ParseType(typName)
		if err != nil {
			return nil, err
		}
		schema = append(schema, Column{Name: col, T: typ})
		if p.acceptPunct(",") {
			continue
		}
		break
	}
	if err := p.expectPunct(")"); err != nil {
		return nil, err
	}
	return &CreateTableStmt{Name: name, Columns: schema}, nil
}

func (p *parser) parseInsert() (Statement, error) {
	p.next() // INSERT
	if err := p.expectKeyword("INTO"); err != nil {
		return nil, err
	}
	name, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	if p.peekKeyword("SELECT") {
		sel, err := p.parseSelect()
		if err != nil {
			return nil, err
		}
		return &InsertStmt{Table: name, Query: sel}, nil
	}
	if err := p.expectKeyword("VALUES"); err != nil {
		return nil, err
	}
	stmt := &InsertStmt{Table: name}
	for {
		if err := p.expectPunct("("); err != nil {
			return nil, err
		}
		var row []Expr
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			row = append(row, e)
			if p.acceptPunct(",") {
				continue
			}
			break
		}
		if err := p.expectPunct(")"); err != nil {
			return nil, err
		}
		stmt.Rows = append(stmt.Rows, row)
		if p.acceptPunct(",") {
			continue
		}
		break
	}
	return stmt, nil
}

func (p *parser) parseDropTable() (Statement, error) {
	p.next() // DROP
	if p.acceptKeyword("MATERIALIZED") {
		if err := p.expectKeyword("VIEW"); err != nil {
			return nil, err
		}
		name, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		return &DropMaterializedViewStmt{Name: name}, nil
	}
	if p.acceptKeyword("VIEW") {
		name, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		return &DropViewStmt{Name: name}, nil
	}
	if p.acceptKeyword("INDEX") {
		name, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		if err := p.expectKeyword("ON"); err != nil {
			return nil, err
		}
		table, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		return &DropIndexStmt{Name: name, Table: table}, nil
	}
	if err := p.expectKeyword("TABLE"); err != nil {
		return nil, err
	}
	name, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	return &DropTableStmt{Name: name}, nil
}

func (p *parser) parseSelect() (*SelectStmt, error) {
	if err := p.expectKeyword("SELECT"); err != nil {
		return nil, err
	}
	stmt := &SelectStmt{Limit: -1}
	stmt.Distinct = p.acceptKeyword("DISTINCT")
	for {
		item, err := p.parseSelectItem()
		if err != nil {
			return nil, err
		}
		stmt.Select = append(stmt.Select, item)
		if p.acceptPunct(",") {
			continue
		}
		break
	}
	if p.acceptKeyword("FROM") {
		var joinConds []Expr
		for {
			item, err := p.parseFromItem()
			if err != nil {
				return nil, err
			}
			stmt.From = append(stmt.From, item)
			// Explicit JOIN ... ON sugar folds into the WHERE conjunction.
			for {
				if p.acceptKeyword("INNER") {
					if err := p.expectKeyword("JOIN"); err != nil {
						return nil, err
					}
				} else if !p.acceptKeyword("JOIN") {
					break
				}
				ji, err := p.parseFromItem()
				if err != nil {
					return nil, err
				}
				stmt.From = append(stmt.From, ji)
				if err := p.expectKeyword("ON"); err != nil {
					return nil, err
				}
				cond, err := p.parseExpr()
				if err != nil {
					return nil, err
				}
				joinConds = append(joinConds, cond)
			}
			if p.acceptPunct(",") {
				continue
			}
			break
		}
		if len(joinConds) > 0 {
			stmt.Where = conjoin(joinConds)
		}
	}
	if p.acceptKeyword("WHERE") {
		w, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if stmt.Where != nil {
			stmt.Where = &BinaryExpr{Op: "AND", L: stmt.Where, R: w}
		} else {
			stmt.Where = w
		}
	}
	if p.acceptKeyword("GROUP") {
		if err := p.expectKeyword("BY"); err != nil {
			return nil, err
		}
		gb, err := p.parseGroupBy()
		if err != nil {
			return nil, err
		}
		stmt.GroupBy = gb
	}
	if p.acceptKeyword("HAVING") {
		h, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		stmt.Having = h
	}
	if p.acceptKeyword("ORDER") {
		if err := p.expectKeyword("BY"); err != nil {
			return nil, err
		}
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			item := OrderItem{Expr: e}
			if p.acceptKeyword("DESC") {
				item.Desc = true
			} else {
				p.acceptKeyword("ASC")
			}
			stmt.OrderBy = append(stmt.OrderBy, item)
			if p.acceptPunct(",") {
				continue
			}
			break
		}
	}
	if p.acceptKeyword("LIMIT") {
		t := p.peek()
		if t.kind != tokNumber {
			return nil, fmt.Errorf("engine: LIMIT expects a number, found %q", t.text)
		}
		p.pos++
		n, err := strconv.Atoi(t.text)
		if err != nil || n < 0 {
			return nil, fmt.Errorf("engine: bad LIMIT %q", t.text)
		}
		stmt.Limit = n
	}
	if p.acceptKeyword("OFFSET") {
		t := p.peek()
		if t.kind != tokNumber {
			return nil, fmt.Errorf("engine: OFFSET expects a number, found %q", t.text)
		}
		p.pos++
		n, err := strconv.Atoi(t.text)
		if err != nil || n < 0 {
			return nil, fmt.Errorf("engine: bad OFFSET %q", t.text)
		}
		stmt.Offset = n
	}
	return stmt, nil
}

func conjoin(conds []Expr) Expr {
	out := conds[0]
	for _, c := range conds[1:] {
		out = &BinaryExpr{Op: "AND", L: out, R: c}
	}
	return out
}

func (p *parser) parseSelectItem() (SelectItem, error) {
	if p.acceptPunct("*") {
		return SelectItem{Star: true}, nil
	}
	e, err := p.parseExpr()
	if err != nil {
		return SelectItem{}, err
	}
	item := SelectItem{Expr: e}
	if p.acceptKeyword("AS") {
		alias, err := p.expectIdent()
		if err != nil {
			return SelectItem{}, err
		}
		item.Alias = alias
	} else if t := p.peek(); t.kind == tokIdent && !reserved[t.upper()] {
		p.pos++
		item.Alias = t.text
	}
	return item, nil
}

func (p *parser) parseFromItem() (FromItem, error) {
	if p.acceptPunct("(") {
		sub, err := p.parseSelect()
		if err != nil {
			return FromItem{}, err
		}
		if err := p.expectPunct(")"); err != nil {
			return FromItem{}, err
		}
		item := FromItem{Subquery: sub}
		p.acceptKeyword("AS")
		alias, err := p.expectIdent()
		if err != nil {
			return FromItem{}, fmt.Errorf("engine: derived table requires an alias: %w", err)
		}
		item.Alias = alias
		return item, nil
	}
	name, err := p.expectIdent()
	if err != nil {
		return FromItem{}, err
	}
	item := FromItem{Table: name, Alias: name}
	if p.acceptKeyword("AS") {
		alias, err := p.expectIdent()
		if err != nil {
			return FromItem{}, err
		}
		item.Alias = alias
	} else if t := p.peek(); t.kind == tokIdent && !reserved[t.upper()] {
		p.pos++
		item.Alias = t.text
	}
	return item, nil
}

// parseGroupBy parses the grouping expressions plus the optional similarity
// clauses.
func (p *parser) parseGroupBy() (*GroupByClause, error) {
	gb := &GroupByClause{}
	for {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		gb.Exprs = append(gb.Exprs, e)
		if p.acceptPunct(",") {
			continue
		}
		break
	}
	if !p.peekKeyword("DISTANCE") {
		return gb, nil
	}
	p.next() // DISTANCE
	spec := &SimilaritySpec{Metric: geom.L2, Overlap: core.JoinAny}
	// "-TO-ALL" / "-ALL" / "-TO-ANY" / "-ANY".
	if err := p.expectPunct("-"); err != nil {
		return nil, err
	}
	word, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	if strings.ToUpper(word) == "TO" {
		if err := p.expectPunct("-"); err != nil {
			return nil, err
		}
		word, err = p.expectIdent()
		if err != nil {
			return nil, err
		}
	}
	switch strings.ToUpper(word) {
	case "ALL":
		spec.Mode = SGBAllMode
	case "ANY":
		spec.Mode = SGBAnyMode
	default:
		return nil, fmt.Errorf("engine: expected ALL or ANY in DISTANCE clause, found %q", word)
	}
	// Optional inline metric.
	if t := p.peek(); t.kind == tokIdent {
		if m, err := geom.ParseMetric(t.text); err == nil {
			spec.Metric = m
			p.pos++
		}
	}
	if err := p.expectKeyword("WITHIN"); err != nil {
		return nil, err
	}
	eps, err := p.parseNumber()
	if err != nil {
		return nil, fmt.Errorf("engine: WITHIN expects a numeric threshold: %w", err)
	}
	if eps <= 0 {
		return nil, fmt.Errorf("engine: WITHIN threshold must be positive, got %v", eps)
	}
	spec.Eps = eps
	// Optional USING metric (Table 2 spelling).
	if p.acceptKeyword("USING") {
		name, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		m, err := geom.ParseMetric(name)
		if err != nil {
			return nil, err
		}
		spec.Metric = m
	}
	// Optional ON[-]OVERLAP clause.
	if p.peekKeyword("ON") {
		save := p.save()
		p.next()
		p.acceptPunct("-")
		if !p.acceptKeyword("OVERLAP") {
			p.restore(save)
			gb.Similarity = spec
			return gb, nil
		}
		if spec.Mode == SGBAnyMode {
			return nil, fmt.Errorf("engine: DISTANCE-TO-ANY does not take an ON-OVERLAP clause")
		}
		ov, err := p.parseOverlapClause()
		if err != nil {
			return nil, err
		}
		spec.Overlap = ov
	}
	gb.Similarity = spec
	return gb, nil
}

func (p *parser) parseOverlapClause() (core.Overlap, error) {
	word, err := p.expectIdent()
	if err != nil {
		return 0, err
	}
	switch strings.ToUpper(word) {
	case "JOIN":
		if err := p.expectPunct("-"); err != nil {
			return 0, err
		}
		if err := p.expectKeyword("ANY"); err != nil {
			return 0, err
		}
		return core.JoinAny, nil
	case "JOIN_ANY", "JOINANY":
		return core.JoinAny, nil
	case "ELIMINATE":
		return core.Eliminate, nil
	case "FORM":
		if err := p.expectPunct("-"); err != nil {
			return 0, err
		}
		if err := p.expectKeyword("NEW"); err != nil {
			return 0, err
		}
		if p.peekPunct("-") {
			save := p.save()
			p.next()
			if !p.acceptKeyword("GROUP") {
				p.restore(save)
			}
		}
		return core.FormNewGroup, nil
	case "FORM_NEW", "FORM_NEW_GROUP", "FORMNEWGROUP":
		return core.FormNewGroup, nil
	default:
		return 0, fmt.Errorf("engine: unknown ON-OVERLAP action %q", word)
	}
}

// parseNumber parses an optionally signed numeric literal.
func (p *parser) parseNumber() (float64, error) {
	neg := false
	if p.acceptPunct("-") {
		neg = true
	}
	t := p.peek()
	if t.kind != tokNumber {
		return 0, fmt.Errorf("expected number, found %q", t.text)
	}
	p.pos++
	v, err := strconv.ParseFloat(t.text, 64)
	if err != nil {
		return 0, err
	}
	if neg {
		v = -v
	}
	return v, nil
}

// parseCase parses the remainder of a CASE expression (CASE consumed).
func (p *parser) parseCase() (Expr, error) {
	ce := &CaseExpr{}
	if !p.peekKeyword("WHEN") {
		op, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		ce.Operand = op
	}
	for p.acceptKeyword("WHEN") {
		cond, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if err := p.expectKeyword("THEN"); err != nil {
			return nil, err
		}
		result, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		ce.Whens = append(ce.Whens, WhenClause{Cond: cond, Result: result})
	}
	if len(ce.Whens) == 0 {
		return nil, fmt.Errorf("engine: CASE requires at least one WHEN arm")
	}
	if p.acceptKeyword("ELSE") {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		ce.Else = e
	}
	if err := p.expectKeyword("END"); err != nil {
		return nil, err
	}
	return ce, nil
}

// ---- expression grammar ----

func (p *parser) parseExpr() (Expr, error) { return p.parseOr() }

func (p *parser) parseOr() (Expr, error) {
	l, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for p.acceptKeyword("OR") {
		r, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		l = &BinaryExpr{Op: "OR", L: l, R: r}
	}
	return l, nil
}

func (p *parser) parseAnd() (Expr, error) {
	l, err := p.parseNot()
	if err != nil {
		return nil, err
	}
	for p.acceptKeyword("AND") {
		r, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		l = &BinaryExpr{Op: "AND", L: l, R: r}
	}
	return l, nil
}

func (p *parser) parseNot() (Expr, error) {
	if p.acceptKeyword("NOT") {
		x, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		return &UnaryExpr{Op: "NOT", X: x}, nil
	}
	return p.parseComparison()
}

func (p *parser) parseComparison() (Expr, error) {
	l, err := p.parseAdditive()
	if err != nil {
		return nil, err
	}
	// IN / NOT IN / BETWEEN / NOT BETWEEN / LIKE / NOT LIKE.
	not := false
	save := p.save()
	if p.acceptKeyword("NOT") {
		if p.peekKeyword("IN") || p.peekKeyword("BETWEEN") || p.peekKeyword("LIKE") {
			not = true
		} else {
			p.restore(save)
		}
	}
	if p.acceptKeyword("BETWEEN") {
		lo, err := p.parseAdditive()
		if err != nil {
			return nil, err
		}
		if err := p.expectKeyword("AND"); err != nil {
			return nil, err
		}
		hi, err := p.parseAdditive()
		if err != nil {
			return nil, err
		}
		// Desugar to (l >= lo AND l <= hi), negated for NOT BETWEEN.
		rng := Expr(&BinaryExpr{Op: "AND",
			L: &BinaryExpr{Op: ">=", L: l, R: lo},
			R: &BinaryExpr{Op: "<=", L: l, R: hi}})
		if not {
			rng = &UnaryExpr{Op: "NOT", X: rng}
		}
		return rng, nil
	}
	if p.acceptKeyword("LIKE") {
		pat, err := p.parseAdditive()
		if err != nil {
			return nil, err
		}
		var like Expr = &BinaryExpr{Op: "LIKE", L: l, R: pat}
		if not {
			like = &UnaryExpr{Op: "NOT", X: like}
		}
		return like, nil
	}
	if p.acceptKeyword("IN") {
		if err := p.expectPunct("("); err != nil {
			return nil, err
		}
		if p.peekKeyword("SELECT") {
			sub, err := p.parseSelect()
			if err != nil {
				return nil, err
			}
			if err := p.expectPunct(")"); err != nil {
				return nil, err
			}
			return &InSubquery{X: l, Query: sub, Not: not}, nil
		}
		var items []Expr
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			items = append(items, e)
			if p.acceptPunct(",") {
				continue
			}
			break
		}
		if err := p.expectPunct(")"); err != nil {
			return nil, err
		}
		return &InList{X: l, Items: items, Not: not}, nil
	}
	for _, op := range []string{"<=", ">=", "<>", "=", "<", ">"} {
		if p.acceptPunct(op) {
			r, err := p.parseAdditive()
			if err != nil {
				return nil, err
			}
			return &BinaryExpr{Op: op, L: l, R: r}, nil
		}
	}
	return l, nil
}

func (p *parser) parseAdditive() (Expr, error) {
	l, err := p.parseMultiplicative()
	if err != nil {
		return nil, err
	}
	for {
		var op string
		switch {
		case p.acceptPunct("+"):
			op = "+"
		case p.acceptPunct("-"):
			op = "-"
		case p.acceptPunct("||"):
			op = "||"
		default:
			return l, nil
		}
		r, err := p.parseMultiplicative()
		if err != nil {
			return nil, err
		}
		l = &BinaryExpr{Op: op, L: l, R: r}
	}
}

func (p *parser) parseMultiplicative() (Expr, error) {
	l, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for {
		var op string
		switch {
		case p.acceptPunct("*"):
			op = "*"
		case p.acceptPunct("/"):
			op = "/"
		default:
			return l, nil
		}
		r, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		l = &BinaryExpr{Op: op, L: l, R: r}
	}
}

func (p *parser) parseUnary() (Expr, error) {
	if p.acceptPunct("-") {
		x, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return &UnaryExpr{Op: "-", X: x}, nil
	}
	return p.parsePrimary()
}

func (p *parser) parsePrimary() (Expr, error) {
	t := p.peek()
	switch t.kind {
	case tokNumber:
		p.pos++
		if strings.ContainsAny(t.text, ".eE") {
			f, err := strconv.ParseFloat(t.text, 64)
			if err != nil {
				return nil, fmt.Errorf("engine: bad number %q", t.text)
			}
			return &Literal{V: NewFloat(f)}, nil
		}
		i, err := strconv.ParseInt(t.text, 10, 64)
		if err != nil {
			f, ferr := strconv.ParseFloat(t.text, 64)
			if ferr != nil {
				return nil, fmt.Errorf("engine: bad number %q", t.text)
			}
			return &Literal{V: NewFloat(f)}, nil
		}
		return &Literal{V: NewInt(i)}, nil
	case tokString:
		p.pos++
		return &Literal{V: NewString(t.text)}, nil
	case tokPunct:
		if t.text == "(" {
			p.pos++
			if p.peekKeyword("SELECT") {
				sub, err := p.parseSelect()
				if err != nil {
					return nil, err
				}
				if err := p.expectPunct(")"); err != nil {
					return nil, err
				}
				return &ScalarSubquery{Query: sub}, nil
			}
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if err := p.expectPunct(")"); err != nil {
				return nil, err
			}
			return e, nil
		}
	case tokIdent:
		switch t.upper() {
		case "CASE":
			p.pos++
			return p.parseCase()
		case "NULL":
			p.pos++
			return &Literal{V: Null}, nil
		case "TRUE":
			p.pos++
			return &Literal{V: NewBool(true)}, nil
		case "FALSE":
			p.pos++
			return &Literal{V: NewBool(false)}, nil
		}
		p.pos++
		// Function call?
		if p.acceptPunct("(") {
			call := &FuncCall{Name: strings.ToLower(t.text)}
			if p.acceptKeyword("DISTINCT") {
				call.Distinct = true
			}
			if p.acceptPunct("*") {
				call.Star = true
				if err := p.expectPunct(")"); err != nil {
					return nil, err
				}
				return call, nil
			}
			if !p.acceptPunct(")") {
				for {
					a, err := p.parseExpr()
					if err != nil {
						return nil, err
					}
					call.Args = append(call.Args, a)
					if p.acceptPunct(",") {
						continue
					}
					break
				}
				if err := p.expectPunct(")"); err != nil {
					return nil, err
				}
			}
			return call, nil
		}
		// Qualified column?
		if p.acceptPunct(".") {
			name, err := p.expectIdent()
			if err != nil {
				return nil, err
			}
			return &ColumnRef{Table: t.text, Name: name}, nil
		}
		return &ColumnRef{Name: t.text}, nil
	}
	return nil, fmt.Errorf("engine: unexpected token %q in expression", t.text)
}
