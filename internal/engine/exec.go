package engine

import (
	"fmt"
	"io"
	"math"
	"sort"

	"sgb/internal/core"
	"sgb/internal/geom"
)

// operator is the Volcano iterator interface: open, a stream of next calls
// terminated by io.EOF, then close.
type operator interface {
	schema() Schema
	open() error
	next() (Row, error)
	close() error
}

// materialize runs an operator to completion and buffers its output, charging
// every buffered row against the statement's row budget and polling for
// cancellation. qc may be nil (no limits, no cancellation).
func materialize(op operator, qc *queryCtx) ([]Row, error) {
	if err := op.open(); err != nil {
		return nil, err
	}
	defer op.close()
	var rows []Row
	for {
		r, err := op.next()
		if err == io.EOF {
			return rows, nil
		}
		if err != nil {
			return nil, err
		}
		if err := qc.tick(); err != nil {
			return nil, err
		}
		if err := qc.addRows(1); err != nil {
			return nil, err
		}
		rows = append(rows, r)
	}
}

// drain is materialize without accounting, for limit-free callers.
func drain(op operator) ([]Row, error) { return materialize(op, nil) }

// ---- scan ----

type scanOp struct {
	table *Table
	sch   Schema
	pos   int
	qc    *queryCtx
}

func newScanOp(t *Table, alias string, qc *queryCtx) *scanOp {
	sch := t.Schema
	if alias != "" {
		sch = t.Schema.Qualify(alias)
	}
	return &scanOp{table: t, sch: sch, qc: qc}
}

func (s *scanOp) schema() Schema { return s.sch }
func (s *scanOp) open() error    { s.pos = 0; return nil }
func (s *scanOp) close() error   { return nil }

func (s *scanOp) next() (Row, error) {
	if s.pos >= len(s.table.Rows) {
		return nil, io.EOF
	}
	if err := s.qc.tick(); err != nil {
		return nil, err
	}
	r := s.table.Rows[s.pos]
	s.pos++
	return r, nil
}

// ---- materialized relation (derived tables, sorts) ----

type valuesOp struct {
	sch  Schema
	rows []Row
	pos  int
}

func (v *valuesOp) schema() Schema { return v.sch }
func (v *valuesOp) open() error    { v.pos = 0; return nil }
func (v *valuesOp) close() error   { return nil }

func (v *valuesOp) next() (Row, error) {
	if v.pos >= len(v.rows) {
		return nil, io.EOF
	}
	r := v.rows[v.pos]
	v.pos++
	return r, nil
}

// singleRowOp yields one empty row: the source for FROM-less SELECTs.
func singleRowOp() *valuesOp { return &valuesOp{rows: []Row{{}}} }

// ---- filter ----

type filterOp struct {
	child operator
	pred  evalFn
}

func (f *filterOp) schema() Schema { return f.child.schema() }
func (f *filterOp) open() error    { return f.child.open() }
func (f *filterOp) close() error   { return f.child.close() }

func (f *filterOp) next() (Row, error) {
	for {
		r, err := f.child.next()
		if err != nil {
			return nil, err
		}
		v, err := f.pred(r)
		if err != nil {
			return nil, err
		}
		if v.Truthy() {
			return r, nil
		}
	}
}

// ---- projection ----

type projectOp struct {
	child operator
	sch   Schema
	fns   []evalFn
}

func (p *projectOp) schema() Schema { return p.sch }
func (p *projectOp) open() error    { return p.child.open() }
func (p *projectOp) close() error   { return p.child.close() }

func (p *projectOp) next() (Row, error) {
	r, err := p.child.next()
	if err != nil {
		return nil, err
	}
	out := make(Row, len(p.fns))
	for i, f := range p.fns {
		if out[i], err = f(r); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// ---- hash join (equi) ----

type hashJoinOp struct {
	left, right         operator
	leftKeys, rightKeys []evalFn
	sch                 Schema
	qc                  *queryCtx

	table     map[string][]Row // build side (right)
	buildRows int              // rows hashed into the build side
	probing   Row              // current left row
	matches   []Row
	matchI    int
}

func newHashJoinOp(left, right operator, lk, rk []evalFn, qc *queryCtx) *hashJoinOp {
	sch := append(append(Schema{}, left.schema()...), right.schema()...)
	return &hashJoinOp{left: left, right: right, leftKeys: lk, rightKeys: rk, sch: sch, qc: qc}
}

func (j *hashJoinOp) schema() Schema { return j.sch }

func (j *hashJoinOp) open() error {
	if err := j.right.open(); err != nil {
		return err
	}
	j.table = make(map[string][]Row)
	j.buildRows = 0
	for {
		r, err := j.right.next()
		if err == io.EOF {
			break
		}
		if err != nil {
			j.right.close()
			return err
		}
		key, null, err := joinKey(r, j.rightKeys)
		if err != nil {
			j.right.close()
			return err
		}
		if null {
			continue // NULL keys never match
		}
		if err := j.qc.tick(); err != nil {
			j.right.close()
			return err
		}
		if err := j.qc.addRows(1); err != nil {
			j.right.close()
			return err
		}
		j.table[key] = append(j.table[key], r)
		j.buildRows++
	}
	if err := j.right.close(); err != nil {
		return err
	}
	j.probing, j.matches, j.matchI = nil, nil, 0
	return j.left.open()
}

func (j *hashJoinOp) close() error { return j.left.close() }

func (j *hashJoinOp) next() (Row, error) {
	for {
		if j.matchI < len(j.matches) {
			right := j.matches[j.matchI]
			j.matchI++
			out := make(Row, 0, len(j.probing)+len(right))
			out = append(append(out, j.probing...), right...)
			return out, nil
		}
		l, err := j.left.next()
		if err != nil {
			return nil, err
		}
		key, null, err := joinKey(l, j.leftKeys)
		if err != nil {
			return nil, err
		}
		if null {
			continue
		}
		j.probing = l
		j.matches = j.table[key]
		j.matchI = 0
	}
}

// exactInt64Bound is 2^63 as a float64 (exactly representable); floats in
// [-2^63, 2^63) that carry an integral value convert to int64 losslessly.
const exactInt64Bound = 9223372036854775808.0

// canonicalKeyValue maps a key value onto a canonical encoding under SQL
// numeric equality: a float holding an exact integer folds onto the int
// encoding, so INT 3 and FLOAT 3.0 hash identically. Crucially, ints are kept
// as ints — the old int→float widening rounded every key above 2^53 and made
// distinct large keys collide.
func canonicalKeyValue(v Value) Value {
	if v.T == TypeFloat && v.F == math.Trunc(v.F) &&
		v.F >= -exactInt64Bound && v.F < exactInt64Bound {
		return NewInt(int64(v.F))
	}
	return v
}

// joinKey evaluates the key expressions and encodes them canonically so
// cross-type equi-joins behave like SQL equality without losing int precision.
func joinKey(r Row, keys []evalFn) (string, bool, error) {
	vals := make([]Value, len(keys))
	for i, k := range keys {
		v, err := k(r)
		if err != nil {
			return "", false, err
		}
		if v.IsNull() {
			return "", true, nil
		}
		vals[i] = canonicalKeyValue(v)
	}
	return Key(vals), false, nil
}

// ---- nested-loop cross join (fallback when no equi predicate exists) ----

type crossJoinOp struct {
	left, right operator
	sch         Schema
	qc          *queryCtx
	rightRows   []Row
	cur         Row
	ri          int
}

func newCrossJoinOp(left, right operator, qc *queryCtx) *crossJoinOp {
	sch := append(append(Schema{}, left.schema()...), right.schema()...)
	return &crossJoinOp{left: left, right: right, sch: sch, qc: qc}
}

func (j *crossJoinOp) schema() Schema { return j.sch }

func (j *crossJoinOp) open() error {
	rows, err := materialize(j.right, j.qc)
	if err != nil {
		return err
	}
	j.rightRows = rows
	j.cur, j.ri = nil, 0
	return j.left.open()
}

func (j *crossJoinOp) close() error { return j.left.close() }

func (j *crossJoinOp) next() (Row, error) {
	for {
		if j.cur != nil && j.ri < len(j.rightRows) {
			r := j.rightRows[j.ri]
			j.ri++
			out := make(Row, 0, len(j.cur)+len(r))
			out = append(append(out, j.cur...), r...)
			return out, nil
		}
		l, err := j.left.next()
		if err != nil {
			return nil, err
		}
		j.cur, j.ri = l, 0
	}
}

// ---- sort ----

type sortOp struct {
	child operator
	keys  []evalFn
	desc  []bool
	qc    *queryCtx
	rows  []Row
	pos   int
}

func (s *sortOp) schema() Schema { return s.child.schema() }
func (s *sortOp) close() error   { return nil }

func (s *sortOp) open() error {
	rows, err := materialize(s.child, s.qc)
	if err != nil {
		return err
	}
	var sortErr error
	sort.SliceStable(rows, func(i, j int) bool {
		for k, key := range s.keys {
			a, err := key(rows[i])
			if err != nil {
				sortErr = err
				return false
			}
			b, err := key(rows[j])
			if err != nil {
				sortErr = err
				return false
			}
			c, err := Compare(a, b)
			if err != nil {
				sortErr = err
				return false
			}
			if c != 0 {
				if s.desc[k] {
					return c > 0
				}
				return c < 0
			}
		}
		return false
	})
	if sortErr != nil {
		return sortErr
	}
	s.rows, s.pos = rows, 0
	return nil
}

func (s *sortOp) next() (Row, error) {
	if s.pos >= len(s.rows) {
		return nil, io.EOF
	}
	r := s.rows[s.pos]
	s.pos++
	return r, nil
}

// ---- limit ----

type limitOp struct {
	child   operator
	n       int // -1 = no limit (OFFSET only)
	offset  int
	seen    int
	skipped int
}

func (l *limitOp) schema() Schema { return l.child.schema() }
func (l *limitOp) open() error    { l.seen, l.skipped = 0, 0; return l.child.open() }
func (l *limitOp) close() error   { return l.child.close() }

func (l *limitOp) next() (Row, error) {
	for l.skipped < l.offset {
		if _, err := l.child.next(); err != nil {
			return nil, err
		}
		l.skipped++
	}
	if l.n >= 0 && l.seen >= l.n {
		return nil, io.EOF
	}
	r, err := l.child.next()
	if err != nil {
		return nil, err
	}
	l.seen++
	return r, nil
}

// ---- standard hash aggregation (equality Group-By) ----

// hashAggOp implements the standard Group-By: groups are the distinct values
// of the grouping expressions; output rows are [groupValues..., aggResults...].
// With no grouping expressions it produces exactly one global-aggregate row.
// Output is sorted by group key for determinism.
type hashAggOp struct {
	child      operator
	groupExprs []evalFn
	calls      []*aggCall
	sch        Schema
	qc         *queryCtx

	rows []Row
	pos  int

	// inRows and nGroups record the actual input cardinality and hash-table
	// size of the last execution, for EXPLAIN ANALYZE.
	inRows  int64
	nGroups int
}

func (a *hashAggOp) schema() Schema { return a.sch }
func (a *hashAggOp) close() error   { return nil }

func (a *hashAggOp) open() error {
	if err := a.child.open(); err != nil {
		return err
	}
	defer a.child.close()
	type bucket struct {
		keyVals []Value
		acc     *groupAccumulator
	}
	buckets := make(map[string]*bucket)
	var order []string
	a.inRows = 0
	for {
		r, err := a.child.next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return err
		}
		if err := a.qc.tick(); err != nil {
			return err
		}
		a.inRows++
		keyVals := make([]Value, len(a.groupExprs))
		for i, g := range a.groupExprs {
			if keyVals[i], err = g(r); err != nil {
				return err
			}
		}
		key := Key(keyVals)
		b, ok := buckets[key]
		if !ok {
			if err := a.qc.addRows(1); err != nil {
				return err
			}
			acc, err := newGroupAccumulator(a.calls)
			if err != nil {
				return err
			}
			b = &bucket{keyVals: keyVals, acc: acc}
			buckets[key] = b
			order = append(order, key)
		}
		if err := b.acc.add(a.calls, r); err != nil {
			return err
		}
	}
	if len(a.groupExprs) == 0 && len(buckets) == 0 {
		// Global aggregate over an empty input still yields one row.
		acc, err := newGroupAccumulator(a.calls)
		if err != nil {
			return err
		}
		buckets[""] = &bucket{acc: acc}
		order = append(order, "")
	}
	a.nGroups = len(buckets)
	a.rows = a.rows[:0]
	for _, key := range order {
		b := buckets[key]
		out := make(Row, 0, len(a.groupExprs)+len(a.calls))
		out = append(out, b.keyVals...)
		out = append(out, b.acc.results()...)
		a.rows = append(a.rows, out)
	}
	sortRowsStable(a.rows, len(a.groupExprs))
	a.pos = 0
	return nil
}

func (a *hashAggOp) next() (Row, error) {
	if a.pos >= len(a.rows) {
		return nil, io.EOF
	}
	r := a.rows[a.pos]
	a.pos++
	return r, nil
}

// ---- similarity group-by aggregation ----

// sgbAggOp is the physical SGB operator: it consumes the child in input
// order, maps the grouping expressions to a multi-dimensional point per
// tuple, groups the points with the core SGB-All/SGB-Any machinery, and
// evaluates the aggregate calls over each group's member tuples. The output
// rows are [representativeGroupValues..., aggResults...], where the
// representative values come from the group's first member (similarity
// groups have no single key value). ELIMINATE'd tuples contribute to no
// group. Output order follows the smallest member position per group.
type sgbAggOp struct {
	child      operator
	groupExprs []evalFn
	calls      []*aggCall
	sch        Schema
	spec       SimilaritySpec
	algorithm  core.Algorithm
	qc         *queryCtx

	rows []Row
	pos  int

	// LastStats exposes the core grouper's cost counters for the most
	// recent execution, used by the benchmark harness, the metrics
	// registry, and EXPLAIN ANALYZE. lastDropped counts the tuples
	// discarded by ON-OVERLAP ELIMINATE.
	lastStats   core.Stats
	lastDropped int
}

func (a *sgbAggOp) schema() Schema { return a.sch }
func (a *sgbAggOp) close() error   { return nil }

func (a *sgbAggOp) open() error {
	if err := a.child.open(); err != nil {
		return err
	}
	defer a.child.close()
	opt := core.Options{
		Metric:    a.spec.Metric,
		Eps:       a.spec.Eps,
		Overlap:   a.spec.Overlap,
		Algorithm: a.algorithm,
	}
	var addPoint func(geom.Point) (int, error)
	var finish func() (*core.Result, error)
	if a.spec.Mode == SGBAllMode {
		g, err := core.NewAllGrouper(opt)
		if err != nil {
			return err
		}
		g.WithContext(a.qc.context())
		addPoint, finish = g.Add, g.Finish
	} else {
		if opt.Algorithm == core.BoundsChecking {
			opt.Algorithm = core.IndexBounds // SGB-Any has no bounds variant
		}
		g, err := core.NewAnyGrouper(opt)
		if err != nil {
			return err
		}
		g.WithContext(a.qc.context())
		addPoint, finish = g.Add, g.Finish
	}
	var tuples []Row
	for {
		r, err := a.child.next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return err
		}
		if err := a.qc.tick(); err != nil {
			return err
		}
		if err := a.qc.addRows(1); err != nil {
			return err
		}
		p := make(geom.Point, len(a.groupExprs))
		for i, g := range a.groupExprs {
			v, err := g(r)
			if err != nil {
				return err
			}
			if v.IsNull() {
				return fmt.Errorf("engine: NULL in similarity grouping attribute %d", i+1)
			}
			if p[i], err = v.AsFloat(); err != nil {
				return fmt.Errorf("engine: similarity grouping attribute %d: %v", i+1, err)
			}
		}
		if _, err := addPoint(p); err != nil {
			return err
		}
		tuples = append(tuples, r)
	}
	a.rows = a.rows[:0]
	if len(tuples) == 0 {
		a.pos = 0
		return nil
	}
	res, err := finish()
	if err != nil {
		return err
	}
	a.lastStats = res.Stats
	a.lastDropped = len(res.Dropped)
	for _, grp := range res.Groups {
		acc, err := newGroupAccumulator(a.calls)
		if err != nil {
			return err
		}
		for _, id := range grp.IDs {
			if err := acc.add(a.calls, tuples[id]); err != nil {
				return err
			}
		}
		rep := tuples[grp.IDs[0]]
		out := make(Row, 0, len(a.groupExprs)+len(a.calls))
		for _, g := range a.groupExprs {
			v, err := g(rep)
			if err != nil {
				return err
			}
			out = append(out, v)
		}
		out = append(out, acc.results()...)
		a.rows = append(a.rows, out)
	}
	a.pos = 0
	return nil
}

func (a *sgbAggOp) next() (Row, error) {
	if a.pos >= len(a.rows) {
		return nil, io.EOF
	}
	r := a.rows[a.pos]
	a.pos++
	return r, nil
}

// ---- distinct ----

// distinctOp filters out duplicate rows (SELECT DISTINCT), preserving the
// first occurrence order.
type distinctOp struct {
	child operator
	seen  map[string]bool
}

func (d *distinctOp) schema() Schema { return d.child.schema() }

func (d *distinctOp) open() error {
	d.seen = make(map[string]bool)
	return d.child.open()
}

func (d *distinctOp) close() error { return d.child.close() }

func (d *distinctOp) next() (Row, error) {
	for {
		r, err := d.child.next()
		if err != nil {
			return nil, err
		}
		key := Key(r)
		if d.seen[key] {
			continue
		}
		d.seen[key] = true
		return r, nil
	}
}
