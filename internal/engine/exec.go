package engine

import (
	"fmt"
	"io"
	"math"
	"sort"

	"sgb/internal/core"
	"sgb/internal/geom"
)

// operator is the Volcano iterator interface: open, a stream of next calls
// terminated by io.EOF, then close.
type operator interface {
	schema() Schema
	open() error
	next() (Row, error)
	close() error
}

// materialize runs an operator to completion and buffers its output, charging
// every buffered row against the statement's row budget and polling for
// cancellation once per batch. qc may be nil (no limits, no cancellation).
func materialize(op operator, qc *queryCtx) ([]Row, error) {
	if err := op.open(); err != nil {
		return nil, err
	}
	defer op.close()
	var rows []Row
	buf := make([]Row, 0, qc.batchSize())
	for {
		batch, err := fetchBatch(op, buf, qc)
		if err == io.EOF {
			return rows, nil
		}
		if err != nil {
			return nil, err
		}
		if err := qc.poll(); err != nil {
			return nil, err
		}
		if err := qc.addRows(len(batch)); err != nil {
			return nil, err
		}
		if len(batch) > 0 {
			if err := qc.growMem(int64(len(batch)) * memRowBytes(len(batch[0]))); err != nil {
				return nil, err
			}
		}
		rows = append(rows, batch...)
	}
}

// drain is materialize without accounting, for limit-free callers.
func drain(op operator) ([]Row, error) { return materialize(op, nil) }

// ---- scan ----

type scanOp struct {
	planEst
	table *Table
	sch   Schema
	pos   int
	qc    *queryCtx
}

func newScanOp(t *Table, alias string, qc *queryCtx) *scanOp {
	sch := t.Schema
	if alias != "" {
		sch = t.Schema.Qualify(alias)
	}
	return &scanOp{table: t, sch: sch, qc: qc}
}

func (s *scanOp) schema() Schema { return s.sch }
func (s *scanOp) open() error    { s.pos = 0; return nil }
func (s *scanOp) close() error   { return nil }

func (s *scanOp) next() (Row, error) {
	if s.pos >= len(s.table.Rows) {
		return nil, io.EOF
	}
	if err := s.qc.tick(); err != nil {
		return nil, err
	}
	r := s.table.Rows[s.pos]
	s.pos++
	return r, nil
}

// ---- materialized relation (derived tables, sorts) ----

type valuesOp struct {
	planEst
	sch  Schema
	rows []Row
	pos  int
}

func (v *valuesOp) schema() Schema { return v.sch }
func (v *valuesOp) open() error    { v.pos = 0; return nil }
func (v *valuesOp) close() error   { return nil }

func (v *valuesOp) next() (Row, error) {
	if v.pos >= len(v.rows) {
		return nil, io.EOF
	}
	r := v.rows[v.pos]
	v.pos++
	return r, nil
}

// singleRowOp yields one empty row: the source for FROM-less SELECTs.
func singleRowOp() *valuesOp { return &valuesOp{rows: []Row{{}}} }

// ---- filter ----

type filterOp struct {
	planEst
	child operator
	pred  evalFn
	// srcExpr is the predicate's AST, kept for selectivity estimation; nil
	// for internally synthesized predicates (HAVING), which fall back to the
	// default selectivity.
	srcExpr Expr
	// parSafe marks the compiled predicate as goroutine-safe (no subquery
	// caches), making the filter eligible for a morsel-parallel fragment.
	parSafe bool
	buf     []Row // reused child batch buffer for nextBatch
	// qc bounds the qualify-nothing loop in nextBatch: a highly selective
	// filter may consume many child batches before producing a row, and the
	// child cannot be relied on to poll (see fetchBatch).
	qc *queryCtx
}

func (f *filterOp) schema() Schema { return f.child.schema() }
func (f *filterOp) open() error    { return f.child.open() }
func (f *filterOp) close() error   { return f.child.close() }

func (f *filterOp) next() (Row, error) {
	for {
		r, err := f.child.next()
		if err != nil {
			return nil, err
		}
		v, err := f.pred(r)
		if err != nil {
			return nil, err
		}
		if v.Truthy() {
			return r, nil
		}
	}
}

// ---- projection ----

type projectOp struct {
	planEst
	child operator
	sch   Schema
	fns   []evalFn
	// parSafe marks every projection expression goroutine-safe, making the
	// projection eligible for a morsel-parallel fragment.
	parSafe bool
	buf     []Row // reused child batch buffer for nextBatch
	qc      *queryCtx
}

func (p *projectOp) schema() Schema { return p.sch }
func (p *projectOp) open() error    { return p.child.open() }
func (p *projectOp) close() error   { return p.child.close() }

func (p *projectOp) next() (Row, error) {
	r, err := p.child.next()
	if err != nil {
		return nil, err
	}
	out := make(Row, len(p.fns))
	for i, f := range p.fns {
		if out[i], err = f(r); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// ---- hash join (equi) ----

type hashJoinOp struct {
	planEst
	left, right         operator
	leftKeys, rightKeys []evalFn
	sch                 Schema
	qc                  *queryCtx

	table     map[string][]Row // build side (right)
	buildRows int              // rows hashed into the build side
	probing   Row              // current left row
	matches   []Row
	matchI    int
}

func newHashJoinOp(left, right operator, lk, rk []evalFn, qc *queryCtx) *hashJoinOp {
	sch := append(append(Schema{}, left.schema()...), right.schema()...)
	return &hashJoinOp{left: left, right: right, leftKeys: lk, rightKeys: rk, sch: sch, qc: qc}
}

func (j *hashJoinOp) schema() Schema { return j.sch }

func (j *hashJoinOp) open() error {
	if err := j.right.open(); err != nil {
		return err
	}
	j.table = make(map[string][]Row)
	j.buildRows = 0
	for {
		r, err := j.right.next()
		if err == io.EOF {
			break
		}
		if err != nil {
			j.right.close()
			return err
		}
		key, null, err := joinKey(r, j.rightKeys)
		if err != nil {
			j.right.close()
			return err
		}
		if null {
			continue // NULL keys never match
		}
		if err := j.qc.tick(); err != nil {
			j.right.close()
			return err
		}
		if err := j.qc.addRows(1); err != nil {
			j.right.close()
			return err
		}
		j.table[key] = append(j.table[key], r)
		j.buildRows++
	}
	if err := j.right.close(); err != nil {
		return err
	}
	j.probing, j.matches, j.matchI = nil, nil, 0
	return j.left.open()
}

func (j *hashJoinOp) close() error { return j.left.close() }

func (j *hashJoinOp) next() (Row, error) {
	for {
		if j.matchI < len(j.matches) {
			right := j.matches[j.matchI]
			j.matchI++
			out := make(Row, 0, len(j.probing)+len(right))
			out = append(append(out, j.probing...), right...)
			return out, nil
		}
		l, err := j.left.next()
		if err != nil {
			return nil, err
		}
		key, null, err := joinKey(l, j.leftKeys)
		if err != nil {
			return nil, err
		}
		if null {
			continue
		}
		j.probing = l
		j.matches = j.table[key]
		j.matchI = 0
	}
}

// exactInt64Bound is 2^63 as a float64 (exactly representable); floats in
// [-2^63, 2^63) that carry an integral value convert to int64 losslessly.
const exactInt64Bound = 9223372036854775808.0

// canonicalKeyValue maps a key value onto a canonical encoding under SQL
// numeric equality: a float holding an exact integer folds onto the int
// encoding, so INT 3 and FLOAT 3.0 hash identically. Crucially, ints are kept
// as ints — the old int→float widening rounded every key above 2^53 and made
// distinct large keys collide.
func canonicalKeyValue(v Value) Value {
	if v.T == TypeFloat && v.F == math.Trunc(v.F) &&
		v.F >= -exactInt64Bound && v.F < exactInt64Bound {
		return NewInt(int64(v.F))
	}
	return v
}

// joinKey evaluates the key expressions and encodes them canonically so
// cross-type equi-joins behave like SQL equality without losing int precision.
func joinKey(r Row, keys []evalFn) (string, bool, error) {
	vals := make([]Value, len(keys))
	for i, k := range keys {
		v, err := k(r)
		if err != nil {
			return "", false, err
		}
		if v.IsNull() {
			return "", true, nil
		}
		vals[i] = canonicalKeyValue(v)
	}
	return Key(vals), false, nil
}

// ---- nested-loop cross join (fallback when no equi predicate exists) ----

type crossJoinOp struct {
	planEst
	left, right operator
	sch         Schema
	qc          *queryCtx
	rightRows   []Row
	cur         Row
	ri          int
}

func newCrossJoinOp(left, right operator, qc *queryCtx) *crossJoinOp {
	sch := append(append(Schema{}, left.schema()...), right.schema()...)
	return &crossJoinOp{left: left, right: right, sch: sch, qc: qc}
}

func (j *crossJoinOp) schema() Schema { return j.sch }

func (j *crossJoinOp) open() error {
	rows, err := materialize(j.right, j.qc)
	if err != nil {
		return err
	}
	j.rightRows = rows
	j.cur, j.ri = nil, 0
	return j.left.open()
}

func (j *crossJoinOp) close() error { return j.left.close() }

func (j *crossJoinOp) next() (Row, error) {
	for {
		if j.cur != nil && j.ri < len(j.rightRows) {
			r := j.rightRows[j.ri]
			j.ri++
			out := make(Row, 0, len(j.cur)+len(r))
			out = append(append(out, j.cur...), r...)
			return out, nil
		}
		l, err := j.left.next()
		if err != nil {
			return nil, err
		}
		j.cur, j.ri = l, 0
	}
}

// ---- sort ----

type sortOp struct {
	planEst
	child operator
	keys  []evalFn
	desc  []bool
	qc    *queryCtx
	rows  []Row
	pos   int
}

func (s *sortOp) schema() Schema { return s.child.schema() }
func (s *sortOp) close() error   { return nil }

func (s *sortOp) open() error {
	rows, err := materialize(s.child, s.qc)
	if err != nil {
		return err
	}
	var sortErr error
	sort.SliceStable(rows, func(i, j int) bool {
		for k, key := range s.keys {
			a, err := key(rows[i])
			if err != nil {
				sortErr = err
				return false
			}
			b, err := key(rows[j])
			if err != nil {
				sortErr = err
				return false
			}
			c, err := Compare(a, b)
			if err != nil {
				sortErr = err
				return false
			}
			if c != 0 {
				if s.desc[k] {
					return c > 0
				}
				return c < 0
			}
		}
		return false
	})
	if sortErr != nil {
		return sortErr
	}
	s.rows, s.pos = rows, 0
	return nil
}

func (s *sortOp) next() (Row, error) {
	if s.pos >= len(s.rows) {
		return nil, io.EOF
	}
	r := s.rows[s.pos]
	s.pos++
	return r, nil
}

// ---- limit ----

type limitOp struct {
	planEst
	child   operator
	n       int // -1 = no limit (OFFSET only)
	offset  int
	seen    int
	skipped int
	buf     []Row // reused child batch buffer for nextBatch
	qc      *queryCtx
}

func (l *limitOp) schema() Schema { return l.child.schema() }
func (l *limitOp) open() error    { l.seen, l.skipped = 0, 0; return l.child.open() }
func (l *limitOp) close() error   { return l.child.close() }

func (l *limitOp) next() (Row, error) {
	for l.skipped < l.offset {
		if _, err := l.child.next(); err != nil {
			return nil, err
		}
		l.skipped++
	}
	if l.n >= 0 && l.seen >= l.n {
		return nil, io.EOF
	}
	r, err := l.child.next()
	if err != nil {
		return nil, err
	}
	l.seen++
	return r, nil
}

// ---- standard hash aggregation (equality Group-By) ----

// aggBucket is one group's key values and accumulator states.
type aggBucket struct {
	keyVals []Value
	acc     *groupAccumulator
}

// aggTable is a grouping hash table keyed by the encoded grouping values,
// preserving insertion order. It serves both phases of aggregation: the
// serial path builds one table directly, and the parallel path builds one
// uncharged table per morsel and folds them into a charged global table in
// morsel order, so the group set — and the row-budget accounting per new
// group — is identical either way.
type aggTable struct {
	groupFns []evalFn
	calls    []*aggCall
	qc       *queryCtx // charges one budget row per new group; nil = uncharged partial
	buckets  map[string]*aggBucket
	order    []string
	inRows   int64
}

func newAggTable(groupFns []evalFn, calls []*aggCall, qc *queryCtx) *aggTable {
	return &aggTable{groupFns: groupFns, calls: calls, qc: qc, buckets: make(map[string]*aggBucket)}
}

func (t *aggTable) addRow(r Row) error {
	t.inRows++
	keyVals := make([]Value, len(t.groupFns))
	for i, g := range t.groupFns {
		var err error
		if keyVals[i], err = g(r); err != nil {
			return err
		}
	}
	key := Key(keyVals)
	b, ok := t.buckets[key]
	if !ok {
		if err := t.qc.addRows(1); err != nil {
			return err
		}
		if err := t.qc.growMem(memBucketOverheadBytes + memValueBytes*int64(len(keyVals))); err != nil {
			return err
		}
		acc, err := newGroupAccumulator(t.calls)
		if err != nil {
			return err
		}
		b = &aggBucket{keyVals: keyVals, acc: acc}
		t.buckets[key] = b
		t.order = append(t.order, key)
	}
	return b.acc.add(t.calls, r)
}

// fold merges a partial table into t in the partial's insertion order:
// buckets new to t are adopted (and charged), existing ones merge their
// accumulator states.
func (t *aggTable) fold(o *aggTable) error {
	t.inRows += o.inRows
	for _, key := range o.order {
		ob := o.buckets[key]
		b, ok := t.buckets[key]
		if !ok {
			if err := t.qc.addRows(1); err != nil {
				return err
			}
			if err := t.qc.growMem(memBucketOverheadBytes + memValueBytes*int64(len(ob.keyVals))); err != nil {
				return err
			}
			t.buckets[key] = ob
			t.order = append(t.order, key)
			continue
		}
		if err := b.acc.merge(ob.acc); err != nil {
			return err
		}
	}
	return nil
}

// hashAggOp implements the standard Group-By: groups are the distinct values
// of the grouping expressions; output rows are [groupValues..., aggResults...].
// With no grouping expressions it produces exactly one global-aggregate row.
// Output is sorted by group key for determinism.
//
// When the planner attaches a morsel fragment (frag != nil, workers > 1) the
// operator runs two-phase: workers aggregate morsels into partial tables,
// which are folded in ascending morsel order — deterministic regardless of
// scheduling, and order-identical to the serial build because morsels are
// contiguous input ranges.
type hashAggOp struct {
	planEst
	child      operator
	groupExprs []evalFn
	// astGroups is the grouping expressions' AST form, kept for group-count
	// estimation against the statistics catalog.
	astGroups []Expr
	calls     []*aggCall
	sch       Schema
	qc        *queryCtx

	// frag and workers are set by the planner when the input pipeline is
	// parallel-safe and large enough to be worth fanning out.
	frag    *morselFragment
	workers int

	rows []Row
	pos  int

	// inRows and nGroups record the actual input cardinality and hash-table
	// size of the last execution; lastWorkers/lastMorsels the parallel shape
	// (0 when the serial path ran). All for EXPLAIN ANALYZE and metrics.
	inRows      int64
	nGroups     int
	lastWorkers int
	lastMorsels int
}

func (a *hashAggOp) schema() Schema { return a.sch }
func (a *hashAggOp) close() error   { return nil }

func (a *hashAggOp) parallelRun() (int, int) { return a.lastWorkers, a.lastMorsels }

func (a *hashAggOp) open() error {
	a.lastWorkers, a.lastMorsels = 0, 0
	tbl := newAggTable(a.groupExprs, a.calls, a.qc)
	var err error
	if a.frag != nil && a.workers > 1 {
		err = a.buildParallel(tbl)
	} else {
		err = a.buildSerial(tbl)
	}
	if err != nil {
		return err
	}
	if len(a.groupExprs) == 0 && len(tbl.buckets) == 0 {
		// Global aggregate over an empty input still yields one row.
		acc, err := newGroupAccumulator(a.calls)
		if err != nil {
			return err
		}
		tbl.buckets[""] = &aggBucket{acc: acc}
		tbl.order = append(tbl.order, "")
	}
	a.inRows = tbl.inRows
	a.nGroups = len(tbl.buckets)
	a.rows = a.rows[:0]
	for _, key := range tbl.order {
		b := tbl.buckets[key]
		out := make(Row, 0, len(a.groupExprs)+len(a.calls))
		out = append(out, b.keyVals...)
		out = append(out, b.acc.results()...)
		a.rows = append(a.rows, out)
	}
	sortRowsStable(a.rows, len(a.groupExprs))
	a.pos = 0
	return nil
}

func (a *hashAggOp) buildSerial(tbl *aggTable) error {
	if err := a.child.open(); err != nil {
		return err
	}
	defer a.child.close()
	buf := make([]Row, 0, a.qc.batchSize())
	for {
		batch, err := fetchBatch(a.child, buf, a.qc)
		if err == io.EOF {
			return nil
		}
		if err != nil {
			return err
		}
		if err := a.qc.poll(); err != nil {
			return err
		}
		for _, r := range batch {
			if err := tbl.addRow(r); err != nil {
				return err
			}
		}
	}
}

// buildParallel is the two-phase aggregation: one uncharged partial table per
// morsel, folded into the charged global table in morsel order.
func (a *hashAggOp) buildParallel(global *aggTable) error {
	partials := make([]*aggTable, a.frag.morselCount(a.qc))
	morsels, used, err := a.frag.run(a.qc, a.workers, func(m int, rows []Row) error {
		t := newAggTable(a.groupExprs, a.calls, nil)
		for _, r := range rows {
			if err := t.addRow(r); err != nil {
				return err
			}
		}
		partials[m] = t
		return nil
	})
	if err != nil {
		return err
	}
	for _, p := range partials {
		if p == nil {
			continue
		}
		if err := global.fold(p); err != nil {
			return err
		}
	}
	a.lastWorkers, a.lastMorsels = used, morsels
	return nil
}

func (a *hashAggOp) next() (Row, error) {
	if a.pos >= len(a.rows) {
		return nil, io.EOF
	}
	r := a.rows[a.pos]
	a.pos++
	return r, nil
}

// ---- similarity group-by aggregation ----

// sgbAggOp is the physical SGB operator: it consumes the child in input
// order, maps the grouping expressions to a multi-dimensional point per
// tuple, groups the points with the core SGB-All/SGB-Any machinery, and
// evaluates the aggregate calls over each group's member tuples. The output
// rows are [representativeGroupValues..., aggResults...], where the
// representative values come from the group's first member (similarity
// groups have no single key value). ELIMINATE'd tuples contribute to no
// group. Output order follows the smallest member position per group.
type sgbAggOp struct {
	planEst
	child      operator
	groupExprs []evalFn
	calls      []*aggCall
	sch        Schema
	spec       SimilaritySpec
	algorithm  core.Algorithm
	// algAuto records that algorithm came from cost-based selection rather
	// than an explicit \alg override, for the trace annotation.
	algAuto bool
	qc      *queryCtx

	// frag and workers are set by the planner for SGB-Any plans whose input
	// pipeline is parallel-safe and large enough: input collection runs
	// morsel-parallel and the grouping itself routes through the core's
	// grid-partition SGBAnyParallelCtx instead of the serial grouper.
	frag    *morselFragment
	workers int

	// colPlan, when set by the planner, routes open() through the tuple-free
	// columnar fast path (see colbatch.go). It subsumes frag/workers: its own
	// worker count decides the serial/parallel grouping split.
	colPlan *colPlan

	rows []Row
	pos  int

	// LastStats exposes the core grouper's cost counters for the most
	// recent execution, used by the benchmark harness, the metrics
	// registry, and EXPLAIN ANALYZE. lastDropped counts the tuples
	// discarded by ON-OVERLAP ELIMINATE. lastWorkers/lastMorsels record
	// the parallel shape (0 when the serial path ran).
	lastStats   core.Stats
	lastDropped int
	lastWorkers int
	lastMorsels int
}

func (a *sgbAggOp) schema() Schema { return a.sch }
func (a *sgbAggOp) close() error   { return nil }

func (a *sgbAggOp) parallelRun() (int, int) { return a.lastWorkers, a.lastMorsels }

// collectSerial drains the child operator batch-wise into a tuple buffer.
func (a *sgbAggOp) collectSerial() ([]Row, error) {
	if err := a.child.open(); err != nil {
		return nil, err
	}
	defer a.child.close()
	var tuples []Row
	buf := make([]Row, 0, a.qc.batchSize())
	for {
		batch, err := fetchBatch(a.child, buf, a.qc)
		if err == io.EOF {
			return tuples, nil
		}
		if err != nil {
			return nil, err
		}
		if err := a.qc.poll(); err != nil {
			return nil, err
		}
		if err := a.qc.addRows(len(batch)); err != nil {
			return nil, err
		}
		if len(batch) > 0 {
			if err := a.qc.growMem(int64(len(batch)) * memRowBytes(len(batch[0]))); err != nil {
				return nil, err
			}
		}
		tuples = append(tuples, batch...)
	}
}

// collectParallel evaluates the morsel fragment across the worker pool and
// reassembles the surviving tuples in ascending morsel order, which — morsels
// being contiguous input ranges — reproduces the serial input order exactly.
func (a *sgbAggOp) collectParallel() ([]Row, error) {
	chunks := make([][]Row, a.frag.morselCount(a.qc))
	morsels, used, err := a.frag.run(a.qc, a.workers, func(m int, rows []Row) error {
		if err := a.qc.addRows(len(rows)); err != nil {
			return err
		}
		if len(rows) > 0 {
			if err := a.qc.growMem(int64(len(rows)) * memRowBytes(len(rows[0]))); err != nil {
				return err
			}
		}
		chunks[m] = append([]Row(nil), rows...)
		return nil
	})
	if err != nil {
		return nil, err
	}
	var total int
	for _, c := range chunks {
		total += len(c)
	}
	tuples := make([]Row, 0, total)
	for _, c := range chunks {
		tuples = append(tuples, c...)
	}
	a.lastWorkers, a.lastMorsels = used, morsels
	return tuples, nil
}

// colsOf maps the tuples onto the columnar grouping-space point set: one flat
// float64 column per grouping expression, carved out of a single arena. The
// columns flow straight into the core groupers' batch entry points, so the
// engine never materializes per-row Point slices on the SGB hot path.
func (a *sgbAggOp) colsOf(tuples []Row) (geom.Cols, error) {
	dim := len(a.groupExprs)
	if err := a.qc.growMem(int64(dim) * int64(len(tuples)) * 8); err != nil {
		return geom.Cols{}, err
	}
	cols := geom.MakeCols(dim, len(tuples))
	for i, g := range a.groupExprs {
		col := cols.Col(i)
		for t, r := range tuples {
			v, err := g(r)
			if err != nil {
				return geom.Cols{}, err
			}
			if v.IsNull() {
				return geom.Cols{}, fmt.Errorf("engine: NULL in similarity grouping attribute %d", i+1)
			}
			if col[t], err = v.AsFloat(); err != nil {
				return geom.Cols{}, fmt.Errorf("engine: similarity grouping attribute %d: %v", i+1, err)
			}
		}
	}
	return cols, nil
}

// groupSerial feeds the columnar point set through the single-threaded core
// grouper matching the spec's mode and the session's algorithm.
func (a *sgbAggOp) groupSerial(pts geom.Cols, opt core.Options) (*core.Result, error) {
	if a.spec.Mode == SGBAllMode {
		g, err := core.NewAllGrouper(opt)
		if err != nil {
			return nil, err
		}
		g.WithContext(a.qc.context())
		if err := g.AddCols(pts); err != nil {
			return nil, err
		}
		return g.Finish()
	}
	if opt.Algorithm == core.BoundsChecking {
		opt.Algorithm = core.IndexBounds // SGB-Any has no bounds variant
	}
	g, err := core.NewAnyGrouper(opt)
	if err != nil {
		return nil, err
	}
	g.WithContext(a.qc.context())
	if err := g.AddCols(pts); err != nil {
		return nil, err
	}
	return g.Finish()
}

func (a *sgbAggOp) open() error {
	a.lastWorkers, a.lastMorsels = 0, 0
	if a.colPlan != nil {
		return a.openColumnar()
	}
	parallel := a.frag != nil && a.workers > 1 && a.spec.Mode == SGBAnyMode
	var tuples []Row
	var err error
	if parallel {
		tuples, err = a.collectParallel()
	} else {
		tuples, err = a.collectSerial()
	}
	if err != nil {
		return err
	}
	a.rows = a.rows[:0]
	if len(tuples) == 0 {
		a.pos = 0
		return nil
	}
	cols, err := a.colsOf(tuples)
	if err != nil {
		return err
	}
	opt := core.Options{
		Metric:    a.spec.Metric,
		Eps:       a.spec.Eps,
		Overlap:   a.spec.Overlap,
		Algorithm: a.algorithm,
	}
	var res *core.Result
	if parallel {
		res, err = core.SGBAnyParallelColsCtx(a.qc.context(), cols, opt, a.workers)
	} else {
		res, err = a.groupSerial(cols, opt)
	}
	if err != nil {
		return err
	}
	a.lastStats = res.Stats
	a.lastDropped = len(res.Dropped)
	// The grouper's output side: one accumulator set and one result row per
	// group, charged up front rather than inside the per-group loop.
	outWidth := len(a.groupExprs) + len(a.calls)
	if err := a.qc.growMem(int64(len(res.Groups)) * (memBucketOverheadBytes + memRowBytes(outWidth))); err != nil {
		return err
	}
	for _, grp := range res.Groups {
		acc, err := newGroupAccumulator(a.calls)
		if err != nil {
			return err
		}
		for _, id := range grp.IDs {
			if err := acc.add(a.calls, tuples[id]); err != nil {
				return err
			}
		}
		rep := tuples[grp.IDs[0]]
		out := make(Row, 0, len(a.groupExprs)+len(a.calls))
		for _, g := range a.groupExprs {
			v, err := g(rep)
			if err != nil {
				return err
			}
			out = append(out, v)
		}
		out = append(out, acc.results()...)
		a.rows = append(a.rows, out)
	}
	a.pos = 0
	return nil
}

func (a *sgbAggOp) next() (Row, error) {
	if a.pos >= len(a.rows) {
		return nil, io.EOF
	}
	r := a.rows[a.pos]
	a.pos++
	return r, nil
}

// ---- distinct ----

// distinctOp filters out duplicate rows (SELECT DISTINCT), preserving the
// first occurrence order.
type distinctOp struct {
	planEst
	child operator
	seen  map[string]bool
}

func (d *distinctOp) schema() Schema { return d.child.schema() }

func (d *distinctOp) open() error {
	d.seen = make(map[string]bool)
	return d.child.open()
}

func (d *distinctOp) close() error { return d.child.close() }

func (d *distinctOp) next() (Row, error) {
	for {
		r, err := d.child.next()
		if err != nil {
			return nil, err
		}
		key := Key(r)
		if d.seen[key] {
			continue
		}
		d.seen[key] = true
		return r, nil
	}
}
