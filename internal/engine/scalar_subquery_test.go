package engine

import (
	"reflect"
	"testing"
)

func TestScalarSubqueryBasics(t *testing.T) {
	db := testDB(t)
	got := queryStrings(t, db, "SELECT name FROM emp WHERE salary = (SELECT max(salary) FROM emp)")
	want := [][]string{{"eve"}}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("got %v", got)
	}
	// Arithmetic with a scalar subquery.
	got = queryStrings(t, db, "SELECT name FROM emp WHERE salary > (SELECT avg(salary) FROM emp) ORDER BY name")
	want = [][]string{{"dan"}, {"eve"}}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("got %v", got)
	}
	// In the SELECT list.
	got = queryStrings(t, db, "SELECT (SELECT count(*) FROM dept)")
	if got[0][0] != "3" {
		t.Fatalf("got %v", got)
	}
}

// TestScalarSubqueryQ15Shape: the faithful TPC-H Q15 formulation — suppliers
// whose revenue equals the maximum revenue — now expresses directly.
func TestScalarSubqueryQ15Shape(t *testing.T) {
	db := NewDB()
	mustExec := func(q string) {
		t.Helper()
		if _, err := db.Exec(q); err != nil {
			t.Fatalf("%s: %v", q, err)
		}
	}
	mustExec("CREATE TABLE revenue (suppkey INT, total FLOAT)")
	mustExec("INSERT INTO revenue VALUES (1, 100.0), (2, 300.0), (3, 300.0), (4, 50.0)")
	got := queryStrings(t, db, `
		SELECT suppkey FROM revenue
		WHERE total = (SELECT max(total) FROM revenue)
		ORDER BY suppkey`)
	want := [][]string{{"2"}, {"3"}}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("got %v", got)
	}
}

func TestScalarSubqueryEmptyAndErrors(t *testing.T) {
	db := testDB(t)
	// Zero rows yield NULL: the comparison is never true.
	got := queryStrings(t, db,
		"SELECT name FROM emp WHERE salary = (SELECT salary FROM emp WHERE name = 'nosuch')")
	if len(got) != 0 {
		t.Fatalf("NULL scalar compared true: %v", got)
	}
	// More than one row is an error.
	if _, err := db.Query("SELECT (SELECT salary FROM emp)"); err == nil {
		t.Error("multi-row scalar subquery accepted")
	}
	// More than one column is an error.
	if _, err := db.Query("SELECT (SELECT id, dname FROM dept WHERE id = 10)"); err == nil {
		t.Error("multi-column scalar subquery accepted")
	}
}

func TestScalarSubqueryWithSGB(t *testing.T) {
	db := sgbDB(t)
	// Similarity groups larger than the average group size.
	got := queryStrings(t, db, `
		SELECT count(*) FROM pts
		GROUP BY x, y DISTANCE-TO-ALL LINF WITHIN 3 ON-OVERLAP ELIMINATE
		HAVING count(*) >= (SELECT 2)
		ORDER BY count(*)`)
	if len(got) != 2 {
		t.Fatalf("got %v", got)
	}
}
