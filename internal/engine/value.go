// Package engine is the relational substrate the SGB operators are embedded
// in: an in-memory column catalog, a SQL dialect extended with the paper's
// DISTANCE-TO-ALL / DISTANCE-TO-ANY grammar, and a Volcano-style executor
// with scans, filters, hash joins, sorting, standard hash aggregation and the
// two similarity group-by physical operators.
//
// The engine plays the role PostgreSQL plays in the paper (§8.2): it lets
// the SGB operators run inside a query pipeline, interleaved with joins,
// predicates and ordinary aggregation, so that operator overhead can be
// measured against the standard Group-By on the same footing.
package engine

import (
	"fmt"
	"strconv"
	"strings"
)

// Type enumerates the engine's value types.
type Type uint8

const (
	// TypeNull is the type of the SQL NULL value.
	TypeNull Type = iota
	// TypeInt is a 64-bit signed integer.
	TypeInt
	// TypeFloat is a 64-bit IEEE float.
	TypeFloat
	// TypeString is a UTF-8 string.
	TypeString
	// TypeBool is a boolean.
	TypeBool
)

// String names the type the way the SQL dialect spells it.
func (t Type) String() string {
	switch t {
	case TypeNull:
		return "NULL"
	case TypeInt:
		return "INT"
	case TypeFloat:
		return "FLOAT"
	case TypeString:
		return "TEXT"
	case TypeBool:
		return "BOOL"
	default:
		return fmt.Sprintf("Type(%d)", uint8(t))
	}
}

// ParseType maps SQL type names onto engine types.
func ParseType(s string) (Type, error) {
	switch strings.ToUpper(s) {
	case "INT", "INTEGER", "BIGINT", "SMALLINT":
		return TypeInt, nil
	case "FLOAT", "DOUBLE", "REAL", "NUMERIC", "DECIMAL":
		return TypeFloat, nil
	case "TEXT", "VARCHAR", "CHAR", "STRING":
		return TypeString, nil
	case "BOOL", "BOOLEAN":
		return TypeBool, nil
	default:
		return 0, fmt.Errorf("engine: unknown type %q", s)
	}
}

// Value is one SQL value. Values are comparable with == (all fields are
// comparable), which the hash join and hash aggregation rely on.
type Value struct {
	// T is the value's type; the corresponding payload field below is the
	// only meaningful one.
	T Type
	I int64
	F float64
	S string
	B bool
}

// Null is the SQL NULL value.
var Null = Value{T: TypeNull}

// NewInt returns an integer value.
func NewInt(v int64) Value { return Value{T: TypeInt, I: v} }

// NewFloat returns a float value.
func NewFloat(v float64) Value { return Value{T: TypeFloat, F: v} }

// NewString returns a string value.
func NewString(v string) Value { return Value{T: TypeString, S: v} }

// NewBool returns a boolean value.
func NewBool(v bool) Value { return Value{T: TypeBool, B: v} }

// IsNull reports whether v is the SQL NULL.
func (v Value) IsNull() bool { return v.T == TypeNull }

// AsFloat coerces a numeric value to float64.
func (v Value) AsFloat() (float64, error) {
	switch v.T {
	case TypeInt:
		return float64(v.I), nil
	case TypeFloat:
		return v.F, nil
	default:
		return 0, fmt.Errorf("engine: %s is not numeric", v)
	}
}

// AsInt coerces a numeric value to int64 (floats truncate).
func (v Value) AsInt() (int64, error) {
	switch v.T {
	case TypeInt:
		return v.I, nil
	case TypeFloat:
		return int64(v.F), nil
	default:
		return 0, fmt.Errorf("engine: %s is not numeric", v)
	}
}

// Truthy interprets v as a WHERE-clause predicate result. NULL is false.
func (v Value) Truthy() bool { return v.T == TypeBool && v.B }

// String renders v for result display.
func (v Value) String() string {
	switch v.T {
	case TypeNull:
		return "NULL"
	case TypeInt:
		return strconv.FormatInt(v.I, 10)
	case TypeFloat:
		return strconv.FormatFloat(v.F, 'g', -1, 64)
	case TypeString:
		return v.S
	case TypeBool:
		if v.B {
			return "true"
		}
		return "false"
	default:
		return "?"
	}
}

// numericPair coerces both operands to a common numeric representation,
// preferring integer arithmetic when both sides are integers.
func numericPair(a, b Value) (ai, bi int64, af, bf float64, isInt bool, err error) {
	if a.T == TypeInt && b.T == TypeInt {
		return a.I, b.I, 0, 0, true, nil
	}
	af, err = a.AsFloat()
	if err != nil {
		return
	}
	bf, err = b.AsFloat()
	return
}

// Compare orders two values: -1, 0 or +1. NULL sorts before everything.
// Cross-type numeric comparisons coerce to float; other cross-type
// comparisons are errors.
func Compare(a, b Value) (int, error) {
	if a.IsNull() || b.IsNull() {
		switch {
		case a.IsNull() && b.IsNull():
			return 0, nil
		case a.IsNull():
			return -1, nil
		default:
			return 1, nil
		}
	}
	switch {
	case a.T == TypeString && b.T == TypeString:
		return strings.Compare(a.S, b.S), nil
	case a.T == TypeBool && b.T == TypeBool:
		switch {
		case a.B == b.B:
			return 0, nil
		case !a.B:
			return -1, nil
		default:
			return 1, nil
		}
	}
	ai, bi, af, bf, isInt, err := numericPair(a, b)
	if err != nil {
		return 0, fmt.Errorf("engine: cannot compare %s and %s", a.T, b.T)
	}
	if isInt {
		switch {
		case ai < bi:
			return -1, nil
		case ai > bi:
			return 1, nil
		default:
			return 0, nil
		}
	}
	switch {
	case af < bf:
		return -1, nil
	case af > bf:
		return 1, nil
	default:
		return 0, nil
	}
}

// Row is one tuple.
type Row []Value

// Clone returns a copy of the row that does not share storage.
func (r Row) Clone() Row {
	out := make(Row, len(r))
	copy(out, r)
	return out
}

// Key encodes a row prefix into a comparable string for hash operators.
// The encoding is injective per type.
func Key(vals []Value) string {
	var sb strings.Builder
	for _, v := range vals {
		switch v.T {
		case TypeNull:
			sb.WriteByte('n')
		case TypeInt:
			sb.WriteByte('i')
			sb.WriteString(strconv.FormatInt(v.I, 10))
		case TypeFloat:
			sb.WriteByte('f')
			sb.WriteString(strconv.FormatUint(floatBits(v.F), 16))
		case TypeString:
			sb.WriteByte('s')
			sb.WriteString(strconv.Itoa(len(v.S)))
			sb.WriteByte(':')
			sb.WriteString(v.S)
		case TypeBool:
			if v.B {
				sb.WriteByte('t')
			} else {
				sb.WriteByte('b')
			}
		}
		sb.WriteByte('|')
	}
	return sb.String()
}
