package engine

import (
	"fmt"
	"time"
)

// instrumentedOp wraps a physical operator and records its actual runtime
// behaviour: rows produced, next() calls, re-opens (loops), and cumulative
// wall time spent inside open()+next(). Time is inclusive of children, like
// PostgreSQL's "actual time" — subtracting a child's elapsed from its
// parent's gives the operator's own cost.
type instrumentedOp struct {
	child     operator
	rowsOut   int64
	nextCalls int64
	loops     int
	elapsed   time.Duration
}

func (i *instrumentedOp) schema() Schema { return i.child.schema() }

func (i *instrumentedOp) open() error {
	i.loops++
	start := time.Now()
	err := i.child.open()
	i.elapsed += time.Since(start)
	return err
}

func (i *instrumentedOp) next() (Row, error) {
	start := time.Now()
	r, err := i.child.next()
	i.elapsed += time.Since(start)
	i.nextCalls++
	if err == nil {
		i.rowsOut++
	}
	return r, err
}

func (i *instrumentedOp) close() error { return i.child.close() }

// instrument wraps every node of an operator tree in an instrumentedOp,
// rewiring each operator's child pointers in place. The returned root is the
// wrapped input. EXPLAIN ANALYZE runs the instrumented tree and renders it;
// plain query execution stays unwrapped and pays zero overhead.
func instrument(op operator) *instrumentedOp {
	switch op := op.(type) {
	case *renameOp:
		op.child = instrument(op.child)
	case *filterOp:
		op.child = instrument(op.child)
	case *projectOp:
		op.child = instrument(op.child)
	case *hashJoinOp:
		op.left = instrument(op.left)
		op.right = instrument(op.right)
	case *crossJoinOp:
		op.left = instrument(op.left)
		op.right = instrument(op.right)
	case *sortOp:
		op.child = instrument(op.child)
	case *limitOp:
		op.child = instrument(op.child)
	case *hashAggOp:
		op.child = instrument(op.child)
	case *sgbAggOp:
		op.child = instrument(op.child)
		// EXPLAIN ANALYZE observes the fully general row path so the child
		// chain's actual row counts mean what the rendered tree says; the
		// tuple-free fast path would bypass the instrumented operators.
		op.colPlan = nil
	case *distinctOp:
		op.child = instrument(op.child)
	}
	return &instrumentedOp{child: op}
}

// opActuals is implemented by operators that can report extra post-execution
// counters — buffer sizes, build-side cardinality, SGB cost counters — for
// the EXPLAIN ANALYZE annotation line under the operator.
type opActuals interface {
	actuals() string
}

func (j *hashJoinOp) actuals() string {
	return fmt.Sprintf("Hash Build: rows=%d buckets=%d", j.buildRows, len(j.table))
}

func (j *crossJoinOp) actuals() string {
	return fmt.Sprintf("Inner Buffer: rows=%d", len(j.rightRows))
}

func (s *sortOp) actuals() string {
	return fmt.Sprintf("Sort Buffer: rows=%d", len(s.rows))
}

func (d *distinctOp) actuals() string {
	return fmt.Sprintf("Distinct Set: keys=%d", len(d.seen))
}

func (a *hashAggOp) actuals() string {
	s := fmt.Sprintf("Hash Table: groups=%d input rows=%d", a.nGroups, a.inRows)
	if a.lastWorkers > 1 {
		s += fmt.Sprintf(" workers=%d batches=%d", a.lastWorkers, a.lastMorsels)
	}
	return s
}

// actuals surfaces the core grouper's cost counters — the quantities the
// paper's cost analysis reasons about — under the SimilarityGroupBy node.
func (a *sgbAggOp) actuals() string {
	s := a.lastStats
	line := fmt.Sprintf(
		"SGB Stats: points=%d distance_comps=%d rect_tests=%d hull_tests=%d window_queries=%d index_updates=%d rounds=%d merged=%d dropped=%d",
		s.Points, s.DistanceComps, s.RectTests, s.HullTests,
		s.WindowQueries, s.IndexUpdates, s.Rounds, s.GroupsMerged, a.lastDropped)
	if a.lastWorkers > 1 {
		line += fmt.Sprintf(" workers=%d batches=%d", a.lastWorkers, a.lastMorsels)
	}
	return line
}
