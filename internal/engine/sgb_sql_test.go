package engine

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"sgb/internal/core"
)

// sgbDB builds a table with the paper's Figure 2 points.
func sgbDB(t *testing.T) *DB {
	t.Helper()
	db := NewDB()
	if _, err := db.Exec("CREATE TABLE pts (id INT, x FLOAT, y FLOAT)"); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Exec(`INSERT INTO pts VALUES
		(1, 1, 1), (2, 2, 2), (3, 6, 1), (4, 7, 2), (5, 4, 1.5)`); err != nil {
		t.Fatal(err)
	}
	return db
}

func TestSGBAllThreeSemanticsViaSQL(t *testing.T) {
	db := sgbDB(t)
	cases := []struct {
		clause string
		want   []string // sorted counts
	}{
		{"ON-OVERLAP JOIN-ANY", []string{"2", "3"}},
		{"ON-OVERLAP ELIMINATE", []string{"2", "2"}},
		{"ON-OVERLAP FORM-NEW-GROUP", []string{"1", "2", "2"}},
	}
	for _, c := range cases {
		got := queryStrings(t, db, fmt.Sprintf(`
			SELECT count(*) FROM pts
			GROUP BY x, y DISTANCE-TO-ALL LINF WITHIN 3 %s
			ORDER BY count(*)`, c.clause))
		flat := make([]string, len(got))
		for i, r := range got {
			flat[i] = r[0]
		}
		if !reflect.DeepEqual(flat, c.want) {
			t.Errorf("%s: counts = %v, want %v", c.clause, flat, c.want)
		}
	}
}

func TestSGBHavingFiltersGroups(t *testing.T) {
	db := sgbDB(t)
	got := queryStrings(t, db, `
		SELECT count(*), list_id(id) FROM pts
		GROUP BY x, y DISTANCE-TO-ALL LINF WITHIN 3 ON-OVERLAP FORM-NEW-GROUP
		HAVING count(*) > 1
		ORDER BY list_id(id)`)
	want := [][]string{{"2", "{1,2}"}, {"2", "{3,4}"}}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("got %v, want %v", got, want)
	}
}

func TestSGBThreeDimensionalGrouping(t *testing.T) {
	db := NewDB()
	if _, err := db.Exec("CREATE TABLE p3 (id INT, x FLOAT, y FLOAT, z FLOAT)"); err != nil {
		t.Fatal(err)
	}
	// Two 3-D clusters separated along z.
	if _, err := db.Exec(`INSERT INTO p3 VALUES
		(1, 0, 0, 0), (2, 1, 1, 1), (3, 0, 1, 0),
		(4, 0, 0, 50), (5, 1, 1, 51)`); err != nil {
		t.Fatal(err)
	}
	got := queryStrings(t, db, `
		SELECT count(*) FROM p3
		GROUP BY x, y, z DISTANCE-TO-ANY L2 WITHIN 3
		ORDER BY count(*)`)
	want := [][]string{{"2"}, {"3"}}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("3-D SGB = %v, want %v", got, want)
	}
}

func TestSGBOneDimensionalGrouping(t *testing.T) {
	db := NewDB()
	if _, err := db.Exec("CREATE TABLE p1 (v FLOAT)"); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Exec("INSERT INTO p1 VALUES (1), (1.5), (2), (10), (10.5)"); err != nil {
		t.Fatal(err)
	}
	got := queryStrings(t, db, `
		SELECT count(*), min(v), max(v) FROM p1
		GROUP BY v DISTANCE-TO-ALL L2 WITHIN 1 ON-OVERLAP JOIN-ANY
		ORDER BY min(v)`)
	want := [][]string{{"3", "1", "2"}, {"2", "10", "10.5"}}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("1-D SGB = %v, want %v", got, want)
	}
}

func TestSGBInDerivedTable(t *testing.T) {
	db := sgbDB(t)
	// The SGB result feeds an outer aggregation: total groups and members.
	got := queryStrings(t, db, `
		SELECT count(*), sum(r.members)
		FROM (SELECT count(*) AS members FROM pts
		      GROUP BY x, y DISTANCE-TO-ANY LINF WITHIN 3) AS r`)
	want := [][]string{{"1", "5"}}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("got %v, want %v", got, want)
	}
}

func TestSGBAfterJoinAndFilter(t *testing.T) {
	db := sgbDB(t)
	if _, err := db.Exec("CREATE TABLE labels (id INT, tag TEXT)"); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Exec(`INSERT INTO labels VALUES
		(1, 'keep'), (2, 'keep'), (3, 'keep'), (4, 'drop'), (5, 'keep')`); err != nil {
		t.Fatal(err)
	}
	// SGB over the join result: point 4 is filtered out upstream, so the
	// right cluster is a singleton {3} and point 5 still bridges nothing
	// under ALL semantics.
	got := queryStrings(t, db, `
		SELECT count(*) FROM pts, labels
		WHERE pts.id = labels.id AND labels.tag = 'keep'
		GROUP BY x, y DISTANCE-TO-ALL LINF WITHIN 3 ON-OVERLAP ELIMINATE
		ORDER BY count(*)`)
	if len(got) == 0 {
		t.Fatal("SGB over join produced no groups")
	}
	var total int64
	for _, r := range got {
		var n int64
		fmt.Sscan(r[0], &n)
		total += n
	}
	if total > 4 {
		t.Fatalf("grouped more tuples (%d) than survived the filter (4)", total)
	}
}

func TestSGBAlgorithmChoiceDoesNotChangeAnswers(t *testing.T) {
	db := NewDB()
	if _, err := db.Exec("CREATE TABLE rp (x FLOAT, y FLOAT)"); err != nil {
		t.Fatal(err)
	}
	r := rand.New(rand.NewSource(7))
	tbl, _ := db.Catalog().Get("rp")
	for i := 0; i < 300; i++ {
		if err := tbl.Insert(Row{NewFloat(r.Float64() * 10), NewFloat(r.Float64() * 10)}); err != nil {
			t.Fatal(err)
		}
	}
	q := `SELECT count(*) FROM rp
	      GROUP BY x, y DISTANCE-TO-ALL L2 WITHIN 0.8 ON-OVERLAP ELIMINATE
	      ORDER BY count(*)`
	var results [][][]string
	for _, alg := range []core.Algorithm{core.AllPairs, core.BoundsChecking, core.IndexBounds} {
		db.SetSGBAlgorithm(alg)
		results = append(results, queryStrings(t, db, q))
	}
	if !reflect.DeepEqual(results[0], results[1]) || !reflect.DeepEqual(results[1], results[2]) {
		t.Fatal("SGB answers depend on the physical algorithm")
	}
	if st := db.LastSGBStats(); st == nil || st.Points != 300 {
		t.Fatalf("stats not exposed: %+v", db.LastSGBStats())
	}
}

func TestSGBErrorsOnBadAttributes(t *testing.T) {
	db := NewDB()
	if _, err := db.Exec("CREATE TABLE bad (x FLOAT, s TEXT)"); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Exec("INSERT INTO bad VALUES (1, 'a'), (NULL, 'b')"); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Query(`SELECT count(*) FROM bad GROUP BY x, s DISTANCE-TO-ALL L2 WITHIN 1`); err == nil {
		t.Error("text grouping attribute accepted")
	}
	if _, err := db.Query(`SELECT count(*) FROM bad GROUP BY x DISTANCE-TO-ALL L2 WITHIN 1`); err == nil {
		t.Error("NULL grouping attribute accepted")
	}
}

func TestSGBEmptyInput(t *testing.T) {
	db := NewDB()
	if _, err := db.Exec("CREATE TABLE empty (x FLOAT, y FLOAT)"); err != nil {
		t.Fatal(err)
	}
	res, err := db.Query(`SELECT count(*) FROM empty
		GROUP BY x, y DISTANCE-TO-ALL L2 WITHIN 1`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 0 {
		t.Fatalf("SGB over empty input produced %d rows", len(res.Rows))
	}
}

func TestSGBL1MetricViaSQL(t *testing.T) {
	db := NewDB()
	if _, err := db.Exec("CREATE TABLE l1 (x FLOAT, y FLOAT)"); err != nil {
		t.Fatal(err)
	}
	// L1 distance between (0,0) and (1.5,1.5) is 3 > 2; L∞ is 1.5 < 2.
	if _, err := db.Exec("INSERT INTO l1 VALUES (0, 0), (1.5, 1.5)"); err != nil {
		t.Fatal(err)
	}
	res, err := db.Query(`SELECT count(*) FROM l1
		GROUP BY x, y DISTANCE-TO-ALL L1 WITHIN 2`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("L1 grouped %d groups, want 2 (points are 3 apart in L1)", len(res.Rows))
	}
	res, err = db.Query(`SELECT count(*) FROM l1
		GROUP BY x, y DISTANCE-TO-ALL LINF WITHIN 2`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 {
		t.Fatalf("LINF grouped %d groups, want 1", len(res.Rows))
	}
}
