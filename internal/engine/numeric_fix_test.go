package engine

import (
	"fmt"
	"reflect"
	"testing"
)

// TestJoinKeyLargeIntsNoCollision: int keys above 2^53 are not representable
// as distinct float64s; the join must keep them exact instead of widening to
// float and colliding adjacent keys.
func TestJoinKeyLargeIntsNoCollision(t *testing.T) {
	db := NewDB()
	for _, sql := range []string{
		"CREATE TABLE a (k INT, tag TEXT)",
		"CREATE TABLE b (k INT, tag TEXT)",
		// 2^53 and 2^53+1 round to the same float64.
		"INSERT INTO a VALUES (9007199254740992, 'a-even'), (9007199254740993, 'a-odd')",
		"INSERT INTO b VALUES (9007199254740993, 'b-odd')",
	} {
		if _, err := db.Exec(sql); err != nil {
			t.Fatalf("%s: %v", sql, err)
		}
	}
	got := queryStrings(t, db, "SELECT a.tag, b.tag FROM a, b WHERE a.k = b.k ORDER BY a.tag")
	want := [][]string{{"a-odd", "b-odd"}}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("join matched %v, want %v (2^53 collision?)", got, want)
	}
}

// TestJoinKeyIntFloatStillMatch: the collision fix must not break ordinary
// cross-type equality — INT 3 joins FLOAT 3.0.
func TestJoinKeyIntFloatStillMatch(t *testing.T) {
	db := NewDB()
	for _, sql := range []string{
		"CREATE TABLE ai (k INT)",
		"CREATE TABLE bf (k FLOAT)",
		"INSERT INTO ai VALUES (3), (4)",
		"INSERT INTO bf VALUES (3.0), (4.5)",
	} {
		if _, err := db.Exec(sql); err != nil {
			t.Fatalf("%s: %v", sql, err)
		}
	}
	got := queryStrings(t, db, "SELECT ai.k FROM ai, bf WHERE ai.k = bf.k")
	want := [][]string{{"3"}}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("int-float join got %v, want %v", got, want)
	}
}

// TestIndexLookupLargeInts: the hash index shares the canonical key encoding
// and must distinguish neighbouring >2^53 keys too.
func TestIndexLookupLargeInts(t *testing.T) {
	db := NewDB()
	for _, sql := range []string{
		"CREATE TABLE big (k INT, tag TEXT)",
		"INSERT INTO big VALUES (9007199254740992, 'even'), (9007199254740993, 'odd')",
		"CREATE INDEX big_k ON big (k)",
	} {
		if _, err := db.Exec(sql); err != nil {
			t.Fatalf("%s: %v", sql, err)
		}
	}
	got := queryStrings(t, db, "SELECT tag FROM big WHERE k = 9007199254740993")
	want := [][]string{{"odd"}}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("index lookup got %v, want %v", got, want)
	}
}

// TestSumOverflowPromotesToFloat: an int64-overflowing SUM degrades to float
// instead of silently wrapping negative.
func TestSumOverflowPromotesToFloat(t *testing.T) {
	db := NewDB()
	if _, err := db.Exec("CREATE TABLE n (v INT)"); err != nil {
		t.Fatal(err)
	}
	big := int64(1) << 62
	if _, err := db.Exec(fmt.Sprintf("INSERT INTO n VALUES (%d), (%d), (%d)", big, big, big)); err != nil {
		t.Fatal(err)
	}
	res, err := db.Query("SELECT sum(v) FROM n")
	if err != nil {
		t.Fatal(err)
	}
	v := res.Rows[0][0]
	if v.T != TypeFloat {
		t.Fatalf("overflowing sum stayed %s (%s) — wrapped?", v.T, v)
	}
	want := 3 * float64(big)
	if v.F != want {
		t.Fatalf("sum = %v, want %v", v.F, want)
	}

	// Non-overflowing int sums must remain exact ints.
	got := queryStrings(t, db, "SELECT sum(v) FROM n WHERE v < 0")
	if got[0][0] != "NULL" {
		t.Fatalf("empty sum = %v, want NULL", got[0][0])
	}
	if _, err := db.Exec("DELETE FROM n"); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Exec("INSERT INTO n VALUES (9007199254740993), (1)"); err != nil {
		t.Fatal(err)
	}
	got = queryStrings(t, db, "SELECT sum(v) FROM n")
	if got[0][0] != "9007199254740994" {
		t.Fatalf("exact int sum = %v, want 9007199254740994", got[0][0])
	}
}

// TestSumNegativeOverflow: the overflow check must catch the negative
// direction as well.
func TestSumNegativeOverflow(t *testing.T) {
	db := NewDB()
	if _, err := db.Exec("CREATE TABLE n (v INT)"); err != nil {
		t.Fatal(err)
	}
	big := -(int64(1) << 62)
	if _, err := db.Exec(fmt.Sprintf("INSERT INTO n VALUES (%d), (%d), (%d)", big, big, big)); err != nil {
		t.Fatal(err)
	}
	res, err := db.Query("SELECT sum(v) FROM n")
	if err != nil {
		t.Fatal(err)
	}
	v := res.Rows[0][0]
	if v.T != TypeFloat || v.F != 3*float64(big) {
		t.Fatalf("sum = %s %v, want float %v", v.T, v, 3*float64(big))
	}
}
