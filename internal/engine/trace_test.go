package engine

// Tests for the trace plumbing added for end-to-end query observability:
// caller-supplied traces (ExecContextTrace) accumulate the engine's spans and
// state transitions under the caller's trace ID, plan-capture sampling stashes
// EXPLAIN ANALYZE actuals on sampled statements only, and the commit hook sees
// the statement's trace so the durability layer can add its own spans.

import (
	"context"
	"strings"
	"testing"
	"time"

	"sgb/internal/obs"
)

func traceDB(t *testing.T) *DB {
	t.Helper()
	db := NewDB()
	if _, err := db.Exec("CREATE TABLE pts (id INT, x FLOAT, y FLOAT)"); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Exec("INSERT INTO pts VALUES (1, 0.0, 0.0), (2, 1.0, 1.0), (3, 5.0, 5.0)"); err != nil {
		t.Fatal(err)
	}
	return db
}

// TestExecContextTraceThreading: a caller-minted trace passed through
// ExecContextTrace keeps its ID, collects the parse/plan/execute spans, and
// ends in the "done"-adjacent terminal the caller left it in — the engine
// must never reset the state after the statement.
func TestExecContextTraceThreading(t *testing.T) {
	db := traceDB(t)
	sess := db.NewSession()
	id := obs.NewTraceID()
	tr := obs.NewTraceWithID(id)
	res, err := sess.ExecContextTrace(context.Background(), "SELECT count(*) FROM pts", tr)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 || res.Rows[0][0].I != 3 {
		t.Fatalf("bad result: %+v", res.Rows)
	}
	if tr.ID() != id {
		t.Errorf("trace ID changed: %s -> %s", id, tr.ID())
	}
	var names []string
	for _, sp := range tr.Spans() {
		names = append(names, sp.Name)
	}
	if got := strings.Join(names, ","); got != "parse,plan,execute" {
		t.Errorf("spans = %s, want parse,plan,execute", got)
	}
	if st := tr.State(); st != "executing" {
		t.Errorf("final engine state = %q, want executing (the caller owns later transitions)", st)
	}
	// The session's trace is the same object the caller handed in.
	if db.LastTrace() != tr {
		t.Error("LastTrace is not the caller-supplied trace")
	}
}

// TestTraceStatesDML: a plain write transitions parsing → executing →
// committing (when a commit hook is installed) and records an execute span.
func TestTraceStatesDML(t *testing.T) {
	db := traceDB(t)
	var states []string
	var hookTrace *obs.Trace
	db.SetCommitHook(func(stmt Statement, sql string, tr *obs.Trace) error {
		hookTrace = tr
		states = append(states, tr.State())
		tr.AddSpan("wal_fsync", time.Now(), time.Millisecond)
		return nil
	})
	sess := db.NewSession()
	tr := obs.NewTrace()
	if _, err := sess.ExecContextTrace(context.Background(),
		"INSERT INTO pts VALUES (4, 2.0, 2.0)", tr); err != nil {
		t.Fatal(err)
	}
	if hookTrace != tr {
		t.Fatal("commit hook did not receive the statement's trace")
	}
	if len(states) != 1 || states[0] != "committing" {
		t.Errorf("hook observed state %v, want [committing]", states)
	}
	var names []string
	for _, sp := range tr.Spans() {
		names = append(names, sp.Name)
	}
	if got := strings.Join(names, ","); got != "parse,execute,wal_fsync" {
		t.Errorf("spans = %s, want parse,execute,wal_fsync", got)
	}
}

// TestTraceSampling: sampling 1 captures the EXPLAIN ANALYZE plan with
// actuals on every statement; sampling 0 never does.
func TestTraceSampling(t *testing.T) {
	db := traceDB(t)
	db.SetTraceSampling(1)
	if _, err := db.Exec("SELECT count(*) FROM pts GROUP BY x, y DISTANCE-TO-ANY L2 WITHIN 1.5"); err != nil {
		t.Fatal(err)
	}
	tr := db.LastTrace()
	if tr == nil || len(tr.Plan()) == 0 {
		t.Fatal("sampled statement captured no plan")
	}
	plan := strings.Join(tr.Plan(), "\n")
	if !strings.Contains(plan, "rows=") {
		t.Errorf("sampled plan has no actuals:\n%s", plan)
	}

	db.SetTraceSampling(0)
	if _, err := db.Exec("SELECT count(*) FROM pts"); err != nil {
		t.Fatal(err)
	}
	if tr := db.LastTrace(); tr != nil && len(tr.Plan()) != 0 {
		t.Errorf("unsampled statement captured a plan: %v", tr.Plan())
	}
	if got := db.Metrics().Snapshot().Counters["engine_statements_sampled_total"]; got != 1 {
		t.Errorf("engine_statements_sampled_total = %d, want 1", got)
	}
}

// TestTraceSamplingNth: with n=2, every other statement is sampled.
func TestTraceSamplingNth(t *testing.T) {
	db := traceDB(t)
	db.SetTraceSampling(2)
	sampled := 0
	for i := 0; i < 6; i++ {
		if _, err := db.Exec("SELECT count(*) FROM pts"); err != nil {
			t.Fatal(err)
		}
		if tr := db.LastTrace(); tr != nil && len(tr.Plan()) > 0 {
			sampled++
		}
	}
	if sampled != 3 {
		t.Errorf("sampled %d of 6 statements at rate 2, want 3", sampled)
	}
}

// TestInsertSelectSampledPlan: INSERT .. SELECT under sampling records plan
// and execute spans plus the embedded query's plan actuals.
func TestInsertSelectSampledPlan(t *testing.T) {
	db := traceDB(t)
	db.SetTraceSampling(1)
	if _, err := db.Exec("CREATE TABLE dst (x FLOAT, c INT)"); err != nil {
		t.Fatal(err)
	}
	sess := db.NewSession()
	tr := obs.NewTrace()
	if _, err := sess.ExecContextTrace(context.Background(),
		"INSERT INTO dst SELECT x, count(*) FROM pts GROUP BY x, y DISTANCE-TO-ANY L2 WITHIN 1.5", tr); err != nil {
		t.Fatal(err)
	}
	var names []string
	for _, sp := range tr.Spans() {
		names = append(names, sp.Name)
	}
	if got := strings.Join(names, ","); got != "parse,plan,execute" {
		t.Errorf("spans = %s, want parse,plan,execute", got)
	}
	if len(tr.Plan()) == 0 {
		t.Error("sampled INSERT..SELECT captured no plan")
	}
}
