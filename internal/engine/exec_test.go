package engine

import (
	"reflect"
	"sort"
	"strings"
	"testing"
)

// testDB builds a database with a few small tables.
func testDB(t *testing.T) *DB {
	t.Helper()
	db := NewDB()
	mustExec := func(sql string) {
		t.Helper()
		if _, err := db.Exec(sql); err != nil {
			t.Fatalf("%s: %v", sql, err)
		}
	}
	mustExec("CREATE TABLE emp (id INT, name TEXT, dept INT, salary FLOAT)")
	mustExec(`INSERT INTO emp VALUES
		(1, 'ann', 10, 1000.0),
		(2, 'bob', 10, 1200.0),
		(3, 'cat', 20, 900.0),
		(4, 'dan', 20, 1500.0),
		(5, 'eve', 30, 2000.0)`)
	mustExec("CREATE TABLE dept (id INT, dname TEXT)")
	mustExec("INSERT INTO dept VALUES (10, 'eng'), (20, 'ops'), (30, 'hr')")
	return db
}

func queryStrings(t *testing.T, db *DB, sql string) [][]string {
	t.Helper()
	res, err := db.Query(sql)
	if err != nil {
		t.Fatalf("%s: %v", sql, err)
	}
	out := make([][]string, len(res.Rows))
	for i, r := range res.Rows {
		row := make([]string, len(r))
		for j, v := range r {
			row[j] = v.String()
		}
		out[i] = row
	}
	return out
}

func TestSelectFilterProject(t *testing.T) {
	db := testDB(t)
	got := queryStrings(t, db, "SELECT name, salary * 2 AS double FROM emp WHERE dept = 10 ORDER BY name")
	want := [][]string{{"ann", "2000"}, {"bob", "2400"}}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("got %v, want %v", got, want)
	}
}

func TestSelectStar(t *testing.T) {
	db := testDB(t)
	res, err := db.Query("SELECT * FROM dept ORDER BY id")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 3 || len(res.Columns) != 2 {
		t.Fatalf("rows=%d cols=%v", len(res.Rows), res.Columns)
	}
	if res.Columns[0] != "id" || res.Columns[1] != "dname" {
		t.Fatalf("columns = %v", res.Columns)
	}
}

func TestSelectNoFrom(t *testing.T) {
	db := NewDB()
	got := queryStrings(t, db, "SELECT 1 + 2, 'a' || 'b', -3.5, NOT FALSE")
	want := [][]string{{"3", "ab", "-3.5", "true"}}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("got %v", got)
	}
}

func TestHashJoin(t *testing.T) {
	db := testDB(t)
	got := queryStrings(t, db,
		"SELECT e.name, d.dname FROM emp e, dept d WHERE e.dept = d.id AND e.salary >= 1200 ORDER BY e.name")
	want := [][]string{{"bob", "eng"}, {"dan", "ops"}, {"eve", "hr"}}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("got %v, want %v", got, want)
	}
}

func TestJoinSugar(t *testing.T) {
	db := testDB(t)
	got := queryStrings(t, db,
		"SELECT e.name FROM emp e JOIN dept d ON e.dept = d.id WHERE d.dname = 'eng' ORDER BY e.name")
	want := [][]string{{"ann"}, {"bob"}}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("got %v, want %v", got, want)
	}
}

func TestCrossJoinFallback(t *testing.T) {
	db := testDB(t)
	res, err := db.Query("SELECT e.name, d.dname FROM emp e, dept d WHERE e.salary > 1900")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 3 { // eve × 3 departments
		t.Fatalf("cross join rows = %d, want 3", len(res.Rows))
	}
}

func TestGroupByAggregates(t *testing.T) {
	db := testDB(t)
	got := queryStrings(t, db,
		"SELECT dept, count(*), sum(salary), min(salary), max(salary), avg(salary) FROM emp GROUP BY dept ORDER BY dept")
	want := [][]string{
		{"10", "2", "2200", "1000", "1200", "1100"},
		{"20", "2", "2400", "900", "1500", "1200"},
		{"30", "1", "2000", "2000", "2000", "2000"},
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("got %v, want %v", got, want)
	}
}

func TestGroupByHaving(t *testing.T) {
	db := testDB(t)
	got := queryStrings(t, db,
		"SELECT dept FROM emp GROUP BY dept HAVING count(*) > 1 ORDER BY dept")
	want := [][]string{{"10"}, {"20"}}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("got %v, want %v", got, want)
	}
}

func TestGlobalAggregate(t *testing.T) {
	db := testDB(t)
	got := queryStrings(t, db, "SELECT count(*), sum(salary) FROM emp")
	want := [][]string{{"5", "6600"}}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("got %v", got)
	}
	// Global aggregate over empty input yields one row.
	got = queryStrings(t, db, "SELECT count(*) FROM emp WHERE salary > 99999")
	want = [][]string{{"0"}}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("empty aggregate got %v", got)
	}
}

func TestArrayAggAndListID(t *testing.T) {
	db := testDB(t)
	got := queryStrings(t, db,
		"SELECT dept, array_agg(name) FROM emp GROUP BY dept ORDER BY dept")
	if got[0][1] != "{ann,bob}" {
		t.Fatalf("array_agg = %q", got[0][1])
	}
	got = queryStrings(t, db,
		"SELECT dept, list_id(id) FROM emp GROUP BY dept ORDER BY dept")
	if got[1][1] != "{3,4}" {
		t.Fatalf("list_id = %q", got[1][1])
	}
}

func TestDerivedTableAndInSubquery(t *testing.T) {
	db := testDB(t)
	got := queryStrings(t, db, `
		SELECT r.dept, r.total FROM
		(SELECT dept, sum(salary) AS total FROM emp GROUP BY dept) AS r
		WHERE r.total > 2100 ORDER BY r.dept`)
	want := [][]string{{"10", "2200"}, {"20", "2400"}}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("got %v, want %v", got, want)
	}
	got = queryStrings(t, db, `
		SELECT name FROM emp
		WHERE dept IN (SELECT id FROM dept WHERE dname = 'eng' OR dname = 'hr')
		ORDER BY name`)
	want = [][]string{{"ann"}, {"bob"}, {"eve"}}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("got %v, want %v", got, want)
	}
	got = queryStrings(t, db, `
		SELECT name FROM emp WHERE dept NOT IN (SELECT id FROM dept WHERE dname = 'eng') AND salary < 1600
		ORDER BY name`)
	want = [][]string{{"cat"}, {"dan"}}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("got %v, want %v", got, want)
	}
}

func TestInList(t *testing.T) {
	db := testDB(t)
	got := queryStrings(t, db, "SELECT name FROM emp WHERE id IN (1, 3, 5) ORDER BY name")
	want := [][]string{{"ann"}, {"cat"}, {"eve"}}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("got %v", got)
	}
}

func TestLimitAndOrder(t *testing.T) {
	db := testDB(t)
	got := queryStrings(t, db, "SELECT name FROM emp ORDER BY salary DESC LIMIT 2")
	want := [][]string{{"eve"}, {"dan"}}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("got %v", got)
	}
	got = queryStrings(t, db, "SELECT name FROM emp ORDER BY dept, salary DESC LIMIT 3")
	want = [][]string{{"bob"}, {"ann"}, {"dan"}}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("got %v", got)
	}
}

func TestScalarFunctions(t *testing.T) {
	db := NewDB()
	got := queryStrings(t, db,
		"SELECT abs(-4), sqrt(9.0), floor(2.7), ceil(2.1), mod(7, 3), least(3, 1, 2), greatest(3, 1, 2), coalesce(NULL, 5), length('abc'), upper('ab'), lower('AB')")
	want := [][]string{{"4", "3", "2", "3", "1", "1", "3", "5", "3", "AB", "ab"}}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("got %v", got)
	}
}

func TestErrorPaths(t *testing.T) {
	db := testDB(t)
	bad := []string{
		"SELECT zzz FROM emp",
		"SELECT name FROM nosuch",
		"SELECT name FROM emp WHERE salary / 0 > 1",
		"SELECT name, count(*) FROM emp GROUP BY dept", // name not grouped
		"SELECT sum(name) FROM emp",
		"SELECT sum(count(*)) FROM emp",
		"SELECT * , name FROM emp",
		"SELECT nosuchfunc(1)",
		"SELECT name FROM emp WHERE dept IN (SELECT id, dname FROM dept)", // 2-col subquery
	}
	for _, sql := range bad {
		if _, err := db.Query(sql); err == nil {
			t.Errorf("query succeeded unexpectedly: %s", sql)
		}
	}
	if _, err := db.Exec("INSERT INTO emp VALUES (1, 'x')"); err == nil {
		t.Error("arity-mismatched insert accepted")
	}
	if _, err := db.Query("CREATE TABLE x (a INT)"); err == nil {
		t.Error("Query accepted DDL")
	}
}

func TestNullSemantics(t *testing.T) {
	db := NewDB()
	if _, err := db.Exec("CREATE TABLE n (a INT, b INT)"); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Exec("INSERT INTO n VALUES (1, NULL), (2, 5), (NULL, 7)"); err != nil {
		t.Fatal(err)
	}
	// NULL comparisons are not true.
	got := queryStrings(t, db, "SELECT a FROM n WHERE b > 1 ORDER BY a")
	if len(got) != 2 {
		t.Fatalf("got %v", got)
	}
	// count(col) skips NULLs; count(*) does not; sum skips NULLs.
	got = queryStrings(t, db, "SELECT count(*), count(a), count(b), sum(b) FROM n")
	want := [][]string{{"3", "2", "2", "12"}}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("got %v", got)
	}
	// NULL join keys never match.
	if _, err := db.Exec("CREATE TABLE m (a INT)"); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Exec("INSERT INTO m VALUES (NULL), (1)"); err != nil {
		t.Fatal(err)
	}
	got = queryStrings(t, db, "SELECT n.a FROM n, m WHERE n.a = m.a")
	if len(got) != 1 || got[0][0] != "1" {
		t.Fatalf("null join keys matched: %v", got)
	}
}

func TestInsertThroughSQLAndRowsAffected(t *testing.T) {
	db := NewDB()
	if _, err := db.Exec("CREATE TABLE t (a INT)"); err != nil {
		t.Fatal(err)
	}
	res, err := db.Exec("INSERT INTO t VALUES (1), (2), (3)")
	if err != nil || res.RowsAffected != 3 {
		t.Fatalf("insert result = %+v, %v", res, err)
	}
	res, err = db.Exec("DROP TABLE t")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := db.Query("SELECT a FROM t"); err == nil {
		t.Error("dropped table still queryable")
	}
}

func TestAggregateDeduplication(t *testing.T) {
	// The same aggregate used twice (SELECT + HAVING) is computed once; the
	// observable behaviour is simply that both references agree.
	db := testDB(t)
	got := queryStrings(t, db,
		"SELECT dept, count(*) FROM emp GROUP BY dept HAVING count(*) = 2 ORDER BY dept")
	want := [][]string{{"10", "2"}, {"20", "2"}}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("got %v", got)
	}
}

func TestGroupByExpression(t *testing.T) {
	db := testDB(t)
	got := queryStrings(t, db,
		"SELECT dept / 10, count(*) FROM emp GROUP BY dept / 10 ORDER BY dept / 10")
	want := [][]string{{"1", "2"}, {"2", "2"}, {"3", "1"}}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("got %v", got)
	}
}

func TestOrderByAlias(t *testing.T) {
	db := testDB(t)
	got := queryStrings(t, db, "SELECT name, salary AS s FROM emp ORDER BY s DESC LIMIT 1")
	if got[0][0] != "eve" {
		t.Fatalf("got %v", got)
	}
}

func TestDeterministicAggOutputOrder(t *testing.T) {
	db := testDB(t)
	a := queryStrings(t, db, "SELECT dept, count(*) FROM emp GROUP BY dept")
	for i := 0; i < 5; i++ {
		b := queryStrings(t, db, "SELECT dept, count(*) FROM emp GROUP BY dept")
		if !reflect.DeepEqual(a, b) {
			t.Fatal("aggregate output order is nondeterministic")
		}
	}
	keys := make([]string, len(a))
	for i, r := range a {
		keys[i] = r[0]
	}
	if !sort.StringsAreSorted(keys) {
		t.Fatalf("aggregate output not key-ordered: %v", keys)
	}
}

func TestCaseInsensitiveKeywordsAndIdents(t *testing.T) {
	db := testDB(t)
	got := queryStrings(t, db, "select NAME from EMP where DEPT = 30")
	if len(got) != 1 || got[0][0] != "eve" {
		t.Fatalf("got %v", got)
	}
}

func TestConcatOperatorInWhere(t *testing.T) {
	db := testDB(t)
	got := queryStrings(t, db, "SELECT name FROM emp WHERE name || 'x' = 'annx'")
	if len(got) != 1 || got[0][0] != "ann" {
		t.Fatalf("got %v", got)
	}
}

func TestStPolygonAggregate(t *testing.T) {
	db := NewDB()
	if _, err := db.Exec("CREATE TABLE pts (g INT, x FLOAT, y FLOAT)"); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Exec(`INSERT INTO pts VALUES
		(1, 0, 0), (1, 4, 0), (1, 4, 4), (1, 0, 4), (1, 2, 2),
		(2, 9, 9)`); err != nil {
		t.Fatal(err)
	}
	got := queryStrings(t, db, "SELECT g, st_polygon(x, y) FROM pts GROUP BY g ORDER BY g")
	if !strings.HasPrefix(got[0][1], "POLYGON((") || strings.Contains(got[0][1], "2 2") {
		t.Fatalf("hull polygon = %q", got[0][1])
	}
	if got[1][1] != "POINT(9 9)" {
		t.Fatalf("degenerate polygon = %q", got[1][1])
	}
}
