package engine

import (
	"context"
	"fmt"
	"sync"
)

// Memory-footprint estimates for the governor's accounting. Charges are
// deliberately coarse — slice headers, Value boxes, hash-bucket overhead —
// because the governor bounds aggregate pressure, not exact bytes; what
// matters is that charges are proportional to real allocations and are
// applied per batch/bucket, never per row in a hot loop.
const (
	// memValueBytes approximates one boxed engine.Value (interface header +
	// typical payload).
	memValueBytes = 48
	// memRowOverheadBytes approximates one materialized row's slice header
	// and allocator slack.
	memRowOverheadBytes = 24
	// memBucketOverheadBytes approximates one aggregation hash bucket
	// (map entry, key string header, accumulator structs).
	memBucketOverheadBytes = 96
)

// memRowBytes estimates one materialized row of the given width.
func memRowBytes(width int) int64 {
	return memRowOverheadBytes + memValueBytes*int64(width)
}

// memSmallFryDivisor: a statement whose own charged footprint is below
// budget/memSmallFryDivisor is never failed by *global* pressure — the pool
// briefly overshoots instead. This sheds the elephant that drove the pool
// over the line, not the mouse that happened to allocate next; per-query
// limits still apply to everyone.
const memSmallFryDivisor = 64

// defaultMemQueueCap bounds how many over-budget statements may wait for
// admission before new arrivals are shed outright.
const defaultMemQueueCap = 16

// memGovernor is the process-wide memory budget for statement scratch. It
// admits statements (queueing or shedding when the pool is exhausted), tracks
// usage charged through per-statement memAccounts plus non-failing background
// reservations (matview delta rings), and fails the allocation that drives
// the pool over budget with a global-scoped ResourceLimitError.
type memGovernor struct {
	db *DB // metrics sink

	mu       sync.Mutex
	budget   int64 // 0 = no budget (accounting still runs for the gauge)
	used     int64
	queueCap int
	waiters  []chan struct{} // FIFO admission queue
}

// setBudget installs the process budget; 0 removes it and wakes everything.
func (g *memGovernor) setBudget(bytes int64) {
	g.mu.Lock()
	g.budget = bytes
	if g.queueCap == 0 {
		g.queueCap = defaultMemQueueCap
	}
	g.wakeLocked()
	g.mu.Unlock()
	g.publish()
}

func (g *memGovernor) setQueueCap(n int) {
	g.mu.Lock()
	if n <= 0 {
		n = defaultMemQueueCap
	}
	g.queueCap = n
	g.mu.Unlock()
}

func (g *memGovernor) budgetBytes() int64 {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.budget
}

func (g *memGovernor) usedBytes() int64 {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.used
}

// admit gates one statement on the memory budget. When the pool has headroom
// (or no budget is set) it returns immediately; when exhausted the statement
// waits in a bounded FIFO queue for released memory, and beyond the queue cap
// it is shed with a global-scoped ResourceLimitError. The returned account
// (nil when no budget and no per-query limit apply — accounting then costs
// nothing) must be released when the statement finishes.
func (g *memGovernor) admit(ctx context.Context, perQueryLimit int64) (*memAccount, error) {
	g.mu.Lock()
	if g.budget <= 0 && perQueryLimit <= 0 {
		g.mu.Unlock()
		return nil, nil
	}
	m := g.db.Metrics()
	if g.budget > 0 && g.used >= g.budget {
		if len(g.waiters) >= g.queueCap {
			used, budget := g.used, g.budget
			g.mu.Unlock()
			m.Counter("engine_mem_queries_shed_total").Inc()
			return nil, &ResourceLimitError{
				Resource: "memory",
				Scope:    LimitScopeGlobal,
				Limit:    fmt.Sprintf("%d of %d budget bytes in use, admission queue full", used, budget),
			}
		}
		ch := make(chan struct{})
		g.waiters = append(g.waiters, ch)
		queued := len(g.waiters)
		g.mu.Unlock()
		m.Counter("engine_mem_admission_waits_total").Inc()
		m.Gauge("engine_mem_admission_queued").Set(float64(queued))
		select {
		case <-ch:
		case <-ctx.Done():
			g.abandon(ch)
			return nil, ctx.Err()
		}
	} else {
		g.mu.Unlock()
	}
	return &memAccount{gov: g, limit: perQueryLimit}, nil
}

// abandon removes a canceled waiter; if its slot was already granted, the
// grant is passed on so a release is never lost.
func (g *memGovernor) abandon(ch chan struct{}) {
	g.mu.Lock()
	defer g.mu.Unlock()
	for i, w := range g.waiters {
		if w == ch {
			g.waiters = append(g.waiters[:i], g.waiters[i+1:]...)
			return
		}
	}
	// Not queued anymore: release already closed ch. Wake the next waiter in
	// its place.
	g.wakeLocked()
}

// grow charges n freshly allocated bytes. acctTotal is the charging
// statement's own running total, used for the small-fry exemption.
func (g *memGovernor) grow(n, acctTotal int64) error {
	g.mu.Lock()
	g.used += n
	over := g.budget > 0 && g.used > g.budget && acctTotal > g.budget/memSmallFryDivisor
	used, budget := g.used, g.budget
	g.mu.Unlock()
	g.publish()
	if over {
		g.db.Metrics().Counter("engine_mem_limit_errors_total").Inc()
		return &ResourceLimitError{
			Resource: "memory",
			Scope:    LimitScopeGlobal,
			Limit:    fmt.Sprintf("%d bytes in use of %d budget", used, budget),
		}
	}
	return nil
}

// release returns n bytes to the pool and wakes queued statements that now
// fit.
func (g *memGovernor) release(n int64) {
	if n == 0 {
		return
	}
	g.mu.Lock()
	g.used -= n
	if g.used < 0 {
		g.used = 0
	}
	g.wakeLocked()
	g.mu.Unlock()
	g.publish()
}

// reserve adjusts the pool by n bytes (negative frees) on behalf of
// background subsystems. It never fails: background state must not break
// commits; the reservation just makes admission decisions see the true
// footprint.
func (g *memGovernor) reserve(n int64) {
	g.mu.Lock()
	g.used += n
	if g.used < 0 {
		g.used = 0
	}
	if n < 0 {
		g.wakeLocked()
	}
	g.mu.Unlock()
	g.publish()
}

// wakeLocked admits queued statements while the pool has headroom. Admission
// is optimistic — all woken statements start charging and the one that drives
// the pool back over fails then — so a single release can unblock several
// small queries at once.
func (g *memGovernor) wakeLocked() {
	for len(g.waiters) > 0 && (g.budget <= 0 || g.used < g.budget) {
		close(g.waiters[0])
		g.waiters = g.waiters[1:]
	}
}

// publish refreshes the engine_mem_* gauges.
func (g *memGovernor) publish() {
	g.mu.Lock()
	used, budget, queued := g.used, g.budget, len(g.waiters)
	g.mu.Unlock()
	m := g.db.Metrics()
	m.Gauge("engine_mem_used_bytes").Set(float64(used))
	m.Gauge("engine_mem_budget_bytes").Set(float64(budget))
	m.Gauge("engine_mem_admission_queued").Set(float64(queued))
}

// memAccount is one statement's ledger with the governor. Charges go through
// grow (atomic per-account total + shared pool); the full total is returned
// to the pool in one release when the statement ends.
type memAccount struct {
	gov   *memGovernor
	limit int64 // per-query cap; 0 = none
	mu    sync.Mutex
	used  int64
}

// grow charges n bytes: per-query limit first (query-scoped error), then the
// shared pool (global-scoped error on exhaustion).
func (a *memAccount) grow(n int64) error {
	if a == nil || n <= 0 {
		return nil
	}
	a.mu.Lock()
	a.used += n
	total := a.used
	a.mu.Unlock()
	if a.limit > 0 && total > a.limit {
		a.gov.db.Metrics().Counter("engine_mem_limit_errors_total").Inc()
		return &ResourceLimitError{
			Resource: "memory",
			Limit:    fmt.Sprintf("%d bytes charged of %d per-query budget", total, a.limit),
		}
	}
	return a.gov.grow(n, total)
}

// release returns everything the statement charged.
func (a *memAccount) release() {
	if a == nil {
		return
	}
	a.mu.Lock()
	n := a.used
	a.used = 0
	a.mu.Unlock()
	a.gov.release(n)
}

// SetMemoryBudget installs a process-wide cap, in bytes, on the statement
// scratch memory the engine will admit concurrently — batch arenas,
// aggregation tables, columnar scratch, materialized results, matview delta
// rings. 0 removes the cap (accounting still runs so the gauge stays
// truthful). When the pool is exhausted, new statements queue (bounded, see
// SetMemoryAdmissionQueue) and the allocation that drives the pool over
// budget fails with a global-scoped *ResourceLimitError; statements whose own
// footprint is tiny are exempt from global failure so heavy queries cannot
// starve cheap ones.
func (db *DB) SetMemoryBudget(bytes int64) {
	db.gov.setBudget(bytes)
}

// MemoryBudget reports the configured process budget (0 = none).
func (db *DB) MemoryBudget() int64 { return db.gov.budgetBytes() }

// MemoryUsed reports the bytes currently charged against the pool.
func (db *DB) MemoryUsed() int64 { return db.gov.usedBytes() }

// SetMemoryAdmissionQueue caps how many statements may wait for memory
// admission before new arrivals are shed with a global ResourceLimitError;
// n <= 0 restores the default.
func (db *DB) SetMemoryAdmissionQueue(n int) { db.gov.setQueueCap(n) }

// ReserveMemory adjusts the memory pool by n bytes (negative releases) on
// behalf of background subsystems — matview delta rings, caches — that grow
// outside any statement. It never fails; it only makes the governor's
// admission decisions and gauges reflect the true process footprint.
func (db *DB) ReserveMemory(n int64) { db.gov.reserve(n) }
