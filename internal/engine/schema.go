package engine

import (
	"fmt"
	"math"
	"strings"
)

func floatBits(f float64) uint64 { return math.Float64bits(f) }

// Column describes one output column of a relation.
type Column struct {
	// Table is the qualifier (table name or alias); empty for derived
	// columns.
	Table string
	// Name is the column name.
	Name string
	// T is the column's declared type.
	T Type
}

// Schema is an ordered column list.
type Schema []Column

// Resolve finds the index of a (possibly qualified) column reference. An
// unqualified name must be unambiguous across the schema.
func (s Schema) Resolve(table, name string) (int, error) {
	name = strings.ToLower(name)
	table = strings.ToLower(table)
	found := -1
	for i, c := range s {
		if strings.ToLower(c.Name) != name {
			continue
		}
		if table != "" && strings.ToLower(c.Table) != table {
			continue
		}
		if found != -1 {
			return 0, fmt.Errorf("engine: ambiguous column reference %q", name)
		}
		found = i
	}
	if found == -1 {
		if table != "" {
			return 0, fmt.Errorf("engine: unknown column %s.%s", table, name)
		}
		return 0, fmt.Errorf("engine: unknown column %q", name)
	}
	return found, nil
}

// Qualify returns a copy of the schema with every column re-qualified by the
// given alias (used for derived tables and table aliases).
func (s Schema) Qualify(alias string) Schema {
	out := make(Schema, len(s))
	for i, c := range s {
		out[i] = Column{Table: alias, Name: c.Name, T: c.T}
	}
	return out
}

// Names returns the bare column names in order.
func (s Schema) Names() []string {
	out := make([]string, len(s))
	for i, c := range s {
		out[i] = c.Name
	}
	return out
}
