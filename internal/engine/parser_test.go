package engine

import (
	"testing"

	"sgb/internal/core"
	"sgb/internal/geom"
)

func mustParseSelect(t *testing.T, sql string) *SelectStmt {
	t.Helper()
	stmt, err := Parse(sql)
	if err != nil {
		t.Fatalf("Parse(%q): %v", sql, err)
	}
	sel, ok := stmt.(*SelectStmt)
	if !ok {
		t.Fatalf("Parse(%q) returned %T", sql, stmt)
	}
	return sel
}

func TestLexBasics(t *testing.T) {
	toks, err := lex("SELECT a1,  b.c <> 3.5e2 -- comment\n FROM t;")
	if err != nil {
		t.Fatal(err)
	}
	var kinds []tokenKind
	var texts []string
	for _, tok := range toks {
		kinds = append(kinds, tok.kind)
		texts = append(texts, tok.text)
	}
	want := []string{"SELECT", "a1", ",", "b", ".", "c", "<>", "3.5e2", "FROM", "t", ";", ""}
	if len(texts) != len(want) {
		t.Fatalf("got %d tokens %v, want %d", len(texts), texts, len(want))
	}
	for i := range want {
		if texts[i] != want[i] {
			t.Errorf("token %d = %q, want %q", i, texts[i], want[i])
		}
	}
	if kinds[len(kinds)-1] != tokEOF {
		t.Error("missing EOF token")
	}
}

func TestLexStrings(t *testing.T) {
	toks, err := lex("'it''s'")
	if err != nil {
		t.Fatal(err)
	}
	if toks[0].kind != tokString || toks[0].text != "it's" {
		t.Fatalf("string token = %+v", toks[0])
	}
	if _, err := lex("'unterminated"); err == nil {
		t.Error("unterminated string accepted")
	}
	if _, err := lex("a ~ b"); err == nil {
		t.Error("unknown character accepted")
	}
}

func TestLexNotEquals(t *testing.T) {
	toks, err := lex("a != b")
	if err != nil {
		t.Fatal(err)
	}
	if toks[1].text != "<>" {
		t.Fatalf("!= not normalized: %q", toks[1].text)
	}
}

func TestParseSimpleSelect(t *testing.T) {
	s := mustParseSelect(t, "SELECT a, b AS bee, t.c FROM t WHERE a > 1 AND b = 'x' ORDER BY a DESC LIMIT 5")
	if len(s.Select) != 3 {
		t.Fatalf("select items = %d", len(s.Select))
	}
	if s.Select[1].Alias != "bee" {
		t.Errorf("alias = %q", s.Select[1].Alias)
	}
	cr, ok := s.Select[2].Expr.(*ColumnRef)
	if !ok || cr.Table != "t" || cr.Name != "c" {
		t.Errorf("qualified ref = %+v", s.Select[2].Expr)
	}
	if s.Where == nil || s.Limit != 5 || len(s.OrderBy) != 1 || !s.OrderBy[0].Desc {
		t.Error("clauses not parsed")
	}
}

func TestParsePrecedence(t *testing.T) {
	s := mustParseSelect(t, "SELECT 1 + 2 * 3")
	be := s.Select[0].Expr.(*BinaryExpr)
	if be.Op != "+" {
		t.Fatalf("top op = %q", be.Op)
	}
	if inner, ok := be.R.(*BinaryExpr); !ok || inner.Op != "*" {
		t.Fatal("* did not bind tighter than +")
	}
	s = mustParseSelect(t, "SELECT a FROM t WHERE x = 1 OR y = 2 AND z = 3")
	or := s.Where.(*BinaryExpr)
	if or.Op != "OR" {
		t.Fatalf("top logical op = %q", or.Op)
	}
	if and, ok := or.R.(*BinaryExpr); !ok || and.Op != "AND" {
		t.Fatal("AND did not bind tighter than OR")
	}
}

func TestParseGroupBySGBAllFull(t *testing.T) {
	s := mustParseSelect(t, `
		SELECT count(*) FROM GPSPoints
		GROUP BY lat, lon DISTANCE-TO-ALL LINF WITHIN 3
		ON-OVERLAP FORM-NEW-GROUP`)
	gb := s.GroupBy
	if gb == nil || gb.Similarity == nil {
		t.Fatal("similarity clause missing")
	}
	sp := gb.Similarity
	if sp.Mode != SGBAllMode || sp.Metric != geom.LInf || sp.Eps != 3 || sp.Overlap != core.FormNewGroup {
		t.Fatalf("spec = %+v", sp)
	}
	if len(gb.Exprs) != 2 {
		t.Fatalf("group exprs = %d", len(gb.Exprs))
	}
}

func TestParseGroupBySGBTable2Spelling(t *testing.T) {
	// The paper's Table 2 uses DISTANCE-ALL ... USING lone/ltwo and a
	// spaced "on overlap join-any".
	s := mustParseSelect(t, `
		SELECT sum(tp) FROM r
		GROUP BY ab, tp DISTANCE-ALL WITHIN 0.2 USING lone
		on overlap join-any`)
	sp := s.GroupBy.Similarity
	if sp.Mode != SGBAllMode || sp.Metric != geom.LInf || sp.Eps != 0.2 || sp.Overlap != core.JoinAny {
		t.Fatalf("spec = %+v", sp)
	}
	s = mustParseSelect(t, `
		SELECT sum(tp) FROM r
		GROUP BY ab, tp DISTANCE-ANY WITHIN 0.5 USING ltwo`)
	sp = s.GroupBy.Similarity
	if sp.Mode != SGBAnyMode || sp.Metric != geom.L2 || sp.Eps != 0.5 {
		t.Fatalf("spec = %+v", sp)
	}
}

func TestParseGroupBySGBAnyDefaults(t *testing.T) {
	s := mustParseSelect(t, `
		SELECT count(*) FROM GPSPoints
		GROUP BY lat, lon DISTANCE-TO-ANY L2 WITHIN 3`)
	sp := s.GroupBy.Similarity
	if sp.Mode != SGBAnyMode || sp.Metric != geom.L2 || sp.Eps != 3 {
		t.Fatalf("spec = %+v", sp)
	}
}

func TestParseSGBErrors(t *testing.T) {
	bad := []string{
		"SELECT count(*) FROM t GROUP BY a, b DISTANCE-TO-ANY L2 WITHIN 3 ON-OVERLAP ELIMINATE",
		"SELECT count(*) FROM t GROUP BY a, b DISTANCE-TO-ALL L2 WITHIN 0",
		"SELECT count(*) FROM t GROUP BY a, b DISTANCE-TO-ALL L2 WITHIN -1",
		"SELECT count(*) FROM t GROUP BY a, b DISTANCE-TO-BOTH L2 WITHIN 1",
		"SELECT count(*) FROM t GROUP BY a, b DISTANCE-TO-ALL L2 WITHIN 1 ON-OVERLAP MERGE",
		"SELECT count(*) FROM t GROUP BY a, b DISTANCE-TO-ALL L2 WITHIN 1 USING chebyshov",
	}
	for _, sql := range bad {
		if _, err := Parse(sql); err == nil {
			t.Errorf("Parse accepted %q", sql)
		}
	}
}

func TestParseDerivedTableAndInSubquery(t *testing.T) {
	s := mustParseSelect(t, `
		SELECT r.a FROM (SELECT x AS a FROM t WHERE x > 0) AS r
		WHERE r.a IN (SELECT y FROM u)`)
	if s.From[0].Subquery == nil || s.From[0].Alias != "r" {
		t.Fatal("derived table not parsed")
	}
	in, ok := s.Where.(*InSubquery)
	if !ok || in.Not {
		t.Fatalf("IN subquery = %+v", s.Where)
	}
	s = mustParseSelect(t, "SELECT a FROM t WHERE a NOT IN (1, 2, 3)")
	il, ok := s.Where.(*InList)
	if !ok || !il.Not || len(il.Items) != 3 {
		t.Fatalf("NOT IN list = %+v", s.Where)
	}
}

func TestParseJoinSugar(t *testing.T) {
	s := mustParseSelect(t, "SELECT a FROM t JOIN u ON t.id = u.id INNER JOIN v ON u.id = v.id")
	if len(s.From) != 3 {
		t.Fatalf("from items = %d", len(s.From))
	}
	conds := splitConjuncts(s.Where)
	if len(conds) != 2 {
		t.Fatalf("join conditions = %d", len(conds))
	}
}

func TestParseCreateInsertDrop(t *testing.T) {
	stmt, err := Parse("CREATE TABLE t (a INT, b FLOAT, c TEXT)")
	if err != nil {
		t.Fatal(err)
	}
	ct := stmt.(*CreateTableStmt)
	if ct.Name != "t" || len(ct.Columns) != 3 || ct.Columns[1].T != TypeFloat {
		t.Fatalf("create = %+v", ct)
	}
	stmt, err = Parse("INSERT INTO t VALUES (1, 2.5, 'x'), (2, -1.5, 'y')")
	if err != nil {
		t.Fatal(err)
	}
	ins := stmt.(*InsertStmt)
	if ins.Table != "t" || len(ins.Rows) != 2 || len(ins.Rows[0]) != 3 {
		t.Fatalf("insert = %+v", ins)
	}
	stmt, err = Parse("DROP TABLE t")
	if err != nil {
		t.Fatal(err)
	}
	if stmt.(*DropTableStmt).Name != "t" {
		t.Fatal("drop name wrong")
	}
}

func TestParseCountStarAndFuncs(t *testing.T) {
	s := mustParseSelect(t, "SELECT count(*), sum(a + 1), array_agg(id) FROM t GROUP BY g")
	fc := s.Select[0].Expr.(*FuncCall)
	if !fc.Star || fc.Name != "count" {
		t.Fatalf("count(*) = %+v", fc)
	}
	if s.GroupBy.Similarity != nil {
		t.Fatal("plain GROUP BY acquired similarity spec")
	}
}

func TestParseTrailingGarbage(t *testing.T) {
	if _, err := Parse("SELECT 1 SELECT 2"); err == nil {
		t.Error("trailing garbage accepted")
	}
	if _, err := Parse(""); err == nil {
		t.Error("empty input accepted")
	}
	if _, err := Parse("SELECT 1;"); err != nil {
		t.Errorf("trailing semicolon rejected: %v", err)
	}
}

func TestParseNullBoolLiterals(t *testing.T) {
	s := mustParseSelect(t, "SELECT NULL, TRUE, FALSE")
	if s.Select[0].Expr.(*Literal).V != Null {
		t.Error("NULL literal wrong")
	}
	if !s.Select[1].Expr.(*Literal).V.B || s.Select[2].Expr.(*Literal).V.B {
		t.Error("bool literals wrong")
	}
}
