package engine

import (
	"context"
	"fmt"
	"sync/atomic"
	"time"

	"sgb/internal/core"
)

// Limits bounds the resources a single statement may consume. A query that
// exceeds a limit fails with a *ResourceLimitError instead of running the
// process out of memory or holding the engine hostage — the statement-timeout
// and work_mem style guard rails of a production DBMS.
type Limits struct {
	// MaxRowsMaterialized caps the number of rows a statement may buffer
	// across all of its materializing operators (final result, sort buffers,
	// join build sides, aggregation inputs). 0 means unlimited.
	MaxRowsMaterialized int64
	// MaxExecutionTime caps a statement's wall-clock execution time.
	// 0 means unlimited.
	MaxExecutionTime time.Duration
	// MaxMemoryBytes caps the scratch memory a single statement may charge
	// against the memory governor's accounting (batch arenas, aggregation
	// tables, columnar scratch, materialized results). 0 means unlimited —
	// the statement is then bounded only by the process budget, if one is
	// set (DB.SetMemoryBudget).
	MaxMemoryBytes int64
}

// ResourceLimitError scopes: a per-query limit blames the statement itself;
// global pressure blames overall load — the statement was a victim and is
// worth retrying once the process quiets down.
const (
	// LimitScopeQuery marks a per-query limit (the Scope zero value).
	LimitScopeQuery = "query"
	// LimitScopeGlobal marks process-wide pressure: the shared memory budget
	// was exhausted or the admission queue overflowed.
	LimitScopeGlobal = "global"
)

// ResourceLimitError is the typed error a statement fails with when it
// exceeds a configured per-query limit. Callers distinguish it from ordinary
// query errors (and from context cancellation) with errors.As.
type ResourceLimitError struct {
	// Resource names what ran out: "rows", "time", or "memory".
	Resource string
	// Limit is the configured bound, rendered for the message.
	Limit string
	// Scope distinguishes a per-query limit ("" / LimitScopeQuery) from
	// process-wide pressure (LimitScopeGlobal). The serving layer maps
	// global errors to a retryable wire code, per-query ones to a terminal
	// resource-limit code.
	Scope string
}

func (e *ResourceLimitError) Error() string {
	if e.Global() {
		return fmt.Sprintf("engine: %s budget exhausted under load (%s); retry later", e.Resource, e.Limit)
	}
	return fmt.Sprintf("engine: query exceeded %s limit (%s)", e.Resource, e.Limit)
}

// Global reports whether the error is process-wide pressure rather than a
// per-query limit.
func (e *ResourceLimitError) Global() bool { return e.Scope == LimitScopeGlobal }

// cancelCheckStride is how many row-at-a-time next() steps an operator takes
// between context polls: frequent enough that cancellation lands promptly
// mid-scan, rare enough that the poll never shows up in a profile. Batch
// operators poll once per batch instead (see queryCtx.poll).
const cancelCheckStride = 1024

// queryCtx threads cancellation, row accounting, and the execution-shape
// settings (parallelism, batch size) through one statement's operator tree.
// Every operator of a plan shares one instance (including the plans of
// scalar/IN subqueries), so the row budget is per statement, not per
// operator. Morsel-parallel operators run worker goroutines that share this
// struct, so the mutable counters are atomics: the row budget and the
// cancellation stride are counted across all workers. The nil *queryCtx is
// valid and never cancels or limits — plan-only contexts (view validation)
// use it.
type queryCtx struct {
	ctx     context.Context
	maxRows int64 // 0 = unlimited
	workers int   // resolved statement parallelism; <=1 = serial
	batch   int   // batch/morsel row count; <=0 = defaultBatchSize
	// alg is the statement's SGB physical algorithm, resolved from the
	// session settings when the statement starts. algAuto marks it as a
	// fallback hint only: the optimizer is free to pick per query.
	alg     core.Algorithm
	algAuto bool
	// noOpt disables the cost-based analyzer rules for this statement,
	// yielding the naive plan lowering (session setting, see DB.SetOptimizer).
	noOpt bool
	// analyze marks a trace-sampled statement: the executor wraps the plan in
	// instrumented operators and stashes the EXPLAIN ANALYZE tree on the
	// statement trace (see DB.SetTraceSampling).
	analyze bool
	// noColumnar disables the columnar SGB fast path for this statement
	// (session setting, see DB.SetColumnar). The zero value keeps it on.
	noColumnar bool
	rows       atomic.Int64
	calls      atomic.Uint64
	// mem is the statement's memory account with the process governor; nil
	// when no budget or per-query memory limit is configured.
	mem *memAccount
}

func newQueryCtx(ctx context.Context, lim Limits) *queryCtx {
	return &queryCtx{ctx: ctx, maxRows: lim.MaxRowsMaterialized}
}

// tick is called once per row-at-a-time operator step; every
// cancelCheckStride calls it polls the context so a canceled or
// deadline-expired statement aborts mid-scan, mid-join-build, and
// mid-aggregation.
func (q *queryCtx) tick() error {
	if q == nil {
		return nil
	}
	if q.calls.Add(1)%cancelCheckStride != 0 {
		return nil
	}
	return q.ctx.Err()
}

// poll checks for cancellation unconditionally. Batch operators and morsel
// workers call it once per batch/morsel (~batchSize rows), which keeps
// cancellation latency bounded without a per-row branch.
func (q *queryCtx) poll() error {
	if q == nil {
		return nil
	}
	return q.ctx.Err()
}

// addRows charges n newly materialized rows against the row budget. The
// counter is atomic, so morsel workers charge a shared per-statement budget.
func (q *queryCtx) addRows(n int) error {
	if q == nil || q.maxRows <= 0 {
		return nil
	}
	if q.rows.Add(int64(n)) > q.maxRows {
		return &ResourceLimitError{
			Resource: "rows",
			Limit:    fmt.Sprintf("%d rows materialized", q.maxRows),
		}
	}
	return nil
}

// growMem charges n bytes of statement-scratch growth against the per-query
// memory limit and the process budget. Operators call it at the allocation
// sites that actually grow — batch arenas, new aggregation buckets, columnar
// scratch, materialized rows — so accounting tracks real footprint without a
// per-row branch.
func (q *queryCtx) growMem(n int64) error {
	if q == nil || q.mem == nil {
		return nil
	}
	return q.mem.grow(n)
}

// context returns the statement's context (Background for the nil queryCtx),
// for handing to the core groupers.
func (q *queryCtx) context() context.Context {
	if q == nil || q.ctx == nil {
		return context.Background()
	}
	return q.ctx
}

// batchSize is the statement's batch/morsel row count.
func (q *queryCtx) batchSize() int {
	if q == nil || q.batch <= 0 {
		return defaultBatchSize
	}
	return q.batch
}

// parallelism is the statement's resolved worker count (>= 1).
func (q *queryCtx) parallelism() int {
	if q == nil || q.workers <= 0 {
		return 1
	}
	return q.workers
}

// columnar reports whether the statement may take the columnar SGB fast
// path. Plan-only contexts keep it enabled (the gate has further structural
// requirements anyway).
func (q *queryCtx) columnar() bool {
	return q == nil || !q.noColumnar
}

// algorithm is the statement's SGB physical algorithm. Plan-only contexts
// (view validation) have no executing statement and get the engine default.
func (q *queryCtx) algorithm() core.Algorithm {
	if q == nil {
		return core.IndexBounds
	}
	return q.alg
}

// algorithmAuto reports whether the statement's SGB algorithm is subject to
// cost-based selection. Plan-only contexts are: they have no session override.
func (q *queryCtx) algorithmAuto() bool {
	return q == nil || q.algAuto
}

// optimize reports whether the cost-based analyzer rules run for this
// statement. Plan-only contexts optimize (the rules are semantics-preserving).
func (q *queryCtx) optimize() bool {
	return q == nil || !q.noOpt
}
