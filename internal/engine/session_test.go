package engine

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"

	"sgb/internal/core"
)

// loadSessionTable creates a small 2-D point table for session tests.
func loadSessionTable(t *testing.T, db *DB, rows int) {
	t.Helper()
	mustExec(t, db, "CREATE TABLE pts (id INT, x FLOAT, y FLOAT)")
	var sb strings.Builder
	sb.WriteString("INSERT INTO pts VALUES ")
	for i := 0; i < rows; i++ {
		if i > 0 {
			sb.WriteString(", ")
		}
		fmt.Fprintf(&sb, "(%d, %d.25, %d.75)", i, i%50, i%37)
	}
	mustExec(t, db, sb.String())
}

func mustExec(t *testing.T, db *DB, sql string) *Result {
	t.Helper()
	res, err := db.Exec(sql)
	if err != nil {
		t.Fatalf("exec %q: %v", firstWords(sql), err)
	}
	return res
}

func firstWords(sql string) string {
	if len(sql) > 60 {
		return sql[:60] + "..."
	}
	return sql
}

// TestSessionSettingsIsolated is the regression test for the global-knob bug:
// session setters must not leak into other sessions or the DB defaults.
// Before settings were session-scoped, SetParallelism/SetBatchSize/SetLimits
// mutated the shared DB, so two connections raced each other's knobs.
func TestSessionSettingsIsolated(t *testing.T) {
	db := NewDB()
	loadSessionTable(t, db, 100)

	a := db.NewSession()
	b := db.NewSession()

	a.SetParallelism(1)
	a.SetBatchSize(16)
	a.SetLimits(Limits{MaxRowsMaterialized: 10})
	a.SetSGBAlgorithm(core.AllPairs)

	// b and the DB defaults are untouched by a's setters.
	if got := b.Settings(); got.Parallelism != 0 || got.BatchSize != 0 ||
		got.Limits.MaxRowsMaterialized != 0 || got.SGBAlgorithm != core.IndexBounds {
		t.Fatalf("session b settings contaminated by a: %+v", got)
	}
	if got := db.Parallelism(); got == 1 && db.BatchSize() == 16 {
		t.Fatalf("DB defaults contaminated by session setters")
	}
	if db.Limits().MaxRowsMaterialized != 0 {
		t.Fatalf("DB limits contaminated by session setters: %+v", db.Limits())
	}

	// a's row limit applies to a only: the table has 100 rows.
	if _, err := a.Exec("SELECT id FROM pts"); err == nil {
		t.Fatalf("session a: want row-limit error, got nil")
	} else {
		var rle *ResourceLimitError
		if !errors.As(err, &rle) {
			t.Fatalf("session a: want ResourceLimitError, got %v", err)
		}
	}
	if res, err := b.Exec("SELECT id FROM pts"); err != nil {
		t.Fatalf("session b: %v", err)
	} else if len(res.Rows) != 100 {
		t.Fatalf("session b: got %d rows, want 100", len(res.Rows))
	}
	// The DB default path is equally unaffected.
	if res, err := db.Exec("SELECT id FROM pts"); err != nil {
		t.Fatalf("db default: %v", err)
	} else if len(res.Rows) != 100 {
		t.Fatalf("db default: got %d rows, want 100", len(res.Rows))
	}
}

// TestSessionSettingsResolvedAtPlanTime pins that a statement's execution
// shape comes from its own session snapshot: a serial session and a parallel
// session produce different EXPLAIN plans against the same DB, concurrently.
func TestSessionSettingsResolvedAtPlanTime(t *testing.T) {
	db := NewDB()
	loadSessionTable(t, db, 4096)

	serial := db.NewSession()
	serial.SetParallelism(1)
	par := db.NewSession()
	par.SetParallelism(4)
	par.SetBatchSize(64)

	const q = "EXPLAIN SELECT x, count(*) FROM pts GROUP BY x"
	planOf := func(s *Session) string {
		res, err := s.Exec(q)
		if err != nil {
			t.Fatalf("explain: %v", err)
		}
		var sb strings.Builder
		for _, r := range res.Rows {
			sb.WriteString(r[0].S)
			sb.WriteByte('\n')
		}
		return sb.String()
	}
	if p := planOf(serial); strings.Contains(p, "Parallel") {
		t.Fatalf("serial session produced a parallel plan:\n%s", p)
	}
	if p := planOf(par); !strings.Contains(p, "Parallel") {
		t.Fatalf("parallel session produced a serial plan:\n%s", p)
	}
}

// TestSessionSettingsRace runs two sessions that continuously flip their own
// knobs while executing, under -race: per-session snapshots mean neither the
// knob writes nor the in-flight statements may conflict.
func TestSessionSettingsRace(t *testing.T) {
	db := NewDB()
	loadSessionTable(t, db, 512)

	const iters = 40
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			s := db.NewSession()
			for i := 0; i < iters; i++ {
				s.SetParallelism(1 + (w+i)%4)
				s.SetBatchSize(32 << (i % 3))
				if i%2 == 0 {
					s.SetSGBAlgorithm(core.AllPairs)
				} else {
					s.SetSGBAlgorithm(core.IndexBounds)
				}
				res, err := s.Exec("SELECT count(*) FROM pts GROUP BY x, y DISTANCE-TO-ANY L2 WITHIN 0.5")
				if err != nil {
					t.Errorf("worker %d iter %d: %v", w, i, err)
					return
				}
				if len(res.Rows) == 0 {
					t.Errorf("worker %d iter %d: empty result", w, i)
					return
				}
			}
		}(w)
	}
	wg.Wait()
}
