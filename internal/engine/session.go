package engine

import (
	"context"
	"sync"

	"sgb/internal/core"
	"sgb/internal/obs"
)

// Settings is the complete set of session-scoped execution knobs. A snapshot
// of Settings is taken when a statement starts and is threaded through
// planning and execution (via queryCtx), so a statement's behaviour is fixed
// at plan time: concurrent sessions changing their own knobs can never race a
// statement that is already in flight, and two sessions can hold different
// settings against the same shared DB.
type Settings struct {
	// SGBAlgorithm selects the physical similarity group-by implementation
	// (All-Pairs, Bounds-Checking, or the on-the-fly index). It is a manual
	// override only when SGBAuto is false; under SGBAuto it is the fallback
	// hint the optimizer uses when cost-based selection has nothing to go on.
	SGBAlgorithm core.Algorithm
	// SGBAuto (the default for new DBs) lets the cost-based optimizer choose
	// the SGB algorithm per query from the statistics catalog.
	SGBAuto bool
	// Limits bounds the resources a single statement may consume.
	Limits Limits
	// Parallelism is the morsel worker count: 0 = auto (GOMAXPROCS),
	// 1 = serial.
	Parallelism int
	// BatchSize is the batch/morsel row count; 0 = the engine default.
	BatchSize int
	// NoColumnar disables the columnar SGB fast path (flat coordinate
	// columns + batch distance kernels, bypassing per-tuple Row
	// materialization for eligible plans). The zero value keeps it enabled;
	// disabling is mainly useful for benchmarks comparing against the
	// row-at-a-time path.
	NoColumnar bool
	// NoOptimize disables the cost-based analyzer rules, producing the naive
	// plan lowering. Semantics are unchanged; plan-equivalence tests use it
	// as the reference.
	NoOptimize bool
}

// Session is a per-client view of a shared DB: it carries its own Settings
// while executing against the DB's catalog and statement lock. Sessions are
// cheap; the network server creates one per connection. A Session is safe for
// concurrent use, though the server executes at most one statement per
// session at a time.
//
// Settings start as a snapshot of the DB-level defaults at creation time and
// evolve independently afterwards: SetParallelism on one session never
// affects another session or the DB defaults.
type Session struct {
	db  *DB
	mu  sync.Mutex
	set Settings
}

// NewSession creates a session over db whose settings are initialized from
// the DB-level defaults.
func (db *DB) NewSession() *Session {
	return &Session{db: db, set: db.settings()}
}

// DB returns the shared database this session executes against.
func (s *Session) DB() *DB { return s.db }

// Settings returns a snapshot of the session's current settings.
func (s *Session) Settings() Settings {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.set
}

// SetSGBAlgorithm forces the SGB physical implementation for subsequent
// statements on this session only, overriding cost-based selection.
func (s *Session) SetSGBAlgorithm(a core.Algorithm) {
	s.mu.Lock()
	s.set.SGBAlgorithm = a
	s.set.SGBAuto = false
	s.mu.Unlock()
}

// SetSGBAlgorithmAuto restores cost-based SGB algorithm selection for
// subsequent statements on this session only.
func (s *Session) SetSGBAlgorithmAuto() {
	s.mu.Lock()
	s.set.SGBAuto = true
	s.mu.Unlock()
}

// SetOptimizer enables or disables the cost-based analyzer rules for
// subsequent statements on this session only.
func (s *Session) SetOptimizer(on bool) {
	s.mu.Lock()
	s.set.NoOptimize = !on
	s.mu.Unlock()
}

// SetLimits installs per-query resource limits for subsequent statements on
// this session only. The zero Limits removes all bounds.
func (s *Session) SetLimits(lim Limits) {
	s.mu.Lock()
	s.set.Limits = lim
	s.mu.Unlock()
}

// SetParallelism sets the session's morsel worker count (0 = auto, 1 =
// serial) for subsequent statements on this session only.
func (s *Session) SetParallelism(n int) {
	if n < 0 {
		n = 0
	}
	s.mu.Lock()
	s.set.Parallelism = n
	s.mu.Unlock()
}

// SetBatchSize sets the session's batch/morsel row count (0 = engine
// default) for subsequent statements on this session only.
func (s *Session) SetBatchSize(n int) {
	if n < 0 {
		n = 0
	}
	s.mu.Lock()
	s.set.BatchSize = n
	s.mu.Unlock()
}

// SetColumnar enables or disables the columnar SGB fast path for subsequent
// statements on this session only. It is enabled by default.
func (s *Session) SetColumnar(on bool) {
	s.mu.Lock()
	s.set.NoColumnar = !on
	s.mu.Unlock()
}

// Exec parses and executes one SQL statement under the session's settings.
func (s *Session) Exec(sql string) (*Result, error) {
	return s.ExecContext(context.Background(), sql)
}

// ExecContext parses and executes one SQL statement under the session's
// settings, with DB.ExecContext's cancellation semantics.
func (s *Session) ExecContext(ctx context.Context, sql string) (*Result, error) {
	return s.db.execSQL(ctx, sql, s.Settings())
}

// ExecContextTrace is ExecContext recording onto a caller-provided trace.
// The network server passes the trace carrying the query's propagated trace
// ID here, so engine spans (parse/plan/execute) and commit-hook spans (WAL
// append/fsync) join the server's wire-level spans on one trace. tr must not
// be nil.
func (s *Session) ExecContextTrace(ctx context.Context, sql string, tr *obs.Trace) (*Result, error) {
	return s.db.execSQLTrace(ctx, sql, s.Settings(), tr)
}

// ExecStmtContext executes an already parsed statement under the session's
// settings.
func (s *Session) ExecStmtContext(ctx context.Context, stmt Statement) (*Result, error) {
	return s.db.execTraced(ctx, stmt, obs.NewTrace(), s.Settings(), "")
}
