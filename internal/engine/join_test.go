package engine

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"
)

func TestMultiKeyHashJoin(t *testing.T) {
	// The GB2/Q9 pattern: partsupp joins lineitem on (partkey, suppkey).
	db := NewDB()
	mustExec := func(q string) {
		t.Helper()
		if _, err := db.Exec(q); err != nil {
			t.Fatalf("%s: %v", q, err)
		}
	}
	mustExec("CREATE TABLE ps (pk INT, sk INT, cost FLOAT)")
	mustExec("INSERT INTO ps VALUES (1, 1, 10.0), (1, 2, 11.0), (2, 1, 20.0)")
	mustExec("CREATE TABLE li (pk INT, sk INT, qty FLOAT)")
	mustExec("INSERT INTO li VALUES (1, 1, 5.0), (1, 2, 6.0), (1, 9, 7.0), (2, 1, 8.0)")
	got := queryStrings(t, db, `
		SELECT ps.cost, li.qty FROM ps, li
		WHERE ps.pk = li.pk AND ps.sk = li.sk
		ORDER BY ps.cost`)
	want := [][]string{{"10", "5"}, {"11", "6"}, {"20", "8"}}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("got %v, want %v", got, want)
	}
	// The plan uses one hash join with both keys, not a cross product.
	res, err := db.Exec("EXPLAIN SELECT ps.cost FROM ps, li WHERE ps.pk = li.pk AND ps.sk = li.sk")
	if err != nil {
		t.Fatal(err)
	}
	if !containsLine(res, "HashJoin (2 key(s))") {
		t.Fatalf("expected 2-key hash join:\n%s", planText(res))
	}
}

func TestCrossTypeJoinKeys(t *testing.T) {
	// An INT key column joining a FLOAT key column must match on value.
	db := NewDB()
	if _, err := db.Exec("CREATE TABLE a (k INT)"); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Exec("CREATE TABLE b (k FLOAT, v TEXT)"); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Exec("INSERT INTO a VALUES (1), (2), (3)"); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Exec("INSERT INTO b VALUES (2.0, 'two'), (3.0, 'three'), (2.5, 'half')"); err != nil {
		t.Fatal(err)
	}
	got := queryStrings(t, db, "SELECT b.v FROM a, b WHERE a.k = b.k ORDER BY b.v")
	want := [][]string{{"three"}, {"two"}}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("got %v", got)
	}
}

func TestSelfJoin(t *testing.T) {
	db := testDB(t)
	// Pairs of employees in the same department.
	got := queryStrings(t, db, `
		SELECT a.name, b.name FROM emp a, emp b
		WHERE a.dept = b.dept AND a.name < b.name
		ORDER BY a.name`)
	want := [][]string{{"ann", "bob"}, {"cat", "dan"}}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("got %v", got)
	}
}

func TestJoinDuplicatesMultiply(t *testing.T) {
	db := NewDB()
	if _, err := db.Exec("CREATE TABLE l (k INT)"); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Exec("CREATE TABLE r (k INT)"); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Exec("INSERT INTO l VALUES (1), (1), (2)"); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Exec("INSERT INTO r VALUES (1), (1), (1), (2)"); err != nil {
		t.Fatal(err)
	}
	got := queryStrings(t, db, "SELECT count(*) FROM l, r WHERE l.k = r.k")
	if got[0][0] != "7" { // 2*3 + 1*1
		t.Fatalf("join cardinality = %v, want 7", got)
	}
}

// TestHashJoinMatchesNestedLoop cross-validates the hash join against the
// cross-product-plus-filter plan on random data.
func TestHashJoinMatchesNestedLoop(t *testing.T) {
	r := rand.New(rand.NewSource(150))
	db := NewDB()
	if _, err := db.Exec("CREATE TABLE x (k INT, v INT)"); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Exec("CREATE TABLE y (k INT, w INT)"); err != nil {
		t.Fatal(err)
	}
	tx, _ := db.Catalog().Get("x")
	ty, _ := db.Catalog().Get("y")
	for i := 0; i < 200; i++ {
		if err := tx.Insert(Row{NewInt(int64(r.Intn(20))), NewInt(int64(i))}); err != nil {
			t.Fatal(err)
		}
		if err := ty.Insert(Row{NewInt(int64(r.Intn(20))), NewInt(int64(i))}); err != nil {
			t.Fatal(err)
		}
	}
	// Equi form plans a hash join; the arithmetic form defeats the
	// equi-detection and falls back to a filtered cross join.
	hash := queryStrings(t, db, "SELECT x.v, y.w FROM x, y WHERE x.k = y.k ORDER BY x.v, y.w")
	nested := queryStrings(t, db, "SELECT x.v, y.w FROM x, y WHERE x.k - y.k = 0 ORDER BY x.v, y.w")
	if !reflect.DeepEqual(hash, nested) {
		t.Fatalf("hash join (%d rows) and nested loop (%d rows) disagree", len(hash), len(nested))
	}
}

// TestThreeWayJoinOrderIndependence: the answer must not depend on FROM
// order even though the left-deep plan does.
func TestThreeWayJoinOrderIndependence(t *testing.T) {
	db := testDB(t)
	if _, err := db.Exec("CREATE TABLE grade (dept INT, g TEXT)"); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Exec("INSERT INTO grade VALUES (10, 'A'), (20, 'B'), (30, 'C')"); err != nil {
		t.Fatal(err)
	}
	perms := []string{
		"emp e, dept d, grade g",
		"grade g, emp e, dept d",
		"dept d, grade g, emp e",
	}
	var base [][]string
	for i, from := range perms {
		q := fmt.Sprintf(`SELECT e.name, d.dname, g.g FROM %s
			WHERE e.dept = d.id AND d.id = g.dept ORDER BY e.name`, from)
		got := queryStrings(t, db, q)
		if i == 0 {
			base = got
			continue
		}
		if !reflect.DeepEqual(got, base) {
			t.Fatalf("FROM order %q changed the answer", from)
		}
	}
	if len(base) != 5 {
		t.Fatalf("three-way join rows = %d", len(base))
	}
}

// TestJoinThenSGBStats: the SGB operator downstream of a join sees exactly
// the join's output cardinality.
func TestJoinThenSGBStats(t *testing.T) {
	db := testDB(t)
	if _, err := db.Query(`
		SELECT count(*) FROM emp e, dept d
		WHERE e.dept = d.id
		GROUP BY e.salary, e.dept DISTANCE-TO-ALL L2 WITHIN 200 ON-OVERLAP JOIN-ANY`); err != nil {
		t.Fatal(err)
	}
	if st := db.LastSGBStats(); st == nil || st.Points != 5 {
		t.Fatalf("SGB saw %+v, want 5 joined tuples", db.LastSGBStats())
	}
}
