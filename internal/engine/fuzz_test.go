package engine

import (
	"testing"
)

// FuzzParse ensures the lexer and parser never panic, whatever the input.
func FuzzParse(f *testing.F) {
	seeds := []string{
		"SELECT 1",
		"SELECT a, b FROM t WHERE x = 1 AND y < 2 ORDER BY a DESC LIMIT 3",
		"SELECT count(*) FROM t GROUP BY a, b DISTANCE-TO-ALL L2 WITHIN 0.5 ON-OVERLAP FORM-NEW-GROUP",
		"SELECT count(*) FROM t GROUP BY a, b DISTANCE-ANY WITHIN 3 USING lone",
		"SELECT * FROM (SELECT x FROM t) AS r WHERE r.x IN (SELECT y FROM u)",
		"CREATE TABLE t (a INT, b FLOAT, c TEXT)",
		"INSERT INTO t VALUES (1, 2.5, 'x''y'), (NULL, -1e3, '')",
		"EXPLAIN SELECT DISTINCT a FROM t",
		"COPY t FROM 'file.csv'",
		"SELECT a FROM t WHERE b BETWEEN 1 AND 2 OR c LIKE '%x_'",
		"SELECT -a + 1.5e-4 * (b / c) || 'txt' FROM t JOIN u ON t.i = u.i",
		"DROP TABLE t;",
		"SELECT 'unterminated",
		"GROUP BY DISTANCE - - WITHIN",
		"SELECT ((((1))))",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		// Parse must return a statement or an error, never panic.
		stmt, err := Parse(src)
		if err != nil {
			return
		}
		if stmt == nil {
			t.Fatalf("Parse(%q) returned nil statement and nil error", src)
		}
	})
}

// FuzzExec runs fuzzed SELECTs against a small populated database: planning
// and execution must fail cleanly, never panic.
func FuzzExec(f *testing.F) {
	seeds := []string{
		"SELECT id, name FROM emp WHERE dept = 10",
		"SELECT dept, count(*), sum(salary) FROM emp GROUP BY dept HAVING count(*) > 1",
		"SELECT count(*) FROM emp GROUP BY salary, dept DISTANCE-TO-ALL L2 WITHIN 100 ON-OVERLAP ELIMINATE",
		"SELECT count(*) FROM emp GROUP BY salary, dept DISTANCE-TO-ANY LINF WITHIN 5",
		"SELECT e.name, d.dname FROM emp e, dept d WHERE e.dept = d.id ORDER BY e.name LIMIT 2",
		"SELECT DISTINCT dept FROM emp",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		db := NewDB()
		if _, err := db.Exec("CREATE TABLE emp (id INT, name TEXT, dept INT, salary FLOAT)"); err != nil {
			t.Fatal(err)
		}
		if _, err := db.Exec("INSERT INTO emp VALUES (1, 'a', 10, 100.0), (2, 'b', 20, 200.0)"); err != nil {
			t.Fatal(err)
		}
		if _, err := db.Exec("CREATE TABLE dept (id INT, dname TEXT)"); err != nil {
			t.Fatal(err)
		}
		if _, err := db.Exec("INSERT INTO dept VALUES (10, 'x'), (20, 'y')"); err != nil {
			t.Fatal(err)
		}
		stmt, err := Parse(src)
		if err != nil {
			return
		}
		if _, ok := stmt.(*CopyStmt); ok {
			return // avoid touching the filesystem under fuzzing
		}
		_, _ = db.ExecStmt(stmt) // must not panic
	})
}
