package engine

import (
	"bytes"
	"errors"
	"fmt"
	"testing"

	"sgb/internal/obs"
)

// TestCommitHookFiresForWrites pins the hook contract: every successful
// mutating statement reaches the hook with its SQL text, in commit order;
// read-only statements never do.
func TestCommitHookFiresForWrites(t *testing.T) {
	db := NewDB()
	type call struct {
		sql  string
		kind string
	}
	var calls []call
	db.SetCommitHook(func(stmt Statement, sql string, _ *obs.Trace) error {
		calls = append(calls, call{sql: sql, kind: fmt.Sprintf("%T", stmt)})
		return nil
	})

	stmts := []string{
		"CREATE TABLE t (id INT, x FLOAT)",
		"INSERT INTO t VALUES (1, 1.5), (2, 2.5)",
		"UPDATE t SET x = 9.0 WHERE id = 1",
		"DELETE FROM t WHERE id = 2",
		"CREATE INDEX idx ON t (id)",
		"DROP INDEX idx ON t",
		"DROP TABLE t",
	}
	for _, sql := range stmts {
		if _, err := db.Exec(sql); err != nil {
			t.Fatalf("%s: %v", sql, err)
		}
	}
	if len(calls) != len(stmts) {
		t.Fatalf("hook saw %d calls, want %d: %+v", len(calls), len(stmts), calls)
	}
	for i, sql := range stmts {
		if calls[i].sql != sql {
			t.Errorf("call %d: sql %q, want %q", i, calls[i].sql, sql)
		}
	}

	// Read-only statements bypass the hook entirely.
	calls = nil
	if _, err := db.Exec("CREATE TABLE r (x INT)"); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Exec("INSERT INTO r VALUES (7)"); err != nil {
		t.Fatal(err)
	}
	calls = nil
	for _, sql := range []string{"SELECT x FROM r", "EXPLAIN SELECT x FROM r"} {
		if _, err := db.Exec(sql); err != nil {
			t.Fatalf("%s: %v", sql, err)
		}
	}
	if len(calls) != 0 {
		t.Fatalf("hook fired for read-only statements: %+v", calls)
	}
}

// TestCommitHookSkippedOnFailure: a statement that fails never reaches the
// hook — nothing un-applied may be logged.
func TestCommitHookSkippedOnFailure(t *testing.T) {
	db := NewDB()
	hooked := 0
	db.SetCommitHook(func(Statement, string, *obs.Trace) error { hooked++; return nil })
	if _, err := db.Exec("INSERT INTO missing VALUES (1)"); err == nil {
		t.Fatal("insert into missing table succeeded")
	}
	if hooked != 0 {
		t.Fatalf("hook fired %d times for a failed statement", hooked)
	}
}

// TestCommitHookFailureSurfaces: when the hook (the WAL) fails, the
// statement reports a typed DurabilityError and is not acknowledged.
func TestCommitHookFailureSurfaces(t *testing.T) {
	db := NewDB()
	boom := errors.New("disk full")
	db.SetCommitHook(func(Statement, string, *obs.Trace) error { return boom })
	_, err := db.Exec("CREATE TABLE t (x INT)")
	var de *DurabilityError
	if !errors.As(err, &de) || !errors.Is(err, boom) {
		t.Fatalf("got %v, want DurabilityError wrapping boom", err)
	}
	if got := db.Metrics().Counter("engine_commit_hook_failures_total").Value(); got != 1 {
		t.Fatalf("engine_commit_hook_failures_total = %d", got)
	}
	// Removing the hook restores plain execution.
	db.SetCommitHook(nil)
	if _, err := db.Exec("CREATE TABLE t2 (x INT)"); err != nil {
		t.Fatal(err)
	}
}

// TestCommitHookSessionPath: statements entering through a Session carry
// their SQL text to the hook too (the server's path).
func TestCommitHookSessionPath(t *testing.T) {
	db := NewDB()
	var got []string
	db.SetCommitHook(func(_ Statement, sql string, _ *obs.Trace) error { got = append(got, sql); return nil })
	sess := db.NewSession()
	if _, err := sess.Exec("CREATE TABLE s (x INT)"); err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0] != "CREATE TABLE s (x INT)" {
		t.Fatalf("session hook calls: %q", got)
	}

	// Pre-parsed statements have no SQL text: the hook sees "".
	stmt, err := Parse("INSERT INTO s VALUES (3)")
	if err != nil {
		t.Fatal(err)
	}
	got = nil
	if _, err := db.ExecStmt(stmt); err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0] != "" {
		t.Fatalf("ExecStmt hook calls: %q", got)
	}
}

// TestSaveLockedConsistency: the SaveLocked callback observes a position
// consistent with the snapshot — a concurrent writer cannot commit between
// the snapshot read and the callback.
func TestSaveLockedConsistency(t *testing.T) {
	db := NewDB()
	if _, err := db.Exec("CREATE TABLE t (x INT)"); err != nil {
		t.Fatal(err)
	}
	commits := 0
	db.SetCommitHook(func(Statement, string, *obs.Trace) error { commits++; return nil })
	for i := 0; i < 5; i++ {
		if _, err := db.Exec(fmt.Sprintf("INSERT INTO t VALUES (%d)", i)); err != nil {
			t.Fatal(err)
		}
	}
	var buf bytes.Buffer
	var seen int
	if err := db.SaveLocked(&buf, func() { seen = commits }); err != nil {
		t.Fatal(err)
	}
	if seen != 5 {
		t.Fatalf("callback saw %d commits, want 5", seen)
	}
	restored, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	res, err := restored.Query("SELECT count(*) FROM t")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 || res.Rows[0][0].I != 5 {
		t.Fatalf("restored rows: %+v", res.Rows)
	}
}
