package engine

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"sync"
	"testing"
	"time"
)

// loadNums bulk-creates a table with integer-valued columns only, so every
// aggregate (including float avg/sum) is exactly representable and the
// parallel two-phase merge must reproduce the serial results bit-for-bit.
func loadNums(t *testing.T, db *DB, n int, seed int64) {
	t.Helper()
	if _, err := db.Exec("CREATE TABLE nums (id INT, k INT, v INT, x FLOAT, y FLOAT)"); err != nil {
		t.Fatal(err)
	}
	tab, err := db.Catalog().Get("nums")
	if err != nil {
		t.Fatal(err)
	}
	r := rand.New(rand.NewSource(seed))
	rows := make([]Row, n)
	for i := range rows {
		rows[i] = Row{
			NewInt(int64(i)),
			NewInt(int64(r.Intn(23))),
			NewInt(int64(r.Intn(1000))),
			NewFloat(float64(r.Intn(200))),
			NewFloat(float64(r.Intn(200))),
		}
	}
	if err := tab.Insert(rows...); err != nil {
		t.Fatal(err)
	}
}

func rowStrings(res *Result) []string {
	out := make([]string, len(res.Rows))
	for i, r := range res.Rows {
		parts := make([]string, len(r))
		for j, v := range r {
			parts[j] = v.String()
		}
		out[i] = strings.Join(parts, "|")
	}
	return out
}

func sortedRowStrings(res *Result) []string {
	out := rowStrings(res)
	sort.Strings(out)
	return out
}

// TestParallelMatchesSerial is the equivalence property test: for GROUP BY,
// SGB-Any, join, and LIMIT queries, execution with any worker count (1
// included) and a small batch size — which forces morsel-parallel plans —
// returns a row multiset identical to the serial run.
func TestParallelMatchesSerial(t *testing.T) {
	db := NewDB()
	loadNums(t, db, 3000, 11)
	if _, err := db.Exec("CREATE TABLE dim (k INT, label TEXT)"); err != nil {
		t.Fatal(err)
	}
	for k := 0; k < 23; k++ {
		if _, err := db.Exec(fmt.Sprintf("INSERT INTO dim VALUES (%d, 'k%d')", k, k)); err != nil {
			t.Fatal(err)
		}
	}

	queries := []string{
		"SELECT k, count(*), sum(v), min(v), max(v), avg(v) FROM nums WHERE v > 100 GROUP BY k",
		"SELECT k, array_agg(v) FROM nums WHERE id < 500 GROUP BY k",
		"SELECT count(*), sum(v + k) FROM nums WHERE mod(id, 3) = 0",
		"SELECT count(*), min(id) FROM nums GROUP BY x, y DISTANCE-TO-ANY L2 WITHIN 3",
		"SELECT d.label, count(*) FROM nums n, dim d WHERE n.k = d.k AND n.v > 500 GROUP BY d.label",
		"SELECT id, v FROM nums WHERE v > 900 ORDER BY id LIMIT 37 OFFSET 5",
	}

	db.SetParallelism(1)
	serial := make([][]string, len(queries))
	for i, q := range queries {
		res, err := db.Query(q)
		if err != nil {
			t.Fatalf("serial %q: %v", q, err)
		}
		serial[i] = sortedRowStrings(res)
	}

	db.SetBatchSize(64) // 3000 rows -> ~47 morsels, forcing parallel plans
	for _, workers := range []int{1, 2, 3, 8} {
		db.SetParallelism(workers)
		for i, q := range queries {
			res, err := db.Query(q)
			if err != nil {
				t.Fatalf("workers=%d %q: %v", workers, q, err)
			}
			got := sortedRowStrings(res)
			if len(got) != len(serial[i]) {
				t.Fatalf("workers=%d %q: %d rows, serial had %d", workers, q, len(got), len(serial[i]))
			}
			for j := range got {
				if got[j] != serial[i][j] {
					t.Fatalf("workers=%d %q: row %d = %q, serial %q", workers, q, j, got[j], serial[i][j])
				}
			}
		}
	}
}

// TestParallelPlanShape asserts that a qualifying plan actually takes the
// parallel path (EXPLAIN label, ANALYZE actuals, metrics) and that
// disqualified plans — DISTINCT aggregates, subquery predicates, small
// tables — stay serial.
func TestParallelPlanShape(t *testing.T) {
	db := NewDB()
	loadNums(t, db, 2000, 3)
	db.SetParallelism(4)
	db.SetBatchSize(128)

	plan := func(sql string) string {
		res, err := db.Exec(sql)
		if err != nil {
			t.Fatalf("%q: %v", sql, err)
		}
		var sb strings.Builder
		for _, r := range res.Rows {
			sb.WriteString(r[0].String())
			sb.WriteString("\n")
		}
		return sb.String()
	}

	p := plan("EXPLAIN SELECT k, count(*) FROM nums WHERE v > 10 GROUP BY k")
	if !strings.Contains(p, "Parallel HashAggregate") {
		t.Fatalf("expected Parallel HashAggregate, got:\n%s", p)
	}
	p = plan("EXPLAIN ANALYZE SELECT k, count(*) FROM nums WHERE v > 10 GROUP BY k")
	if !strings.Contains(p, "workers=4") || !strings.Contains(p, "batches=") {
		t.Fatalf("expected workers=4 batches= in ANALYZE actuals, got:\n%s", p)
	}
	p = plan("EXPLAIN ANALYZE SELECT count(*) FROM nums GROUP BY x, y DISTANCE-TO-ANY L2 WITHIN 2")
	if !strings.Contains(p, "Parallel SimilarityGroupBy") || !strings.Contains(p, "workers=4") {
		t.Fatalf("expected parallel SGB node with workers=4, got:\n%s", p)
	}

	snap := db.Metrics().Snapshot()
	if snap.Counters["engine_parallel_morsels_total"] == 0 {
		t.Fatal("engine_parallel_morsels_total did not advance")
	}
	if got := snap.Gauges["engine_parallel_workers"]; got != 4 {
		t.Fatalf("engine_parallel_workers = %v, want 4", got)
	}

	// DISTINCT aggregates cannot be merged: the plan must stay serial.
	p = plan("EXPLAIN SELECT k, count(DISTINCT v) FROM nums GROUP BY k")
	if strings.Contains(p, "Parallel") {
		t.Fatalf("DISTINCT aggregate must not parallelize, got:\n%s", p)
	}
	// Subquery predicates carry lazily-cached closures: serial.
	p = plan("EXPLAIN SELECT k, count(*) FROM nums WHERE v > (SELECT min(v) FROM nums) GROUP BY k")
	if strings.Contains(p, "Parallel") {
		t.Fatalf("subquery predicate must not parallelize, got:\n%s", p)
	}
	// Tables at or below one batch stay serial.
	db.SetBatchSize(4000)
	p = plan("EXPLAIN SELECT k, count(*) FROM nums GROUP BY k")
	if strings.Contains(p, "Parallel") {
		t.Fatalf("sub-batch table must not parallelize, got:\n%s", p)
	}
	db.SetBatchSize(0)

	// Workers=1 disables parallel marking entirely.
	db.SetParallelism(1)
	db.SetBatchSize(128)
	p = plan("EXPLAIN SELECT k, count(*) FROM nums GROUP BY k")
	if strings.Contains(p, "Parallel") {
		t.Fatalf("workers=1 must not parallelize, got:\n%s", p)
	}
}

// TestParallelStressRace hammers one DB with concurrent morsel-parallel
// queries (run under -race in CI) and cross-checks every result against the
// serial answer.
func TestParallelStressRace(t *testing.T) {
	db := NewDB()
	loadNums(t, db, 2000, 5)
	db.SetParallelism(1)
	want := map[string][]string{}
	queries := []string{
		"SELECT k, count(*), sum(v) FROM nums WHERE v > 250 GROUP BY k",
		"SELECT count(*), min(id) FROM nums GROUP BY x, y DISTANCE-TO-ANY L2 WITHIN 4",
		"SELECT count(*) FROM nums WHERE mod(v, 2) = 0",
	}
	for _, q := range queries {
		res, err := db.Query(q)
		if err != nil {
			t.Fatal(err)
		}
		want[q] = sortedRowStrings(res)
	}

	db.SetParallelism(4)
	db.SetBatchSize(64)
	var wg sync.WaitGroup
	errCh := make(chan error, 64)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 8; i++ {
				q := queries[(g+i)%len(queries)]
				res, err := db.Query(q)
				if err != nil {
					errCh <- fmt.Errorf("%q: %w", q, err)
					return
				}
				got := sortedRowStrings(res)
				if strings.Join(got, ";") != strings.Join(want[q], ";") {
					errCh <- fmt.Errorf("%q: result diverged under concurrency", q)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}
}

// TestParallelCancellationPrompt cancels a morsel-parallel aggregation
// mid-flight: the worker pool must drain and surface context.Canceled well
// before the query's natural runtime.
func TestParallelCancellationPrompt(t *testing.T) {
	db := NewDB()
	loadNums(t, db, 200000, 9)
	db.SetParallelism(4)

	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(10 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	_, err := db.QueryContext(ctx, "SELECT id, count(*), sum(v), avg(v) FROM nums GROUP BY id")
	elapsed := time.Since(start)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled (elapsed %v)", err, elapsed)
	}
	if elapsed > 2*time.Second {
		t.Fatalf("cancellation took %v, want prompt abort", elapsed)
	}
	// The DB must remain fully usable.
	if _, err := db.Query("SELECT count(*) FROM nums"); err != nil {
		t.Fatalf("query after cancellation: %v", err)
	}
}

// TestParallelRowLimitAcrossWorkers checks that the per-query row budget is
// charged atomically across morsel workers: a parallel aggregation whose
// input exceeds the budget fails with ResourceLimitError, not a wrong answer.
func TestParallelRowLimitAcrossWorkers(t *testing.T) {
	db := NewDB()
	loadNums(t, db, 3000, 13)
	db.SetParallelism(4)
	db.SetBatchSize(64)
	db.SetLimits(Limits{MaxRowsMaterialized: 500})
	_, err := db.Query("SELECT count(*), min(id) FROM nums GROUP BY x, y DISTANCE-TO-ANY L2 WITHIN 3")
	var rle *ResourceLimitError
	if !errors.As(err, &rle) {
		t.Fatalf("err = %v, want ResourceLimitError", err)
	}
	db.SetLimits(Limits{})
	if _, err := db.Query("SELECT count(*) FROM nums"); err != nil {
		t.Fatalf("query after limit error: %v", err)
	}
}

// TestPointConversionAllocs pins the allocation profile of the row→column
// conversion: one coordinate arena plus one column-header slice, regardless
// of tuple count — not one allocation per row.
func TestPointConversionAllocs(t *testing.T) {
	op := &sgbAggOp{groupExprs: []evalFn{
		func(r Row) (Value, error) { return r[0], nil },
		func(r Row) (Value, error) { return r[1], nil },
	}}
	tuples := make([]Row, 512)
	for i := range tuples {
		tuples[i] = Row{NewFloat(float64(i)), NewFloat(float64(i * 2))}
	}
	allocs := testing.AllocsPerRun(20, func() {
		if _, err := op.colsOf(tuples); err != nil {
			t.Fatal(err)
		}
	})
	if allocs > 2 {
		t.Fatalf("colsOf allocates %v times per run, want <= 2 (arena + headers)", allocs)
	}
}

// BenchmarkPointConversion measures the arena-backed conversion so an
// accidental return to per-row allocation is visible in the bench smoke run.
func BenchmarkPointConversion(b *testing.B) {
	op := &sgbAggOp{groupExprs: []evalFn{
		func(r Row) (Value, error) { return r[0], nil },
		func(r Row) (Value, error) { return r[1], nil },
	}}
	tuples := make([]Row, 1024)
	for i := range tuples {
		tuples[i] = Row{NewFloat(float64(i)), NewFloat(float64(i * 3))}
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := op.colsOf(tuples); err != nil {
			b.Fatal(err)
		}
	}
}
