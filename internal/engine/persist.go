package engine

import (
	"encoding/gob"
	"fmt"
	"io"

	"sgb/internal/core"
)

// algFromByte decodes a stored algorithm selector, defaulting to the index
// variant on unknown values.
func algFromByte(b uint8) core.Algorithm {
	switch a := core.Algorithm(b); a {
	case core.AllPairs, core.BoundsChecking, core.IndexBounds:
		return a
	default:
		return core.IndexBounds
	}
}

// snapshot is the gob-encoded durable form of a database: the full catalog
// plus session settings. The engine is an in-memory system like the paper's
// prototype; snapshot persistence lets long-lived datasets (generated
// benchmarks, loaded CSVs) be saved and reopened without regeneration.
// Views are session-scoped query definitions and are not persisted;
// materialized views are durable catalog objects and are.
type snapshot struct {
	Version int
	Tables  []*Table
	SGBAlg  uint8
	// SGBManual marks SGBAlg as an explicit override rather than the auto
	// fallback hint. The field is inverted from DB.sgbAuto so snapshots
	// written before cost-based selection existed (field absent, decodes
	// false) restore into auto mode, today's default.
	SGBManual bool
	// MatViews stores each materialized view as its name plus the original
	// SELECT text, re-parsed on load. The field is additive: snapshots from
	// before materialized views existed decode it empty.
	MatViews []SavedMatView
}

// SavedMatView is the persisted form of one materialized view definition.
type SavedMatView struct {
	Name string
	SQL  string
}

const snapshotVersion = 1

// Save writes a snapshot of the database to w. It takes the statement lock in
// read mode, so it sees a consistent catalog even with queries in flight.
func (db *DB) Save(w io.Writer) error { return db.SaveLocked(w, nil) }

// SaveLocked is Save with a callback invoked while the statement lock is
// held in read mode. Commit hooks run under the exclusive lock, so any state
// the callback captures (in particular the WAL position) is exactly
// consistent with the snapshot — this is how the checkpointer records which
// log prefix a snapshot covers.
func (db *DB) SaveLocked(w io.Writer, locked func()) error {
	db.mu.RLock()
	defer db.mu.RUnlock()
	if locked != nil {
		locked()
	}
	snap := snapshot{
		Version:   snapshotVersion,
		SGBAlg:    uint8(db.SGBAlgorithm()),
		SGBManual: !db.SGBAlgorithmIsAuto(),
	}
	for _, name := range db.cat.Names() {
		t, err := db.cat.Get(name)
		if err != nil {
			return err
		}
		snap.Tables = append(snap.Tables, t)
	}
	for _, mv := range db.cat.MatViews() {
		snap.MatViews = append(snap.MatViews, SavedMatView{Name: mv.Name, SQL: mv.SQL})
	}
	return gob.NewEncoder(w).Encode(&snap)
}

// Load restores a database from a snapshot written by Save.
func Load(r io.Reader) (*DB, error) {
	var snap snapshot
	if err := gob.NewDecoder(r).Decode(&snap); err != nil {
		return nil, fmt.Errorf("engine: loading snapshot: %w", err)
	}
	if snap.Version != snapshotVersion {
		return nil, fmt.Errorf("engine: unsupported snapshot version %d", snap.Version)
	}
	db := NewDB()
	if snap.SGBManual {
		db.SetSGBAlgorithm(algFromByte(snap.SGBAlg))
	} else {
		// Keep auto selection on but restore the fallback hint. Load runs
		// before the DB is shared, so the direct write cannot race.
		db.sgbAlg = algFromByte(snap.SGBAlg)
	}
	for _, t := range snap.Tables {
		created, err := db.cat.Create(t.Name, t.Schema)
		if err != nil {
			return nil, err
		}
		// Create re-qualifies the schema by table name; keep the stored
		// qualification, rows, statistics and index metadata as-is (index
		// buckets are rebuilt lazily on first use).
		created.Schema = t.Schema
		created.Rows = t.Rows
		created.Indexes = t.Indexes
		created.Stats = t.Stats
	}
	// Materialized views restore after tables so their base tables resolve;
	// re-parsing the stored SELECT re-derives the validated shape.
	for _, saved := range snap.MatViews {
		stmt, err := Parse(saved.SQL)
		if err != nil {
			return nil, fmt.Errorf("engine: snapshot matview %s: %w", saved.Name, err)
		}
		sel, ok := stmt.(*SelectStmt)
		if !ok {
			return nil, fmt.Errorf("engine: snapshot matview %s: definition is not a SELECT", saved.Name)
		}
		shape, err := db.matViewShape(sel)
		if err != nil {
			return nil, fmt.Errorf("engine: snapshot matview %s: %w", saved.Name, err)
		}
		mv := &MatView{Name: saved.Name, Query: sel, SQL: saved.SQL, Shape: shape}
		if err := db.cat.CreateMatView(mv); err != nil {
			return nil, err
		}
	}
	return db, nil
}
