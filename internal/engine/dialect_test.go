package engine

import (
	"reflect"
	"testing"
)

func TestDistinct(t *testing.T) {
	db := testDB(t)
	got := queryStrings(t, db, "SELECT DISTINCT dept FROM emp ORDER BY dept")
	want := [][]string{{"10"}, {"20"}, {"30"}}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("got %v", got)
	}
	// Multi-column distinct keeps distinct combinations.
	if _, err := db.Exec("INSERT INTO emp VALUES (6, 'ann', 10, 1000.0)"); err != nil {
		t.Fatal(err)
	}
	got = queryStrings(t, db, "SELECT DISTINCT name, dept FROM emp WHERE dept = 10 ORDER BY name")
	want = [][]string{{"ann", "10"}, {"bob", "10"}}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("got %v", got)
	}
}

func TestDistinctWithLimit(t *testing.T) {
	db := testDB(t)
	got := queryStrings(t, db, "SELECT DISTINCT dept FROM emp ORDER BY dept LIMIT 2")
	want := [][]string{{"10"}, {"20"}}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("got %v", got)
	}
}

func TestBetween(t *testing.T) {
	db := testDB(t)
	got := queryStrings(t, db, "SELECT name FROM emp WHERE salary BETWEEN 1000 AND 1500 ORDER BY name")
	want := [][]string{{"ann"}, {"bob"}, {"dan"}}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("got %v", got)
	}
	got = queryStrings(t, db, "SELECT name FROM emp WHERE salary NOT BETWEEN 1000 AND 1500 ORDER BY name")
	want = [][]string{{"cat"}, {"eve"}}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("got %v", got)
	}
	// BETWEEN binds tighter than AND: the outer conjunct still applies.
	got = queryStrings(t, db, "SELECT name FROM emp WHERE salary BETWEEN 1000 AND 1500 AND dept = 10 ORDER BY name")
	want = [][]string{{"ann"}, {"bob"}}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("got %v", got)
	}
}

func TestLike(t *testing.T) {
	db := NewDB()
	if _, err := db.Exec("CREATE TABLE s (v TEXT)"); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Exec("INSERT INTO s VALUES ('alpha'), ('beta'), ('alphabet'), ('ALPHA'), ('a'), ('')"); err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		pattern string
		want    []string
	}{
		{"alpha", []string{"alpha"}},
		{"alpha%", []string{"alpha", "alphabet"}},
		{"%a", []string{"a", "alpha", "beta"}},
		{"%alph%", []string{"alpha", "alphabet"}},
		{"_lpha", []string{"alpha"}},
		{"%", []string{"", "ALPHA", "a", "alpha", "alphabet", "beta"}},
		{"_", []string{"a"}},
		{"", []string{""}},
	}
	for _, c := range cases {
		got := queryStrings(t, db, "SELECT v FROM s WHERE v LIKE '"+c.pattern+"' ORDER BY v")
		flat := make([]string, len(got))
		for i, r := range got {
			flat[i] = r[0]
		}
		if !reflect.DeepEqual(flat, c.want) {
			t.Errorf("LIKE %q = %v, want %v", c.pattern, flat, c.want)
		}
	}
	got := queryStrings(t, db, "SELECT v FROM s WHERE v NOT LIKE '%a%' ORDER BY v")
	if len(got) != 3 { // "", ALPHA, beta? beta has 'a'. So "", "ALPHA" only -> 2
		// beta contains 'a', ALPHA is case-sensitive no lowercase a, "" has none.
		if len(got) != 2 {
			t.Fatalf("NOT LIKE result: %v", got)
		}
	}
	if _, err := db.Query("SELECT v FROM s WHERE v LIKE 5"); err == nil {
		t.Error("LIKE accepted a non-string pattern")
	}
}

func TestLikeMatchUnit(t *testing.T) {
	cases := []struct {
		pattern, s string
		want       bool
	}{
		{"", "", true},
		{"%", "", true},
		{"%%", "anything", true},
		{"a%c", "abc", true},
		{"a%c", "ac", true},
		{"a%c", "abd", false},
		{"a_c", "abc", true},
		{"a_c", "ac", false},
		{"%b%", "abc", true},
		{"%b%", "xyz", false},
		{"abc", "ab", false},
		{"ab", "abc", false},
		{"%abc", "xxabc", true},
		{"abc%", "abcxx", true},
		{"%a%b%c%", "1a2b3c4", true},
	}
	for _, c := range cases {
		if got := likeMatch(c.pattern, c.s); got != c.want {
			t.Errorf("likeMatch(%q, %q) = %v, want %v", c.pattern, c.s, got, c.want)
		}
	}
}

func TestDistinctInExplain(t *testing.T) {
	db := testDB(t)
	res, err := db.Exec("EXPLAIN SELECT DISTINCT dept FROM emp")
	if err != nil {
		t.Fatal(err)
	}
	if !containsLine(res, "Distinct") {
		t.Fatalf("plan missing Distinct:\n%s", planText(res))
	}
}

func containsLine(res *Result, substr string) bool {
	for _, r := range res.Rows {
		if len(r) > 0 && r[0].T == TypeString && contains(r[0].S, substr) {
			return true
		}
	}
	return false
}

func contains(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}

func TestCaseSearched(t *testing.T) {
	db := testDB(t)
	got := queryStrings(t, db, `
		SELECT name, CASE WHEN salary >= 1500 THEN 'high'
		                  WHEN salary >= 1000 THEN 'mid'
		                  ELSE 'low' END AS band
		FROM emp ORDER BY name`)
	want := [][]string{
		{"ann", "mid"}, {"bob", "mid"}, {"cat", "low"}, {"dan", "high"}, {"eve", "high"},
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("got %v", got)
	}
}

func TestCaseSimpleForm(t *testing.T) {
	db := testDB(t)
	got := queryStrings(t, db, `
		SELECT name, CASE dept WHEN 10 THEN 'eng' WHEN 20 THEN 'ops' END AS d
		FROM emp ORDER BY name`)
	if got[4][1] != "NULL" { // eve, dept 30, no ELSE
		t.Fatalf("missing ELSE should yield NULL: %v", got)
	}
	if got[0][1] != "eng" || got[2][1] != "ops" {
		t.Fatalf("got %v", got)
	}
}

func TestCaseInAggregateAndGroupBy(t *testing.T) {
	db := testDB(t)
	// Pivot-style conditional aggregation.
	got := queryStrings(t, db, `
		SELECT sum(CASE WHEN dept = 10 THEN salary ELSE 0 END),
		       sum(CASE WHEN dept <> 10 THEN salary ELSE 0 END)
		FROM emp`)
	want := [][]string{{"2200", "4400"}}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("got %v", got)
	}
	// CASE over a grouped column.
	got = queryStrings(t, db, `
		SELECT CASE WHEN dept = 10 THEN 'eng' ELSE 'other' END, count(*)
		FROM emp GROUP BY dept ORDER BY dept`)
	if got[0][0] != "eng" || got[1][0] != "other" {
		t.Fatalf("got %v", got)
	}
}

func TestCaseErrors(t *testing.T) {
	db := testDB(t)
	if _, err := db.Query("SELECT CASE END FROM emp"); err == nil {
		t.Error("CASE without WHEN accepted")
	}
	if _, err := db.Query("SELECT CASE WHEN 1 THEN 2 FROM emp"); err == nil {
		t.Error("CASE without END accepted")
	}
	// Searched CASE requires boolean conditions; an integer is never truthy.
	got := queryStrings(t, db, "SELECT CASE WHEN salary THEN 1 ELSE 0 END FROM emp LIMIT 1")
	if got[0][0] != "0" {
		t.Fatalf("non-boolean WHEN treated as true: %v", got)
	}
}

func TestCaseNullOperand(t *testing.T) {
	db := NewDB()
	if _, err := db.Exec("CREATE TABLE t (v INT)"); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Exec("INSERT INTO t VALUES (NULL), (1)"); err != nil {
		t.Fatal(err)
	}
	// NULL operand matches no WHEN arm (SQL semantics).
	got := queryStrings(t, db, "SELECT CASE v WHEN 1 THEN 'one' ELSE 'other' END FROM t")
	if got[0][0] != "other" || got[1][0] != "one" {
		t.Fatalf("got %v", got)
	}
}

func TestGroupByCaseExpression(t *testing.T) {
	db := testDB(t)
	got := queryStrings(t, db, `
		SELECT CASE WHEN salary >= 1200 THEN 'senior' ELSE 'junior' END AS band, count(*)
		FROM emp
		GROUP BY CASE WHEN salary >= 1200 THEN 'senior' ELSE 'junior' END
		ORDER BY band`)
	want := [][]string{{"junior", "2"}, {"senior", "3"}}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("got %v", got)
	}
}

func TestStddevVariance(t *testing.T) {
	db := NewDB()
	if _, err := db.Exec("CREATE TABLE v (g INT, x FLOAT)"); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Exec("INSERT INTO v VALUES (1, 2), (1, 4), (1, 4), (1, 4), (1, 5), (1, 5), (1, 7), (1, 9), (2, 3)"); err != nil {
		t.Fatal(err)
	}
	got := queryStrings(t, db, "SELECT g, variance(x), stddev(x) FROM v GROUP BY g ORDER BY g")
	// Sample variance of {2,4,4,4,5,5,7,9} is 32/7.
	if got[0][1] != "4.571428571428571" {
		t.Fatalf("variance = %v", got[0])
	}
	// A single-value group has undefined sample variance.
	if got[1][1] != "NULL" || got[1][2] != "NULL" {
		t.Fatalf("singleton variance = %v", got[1])
	}
	if _, err := db.Query("SELECT stddev(x, 2) FROM v"); err == nil {
		t.Error("stddev with two args accepted")
	}
}

func TestInsertSelect(t *testing.T) {
	db := testDB(t)
	if _, err := db.Exec("CREATE TABLE rich (name TEXT, salary FLOAT)"); err != nil {
		t.Fatal(err)
	}
	res, err := db.Exec("INSERT INTO rich SELECT name, salary FROM emp WHERE salary >= 1200")
	if err != nil {
		t.Fatal(err)
	}
	if res.RowsAffected != 3 {
		t.Fatalf("inserted %d rows", res.RowsAffected)
	}
	got := queryStrings(t, db, "SELECT name FROM rich ORDER BY name")
	want := [][]string{{"bob"}, {"dan"}, {"eve"}}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("got %v", got)
	}
	// Arity and type mismatches error out.
	if _, err := db.Exec("INSERT INTO rich SELECT name FROM emp"); err == nil {
		t.Error("arity mismatch accepted")
	}
	if _, err := db.Exec("INSERT INTO rich SELECT salary, name FROM emp"); err == nil {
		t.Error("type mismatch accepted")
	}
	// Materializing an SGB result into a table.
	if _, err := db.Exec("CREATE TABLE bands (members INT)"); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Exec(`INSERT INTO bands
		SELECT count(*) FROM emp
		GROUP BY salary, dept DISTANCE-TO-ALL L2 WITHIN 150 ON-OVERLAP JOIN-ANY`); err != nil {
		t.Fatal(err)
	}
	got = queryStrings(t, db, "SELECT sum(members) FROM bands")
	if got[0][0] != "5" {
		t.Fatalf("materialized SGB members = %v", got)
	}
}

func TestAggregateDistinct(t *testing.T) {
	db := NewDB()
	if _, err := db.Exec("CREATE TABLE d (g INT, v INT)"); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Exec("INSERT INTO d VALUES (1, 5), (1, 5), (1, 7), (2, 9), (2, 9), (2, 9)"); err != nil {
		t.Fatal(err)
	}
	got := queryStrings(t, db, `
		SELECT g, count(v), count(DISTINCT v), sum(DISTINCT v), avg(DISTINCT v)
		FROM d GROUP BY g ORDER BY g`)
	want := [][]string{
		{"1", "3", "2", "12", "6"},
		{"2", "3", "1", "9", "9"},
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("got %v", got)
	}
	// DISTINCT and plain versions of the same aggregate are separate calls.
	got = queryStrings(t, db, "SELECT count(v), count(DISTINCT v) FROM d")
	if got[0][0] != "6" || got[0][1] != "3" {
		t.Fatalf("got %v", got)
	}
	if _, err := db.Query("SELECT count(DISTINCT *) FROM d"); err == nil {
		t.Error("count(DISTINCT *) accepted")
	}
	if _, err := db.Query("SELECT abs(DISTINCT v) FROM d"); err == nil {
		t.Error("DISTINCT on a scalar function accepted")
	}
	// array_agg(DISTINCT ...) dedups the list.
	got = queryStrings(t, db, "SELECT array_agg(DISTINCT v) FROM d WHERE g = 2")
	if got[0][0] != "{9}" {
		t.Fatalf("got %v", got)
	}
}

func TestOrderByAggregateNotInSelect(t *testing.T) {
	// ORDER BY may introduce an aggregate that the SELECT list does not
	// project; the rewriter must register it with the aggregation operator.
	db := testDB(t)
	got := queryStrings(t, db, "SELECT dept FROM emp GROUP BY dept ORDER BY sum(salary) DESC")
	want := [][]string{{"20"}, {"10"}, {"30"}}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("got %v", got)
	}
	// And mixed with a projected aggregate.
	got = queryStrings(t, db, "SELECT dept, count(*) FROM emp GROUP BY dept ORDER BY max(salary)")
	if got[0][0] != "10" || got[2][0] != "30" {
		t.Fatalf("got %v", got)
	}
}
