package engine

import (
	"math"

	"sgb/internal/core"
)

// This file is the planner's cost model. Every physical operator embeds a
// planEst and exposes Cost()/EstRows(); estimateTree stamps the whole tree
// bottom-up from the statistics catalog (stats.go). The SGB cost formulas
// follow the paper's complexity analysis — All-Pairs O(n·g), Bounds-Checking
// O(n·g) rectangle tests plus O(n·k) distances, on-the-fly Index O(n log g)
// window queries plus O(n·k) distances — with constants calibrated against
// the BENCH_7 probe measurements (one cost unit ≈ 10 ns on the reference
// host; e.g. the sgb_all_join_any_l2 probe at n=5000: All-Pairs measured
// 16.3 ms over 1.84M distance comps ≈ 8.8 ns/unit, Index measured 7.6 ms
// against an estimated 0.76M units ≈ 9.9 ns/unit).
const (
	// costScanRow is the per-row cost of producing a stored row from a scan.
	costScanRow = 0.5
	// costPredEval is the per-row cost of evaluating one compiled expression.
	costPredEval = 1.0
	// costHashRow is the per-row cost of hashing into a join or group table.
	costHashRow = 2.0
	// costCompare is the per-comparison cost of sorting.
	costCompare = 0.5
	// costDistComp is the cost of one point-to-point distance computation —
	// the unit the SGB constants below are expressed in.
	costDistComp = 1.0
	// costRectTest is one bounds-checking rectangle (MBR) containment test:
	// cheaper than a distance because it short-circuits per dimension.
	costRectTest = 0.7
	// costWindowQuery is one on-the-fly-index window query / index update
	// pair per log-factor step: the dominant constant of the index variant.
	costWindowQuery = 16.0
)

// planEst holds an operator's planner estimates. Every physical operator
// embeds one; estimateTree fills it in and EXPLAIN renders it.
type planEst struct {
	estRows float64
	estCost float64
	estDone bool
}

// EstRows is the estimated output cardinality.
func (e *planEst) EstRows() float64 { return e.estRows }

// Cost is the estimated total cost of running the operator to completion,
// including its children.
func (e *planEst) Cost() float64 { return e.estCost }

func (e *planEst) setEst(rows, cost float64) {
	e.estRows, e.estCost, e.estDone = rows, cost, true
}

// costed is implemented by every operator carrying planner estimates.
type costed interface {
	EstRows() float64
	Cost() float64
	estimated() bool
}

func (e *planEst) estimated() bool { return e.estDone }

// underlyingTable walks a predicate-only pipeline down to its base table, the
// source of the statistics the selectivity and SGB estimators consume. It
// stops at anything that re-layouts or re-sources rows (projections, joins,
// subqueries), where positional column mapping to the base table breaks.
func underlyingTable(op operator) *Table {
	for {
		switch o := op.(type) {
		case *scanOp:
			return o.table
		case *indexScanOp:
			return o.table
		case *filterOp:
			op = o.child
		case *limitOp:
			op = o.child
		default:
			return nil
		}
	}
}

// estimateTree computes (and stamps) rows/cost estimates for op's subtree,
// returning op's own. It is idempotent: the analyzer calls it on subtrees
// mid-planning (SGB algorithm selection needs the input cardinality before
// the aggregation operator exists) and once more on the final root.
func (pc *planContext) estimateTree(op operator) (rows, cost float64) {
	switch op := op.(type) {
	case *scanOp:
		n := float64(len(op.table.Rows))
		op.setEst(n, n*costScanRow)

	case *indexScanOp:
		n := float64(len(op.table.Rows))
		out := n / 10
		if s := op.table.Stats; s.Fresh() {
			if i, err := op.table.Schema.Resolve("", op.ix.Column); err == nil {
				if c := s.Col(i); c != nil && c.DistinctEst > 0 {
					out = n / float64(c.DistinctEst)
				}
			}
		}
		out = clampEst(out, 0, n)
		op.setEst(out, out*costScanRow)

	case *valuesOp:
		n := float64(len(op.rows))
		op.setEst(n, n*costScanRow)

	case *renameOp:
		r, c := pc.estimateTree(op.child)
		op.setEst(r, c)

	case *filterOp:
		r, c := pc.estimateTree(op.child)
		sel := pc.selectivity(op.srcExpr, op.child)
		op.setEst(r*sel, c+r*costPredEval)

	case *projectOp:
		r, c := pc.estimateTree(op.child)
		op.setEst(r, c+r*float64(len(op.fns))*costPredEval)

	case *hashJoinOp:
		lr, lc := pc.estimateTree(op.left)
		rr, rc := pc.estimateTree(op.right)
		// Foreign-key-ish heuristic: an equi-join rarely exceeds the larger
		// input when keys are near-unique on one side.
		out := math.Max(lr, rr)
		op.setEst(out, lc+rc+(lr+rr)*costHashRow)

	case *crossJoinOp:
		lr, lc := pc.estimateTree(op.left)
		rr, rc := pc.estimateTree(op.right)
		out := lr * rr
		op.setEst(out, lc+rc+out*costScanRow)

	case *sortOp:
		r, c := pc.estimateTree(op.child)
		op.setEst(r, c+r*math.Log2(r+2)*costCompare)

	case *limitOp:
		r, c := pc.estimateTree(op.child)
		consumed := r
		out := math.Max(r-float64(op.offset), 0)
		if op.n >= 0 {
			out = math.Min(out, float64(op.n))
			consumed = math.Min(r, float64(op.n+op.offset))
		}
		// A limit stops pulling once satisfied, so it pays only the consumed
		// fraction of a streaming child's cost. (Blocking children — sorts,
		// aggregations — still pay in full; the fraction is a best case.)
		frac := 1.0
		if r > 0 {
			frac = consumed / r
		}
		op.setEst(out, c*frac)

	case *distinctOp:
		r, c := pc.estimateTree(op.child)
		op.setEst(r, c+r*costHashRow)

	case *hashAggOp:
		r, c := pc.estimateTree(op.child)
		groups := pc.estGroups(op.astGroups, op.child, r)
		op.setEst(groups, c+r*costHashRow+groups*math.Log2(groups+2)*costCompare)

	case *sgbAggOp:
		r, c := pc.estimateTree(op.child)
		n, g, k := pc.sgbShape(op.child, &op.spec)
		groupCost := sgbCost(op.spec.Mode, op.algorithm, n, g, k)
		if op.colPlan != nil {
			// The tuple-free columnar path skips per-row materialization on
			// collection; the grouping work is identical.
			c *= 0.6
		}
		op.setEst(g, c+r*costHashRow+groupCost)

	default:
		// Unknown operator (tests may wrap operators): pass through zero.
		return 0, 0
	}
	co := op.(costed)
	return co.EstRows(), co.Cost()
}

// estGroups estimates a hash aggregation's group count: 1 for a global
// aggregate, the product of the grouping columns' distinct counts when fresh
// statistics resolve them, else a fixed-fanout guess.
func (pc *planContext) estGroups(groupExprs []Expr, child operator, inRows float64) float64 {
	if len(groupExprs) == 0 {
		return 1
	}
	t := underlyingTable(child)
	distinct := 1.0
	known := false
	if t != nil && t.Stats.Fresh() {
		sch := child.schema()
		for _, g := range groupExprs {
			ref, ok := g.(*ColumnRef)
			if !ok {
				known = false
				break
			}
			i, err := sch.Resolve(ref.Table, ref.Name)
			if err != nil {
				known = false
				break
			}
			c := t.Stats.Col(i)
			if c == nil || c.DistinctEst <= 0 {
				known = false
				break
			}
			distinct *= float64(c.DistinctEst)
			known = true
		}
	}
	if !known {
		distinct = inRows / 3
	}
	return clampEst(distinct, 1, math.Max(inRows, 1))
}

// sgbShape estimates the three quantities the SGB cost formulas need for a
// similarity aggregation over child: n (input points), g (groups — how many
// ε-sized clusters the data sustains, from the density sketch's occupied
// area), and k (expected ε-neighbors per point, from the sketch's density
// moment). Without fresh statistics it falls back to fixed fractions, which
// deterministically keep tiny inputs on All-Pairs and large ones on the
// index — the paper's qualitative regimes.
func (pc *planContext) sgbShape(child operator, spec *SimilaritySpec) (n, g, k float64) {
	n, _ = pc.estimateTree(child)
	area := neighborArea(spec.Metric, spec.Eps)
	if t := underlyingTable(child); t != nil && t.Stats.Fresh() && t.Stats.Sketch != nil {
		sk := t.Stats.Sketch
		scale := 1.0
		if sk.N > 0 {
			scale = n / float64(sk.N)
		}
		k = sk.ExpectedNeighbors(area) * scale
		if occ := sk.OccupiedArea(); occ > 0 && area > 0 {
			g = occ / area
		}
	}
	if g <= 0 {
		g = n / 4
	}
	g = clampEst(g, 1, math.Max(n, 1))
	if k <= 0 {
		k = 4
	}
	k = clampEst(k, 0, math.Max(n, 1))
	return n, g, k
}

// sgbCost is the grouping cost of one SGB execution, per physical algorithm.
// The formulas mirror the operators' actual counters: All-Pairs compares
// every point against every group, Bounds-Checking filters those comparisons
// through per-group MBR rectangle tests, and the on-the-fly index pays a
// window query per point (log-scaled by the live group count) plus the
// distance comparisons against the k neighbors each window returns.
func sgbCost(mode SGBMode, alg core.Algorithm, n, g, k float64) float64 {
	if mode == SGBAnyMode {
		// SGB-Any merges groups transitively: All-Pairs degenerates to
		// point-vs-point comparison (n²/2); Bounds-Checking has no Any
		// variant and executes as the index (see sgbAggOp.groupSerial).
		if alg == core.AllPairs {
			return 0.5 * n * n * costDistComp
		}
		return n*costWindowQuery*(1+math.Log2(1+n)) + n*k*costDistComp
	}
	switch alg {
	case core.AllPairs:
		return n * g * costDistComp
	case core.BoundsChecking:
		return n*g*costRectTest + n*k*costDistComp
	default: // core.IndexBounds
		return n*costWindowQuery*(1+math.Log2(1+g)) + n*k*costDistComp
	}
}

// resolveSGBAlgorithm picks the physical SGB algorithm for one aggregation:
// the session's explicit \alg override when set, otherwise the cost-minimal
// candidate under the statistics catalog. With the optimizer disabled, auto
// resolves to the engine default (the on-the-fly index).
func (pc *planContext) resolveSGBAlgorithm(child operator, spec *SimilaritySpec) (core.Algorithm, bool) {
	if !pc.qc.algorithmAuto() {
		return pc.qc.algorithm(), false
	}
	if !pc.qc.optimize() {
		return core.IndexBounds, true
	}
	n, g, k := pc.sgbShape(child, spec)
	candidates := []core.Algorithm{core.AllPairs, core.IndexBounds}
	if spec.Mode == SGBAllMode {
		candidates = append(candidates, core.BoundsChecking)
	}
	best := core.IndexBounds
	bestCost := math.Inf(1)
	for _, a := range candidates {
		if c := sgbCost(spec.Mode, a, n, g, k); c < bestCost {
			best, bestCost = a, c
		}
	}
	pc.ruleApplied("sgb_algorithm_selection")
	return best, true
}

// selectivity estimates the fraction of rows a predicate passes, using fresh
// column statistics when the expression resolves onto the child's base table
// and conservative constants otherwise.
func (pc *planContext) selectivity(e Expr, child operator) float64 {
	if e == nil {
		return 1
	}
	switch e := e.(type) {
	case *BinaryExpr:
		switch e.Op {
		case "AND":
			return pc.selectivity(e.L, child) * pc.selectivity(e.R, child)
		case "OR":
			l, r := pc.selectivity(e.L, child), pc.selectivity(e.R, child)
			return math.Min(l+r-l*r, 1)
		case "=":
			return pc.eqSelectivity(e, child)
		case "<>":
			return 1 - pc.eqSelectivity(e, child)
		case "<", "<=", ">", ">=":
			return pc.rangeSelectivity(e, child)
		}
	case *UnaryExpr:
		if e.Op == "NOT" {
			return 1 - pc.selectivity(e.X, child)
		}
	case *InList:
		s := math.Min(float64(len(e.Items))*0.1, 1)
		if e.Not {
			return 1 - s
		}
		return s
	}
	return 1.0 / 3
}

// colStatsFor resolves a column reference against the child schema onto its
// base table's statistics. Predicate-only pipelines preserve the base table's
// column layout, so the schema position doubles as the stats index.
func colStatsFor(ref *ColumnRef, child operator) *ColumnStats {
	t := underlyingTable(child)
	if t == nil || !t.Stats.Fresh() {
		return nil
	}
	i, err := child.schema().Resolve(ref.Table, ref.Name)
	if err != nil || i >= len(t.Schema) {
		return nil
	}
	return t.Stats.Col(i)
}

// splitColConst decomposes a comparison into (column, constant) regardless of
// which side the column is on; ok is false when neither side qualifies.
func splitColConst(e *BinaryExpr) (ref *ColumnRef, c Expr, flipped, ok bool) {
	if r, isCol := e.L.(*ColumnRef); isCol && isConstExpr(e.R) {
		return r, e.R, false, true
	}
	if r, isCol := e.R.(*ColumnRef); isCol && isConstExpr(e.L) {
		return r, e.L, true, true
	}
	return nil, nil, false, false
}

func constFloat(e Expr) (float64, bool) {
	fn, err := compileExpr(e, nil, nil)
	if err != nil {
		return 0, false
	}
	v, err := fn(nil)
	if err != nil || v.IsNull() {
		return 0, false
	}
	f, err := v.AsFloat()
	if err != nil {
		return 0, false
	}
	return f, true
}

func (pc *planContext) eqSelectivity(e *BinaryExpr, child operator) float64 {
	ref, _, _, ok := splitColConst(e)
	if !ok {
		return 0.1
	}
	if cs := colStatsFor(ref, child); cs != nil && cs.DistinctEst > 0 {
		return 1 / float64(cs.DistinctEst)
	}
	return 0.1
}

// rangeSelectivity interpolates a one-sided range predicate's selectivity
// within the column's [min, max] under a uniformity assumption.
func (pc *planContext) rangeSelectivity(e *BinaryExpr, child operator) float64 {
	ref, c, flipped, ok := splitColConst(e)
	if !ok {
		return 1.0 / 3
	}
	cs := colStatsFor(ref, child)
	if cs == nil || !cs.HasRange || cs.Max <= cs.Min {
		return 1.0 / 3
	}
	v, ok := constFloat(c)
	if !ok {
		return 1.0 / 3
	}
	frac := (v - cs.Min) / (cs.Max - cs.Min)
	frac = clampEst(frac, 0, 1)
	op := e.Op
	if flipped { // const OP col ≡ col flip(OP) const
		switch op {
		case "<":
			op = ">"
		case "<=":
			op = ">="
		case ">":
			op = "<"
		case ">=":
			op = "<="
		}
	}
	switch op {
	case "<", "<=":
		return frac
	default: // ">", ">="
		return 1 - frac
	}
}

func clampEst(v, lo, hi float64) float64 {
	if math.IsNaN(v) || v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}
