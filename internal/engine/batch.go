package engine

import "io"

// defaultBatchSize is the number of rows moved per nextBatch call when the
// session does not override it (DB.SetBatchSize). ~1K rows amortizes the
// interface-call and cancellation-poll overhead of the Volcano iterator to
// noise while keeping per-batch buffers comfortably cache-resident.
const defaultBatchSize = 1024

// DefaultBatchSize reports the engine's default batch/morsel row count — the
// granularity the vectorized executor (and the wire protocol's row-batch
// streaming) uses when no session override is set.
func DefaultBatchSize() int { return defaultBatchSize }

// batchOperator is the vectorized side of the Volcano interface. nextBatch
// appends up to cap(dst) rows (defaultBatchSize when dst has no capacity)
// onto dst[:0] and returns the filled slice; at end of stream it returns
// (nil, io.EOF). A non-nil batch is never returned together with an error.
//
// The dst slice header is owned by the caller and reused across calls; the
// Row values appended into it must remain valid after the next call (they
// are either references to table storage or freshly allocated), so consumers
// may retain them.
type batchOperator interface {
	operator
	nextBatch(dst []Row) ([]Row, error)
}

// fetchBatch pulls one batch from op: directly when op implements
// batchOperator, otherwise through a row-at-a-time adapter so unconverted
// operators compose with batch consumers unchanged. The adapter polls qc once
// per batch it assembles: row-at-a-time children rely on their own tick()
// stride, but an operator chain with no batch-aware member in it would
// otherwise only observe cancellation every cancelCheckStride next() calls
// per operator — the poll here restores the one-check-per-batch guarantee the
// batch contract promises regardless of what op is.
func fetchBatch(op operator, dst []Row, qc *queryCtx) ([]Row, error) {
	if b, ok := op.(batchOperator); ok {
		return b.nextBatch(dst)
	}
	if err := qc.poll(); err != nil {
		return nil, err
	}
	limit := cap(dst)
	if limit == 0 {
		limit = defaultBatchSize
	}
	dst = dst[:0]
	for len(dst) < limit {
		r, err := op.next()
		if err == io.EOF {
			if len(dst) == 0 {
				return nil, io.EOF
			}
			return dst, nil
		}
		if err != nil {
			return nil, err
		}
		dst = append(dst, r)
	}
	return dst, nil
}

// batchCap resolves the row capacity of a caller-supplied batch buffer.
func batchCap(dst []Row) int {
	if c := cap(dst); c > 0 {
		return c
	}
	return defaultBatchSize
}

// ---- batch implementations for the pipeline operators ----

func (s *scanOp) nextBatch(dst []Row) ([]Row, error) {
	if s.pos >= len(s.table.Rows) {
		return nil, io.EOF
	}
	if err := s.qc.poll(); err != nil {
		return nil, err
	}
	n := batchCap(dst)
	if rest := len(s.table.Rows) - s.pos; n > rest {
		n = rest
	}
	dst = append(dst[:0], s.table.Rows[s.pos:s.pos+n]...)
	s.pos += n
	return dst, nil
}

func (v *valuesOp) nextBatch(dst []Row) ([]Row, error) {
	if v.pos >= len(v.rows) {
		return nil, io.EOF
	}
	n := batchCap(dst)
	if rest := len(v.rows) - v.pos; n > rest {
		n = rest
	}
	dst = append(dst[:0], v.rows[v.pos:v.pos+n]...)
	v.pos += n
	return dst, nil
}

func (s *indexScanOp) nextBatch(dst []Row) ([]Row, error) {
	if s.pos >= len(s.positions) {
		return nil, io.EOF
	}
	n := batchCap(dst)
	if rest := len(s.positions) - s.pos; n > rest {
		n = rest
	}
	dst = dst[:0]
	for _, p := range s.positions[s.pos : s.pos+n] {
		dst = append(dst, s.table.Rows[p])
	}
	s.pos += n
	return dst, nil
}

func (r *renameOp) nextBatch(dst []Row) ([]Row, error) {
	return fetchBatch(r.child, dst, r.qc)
}

func (f *filterOp) nextBatch(dst []Row) ([]Row, error) {
	limit := batchCap(dst)
	if f.buf == nil {
		f.buf = make([]Row, 0, limit)
	}
	dst = dst[:0]
	for {
		batch, err := fetchBatch(f.child, f.buf, f.qc)
		if err == io.EOF {
			if len(dst) == 0 {
				return nil, io.EOF
			}
			return dst, nil
		}
		if err != nil {
			return nil, err
		}
		for _, r := range batch {
			v, err := f.pred(r)
			if err != nil {
				return nil, err
			}
			if v.Truthy() {
				dst = append(dst, r)
			}
		}
		// Partial batches are fine; returning as soon as anything qualified
		// keeps latency low under selective predicates. The qualify-nothing
		// loop polls here itself: it must not depend on the child for
		// cancellation, since batch-aware children over in-memory rows
		// (valuesOp) never poll.
		if len(dst) > 0 {
			return dst, nil
		}
		if err := f.qc.poll(); err != nil {
			return nil, err
		}
	}
}

func (p *projectOp) nextBatch(dst []Row) ([]Row, error) {
	if p.buf == nil {
		p.buf = make([]Row, 0, batchCap(dst))
	}
	batch, err := fetchBatch(p.child, p.buf, p.qc)
	if err != nil {
		return nil, err
	}
	return projectBatch(batch, p.fns, dst, p.qc)
}

// projectBatch evaluates the projection over a batch, carving the output rows
// out of one flat Value arena — a single allocation per batch instead of one
// per row. The arena is never recycled, so the produced rows stay valid for
// consumers that retain them; its size is charged against the statement's
// memory account.
func projectBatch(batch []Row, fns []evalFn, dst []Row, qc *queryCtx) ([]Row, error) {
	dst = dst[:0]
	if err := qc.growMem(int64(len(batch)) * memRowBytes(len(fns))); err != nil {
		return nil, err
	}
	arena := make([]Value, len(batch)*len(fns))
	for _, r := range batch {
		out := arena[:len(fns):len(fns)]
		arena = arena[len(fns):]
		for i, f := range fns {
			v, err := f(r)
			if err != nil {
				return nil, err
			}
			out[i] = v
		}
		dst = append(dst, out)
	}
	return dst, nil
}

func (l *limitOp) nextBatch(dst []Row) ([]Row, error) {
	if l.n >= 0 && l.seen >= l.n {
		return nil, io.EOF
	}
	if l.buf == nil {
		l.buf = make([]Row, 0, batchCap(dst))
	}
	for {
		batch, err := fetchBatch(l.child, l.buf, l.qc)
		if err != nil {
			return nil, err
		}
		if skip := l.offset - l.skipped; skip > 0 {
			if skip > len(batch) {
				skip = len(batch)
			}
			l.skipped += skip
			batch = batch[skip:]
			if len(batch) == 0 {
				// Same reasoning as the filter's qualify-nothing loop: the
				// OFFSET-skipping spin must poll for itself.
				if err := l.qc.poll(); err != nil {
					return nil, err
				}
				continue
			}
		}
		if l.n >= 0 && len(batch) > l.n-l.seen {
			batch = batch[:l.n-l.seen]
		}
		l.seen += len(batch)
		return append(dst[:0], batch...), nil
	}
}
