package engine

import (
	"fmt"
	"strconv"

	"sgb/internal/core"
)

// planContext carries the catalog and SGB configuration through planning,
// and collects the SGB physical operators so their cost counters can be
// inspected after execution.
type planContext struct {
	db     *DB
	sgbOps []*sgbAggOp
	// parOps collects the operators that may run a morsel-parallel fragment,
	// so the executed worker/morsel counts can feed the engine_parallel_*
	// metrics after the statement completes.
	parOps []parallelReporter
	// qc is the executing statement's query context; the planner stamps it
	// into every operator it builds so cancellation and row limits reach the
	// whole tree, including subquery plans. nil for plan-only contexts
	// (view validation).
	qc *queryCtx
	// viewDepth guards against self-referential view definitions.
	viewDepth int
	// applied lists the analyzer rules that changed this statement's plan,
	// in application order (see analyzer.go).
	applied []string
}

// run plans and fully executes a SELECT, returning its rows and schema.
func (pc *planContext) run(stmt *SelectStmt) ([]Row, Schema, error) {
	op, err := pc.planSelect(stmt)
	if err != nil {
		return nil, nil, err
	}
	rows, err := materialize(op, pc.qc)
	if err != nil {
		return nil, nil, err
	}
	return rows, op.schema(), nil
}

// renameOp re-qualifies a child's schema under a derived-table alias.
type renameOp struct {
	planEst
	child operator
	sch   Schema
	qc    *queryCtx
}

func (r *renameOp) schema() Schema     { return r.sch }
func (r *renameOp) open() error        { return r.child.open() }
func (r *renameOp) next() (Row, error) { return r.child.next() }
func (r *renameOp) close() error       { return r.child.close() }

// planSelect plans a SELECT statement: the analyzer's AST rules rewrite the
// statement (copy-on-write), lowerSelect produces the operator tree —
// sources → pushed-down filters → left-deep (hash) joins → residual filter →
// aggregation (standard or SGB) → HAVING → projection → ORDER BY → LIMIT —
// and the analyzer's tree rules plus the cost estimator finish the plan.
func (pc *planContext) planSelect(stmt *SelectStmt) (operator, error) {
	stmt = pc.rewriteStmt(stmt)
	out, err := pc.lowerSelect(stmt)
	if err != nil {
		return nil, err
	}
	return pc.optimizeTree(out), nil
}

// lowerSelect is the statement-to-operator-tree lowering.
func (pc *planContext) lowerSelect(stmt *SelectStmt) (operator, error) {
	if len(stmt.Select) == 0 {
		return nil, fmt.Errorf("engine: empty SELECT list")
	}

	// FROM sources.
	var sources []operator
	for _, item := range stmt.From {
		var src operator
		switch {
		case item.Subquery != nil:
			sub, err := pc.planSelect(item.Subquery)
			if err != nil {
				return nil, err
			}
			src = &renameOp{child: sub, sch: sub.schema().Qualify(item.Alias), qc: pc.qc}
		default:
			view, ok := pc.db.cat.View(item.Table)
			if !ok {
				// A materialized view reads like a plain view: its definition
				// is re-planned over the base table. (The incrementally
				// maintained group state serves SUBSCRIBE streams; one-shot
				// queries recompute, keeping the two paths independently
				// checkable against each other.)
				if mv, mok := pc.db.cat.MatView(item.Table); mok {
					view, ok = mv.Query, true
				}
			}
			if ok {
				if pc.viewDepth >= 16 {
					return nil, fmt.Errorf("engine: view nesting too deep (cycle through %q?)", item.Table)
				}
				pc.viewDepth++
				sub, err := pc.planSelect(view)
				pc.viewDepth--
				if err != nil {
					return nil, fmt.Errorf("engine: view %s: %w", item.Table, err)
				}
				src = &renameOp{child: sub, sch: sub.schema().Qualify(item.Alias), qc: pc.qc}
				break
			}
			t, err := pc.db.cat.Get(item.Table)
			if err != nil {
				return nil, err
			}
			src = newScanOp(t, item.Alias, pc.qc)
		}
		sources = append(sources, src)
	}
	if len(sources) == 0 {
		sources = []operator{singleRowOp()}
	}

	conjuncts := splitConjuncts(stmt.Where)

	// Analyzer rule index_scan_selection: convert sequential scans with
	// indexed equality predicates into index scans before pushing the
	// remaining predicates down. Skipped without the optimizer (the seq scan
	// plus the pushed-down predicate is the equivalent naive plan).
	if pc.qc.optimize() {
		applied := false
		for i, src := range sources {
			before := len(conjuncts)
			sources[i], conjuncts = tryIndexScan(src, conjuncts)
			applied = applied || len(conjuncts) != before
		}
		if applied {
			pc.ruleApplied("index_scan_selection")
		}
	}

	// Analyzer rule predicate_pushdown: push single-source predicates below
	// the joins. This rule runs even with the optimizer disabled — it is
	// semantic, not just a speedup: a conjunct is compiled against the single
	// source it resolves on, where the same column name compiled against the
	// joined schema would be rejected as ambiguous.
	pushed := false
	for i, src := range sources {
		var rest []Expr
		for _, c := range conjuncts {
			if refsResolvable(c, src.schema()) {
				pred, err := compileExpr(c, src.schema(), pc)
				if err != nil {
					return nil, err
				}
				sources[i] = &filterOp{child: sources[i], pred: pred, srcExpr: c, parSafe: exprParallelSafe(c), qc: pc.qc}
				pushed = true
			} else {
				rest = append(rest, c)
			}
		}
		conjuncts = rest
	}
	if pushed && len(stmt.From) > 1 {
		pc.ruleApplied("predicate_pushdown")
	}

	// Left-deep join tree, preferring hash joins on equi-predicates.
	cur := sources[0]
	for _, next := range sources[1:] {
		var leftKeys, rightKeys []evalFn
		var rest []Expr
		for _, c := range conjuncts {
			be, ok := c.(*BinaryExpr)
			if ok && be.Op == "=" {
				switch {
				case refsResolvable(be.L, cur.schema()) && refsResolvable(be.R, next.schema()):
					lf, err := compileExpr(be.L, cur.schema(), pc)
					if err != nil {
						return nil, err
					}
					rf, err := compileExpr(be.R, next.schema(), pc)
					if err != nil {
						return nil, err
					}
					leftKeys = append(leftKeys, lf)
					rightKeys = append(rightKeys, rf)
					continue
				case refsResolvable(be.R, cur.schema()) && refsResolvable(be.L, next.schema()):
					lf, err := compileExpr(be.R, cur.schema(), pc)
					if err != nil {
						return nil, err
					}
					rf, err := compileExpr(be.L, next.schema(), pc)
					if err != nil {
						return nil, err
					}
					leftKeys = append(leftKeys, lf)
					rightKeys = append(rightKeys, rf)
					continue
				}
			}
			rest = append(rest, c)
		}
		conjuncts = rest
		if len(leftKeys) > 0 {
			cur = newHashJoinOp(cur, next, leftKeys, rightKeys, pc.qc)
		} else {
			cur = newCrossJoinOp(cur, next, pc.qc)
		}
		// Predicates that became resolvable over the joined schema apply
		// here rather than at the top, keeping cross joins small.
		var still []Expr
		for _, c := range conjuncts {
			if refsResolvable(c, cur.schema()) {
				pred, err := compileExpr(c, cur.schema(), pc)
				if err != nil {
					return nil, err
				}
				cur = &filterOp{child: cur, pred: pred, srcExpr: c, parSafe: exprParallelSafe(c), qc: pc.qc}
			} else {
				still = append(still, c)
			}
		}
		conjuncts = still
	}
	for _, c := range conjuncts {
		pred, err := compileExpr(c, cur.schema(), pc)
		if err != nil {
			return nil, err
		}
		cur = &filterOp{child: cur, pred: pred, srcExpr: c, parSafe: exprParallelSafe(c), qc: pc.qc}
	}

	// Aggregation path?
	hasAggs := stmt.GroupBy != nil || stmt.Having != nil
	for _, it := range stmt.Select {
		if !it.Star && containsAggregate(it.Expr) {
			hasAggs = true
		}
	}

	// ORDER BY expressions reference the pre-projection row; select-list
	// aliases are substituted by their defining expressions first.
	orderBy := make([]OrderItem, len(stmt.OrderBy))
	for i, o := range stmt.OrderBy {
		orderBy[i] = OrderItem{Expr: substAliases(o.Expr, stmt.Select), Desc: o.Desc}
	}

	var out operator
	if hasAggs {
		op, err := pc.planAggregate(stmt, cur, orderBy)
		if err != nil {
			return nil, err
		}
		out = op
	} else {
		if len(orderBy) > 0 {
			s, err := pc.buildSort(cur, orderBy, cur.schema(), nil)
			if err != nil {
				return nil, err
			}
			cur = s
		}
		op, _, err := pc.planProjection(stmt.Select, cur)
		if err != nil {
			return nil, err
		}
		out = op
	}
	if stmt.Distinct {
		out = &distinctOp{child: out}
	}
	if stmt.Offset > 0 || stmt.Limit >= 0 {
		out = &limitOp{child: out, n: stmt.Limit, offset: stmt.Offset, qc: pc.qc}
	}
	return out, nil
}

// substAliases replaces unqualified column references that name a SELECT
// alias with the aliased expression (the SQL ORDER BY alias rule).
func substAliases(e Expr, items []SelectItem) Expr {
	switch e := e.(type) {
	case *ColumnRef:
		if e.Table == "" {
			for _, it := range items {
				if it.Alias != "" && equalFold(it.Alias, e.Name) {
					return it.Expr
				}
			}
		}
		return e
	case *UnaryExpr:
		return &UnaryExpr{Op: e.Op, X: substAliases(e.X, items)}
	case *BinaryExpr:
		return &BinaryExpr{Op: e.Op, L: substAliases(e.L, items), R: substAliases(e.R, items)}
	case *FuncCall:
		args := make([]Expr, len(e.Args))
		for i, a := range e.Args {
			args[i] = substAliases(a, items)
		}
		return &FuncCall{Name: e.Name, Args: args, Star: e.Star, Distinct: e.Distinct}
	case *InList:
		its := make([]Expr, len(e.Items))
		for i, a := range e.Items {
			its[i] = substAliases(a, items)
		}
		return &InList{X: substAliases(e.X, items), Items: its, Not: e.Not}
	case *InSubquery:
		return &InSubquery{X: substAliases(e.X, items), Query: e.Query, Not: e.Not}
	case *ScalarSubquery:
		return e
	case *CaseExpr:
		out := &CaseExpr{Whens: make([]WhenClause, len(e.Whens))}
		if e.Operand != nil {
			out.Operand = substAliases(e.Operand, items)
		}
		for i, w := range e.Whens {
			out.Whens[i] = WhenClause{Cond: substAliases(w.Cond, items), Result: substAliases(w.Result, items)}
		}
		if e.Else != nil {
			out.Else = substAliases(e.Else, items)
		}
		return out
	}
	return e
}

func equalFold(a, b string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := 0; i < len(a); i++ {
		ca, cb := a[i], b[i]
		if 'A' <= ca && ca <= 'Z' {
			ca += 'a' - 'A'
		}
		if 'A' <= cb && cb <= 'Z' {
			cb += 'a' - 'A'
		}
		if ca != cb {
			return false
		}
	}
	return true
}

// buildSort compiles ORDER BY items against a schema (optionally routing
// them through an aggregation rewriter) and stacks a sort operator.
func (pc *planContext) buildSort(child operator, orderBy []OrderItem, sch Schema, rw *aggRewriter) (operator, error) {
	keys := make([]evalFn, len(orderBy))
	desc := make([]bool, len(orderBy))
	for i, o := range orderBy {
		e := o.Expr
		if rw != nil {
			var err error
			if e, err = rw.rewrite(e); err != nil {
				return nil, fmt.Errorf("engine: ORDER BY: %w", err)
			}
		}
		f, err := compileExpr(e, sch, pc)
		if err != nil {
			return nil, fmt.Errorf("engine: ORDER BY: %w", err)
		}
		keys[i], desc[i] = f, o.Desc
	}
	return &sortOp{child: child, keys: keys, desc: desc, qc: pc.qc}, nil
}

// planProjection lowers a non-aggregate SELECT list.
func (pc *planContext) planProjection(items []SelectItem, child operator) (operator, Schema, error) {
	if len(items) == 1 && items[0].Star {
		return child, child.schema(), nil
	}
	var fns []evalFn
	var sch Schema
	safe := true
	for i, it := range items {
		if it.Star {
			return nil, nil, fmt.Errorf("engine: SELECT * cannot be mixed with other select items")
		}
		f, err := compileExpr(it.Expr, child.schema(), pc)
		if err != nil {
			return nil, nil, err
		}
		safe = safe && exprParallelSafe(it.Expr)
		fns = append(fns, f)
		sch = append(sch, Column{Name: outputName(it, i), T: inferType(it.Expr, child.schema())})
	}
	return &projectOp{child: child, sch: sch, fns: fns, parSafe: safe, qc: pc.qc}, sch, nil
}

// planAggregate lowers a grouped (or globally aggregated) SELECT:
// the SELECT list and HAVING are rewritten over an internal schema of
// [$grp0.., $agg0..], the matching aggregation operator is instantiated
// (hash Group-By or the SGB physical operator), and HAVING plus the final
// projection are stacked on top.
func (pc *planContext) planAggregate(stmt *SelectStmt, child operator, orderBy []OrderItem) (operator, error) {
	var groupExprs []Expr
	var spec *SimilaritySpec
	if stmt.GroupBy != nil {
		groupExprs = stmt.GroupBy.Exprs
		spec = stmt.GroupBy.Similarity
	}

	rw := &aggRewriter{input: child.schema(), groupExprs: groupExprs, pc: pc}

	var projExprs []Expr
	for _, it := range stmt.Select {
		if it.Star {
			return nil, fmt.Errorf("engine: SELECT * is not valid with GROUP BY or aggregates")
		}
		e, err := rw.rewrite(it.Expr)
		if err != nil {
			return nil, err
		}
		projExprs = append(projExprs, e)
	}
	var havingExpr Expr
	if stmt.Having != nil {
		e, err := rw.rewrite(stmt.Having)
		if err != nil {
			return nil, err
		}
		havingExpr = e
	}
	// ORDER BY may itself reference grouping expressions or introduce new
	// aggregate calls, so it is rewritten before the internal schema is
	// finalized.
	orderExprs := make([]Expr, len(orderBy))
	for i, o := range orderBy {
		e, err := rw.rewrite(o.Expr)
		if err != nil {
			return nil, fmt.Errorf("engine: ORDER BY: %w", err)
		}
		orderExprs[i] = e
	}

	// Compile the grouping expressions and the internal schema.
	groupFns := make([]evalFn, len(groupExprs))
	internal := make(Schema, 0, len(groupExprs)+len(rw.calls))
	for i, g := range groupExprs {
		f, err := compileExpr(g, child.schema(), pc)
		if err != nil {
			return nil, err
		}
		groupFns[i] = f
		internal = append(internal, Column{Name: "$grp" + strconv.Itoa(i), T: inferType(g, child.schema())})
	}
	for j := range rw.calls {
		internal = append(internal, Column{Name: "$agg" + strconv.Itoa(j), T: rw.callTypes[j]})
	}

	var aggOp operator
	if spec != nil {
		// Analyzer rule sgb_algorithm_selection: under \alg auto the
		// physical SGB variant is a cost-based choice from the statistics
		// catalog; an explicit \alg override wins unconditionally.
		alg, auto := pc.resolveSGBAlgorithm(child, spec)
		op := &sgbAggOp{
			child:      child,
			groupExprs: groupFns,
			calls:      rw.calls,
			sch:        internal,
			spec:       *spec,
			algorithm:  alg,
			algAuto:    auto,
			qc:         pc.qc,
		}
		pc.markParallelSGB(op, groupExprs, rw)
		pc.markColumnarSGB(op, groupExprs, rw)
		pc.sgbOps = append(pc.sgbOps, op)
		aggOp = op
	} else {
		op := &hashAggOp{child: child, groupExprs: groupFns, astGroups: groupExprs, calls: rw.calls, sch: internal, qc: pc.qc}
		pc.markParallelHashAgg(op, groupExprs, rw)
		aggOp = op
	}

	cur := aggOp
	if havingExpr != nil {
		pred, err := compileExpr(havingExpr, internal, pc)
		if err != nil {
			return nil, err
		}
		cur = &filterOp{child: cur, pred: pred, qc: pc.qc}
	}
	if len(orderExprs) > 0 {
		keys := make([]evalFn, len(orderExprs))
		desc := make([]bool, len(orderExprs))
		for i, e := range orderExprs {
			f, err := compileExpr(e, internal, pc)
			if err != nil {
				return nil, fmt.Errorf("engine: ORDER BY: %w", err)
			}
			keys[i], desc[i] = f, orderBy[i].Desc
		}
		cur = &sortOp{child: cur, keys: keys, desc: desc, qc: pc.qc}
	}

	var fns []evalFn
	var outSchema Schema
	for i, e := range projExprs {
		f, err := compileExpr(e, internal, pc)
		if err != nil {
			return nil, err
		}
		fns = append(fns, f)
		outSchema = append(outSchema, Column{Name: outputName(stmt.Select[i], i), T: inferType(e, internal)})
	}
	return &projectOp{child: cur, sch: outSchema, fns: fns, qc: pc.qc}, nil
}

// parallelFragment vets an aggregation input pipeline for morsel parallelism:
// the session must allow more than one worker, the grouping expressions must
// compile to goroutine-safe closures, and the child chain must be an
// extractable scan→filter(→project) fragment over a table larger than one
// batch — the size floor keeps tiny (test and golden-file) queries on the
// serial path, where output is trivially machine-independent.
func (pc *planContext) parallelFragment(child operator, groupExprs []Expr) *morselFragment {
	if pc.qc.parallelism() <= 1 {
		return nil
	}
	for _, g := range groupExprs {
		if !exprParallelSafe(g) {
			return nil
		}
	}
	frag := extractFragment(child)
	if frag == nil || len(frag.table.Rows) <= pc.qc.batchSize() {
		return nil
	}
	return frag
}

// markParallelHashAgg flags a hash aggregation for two-phase parallel
// execution when its input fragment qualifies and every aggregate call's
// partial states can be merged (no DISTINCT) from goroutine-safe argument
// expressions.
func (pc *planContext) markParallelHashAgg(op *hashAggOp, groupExprs []Expr, rw *aggRewriter) {
	frag := pc.parallelFragment(op.child, groupExprs)
	if frag == nil {
		return
	}
	for j, c := range rw.calls {
		if !c.mergeable() || !exprParallelSafe(rw.callExprs[j]) {
			return
		}
	}
	op.frag, op.workers = frag, pc.qc.parallelism()
	pc.parOps = append(pc.parOps, op)
}

// markParallelSGB flags an SGB operator for parallel execution. Only SGB-Any
// under the default on-the-fly-index algorithm routes through the core's
// grid-partition SGBAnyParallelCtx: its output is provably identical to the
// serial grouper's (connected components are order-free), whereas SGB-All's
// group formation is input-order- and overlap-clause-sensitive. Keeping the
// explicitly selected All-Pairs/Bounds-Checking variants serial also
// preserves their meaning as benchmark baselines.
func (pc *planContext) markParallelSGB(op *sgbAggOp, groupExprs []Expr, rw *aggRewriter) {
	if op.spec.Mode != SGBAnyMode || op.algorithm != core.IndexBounds {
		return
	}
	frag := pc.parallelFragment(op.child, groupExprs)
	if frag == nil {
		return
	}
	// Aggregate evaluation runs on the driver after grouping, so call
	// arguments need not be goroutine-safe; the gate stays symmetric with
	// hash aggregation anyway to keep parallel-plan eligibility predictable.
	for _, e := range rw.callExprs {
		if !exprParallelSafe(e) {
			return
		}
	}
	op.frag, op.workers = frag, pc.qc.parallelism()
	pc.parOps = append(pc.parOps, op)
}

// aggRewriter replaces grouping expressions and aggregate calls with
// references into the aggregation operator's internal schema.
type aggRewriter struct {
	input      Schema
	groupExprs []Expr
	pc         *planContext
	calls      []*aggCall
	callExprs  []*FuncCall
	callTypes  []Type
}

func (rw *aggRewriter) rewrite(e Expr) (Expr, error) {
	if idx := matchGroupExpr(e, rw.groupExprs, rw.input); idx >= 0 {
		return &ColumnRef{Name: "$grp" + strconv.Itoa(idx)}, nil
	}
	switch e := e.(type) {
	case *Literal:
		return e, nil
	case *ColumnRef:
		return nil, fmt.Errorf("engine: column %q must appear in GROUP BY or be used in an aggregate", e.Name)
	case *UnaryExpr:
		x, err := rw.rewrite(e.X)
		if err != nil {
			return nil, err
		}
		return &UnaryExpr{Op: e.Op, X: x}, nil
	case *BinaryExpr:
		l, err := rw.rewrite(e.L)
		if err != nil {
			return nil, err
		}
		r, err := rw.rewrite(e.R)
		if err != nil {
			return nil, err
		}
		return &BinaryExpr{Op: e.Op, L: l, R: r}, nil
	case *InList:
		x, err := rw.rewrite(e.X)
		if err != nil {
			return nil, err
		}
		items := make([]Expr, len(e.Items))
		for i, it := range e.Items {
			if items[i], err = rw.rewrite(it); err != nil {
				return nil, err
			}
		}
		return &InList{X: x, Items: items, Not: e.Not}, nil
	case *InSubquery:
		x, err := rw.rewrite(e.X)
		if err != nil {
			return nil, err
		}
		return &InSubquery{X: x, Query: e.Query, Not: e.Not}, nil
	case *ScalarSubquery:
		return e, nil
	case *CaseExpr:
		out := &CaseExpr{Whens: make([]WhenClause, len(e.Whens))}
		if e.Operand != nil {
			op, err := rw.rewrite(e.Operand)
			if err != nil {
				return nil, err
			}
			out.Operand = op
		}
		for i, w := range e.Whens {
			cond, err := rw.rewrite(w.Cond)
			if err != nil {
				return nil, err
			}
			result, err := rw.rewrite(w.Result)
			if err != nil {
				return nil, err
			}
			out.Whens[i] = WhenClause{Cond: cond, Result: result}
		}
		if e.Else != nil {
			el, err := rw.rewrite(e.Else)
			if err != nil {
				return nil, err
			}
			out.Else = el
		}
		return out, nil
	case *FuncCall:
		if !isAggregateName(e.Name) {
			args := make([]Expr, len(e.Args))
			for i, a := range e.Args {
				var err error
				if args[i], err = rw.rewrite(a); err != nil {
					return nil, err
				}
			}
			return &FuncCall{Name: e.Name, Args: args, Star: e.Star, Distinct: e.Distinct}, nil
		}
		// Deduplicate identical aggregate invocations.
		for j, prev := range rw.callExprs {
			if exprEqual(prev, e) {
				return &ColumnRef{Name: "$agg" + strconv.Itoa(j)}, nil
			}
		}
		args := make([]evalFn, len(e.Args))
		for i, a := range e.Args {
			if containsAggregate(a) {
				return nil, fmt.Errorf("engine: nested aggregate in %s()", e.Name)
			}
			f, err := compileExpr(a, rw.input, rw.pc)
			if err != nil {
				return nil, err
			}
			args[i] = f
		}
		j := len(rw.calls)
		rw.calls = append(rw.calls, &aggCall{name: e.Name, star: e.Star, distinct: e.Distinct, args: args})
		rw.callExprs = append(rw.callExprs, e)
		rw.callTypes = append(rw.callTypes, aggResultType(e, rw.input))
		return &ColumnRef{Name: "$agg" + strconv.Itoa(j)}, nil
	}
	return nil, fmt.Errorf("engine: cannot rewrite expression %T under aggregation", e)
}

func aggResultType(e *FuncCall, input Schema) Type {
	switch e.Name {
	case "count":
		return TypeInt
	case "avg", "average", "stddev", "variance":
		return TypeFloat
	case "array_agg", "list_id", "st_polygon":
		return TypeString
	default:
		if len(e.Args) == 1 {
			return inferType(e.Args[0], input)
		}
		return TypeFloat
	}
}

// containsAggregate reports whether e contains an aggregate function call.
func containsAggregate(e Expr) bool {
	switch e := e.(type) {
	case *FuncCall:
		if isAggregateName(e.Name) {
			return true
		}
		for _, a := range e.Args {
			if containsAggregate(a) {
				return true
			}
		}
	case *UnaryExpr:
		return containsAggregate(e.X)
	case *BinaryExpr:
		return containsAggregate(e.L) || containsAggregate(e.R)
	case *InList:
		if containsAggregate(e.X) {
			return true
		}
		for _, it := range e.Items {
			if containsAggregate(it) {
				return true
			}
		}
	case *InSubquery:
		return containsAggregate(e.X)
	case *ScalarSubquery:
		return false // aggregates inside belong to the subquery
	case *CaseExpr:
		if e.Operand != nil && containsAggregate(e.Operand) {
			return true
		}
		for _, w := range e.Whens {
			if containsAggregate(w.Cond) || containsAggregate(w.Result) {
				return true
			}
		}
		return e.Else != nil && containsAggregate(e.Else)
	}
	return false
}

// splitConjuncts flattens an AND tree into its conjuncts.
func splitConjuncts(e Expr) []Expr {
	if e == nil {
		return nil
	}
	if be, ok := e.(*BinaryExpr); ok && be.Op == "AND" {
		return append(splitConjuncts(be.L), splitConjuncts(be.R)...)
	}
	return []Expr{e}
}

// refsResolvable reports whether every column reference in e resolves
// against the schema (uncorrelated subqueries are self-contained and
// ignored).
func refsResolvable(e Expr, sch Schema) bool {
	switch e := e.(type) {
	case nil:
		return true
	case *Literal:
		return true
	case *ColumnRef:
		_, err := sch.Resolve(e.Table, e.Name)
		return err == nil
	case *UnaryExpr:
		return refsResolvable(e.X, sch)
	case *BinaryExpr:
		return refsResolvable(e.L, sch) && refsResolvable(e.R, sch)
	case *FuncCall:
		for _, a := range e.Args {
			if !refsResolvable(a, sch) {
				return false
			}
		}
		return true
	case *InList:
		if !refsResolvable(e.X, sch) {
			return false
		}
		for _, it := range e.Items {
			if !refsResolvable(it, sch) {
				return false
			}
		}
		return true
	case *InSubquery:
		return refsResolvable(e.X, sch)
	case *ScalarSubquery:
		return true // uncorrelated: self-contained
	case *CaseExpr:
		if e.Operand != nil && !refsResolvable(e.Operand, sch) {
			return false
		}
		for _, w := range e.Whens {
			if !refsResolvable(w.Cond, sch) || !refsResolvable(w.Result, sch) {
				return false
			}
		}
		return e.Else == nil || refsResolvable(e.Else, sch)
	}
	return false
}

// outputName derives the display name of a SELECT item.
func outputName(it SelectItem, i int) string {
	if it.Alias != "" {
		return it.Alias
	}
	switch e := it.Expr.(type) {
	case *ColumnRef:
		return e.Name
	case *FuncCall:
		return e.Name
	}
	return "col" + strconv.Itoa(i+1)
}

// inferType best-effort-infers the output type of an expression; it is used
// only for display and derived-table schemas, never for correctness.
func inferType(e Expr, sch Schema) Type {
	switch e := e.(type) {
	case *Literal:
		return e.V.T
	case *ColumnRef:
		if i, err := sch.Resolve(e.Table, e.Name); err == nil {
			return sch[i].T
		}
		return TypeFloat
	case *UnaryExpr:
		if e.Op == "NOT" {
			return TypeBool
		}
		return inferType(e.X, sch)
	case *BinaryExpr:
		switch e.Op {
		case "AND", "OR", "=", "<>", "<", "<=", ">", ">=":
			return TypeBool
		case "||":
			return TypeString
		case "/":
			return TypeFloat
		default:
			lt, rt := inferType(e.L, sch), inferType(e.R, sch)
			if lt == TypeInt && rt == TypeInt {
				return TypeInt
			}
			return TypeFloat
		}
	case *InList, *InSubquery:
		return TypeBool
	case *ScalarSubquery:
		return TypeFloat
	case *CaseExpr:
		return inferType(e.Whens[0].Result, sch)
	case *FuncCall:
		switch e.Name {
		case "count", "length", "mod":
			return TypeInt
		case "lower", "upper", "array_agg", "list_id", "st_polygon":
			return TypeString
		case "abs", "least", "greatest", "coalesce", "sum", "min", "max":
			if len(e.Args) == 1 {
				return inferType(e.Args[0], sch)
			}
		}
		return TypeFloat
	}
	return TypeFloat
}
