package engine

import (
	"encoding/csv"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
)

// CopyStmt is a parsed COPY <table> FROM '<path>' (CSV with a header row,
// the format cmd/datagen writes).
type CopyStmt struct {
	Table string
	Path  string
}

func (*CopyStmt) stmt() {}

// copyFromCSV bulk-loads a CSV file into an existing table. The header row
// must name the table's columns (any order); values are parsed according to
// the declared column types, with empty fields loading as NULL.
func copyFromCSV(t *Table, path string) (int, error) {
	f, err := os.Open(path)
	if err != nil {
		return 0, fmt.Errorf("engine: COPY: %w", err)
	}
	defer f.Close()
	return copyFromReader(t, f)
}

// copyFromReader is the io.Reader core of COPY, split out for testability.
func copyFromReader(t *Table, r io.Reader) (int, error) {
	cr := csv.NewReader(r)
	cr.ReuseRecord = true
	header, err := cr.Read()
	if err != nil {
		return 0, fmt.Errorf("engine: COPY: reading header: %w", err)
	}
	// Map CSV columns onto table columns.
	colIdx := make([]int, len(header))
	seen := make([]bool, len(t.Schema))
	for i, name := range header {
		idx := -1
		for j, c := range t.Schema {
			if strings.EqualFold(c.Name, strings.TrimSpace(name)) {
				idx = j
				break
			}
		}
		if idx == -1 {
			return 0, fmt.Errorf("engine: COPY: header column %q not in table %s", name, t.Name)
		}
		if seen[idx] {
			return 0, fmt.Errorf("engine: COPY: duplicate header column %q", name)
		}
		seen[idx] = true
		colIdx[i] = idx
	}
	for j, ok := range seen {
		if !ok {
			return 0, fmt.Errorf("engine: COPY: header is missing column %q", t.Schema[j].Name)
		}
	}
	// Parse the whole file before touching the table: a syntax error midway
	// through the CSV must not leave a partial load behind.
	var rows []Row
	for {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return 0, fmt.Errorf("engine: COPY: row %d: %w", len(rows)+2, err)
		}
		row := make(Row, len(t.Schema))
		for i, field := range rec {
			v, err := parseCSVValue(field, t.Schema[colIdx[i]].T)
			if err != nil {
				return 0, fmt.Errorf("engine: COPY: row %d, column %q: %w", len(rows)+2, header[i], err)
			}
			row[colIdx[i]] = v
		}
		rows = append(rows, row)
	}
	if err := t.Insert(rows...); err != nil {
		return 0, err
	}
	return len(rows), nil
}

func parseCSVValue(field string, typ Type) (Value, error) {
	if field == "" || strings.EqualFold(field, "null") {
		return Null, nil
	}
	switch typ {
	case TypeInt:
		i, err := strconv.ParseInt(field, 10, 64)
		if err != nil {
			return Null, err
		}
		return NewInt(i), nil
	case TypeFloat:
		f, err := strconv.ParseFloat(field, 64)
		if err != nil {
			return Null, err
		}
		return NewFloat(f), nil
	case TypeBool:
		b, err := strconv.ParseBool(field)
		if err != nil {
			return Null, err
		}
		return NewBool(b), nil
	default:
		return NewString(field), nil
	}
}
