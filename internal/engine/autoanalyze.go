package engine

import "strings"

// Auto-ANALYZE keeps the statistics catalog fresh without operator
// intervention: when a committed write pushes a table's staleness counter past
// the Fresh() threshold (half the analyzed rows churned), the table is queued
// for a background ANALYZE. The re-analysis runs as an ordinary statement —
// exclusive lock, commit hook — so in durable mode it is WAL-logged and the
// rebuilt statistics survive crash recovery deterministically.
//
// The trigger is edge-cheap: one counter comparison on the write path, a
// non-blocking enqueue, and per-table dedup so a burst of writes schedules one
// ANALYZE, not hundreds. ANALYZE resets Stale to zero, so the cadence is
// self-limiting at roughly one re-analysis per 50% table churn.

// autoAnalyzeMinRows is the seeding floor: a never-analyzed table gets its
// first automatic ANALYZE once it reaches this many rows, after which the
// staleness rule takes over. Below the floor the planner's fallback heuristics
// are fine and re-analyzing every tiny table on each insert would be noise.
const autoAnalyzeMinRows = 256

// autoAnalyzeQueue bounds the pending-table channel. Dedup keeps the queue at
// one entry per stale table, so depth only matters when many tables go stale
// in the same instant; a full queue just retries on the next write.
const autoAnalyzeQueue = 32

// SetAutoAnalyze enables or disables automatic background re-analysis of
// stale tables (disabled by default). Enabling starts one worker goroutine;
// disabling stops it and drops any queued work. Safe to call at any time.
func (db *DB) SetAutoAnalyze(on bool) {
	db.aaMu.Lock()
	defer db.aaMu.Unlock()
	if on == (db.aaCh != nil) {
		return
	}
	if on {
		db.aaCh = make(chan string, autoAnalyzeQueue)
		db.aaPending = make(map[string]struct{})
		go db.autoAnalyzeWorker(db.aaCh)
		return
	}
	close(db.aaCh)
	db.aaCh = nil
	db.aaPending = nil
}

// AutoAnalyze reports whether background re-analysis is enabled.
func (db *DB) AutoAnalyze() bool {
	db.aaMu.Lock()
	defer db.aaMu.Unlock()
	return db.aaCh != nil
}

// maybeAutoAnalyze is the write-path trigger: called for each successfully
// applied mutating statement, with the exclusive statement lock still held
// (so the stats read is consistent). It never blocks — a full queue is a
// dropped trigger, retried by whichever write next finds the table stale.
func (db *DB) maybeAutoAnalyze(stmt Statement) {
	var table string
	switch s := stmt.(type) {
	case *InsertStmt:
		table = s.Table
	case *UpdateStmt:
		table = s.Table
	case *DeleteStmt:
		table = s.Table
	case *CopyStmt:
		table = s.Table
	default:
		return
	}
	db.aaMu.Lock()
	defer db.aaMu.Unlock()
	if db.aaCh == nil {
		return
	}
	t, err := db.cat.Get(table)
	if err != nil || t.Stats == nil {
		return
	}
	s := t.Stats
	if s.AnalyzedRows == 0 {
		if s.RowCount < autoAnalyzeMinRows {
			return
		}
	} else if s.Fresh() {
		return
	}
	key := strings.ToLower(t.Name)
	if _, queued := db.aaPending[key]; queued {
		return
	}
	select {
	case db.aaCh <- t.Name:
		db.aaPending[key] = struct{}{}
		db.Metrics().Counter("engine_auto_analyze_triggers_total").Inc()
	default:
		// Queue full; the table stays stale, so the next write re-triggers.
	}
}

// autoAnalyzeWorker drains the trigger queue, re-analyzing one table at a
// time. It owns ch and exits when SetAutoAnalyze(false) closes it.
func (db *DB) autoAnalyzeWorker(ch chan string) {
	for name := range ch {
		db.aaMu.Lock()
		delete(db.aaPending, strings.ToLower(name))
		db.aaMu.Unlock()
		// Plain SQL so the commit hook sees loggable statement text; a table
		// dropped between trigger and here just fails quietly.
		if _, err := db.Exec("ANALYZE " + name); err != nil {
			db.Metrics().Counter("engine_auto_analyze_failures_total").Inc()
			continue
		}
		db.Metrics().Counter("engine_auto_analyze_total").Inc()
	}
}
