package engine

// This file is the analyzer: small atomic rewrite rules, each semantics-
// preserving on its own, applied to fixpoint — the dolthub/go-mysql-server
// style of planning where the optimizer is a pipeline of named rules rather
// than one monolithic pass. Rules operate at two levels: AST rules rewrite
// the SELECT statement before lowering (projection pruning), and tree rules
// rewrite the physical operator tree after lowering (limit pushdown). Two
// more rules live inside the lowering itself because they need its
// intermediate state: index-scan selection and predicate pushdown in
// planSelect, and cost-based SGB algorithm / columnar-path selection in
// planAggregate. Every applied rule is recorded on the planContext, and
// DB.SetOptimizer(false) disables the whole pipeline except predicate
// pushdown (which is semantic: it fixes which source an ambiguous-looking
// column resolves against and keeps cross joins from exploding).

// ruleApplied records that a named analyzer rule changed the plan, for
// introspection and the rule-pipeline tests.
func (pc *planContext) ruleApplied(name string) {
	pc.applied = append(pc.applied, name)
}

// analyzerFixpoint caps rule iteration; the rules strictly shrink or
// reorder the plan, so this bound is never reached by a correct rule set.
const analyzerFixpoint = 16

// rewriteStmt runs the AST-level rules on a SELECT to fixpoint. Statements
// are rewritten copy-on-write: view definitions and prepared ASTs shared
// between executions are never mutated in place.
func (pc *planContext) rewriteStmt(stmt *SelectStmt) *SelectStmt {
	if !pc.qc.optimize() {
		return stmt
	}
	for i := 0; i < analyzerFixpoint; i++ {
		next, changed := pc.pruneSubqueryProjections(stmt)
		if !changed {
			return stmt
		}
		stmt = next
	}
	return stmt
}

// pruneSubqueryProjections drops select items of FROM-subqueries that no
// expression of the outer statement references, so the pruned columns are
// never computed. A subquery keeps all items when the outer statement
// selects *, when the subquery itself uses DISTINCT (dropping a column would
// change the duplicate set) or *, and always keeps at least one item.
func (pc *planContext) pruneSubqueryProjections(stmt *SelectStmt) (*SelectStmt, bool) {
	for _, it := range stmt.Select {
		if it.Star {
			return stmt, false
		}
	}
	refs := collectOuterRefs(stmt)
	changed := false
	newFrom := append([]FromItem(nil), stmt.From...)
	for fi, item := range stmt.From {
		if item.Subquery == nil || item.Subquery.Distinct {
			continue
		}
		sub := item.Subquery
		starred := false
		for _, it := range sub.Select {
			if it.Star {
				starred = true
				break
			}
		}
		if starred || len(sub.Select) <= 1 {
			continue
		}
		var kept []SelectItem
		for i, it := range sub.Select {
			name := outputName(it, i)
			if refs.references(item.Alias, name) {
				kept = append(kept, it)
			}
		}
		if len(kept) == len(sub.Select) {
			continue
		}
		if len(kept) == 0 {
			// Nothing referenced (e.g. SELECT count(*) over the subquery):
			// keep one item so the derived table still has a schema.
			kept = sub.Select[:1]
		}
		pruned := *sub
		pruned.Select = kept
		newFrom[fi].Subquery = &pruned
		changed = true
	}
	if !changed {
		return stmt, false
	}
	out := *stmt
	out.From = newFrom
	pc.ruleApplied("prune_subquery_projection")
	return &out, true
}

// refSet indexes the column references of an outer statement: qualified refs
// by (qualifier, name), unqualified by name alone.
type refSet struct {
	qualified   map[[2]string]bool
	unqualified map[string]bool
	// sawUnresolvable marks an expression shape whose references could not
	// be enumerated (star expansion aside, this does not occur today); the
	// set then reports everything as referenced.
	sawUnresolvable bool
}

// references reports whether the outer statement may reference output column
// name of the derived table aliased alias.
func (rs *refSet) references(alias, name string) bool {
	if rs.sawUnresolvable {
		return true
	}
	return rs.qualified[[2]string{lowerASCII(alias), lowerASCII(name)}] ||
		rs.unqualified[lowerASCII(name)]
}

func lowerASCII(s string) string {
	b := []byte(s)
	for i, c := range b {
		if 'A' <= c && c <= 'Z' {
			b[i] = c + 'a' - 'A'
		}
	}
	return string(b)
}

// collectOuterRefs gathers every column reference of stmt outside its FROM
// subqueries: the select list, WHERE, GROUP BY (including the similarity
// clause's grouping expressions), HAVING, and ORDER BY. Select-list aliases
// count as unqualified references too, because ORDER BY may name them.
func collectOuterRefs(stmt *SelectStmt) *refSet {
	rs := &refSet{qualified: map[[2]string]bool{}, unqualified: map[string]bool{}}
	for _, it := range stmt.Select {
		rs.addExpr(it.Expr)
	}
	rs.addExpr(stmt.Where)
	if stmt.GroupBy != nil {
		for _, g := range stmt.GroupBy.Exprs {
			rs.addExpr(g)
		}
	}
	rs.addExpr(stmt.Having)
	for _, o := range stmt.OrderBy {
		rs.addExpr(o.Expr)
	}
	return rs
}

func (rs *refSet) addExpr(e Expr) {
	switch e := e.(type) {
	case nil:
	case *Literal:
	case *ColumnRef:
		if e.Table != "" {
			rs.qualified[[2]string{lowerASCII(e.Table), lowerASCII(e.Name)}] = true
		} else {
			rs.unqualified[lowerASCII(e.Name)] = true
		}
	case *UnaryExpr:
		rs.addExpr(e.X)
	case *BinaryExpr:
		rs.addExpr(e.L)
		rs.addExpr(e.R)
	case *FuncCall:
		for _, a := range e.Args {
			rs.addExpr(a)
		}
	case *InList:
		rs.addExpr(e.X)
		for _, it := range e.Items {
			rs.addExpr(it)
		}
	case *InSubquery:
		// The inner query is uncorrelated (planned against the catalog), so
		// only the probe expression can reference outer sources.
		rs.addExpr(e.X)
	case *ScalarSubquery:
		// Uncorrelated: self-contained.
	case *CaseExpr:
		rs.addExpr(e.Operand)
		for _, w := range e.Whens {
			rs.addExpr(w.Cond)
			rs.addExpr(w.Result)
		}
		rs.addExpr(e.Else)
	default:
		rs.sawUnresolvable = true
	}
}

// optimizeTree runs the tree-level rules on a lowered plan to fixpoint, then
// stamps cost estimates on every node. With the optimizer disabled only the
// estimates are stamped (EXPLAIN still shows them for the naive plan).
func (pc *planContext) optimizeTree(root operator) operator {
	if pc.qc.optimize() {
		for i := 0; i < analyzerFixpoint; i++ {
			next, changed := pc.applyTreeRules(root)
			root = next
			if !changed {
				break
			}
		}
	}
	pc.estimateTree(root)
	return root
}

// applyTreeRules applies the tree rules once, top-down, rebuilding child
// links in place.
func (pc *planContext) applyTreeRules(op operator) (operator, bool) {
	out, changed := pc.pushLimitDown(op)
	switch o := out.(type) {
	case *renameOp:
		c, ch := pc.applyTreeRules(o.child)
		o.child, changed = c, changed || ch
	case *filterOp:
		c, ch := pc.applyTreeRules(o.child)
		o.child, changed = c, changed || ch
	case *projectOp:
		c, ch := pc.applyTreeRules(o.child)
		o.child, changed = c, changed || ch
	case *sortOp:
		c, ch := pc.applyTreeRules(o.child)
		o.child, changed = c, changed || ch
	case *limitOp:
		c, ch := pc.applyTreeRules(o.child)
		o.child, changed = c, changed || ch
	case *distinctOp:
		c, ch := pc.applyTreeRules(o.child)
		o.child, changed = c, changed || ch
	case *hashJoinOp:
		l, chL := pc.applyTreeRules(o.left)
		r, chR := pc.applyTreeRules(o.right)
		o.left, o.right, changed = l, r, changed || chL || chR
	case *crossJoinOp:
		l, chL := pc.applyTreeRules(o.left)
		r, chR := pc.applyTreeRules(o.right)
		o.left, o.right, changed = l, r, changed || chL || chR
		// Aggregation operators' children are deliberately left alone: their
		// morsel fragments and columnar plans were extracted from the child
		// chain at lowering time, and rewriting underneath them would
		// invalidate those. No tree rule targets those chains anyway (limits
		// never occur below an aggregation).
	}
	return out, changed
}

// pushLimitDown swaps a limit below a projection or a derived-table rename.
// Both are stateless 1:1 row transforms pulled lazily, so the same rows are
// produced and the same expressions evaluated — the rewrite is bit-identical
// by construction; its value is a shallower pipeline above the limit and a
// plan shape where the limit sits against the operator that actually bounds
// the work.
func (pc *planContext) pushLimitDown(op operator) (operator, bool) {
	lim, ok := op.(*limitOp)
	if !ok {
		return op, false
	}
	switch child := lim.child.(type) {
	case *projectOp:
		lim.child = child.child
		child.child = lim
		pc.ruleApplied("limit_pushdown")
		return child, true
	case *renameOp:
		lim.child = child.child
		child.child = lim
		pc.ruleApplied("limit_pushdown")
		return child, true
	}
	return op, false
}
