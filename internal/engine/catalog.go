package engine

import (
	"fmt"
	"sort"
	"strings"
)

// Table is an in-memory heap relation, optionally carrying secondary hash
// indexes over single columns.
type Table struct {
	Name    string
	Schema  Schema
	Rows    []Row
	Indexes []*Index
	// Stats is the table's statistics catalog entry (see stats.go); nil until
	// the first DML or ANALYZE touches the table.
	Stats *TableStats
}

// MatView is a registered materialized similarity-group view: its parsed
// definition, the original SELECT text (persisted in snapshots and re-parsed
// on load), and the streamable shape extracted at creation time.
type MatView struct {
	Name  string
	Query *SelectStmt
	SQL   string
	Shape *MatViewShape
}

// Catalog maps table and view names (case-insensitive) to their
// definitions. Tables, views, and materialized views share one namespace.
type Catalog struct {
	tables   map[string]*Table
	views    map[string]*SelectStmt
	matviews map[string]*MatView
}

// NewCatalog returns an empty catalog.
func NewCatalog() *Catalog {
	return &Catalog{
		tables:   make(map[string]*Table),
		views:    make(map[string]*SelectStmt),
		matviews: make(map[string]*MatView),
	}
}

// CreateView registers a named view over a SELECT definition.
func (c *Catalog) CreateView(name string, query *SelectStmt) error {
	key := strings.ToLower(name)
	if _, ok := c.tables[key]; ok {
		return fmt.Errorf("engine: a table named %q already exists", name)
	}
	if _, ok := c.views[key]; ok {
		return fmt.Errorf("engine: view %q already exists", name)
	}
	if _, ok := c.matviews[key]; ok {
		return fmt.Errorf("engine: a materialized view named %q already exists", name)
	}
	c.views[key] = query
	return nil
}

// CreateMatView registers a materialized view definition.
func (c *Catalog) CreateMatView(mv *MatView) error {
	key := strings.ToLower(mv.Name)
	if _, ok := c.tables[key]; ok {
		return fmt.Errorf("engine: a table named %q already exists", mv.Name)
	}
	if _, ok := c.views[key]; ok {
		return fmt.Errorf("engine: a view named %q already exists", mv.Name)
	}
	if _, ok := c.matviews[key]; ok {
		return fmt.Errorf("engine: materialized view %q already exists", mv.Name)
	}
	c.matviews[key] = mv
	return nil
}

// MatView looks a materialized view up by name.
func (c *Catalog) MatView(name string) (*MatView, bool) {
	mv, ok := c.matviews[strings.ToLower(name)]
	return mv, ok
}

// DropMatView removes a materialized view; it reports whether one existed.
func (c *Catalog) DropMatView(name string) bool {
	key := strings.ToLower(name)
	if _, ok := c.matviews[key]; !ok {
		return false
	}
	delete(c.matviews, key)
	return true
}

// MatViews lists every materialized view, sorted by name, so snapshots and
// debug endpoints render deterministically.
func (c *Catalog) MatViews() []*MatView {
	out := make([]*MatView, 0, len(c.matviews))
	for _, mv := range c.matviews {
		out = append(out, mv)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// View looks a view definition up by name.
func (c *Catalog) View(name string) (*SelectStmt, bool) {
	v, ok := c.views[strings.ToLower(name)]
	return v, ok
}

// DropView removes a view; it reports whether one existed.
func (c *Catalog) DropView(name string) bool {
	key := strings.ToLower(name)
	if _, ok := c.views[key]; !ok {
		return false
	}
	delete(c.views, key)
	return true
}

// Create registers a new empty table. Column qualifiers are forced to the
// table name.
func (c *Catalog) Create(name string, schema Schema) (*Table, error) {
	key := strings.ToLower(name)
	if _, ok := c.tables[key]; ok {
		return nil, fmt.Errorf("engine: table %q already exists", name)
	}
	if _, ok := c.views[key]; ok {
		return nil, fmt.Errorf("engine: a view named %q already exists", name)
	}
	if _, ok := c.matviews[key]; ok {
		return nil, fmt.Errorf("engine: a materialized view named %q already exists", name)
	}
	t := &Table{Name: name, Schema: schema.Qualify(name)}
	c.tables[key] = t
	return t, nil
}

// Drop removes a table; it is not an error to drop a missing table.
func (c *Catalog) Drop(name string) {
	delete(c.tables, strings.ToLower(name))
}

// Get looks a table up by name.
func (c *Catalog) Get(name string) (*Table, error) {
	t, ok := c.tables[strings.ToLower(name)]
	if !ok {
		return nil, fmt.Errorf("engine: unknown table %q", name)
	}
	return t, nil
}

// Names lists the catalog's table names (unordered).
func (c *Catalog) Names() []string {
	out := make([]string, 0, len(c.tables))
	for _, t := range c.tables {
		out = append(out, t.Name)
	}
	return out
}

// Insert appends rows after checking arity and coercing ints to declared
// float columns (the one implicit conversion the engine performs). The whole
// batch is validated before any row is appended, so a failed INSERT leaves
// the table untouched rather than half-written.
func (t *Table) Insert(rows ...Row) error {
	for _, r := range rows {
		if len(r) != len(t.Schema) {
			return fmt.Errorf("engine: row arity %d does not match table %s (%d columns)",
				len(r), t.Name, len(t.Schema))
		}
		for i, v := range r {
			switch {
			case v.IsNull():
			case t.Schema[i].T == TypeFloat && v.T == TypeInt:
				r[i] = NewFloat(float64(v.I))
			case v.T != t.Schema[i].T:
				return fmt.Errorf("engine: column %s.%s expects %s, got %s",
					t.Name, t.Schema[i].Name, t.Schema[i].T, v.T)
			}
		}
	}
	start := len(t.Rows)
	t.Rows = append(t.Rows, rows...)
	for pos := start; pos < len(t.Rows); pos++ {
		for _, ix := range t.Indexes {
			ix.addRow(t, pos)
		}
	}
	// Statistics are folded in only once the batch is committed, so a
	// validation failure above leaves the counters untouched too.
	t.statsNoteInsert(rows)
	return nil
}
