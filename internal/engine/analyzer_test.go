package engine

import (
	"fmt"
	"strings"
	"testing"

	"sgb/internal/core"
)

// analyzerQueries is the workload for the rewrite-equivalence property: every
// shape an analyzer rule can touch (projection pruning, limit pushdown, index
// scan selection, predicate pushdown, SGB algorithm and columnar selection),
// plus SGB variants across metrics, ε, and overlap modes.
var analyzerQueries = []string{
	"SELECT id, x FROM nums WHERE k = 7 ORDER BY id",
	"SELECT s.a FROM (SELECT id AS a, x AS b, y AS c FROM nums) s ORDER BY s.a LIMIT 20",
	"SELECT count(*) FROM (SELECT id AS a, v AS b FROM nums) s",
	"SELECT id FROM nums ORDER BY id LIMIT 5 OFFSET 3",
	"SELECT n.id, d.label FROM nums n, dim d WHERE n.k = d.k AND n.v > 500 ORDER BY n.id LIMIT 30",
	"SELECT k, count(*), sum(v) FROM nums GROUP BY k ORDER BY k",
	"SELECT x, y, count(*) FROM nums GROUP BY x, y DISTANCE-TO-ANY L2 WITHIN 12",
	"SELECT x, y, count(*) FROM nums GROUP BY x, y DISTANCE-TO-ANY L1 WITHIN 5",
	"SELECT x, y, count(*) FROM nums WHERE v > 100 GROUP BY x, y DISTANCE-TO-ANY LINF WITHIN 8",
	"SELECT count(*), avg(v) FROM nums GROUP BY x, y DISTANCE-TO-ALL L2 WITHIN 40 ON-OVERLAP JOIN-ANY",
	"SELECT count(*) FROM nums GROUP BY x, y DISTANCE-TO-ALL LINF WITHIN 25 ON-OVERLAP ELIMINATE",
	"SELECT count(*) FROM nums GROUP BY x, y DISTANCE-TO-ALL L1 WITHIN 60 ON-OVERLAP FORM-NEW-GROUP",
}

// analyzerDB builds the property-test fixture: a 3000-row numeric table with
// an index, a join dimension table, and fresh statistics.
func analyzerDB(t *testing.T) *DB {
	t.Helper()
	db := NewDB()
	loadNums(t, db, 3000, 17)
	mustExec(t, db, "CREATE INDEX nums_k ON nums (k)")
	mustExec(t, db, "CREATE TABLE dim (k INT, label TEXT)")
	for i := 0; i < 23; i++ {
		mustExec(t, db, fmt.Sprintf("INSERT INTO dim VALUES (%d, 'd%d')", i, i))
	}
	mustExec(t, db, "ANALYZE")
	return db
}

// TestAnalyzerRewritesAreBitIdentical is the property test behind every
// analyzer rule: for each workload query, the fully optimized plan (auto
// algorithm selection included) must return byte-identical rows, in the same
// order, as the naive plan produced with the optimizer off — across worker
// counts and batch sizes, so the morsel-parallel variants are held to the
// same standard. Run under -race in CI.
func TestAnalyzerRewritesAreBitIdentical(t *testing.T) {
	db := analyzerDB(t)
	for _, workers := range []int{1, 4} {
		for _, batch := range []int{0, 256} {
			db.SetParallelism(workers)
			db.SetBatchSize(batch)
			for _, q := range analyzerQueries {
				db.SetOptimizer(false)
				naive, err := db.Exec(q)
				if err != nil {
					t.Fatalf("naive %s: %v", q, err)
				}
				db.SetOptimizer(true)
				opt, err := db.Exec(q)
				if err != nil {
					t.Fatalf("optimized %s: %v", q, err)
				}
				wantRows, gotRows := rowStrings(naive), rowStrings(opt)
				if strings.Join(wantRows, "\n") != strings.Join(gotRows, "\n") {
					t.Errorf("workers=%d batch=%d %s:\nnaive %d rows, optimized %d rows differ",
						workers, batch, q, len(wantRows), len(gotRows))
				}
				if strings.Join(naive.Columns, ",") != strings.Join(opt.Columns, ",") {
					t.Errorf("%s: column mismatch %v vs %v", q, naive.Columns, opt.Columns)
				}
			}
		}
	}
	db.SetOptimizer(true)
	db.SetParallelism(0)
	db.SetBatchSize(0)
}

// TestAutoAlgorithmMatchesEveryManualChoice pins what makes cost-based
// selection safe: all SGB algorithms produce identical groups, so whatever
// auto picks, the result equals every manual override bit-for-bit.
func TestAutoAlgorithmMatchesEveryManualChoice(t *testing.T) {
	db := analyzerDB(t)
	queries := []string{
		"SELECT x, y, count(*) FROM nums GROUP BY x, y DISTANCE-TO-ANY L2 WITHIN 10",
		"SELECT count(*) FROM nums GROUP BY x, y DISTANCE-TO-ALL LINF WITHIN 30 ON-OVERLAP JOIN-ANY",
	}
	for _, q := range queries {
		db.SetSGBAlgorithmAuto()
		auto, err := db.Exec(q)
		if err != nil {
			t.Fatalf("auto %s: %v", q, err)
		}
		for _, alg := range []core.Algorithm{core.AllPairs, core.BoundsChecking, core.IndexBounds} {
			db.SetSGBAlgorithm(alg)
			manual, err := db.Exec(q)
			if err != nil {
				t.Fatalf("%v %s: %v", alg, q, err)
			}
			if strings.Join(rowStrings(auto), "\n") != strings.Join(rowStrings(manual), "\n") {
				t.Errorf("%s: auto result differs from manual %v", q, alg)
			}
		}
	}
	db.SetSGBAlgorithmAuto()
}

// TestAnalyzerRulesRecorded checks that each rule fires on (exactly) the plan
// shapes it targets, via the planContext's applied-rule log.
func TestAnalyzerRulesRecorded(t *testing.T) {
	db := analyzerDB(t)
	cases := []struct {
		sql     string
		rule    string
		present bool
	}{
		{"SELECT id FROM nums WHERE k = 3", "index_scan_selection", true},
		{"SELECT id FROM nums WHERE v = 3", "index_scan_selection", false}, // no index on v
		{"SELECT id FROM nums ORDER BY id LIMIT 2", "limit_pushdown", true},
		{"SELECT id FROM nums", "limit_pushdown", false},
		{"SELECT s.a FROM (SELECT id AS a, x AS b FROM nums) s", "prune_subquery_projection", true},
		{"SELECT s.a, s.b FROM (SELECT id AS a, x AS b FROM nums) s", "prune_subquery_projection", false},
		{"SELECT n.id FROM nums n, dim d WHERE n.k = d.k AND n.v > 5", "predicate_pushdown", true},
		{"SELECT count(*) FROM nums GROUP BY x, y DISTANCE-TO-ANY L2 WITHIN 5", "sgb_algorithm_selection", true},
		{"SELECT x, y, count(*) FROM nums GROUP BY x, y DISTANCE-TO-ANY L2 WITHIN 5", "columnar_selection", true},
		{"SELECT x, y, sum(v) FROM nums GROUP BY x, y DISTANCE-TO-ANY L2 WITHIN 5", "columnar_selection", false}, // sum needs tuples
		{"SELECT k, count(*) FROM nums GROUP BY k", "sgb_algorithm_selection", false},
	}
	for _, c := range cases {
		stmt, err := Parse(c.sql)
		if err != nil {
			t.Fatalf("%s: %v", c.sql, err)
		}
		pc := &planContext{db: db}
		if _, err := pc.planSelect(stmt.(*SelectStmt)); err != nil {
			t.Fatalf("%s: %v", c.sql, err)
		}
		found := false
		for _, r := range pc.applied {
			if r == c.rule {
				found = true
			}
		}
		if found != c.present {
			t.Errorf("%s: rule %s applied=%v, want %v (applied: %v)", c.sql, c.rule, found, c.present, pc.applied)
		}
	}
}

// TestCostBasedAlgorithmSelection exercises the selector's two regimes: tiny
// inputs cost out to All-Pairs, large analyzed tables to the on-the-fly
// index — and a manual override always wins over the cost model.
func TestCostBasedAlgorithmSelection(t *testing.T) {
	db := analyzerDB(t)
	plan := func(sql string) *sgbAggOp {
		t.Helper()
		stmt, err := Parse(sql)
		if err != nil {
			t.Fatal(err)
		}
		// Thread the session's algorithm setting the way execTraced does; a
		// bare planContext would always plan in auto mode.
		pc := &planContext{db: db, qc: &queryCtx{
			alg: db.SGBAlgorithm(), algAuto: db.SGBAlgorithmIsAuto(),
		}}
		op, err := pc.planSelect(stmt.(*SelectStmt))
		if err != nil {
			t.Fatal(err)
		}
		for {
			switch o := op.(type) {
			case *projectOp:
				op = o.child
			case *sgbAggOp:
				return o
			default:
				t.Fatalf("unexpected operator %T above the aggregation", op)
			}
		}
	}

	mustExec(t, db, "CREATE TABLE tiny (x FLOAT, y FLOAT)")
	mustExec(t, db, "INSERT INTO tiny VALUES (1, 1), (2, 2), (3, 3)")
	if op := plan("SELECT count(*) FROM tiny GROUP BY x, y DISTANCE-TO-ANY L2 WITHIN 1"); op.algorithm != core.AllPairs || !op.algAuto {
		t.Errorf("tiny table picked %v (auto=%v), want All-Pairs under auto", op.algorithm, op.algAuto)
	}
	if op := plan("SELECT count(*) FROM nums GROUP BY x, y DISTANCE-TO-ANY L2 WITHIN 5"); op.algorithm != core.IndexBounds {
		t.Errorf("3000-row table picked %v, want on-the-fly index", op.algorithm)
	}
	db.SetSGBAlgorithm(core.BoundsChecking)
	defer db.SetSGBAlgorithmAuto()
	if op := plan("SELECT count(*) FROM tiny GROUP BY x, y DISTANCE-TO-ALL L2 WITHIN 1 ON-OVERLAP JOIN-ANY"); op.algorithm != core.BoundsChecking || op.algAuto {
		t.Errorf("manual override ignored: got %v (auto=%v)", op.algorithm, op.algAuto)
	}
}

// TestEstimatesOnEveryNode asserts the EXPLAIN acceptance criterion: every
// plan line of an EXPLAIN ANALYZE carries both the planner estimate and the
// measured actuals.
func TestEstimatesOnEveryNode(t *testing.T) {
	db := analyzerDB(t)
	for _, q := range []string{
		"EXPLAIN ANALYZE SELECT n.id, d.label FROM nums n, dim d WHERE n.k = d.k ORDER BY n.id LIMIT 5",
		"EXPLAIN ANALYZE SELECT x, y, count(*) FROM nums GROUP BY x, y DISTANCE-TO-ANY L2 WITHIN 10",
	} {
		res := mustExec(t, db, q)
		for _, r := range res.Rows {
			line := r[0].String()
			if strings.HasPrefix(line, "Planning Time") || strings.HasPrefix(line, "Execution Time") {
				continue
			}
			trimmed := strings.TrimLeft(line, " ")
			if strings.HasPrefix(trimmed, "SGB Stats:") || strings.HasPrefix(trimmed, "Hash ") ||
				strings.HasPrefix(trimmed, "Sort Buffer:") || strings.HasPrefix(trimmed, "Distinct Set:") ||
				strings.HasPrefix(trimmed, "Parallel:") {
				continue // per-operator annotation lines, not plan nodes
			}
			if !strings.Contains(line, "est_rows=") || !strings.Contains(line, "est_cost=") {
				t.Errorf("%s: plan node missing estimates: %q", q, line)
			}
			if !strings.Contains(line, "actual rows=") {
				t.Errorf("%s: plan node missing actuals: %q", q, line)
			}
		}
	}
}
