package rtree

import (
	"math/rand"
	"sort"
	"testing"

	"sgb/internal/geom"
)

func TestNearestBasics(t *testing.T) {
	tr := New(2)
	pts := []geom.Point{{0, 0}, {1, 0}, {5, 5}, {10, 10}}
	for i, p := range pts {
		tr.Insert(geom.PointRect(p), int64(i))
	}
	got := tr.Nearest(geom.Point{0.4, 0}, 2, geom.L2)
	if len(got) != 2 || got[0].Ref != 0 || got[1].Ref != 1 {
		t.Fatalf("nearest = %+v", got)
	}
	if got[0].Dist > got[1].Dist {
		t.Fatal("results not in ascending distance order")
	}
	// k larger than the tree returns everything.
	if got := tr.Nearest(geom.Point{0, 0}, 99, geom.L2); len(got) != 4 {
		t.Fatalf("got %d results", len(got))
	}
	// Degenerate inputs.
	if got := tr.Nearest(geom.Point{0, 0}, 0, geom.L2); got != nil {
		t.Fatal("k=0 returned results")
	}
	if got := New(2).Nearest(geom.Point{0, 0}, 3, geom.L2); got != nil {
		t.Fatal("empty tree returned results")
	}
}

func TestNearestDimensionMismatchPanics(t *testing.T) {
	tr := New(2)
	tr.Insert(geom.PointRect(geom.Point{0, 0}), 1)
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on dimension mismatch")
		}
	}()
	tr.Nearest(geom.Point{0}, 1, geom.L2)
}

// TestNearestMatchesBruteForce validates the best-first search against a
// linear scan for all metrics.
func TestNearestMatchesBruteForce(t *testing.T) {
	r := rand.New(rand.NewSource(90))
	for _, m := range []geom.Metric{geom.L2, geom.LInf, geom.L1} {
		for trial := 0; trial < 20; trial++ {
			n := 50 + r.Intn(400)
			pts := make([]geom.Point, n)
			tr := New(2)
			for i := range pts {
				pts[i] = geom.Point{r.Float64() * 100, r.Float64() * 100}
				tr.Insert(geom.PointRect(pts[i]), int64(i))
			}
			q := geom.Point{r.Float64() * 100, r.Float64() * 100}
			k := 1 + r.Intn(20)
			got := tr.Nearest(q, k, m)

			type cand struct {
				id int
				d  float64
			}
			cands := make([]cand, n)
			for i, p := range pts {
				cands[i] = cand{i, geom.Dist(m, p, q)}
			}
			sort.Slice(cands, func(i, j int) bool { return cands[i].d < cands[j].d })
			if len(got) != k {
				t.Fatalf("%v: got %d results, want %d", m, len(got), k)
			}
			for i := range got {
				// Compare distances, not ids (ties may reorder).
				if diff := got[i].Dist - cands[i].d; diff > 1e-9 || diff < -1e-9 {
					t.Fatalf("%v: result %d dist %v, brute force %v", m, i, got[i].Dist, cands[i].d)
				}
			}
		}
	}
}

func TestMinDist(t *testing.T) {
	r := geom.NewRect(geom.Point{0, 0}, geom.Point{2, 2})
	cases := []struct {
		p    geom.Point
		m    geom.Metric
		want float64
	}{
		{geom.Point{1, 1}, geom.L2, 0},    // inside
		{geom.Point{2, 2}, geom.L2, 0},    // corner
		{geom.Point{5, 2}, geom.L2, 3},    // axis gap
		{geom.Point{5, 6}, geom.L2, 5},    // 3-4-5 diagonal
		{geom.Point{5, 6}, geom.L1, 7},    // 3 + 4
		{geom.Point{5, 6}, geom.LInf, 4},  // max(3, 4)
		{geom.Point{-1, 1}, geom.LInf, 1}, // single-axis gap
	}
	for _, c := range cases {
		if got := geom.MinDist(c.m, c.p, r); got != c.want {
			t.Errorf("MinDist(%v, %v) = %v, want %v", c.m, c.p, got, c.want)
		}
	}
}

func BenchmarkNearest(b *testing.B) {
	r := rand.New(rand.NewSource(91))
	tr := New(2)
	for i := 0; i < 50000; i++ {
		tr.Insert(geom.PointRect(geom.Point{r.Float64() * 1000, r.Float64() * 1000}), int64(i))
	}
	queries := make([]geom.Point, 256)
	for i := range queries {
		queries[i] = geom.Point{r.Float64() * 1000, r.Float64() * 1000}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.Nearest(queries[i%len(queries)], 10, geom.L2)
	}
}
