// Package rtree implements an in-memory R-tree (Guttman 1984) with quadratic
// node splitting. The SGB operators use it as the "on-the-fly index": SGB-All
// indexes the ε-All bounding rectangles of the discovered groups (Groups_IX,
// Procedure 5) and SGB-Any indexes the processed points (Points_IX,
// Procedure 8).
//
// The tree stores (rectangle, int64 reference) entries and supports window
// queries, insertion, and deletion with subtree reinsertion on underflow.
package rtree

import (
	"sgb/internal/geom"
)

// Default node fan-out bounds. Guttman suggests m ≤ M/2; these values keep
// nodes cache-friendly for the 2-D/3-D rectangles the operators index.
const (
	defaultMax = 16
	defaultMin = 6
)

type entry struct {
	rect  geom.Rect
	child *node // nil at the leaf level
	ref   int64 // payload at the leaf level
}

type node struct {
	leaf    bool
	entries []entry
	parent  *node
}

// Tree is an R-tree over d-dimensional rectangles. The zero value is not
// usable; construct trees with New.
type Tree struct {
	dim        int
	root       *node
	size       int
	minEntries int
	maxEntries int
}

// New returns an empty R-tree for rectangles of the given dimensionality.
func New(dim int) *Tree {
	if dim <= 0 {
		panic("rtree: dimension must be positive")
	}
	return &Tree{
		dim:        dim,
		root:       &node{leaf: true},
		minEntries: defaultMin,
		maxEntries: defaultMax,
	}
}

// NewWithFanout returns an empty tree with explicit node fan-out bounds,
// exposed for tests and tuning. It panics unless 2 ≤ min ≤ max/2.
func NewWithFanout(dim, min, max int) *Tree {
	if dim <= 0 {
		panic("rtree: dimension must be positive")
	}
	if min < 2 || min > max/2 {
		panic("rtree: fan-out bounds must satisfy 2 <= min <= max/2")
	}
	return &Tree{
		dim:        dim,
		root:       &node{leaf: true},
		minEntries: min,
		maxEntries: max,
	}
}

// Len reports the number of stored entries.
func (t *Tree) Len() int { return t.size }

// Dim reports the dimensionality of the tree.
func (t *Tree) Dim() int { return t.dim }

// Insert adds an entry with the given bounding rectangle and reference.
func (t *Tree) Insert(r geom.Rect, ref int64) {
	if r.Dim() != t.dim {
		panic("rtree: rectangle dimension mismatch")
	}
	t.insertEntry(entry{rect: r.Clone(), ref: ref}, t.leafLevelTarget())
	t.size++
}

// leafLevelTarget is a sentinel meaning "insert at the leaf level".
func (t *Tree) leafLevelTarget() int { return 0 }

// insertEntry places e at the requested level above the leaves (0 = leaf).
// Reinsertion of orphaned subtrees after deletion uses level > 0.
func (t *Tree) insertEntry(e entry, level int) {
	n := t.chooseNode(e.rect, level)
	n.entries = append(n.entries, e)
	if e.child != nil {
		e.child.parent = n
	}
	if len(n.entries) > t.maxEntries {
		t.splitAndAdjust(n)
		return
	}
	// No split: the covering rectangles along the path only need to grow
	// to include e, which can be done in place without recomputing MBRs.
	for c, p := n, n.parent; p != nil; c, p = p, p.parent {
		for i := range p.entries {
			if p.entries[i].child == c {
				p.entries[i].rect.ExpandRectInPlace(e.rect)
				break
			}
		}
	}
}

// chooseNode descends from the root picking the child whose rectangle needs
// the least enlargement, breaking ties by smaller area (Guttman's
// ChooseLeaf, generalized to an arbitrary level).
func (t *Tree) chooseNode(r geom.Rect, level int) *node {
	n := t.root
	for {
		if n.leaf || t.height(n) == level {
			return n
		}
		best := -1
		var bestEnl, bestArea float64
		for i := range n.entries {
			enl := n.entries[i].rect.Enlargement(r)
			area := n.entries[i].rect.Area()
			if best == -1 || enl < bestEnl || (enl == bestEnl && area < bestArea) {
				best, bestEnl, bestArea = i, enl, area
			}
		}
		n = n.entries[best].child
	}
}

// height returns the height of the subtree rooted at n (0 for leaves).
func (t *Tree) height(n *node) int {
	h := 0
	for !n.leaf {
		n = n.entries[0].child
		h++
	}
	return h
}

// adjustUp recomputes covering rectangles from n to the root.
func (t *Tree) adjustUp(n *node) {
	for p := n.parent; p != nil; n, p = p, p.parent {
		for i := range p.entries {
			if p.entries[i].child == n {
				p.entries[i].rect = mbrOf(n.entries)
				break
			}
		}
	}
}

// splitAndAdjust splits an overflowing node and propagates splits upward,
// growing the tree at the root if necessary.
func (t *Tree) splitAndAdjust(n *node) {
	for {
		sib := t.quadraticSplit(n)
		if n.parent == nil {
			// Grow a new root above n and its new sibling.
			root := &node{leaf: false}
			root.entries = []entry{
				{rect: mbrOf(n.entries), child: n},
				{rect: mbrOf(sib.entries), child: sib},
			}
			n.parent, sib.parent = root, root
			t.root = root
			return
		}
		p := n.parent
		for i := range p.entries {
			if p.entries[i].child == n {
				p.entries[i].rect = mbrOf(n.entries)
				break
			}
		}
		sib.parent = p
		p.entries = append(p.entries, entry{rect: mbrOf(sib.entries), child: sib})
		if len(p.entries) <= t.maxEntries {
			t.adjustUp(p)
			return
		}
		n = p
	}
}

// quadraticSplit redistributes n's entries between n and a new sibling and
// returns the sibling. Seeds are chosen with Guttman's *linear* PickSeeds
// (the pair with the greatest normalized separation along some axis), which
// costs O(M·d) instead of O(M²) — the split rate on the operators'
// point-heavy workloads makes the quadratic seed search a measurable
// fraction of total insert time. The distribution step follows Guttman's
// least-enlargement rule with the min-entries backstop.
func (t *Tree) quadraticSplit(n *node) *node {
	entries := n.entries
	dim := t.dim
	si, sj := 0, 1
	bestSep := -1.0
	for d := 0; d < dim; d++ {
		// Extreme entries: highest low side and lowest high side.
		hiLow, loHigh := 0, 0
		lo, hi := entries[0].rect.Min[d], entries[0].rect.Max[d]
		for i, e := range entries {
			if e.rect.Min[d] > entries[hiLow].rect.Min[d] {
				hiLow = i
			}
			if e.rect.Max[d] < entries[loHigh].rect.Max[d] {
				loHigh = i
			}
			if e.rect.Min[d] < lo {
				lo = e.rect.Min[d]
			}
			if e.rect.Max[d] > hi {
				hi = e.rect.Max[d]
			}
		}
		width := hi - lo
		if width <= 0 {
			width = 1
		}
		sep := (entries[hiLow].rect.Min[d] - entries[loHigh].rect.Max[d]) / width
		if sep > bestSep && hiLow != loHigh {
			bestSep, si, sj = sep, hiLow, loHigh
		}
	}
	if si == sj {
		// All entries coincide; any two distinct indexes work.
		si, sj = 0, 1
	}
	sib := &node{leaf: n.leaf}
	groupA := []entry{entries[si]}
	groupB := []entry{entries[sj]}
	rectA := entries[si].rect.Clone()
	rectB := entries[sj].rect.Clone()
	rest := make([]entry, 0, len(entries)-2)
	for i, e := range entries {
		if i != si && i != sj {
			rest = append(rest, e)
		}
	}
	for k, e := range rest {
		// If one group must take everything left to reach minEntries, do so.
		if len(groupA)+len(rest)-k == t.minEntries {
			for _, r := range rest[k:] {
				groupA = append(groupA, r)
				rectA.ExpandRectInPlace(r.rect)
			}
			break
		}
		if len(groupB)+len(rest)-k == t.minEntries {
			for _, r := range rest[k:] {
				groupB = append(groupB, r)
				rectB.ExpandRectInPlace(r.rect)
			}
			break
		}
		dA := rectA.Enlargement(e.rect)
		dB := rectB.Enlargement(e.rect)
		toA := dA < dB
		if dA == dB {
			if a, b := rectA.Area(), rectB.Area(); a != b {
				toA = a < b
			} else {
				toA = len(groupA) <= len(groupB)
			}
		}
		if toA {
			groupA = append(groupA, e)
			rectA.ExpandRectInPlace(e.rect)
		} else {
			groupB = append(groupB, e)
			rectB.ExpandRectInPlace(e.rect)
		}
	}
	n.entries = groupA
	sib.entries = groupB
	if !n.leaf {
		for i := range n.entries {
			n.entries[i].child.parent = n
		}
		for i := range sib.entries {
			sib.entries[i].child.parent = sib
		}
	}
	return sib
}

func mbrOf(entries []entry) geom.Rect {
	r := entries[0].rect.Clone()
	for _, e := range entries[1:] {
		r.ExpandRectInPlace(e.rect)
	}
	return r
}

// Search invokes fn for every entry whose rectangle intersects window,
// stopping early if fn returns false.
func (t *Tree) Search(window geom.Rect, fn func(ref int64) bool) {
	if t.size == 0 {
		return
	}
	t.search(t.root, window, fn)
}

func (t *Tree) search(n *node, window geom.Rect, fn func(ref int64) bool) bool {
	for i := range n.entries {
		if !n.entries[i].rect.Intersects(window) {
			continue
		}
		if n.leaf {
			if !fn(n.entries[i].ref) {
				return false
			}
		} else if !t.search(n.entries[i].child, window, fn) {
			return false
		}
	}
	return true
}

// SearchSlice returns the references of all entries intersecting window.
func (t *Tree) SearchSlice(window geom.Rect) []int64 {
	var out []int64
	t.Search(window, func(ref int64) bool {
		out = append(out, ref)
		return true
	})
	return out
}

// Delete removes the entry with the given reference whose stored rectangle
// intersects r. It reports whether an entry was removed. Underflowing nodes
// are dissolved and their entries reinserted (Guttman's CondenseTree).
func (t *Tree) Delete(r geom.Rect, ref int64) bool {
	leaf, idx := t.findLeaf(t.root, r, ref)
	if leaf == nil {
		return false
	}
	leaf.entries = append(leaf.entries[:idx], leaf.entries[idx+1:]...)
	t.size--
	t.condense(leaf)
	// Shrink the root if it lost its fan-out.
	if !t.root.leaf && len(t.root.entries) == 1 {
		t.root = t.root.entries[0].child
		t.root.parent = nil
	}
	return true
}

func (t *Tree) findLeaf(n *node, r geom.Rect, ref int64) (*node, int) {
	for i := range n.entries {
		if !n.entries[i].rect.Intersects(r) {
			continue
		}
		if n.leaf {
			if n.entries[i].ref == ref {
				return n, i
			}
			continue
		}
		if leaf, idx := t.findLeaf(n.entries[i].child, r, ref); leaf != nil {
			return leaf, idx
		}
	}
	return nil, -1
}

// condense walks from a shrunken leaf to the root, dissolving underflowing
// nodes and collecting their surviving subtrees for reinsertion at the
// correct level.
func (t *Tree) condense(n *node) {
	type orphan struct {
		e     entry
		level int
	}
	var orphans []orphan
	level := 0
	for n.parent != nil {
		p := n.parent
		if len(n.entries) < t.minEntries {
			// Remove n from its parent and orphan its entries.
			for i := range p.entries {
				if p.entries[i].child == n {
					p.entries = append(p.entries[:i], p.entries[i+1:]...)
					break
				}
			}
			for _, e := range n.entries {
				orphans = append(orphans, orphan{e: e, level: level})
			}
		} else {
			for i := range p.entries {
				if p.entries[i].child == n {
					p.entries[i].rect = mbrOf(n.entries)
					break
				}
			}
		}
		n = p
		level++
	}
	for _, o := range orphans {
		if o.e.child != nil {
			t.reinsertSubtree(o.e, o.level)
		} else {
			t.insertEntry(o.e, 0)
		}
	}
}

// reinsertSubtree places an orphaned internal entry back at its original
// level so the tree stays height-balanced. If the tree has since become too
// short, the subtree's leaf entries are reinserted individually.
func (t *Tree) reinsertSubtree(e entry, level int) {
	if t.height(t.root) <= level {
		var leaves []entry
		collectLeafEntries(e.child, &leaves)
		for _, le := range leaves {
			t.insertEntry(le, 0)
		}
		return
	}
	t.insertEntry(e, level)
}

func collectLeafEntries(n *node, out *[]entry) {
	if n.leaf {
		*out = append(*out, n.entries...)
		return
	}
	for i := range n.entries {
		collectLeafEntries(n.entries[i].child, out)
	}
}

// checkInvariants validates structural invariants; it is exported to the
// package tests via export_test.go.
func (t *Tree) checkInvariants() error {
	return t.check(t.root, nil, true)
}
