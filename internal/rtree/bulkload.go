package rtree

import (
	"math"
	"sort"

	"sgb/internal/geom"
)

// BulkEntry is one (rectangle, reference) pair for bulk loading.
type BulkEntry struct {
	Rect geom.Rect
	Ref  int64
}

// BulkLoad builds a tree from all entries at once using Sort-Tile-Recursive
// packing (Leutenegger et al.): entries are sorted by the first axis, tiled
// into vertical runs, each run sorted by the second axis and packed into
// balanced nodes. Packed trees have near-full node occupancy, which makes
// window queries on static point sets (the DBSCAN baseline, read-only
// workloads) noticeably cheaper than trees grown by repeated insertion. The
// packed tree supports subsequent Insert/Delete like any other.
//
// The entries slice is reordered in place.
func BulkLoad(dim int, entries []BulkEntry) *Tree {
	t := New(dim)
	if len(entries) == 0 {
		return t
	}
	leaves := packLeaves(t, entries)
	level := leaves
	for len(level) > 1 {
		level = packNodes(t, level)
	}
	t.root = level[0]
	t.size = len(entries)
	return t
}

// center returns a rectangle's midpoint along the given axis.
func center(r geom.Rect, axis int) float64 {
	return (r.Min[axis] + r.Max[axis]) / 2
}

// chunks splits n items into balanced consecutive chunks of at most cap
// items each and returns the chunk boundaries. Balancing keeps every chunk
// at least ⌈n/k⌉ ≥ cap/2 ≥ minEntries items (for n > cap), so packed nodes
// never underflow.
func chunks(n, cap int) []int {
	k := (n + cap - 1) / cap
	bounds := make([]int, 0, k+1)
	for i := 0; i <= k; i++ {
		bounds = append(bounds, i*n/k)
	}
	return bounds
}

// runBounds tiles n sorted items into ~sqrt(k) runs of whole chunks.
func runBounds(n, cap int) []int {
	k := (n + cap - 1) / cap
	sliceCount := int(math.Ceil(math.Sqrt(float64(k))))
	sliceSize := sliceCount * cap
	bounds := []int{0}
	for start := sliceSize; start < n; start += sliceSize {
		bounds = append(bounds, start)
	}
	bounds = append(bounds, n)
	// Fold a tiny trailing run into its predecessor so every run stays at
	// least one full node wide (keeps chunk balancing above minEntries).
	if len(bounds) >= 3 && n-bounds[len(bounds)-2] < cap {
		bounds = append(bounds[:len(bounds)-2], n)
	}
	return bounds
}

// packLeaves tiles the entries into balanced leaf nodes.
func packLeaves(t *Tree, entries []BulkEntry) []*node {
	sort.Slice(entries, func(i, j int) bool {
		return center(entries[i].Rect, 0) < center(entries[j].Rect, 0)
	})
	var leaves []*node
	rb := runBounds(len(entries), t.maxEntries)
	for ri := 0; ri+1 < len(rb); ri++ {
		run := entries[rb[ri]:rb[ri+1]]
		if t.dim > 1 {
			sort.Slice(run, func(i, j int) bool {
				return center(run[i].Rect, 1) < center(run[j].Rect, 1)
			})
		}
		cb := chunks(len(run), t.maxEntries)
		for ci := 0; ci+1 < len(cb); ci++ {
			chunk := run[cb[ci]:cb[ci+1]]
			leaf := &node{leaf: true, entries: make([]entry, 0, len(chunk))}
			for _, be := range chunk {
				leaf.entries = append(leaf.entries, entry{rect: be.Rect.Clone(), ref: be.Ref})
			}
			leaves = append(leaves, leaf)
		}
	}
	return leaves
}

// packNodes groups a level of nodes into balanced parents, preserving the
// packed spatial order.
func packNodes(t *Tree, level []*node) []*node {
	type holder struct {
		n *node
		r geom.Rect
	}
	hs := make([]holder, len(level))
	for i, n := range level {
		hs[i] = holder{n: n, r: mbrOf(n.entries)}
	}
	sort.Slice(hs, func(i, j int) bool {
		return center(hs[i].r, 0) < center(hs[j].r, 0)
	})
	var parents []*node
	rb := runBounds(len(hs), t.maxEntries)
	for ri := 0; ri+1 < len(rb); ri++ {
		run := hs[rb[ri]:rb[ri+1]]
		if t.dim > 1 {
			sort.Slice(run, func(i, j int) bool {
				return center(run[i].r, 1) < center(run[j].r, 1)
			})
		}
		cb := chunks(len(run), t.maxEntries)
		for ci := 0; ci+1 < len(cb); ci++ {
			chunk := run[cb[ci]:cb[ci+1]]
			parent := &node{entries: make([]entry, 0, len(chunk))}
			for _, h := range chunk {
				h.n.parent = parent
				parent.entries = append(parent.entries, entry{rect: h.r, child: h.n})
			}
			parents = append(parents, parent)
		}
	}
	return parents
}
