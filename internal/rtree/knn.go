package rtree

import (
	"container/heap"

	"sgb/internal/geom"
)

// Neighbor is one result of a nearest-neighbour query.
type Neighbor struct {
	// Ref is the stored entry reference.
	Ref int64
	// Dist is the minimum distance from the query point to the entry's
	// rectangle (for point entries, the distance to the point).
	Dist float64
}

// nnItem is a frontier element of the best-first search: either an internal
// node or a leaf entry, ordered by its distance lower bound.
type nnItem struct {
	node *node
	ref  int64
	dist float64
}

type nnHeap []nnItem

func (h nnHeap) Len() int            { return len(h) }
func (h nnHeap) Less(i, j int) bool  { return h[i].dist < h[j].dist }
func (h nnHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *nnHeap) Push(x interface{}) { *h = append(*h, x.(nnItem)) }
func (h *nnHeap) Pop() interface{} {
	old := *h
	it := old[len(old)-1]
	*h = old[:len(old)-1]
	return it
}

// Nearest returns the k entries whose rectangles are closest to p under
// metric m, in ascending distance order (fewer when the tree holds fewer
// than k entries). It runs the classic best-first search: a priority queue
// over nodes and entries keyed by MinDist, so subtrees farther than the
// current k-th best are never descended.
func (t *Tree) Nearest(p geom.Point, k int, m geom.Metric) []Neighbor {
	if k <= 0 || t.size == 0 {
		return nil
	}
	if len(p) != t.dim {
		panic("rtree: query point dimension mismatch")
	}
	h := &nnHeap{{node: t.root, dist: 0}}
	out := make([]Neighbor, 0, k)
	for h.Len() > 0 {
		it := heap.Pop(h).(nnItem)
		if it.node == nil {
			out = append(out, Neighbor{Ref: it.ref, Dist: it.dist})
			if len(out) == k {
				return out
			}
			continue
		}
		for i := range it.node.entries {
			e := &it.node.entries[i]
			d := geom.MinDist(m, p, e.rect)
			if e.child != nil {
				heap.Push(h, nnItem{node: e.child, dist: d})
			} else {
				heap.Push(h, nnItem{ref: e.ref, dist: d})
			}
		}
	}
	return out
}
