package rtree

// CheckInvariants exposes the structural validator to the tests.
func (t *Tree) CheckInvariants() error { return t.checkInvariants() }
