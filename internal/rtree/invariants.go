package rtree

import (
	"fmt"

	"sgb/internal/geom"
)

// check recursively validates node invariants: parent links, fan-out bounds,
// covering rectangles, and uniform leaf depth.
func (t *Tree) check(n *node, parent *node, isRoot bool) error {
	if n.parent != parent {
		return fmt.Errorf("rtree: broken parent link")
	}
	if !isRoot && len(n.entries) < t.minEntries {
		return fmt.Errorf("rtree: node underflow (%d < %d)", len(n.entries), t.minEntries)
	}
	if len(n.entries) > t.maxEntries {
		return fmt.Errorf("rtree: node overflow (%d > %d)", len(n.entries), t.maxEntries)
	}
	if isRoot && !n.leaf && len(n.entries) < 2 {
		return fmt.Errorf("rtree: non-leaf root with %d entries", len(n.entries))
	}
	if n.leaf {
		return nil
	}
	depth := -1
	for i := range n.entries {
		e := n.entries[i]
		if e.child == nil {
			return fmt.Errorf("rtree: internal entry without child")
		}
		if got := mbrOf(e.child.entries); !containsRect(e.rect, got) {
			return fmt.Errorf("rtree: covering rect %v does not contain child mbr %v", e.rect, got)
		}
		d := t.height(e.child)
		if depth == -1 {
			depth = d
		} else if d != depth {
			return fmt.Errorf("rtree: unbalanced children (%d vs %d)", d, depth)
		}
		if err := t.check(e.child, n, false); err != nil {
			return err
		}
	}
	return nil
}

func containsRect(outer, inner geom.Rect) bool {
	return outer.ContainsRect(inner)
}
