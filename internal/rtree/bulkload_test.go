package rtree

import (
	"math/rand"
	"sort"
	"testing"

	"sgb/internal/geom"
)

func bulkEntries(r *rand.Rand, n, dim int) []BulkEntry {
	out := make([]BulkEntry, n)
	for i := range out {
		p := make(geom.Point, dim)
		for d := range p {
			p[d] = r.Float64() * 100
		}
		out[i] = BulkEntry{Rect: geom.PointRect(p), Ref: int64(i)}
	}
	return out
}

func TestBulkLoadMatchesIncremental(t *testing.T) {
	r := rand.New(rand.NewSource(110))
	for _, n := range []int{0, 1, 5, 16, 17, 100, 1000, 5000} {
		entries := bulkEntries(r, n, 2)
		// Keep a copy: BulkLoad reorders in place.
		inc := New(2)
		for _, e := range entries {
			inc.Insert(e.Rect, e.Ref)
		}
		packed := BulkLoad(2, entries)
		if packed.Len() != n {
			t.Fatalf("n=%d: packed Len=%d", n, packed.Len())
		}
		if err := packed.CheckInvariants(); err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		for q := 0; q < 30; q++ {
			w := randRect(r, 2)
			a := inc.SearchSlice(w)
			b := packed.SearchSlice(w)
			sort.Slice(a, func(i, j int) bool { return a[i] < a[j] })
			sort.Slice(b, func(i, j int) bool { return b[i] < b[j] })
			if !equalIDs(a, b) {
				t.Fatalf("n=%d: packed search differs from incremental", n)
			}
		}
	}
}

func TestBulkLoadThenMutate(t *testing.T) {
	r := rand.New(rand.NewSource(111))
	entries := bulkEntries(r, 500, 2)
	rects := make([]geom.Rect, len(entries))
	for i, e := range entries {
		rects[i] = e.Rect.Clone()
	}
	tr := BulkLoad(2, entries)
	// Insert after packing.
	extra := geom.PointRect(geom.Point{200, 200})
	tr.Insert(extra, 9999)
	if got := tr.SearchSlice(extra); len(got) != 1 || got[0] != 9999 {
		t.Fatalf("post-pack insert not found: %v", got)
	}
	// Delete half the packed entries.
	for i := int64(0); i < 250; i++ {
		if !tr.Delete(rects[i], i) {
			t.Fatalf("delete %d failed", i)
		}
	}
	if tr.Len() != 251 {
		t.Fatalf("Len = %d", tr.Len())
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestBulkLoadHigherDim(t *testing.T) {
	r := rand.New(rand.NewSource(112))
	entries := bulkEntries(r, 700, 3)
	tr := BulkLoad(3, entries)
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	all := tr.SearchSlice(geom.NewRect(geom.Point{0, 0, 0}, geom.Point{100, 100, 100}))
	if len(all) != 700 {
		t.Fatalf("full window found %d", len(all))
	}
}

func TestBulkLoadNearest(t *testing.T) {
	r := rand.New(rand.NewSource(113))
	entries := bulkEntries(r, 800, 2)
	pts := make([]geom.Point, len(entries))
	for _, e := range entries {
		pts[e.Ref] = e.Rect.Min.Clone()
	}
	tr := BulkLoad(2, entries)
	q := geom.Point{50, 50}
	got := tr.Nearest(q, 5, geom.L2)
	if len(got) != 5 {
		t.Fatalf("got %d neighbours", len(got))
	}
	// Verify the first result against brute force.
	best, bd := -1, 1e18
	for i, p := range pts {
		d := geom.Dist(geom.L2, p, q)
		if d < bd {
			best, bd = i, d
		}
	}
	if got[0].Ref != int64(best) {
		t.Fatalf("nearest = %d, want %d", got[0].Ref, best)
	}
}

func BenchmarkBulkLoadVsIncremental(b *testing.B) {
	r := rand.New(rand.NewSource(114))
	base := bulkEntries(r, 50000, 2)
	b.Run("incremental", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			tr := New(2)
			for _, e := range base {
				tr.Insert(e.Rect, e.Ref)
			}
		}
	})
	b.Run("str-pack", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			entries := make([]BulkEntry, len(base))
			copy(entries, base)
			BulkLoad(2, entries)
		}
	})
}
