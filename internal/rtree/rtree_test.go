package rtree

import (
	"math/rand"
	"sort"
	"testing"

	"sgb/internal/geom"
)

func randRect(r *rand.Rand, dim int) geom.Rect {
	min := make(geom.Point, dim)
	max := make(geom.Point, dim)
	for i := 0; i < dim; i++ {
		a := r.Float64() * 100
		w := r.Float64() * 10
		min[i], max[i] = a, a+w
	}
	return geom.Rect{Min: min, Max: max}
}

func TestEmptyTree(t *testing.T) {
	tr := New(2)
	if tr.Len() != 0 || tr.Dim() != 2 {
		t.Fatal("fresh tree not empty")
	}
	if got := tr.SearchSlice(randRect(rand.New(rand.NewSource(1)), 2)); len(got) != 0 {
		t.Fatalf("search on empty tree returned %v", got)
	}
	if tr.Delete(randRect(rand.New(rand.NewSource(2)), 2), 1) {
		t.Fatal("delete on empty tree succeeded")
	}
}

func TestNewValidation(t *testing.T) {
	for _, f := range []func(){
		func() { New(0) },
		func() { NewWithFanout(2, 1, 8) },
		func() { NewWithFanout(2, 5, 8) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic on invalid constructor args")
				}
			}()
			f()
		}()
	}
}

func TestInsertSearchSmall(t *testing.T) {
	tr := New(2)
	tr.Insert(geom.NewRect(geom.Point{0, 0}, geom.Point{1, 1}), 1)
	tr.Insert(geom.NewRect(geom.Point{5, 5}, geom.Point{6, 6}), 2)
	tr.Insert(geom.NewRect(geom.Point{0.5, 0.5}, geom.Point{5.5, 5.5}), 3)
	got := tr.SearchSlice(geom.NewRect(geom.Point{0.9, 0.9}, geom.Point{1.1, 1.1}))
	sort.Slice(got, func(i, j int) bool { return got[i] < got[j] })
	if len(got) != 2 || got[0] != 1 || got[1] != 3 {
		t.Fatalf("search = %v, want [1 3]", got)
	}
	// Touching boundary counts as intersecting (closed rectangles).
	got = tr.SearchSlice(geom.NewRect(geom.Point{6, 6}, geom.Point{7, 7}))
	if len(got) != 1 || got[0] != 2 {
		t.Fatalf("boundary search = %v, want [2]", got)
	}
}

func TestSearchEarlyStop(t *testing.T) {
	tr := New(2)
	for i := 0; i < 100; i++ {
		tr.Insert(geom.NewRect(geom.Point{0, 0}, geom.Point{1, 1}), int64(i))
	}
	calls := 0
	tr.Search(geom.NewRect(geom.Point{0, 0}, geom.Point{1, 1}), func(ref int64) bool {
		calls++
		return calls < 5
	})
	if calls != 5 {
		t.Fatalf("early stop visited %d entries, want 5", calls)
	}
}

func TestInsertDimensionMismatchPanics(t *testing.T) {
	tr := New(2)
	defer func() {
		if recover() == nil {
			t.Fatal("Insert accepted wrong-dimension rect")
		}
	}()
	tr.Insert(geom.NewRect(geom.Point{0}, geom.Point{1}), 1)
}

// model is a brute-force reference the tree is validated against.
type model struct {
	rects map[int64]geom.Rect
}

func (m *model) search(w geom.Rect) []int64 {
	var out []int64
	for id, r := range m.rects {
		if r.Intersects(w) {
			out = append(out, id)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func TestAgainstModelInsertOnly(t *testing.T) {
	r := rand.New(rand.NewSource(30))
	for _, dim := range []int{1, 2, 3} {
		tr := New(dim)
		m := &model{rects: map[int64]geom.Rect{}}
		for i := int64(0); i < 400; i++ {
			rect := randRect(r, dim)
			tr.Insert(rect, i)
			m.rects[i] = rect
			if err := tr.CheckInvariants(); err != nil {
				t.Fatalf("dim %d after insert %d: %v", dim, i, err)
			}
		}
		if tr.Len() != 400 {
			t.Fatalf("Len = %d", tr.Len())
		}
		for q := 0; q < 100; q++ {
			w := randRect(r, dim)
			got := tr.SearchSlice(w)
			sort.Slice(got, func(i, j int) bool { return got[i] < got[j] })
			want := m.search(w)
			if !equalIDs(got, want) {
				t.Fatalf("dim %d query %v: got %v want %v", dim, w, got, want)
			}
		}
	}
}

func TestAgainstModelWithDeletes(t *testing.T) {
	r := rand.New(rand.NewSource(31))
	tr := New(2)
	m := &model{rects: map[int64]geom.Rect{}}
	next := int64(0)
	for op := 0; op < 3000; op++ {
		switch {
		case len(m.rects) == 0 || r.Float64() < 0.6:
			rect := randRect(r, 2)
			tr.Insert(rect, next)
			m.rects[next] = rect
			next++
		default:
			// Delete a random live entry.
			var victim int64 = -1
			k := r.Intn(len(m.rects))
			for id := range m.rects {
				if k == 0 {
					victim = id
					break
				}
				k--
			}
			if !tr.Delete(m.rects[victim], victim) {
				t.Fatalf("op %d: delete of live entry %d failed", op, victim)
			}
			delete(m.rects, victim)
		}
		if tr.Len() != len(m.rects) {
			t.Fatalf("op %d: Len=%d model=%d", op, tr.Len(), len(m.rects))
		}
		if op%50 == 0 {
			if err := tr.CheckInvariants(); err != nil {
				t.Fatalf("op %d: %v", op, err)
			}
			w := randRect(r, 2)
			got := tr.SearchSlice(w)
			sort.Slice(got, func(i, j int) bool { return got[i] < got[j] })
			if want := m.search(w); !equalIDs(got, want) {
				t.Fatalf("op %d: got %v want %v", op, got, want)
			}
		}
	}
	// Drain the tree completely.
	for id, rect := range m.rects {
		if !tr.Delete(rect, id) {
			t.Fatalf("drain: delete %d failed", id)
		}
	}
	if tr.Len() != 0 {
		t.Fatalf("drained tree Len=%d", tr.Len())
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestDeleteMissing(t *testing.T) {
	tr := New(2)
	rect := geom.NewRect(geom.Point{0, 0}, geom.Point{1, 1})
	tr.Insert(rect, 7)
	if tr.Delete(rect, 8) {
		t.Fatal("deleted an entry with the wrong ref")
	}
	far := geom.NewRect(geom.Point{50, 50}, geom.Point{51, 51})
	if tr.Delete(far, 7) {
		t.Fatal("deleted an entry via a disjoint rect")
	}
	if !tr.Delete(rect, 7) || tr.Len() != 0 {
		t.Fatal("failed to delete the live entry")
	}
}

func TestDuplicateRefsAllowed(t *testing.T) {
	// The SGB-All index re-inserts a group under the same ref after its
	// rectangle changes; between delete and insert duplicates never exist,
	// but the tree itself must tolerate equal rectangles.
	tr := New(2)
	rect := geom.NewRect(geom.Point{0, 0}, geom.Point{1, 1})
	for i := 0; i < 20; i++ {
		tr.Insert(rect, int64(i))
	}
	if got := len(tr.SearchSlice(rect)); got != 20 {
		t.Fatalf("found %d entries, want 20", got)
	}
	for i := 0; i < 20; i++ {
		if !tr.Delete(rect, int64(i)) {
			t.Fatalf("delete %d failed", i)
		}
	}
}

func TestSmallFanout(t *testing.T) {
	// A tiny fan-out exercises splits and condensation aggressively.
	r := rand.New(rand.NewSource(32))
	tr := NewWithFanout(2, 2, 4)
	m := &model{rects: map[int64]geom.Rect{}}
	for i := int64(0); i < 300; i++ {
		rect := randRect(r, 2)
		tr.Insert(rect, i)
		m.rects[i] = rect
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	for i := int64(0); i < 300; i += 2 {
		if !tr.Delete(m.rects[i], i) {
			t.Fatalf("delete %d failed", i)
		}
		delete(m.rects, i)
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	w := geom.NewRect(geom.Point{0, 0}, geom.Point{100, 100})
	got := tr.SearchSlice(w)
	if len(got) != len(m.rects) {
		t.Fatalf("full-window search found %d, want %d", len(got), len(m.rects))
	}
}

func equalIDs(a, b []int64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func BenchmarkInsert(b *testing.B) {
	r := rand.New(rand.NewSource(33))
	rects := make([]geom.Rect, 10000)
	for i := range rects {
		rects[i] = randRect(r, 2)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr := New(2)
		for j, rect := range rects {
			tr.Insert(rect, int64(j))
		}
	}
}

func BenchmarkSearch(b *testing.B) {
	r := rand.New(rand.NewSource(34))
	tr := New(2)
	for i := int64(0); i < 10000; i++ {
		tr.Insert(randRect(r, 2), i)
	}
	windows := make([]geom.Rect, 64)
	for i := range windows {
		windows[i] = randRect(r, 2)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.Search(windows[i%len(windows)], func(int64) bool { return true })
	}
}
