package wire

import (
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"math"
	"reflect"
	"strings"
	"testing"
	"time"

	"sgb/internal/engine"
)

// TestRoundTrip encodes and decodes one instance of every message type.
func TestRoundTrip(t *testing.T) {
	msgs := []Message{
		&Hello{Version: Version},
		&Welcome{Version: Version, Server: "sgbd test"},
		&Query{SQL: "SELECT count(*) FROM t GROUP BY x, y DISTANCE-TO-ANY L2 WITHIN 0.5"},
		&Set{Name: "parallelism", Value: "4"},
		&Ping{},
		&Pong{},
		&Cancel{},
		&Stats{},
		&StatsText{Text: "# TYPE engine_queries_total counter\nengine_queries_total 7\n"},
		&Close{},
		&RowHeader{Columns: []string{"id", "cnt", "avg"}},
		&RowHeader{Columns: []string{}},
		&RowBatch{Rows: []engine.Row{
			{engine.NewInt(1), engine.NewFloat(2.5), engine.NewString("a"), engine.NewBool(true), engine.Null},
			{engine.NewInt(-9), engine.NewFloat(math.Inf(-1)), engine.NewString(""), engine.NewBool(false), engine.Null},
		}},
		&RowBatch{Rows: []engine.Row{}},
		&Done{RowsAffected: 42, RowCount: 1000},
		&Done{RowsAffected: -1, RowCount: 0},
		&Error{Code: CodeResourceLimit, Message: "query exceeded rows limit"},
		&Error{Code: CodeReadOnly, Message: "store degraded", RetryAfterMS: 1000},
		&Error{Code: CodeOverloaded, Message: "admission queue full", RetryAfterMS: 250},
	}
	for _, m := range msgs {
		var buf bytes.Buffer
		if err := WriteMessage(&buf, m); err != nil {
			t.Fatalf("write %T: %v", m, err)
		}
		got, err := ReadMessage(&buf)
		if err != nil {
			t.Fatalf("read %T: %v", m, err)
		}
		if !reflect.DeepEqual(got, m) {
			t.Errorf("round trip %T:\n got %#v\nwant %#v", m, got, m)
		}
		if buf.Len() != 0 {
			t.Errorf("%T: %d bytes left after decode", m, buf.Len())
		}
	}
}

// TestRoundTripFloatBits pins that float values round-trip bit-exactly,
// including NaN payloads and negative zero — required for the server's
// bit-identical-to-embedded guarantee.
func TestRoundTripFloatBits(t *testing.T) {
	bits := []uint64{
		math.Float64bits(0), math.Float64bits(math.Copysign(0, -1)),
		math.Float64bits(math.NaN()), 0x7ff8000000000123,
		math.Float64bits(math.Inf(1)), math.Float64bits(1e-308),
	}
	for _, b := range bits {
		m := &RowBatch{Rows: []engine.Row{{engine.NewFloat(math.Float64frombits(b))}}}
		var buf bytes.Buffer
		if err := WriteMessage(&buf, m); err != nil {
			t.Fatal(err)
		}
		got, err := ReadMessage(&buf)
		if err != nil {
			t.Fatal(err)
		}
		gv := got.(*RowBatch).Rows[0][0]
		if math.Float64bits(gv.F) != b {
			t.Errorf("float bits %#x round-tripped to %#x", b, math.Float64bits(gv.F))
		}
	}
}

// TestSequentialStream decodes several messages written back to back, as a
// real connection would carry them.
func TestSequentialStream(t *testing.T) {
	var buf bytes.Buffer
	seq := []Message{
		&RowHeader{Columns: []string{"c"}},
		&RowBatch{Rows: []engine.Row{{engine.NewInt(1)}}},
		&RowBatch{Rows: []engine.Row{{engine.NewInt(2)}}},
		&Done{RowCount: 2},
	}
	for _, m := range seq {
		if err := WriteMessage(&buf, m); err != nil {
			t.Fatal(err)
		}
	}
	for i, want := range seq {
		got, err := ReadMessage(&buf)
		if err != nil {
			t.Fatalf("message %d: %v", i, err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("message %d: got %#v want %#v", i, got, want)
		}
	}
	if _, err := ReadMessage(&buf); err != io.EOF {
		t.Errorf("after stream: got %v, want io.EOF", err)
	}
}

// TestMalformedFrames exercises the decoder's error paths: bad magic,
// unknown types, truncation, oversized lengths, corrupt counts, and trailing
// garbage must all fail loudly rather than mis-decode.
func TestMalformedFrames(t *testing.T) {
	encode := func(m Message) []byte {
		var buf bytes.Buffer
		if err := WriteMessage(&buf, m); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}

	t.Run("truncated header", func(t *testing.T) {
		_, err := ReadMessage(bytes.NewReader([]byte{TypePing, 0, 0}))
		if err != io.ErrUnexpectedEOF {
			t.Errorf("got %v, want ErrUnexpectedEOF", err)
		}
	})
	t.Run("truncated payload", func(t *testing.T) {
		b := encode(&Query{SQL: "SELECT 1"})
		_, err := ReadMessage(bytes.NewReader(b[:len(b)-3]))
		if err != io.ErrUnexpectedEOF {
			t.Errorf("got %v, want ErrUnexpectedEOF", err)
		}
	})
	t.Run("oversized length prefix", func(t *testing.T) {
		hdr := []byte{TypeQuery, 0, 0, 0, 0}
		binary.BigEndian.PutUint32(hdr[1:], MaxFrame+1)
		_, err := ReadMessage(bytes.NewReader(hdr))
		if !errors.Is(err, ErrFrameTooLarge) {
			t.Errorf("got %v, want ErrFrameTooLarge", err)
		}
	})
	t.Run("unknown type", func(t *testing.T) {
		_, err := ReadMessage(bytes.NewReader([]byte{0x7f, 0, 0, 0, 0}))
		if err == nil || !strings.Contains(err.Error(), "unknown message type") {
			t.Errorf("got %v", err)
		}
	})
	t.Run("bad magic", func(t *testing.T) {
		b := encode(&Hello{Version: Version})
		copy(b[5:], "HTTP")
		_, err := ReadMessage(bytes.NewReader(b))
		if err == nil || !strings.Contains(err.Error(), "bad magic") {
			t.Errorf("got %v", err)
		}
	})
	t.Run("corrupt row count", func(t *testing.T) {
		b := encode(&RowBatch{Rows: []engine.Row{{engine.NewInt(1)}}})
		// Overwrite the row count with a huge value; the decoder must bound
		// it against the remaining bytes, not allocate.
		binary.BigEndian.PutUint32(b[5:9], 1<<30)
		if _, err := ReadMessage(bytes.NewReader(b)); err == nil {
			t.Error("corrupt count decoded without error")
		}
	})
	t.Run("unknown value type", func(t *testing.T) {
		b := encode(&RowBatch{Rows: []engine.Row{{engine.NewBool(true)}}})
		b[len(b)-2] = 0xee // value type tag
		if _, err := ReadMessage(bytes.NewReader(b)); err == nil ||
			!strings.Contains(err.Error(), "unknown value type") {
			t.Errorf("got %v", err)
		}
	})
	t.Run("trailing garbage", func(t *testing.T) {
		b := encode(&Ping{})
		b = append(b, 0xab)
		binary.BigEndian.PutUint32(b[1:5], 1)
		if _, err := ReadMessage(bytes.NewReader(b)); err == nil ||
			!strings.Contains(err.Error(), "trailing bytes") {
			t.Errorf("got %v", err)
		}
	})
	t.Run("clean EOF", func(t *testing.T) {
		if _, err := ReadMessage(bytes.NewReader(nil)); err != io.EOF {
			t.Errorf("got %v, want io.EOF", err)
		}
	})
}

// TestErrorRetryAfterEncoding pins the v4 compatibility contract for the
// Error frame's optional retry-after field: a zero hint encodes exactly as
// the pre-v4 frame (no trailing bytes, so old decoders accept it), and a
// nonzero hint appends one uint32 that new decoders read back.
func TestErrorRetryAfterEncoding(t *testing.T) {
	var withoutHint, withHint bytes.Buffer
	if err := WriteMessage(&withoutHint, &Error{Code: CodeReadOnly, Message: "ro"}); err != nil {
		t.Fatal(err)
	}
	if err := WriteMessage(&withHint, &Error{Code: CodeReadOnly, Message: "ro", RetryAfterMS: 500}); err != nil {
		t.Fatal(err)
	}
	if withHint.Len() != withoutHint.Len()+4 {
		t.Fatalf("hinted frame is %d bytes, unhinted %d; want exactly 4 more",
			withHint.Len(), withoutHint.Len())
	}

	got, err := ReadMessage(&withoutHint)
	if err != nil {
		t.Fatal(err)
	}
	if e := got.(*Error); e.RetryAfterMS != 0 || e.RetryAfter() != 0 {
		t.Fatalf("zero-hint frame decoded RetryAfterMS=%d", e.RetryAfterMS)
	}
	got, err = ReadMessage(&withHint)
	if err != nil {
		t.Fatal(err)
	}
	if e := got.(*Error); e.RetryAfterMS != 500 || e.RetryAfter() != 500*time.Millisecond {
		t.Fatalf("hinted frame decoded RetryAfterMS=%d RetryAfter=%v", e.RetryAfterMS, e.RetryAfter())
	}
}
