// Package wire defines sgbd's client/server protocol: a length-prefixed
// binary framing with a small fixed message set.
//
// Every frame is
//
//	[1 byte message type][4 bytes big-endian payload length][payload]
//
// The connection opens with a version handshake (Hello → Welcome or Error),
// after which the client drives a simple request/response conversation. The
// one deliberate asymmetry is Cancel: the client may send it while a Query is
// still streaming, and the server aborts the in-flight statement — which is
// why server sessions read frames concurrently with query execution.
//
// Result rows stream as typed RowBatch frames whose batch granularity is the
// session's engine batch size, so the wire layer reuses the executor's
// batched row representation instead of inventing its own. Values carry the
// engine's type tags; the encoding round-trips engine.Value exactly
// (including the NaN bit patterns the float encoding preserves).
//
// Protocol versioning: MaxVersion is a single monotonically increasing
// integer. A server accepts any Hello version in [MinVersion, MaxVersion] and
// echoes the accepted version in Welcome; it refuses anything else with
// CodeVersionMismatch, naming its own range in the error message. A client
// dialing an older server retries the handshake at the server's version.
// Additive changes (new message types, new Set keys) that old peers can
// safely ignore do not bump the version; changes to existing frame layouts
// do. Every negotiation site — the server's Hello check and error text, the
// client's opening dial — must reference MaxVersion rather than a literal, so
// a version bump cannot leave a straggler advertising the old ceiling.
//
// Version history:
//
//	1: initial server protocol (PR 4).
//	2: Query frames may carry a trailing trace ID for cross-boundary
//	   tracing; Introspect/IntrospectResult messages expose the server's
//	   process list and slow-query log. A v2 server still accepts v1
//	   clients (which simply never attach trace IDs), and a v2 client
//	   downgrades to v1 framing against a v1 server.
//	3: streaming subscriptions over materialized similarity-group views:
//	   Subscribe opens a delta stream with a WAL-seq resume token,
//	   Subscribed acknowledges it, and Delta frames push typed group
//	   changes (created / member joined / merged / dissolved). v1/v2
//	   clients are unaffected — they never send Subscribe — and a v3
//	   client still downgrades for plain queries against older servers.
//	4: graceful degradation: CodeReadOnly (store degraded, writes
//	   rejected) and CodeOverloaded (admission shed) failures, and Error
//	   frames may carry a trailing retry-after hint in milliseconds.
//	   Servers strip the hint when talking to pre-v4 clients, whose
//	   decoders reject trailing bytes; pre-v4 clients are otherwise
//	   unaffected and v4 clients still downgrade against older servers.
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
	"time"

	"sgb/internal/engine"
	"sgb/internal/obs"
)

// MaxVersion is the newest protocol version this package speaks, and the
// single source of truth every negotiation site must reference. See the
// package comment for the compatibility policy.
const MaxVersion = 4

// Version is the newest protocol version this package speaks.
//
// Deprecated: it is an alias for MaxVersion, kept so existing callers keep
// compiling; new code should spell MaxVersion.
const Version = MaxVersion

// MinVersion is the oldest protocol version a server still accepts.
const MinVersion = 1

// Magic opens every Hello payload, so a server can reject a stray HTTP or
// MySQL client with a protocol error instead of a confusing decode failure.
const Magic = "SGBW"

// MaxFrame caps a single frame's payload size. Row batches are chunked well
// below this by the sender; the bound exists so a corrupt or hostile length
// prefix cannot make a peer allocate gigabytes.
const MaxFrame = 16 << 20

// Message type bytes. Client-originated types have the high bit clear,
// server-originated types have it set.
const (
	TypeHello      byte = 0x01 // client: magic, protocol version
	TypeQuery      byte = 0x02 // client: one SQL statement
	TypeSet        byte = 0x03 // client: session setting name/value
	TypePing       byte = 0x04 // client: liveness probe
	TypeCancel     byte = 0x05 // client: abort the in-flight query
	TypeStats      byte = 0x06 // client: request the server metrics snapshot
	TypeClose      byte = 0x07 // client: graceful goodbye
	TypeIntrospect byte = 0x08 // client: request process list / slowlog (v2+)
	TypeSubscribe  byte = 0x09 // client: open a materialized-view delta stream (v3+)

	TypeWelcome          byte = 0x81 // server: handshake accepted
	TypeRowHeader        byte = 0x82 // server: result column names
	TypeRowBatch         byte = 0x83 // server: one batch of result rows
	TypeDone             byte = 0x84 // server: statement/settings op completed
	TypeError            byte = 0x85 // server: typed failure
	TypePong             byte = 0x86 // server: ping reply
	TypeStatsText        byte = 0x87 // server: Prometheus text metrics
	TypeIntrospectResult byte = 0x88 // server: introspection JSON (v2+)
	TypeSubscribed       byte = 0x89 // server: subscription accepted (v3+)
	TypeDelta            byte = 0x8A // server: one group delta (v3+)
)

// Delta kinds carried by the Delta message. The numeric values are shared
// with internal/stream's DeltaKind, so the wire byte is the stream kind.
const (
	// DeltaGroupCreated introduces a new group with its initial members.
	DeltaGroupCreated uint8 = 1
	// DeltaMemberJoined adds members to an existing group.
	DeltaMemberJoined uint8 = 2
	// DeltaGroupsMerged folds the Merged groups' members into Group (the
	// surviving, smallest-id group) and removes them.
	DeltaGroupsMerged uint8 = 3
	// DeltaGroupDissolved removes a group outright.
	DeltaGroupDissolved uint8 = 4
)

// Introspection targets carried by the Introspect message.
const (
	// IntrospectProcessList asks for the in-flight query list.
	IntrospectProcessList = "processlist"
	// IntrospectSlowLog asks for the slow-query log, newest first.
	IntrospectSlowLog = "slowlog"
)

// Error codes carried by the Error message.
const (
	// CodeInternal is an unclassified server-side failure.
	CodeInternal uint16 = 1
	// CodeQuery is a statement failure: parse error, unknown table, type
	// error — anything the engine rejects.
	CodeQuery uint16 = 2
	// CodeCanceled reports that the statement was aborted by a Cancel frame
	// (or the server shutting down mid-query).
	CodeCanceled uint16 = 3
	// CodeResourceLimit reports a typed engine.ResourceLimitError: the
	// statement exceeded the session's row or time budget.
	CodeResourceLimit uint16 = 4
	// CodeProtocol is a framing or message-sequence violation.
	CodeProtocol uint16 = 5
	// CodeTooManyConnections means the server is at its connection limit.
	CodeTooManyConnections uint16 = 6
	// CodeShuttingDown means the server is draining and takes no new work.
	CodeShuttingDown uint16 = 7
	// CodeUnknownSetting rejects a Set with an unrecognized name or an
	// unparseable value.
	CodeUnknownSetting uint16 = 8
	// CodeVersionMismatch rejects a Hello whose protocol version the server
	// does not speak.
	CodeVersionMismatch uint16 = 9
	// CodeReadOnly rejects a write because the store is degraded: a disk
	// fault latched the WAL, so reads keep serving but no statement can be
	// made durable until the background probe repairs the log. Retryable;
	// the Error usually carries a retry-after hint.
	CodeReadOnly uint16 = 10
	// CodeOverloaded sheds a statement under resource pressure — the
	// admission queue is full or the process memory budget is exhausted.
	// The statement was never executed, so retrying after the hint is safe.
	CodeOverloaded uint16 = 11
)

// Message is one protocol frame, decoded.
type Message interface {
	// wireType is the frame's type byte.
	wireType() byte
}

// Hello is the client's opening frame.
type Hello struct {
	// Version is the protocol version the client speaks.
	Version uint32
}

// Welcome accepts the handshake.
type Welcome struct {
	// Version is the protocol version the server speaks.
	Version uint32
	// Server is a human-readable server identification string.
	Server string
}

// Query submits one SQL statement.
//
// TraceID optionally correlates the statement with an end-to-end trace: 16
// lowercase hex digits, minted by the client (or left empty, in which case a
// v2 server mints one itself). The field rides as an optional trailing
// string on the v1 Query layout — a v1 peer that never writes it produces
// exactly the v1 frame, which is what keeps the two versions interoperable.
type Query struct {
	SQL     string
	TraceID string
}

// Set changes one session-scoped setting. Names and value syntax are defined
// by the server (see internal/server: sgb_algorithm, parallelism, batch_size,
// max_rows, max_time).
type Set struct {
	Name, Value string
}

// Ping probes liveness; the server answers Pong.
type Ping struct{}

// Pong answers Ping.
type Pong struct{}

// Cancel aborts the connection's in-flight query, if any. It is the only
// client frame legal while a query is streaming.
type Cancel struct{}

// Stats requests the server's metrics registry; answered by StatsText.
type Stats struct{}

// Introspect (v2+) requests one of the server's live-introspection surfaces
// — What is IntrospectProcessList or IntrospectSlowLog. It is part of the
// Stats family: answered out of band of queries with an IntrospectResult.
type Introspect struct {
	What string
}

// IntrospectResult answers Introspect with a JSON document: an array of
// obs.QueryInfo for the process list, an array of obs.SlowQuery for the
// slowlog.
type IntrospectResult struct {
	What string
	JSON string
}

// Subscribe (v3+) opens a delta stream over a materialized similarity-group
// view. Token is the resume position: the WAL sequence of the last delta the
// client has durably consumed, or 0 for "from the beginning". The server
// replays every retained delta with a sequence greater than Token before
// switching to live pushes; if Token predates its retention horizon it sends
// a full state snapshot instead (see Subscribed.Snapshot).
type Subscribe struct {
	View  string
	Token uint64
}

// Subscribed (v3+) accepts a Subscribe. Seq is the view's current position
// (the WAL sequence of the last commit folded into it). When Snapshot is
// true, the client's resume token was 0 or predated the server's delta
// retention, so the frames that follow are a full state snapshot (synthetic
// GroupCreated deltas stamped at Seq) and the client must discard any state
// it was holding; otherwise the stream resumes exactly after Token with no
// gaps or repeats.
type Subscribed struct {
	Seq      uint64
	Snapshot bool
}

// Delta (v3+) is one typed change to a materialized view's group state.
// Group ids are stable: a group is identified by its smallest member row id.
// Replay semantics, applied in stream order against a map of group id →
// member set: Created sets the group; Joined unions Members in; Merged moves
// every member of each Merged group into Group and deletes the sources;
// Dissolved deletes the group.
type Delta struct {
	View    string
	Seq     uint64
	Kind    uint8
	Group   int64
	Members []int64 // Created: initial members; Joined: the new members
	Merged  []int64 // GroupsMerged: ids of the absorbed groups
}

// StatsText carries the metrics registry in Prometheus text format.
type StatsText struct {
	Text string
}

// Close announces a graceful disconnect.
type Close struct{}

// RowHeader opens a streamed result: the output column names, in order.
// A statement with no result columns (DDL/DML) skips straight to Done.
type RowHeader struct {
	Columns []string
}

// RowBatch carries a batch of result rows. A result may span any number of
// RowBatch frames (including zero), terminated by Done.
type RowBatch struct {
	Rows []engine.Row
}

// Done terminates a successful statement (after zero or more RowBatch
// frames) and acknowledges Set.
type Done struct {
	// RowsAffected counts rows touched by DML.
	RowsAffected int64
	// RowCount is the total number of result rows streamed.
	RowCount int64
}

// Error terminates a failed request.
type Error struct {
	Code    uint16
	Message string
	// RetryAfterMS, when nonzero, hints how many milliseconds the client
	// should wait before retrying (CodeReadOnly: the degraded-probe
	// interval; CodeOverloaded: the shed backoff). Encoded as an optional
	// trailing field only when nonzero, and only to v4+ peers — older
	// decoders reject trailing bytes.
	RetryAfterMS uint32
}

// Error renders the server failure as a Go error string.
func (e *Error) Error() string {
	return fmt.Sprintf("server error (code %d): %s", e.Code, e.Message)
}

// RetryAfter converts the hint to a duration (0 = no hint).
func (e *Error) RetryAfter() time.Duration {
	return time.Duration(e.RetryAfterMS) * time.Millisecond
}

func (*Introspect) wireType() byte       { return TypeIntrospect }
func (*IntrospectResult) wireType() byte { return TypeIntrospectResult }
func (*Subscribe) wireType() byte        { return TypeSubscribe }
func (*Subscribed) wireType() byte       { return TypeSubscribed }
func (*Delta) wireType() byte            { return TypeDelta }

func (*Hello) wireType() byte     { return TypeHello }
func (*Welcome) wireType() byte   { return TypeWelcome }
func (*Query) wireType() byte     { return TypeQuery }
func (*Set) wireType() byte       { return TypeSet }
func (*Ping) wireType() byte      { return TypePing }
func (*Pong) wireType() byte      { return TypePong }
func (*Cancel) wireType() byte    { return TypeCancel }
func (*Stats) wireType() byte     { return TypeStats }
func (*StatsText) wireType() byte { return TypeStatsText }
func (*Close) wireType() byte     { return TypeClose }
func (*RowHeader) wireType() byte { return TypeRowHeader }
func (*RowBatch) wireType() byte  { return TypeRowBatch }
func (*Done) wireType() byte      { return TypeDone }
func (*Error) wireType() byte     { return TypeError }

// ErrFrameTooLarge is returned when a frame's length prefix exceeds
// MaxFrame.
var ErrFrameTooLarge = errors.New("wire: frame exceeds size limit")

// ErrBadTraceID reports a Query frame carrying a malformed trace ID (not 16
// lowercase hex digits). Decode errors wrap it, so peers can classify the
// failure with errors.Is.
var ErrBadTraceID = errors.New("wire: malformed trace id")

// errShort is the shared truncated-payload decode error.
var errShort = errors.New("wire: truncated payload")

// WriteMessage encodes m as one frame on w.
func WriteMessage(w io.Writer, m Message) error {
	payload, err := appendPayload(nil, m)
	if err != nil {
		return err
	}
	if len(payload) > MaxFrame {
		return ErrFrameTooLarge
	}
	hdr := make([]byte, 5, 5+len(payload))
	hdr[0] = m.wireType()
	binary.BigEndian.PutUint32(hdr[1:5], uint32(len(payload)))
	_, err = w.Write(append(hdr, payload...))
	return err
}

// ReadMessage decodes the next frame from r. It returns io.EOF only on a
// clean boundary (no partial frame read); a frame truncated mid-way surfaces
// as io.ErrUnexpectedEOF.
func ReadMessage(r io.Reader) (Message, error) {
	var hdr [5]byte
	if _, err := io.ReadFull(r, hdr[:1]); err != nil {
		return nil, err
	}
	if _, err := io.ReadFull(r, hdr[1:]); err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return nil, err
	}
	n := binary.BigEndian.Uint32(hdr[1:5])
	if n > MaxFrame {
		return nil, ErrFrameTooLarge
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return nil, err
	}
	return decodePayload(hdr[0], payload)
}

// ReadMessageTimed decodes the next frame and reports how long reading and
// decoding it took, measured from after the first header byte arrived — so
// idle time waiting for the client to speak is excluded and the duration is
// the wire-decode cost of the frame itself. The server uses it to attach a
// wire_decode span to query traces.
func ReadMessageTimed(r io.Reader) (Message, time.Duration, error) {
	var hdr [5]byte
	if _, err := io.ReadFull(r, hdr[:1]); err != nil {
		return nil, 0, err
	}
	start := time.Now()
	if _, err := io.ReadFull(r, hdr[1:]); err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return nil, time.Since(start), err
	}
	n := binary.BigEndian.Uint32(hdr[1:5])
	if n > MaxFrame {
		return nil, time.Since(start), ErrFrameTooLarge
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return nil, time.Since(start), err
	}
	m, err := decodePayload(hdr[0], payload)
	return m, time.Since(start), err
}

// appendPayload encodes m's payload (everything after the frame header).
func appendPayload(b []byte, m Message) ([]byte, error) {
	switch m := m.(type) {
	case *Hello:
		b = append(b, Magic...)
		b = appendUint32(b, m.Version)
	case *Welcome:
		b = appendUint32(b, m.Version)
		b = appendString(b, m.Server)
	case *Query:
		b = appendString(b, m.SQL)
		if m.TraceID != "" {
			if !obs.ValidTraceID(m.TraceID) {
				return nil, fmt.Errorf("%w: %q", ErrBadTraceID, m.TraceID)
			}
			// Optional v2 tail; omitted entirely when untraced so the frame
			// stays byte-identical to the v1 layout.
			b = appendString(b, m.TraceID)
		}
	case *Set:
		b = appendString(b, m.Name)
		b = appendString(b, m.Value)
	case *Ping, *Pong, *Cancel, *Stats, *Close:
		// no payload
	case *Introspect:
		b = appendString(b, m.What)
	case *IntrospectResult:
		b = appendString(b, m.What)
		b = appendString(b, m.JSON)
	case *Subscribe:
		b = appendString(b, m.View)
		b = appendUint64(b, m.Token)
	case *Subscribed:
		b = appendUint64(b, m.Seq)
		if m.Snapshot {
			b = append(b, 1)
		} else {
			b = append(b, 0)
		}
	case *Delta:
		b = appendString(b, m.View)
		b = appendUint64(b, m.Seq)
		b = append(b, m.Kind)
		b = appendUint64(b, uint64(m.Group))
		b = appendUint32(b, uint32(len(m.Members)))
		for _, id := range m.Members {
			b = appendUint64(b, uint64(id))
		}
		b = appendUint32(b, uint32(len(m.Merged)))
		for _, id := range m.Merged {
			b = appendUint64(b, uint64(id))
		}
	case *StatsText:
		b = appendString(b, m.Text)
	case *RowHeader:
		b = appendUint32(b, uint32(len(m.Columns)))
		for _, c := range m.Columns {
			b = appendString(b, c)
		}
	case *RowBatch:
		b = appendUint32(b, uint32(len(m.Rows)))
		for _, row := range m.Rows {
			b = appendUint32(b, uint32(len(row)))
			for _, v := range row {
				b = appendValue(b, v)
			}
		}
	case *Done:
		b = appendUint64(b, uint64(m.RowsAffected))
		b = appendUint64(b, uint64(m.RowCount))
	case *Error:
		b = append(b, byte(m.Code>>8), byte(m.Code))
		b = appendString(b, m.Message)
		// Optional trailing retry-after hint (v4); omitted when zero so the
		// common frame stays byte-identical to v3.
		if m.RetryAfterMS != 0 {
			b = appendUint32(b, m.RetryAfterMS)
		}
	default:
		return nil, fmt.Errorf("wire: cannot encode %T", m)
	}
	return b, nil
}

// decodePayload decodes one frame payload into its message.
func decodePayload(typ byte, b []byte) (Message, error) {
	d := &decoder{b: b}
	var m Message
	switch typ {
	case TypeHello:
		magic := d.bytes(4)
		v := d.uint32()
		if d.err == nil && string(magic) != Magic {
			return nil, fmt.Errorf("wire: bad magic %q", magic)
		}
		m = &Hello{Version: v}
	case TypeWelcome:
		m = &Welcome{Version: d.uint32(), Server: d.string()}
	case TypeQuery:
		q := &Query{SQL: d.string()}
		if d.err == nil && d.off < len(d.b) {
			q.TraceID = d.string()
			if d.err == nil && !obs.ValidTraceID(q.TraceID) {
				return nil, fmt.Errorf("%w: %q", ErrBadTraceID, q.TraceID)
			}
		}
		m = q
	case TypeSet:
		m = &Set{Name: d.string(), Value: d.string()}
	case TypePing:
		m = &Ping{}
	case TypePong:
		m = &Pong{}
	case TypeCancel:
		m = &Cancel{}
	case TypeStats:
		m = &Stats{}
	case TypeIntrospect:
		m = &Introspect{What: d.string()}
	case TypeIntrospectResult:
		m = &IntrospectResult{What: d.string(), JSON: d.string()}
	case TypeSubscribe:
		m = &Subscribe{View: d.string(), Token: d.uint64()}
	case TypeSubscribed:
		s := &Subscribed{Seq: d.uint64()}
		if f := d.bytes(1); d.err == nil {
			s.Snapshot = f[0] != 0
		}
		m = s
	case TypeDelta:
		dl := &Delta{View: d.string(), Seq: d.uint64()}
		if k := d.bytes(1); d.err == nil {
			dl.Kind = k[0]
		}
		dl.Group = int64(d.uint64())
		n := d.count()
		dl.Members = make([]int64, 0, n)
		for i := 0; i < n && d.err == nil; i++ {
			dl.Members = append(dl.Members, int64(d.uint64()))
		}
		n = d.count()
		dl.Merged = make([]int64, 0, n)
		for i := 0; i < n && d.err == nil; i++ {
			dl.Merged = append(dl.Merged, int64(d.uint64()))
		}
		m = dl
	case TypeStatsText:
		m = &StatsText{Text: d.string()}
	case TypeClose:
		m = &Close{}
	case TypeRowHeader:
		n := d.count()
		cols := make([]string, 0, n)
		for i := 0; i < n && d.err == nil; i++ {
			cols = append(cols, d.string())
		}
		m = &RowHeader{Columns: cols}
	case TypeRowBatch:
		n := d.count()
		rows := make([]engine.Row, 0, n)
		for i := 0; i < n && d.err == nil; i++ {
			w := d.count()
			row := make(engine.Row, 0, w)
			for j := 0; j < w && d.err == nil; j++ {
				row = append(row, d.value())
			}
			rows = append(rows, row)
		}
		m = &RowBatch{Rows: rows}
	case TypeDone:
		m = &Done{RowsAffected: int64(d.uint64()), RowCount: int64(d.uint64())}
	case TypeError:
		code := d.bytes(2)
		msg := d.string()
		var retryMS uint32
		// Optional trailing retry-after hint (v4 servers, nonzero only).
		if d.err == nil && d.off < len(d.b) {
			retryMS = d.uint32()
		}
		if d.err == nil {
			m = &Error{Code: uint16(code[0])<<8 | uint16(code[1]), Message: msg, RetryAfterMS: retryMS}
		}
	default:
		return nil, fmt.Errorf("wire: unknown message type 0x%02x", typ)
	}
	if d.err != nil {
		return nil, d.err
	}
	if len(d.b) != d.off {
		return nil, fmt.Errorf("wire: %d trailing bytes after message type 0x%02x", len(d.b)-d.off, typ)
	}
	return m, nil
}

// --- primitive encoding ---

func appendUint32(b []byte, v uint32) []byte {
	return append(b, byte(v>>24), byte(v>>16), byte(v>>8), byte(v))
}

func appendUint64(b []byte, v uint64) []byte {
	return append(b, byte(v>>56), byte(v>>48), byte(v>>40), byte(v>>32),
		byte(v>>24), byte(v>>16), byte(v>>8), byte(v))
}

func appendString(b []byte, s string) []byte {
	b = appendUint32(b, uint32(len(s)))
	return append(b, s...)
}

// appendValue encodes one typed engine value: a type tag byte followed by a
// fixed- or length-prefixed payload. Floats ship as raw IEEE bits, so every
// bit pattern (±0, NaN payloads) round-trips and the server's results stay
// bit-identical to embedded execution.
func appendValue(b []byte, v engine.Value) []byte {
	b = append(b, byte(v.T))
	switch v.T {
	case engine.TypeNull:
	case engine.TypeInt:
		b = appendUint64(b, uint64(v.I))
	case engine.TypeFloat:
		b = appendUint64(b, math.Float64bits(v.F))
	case engine.TypeString:
		b = appendString(b, v.S)
	case engine.TypeBool:
		if v.B {
			b = append(b, 1)
		} else {
			b = append(b, 0)
		}
	}
	return b
}

// decoder is a cursor over a frame payload; the first error sticks.
type decoder struct {
	b   []byte
	off int
	err error
}

func (d *decoder) bytes(n int) []byte {
	if d.err != nil {
		return nil
	}
	if len(d.b)-d.off < n {
		d.err = errShort
		return nil
	}
	out := d.b[d.off : d.off+n]
	d.off += n
	return out
}

func (d *decoder) uint32() uint32 {
	b := d.bytes(4)
	if d.err != nil {
		return 0
	}
	return binary.BigEndian.Uint32(b)
}

func (d *decoder) uint64() uint64 {
	b := d.bytes(8)
	if d.err != nil {
		return 0
	}
	return binary.BigEndian.Uint64(b)
}

// count reads a uint32 element count and sanity-bounds it against the bytes
// actually remaining, so a corrupt count cannot pre-allocate gigabytes.
func (d *decoder) count() int {
	n := d.uint32()
	if d.err == nil && int(n) > len(d.b)-d.off {
		d.err = errShort
		return 0
	}
	return int(n)
}

func (d *decoder) string() string {
	n := d.count()
	b := d.bytes(n)
	if d.err != nil {
		return ""
	}
	return string(b)
}

func (d *decoder) value() engine.Value {
	tb := d.bytes(1)
	if d.err != nil {
		return engine.Null
	}
	switch t := engine.Type(tb[0]); t {
	case engine.TypeNull:
		return engine.Null
	case engine.TypeInt:
		return engine.NewInt(int64(d.uint64()))
	case engine.TypeFloat:
		return engine.NewFloat(math.Float64frombits(d.uint64()))
	case engine.TypeString:
		return engine.NewString(d.string())
	case engine.TypeBool:
		b := d.bytes(1)
		if d.err != nil {
			return engine.Null
		}
		return engine.NewBool(b[0] != 0)
	default:
		d.err = fmt.Errorf("wire: unknown value type 0x%02x", tb[0])
		return engine.Null
	}
}
