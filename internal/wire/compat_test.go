package wire

import (
	"bytes"
	"errors"
	"reflect"
	"strings"
	"testing"
	"time"

	"sgb/internal/obs"
)

// encodeV1Query renders a Query frame exactly as a v1 peer would: SQL only,
// no trace-ID tail.
func encodeV1Query(sql string) []byte {
	payload := appendString(nil, sql)
	hdr := []byte{TypeQuery, 0, 0, 0, 0}
	hdr[1] = byte(len(payload) >> 24)
	hdr[2] = byte(len(payload) >> 16)
	hdr[3] = byte(len(payload) >> 8)
	hdr[4] = byte(len(payload))
	return append(hdr, payload...)
}

// TestQueryV1FrameCompat pins the two directions of the v1/v2 Query
// compatibility story: a v1 frame (no trace tail) decodes on a v2 peer with
// an empty TraceID, and a v2 untraced Query encodes byte-identically to the
// v1 layout — so a v1 server decodes it without trailing-bytes errors.
func TestQueryV1FrameCompat(t *testing.T) {
	const sql = "SELECT count(*) FROM t GROUP BY x DISTANCE-TO-ANY L2 WITHIN 0.5"

	v1 := encodeV1Query(sql)
	m, err := ReadMessage(bytes.NewReader(v1))
	if err != nil {
		t.Fatalf("v2 decode of v1 frame: %v", err)
	}
	q, ok := m.(*Query)
	if !ok || q.SQL != sql || q.TraceID != "" {
		t.Fatalf("v1 frame decoded as %#v", m)
	}

	var buf bytes.Buffer
	if err := WriteMessage(&buf, &Query{SQL: sql}); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), v1) {
		t.Fatalf("untraced v2 Query not byte-identical to v1 frame:\n v2: %x\n v1: %x", buf.Bytes(), v1)
	}
}

func TestQueryTraceIDRoundTrip(t *testing.T) {
	id := obs.NewTraceID()
	want := &Query{SQL: "SELECT 1", TraceID: id}
	var buf bytes.Buffer
	if err := WriteMessage(&buf, want); err != nil {
		t.Fatal(err)
	}
	got, err := ReadMessage(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("got %#v want %#v", got, want)
	}
}

// TestQueryMalformedTraceID pins the typed rejection of bad trace IDs on
// both the encode and decode sides.
func TestQueryMalformedTraceID(t *testing.T) {
	bad := []string{"short", "0123456789ABCDEF", "0123456789abcdefff", "xyzw456789abcdef"}
	for _, id := range bad {
		var buf bytes.Buffer
		if err := WriteMessage(&buf, &Query{SQL: "SELECT 1", TraceID: id}); !errors.Is(err, ErrBadTraceID) {
			t.Errorf("encode %q: got %v, want ErrBadTraceID", id, err)
		}
	}
	// Hand-build frames with a malformed trailing trace ID (an honest encoder
	// refuses to produce them, so splice the tail in by hand).
	for _, id := range append(bad, "") {
		payload := appendString(nil, "SELECT 1")
		payload = appendString(payload, id)
		frame := []byte{TypeQuery, 0, 0, 0, byte(len(payload))}
		frame = append(frame, payload...)
		_, err := ReadMessage(bytes.NewReader(frame))
		if !errors.Is(err, ErrBadTraceID) {
			t.Errorf("decode with trace id %q: got %v, want ErrBadTraceID", id, err)
		}
	}
}

func TestIntrospectRoundTrip(t *testing.T) {
	msgs := []Message{
		&Introspect{What: IntrospectProcessList},
		&Introspect{What: IntrospectSlowLog},
		&IntrospectResult{What: IntrospectProcessList, JSON: `[{"trace_id":"00aabbccddeeff11","state":"executing"}]`},
		&IntrospectResult{What: IntrospectSlowLog, JSON: `[]`},
	}
	for _, want := range msgs {
		var buf bytes.Buffer
		if err := WriteMessage(&buf, want); err != nil {
			t.Fatalf("write %T: %v", want, err)
		}
		got, err := ReadMessage(&buf)
		if err != nil {
			t.Fatalf("read %T: %v", want, err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("round trip %T: got %#v want %#v", want, got, want)
		}
	}
}

func TestReadMessageTimed(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteMessage(&buf, &Query{SQL: "SELECT 1", TraceID: obs.NewTraceID()}); err != nil {
		t.Fatal(err)
	}
	m, d, err := ReadMessageTimed(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := m.(*Query); !ok {
		t.Fatalf("decoded %T", m)
	}
	if d < 0 || d > time.Second {
		t.Fatalf("implausible decode duration %v", d)
	}
	// Truncated payload still reports a duration alongside the error.
	var buf2 bytes.Buffer
	if err := WriteMessage(&buf2, &Query{SQL: "SELECT 1"}); err != nil {
		t.Fatal(err)
	}
	b := buf2.Bytes()
	if _, _, err := ReadMessageTimed(bytes.NewReader(b[:len(b)-2])); err == nil ||
		!strings.Contains(err.Error(), "unexpected EOF") {
		t.Fatalf("truncated timed read: %v", err)
	}
}
