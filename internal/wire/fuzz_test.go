package wire

import (
	"bytes"
	"encoding/binary"
	"math"
	"testing"

	"sgb/internal/engine"
)

// FuzzReadMessage hammers the frame decoder with arbitrary bytes. The decoder
// guards the server's front door — every byte a client sends flows through
// it — so it must never panic, never over-allocate from a corrupt length
// prefix, and decode successfully only into messages that re-encode
// canonically.
//
// The seed corpus covers a valid encoding of every message type plus the
// corrupted-frame shapes TestMalformedFrames checks by hand (truncations,
// oversized lengths, unknown types, bad magic, trailing garbage).
func FuzzReadMessage(f *testing.F) {
	encode := func(m Message) []byte {
		var buf bytes.Buffer
		if err := WriteMessage(&buf, m); err != nil {
			f.Fatal(err)
		}
		return buf.Bytes()
	}

	// One valid frame per message type.
	valid := []Message{
		&Hello{Version: Version},
		&Welcome{Version: Version, Server: "sgbd/test"},
		&Query{SQL: "SELECT count(*) FROM t GROUP BY x DISTANCE-TO-ANY L2 WITHIN 0.5"},
		&Query{SQL: "SELECT 1", TraceID: "00aabbccddeeff11"},
		&Introspect{What: IntrospectProcessList},
		&IntrospectResult{What: IntrospectSlowLog, JSON: `[{"trace_id":"00aabbccddeeff11"}]`},
		&Set{Name: "batch_size", Value: "1024"},
		&Ping{},
		&Pong{},
		&Cancel{},
		&Stats{},
		&StatsText{Text: "sgb_queries_total 42\n"},
		&Close{},
		&RowHeader{Columns: []string{"id", "lat", "lon"}},
		&RowBatch{Rows: []engine.Row{
			{engine.NewInt(1), engine.NewFloat(0.5), engine.NewString("a")},
			{engine.Null, engine.NewBool(true), engine.NewFloat(math.NaN())},
		}},
		&Done{RowsAffected: 3, RowCount: 9},
		&Error{Code: CodeQuery, Message: "no such table"},
	}
	for _, m := range valid {
		f.Add(encode(m))
	}

	// Corrupted-frame seeds mirroring TestMalformedFrames.
	f.Add([]byte{TypePing, 0, 0})              // truncated header
	f.Add(encode(&Query{SQL: "SELECT 1"})[:8]) // truncated payload
	oversized := []byte{TypeQuery, 0, 0, 0, 0}
	binary.BigEndian.PutUint32(oversized[1:], MaxFrame+1)
	f.Add(oversized)                // oversized length prefix
	f.Add([]byte{0x7f, 0, 0, 0, 0}) // unknown message type
	badMagic := encode(&Hello{Version: Version})
	copy(badMagic[5:], "HTTP")
	f.Add(badMagic) // bad magic
	trailing := encode(&Pong{})
	trailing[4] = 7                       // lie about the payload length, then supply garbage
	f.Add(append(trailing, "garbage"...)) // trailing bytes inside the frame
	badCount := encode(&RowHeader{Columns: []string{"a"}})
	binary.BigEndian.PutUint32(badCount[5:], 1<<30)
	f.Add(badCount) // corrupt element count
	badValue := encode(&RowBatch{Rows: []engine.Row{{engine.NewInt(1)}}})
	badValue[13] = 0xee
	f.Add(badValue) // unknown value type tag
	badTrace := encode(&Query{SQL: "SELECT 1"})
	badTrace = append(badTrace, 0, 0, 0, 3, 'x', 'y', 'z')
	binary.BigEndian.PutUint32(badTrace[1:5], uint32(len(badTrace)-5))
	f.Add(badTrace) // malformed trailing trace ID

	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := ReadMessage(bytes.NewReader(data))
		if err != nil {
			return // rejected input: the only requirement is not panicking
		}
		// A decoded message must re-encode, and its encoding must be a fixed
		// point: decode(encode(m)) == m, compared byte-wise so float NaN
		// payloads (which break reflect.DeepEqual) still round-trip exactly.
		first := encode(m)
		m2, err := ReadMessage(bytes.NewReader(first))
		if err != nil {
			t.Fatalf("re-decoding own encoding of %T failed: %v\ninput: %x", m, err, data)
		}
		second := encode(m2)
		if !bytes.Equal(first, second) {
			t.Fatalf("encoding not canonical for %T:\n first: %x\nsecond: %x", m, first, second)
		}
	})
}
