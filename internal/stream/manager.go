package stream

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"sgb/internal/engine"
	"sgb/internal/obs"
)

// DefaultRingCap bounds the per-view delta ring: resume tokens older than the
// ring's floor fall back to a snapshot rebase instead of delta replay.
const DefaultRingCap = 4096

// defaultSubBuf is the subscriber channel depth when Subscribe is given 0.
const defaultSubBuf = 256

// Manager owns every materialized view's live state. It implements the
// store's CommitObserver seam: Bootstrap primes it from the recovered
// database image, and Commit feeds it each durable statement (replayed or
// live) so view state, the delta ring, and subscriber streams advance in
// lock-step with the WAL.
//
// Commit runs on the engine's write path (statement lock held), so all view
// maintenance is synchronous with the commit: a subscriber can never observe
// a delta for a write that was not acknowledged, and vice versa only through
// the bounded channel buffer. Maintenance errors never fail the write — the
// view is marked broken and surfaced via Views/debug instead.
type Manager struct {
	mu      sync.Mutex
	db      *engine.DB
	ringCap int
	views   map[string]*view
	// seq numbers commits in standalone (no-WAL) mode, where AttachEngine
	// hooks the engine directly and there is no log sequence to borrow.
	seq uint64
}

// NewManager returns an empty manager with the default ring capacity.
func NewManager() *Manager {
	return &Manager{ringCap: DefaultRingCap, views: make(map[string]*view)}
}

// SetRingCap overrides the per-view delta ring capacity (before wiring).
func (m *Manager) SetRingCap(n int) {
	if n > 0 {
		m.ringCap = n
	}
}

// Bootstrap primes the manager from db's current catalog and contents: every
// materialized view gets a live grouper fed the full base table, silently (no
// deltas — this state predates any subscriber). seq is the WAL sequence the
// image covers; deltas from earlier statements are unrecoverable, so the ring
// floor starts there and older resume tokens rebase onto snapshots.
func (m *Manager) Bootstrap(db *engine.DB, seq uint64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.db = db
	m.seq = seq
	for _, mv := range db.Catalog().MatViews() {
		m.bootstrapView(mv, seq)
	}
	m.metrics().Gauge("stream_views").Set(float64(len(m.views)))
}

// bootstrapView registers mv and feeds it the base table without emitting.
func (m *Manager) bootstrapView(mv *engine.MatView, seq uint64) {
	v, err := newView(mv.Name, mv.Shape, m.ringCap)
	if err == nil {
		_, err = v.applyAppend(m.db)
	}
	if err != nil {
		v.err = err
		m.metrics().Counter("stream_view_errors_total").Inc()
	}
	horizon := PackSeq(seq+1, 0) - 1
	v.floor, v.lastSeq = horizon, horizon
	m.views[strings.ToLower(mv.Name)] = v
}

// AttachEngine wires the manager to a non-durable engine: it bootstraps from
// the current contents and installs the engine commit hook, numbering
// statements with a private counter in place of WAL sequences. Durable
// deployments use the store's Observer seam instead; the two are mutually
// exclusive.
func (m *Manager) AttachEngine(db *engine.DB) {
	m.Bootstrap(db, 0)
	db.SetCommitHook(func(stmt engine.Statement, _ string, _ *obs.Trace) error {
		m.mu.Lock()
		m.seq++
		seq := m.seq
		m.mu.Unlock()
		m.Commit(stmt, seq)
		return nil
	})
}

// Commit observes one committed statement: registration DDL updates the view
// set, appends feed groupers incrementally, and mutating statements trigger a
// rebuild-and-diff. It is infallible by contract; see Manager.
func (m *Manager) Commit(stmt engine.Statement, seq uint64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.db == nil {
		return
	}
	switch st := stmt.(type) {
	case *engine.CreateMaterializedViewStmt:
		if mv, ok := m.db.Catalog().MatView(st.Name); ok {
			m.bootstrapView(mv, seq)
			m.metrics().Gauge("stream_views").Set(float64(len(m.views)))
		}
	case *engine.DropMaterializedViewStmt:
		key := strings.ToLower(st.Name)
		if v, ok := m.views[key]; ok {
			m.dropViewLocked(key, v)
			m.metrics().Gauge("stream_views").Set(float64(len(m.views)))
		}
	case *engine.InsertStmt:
		m.applyToViews(st.Table, seq, false)
	case *engine.CopyStmt:
		m.applyToViews(st.Table, seq, false)
	case *engine.UpdateStmt:
		m.applyToViews(st.Table, seq, true)
	case *engine.DeleteStmt:
		m.applyToViews(st.Table, seq, true)
	}
}

// applyToViews advances every view over table: incremental append feed, or a
// full rebuild-and-diff for mutating statements.
func (m *Manager) applyToViews(table string, seq uint64, rebuild bool) {
	reg := m.metrics()
	for _, v := range m.views {
		if v.err != nil || !strings.EqualFold(v.shape.Table, table) {
			continue
		}
		start := time.Now()
		var deltas []Delta
		var err error
		if rebuild {
			deltas, err = v.applyRebuild(m.db)
			reg.Counter("stream_rebuilds_total").Inc()
		} else {
			deltas, err = v.applyAppend(m.db)
		}
		if err != nil {
			// The view can no longer mirror the table faithfully; freeze it
			// and cut its subscribers rather than stream wrong state. The
			// write itself already committed and is not affected.
			v.err = err
			for sub := range v.subs {
				sub.drop()
			}
			reg.Counter("stream_view_errors_total").Inc()
			continue
		}
		m.publish(v, seq, deltas)
		v.noteApply(len(deltas), time.Now())
		reg.Counter("stream_deltas_total").Add(int64(len(deltas)))
		reg.Histogram("stream_apply_seconds", obs.DefBuckets).Observe(time.Since(start).Seconds())
	}
}

// publish stamps deltas with their composite sequence, appends them to the
// ring (evicting the oldest past capacity), and fans them out to subscribers.
// A subscriber whose buffer is full is lagging: it is dropped, and the server
// side re-attaches it from its last delivered token (delta replay from the
// ring), which is cheaper than blocking the commit path.
func (m *Manager) publish(v *view, walSeq uint64, deltas []Delta) {
	for i := range deltas {
		deltas[i].View = v.name
		deltas[i].Seq = PackSeq(walSeq, i)
	}
	if len(deltas) == 0 {
		// Even silent statements advance the view's position so resume
		// tokens taken after them stay ahead of the floor.
		v.lastSeq = PackSeq(walSeq+1, 0) - 1
		return
	}
	var memDelta int64
	for _, d := range deltas {
		if len(v.ring) >= v.ringCap {
			v.floor = v.ring[0].Seq
			memDelta -= deltaBytes(v.ring[0])
			v.ring = append(v.ring[:0], v.ring[1:]...)
		}
		v.ring = append(v.ring, d)
		memDelta += deltaBytes(d)
		v.lastSeq = d.Seq
		for sub := range v.subs {
			select {
			case sub.C <- d:
			default:
				sub.drop()
			}
		}
	}
	v.ringBytes += memDelta
	if m.db != nil {
		// Background reservation with the engine memory governor: ring
		// retention counts toward the process footprint but never fails a
		// commit.
		m.db.ReserveMemory(memDelta)
	}
}

// deltaBytes estimates one ring entry's footprint for memory accounting.
func deltaBytes(d Delta) int64 {
	return 96 + 8*int64(len(d.Members)+len(d.Merged))
}

// dropViewLocked removes a view, cutting subscribers and returning its ring
// reservation to the memory governor. Caller holds m.mu.
func (m *Manager) dropViewLocked(key string, v *view) {
	for sub := range v.subs {
		sub.drop()
	}
	delete(m.views, key)
	if m.db != nil && v.ringBytes != 0 {
		m.db.ReserveMemory(-v.ringBytes)
		v.ringBytes = 0
	}
}

// Resync rebuilds every view against the engine's current contents and
// publishes the resulting diffs at seq. The store calls it after promoting
// out of the degraded (read-only) state: statements that applied in memory
// but failed durability never reached Commit, so view state may trail the
// base tables it mirrors.
func (m *Manager) Resync(db *engine.DB, seq uint64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.db == nil {
		m.db = db
	}
	reg := m.metrics()
	for _, v := range m.views {
		if v.err != nil {
			continue
		}
		deltas, err := v.applyRebuild(m.db)
		if err != nil {
			v.err = err
			for sub := range v.subs {
				sub.drop()
			}
			reg.Counter("stream_view_errors_total").Inc()
			continue
		}
		m.publish(v, seq, deltas)
		v.noteApply(len(deltas), time.Now())
		reg.Counter("stream_rebuilds_total").Inc()
		reg.Counter("stream_deltas_total").Add(int64(len(deltas)))
	}
}

// metrics returns the engine's registry (or a throwaway before Bootstrap).
func (m *Manager) metrics() *obs.Registry {
	if m.db != nil {
		return m.db.Metrics()
	}
	return obs.NewRegistry()
}

// Subscription is one attached delta consumer. Deltas arrive on C strictly in
// Seq order; C closes when the subscriber lags past its buffer, the view
// breaks or is dropped, or Close is called. After a close the consumer
// re-attaches with its last consumed Seq as the token.
type Subscription struct {
	View string
	C    chan Delta

	m      *Manager
	v      *view
	closed bool
}

// drop detaches and closes under the manager lock.
func (s *Subscription) drop() {
	if s.closed {
		return
	}
	s.closed = true
	delete(s.v.subs, s)
	close(s.C)
}

// Close detaches the subscription; safe to call once the consumer is done.
func (s *Subscription) Close() {
	s.m.mu.Lock()
	defer s.m.mu.Unlock()
	s.drop()
}

// Attach is the result of Subscribe: the live subscription plus the backlog
// the consumer must apply before reading from Sub.C. When Snapshot is false,
// Backlog replays the deltas after the presented token. When Snapshot is
// true, the token predates ring retention: the consumer discards its local
// state and Backlog carries one GroupCreated per current group (a full state
// image), all stamped Seq — its new baseline token.
type Attach struct {
	Sub      *Subscription
	Backlog  []Delta
	Seq      uint64
	Snapshot bool
}

// Subscribe attaches a consumer to the named view, resuming after token. buf
// is the live-channel depth (0 = default). Registration and backlog capture
// are atomic under the manager lock, so the backlog plus the channel contain
// every delta after the token exactly once.
func (m *Manager) Subscribe(name string, token uint64, buf int) (*Attach, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	v, ok := m.views[strings.ToLower(name)]
	if !ok {
		return nil, fmt.Errorf("stream: unknown materialized view %q", name)
	}
	if v.err != nil {
		return nil, fmt.Errorf("stream: view %s is broken: %v", name, v.err)
	}
	if buf <= 0 {
		buf = defaultSubBuf
	}
	sub := &Subscription{View: v.name, C: make(chan Delta, buf), m: m, v: v}
	at := &Attach{Sub: sub}
	if token >= v.floor {
		at.Seq = token
		for _, d := range v.ring {
			if d.Seq > token {
				at.Backlog = append(at.Backlog, d)
			}
		}
	} else {
		at.Snapshot = true
		at.Seq = v.lastSeq
		gids := make([]int64, 0, len(v.state))
		for g := range v.state {
			gids = append(gids, g)
		}
		sort.Slice(gids, func(i, j int) bool { return gids[i] < gids[j] })
		for _, g := range gids {
			at.Backlog = append(at.Backlog, Delta{
				View:    v.name,
				Seq:     v.lastSeq,
				Kind:    GroupCreated,
				Group:   g,
				Members: append([]int64(nil), v.state[g]...),
			})
		}
	}
	v.subs[sub] = struct{}{}
	m.metrics().Gauge("stream_subscribers").Set(float64(m.subscriberCount()))
	return at, nil
}

// subscriberCount totals attached subscriptions across views (lock held).
func (m *Manager) subscriberCount() int {
	n := 0
	for _, v := range m.views {
		n += len(v.subs)
	}
	return n
}

// ViewStatus is the introspection record /debug/views serves per view.
type ViewStatus struct {
	Name             string  `json:"name"`
	Table            string  `json:"table"`
	Mode             string  `json:"mode"`
	Metric           string  `json:"metric"`
	Eps              float64 `json:"eps"`
	Groups           int     `json:"groups"`
	Members          int     `json:"members"`
	AppliedRows      int     `json:"applied_rows"`
	LastSeq          uint64  `json:"last_seq"`
	LastWALSeq       uint64  `json:"last_wal_seq"`
	DeltasTotal      uint64  `json:"deltas_total"`
	DeltaRatePerSec  float64 `json:"delta_rate_per_sec"`
	StalenessSeconds float64 `json:"staleness_seconds"`
	Rebuilds         uint64  `json:"rebuilds"`
	Subscribers      int     `json:"subscribers"`
	RingLen          int     `json:"ring_len"`
	Error            string  `json:"error,omitempty"`
}

// Views reports every view's live status, sorted by name.
func (m *Manager) Views() []ViewStatus {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]ViewStatus, 0, len(m.views))
	now := time.Now()
	for _, v := range m.views {
		members := 0
		for _, ms := range v.state {
			members += len(ms)
		}
		mode := "all"
		if v.mode == engine.SGBAnyMode {
			mode = "any"
		}
		st := ViewStatus{
			Name:            v.name,
			Table:           v.shape.Table,
			Mode:            mode,
			Metric:          v.shape.Spec.Metric.String(),
			Eps:             v.shape.Spec.Eps,
			Groups:          len(v.state),
			Members:         members,
			AppliedRows:     v.applied,
			LastSeq:         v.lastSeq,
			LastWALSeq:      StmtSeq(v.lastSeq),
			DeltasTotal:     v.deltas,
			DeltaRatePerSec: v.rateEWMA,
			Rebuilds:        v.rebuilds,
			Subscribers:     len(v.subs),
			RingLen:         len(v.ring),
		}
		if v.lastApplyNS != 0 {
			st.StalenessSeconds = now.Sub(time.Unix(0, v.lastApplyNS)).Seconds()
		}
		if v.err != nil {
			st.Error = v.err.Error()
		}
		out = append(out, st)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// State returns a deep copy of a view's current group state (tests and the
// snapshot path of reconnects).
func (m *Manager) State(name string) (map[int64][]int64, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	v, ok := m.views[strings.ToLower(name)]
	if !ok {
		return nil, fmt.Errorf("stream: unknown materialized view %q", name)
	}
	if v.err != nil {
		return nil, fmt.Errorf("stream: view %s is broken: %v", name, v.err)
	}
	out := make(map[int64][]int64, len(v.state))
	for g, ms := range v.state {
		out[g] = append([]int64(nil), ms...)
	}
	return out, nil
}
