package stream

import (
	"math"
	"sort"
	"time"

	"sgb/internal/core"
	"sgb/internal/engine"
	"sgb/internal/geom"
)

// view is the manager's live state for one materialized view: the long-lived
// grouper the committed row stream feeds, the current group state, the delta
// ring, and the attached subscribers. All access is serialized by the
// manager's mutex.
type view struct {
	name  string
	shape *engine.MatViewShape
	opt   core.Options
	mode  engine.SGBMode

	// Exactly one grouper is live, matching mode. The grouper is the
	// incremental computation itself: it has consumed rows [0, applied) of
	// the base table in row order, so its state equals a from-scratch run
	// over that prefix.
	anyG    *core.AnyGrouper
	allG    *core.AllGrouper
	applied int

	// state is the materialized grouping: group id (smallest member row id)
	// → ascending member row ids. groupOf inverts it for the SGB-Any fast
	// path, whose per-insert delta derivation never scans the whole state.
	state   map[int64][]int64
	groupOf map[int64]int64

	// lastSeq is the Seq of the newest emitted delta; floor bounds ring
	// retention (deltas with Seq <= floor are gone — tokens below it rebase
	// onto a snapshot). ring holds the most recent deltas, oldest first.
	lastSeq uint64
	floor   uint64
	ring    []Delta
	ringCap int
	// ringBytes is the ring's estimated footprint, reserved with the engine
	// memory governor (background, non-failing) so admission decisions see
	// matview retention as real memory.
	ringBytes int64

	subs map[*Subscription]struct{}

	// err marks the view broken (e.g. a NULL grouping value): maintenance
	// stops, Subscribe refuses, and /debug/views surfaces the message.
	err error

	// Telemetry: total deltas emitted, full rebuilds, wall time of the last
	// applied commit, and an exponentially-decayed delta rate (60s time
	// constant) — the per-view delta-rate/staleness numbers /debug/views
	// reports.
	deltas      uint64
	rebuilds    uint64
	lastApplyNS int64
	rateEWMA    float64
	rateNS      int64

	ptBuf geom.Point
}

// newView builds the live state for shape, with an empty grouper.
func newView(name string, shape *engine.MatViewShape, ringCap int) (*view, error) {
	v := &view{
		name:    name,
		shape:   shape,
		mode:    shape.Spec.Mode,
		ringCap: ringCap,
		state:   make(map[int64][]int64),
		groupOf: make(map[int64]int64),
		subs:    make(map[*Subscription]struct{}),
	}
	v.opt = core.Options{
		Metric:    shape.Spec.Metric,
		Eps:       shape.Spec.Eps,
		Overlap:   shape.Spec.Overlap,
		Algorithm: core.IndexBounds,
	}
	return v, v.resetGrouper()
}

// resetGrouper replaces the grouper with a fresh one (view creation and full
// rebuilds). The group state maps are left to the caller.
func (v *view) resetGrouper() error {
	v.applied = 0
	switch v.mode {
	case engine.SGBAnyMode:
		g, err := core.NewAnyGrouper(v.opt)
		if err != nil {
			return err
		}
		v.anyG, v.allG = g, nil
	default:
		g, err := core.NewAllGrouper(v.opt)
		if err != nil {
			return err
		}
		v.allG, v.anyG = g, nil
	}
	return nil
}

// applyAppend feeds base-table rows [applied, len) into the live grouper and
// returns the resulting deltas, unstamped (the manager assigns Seq). Inserts
// never touch existing rows, so the grouper simply continues its stream.
func (v *view) applyAppend(db *engine.DB) ([]Delta, error) {
	var out []Delta
	grew := false
	n, err := db.ScanFloats(v.shape.Table, v.shape.ColIdx, v.applied, func(row int, coords []float64) error {
		grew = true
		if v.mode == engine.SGBAnyMode {
			ds, err := v.addAny(coords)
			out = append(out, ds...)
			return err
		}
		// AllGrouper retains the point slice; coords is a reused buffer.
		_, err := v.allG.Add(append(geom.Point(nil), coords...))
		return err
	})
	if err != nil {
		return nil, err
	}
	v.applied = n
	if v.mode != engine.SGBAnyMode && grew {
		newState, err := v.allState()
		if err != nil {
			return nil, err
		}
		out = append(out, diffGroups(v.state, newState)...)
		v.state = newState
	}
	return out, nil
}

// addAny feeds one point to the SGB-Any grouper and derives the deltas
// directly from the merge links — O(probe) work, no state-wide scan. The
// surviving group id of a merge is the minimum of the linked group ids, which
// is also the minimum member overall (each group id is its smallest member
// and the new row id is larger than all of them), so ids stay content-stable.
func (v *view) addAny(coords []float64) ([]Delta, error) {
	v.ptBuf = append(v.ptBuf[:0], coords...)
	id64, links, err := v.anyG.AddLinked(v.ptBuf)
	if err != nil {
		return nil, err
	}
	id := int64(id64)
	if len(links) == 0 {
		v.state[id] = []int64{id}
		v.groupOf[id] = id
		return []Delta{{View: v.name, Kind: GroupCreated, Group: id, Members: []int64{id}}}, nil
	}
	// Distinct prior groups the new point connected, ascending.
	gids := make([]int64, 0, len(links))
	for _, l := range links {
		g := v.groupOf[int64(l)]
		dup := false
		for _, seen := range gids {
			if seen == g {
				dup = true
				break
			}
		}
		if !dup {
			gids = append(gids, g)
		}
	}
	sort.Slice(gids, func(i, j int) bool { return gids[i] < gids[j] })
	survivor := gids[0]
	var out []Delta
	if len(gids) > 1 {
		merged := append([]int64(nil), gids[1:]...)
		acc := v.state[survivor]
		for _, g := range merged {
			for _, m := range v.state[g] {
				v.groupOf[m] = survivor
			}
			acc = mergeSorted(acc, v.state[g])
			delete(v.state, g)
		}
		v.state[survivor] = acc
		out = append(out, Delta{View: v.name, Kind: GroupsMerged, Group: survivor, Merged: merged})
	}
	v.state[survivor] = append(v.state[survivor], id) // id is the largest: stays sorted
	v.groupOf[id] = survivor
	out = append(out, Delta{View: v.name, Kind: MemberJoined, Group: survivor, Members: []int64{id}})
	return out, nil
}

// applyRebuild recomputes the grouping from scratch — the fallback for
// statements that can mutate or remove existing rows (UPDATE, DELETE) — and
// emits the difference against the previous state as ordinary deltas, so
// subscribers never need a special rebuild message.
func (v *view) applyRebuild(db *engine.DB) ([]Delta, error) {
	if err := v.resetGrouper(); err != nil {
		return nil, err
	}
	n, err := db.ScanFloats(v.shape.Table, v.shape.ColIdx, 0, func(row int, coords []float64) error {
		if v.mode == engine.SGBAnyMode {
			v.ptBuf = append(v.ptBuf[:0], coords...)
			_, err := v.anyG.Add(v.ptBuf)
			return err
		}
		_, err := v.allG.Add(append(geom.Point(nil), coords...))
		return err
	})
	if err != nil {
		return nil, err
	}
	v.applied = n
	v.rebuilds++
	newState, err := v.currentState()
	if err != nil {
		return nil, err
	}
	out := diffGroups(v.state, newState)
	v.state = newState
	v.rebuildGroupOf()
	return out, nil
}

// currentState materializes the live grouper's grouping as a state map.
func (v *view) currentState() (map[int64][]int64, error) {
	if v.mode == engine.SGBAnyMode {
		groups, err := v.anyG.Snapshot()
		if err != nil {
			return nil, err
		}
		return stateFromGroups(groups), nil
	}
	return v.allState()
}

// allState snapshots the SGB-All grouper into a state map.
func (v *view) allState() (map[int64][]int64, error) {
	res, err := v.allG.Snapshot()
	if err != nil {
		return nil, err
	}
	return stateFromGroups(res.Groups), nil
}

// rebuildGroupOf re-derives the member→group index from state (SGB-Any).
func (v *view) rebuildGroupOf() {
	if v.mode != engine.SGBAnyMode {
		return
	}
	v.groupOf = make(map[int64]int64, len(v.groupOf))
	for g, members := range v.state {
		for _, m := range members {
			v.groupOf[m] = g
		}
	}
}

// stateFromGroups converts core groups (sorted members, group id = smallest
// member) into the state-map representation.
func stateFromGroups(groups []core.Group) map[int64][]int64 {
	state := make(map[int64][]int64, len(groups))
	for _, g := range groups {
		ids := make([]int64, len(g.IDs))
		for i, id := range g.IDs {
			ids[i] = int64(id)
		}
		state[ids[0]] = ids
	}
	return state
}

// diffGroups computes the delta sequence that transforms old into new under
// the Apply replay semantics. For each old group, its target is the new group
// containing every one of its members (groups only grow into their target;
// any shrink or split dissolves the old group). Dissolutions are emitted
// first so a reused id is deleted before it is re-created; new groups are
// then visited in ascending id order, emitting Created (no sources), Joined
// (grew in place), or Merged+Joined (absorbed other groups, plus any fresh
// members).
func diffGroups(old, new map[int64][]int64) []Delta {
	var out []Delta
	// Old group id → target new group id; sources: new group id → old ids.
	// The common case — an insert that only grows groups in place — resolves
	// every old group through the same-id fast path; the member index that
	// finds absorbing groups is built lazily, only on the statements that
	// actually restructure (merges, overlap removals, rebuilds).
	sources := make(map[int64][]int64)
	var dissolved []int64
	var memberIdx map[int64]int64
	lookup := func(m int64) (int64, bool) {
		if memberIdx == nil {
			size := 0
			for _, nm := range new {
				size += len(nm)
			}
			memberIdx = make(map[int64]int64, size)
			for ng, nm := range new {
				for _, x := range nm {
					memberIdx[x] = ng
				}
			}
		}
		ng, ok := memberIdx[m]
		return ng, ok
	}
	for og, oMembers := range old {
		// Fast path: group ids are their smallest member, so pure growth
		// never renames a group — the target of og is og itself.
		if nm, ok := new[og]; ok && containsAll(nm, oMembers) {
			sources[og] = append(sources[og], og)
			continue
		}
		// The new groups partition the rows, so the only possible target is
		// the group now holding og's first member.
		ng, ok := lookup(oMembers[0])
		if !ok || !containsAll(new[ng], oMembers) {
			dissolved = append(dissolved, og)
			continue
		}
		sources[ng] = append(sources[ng], og)
	}
	sort.Slice(dissolved, func(i, j int) bool { return dissolved[i] < dissolved[j] })
	for _, og := range dissolved {
		out = append(out, Delta{Kind: GroupDissolved, Group: og})
	}
	newIDs := make([]int64, 0, len(new))
	for ng := range new {
		newIDs = append(newIDs, ng)
	}
	sort.Slice(newIDs, func(i, j int) bool { return newIDs[i] < newIDs[j] })
	for _, ng := range newIDs {
		nMembers := new[ng]
		srcs := sources[ng]
		sort.Slice(srcs, func(i, j int) bool { return srcs[i] < srcs[j] })
		switch {
		case len(srcs) == 0:
			out = append(out, Delta{Kind: GroupCreated, Group: ng, Members: append([]int64(nil), nMembers...)})
		case len(srcs) == 1 && srcs[0] == ng:
			if fresh := subtract(nMembers, old[ng]); len(fresh) != 0 {
				out = append(out, Delta{Kind: MemberJoined, Group: ng, Members: fresh})
			}
		default:
			var merged []int64
			covered := []int64(nil)
			for _, og := range srcs {
				if og != ng {
					merged = append(merged, og)
				}
				covered = mergeSorted(covered, old[og])
			}
			if len(merged) != 0 {
				out = append(out, Delta{Kind: GroupsMerged, Group: ng, Merged: merged})
			}
			if fresh := subtract(nMembers, covered); len(fresh) != 0 {
				out = append(out, Delta{Kind: MemberJoined, Group: ng, Members: fresh})
			}
		}
	}
	return out
}

// containsAll reports whether ascending ids sup contains every ascending id
// in sub (one merge walk, no per-element search).
func containsAll(sup, sub []int64) bool {
	j := 0
	for _, x := range sub {
		for j < len(sup) && sup[j] < x {
			j++
		}
		if j >= len(sup) || sup[j] != x {
			return false
		}
		j++
	}
	return true
}

// subtract returns the ascending ids in a but not in b.
func subtract(a, b []int64) []int64 {
	var out []int64
	j := 0
	for _, x := range a {
		for j < len(b) && b[j] < x {
			j++
		}
		if j < len(b) && b[j] == x {
			continue
		}
		out = append(out, x)
	}
	return out
}

// noteApply folds one applied statement into the view telemetry.
func (v *view) noteApply(n int, now time.Time) {
	v.deltas += uint64(n)
	ns := now.UnixNano()
	if v.rateNS != 0 {
		dt := float64(ns-v.rateNS) / float64(time.Second)
		if dt > 0 {
			const tau = 60.0
			v.rateEWMA = v.rateEWMA*math.Exp(-dt/tau) + float64(n)/tau
		}
	} else {
		v.rateEWMA = float64(n) / 60.0
	}
	v.rateNS = ns
	v.lastApplyNS = ns
}
