// Package stream maintains materialized similarity-group views incrementally
// from the engine's committed statement stream and publishes their evolution
// as typed deltas.
//
// A materialized view (CREATE MATERIALIZED VIEW v AS SELECT ... GROUP BY ...
// WITHIN eps) names a single-table similarity grouping. Instead of
// recomputing the grouping per query, the stream layer keeps a long-lived
// core grouper per view and feeds it each committed base-table row in row
// order — exactly the computation a from-scratch recompute performs — so the
// incrementally maintained state is bit-identical to a fresh recompute at
// every prefix of the insert stream. That order-independence invariant is the
// correctness contract subscribers rely on, and what the property tests pin.
//
// Every state transition is published as a Delta. Deltas are totally ordered
// by Seq, a composite of the producing statement's WAL sequence and a
// per-statement index, which doubles as the resume token of the SUBSCRIBE
// protocol: a reconnecting client presents the Seq of the last delta it
// consumed and the manager replays everything after it from a bounded
// in-memory ring, or falls back to a full state snapshot when the token
// predates ring retention. Because the delta stream is a deterministic
// function of the statement stream, crash recovery regenerates the ring by
// WAL replay and resume tokens remain valid across a kill -9.
package stream

import "fmt"

// DeltaKind enumerates the group-state transitions a view can emit. The
// numeric values are shared with the wire protocol's delta encoding.
type DeltaKind uint8

const (
	// GroupCreated introduces a group: state[Group] = Members.
	GroupCreated DeltaKind = 1
	// MemberJoined adds Members to an existing group: state[Group] ∪= Members.
	MemberJoined DeltaKind = 2
	// GroupsMerged folds every group listed in Merged into Group (creating
	// Group if absent): state[Group] ∪= state[m]; delete state[m].
	GroupsMerged DeltaKind = 3
	// GroupDissolved removes a group: delete state[Group].
	GroupDissolved DeltaKind = 4
)

// String names the kind for logs and the CLI.
func (k DeltaKind) String() string {
	switch k {
	case GroupCreated:
		return "group_created"
	case MemberJoined:
		return "member_joined"
	case GroupsMerged:
		return "groups_merged"
	case GroupDissolved:
		return "group_dissolved"
	default:
		return fmt.Sprintf("DeltaKind(%d)", uint8(k))
	}
}

// seqShift packs a statement's WAL sequence and the index of a delta within
// that statement into one ordered uint64: Seq = walSeq<<seqShift | index.
// 2^20 deltas per statement is far above any real batch; WAL sequences keep
// 44 bits. StmtSeq and DeltaIndex recover the parts.
const seqShift = 20

// PackSeq builds a delta sequence number from a WAL sequence and a
// per-statement delta index.
func PackSeq(walSeq uint64, idx int) uint64 { return walSeq<<seqShift | uint64(idx) }

// StmtSeq extracts the WAL sequence a delta sequence was stamped with.
func StmtSeq(seq uint64) uint64 { return seq >> seqShift }

// DeltaIndex extracts the delta's index within its statement.
func DeltaIndex(seq uint64) uint64 { return seq & (1<<seqShift - 1) }

// Delta is one group-state transition of a materialized view. Group ids are
// stable and content-derived: a group is identified by its smallest member
// row id, which never changes while the group exists (new rows always get
// larger ids, and a merge's surviving id is the minimum of the sources).
type Delta struct {
	// View is the materialized view's name.
	View string
	// Seq totally orders the view's deltas and is the resume token (see
	// PackSeq).
	Seq uint64
	// Kind is the transition type.
	Kind DeltaKind
	// Group is the group the transition applies to.
	Group int64
	// Members carries the member row ids being introduced (GroupCreated,
	// MemberJoined); empty otherwise.
	Members []int64
	// Merged lists the group ids folded into Group (GroupsMerged only).
	Merged []int64
}

// Apply replays d onto state (group id → sorted member ids), the canonical
// replay semantics every consumer follows. Applying a view's delta stream, in
// Seq order, to the state as of any resume point reproduces the view's
// current state exactly.
func Apply(state map[int64][]int64, d Delta) {
	switch d.Kind {
	case GroupCreated:
		state[d.Group] = append([]int64(nil), d.Members...)
	case MemberJoined:
		state[d.Group] = mergeSorted(state[d.Group], d.Members)
	case GroupsMerged:
		acc := state[d.Group]
		for _, m := range d.Merged {
			acc = mergeSorted(acc, state[m])
			delete(state, m)
		}
		state[d.Group] = acc
	case GroupDissolved:
		delete(state, d.Group)
	}
}

// mergeSorted merges two ascending id slices into a fresh ascending slice.
func mergeSorted(a, b []int64) []int64 {
	out := make([]int64, 0, len(a)+len(b))
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		if a[i] <= b[j] {
			out = append(out, a[i])
			i++
		} else {
			out = append(out, b[j])
			j++
		}
	}
	out = append(out, a[i:]...)
	return append(out, b[j:]...)
}
