package stream

import (
	"fmt"
	"math/rand"
	"reflect"
	"sort"
	"strconv"
	"strings"
	"testing"

	"sgb/internal/core"
	"sgb/internal/engine"
	"sgb/internal/geom"
)

// viewConfig is one (mode, metric, eps, overlap) corner of the maintenance
// matrix; sql is the GROUP BY tail of the view definition.
type viewConfig struct {
	name string
	sql  string
	mode engine.SGBMode
	opt  core.Options
}

func configs() []viewConfig {
	return []viewConfig{
		{"any-l2", "DISTANCE-TO-ANY L2 WITHIN 1.5", engine.SGBAnyMode,
			core.Options{Metric: geom.L2, Eps: 1.5, Algorithm: core.IndexBounds}},
		{"any-l1", "DISTANCE-TO-ANY L1 WITHIN 2.0", engine.SGBAnyMode,
			core.Options{Metric: geom.L1, Eps: 2.0, Algorithm: core.IndexBounds}},
		{"any-linf", "DISTANCE-TO-ANY LINF WITHIN 1.0", engine.SGBAnyMode,
			core.Options{Metric: geom.LInf, Eps: 1.0, Algorithm: core.IndexBounds}},
		{"all-join", "DISTANCE-TO-ALL L2 WITHIN 2.0 ON-OVERLAP JOIN-ANY", engine.SGBAllMode,
			core.Options{Metric: geom.L2, Eps: 2.0, Overlap: core.JoinAny, Algorithm: core.IndexBounds}},
		{"all-elim", "DISTANCE-TO-ALL L2 WITHIN 2.0 ON-OVERLAP ELIMINATE", engine.SGBAllMode,
			core.Options{Metric: geom.L2, Eps: 2.0, Overlap: core.Eliminate, Algorithm: core.IndexBounds}},
		{"all-form", "DISTANCE-TO-ALL LINF WITHIN 2.0 ON-OVERLAP FORM-NEW-GROUP", engine.SGBAllMode,
			core.Options{Metric: geom.LInf, Eps: 2.0, Overlap: core.FormNewGroup, Algorithm: core.IndexBounds}},
	}
}

// streamDB builds a fresh engine with the pts base table, an attached
// manager, and one materialized view per the config.
func streamDB(t *testing.T, cfg viewConfig) (*engine.DB, *Manager) {
	t.Helper()
	db := engine.NewDB()
	m := NewManager()
	exec(t, db, "CREATE TABLE pts (x FLOAT, y FLOAT)")
	m.AttachEngine(db)
	exec(t, db, "CREATE MATERIALIZED VIEW v AS SELECT x, y FROM pts GROUP BY x, y "+cfg.sql)
	return db, m
}

func exec(t *testing.T, db *engine.DB, sql string) *engine.Result {
	t.Helper()
	res, err := db.Exec(sql)
	if err != nil {
		t.Fatalf("%s: %v", sql, err)
	}
	return res
}

// randPoints draws n points on a 0.01 grid in [0, side)² — grid values
// round-trip exactly through SQL literals, so the recompute groupers see the
// same float64s the engine stored.
func randPoints(rng *rand.Rand, n int, side float64) [][2]float64 {
	pts := make([][2]float64, n)
	for i := range pts {
		pts[i][0] = float64(rng.Intn(int(side*100))) / 100
		pts[i][1] = float64(rng.Intn(int(side*100))) / 100
	}
	return pts
}

func insertSQL(pts ...[2]float64) string {
	var sb strings.Builder
	sb.WriteString("INSERT INTO pts VALUES ")
	for i, p := range pts {
		if i > 0 {
			sb.WriteString(", ")
		}
		sb.WriteByte('(')
		sb.WriteString(strconv.FormatFloat(p[0], 'f', 2, 64))
		sb.WriteString(", ")
		sb.WriteString(strconv.FormatFloat(p[1], 'f', 2, 64))
		sb.WriteByte(')')
	}
	return sb.String()
}

// recompute runs a from-scratch grouper over the full prefix — the reference
// the incremental state must be bit-identical to.
func recompute(t *testing.T, cfg viewConfig, pts [][2]float64) map[int64][]int64 {
	t.Helper()
	if cfg.mode == engine.SGBAnyMode {
		g, err := core.NewAnyGrouper(cfg.opt)
		if err != nil {
			t.Fatal(err)
		}
		for _, p := range pts {
			if _, err := g.Add(geom.Point{p[0], p[1]}); err != nil {
				t.Fatal(err)
			}
		}
		groups, err := g.Snapshot()
		if err != nil {
			t.Fatal(err)
		}
		return stateFromGroups(groups)
	}
	g, err := core.NewAllGrouper(cfg.opt)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range pts {
		if _, err := g.Add(geom.Point{p[0], p[1]}); err != nil {
			t.Fatal(err)
		}
	}
	res, err := g.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	return stateFromGroups(res.Groups)
}

// TestPrefixBitIdentity is the tentpole's correctness invariant: after every
// committed statement, the incrementally maintained state must be
// bit-identical to a from-scratch recompute over the same row prefix, across
// modes, metrics, and overlap policies.
func TestPrefixBitIdentity(t *testing.T) {
	for _, cfg := range configs() {
		t.Run(cfg.name, func(t *testing.T) {
			rng := rand.New(rand.NewSource(7))
			pts := randPoints(rng, 48, 10)
			db, m := streamDB(t, cfg)
			for i, p := range pts {
				exec(t, db, insertSQL(p))
				got, err := m.State("v")
				if err != nil {
					t.Fatal(err)
				}
				want := recompute(t, cfg, pts[:i+1])
				if !reflect.DeepEqual(got, want) {
					t.Fatalf("prefix %d: incremental state diverged\n got: %v\nwant: %v", i+1, got, want)
				}
			}
		})
	}
}

// TestPrefixBitIdentityBatched repeats the invariant with multi-row INSERT
// statements, so the per-statement delta batching sees more than one row.
func TestPrefixBitIdentityBatched(t *testing.T) {
	for _, cfg := range configs() {
		t.Run(cfg.name, func(t *testing.T) {
			rng := rand.New(rand.NewSource(11))
			pts := randPoints(rng, 49, 10)
			db, m := streamDB(t, cfg)
			for lo := 0; lo < len(pts); lo += 7 {
				hi := lo + 7
				if hi > len(pts) {
					hi = len(pts)
				}
				exec(t, db, insertSQL(pts[lo:hi]...))
				got, err := m.State("v")
				if err != nil {
					t.Fatal(err)
				}
				want := recompute(t, cfg, pts[:hi])
				if !reflect.DeepEqual(got, want) {
					t.Fatalf("prefix %d: batched state diverged", hi)
				}
			}
		})
	}
}

// partitionSig renders a state as an order-independent signature over point
// values: each group becomes its members' sorted coordinate strings, and the
// groups themselves are sorted. Two runs that group the same points the same
// way produce the same signature regardless of insert order.
func partitionSig(state map[int64][]int64, pts [][2]float64) string {
	var groups []string
	for _, members := range state {
		coords := make([]string, len(members))
		for i, m := range members {
			p := pts[m]
			coords[i] = fmt.Sprintf("(%.2f,%.2f)", p[0], p[1])
		}
		sort.Strings(coords)
		groups = append(groups, strings.Join(coords, " "))
	}
	sort.Strings(groups)
	return strings.Join(groups, " | ")
}

// drainDeltas collects everything a subscription attach has produced so far:
// the backlog plus whatever reached the live channel (commits are synchronous
// with the statement, so after the last exec the channel is complete).
func drainDeltas(at *Attach) []Delta {
	out := append([]Delta(nil), at.Backlog...)
	for {
		select {
		case d, ok := <-at.Sub.C:
			if !ok {
				return out
			}
			out = append(out, d)
		default:
			return out
		}
	}
}

// TestOrderIndependencePermutations inserts random permutations of one point
// set and checks (a) the resulting partition over point values is identical
// for every ordering, and (b) each permutation's delta stream replays — via
// Apply — to exactly that permutation's state. SGB-Any grouping is
// connected components, order-independent on any data; the SGB-All overlap
// policies are order-independent on cluster-separated data, which the second
// half uses.
func TestOrderIndependencePermutations(t *testing.T) {
	rng := rand.New(rand.NewSource(23))

	permute := func(pts [][2]float64) [][2]float64 {
		out := append([][2]float64(nil), pts...)
		rng.Shuffle(len(out), func(i, j int) { out[i], out[j] = out[j], out[i] })
		return out
	}

	run := func(t *testing.T, cfg viewConfig, base [][2]float64) {
		var wantSig string
		for trial := 0; trial < 5; trial++ {
			pts := base
			if trial > 0 {
				pts = permute(base)
			}
			db, m := streamDB(t, cfg)
			at, err := m.Subscribe("v", 0, 4096)
			if err != nil {
				t.Fatal(err)
			}
			for _, p := range pts {
				exec(t, db, insertSQL(p))
			}
			state, err := m.State("v")
			if err != nil {
				t.Fatal(err)
			}
			sig := partitionSig(state, pts)
			if trial == 0 {
				wantSig = sig
			} else if sig != wantSig {
				t.Fatalf("permutation %d grouped differently\n got: %s\nwant: %s", trial, sig, wantSig)
			}
			// Delta-stream equivalence: replaying this permutation's deltas
			// from scratch lands on the same state.
			replayed := make(map[int64][]int64)
			for _, d := range drainDeltas(at) {
				Apply(replayed, d)
			}
			if !reflect.DeepEqual(replayed, state) {
				t.Fatalf("permutation %d: delta replay diverged from live state", trial)
			}
			at.Sub.Close()
		}
	}

	t.Run("any-random", func(t *testing.T) {
		cfg := configs()[0] // any-l2
		run(t, cfg, randPoints(rng, 40, 10))
	})

	// Cluster-separated data: all pairwise intra-cluster distances are below
	// eps and clusters sit several eps apart, so every overlap policy must
	// produce the cluster partition in every insert order.
	clusters := func(eps float64) [][2]float64 {
		var pts [][2]float64
		for c := 0; c < 5; c++ {
			cx, cy := float64(c)*5*eps, float64(c%2)*5*eps
			for i := 0; i < 7; i++ {
				pts = append(pts, [2]float64{
					cx + float64(rng.Intn(int(eps*40)))/100, // within eps*0.4
					cy + float64(rng.Intn(int(eps*40)))/100,
				})
			}
		}
		return pts
	}
	for _, cfg := range configs()[3:] {
		cfg := cfg
		t.Run(cfg.name+"-clusters", func(t *testing.T) {
			run(t, cfg, clusters(cfg.opt.Eps))
		})
	}
}

// TestDeltaReplayThroughRebuilds drives the rebuild-and-diff path (UPDATE and
// DELETE force a from-scratch regroup) and checks the emitted delta stream
// still replays to the live state, and the live state still matches a
// recompute of the final table contents.
func TestDeltaReplayThroughRebuilds(t *testing.T) {
	for _, cfg := range configs() {
		t.Run(cfg.name, func(t *testing.T) {
			rng := rand.New(rand.NewSource(31))
			pts := randPoints(rng, 30, 10)
			db, m := streamDB(t, cfg)
			at, err := m.Subscribe("v", 0, 8192)
			if err != nil {
				t.Fatal(err)
			}
			exec(t, db, insertSQL(pts...))
			exec(t, db, "UPDATE pts SET x = x + 3.0 WHERE x < 2.0")
			exec(t, db, "DELETE FROM pts WHERE y < 1.0")
			exec(t, db, insertSQL(randPoints(rng, 10, 10)...))

			state, err := m.State("v")
			if err != nil {
				t.Fatal(err)
			}
			replayed := make(map[int64][]int64)
			for _, d := range drainDeltas(at) {
				Apply(replayed, d)
			}
			if !reflect.DeepEqual(replayed, state) {
				t.Fatalf("delta replay diverged after rebuilds\n got: %v\nwant: %v", replayed, state)
			}

			// The live state equals a recompute over the final table.
			var final [][2]float64
			res := exec(t, db, "SELECT x, y FROM pts")
			for _, row := range res.Rows {
				final = append(final, [2]float64{row[0].F, row[1].F})
			}
			if want := recompute(t, cfg, final); !reflect.DeepEqual(state, want) {
				t.Fatalf("state after rebuilds diverged from recompute")
			}
		})
	}
}

// TestResumeTokenReplay covers the three resume regimes: a token still inside
// ring retention replays exactly the missed suffix; the newest token replays
// nothing; a token below the floor (after ring eviction) rebases onto a
// snapshot image that Apply-reconstructs the full state.
func TestResumeTokenReplay(t *testing.T) {
	cfg := configs()[0]
	db := engine.NewDB()
	m := NewManager()
	m.SetRingCap(8)
	exec(t, db, "CREATE TABLE pts (x FLOAT, y FLOAT)")
	m.AttachEngine(db)
	exec(t, db, "CREATE MATERIALIZED VIEW v AS SELECT x, y FROM pts GROUP BY x, y "+cfg.sql)

	rng := rand.New(rand.NewSource(41))
	pts := randPoints(rng, 6, 10)
	exec(t, db, insertSQL(pts...))

	// Live subscriber consumes a prefix, remembers its token.
	at, err := m.Subscribe("v", 0, 64)
	if err != nil {
		t.Fatal(err)
	}
	if !at.Snapshot {
		t.Fatal("token 0 after bootstrap must rebase onto a snapshot")
	}
	seen := make(map[int64][]int64)
	for _, d := range at.Backlog {
		Apply(seen, d)
	}
	token := at.Seq
	at.Sub.Close()

	// A few more inserts, few enough that the ring still holds their deltas.
	more := randPoints(rng, 2, 10)
	exec(t, db, insertSQL(more[0]))
	exec(t, db, insertSQL(more[1]))

	at2, err := m.Subscribe("v", token, 64)
	if err != nil {
		t.Fatal(err)
	}
	if at2.Snapshot {
		t.Fatal("in-retention token must replay deltas, not snapshot")
	}
	for _, d := range at2.Backlog {
		if d.Seq <= token {
			t.Fatalf("replayed already-consumed delta seq %d (token %d)", d.Seq, token)
		}
		Apply(seen, d)
	}
	state, err := m.State("v")
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(seen, state) {
		t.Fatalf("resume replay diverged\n got: %v\nwant: %v", seen, state)
	}
	// The newest token has nothing to replay.
	atNow, err := m.Subscribe("v", at2.Seq+uint64(len(at2.Backlog)), 64)
	if err != nil {
		t.Fatal(err)
	}
	_ = atNow
	at2.Sub.Close()

	// Blow past ring retention: the old token falls below the floor and the
	// re-attach must rebase onto a snapshot whose image equals the state.
	exec(t, db, insertSQL(randPoints(rng, 30, 10)...))
	at3, err := m.Subscribe("v", token, 64)
	if err != nil {
		t.Fatal(err)
	}
	if !at3.Snapshot {
		t.Fatal("below-floor token must snapshot-rebase")
	}
	image := make(map[int64][]int64)
	for _, d := range at3.Backlog {
		if d.Kind != GroupCreated {
			t.Fatalf("snapshot image may only contain GroupCreated, got %s", d.Kind)
		}
		Apply(image, d)
	}
	state, err = m.State("v")
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(image, state) {
		t.Fatalf("snapshot image diverged from state")
	}
	at3.Sub.Close()
	atNow.Sub.Close()
}

// TestLaggingSubscriberDropped pins the overflow policy: a subscriber that
// cannot keep up is cut (channel closed) rather than stalling the commit
// path, and a re-attach from its last consumed token catches it up.
func TestLaggingSubscriberDropped(t *testing.T) {
	cfg := configs()[0]
	db, m := streamDB(t, cfg)
	at, err := m.Subscribe("v", 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(53))
	for _, p := range randPoints(rng, 12, 10) {
		exec(t, db, insertSQL(p))
	}
	closed := false
	token := at.Seq
	for d := range at.Sub.C {
		token = d.Seq
	}
	closed = true
	if !closed {
		t.Fatal("lagging subscriber channel never closed")
	}
	// Re-attach with the last consumed token: backlog + state must reconcile.
	at2, err := m.Subscribe("v", token, 4096)
	if err != nil {
		t.Fatal(err)
	}
	at2.Sub.Close()
}

// TestViewLifecycle covers registration DDL on the live path: create-on-data
// bootstraps silently, DROP cuts subscribers, and the base table is protected
// while a view depends on it.
func TestViewLifecycle(t *testing.T) {
	cfg := configs()[0]
	db := engine.NewDB()
	m := NewManager()
	exec(t, db, "CREATE TABLE pts (x FLOAT, y FLOAT)")
	m.AttachEngine(db)
	rng := rand.New(rand.NewSource(61))
	pts := randPoints(rng, 20, 10)
	exec(t, db, insertSQL(pts...))

	// Created after data exists: bootstrap replays the table silently.
	exec(t, db, "CREATE MATERIALIZED VIEW v AS SELECT x, y FROM pts GROUP BY x, y "+cfg.sql)
	state, err := m.State("v")
	if err != nil {
		t.Fatal(err)
	}
	if want := recompute(t, cfg, pts); !reflect.DeepEqual(state, want) {
		t.Fatalf("bootstrap state diverged from recompute")
	}
	vs := m.Views()
	if len(vs) != 1 || vs[0].Name != "v" || vs[0].Groups != len(state) || vs[0].Mode != "any" {
		t.Fatalf("view status = %+v", vs)
	}

	// The base table cannot be dropped out from under the view.
	if _, err := db.Exec("DROP TABLE pts"); err == nil {
		t.Fatal("DROP TABLE with a dependent materialized view must fail")
	}

	at, err := m.Subscribe("v", 0, 16)
	if err != nil {
		t.Fatal(err)
	}
	exec(t, db, "DROP MATERIALIZED VIEW v")
	if _, ok := <-at.Sub.C; ok {
		t.Fatal("subscriber channel must close when the view is dropped")
	}
	if _, err := m.State("v"); err == nil {
		t.Fatal("dropped view must be unknown to State")
	}
	if len(m.Views()) != 0 {
		t.Fatal("dropped view still listed")
	}
	// And now the table can go.
	exec(t, db, "DROP TABLE pts")
}

// TestBrokenViewFreezes pins the error contract: maintenance failure (a NULL
// in a grouping column) never fails the write — the view freezes, subscribers
// are cut, and the brokenness is introspectable.
func TestBrokenViewFreezes(t *testing.T) {
	cfg := configs()[0]
	db, m := streamDB(t, cfg)
	exec(t, db, insertSQL([2]float64{1, 1}))
	at, err := m.Subscribe("v", 0, 16)
	if err != nil {
		t.Fatal(err)
	}
	// The write itself must succeed; only the view breaks.
	exec(t, db, "INSERT INTO pts VALUES (NULL, 2.0)")
	if _, ok := <-at.Sub.C; ok {
		t.Fatal("subscriber channel must close when the view breaks")
	}
	if _, err := m.State("v"); err == nil {
		t.Fatal("broken view must refuse State")
	}
	if _, err := m.Subscribe("v", 0, 16); err == nil {
		t.Fatal("broken view must refuse Subscribe")
	}
	vs := m.Views()
	if len(vs) != 1 || vs[0].Error == "" {
		t.Fatalf("broken view status = %+v", vs)
	}
	// Re-creating the view recovers (the NULL row is gone after cleanup).
	exec(t, db, "DELETE FROM pts")
	exec(t, db, insertSQL([2]float64{1, 1}))
	exec(t, db, "DROP MATERIALIZED VIEW v")
	exec(t, db, "CREATE MATERIALIZED VIEW v AS SELECT x, y FROM pts GROUP BY x, y "+cfg.sql)
	if _, err := m.State("v"); err != nil {
		t.Fatalf("re-created view still broken: %v", err)
	}
}

// TestSeqPacking pins the composite resume-token layout.
func TestSeqPacking(t *testing.T) {
	s := PackSeq(7, 3)
	if StmtSeq(s) != 7 || DeltaIndex(s) != 3 {
		t.Fatalf("PackSeq round-trip: got (%d, %d)", StmtSeq(s), DeltaIndex(s))
	}
	if PackSeq(7, 0) <= PackSeq(6, 1<<19) {
		t.Fatal("statement sequence must dominate delta index")
	}
}
