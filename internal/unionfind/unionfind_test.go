package unionfind

import (
	"math/rand"
	"testing"
)

func TestZeroValueUsable(t *testing.T) {
	var f Forest
	if f.Len() != 0 || f.Sets() != 0 {
		t.Fatal("zero forest not empty")
	}
	a := f.MakeSet()
	b := f.MakeSet()
	if a != 0 || b != 1 {
		t.Fatalf("ids = %d, %d; want 0, 1", a, b)
	}
	if f.Same(a, b) {
		t.Fatal("fresh singletons reported same")
	}
	f.Union(a, b)
	if !f.Same(a, b) || f.Sets() != 1 {
		t.Fatal("union did not merge")
	}
}

func TestNewAndGrow(t *testing.T) {
	f := New(5)
	if f.Len() != 5 || f.Sets() != 5 {
		t.Fatalf("Len=%d Sets=%d", f.Len(), f.Sets())
	}
	first := f.Grow(3)
	if first != 5 || f.Len() != 8 {
		t.Fatalf("Grow returned %d, Len=%d", first, f.Len())
	}
}

func TestUnionIdempotent(t *testing.T) {
	f := New(3)
	f.Union(0, 1)
	sets := f.Sets()
	f.Union(0, 1)
	f.Union(1, 0)
	f.Union(0, 0)
	if f.Sets() != sets {
		t.Fatal("repeated unions changed the set count")
	}
}

func TestGroups(t *testing.T) {
	f := New(6)
	f.Union(0, 1)
	f.Union(2, 3)
	f.Union(3, 4)
	groups := f.Groups()
	if len(groups) != 3 {
		t.Fatalf("got %d groups, want 3", len(groups))
	}
	sizes := map[int]int{}
	for _, members := range groups {
		sizes[len(members)]++
		for i := 1; i < len(members); i++ {
			if members[i] <= members[i-1] {
				t.Fatal("group members not in ascending order")
			}
		}
	}
	if sizes[2] != 1 || sizes[3] != 1 || sizes[1] != 1 {
		t.Fatalf("unexpected group size histogram: %v", sizes)
	}
}

// TestAgainstNaiveModel drives the forest with random unions and checks every
// Find/Same answer against a brute-force partition model.
func TestAgainstNaiveModel(t *testing.T) {
	const n = 200
	r := rand.New(rand.NewSource(42))
	f := New(n)
	model := make([]int, n) // model[i] = label of i's set
	for i := range model {
		model[i] = i
	}
	relabel := func(from, to int) {
		for i := range model {
			if model[i] == from {
				model[i] = to
			}
		}
	}
	for op := 0; op < 2000; op++ {
		a, b := r.Intn(n), r.Intn(n)
		if r.Intn(2) == 0 {
			f.Union(a, b)
			relabel(model[a], model[b])
		}
		x, y := r.Intn(n), r.Intn(n)
		if got, want := f.Same(x, y), model[x] == model[y]; got != want {
			t.Fatalf("op %d: Same(%d,%d)=%v, model says %v", op, x, y, got, want)
		}
	}
	// Set count must match the model.
	labels := map[int]bool{}
	for _, l := range model {
		labels[l] = true
	}
	if f.Sets() != len(labels) {
		t.Fatalf("Sets=%d, model has %d", f.Sets(), len(labels))
	}
}

func TestFindPathCompression(t *testing.T) {
	// Build a long chain via unions and ensure Find flattens it: afterwards
	// every element's parent should be the root.
	const n = 64
	f := New(n)
	for i := 1; i < n; i++ {
		f.Union(i-1, i)
	}
	root := f.Find(0)
	for i := 0; i < n; i++ {
		f.Find(i)
	}
	for i := 0; i < n; i++ {
		if int(f.parent[i]) != root {
			t.Fatalf("element %d not compressed to root", i)
		}
	}
}

func BenchmarkUnionFind(b *testing.B) {
	r := rand.New(rand.NewSource(7))
	const n = 1 << 16
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		f := New(n)
		for j := 0; j < n; j++ {
			f.Union(r.Intn(n), r.Intn(n))
		}
	}
}
