// Package unionfind implements a disjoint-set forest with union by rank and
// path compression (Tarjan & van Leeuwen). The SGB-Any operator uses it to
// track group identity while ε-connected groups merge (§7 of the paper).
package unionfind

// Forest is a disjoint-set forest over dense integer element ids. Elements
// are created with MakeSet and identified by the returned id; ids are
// allocated sequentially starting at 0.
//
// The zero value is an empty forest ready to use.
type Forest struct {
	parent []int32
	rank   []int8
	sets   int
}

// New returns a forest pre-sized for n elements (each its own set).
func New(n int) *Forest {
	f := &Forest{}
	f.Grow(n)
	return f
}

// Grow appends n fresh singleton sets and returns the id of the first one.
func (f *Forest) Grow(n int) int {
	first := len(f.parent)
	for i := 0; i < n; i++ {
		f.parent = append(f.parent, int32(len(f.parent)))
		f.rank = append(f.rank, 0)
	}
	f.sets += n
	return first
}

// MakeSet creates a new singleton set and returns its element id.
func (f *Forest) MakeSet() int { return f.Grow(1) }

// Len reports the number of elements in the forest.
func (f *Forest) Len() int { return len(f.parent) }

// Sets reports the current number of disjoint sets.
func (f *Forest) Sets() int { return f.sets }

// Find returns the canonical representative of x's set, compressing the path
// along the way.
func (f *Forest) Find(x int) int {
	root := x
	for int(f.parent[root]) != root {
		root = int(f.parent[root])
	}
	for int(f.parent[x]) != root {
		x, f.parent[x] = int(f.parent[x]), int32(root)
	}
	return root
}

// Union merges the sets containing x and y and returns the representative of
// the merged set. Merging an element with itself is a no-op.
func (f *Forest) Union(x, y int) int {
	rx, ry := f.Find(x), f.Find(y)
	if rx == ry {
		return rx
	}
	if f.rank[rx] < f.rank[ry] {
		rx, ry = ry, rx
	}
	f.parent[ry] = int32(rx)
	if f.rank[rx] == f.rank[ry] {
		f.rank[rx]++
	}
	f.sets--
	return rx
}

// Same reports whether x and y currently belong to the same set.
func (f *Forest) Same(x, y int) bool { return f.Find(x) == f.Find(y) }

// Groups materializes the current partition as a map from representative id
// to member ids. Member order within a group follows element id order.
func (f *Forest) Groups() map[int][]int {
	out := make(map[int][]int, f.sets)
	for i := range f.parent {
		r := f.Find(i)
		out[r] = append(out[r], i)
	}
	return out
}
