package obs

import (
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounter(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("queries_total")
	c.Inc()
	c.Add(41)
	c.Add(-5) // ignored: counters are monotonic
	if got := c.Value(); got != 42 {
		t.Fatalf("counter = %d, want 42", got)
	}
	if r.Counter("queries_total") != c {
		t.Fatal("Counter did not return the existing instance")
	}
}

func TestGauge(t *testing.T) {
	r := NewRegistry()
	g := r.Gauge("tables")
	g.Set(3)
	g.Add(2)
	g.Add(-1)
	if got := g.Value(); got != 4 {
		t.Fatalf("gauge = %v, want 4", got)
	}
}

func TestHistogram(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("latency_seconds", []float64{0.01, 0.1, 1})
	for _, v := range []float64{0.005, 0.05, 0.5, 5} {
		h.Observe(v)
	}
	s := r.Snapshot().Histograms["latency_seconds"]
	if s.Count != 4 {
		t.Fatalf("count = %d, want 4", s.Count)
	}
	if s.Sum != 5.555 {
		t.Fatalf("sum = %v, want 5.555", s.Sum)
	}
	// Cumulative bucket semantics: <=0.01 sees 1, <=0.1 sees 2, <=1 sees 3.
	want := []int64{1, 2, 3}
	for i, w := range want {
		if s.Counts[i] != w {
			t.Fatalf("bucket %d = %d, want %d (counts %v)", i, s.Counts[i], w, s.Counts)
		}
	}
}

func TestSnapshotIsACopy(t *testing.T) {
	r := NewRegistry()
	r.Counter("a").Inc()
	s := r.Snapshot()
	r.Counter("a").Inc()
	if s.Counters["a"] != 1 {
		t.Fatalf("snapshot mutated after the fact: %d", s.Counters["a"])
	}
}

func TestWritePrometheus(t *testing.T) {
	r := NewRegistry()
	r.Counter("engine_queries_total").Add(7)
	r.Gauge("engine_catalog_tables").Set(2)
	r.Histogram("engine_query_seconds", []float64{0.1, 1}).Observe(0.05)
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"# TYPE engine_queries_total counter",
		"engine_queries_total 7",
		"# TYPE engine_catalog_tables gauge",
		"engine_catalog_tables 2",
		"# TYPE engine_query_seconds histogram",
		`engine_query_seconds_bucket{le="0.1"} 1`,
		`engine_query_seconds_bucket{le="+Inf"} 1`,
		"engine_query_seconds_sum 0.05",
		"engine_query_seconds_count 1",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("prometheus output missing %q:\n%s", want, out)
		}
	}
}

func TestRegistryConcurrency(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				r.Counter("c").Inc()
				r.Gauge("g").Set(float64(j))
				r.Histogram("h", DefBuckets).Observe(0.001)
				_ = r.Snapshot()
			}
		}()
	}
	wg.Wait()
	if got := r.Counter("c").Value(); got != 8000 {
		t.Fatalf("counter = %d, want 8000", got)
	}
}

func TestTrace(t *testing.T) {
	tr := NewTrace()
	s := tr.StartSpan("parse")
	time.Sleep(time.Millisecond)
	s.End()
	first := s.Duration()
	if first <= 0 {
		t.Fatal("span duration not recorded")
	}
	s.End() // second End keeps the first duration
	if s.Duration() != first {
		t.Fatal("double End overwrote the duration")
	}
	tr.StartSpan("execute").End()
	tr.Annotate("distance_comps=%d", 42)
	out := tr.String()
	for _, want := range []string{"parse=", "execute=", "distance_comps=42"} {
		if !strings.Contains(out, want) {
			t.Errorf("trace %q missing %q", out, want)
		}
	}
	if len(tr.Spans()) != 2 || len(tr.Notes()) != 1 {
		t.Fatalf("spans=%d notes=%d", len(tr.Spans()), len(tr.Notes()))
	}
}

func TestTraceID(t *testing.T) {
	id := NewTraceID()
	if !ValidTraceID(id) {
		t.Fatalf("NewTraceID produced invalid id %q", id)
	}
	if id2 := NewTraceID(); id2 == id {
		t.Fatalf("two trace IDs collided: %q", id)
	}
	for _, bad := range []string{"", "short", "0123456789abcdeF", "0123456789abcdefg", "0123456789ABCDEF", "xyzw456789abcdef", "0123456789abcde "} {
		if ValidTraceID(bad) {
			t.Errorf("ValidTraceID(%q) = true, want false", bad)
		}
	}
	tr := NewTraceWithID(id)
	if tr.ID() != id {
		t.Fatalf("trace ID = %q, want %q", tr.ID(), id)
	}
	if NewTrace().ID() != "" {
		t.Fatal("untraced trace has non-empty ID")
	}
}

func TestTraceStateAndPlan(t *testing.T) {
	tr := NewTrace()
	if tr.State() != "" {
		t.Fatalf("initial state = %q", tr.State())
	}
	tr.SetState("executing")
	if tr.State() != "executing" {
		t.Fatalf("state = %q, want executing", tr.State())
	}
	tr.SetPlan([]string{"HashSGB", "  Scan t"})
	plan := tr.Plan()
	if len(plan) != 2 || plan[0] != "HashSGB" {
		t.Fatalf("plan = %v", plan)
	}
	tr.AddSpan("wire_decode", time.Now(), 3*time.Millisecond)
	snap := tr.Snapshot()
	if len(snap.Spans) != 1 || snap.Spans[0].Name != "wire_decode" || snap.Spans[0].DurMS != 3 {
		t.Fatalf("snapshot spans = %+v", snap.Spans)
	}
	if len(snap.Plan) != 2 {
		t.Fatalf("snapshot plan = %v", snap.Plan)
	}
}

// TestTraceConcurrency pins the goroutine-safety of Trace/Span: parallel
// morsel workers, the WAL flush path, and the server's process-list reader
// all touch a live trace. Run under -race in CI.
func TestTraceConcurrency(t *testing.T) {
	tr := NewTraceWithID(NewTraceID())
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(n int) {
			defer wg.Done()
			for j := 0; j < 200; j++ {
				s := tr.StartSpan("work")
				tr.Annotate("worker=%d iter=%d", n, j)
				tr.SetState("executing")
				s.End()
				tr.AddSpan("ext", time.Now(), time.Microsecond)
				tr.SetPlan([]string{"op"})
				_ = tr.State()
				_ = tr.Spans()
				_ = tr.Notes()
				_ = tr.Plan()
				_ = tr.String()
				_ = tr.Snapshot()
			}
		}(i)
	}
	wg.Wait()
	if got := len(tr.Spans()); got != 8*200*2 {
		t.Fatalf("spans = %d, want %d", got, 8*200*2)
	}
}

func TestSlowLogRing(t *testing.T) {
	l := NewSlowLog(3)
	if l.Len() != 0 {
		t.Fatalf("empty len = %d", l.Len())
	}
	for i := 1; i <= 5; i++ {
		l.Add(SlowQuery{SQL: string(rune('a' + i - 1)), TraceID: NewTraceID()})
	}
	if l.Len() != 3 {
		t.Fatalf("len = %d, want 3", l.Len())
	}
	got := l.Entries()
	// Newest first: e, d, c survive; a and b were evicted.
	want := []string{"e", "d", "c"}
	for i, w := range want {
		if got[i].SQL != w {
			t.Fatalf("entries[%d].SQL = %q, want %q (all: %+v)", i, got[i].SQL, w, got)
		}
	}
	if got[0].FinishedAt == "" {
		t.Fatal("Add did not stamp FinishedAt")
	}
	q, ok := l.Find(got[1].TraceID)
	if !ok || q.SQL != "d" {
		t.Fatalf("Find = %+v, %v", q, ok)
	}
	if _, ok := l.Find("0000000000000000"); ok {
		t.Fatal("Find matched a missing trace ID")
	}
	if _, ok := l.Find(""); ok {
		t.Fatal("Find matched the empty trace ID")
	}
}

func TestSlowLogConcurrency(t *testing.T) {
	l := NewSlowLog(16)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 200; j++ {
				l.Add(SlowQuery{SQL: "select 1"})
				_ = l.Entries()
				_ = l.Len()
			}
		}()
	}
	wg.Wait()
	if l.Len() != 16 {
		t.Fatalf("len = %d, want 16", l.Len())
	}
}

func TestWritePrometheusLabeledFamilies(t *testing.T) {
	r := NewRegistry()
	r.Gauge(`sgbd_build_info{version="v6",go="go1.24",fsync="always"}`).Set(1)
	r.Gauge(`sgbd_build_info{version="v7",go="go1.24",fsync="never"}`).Set(1)
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if got := strings.Count(out, "# TYPE sgbd_build_info gauge"); got != 1 {
		t.Fatalf("want exactly one TYPE line for the labeled family, got %d:\n%s", got, out)
	}
	if !strings.Contains(out, `sgbd_build_info{version="v6",go="go1.24",fsync="always"} 1`) {
		t.Fatalf("labeled sample missing:\n%s", out)
	}
	if strings.Contains(out, `# TYPE sgbd_build_info{`) {
		t.Fatalf("TYPE line leaked labels:\n%s", out)
	}
}
