package obs

import (
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounter(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("queries_total")
	c.Inc()
	c.Add(41)
	c.Add(-5) // ignored: counters are monotonic
	if got := c.Value(); got != 42 {
		t.Fatalf("counter = %d, want 42", got)
	}
	if r.Counter("queries_total") != c {
		t.Fatal("Counter did not return the existing instance")
	}
}

func TestGauge(t *testing.T) {
	r := NewRegistry()
	g := r.Gauge("tables")
	g.Set(3)
	g.Add(2)
	g.Add(-1)
	if got := g.Value(); got != 4 {
		t.Fatalf("gauge = %v, want 4", got)
	}
}

func TestHistogram(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("latency_seconds", []float64{0.01, 0.1, 1})
	for _, v := range []float64{0.005, 0.05, 0.5, 5} {
		h.Observe(v)
	}
	s := r.Snapshot().Histograms["latency_seconds"]
	if s.Count != 4 {
		t.Fatalf("count = %d, want 4", s.Count)
	}
	if s.Sum != 5.555 {
		t.Fatalf("sum = %v, want 5.555", s.Sum)
	}
	// Cumulative bucket semantics: <=0.01 sees 1, <=0.1 sees 2, <=1 sees 3.
	want := []int64{1, 2, 3}
	for i, w := range want {
		if s.Counts[i] != w {
			t.Fatalf("bucket %d = %d, want %d (counts %v)", i, s.Counts[i], w, s.Counts)
		}
	}
}

func TestSnapshotIsACopy(t *testing.T) {
	r := NewRegistry()
	r.Counter("a").Inc()
	s := r.Snapshot()
	r.Counter("a").Inc()
	if s.Counters["a"] != 1 {
		t.Fatalf("snapshot mutated after the fact: %d", s.Counters["a"])
	}
}

func TestWritePrometheus(t *testing.T) {
	r := NewRegistry()
	r.Counter("engine_queries_total").Add(7)
	r.Gauge("engine_catalog_tables").Set(2)
	r.Histogram("engine_query_seconds", []float64{0.1, 1}).Observe(0.05)
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"# TYPE engine_queries_total counter",
		"engine_queries_total 7",
		"# TYPE engine_catalog_tables gauge",
		"engine_catalog_tables 2",
		"# TYPE engine_query_seconds histogram",
		`engine_query_seconds_bucket{le="0.1"} 1`,
		`engine_query_seconds_bucket{le="+Inf"} 1`,
		"engine_query_seconds_sum 0.05",
		"engine_query_seconds_count 1",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("prometheus output missing %q:\n%s", want, out)
		}
	}
}

func TestRegistryConcurrency(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				r.Counter("c").Inc()
				r.Gauge("g").Set(float64(j))
				r.Histogram("h", DefBuckets).Observe(0.001)
				_ = r.Snapshot()
			}
		}()
	}
	wg.Wait()
	if got := r.Counter("c").Value(); got != 8000 {
		t.Fatalf("counter = %d, want 8000", got)
	}
}

func TestTrace(t *testing.T) {
	tr := NewTrace()
	s := tr.StartSpan("parse")
	time.Sleep(time.Millisecond)
	s.End()
	first := s.Dur
	if first <= 0 {
		t.Fatal("span duration not recorded")
	}
	s.End() // second End keeps the first duration
	if s.Dur != first {
		t.Fatal("double End overwrote the duration")
	}
	tr.StartSpan("execute").End()
	tr.Annotate("distance_comps=%d", 42)
	out := tr.String()
	for _, want := range []string{"parse=", "execute=", "distance_comps=42"} {
		if !strings.Contains(out, want) {
			t.Errorf("trace %q missing %q", out, want)
		}
	}
	if len(tr.Spans()) != 2 || len(tr.Notes()) != 1 {
		t.Fatalf("spans=%d notes=%d", len(tr.Spans()), len(tr.Notes()))
	}
}
