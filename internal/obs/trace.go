package obs

import (
	"fmt"
	"math/rand/v2"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// NewTraceID mints a random 64-bit trace identifier rendered as 16 lowercase
// hex digits — the form carried in the wire protocol's Query frame and
// reported by the server's slowlog and process list.
func NewTraceID() string {
	return fmt.Sprintf("%016x", rand.Uint64())
}

// ValidTraceID reports whether id is a well-formed trace identifier: exactly
// 16 lowercase hex digits.
func ValidTraceID(id string) bool {
	if len(id) != 16 {
		return false
	}
	for i := 0; i < len(id); i++ {
		c := id[i]
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}

// Span is one timed phase of a query (wire decode, parse, plan, execute, WAL
// append/fsync, row streaming). Name and Start are immutable after creation;
// the duration is finalized by End and safe to read concurrently.
type Span struct {
	Name  string
	Start time.Time

	durNS atomic.Int64
	ended atomic.Bool
}

// End stops the span's clock. Calling End twice keeps the first duration.
func (s *Span) End() {
	if s.ended.CompareAndSwap(false, true) {
		s.durNS.Store(int64(time.Since(s.Start)))
	}
}

// Duration reads the recorded duration (zero until End, unless the span was
// added pre-measured via Trace.AddSpan).
func (s *Span) Duration() time.Duration {
	return time.Duration(s.durNS.Load())
}

// Trace records the timed phases of a single statement plus free-form
// annotations (e.g. the SGB cost counters of the run), an optional trace ID,
// a live execution state, and — for sampled statements — the rendered plan
// tree with per-operator actuals.
//
// A Trace is safe for concurrent use: parallel morsel workers and the WAL
// flush path may annotate a live trace while the server's process list reads
// its state from another goroutine.
type Trace struct {
	id string // immutable after creation

	mu    sync.Mutex
	state string
	spans []*Span
	notes []string
	plan  []string
}

// NewTrace starts an empty trace with no ID.
func NewTrace() *Trace { return &Trace{} }

// NewTraceWithID starts an empty trace carrying the given trace ID (typically
// minted by the client or the server for cross-boundary correlation).
func NewTraceWithID(id string) *Trace { return &Trace{id: id} }

// ID returns the trace identifier ("" when untraced).
func (t *Trace) ID() string { return t.id }

// SetState records the statement's current execution phase (parsing,
// planning, executing, committing, streaming) for live introspection.
func (t *Trace) SetState(state string) {
	t.mu.Lock()
	t.state = state
	t.mu.Unlock()
}

// State reports the most recently set execution phase.
func (t *Trace) State() string {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.state
}

// StartSpan begins a named span; the caller must End it.
func (t *Trace) StartSpan(name string) *Span {
	s := &Span{Name: name, Start: time.Now()}
	t.mu.Lock()
	t.spans = append(t.spans, s)
	t.mu.Unlock()
	return s
}

// AddSpan attaches an externally measured, already completed span — e.g. the
// server's wire-decode time, measured before the trace existed.
func (t *Trace) AddSpan(name string, start time.Time, d time.Duration) *Span {
	s := &Span{Name: name, Start: start}
	s.durNS.Store(int64(d))
	s.ended.Store(true)
	t.mu.Lock()
	t.spans = append(t.spans, s)
	t.mu.Unlock()
	return s
}

// Annotate attaches a formatted note to the trace.
func (t *Trace) Annotate(format string, args ...any) {
	n := fmt.Sprintf(format, args...)
	t.mu.Lock()
	t.notes = append(t.notes, n)
	t.mu.Unlock()
}

// Spans returns a copy of the recorded spans in start order.
func (t *Trace) Spans() []*Span {
	t.mu.Lock()
	defer t.mu.Unlock()
	return append([]*Span(nil), t.spans...)
}

// Notes returns a copy of the attached annotations.
func (t *Trace) Notes() []string {
	t.mu.Lock()
	defer t.mu.Unlock()
	return append([]string(nil), t.notes...)
}

// SetPlan attaches the rendered plan tree (EXPLAIN-style lines, with
// per-operator actuals when the statement ran instrumented).
func (t *Trace) SetPlan(lines []string) {
	cp := append([]string(nil), lines...)
	t.mu.Lock()
	t.plan = cp
	t.mu.Unlock()
}

// Plan returns a copy of the attached plan lines (nil when the statement was
// not sampled for instrumentation).
func (t *Trace) Plan() []string {
	t.mu.Lock()
	defer t.mu.Unlock()
	return append([]string(nil), t.plan...)
}

// Snapshot freezes the trace into the JSON-friendly introspection shape used
// by the server's slowlog.
func (t *Trace) Snapshot() TraceSnapshot {
	t.mu.Lock()
	spans := append([]*Span(nil), t.spans...)
	notes := append([]string(nil), t.notes...)
	plan := append([]string(nil), t.plan...)
	t.mu.Unlock()
	snap := TraceSnapshot{ID: t.id, Notes: notes, Plan: plan}
	for _, s := range spans {
		snap.Spans = append(snap.Spans, SpanInfo{
			Name:  s.Name,
			DurMS: float64(s.Duration().Nanoseconds()) / 1e6,
		})
	}
	return snap
}

// String renders the trace as a one-line breakdown, e.g.
// "parse=0.021ms plan=0.105ms execute=3.2ms; distance_comps=1234".
func (t *Trace) String() string {
	t.mu.Lock()
	spans := append([]*Span(nil), t.spans...)
	notes := append([]string(nil), t.notes...)
	t.mu.Unlock()
	var sb strings.Builder
	for i, s := range spans {
		if i > 0 {
			sb.WriteByte(' ')
		}
		fmt.Fprintf(&sb, "%s=%s", s.Name, fmtSpanDur(s.Duration()))
	}
	for i, n := range notes {
		if i == 0 {
			sb.WriteString("; ")
		} else {
			sb.WriteByte(' ')
		}
		sb.WriteString(n)
	}
	return sb.String()
}

func fmtSpanDur(d time.Duration) string {
	switch {
	case d >= time.Second:
		return fmt.Sprintf("%.3fs", d.Seconds())
	default:
		return fmt.Sprintf("%.3fms", float64(d.Nanoseconds())/1e6)
	}
}
