package obs

import (
	"fmt"
	"strings"
	"time"
)

// Span is one timed phase of a query (parse, plan, execute).
type Span struct {
	Name  string
	Start time.Time
	Dur   time.Duration

	ended bool
}

// End stops the span's clock. Calling End twice keeps the first duration.
func (s *Span) End() {
	if !s.ended {
		s.Dur = time.Since(s.Start)
		s.ended = true
	}
}

// Trace records the timed phases of a single statement plus free-form
// annotations (e.g. the SGB cost counters of the run). It is owned by one
// session and is not safe for concurrent use, matching the engine's
// single-session execution model.
type Trace struct {
	spans []*Span
	notes []string
}

// NewTrace starts an empty trace.
func NewTrace() *Trace { return &Trace{} }

// StartSpan begins a named span; the caller must End it.
func (t *Trace) StartSpan(name string) *Span {
	s := &Span{Name: name, Start: time.Now()}
	t.spans = append(t.spans, s)
	return s
}

// Annotate attaches a formatted note to the trace.
func (t *Trace) Annotate(format string, args ...any) {
	t.notes = append(t.notes, fmt.Sprintf(format, args...))
}

// Spans returns the recorded spans in start order.
func (t *Trace) Spans() []*Span { return t.spans }

// Notes returns the attached annotations.
func (t *Trace) Notes() []string { return t.notes }

// String renders the trace as a one-line breakdown, e.g.
// "parse=0.021ms plan=0.105ms execute=3.2ms; distance_comps=1234".
func (t *Trace) String() string {
	var sb strings.Builder
	for i, s := range t.spans {
		if i > 0 {
			sb.WriteByte(' ')
		}
		fmt.Fprintf(&sb, "%s=%s", s.Name, fmtSpanDur(s.Dur))
	}
	for i, n := range t.notes {
		if i == 0 {
			sb.WriteString("; ")
		} else {
			sb.WriteByte(' ')
		}
		sb.WriteString(n)
	}
	return sb.String()
}

func fmtSpanDur(d time.Duration) string {
	switch {
	case d >= time.Second:
		return fmt.Sprintf("%.3fs", d.Seconds())
	default:
		return fmt.Sprintf("%.3fms", float64(d.Nanoseconds())/1e6)
	}
}
