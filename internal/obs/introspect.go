package obs

import (
	"sync"
	"time"
)

// This file holds the JSON shapes the server's live-introspection surfaces
// share with clients: the process list (/debug/queries, \processlist) and the
// slow-query log (/debug/slowlog, \slowlog). They live in obs — not in
// internal/server — so internal/client can unmarshal them without importing
// the server.

// SpanInfo is one completed span of a trace, flattened for JSON.
type SpanInfo struct {
	Name  string  `json:"name"`
	DurMS float64 `json:"dur_ms"`
}

// TraceSnapshot is a frozen Trace: identifier, span timings, notes, and —
// when the statement ran instrumented — the EXPLAIN ANALYZE plan lines.
type TraceSnapshot struct {
	ID    string     `json:"trace_id,omitempty"`
	Spans []SpanInfo `json:"spans,omitempty"`
	Notes []string   `json:"notes,omitempty"`
	Plan  []string   `json:"plan,omitempty"`
}

// QueryInfo is one in-flight query in the server's process list.
type QueryInfo struct {
	TraceID   string  `json:"trace_id,omitempty"`
	Client    string  `json:"client"`
	SQL       string  `json:"sql"`
	State     string  `json:"state"`
	ElapsedMS float64 `json:"elapsed_ms"`
	StartedAt string  `json:"started_at"`
}

// SlowQuery is one finished statement captured by the slow-query log.
type SlowQuery struct {
	TraceID    string        `json:"trace_id,omitempty"`
	Client     string        `json:"client"`
	SQL        string        `json:"sql"`
	Settings   string        `json:"settings,omitempty"`
	ElapsedMS  float64       `json:"elapsed_ms"`
	Rows       int64         `json:"rows"`
	Err        string        `json:"error,omitempty"`
	FinishedAt string        `json:"finished_at"`
	Trace      TraceSnapshot `json:"trace"`
}

// SlowLog is a fixed-capacity ring buffer of SlowQuery entries: the newest
// entries overwrite the oldest once the capacity is reached. Safe for
// concurrent use.
type SlowLog struct {
	mu   sync.Mutex
	buf  []SlowQuery
	next int // index the next Add writes to
	full bool
}

// NewSlowLog returns a slowlog holding at most capacity entries (minimum 1).
func NewSlowLog(capacity int) *SlowLog {
	if capacity < 1 {
		capacity = 1
	}
	return &SlowLog{buf: make([]SlowQuery, capacity)}
}

// Add appends an entry, evicting the oldest when full. The FinishedAt stamp
// is filled in if the caller left it empty.
func (l *SlowLog) Add(q SlowQuery) {
	if q.FinishedAt == "" {
		q.FinishedAt = time.Now().UTC().Format(time.RFC3339Nano)
	}
	l.mu.Lock()
	l.buf[l.next] = q
	l.next++
	if l.next == len(l.buf) {
		l.next, l.full = 0, true
	}
	l.mu.Unlock()
}

// Entries returns the captured queries, newest first.
func (l *SlowLog) Entries() []SlowQuery {
	l.mu.Lock()
	defer l.mu.Unlock()
	n := l.next
	if l.full {
		n = len(l.buf)
	}
	out := make([]SlowQuery, 0, n)
	for i := 0; i < n; i++ {
		// Walk backwards from the slot before next, wrapping.
		idx := (l.next - 1 - i + len(l.buf)) % len(l.buf)
		out = append(out, l.buf[idx])
	}
	return out
}

// Find returns the newest entry with the given trace ID.
func (l *SlowLog) Find(traceID string) (SlowQuery, bool) {
	if traceID == "" {
		return SlowQuery{}, false
	}
	for _, q := range l.Entries() {
		if q.TraceID == traceID {
			return q, true
		}
	}
	return SlowQuery{}, false
}

// Len reports how many entries are currently held.
func (l *SlowLog) Len() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.full {
		return len(l.buf)
	}
	return l.next
}
