// Package obs is the engine's observability layer: a lightweight metrics
// registry (counters, gauges, fixed-bucket latency histograms) plus a
// per-query tracer.
//
// The paper's central claims are cost claims — SGB adds only a small constant
// factor over plain hash Group-By, argued in distance computations and merge
// rounds — so the engine measures rather than estimates: every query updates
// process-wide counters here, and EXPLAIN ANALYZE renders the same numbers
// per operator. The registry is deliberately dependency-free; Snapshot is
// JSON-friendly for the benchmark harness and WritePrometheus renders the
// standard text exposition format for scraping.
package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing metric.
type Counter struct {
	v atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n. Negative deltas are ignored: counters only go up.
func (c *Counter) Add(n int64) {
	if n > 0 {
		c.v.Add(n)
	}
}

// Value reads the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is a metric that can go up and down (e.g. catalog table count).
type Gauge struct {
	bits atomic.Uint64
}

// Set stores v.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add adjusts the gauge by delta. Not atomic across concurrent Adds with
// respect to lost updates under extreme contention, which is acceptable for
// the coarse session-level gauges the engine keeps.
func (g *Gauge) Add(delta float64) { g.Set(g.Value() + delta) }

// Value reads the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// DefBuckets are the default latency buckets, in seconds. They span the
// sub-millisecond point lookups up to the multi-second full-table SGB runs of
// the paper's larger experiments.
var DefBuckets = []float64{0.0001, 0.0005, 0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1, 5, 10}

// Histogram is a fixed-bucket cumulative histogram (Prometheus semantics:
// bucket i counts observations <= upper bound i).
type Histogram struct {
	mu     sync.Mutex
	bounds []float64
	counts []int64
	count  int64
	sum    float64
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.count++
	h.sum += v
	for i, b := range h.bounds {
		if v <= b {
			h.counts[i]++
		}
	}
}

// HistogramSnapshot is a point-in-time copy of a histogram.
type HistogramSnapshot struct {
	// Bounds are the bucket upper bounds, ascending.
	Bounds []float64 `json:"bounds"`
	// Counts are cumulative per-bucket observation counts (<= bound).
	Counts []int64 `json:"counts"`
	// Count is the total number of observations.
	Count int64 `json:"count"`
	// Sum is the sum of all observed values.
	Sum float64 `json:"sum"`
}

// Snapshot is a point-in-time copy of a whole registry, JSON-friendly for
// the benchmark harness.
type Snapshot struct {
	Counters   map[string]int64             `json:"counters"`
	Gauges     map[string]float64           `json:"gauges"`
	Histograms map[string]HistogramSnapshot `json:"histograms"`
}

// Registry is a named collection of metrics. The zero value is not usable;
// call NewRegistry. All methods are safe for concurrent use.
type Registry struct {
	mu         sync.RWMutex
	counters   map[string]*Counter
	gauges     map[string]*Gauge
	histograms map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters:   make(map[string]*Counter),
		gauges:     make(map[string]*Gauge),
		histograms: make(map[string]*Histogram),
	}
}

// Default is the process-wide registry used when no per-DB registry is wired
// up explicitly.
var Default = NewRegistry()

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	r.mu.RLock()
	c, ok := r.counters[name]
	r.mu.RUnlock()
	if ok {
		return c
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if c, ok := r.counters[name]; ok {
		return c
	}
	c = &Counter{}
	r.counters[name] = c
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.RLock()
	g, ok := r.gauges[name]
	r.mu.RUnlock()
	if ok {
		return g
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if g, ok := r.gauges[name]; ok {
		return g
	}
	g = &Gauge{}
	r.gauges[name] = g
	return g
}

// Histogram returns the named histogram, creating it with the given bucket
// upper bounds on first use. Later calls ignore the bounds argument; the
// first registration wins.
func (r *Registry) Histogram(name string, bounds []float64) *Histogram {
	r.mu.RLock()
	h, ok := r.histograms[name]
	r.mu.RUnlock()
	if ok {
		return h
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if h, ok := r.histograms[name]; ok {
		return h
	}
	bs := append([]float64(nil), bounds...)
	sort.Float64s(bs)
	h = &Histogram{bounds: bs, counts: make([]int64, len(bs))}
	r.histograms[name] = h
	return h
}

// Snapshot copies every metric's current value.
func (r *Registry) Snapshot() Snapshot {
	r.mu.RLock()
	defer r.mu.RUnlock()
	s := Snapshot{
		Counters:   make(map[string]int64, len(r.counters)),
		Gauges:     make(map[string]float64, len(r.gauges)),
		Histograms: make(map[string]HistogramSnapshot, len(r.histograms)),
	}
	for name, c := range r.counters {
		s.Counters[name] = c.Value()
	}
	for name, g := range r.gauges {
		s.Gauges[name] = g.Value()
	}
	for name, h := range r.histograms {
		h.mu.Lock()
		s.Histograms[name] = HistogramSnapshot{
			Bounds: append([]float64(nil), h.bounds...),
			Counts: append([]int64(nil), h.counts...),
			Count:  h.count,
			Sum:    h.sum,
		}
		h.mu.Unlock()
	}
	return s
}

// WritePrometheus renders the registry in the Prometheus text exposition
// format, with metric names sorted for deterministic output.
func (r *Registry) WritePrometheus(w io.Writer) error {
	s := r.Snapshot()
	var err error
	pf := func(format string, args ...any) {
		if err == nil {
			_, err = fmt.Fprintf(w, format, args...)
		}
	}
	typed := make(map[string]bool)
	for _, name := range sortedKeys(s.Counters) {
		if fam := metricFamily(name); !typed[fam] {
			typed[fam] = true
			pf("# TYPE %s counter\n", fam)
		}
		pf("%s %d\n", name, s.Counters[name])
	}
	for _, name := range sortedKeys(s.Gauges) {
		if fam := metricFamily(name); !typed[fam] {
			typed[fam] = true
			pf("# TYPE %s gauge\n", fam)
		}
		pf("%s %v\n", name, s.Gauges[name])
	}
	for _, name := range sortedKeys(s.Histograms) {
		h := s.Histograms[name]
		pf("# TYPE %s histogram\n", name)
		for i, b := range h.Bounds {
			pf("%s_bucket{le=%q} %d\n", name, fmt.Sprintf("%g", b), h.Counts[i])
		}
		pf("%s_bucket{le=\"+Inf\"} %d\n", name, h.Count)
		pf("%s_sum %g\n%s_count %d\n", name, h.Sum, name, h.Count)
	}
	return err
}

// metricFamily strips a label set ("name{k=\"v\"}") down to the metric family
// name the # TYPE line must use. Labeled series of one family (e.g.
// sgbd_build_info{version="..."}) then share a single TYPE line.
func metricFamily(name string) string {
	if i := strings.IndexByte(name, '{'); i >= 0 {
		return name[:i]
	}
	return name
}

func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
