package client_test

// In-process protocol tests against a scripted server: a counting listener
// accepts real TCP connections and misbehaves on purpose (garbage frames,
// wrong message types, typed rejections, immediate hangups) so the tests can
// assert two properties the integration suite cannot: every failed connect
// closes its socket (no leaks), and the retry policy distinguishes transient
// rejections from permanent protocol failures.

import (
	"context"
	"errors"
	"net"
	"os"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"sgb/internal/client"
	"sgb/internal/wire"
)

// scriptServer is a counting net.Listener wrapper: every accepted connection
// is numbered and handed to the scripted handler on its own goroutine.
type scriptServer struct {
	ln       net.Listener
	accepted atomic.Int64
	wg       sync.WaitGroup
}

func newScriptServer(t *testing.T, handler func(n int64, nc net.Conn)) *scriptServer {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	s := &scriptServer{ln: ln}
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		for {
			nc, err := ln.Accept()
			if err != nil {
				return
			}
			n := s.accepted.Add(1)
			s.wg.Add(1)
			go func() {
				defer s.wg.Done()
				defer nc.Close()
				handler(n, nc)
			}()
		}
	}()
	t.Cleanup(func() {
		ln.Close()
		s.wg.Wait()
	})
	return s
}

func (s *scriptServer) addr() string { return s.ln.Addr().String() }

// expectPeerClose reads until the client's side of nc closes. A read deadline
// expiring instead means the client leaked the socket.
func expectPeerClose(t *testing.T, nc net.Conn, context string) {
	nc.SetReadDeadline(time.Now().Add(5 * time.Second))
	buf := make([]byte, 512)
	for {
		if _, err := nc.Read(buf); err != nil {
			if errors.Is(err, os.ErrDeadlineExceeded) {
				t.Errorf("%s: client never closed its connection (leak)", context)
			}
			return
		}
	}
}

// readHello consumes the client's handshake frame.
func readHello(t *testing.T, nc net.Conn) bool {
	msg, err := wire.ReadMessage(nc)
	if err != nil {
		t.Errorf("script server: reading Hello: %v", err)
		return false
	}
	if _, ok := msg.(*wire.Hello); !ok {
		t.Errorf("script server: expected Hello, got %T", msg)
		return false
	}
	return true
}

// TestConnectFailureClosesSocket drives ConnectContext through every
// handshake failure path — garbage reply, wrong message type, typed server
// rejection — and asserts the client closed its socket each time. The server
// side observes the close directly, so a leaked net.Conn fails the test
// rather than lingering until process exit.
func TestConnectFailureClosesSocket(t *testing.T) {
	scenarios := []struct {
		name string
		// accepts is how many connections the failure consumes: 1, except a
		// version mismatch, where the client redials once at MinVersion.
		accepts int64
		respond func(t *testing.T, nc net.Conn)
	}{
		{"garbage reply", 1, func(t *testing.T, nc net.Conn) {
			if !readHello(t, nc) {
				return
			}
			nc.Write([]byte("HTTP/1.1 400 Bad Request\r\n\r\n"))
		}},
		{"wrong message type", 1, func(t *testing.T, nc net.Conn) {
			if !readHello(t, nc) {
				return
			}
			wire.WriteMessage(nc, &wire.Pong{})
		}},
		{"typed rejection", 2, func(t *testing.T, nc net.Conn) {
			if !readHello(t, nc) {
				return
			}
			wire.WriteMessage(nc, &wire.Error{Code: wire.CodeVersionMismatch, Message: "speak v999"})
		}},
	}
	for _, sc := range scenarios {
		t.Run(sc.name, func(t *testing.T) {
			closed := make(chan struct{}, 8)
			srv := newScriptServer(t, func(_ int64, nc net.Conn) {
				sc.respond(t, nc)
				expectPeerClose(t, nc, sc.name)
				closed <- struct{}{}
			})
			if _, err := client.Connect(srv.addr()); err == nil {
				t.Fatal("connect succeeded against a misbehaving server")
			}
			for i := int64(0); i < sc.accepts; i++ {
				select {
				case <-closed:
				case <-time.After(10 * time.Second):
					t.Fatal("script server never observed the client close")
				}
			}
			if n := srv.accepted.Load(); n != sc.accepts {
				t.Fatalf("accepted %d connections, want %d", n, sc.accepts)
			}
		})
	}
}

// TestConnectDowngradesToV1 scripts a protocol-v1-only server: it refuses the
// client's v2 Hello with CodeVersionMismatch and welcomes the v1 redial. The
// client must end up connected at version 1 — the compat path that keeps a
// new client working against an old server.
func TestConnectDowngradesToV1(t *testing.T) {
	srv := newScriptServer(t, func(_ int64, nc net.Conn) {
		msg, err := wire.ReadMessage(nc)
		if err != nil {
			t.Errorf("script server: reading Hello: %v", err)
			return
		}
		hello, ok := msg.(*wire.Hello)
		if !ok {
			t.Errorf("script server: expected Hello, got %T", msg)
			return
		}
		if hello.Version != 1 {
			wire.WriteMessage(nc, &wire.Error{Code: wire.CodeVersionMismatch,
				Message: "this server speaks protocol 1 only"})
			return
		}
		wire.WriteMessage(nc, &wire.Welcome{Version: 1, Server: "v1-script"})
		expectPeerClose(t, nc, "v1 conn after Close")
	})
	c, err := client.Connect(srv.addr())
	if err != nil {
		t.Fatalf("connect with downgrade: %v", err)
	}
	defer c.Close()
	if got := c.Version(); got != 1 {
		t.Errorf("Version() = %d, want 1", got)
	}
	if got := c.LastTraceID(); got != "" {
		t.Errorf("LastTraceID() = %q before any query, want empty", got)
	}
	if n := srv.accepted.Load(); n != 2 {
		t.Errorf("accepted %d connections, want 2 (v2 refusal + v1 success)", n)
	}
}

// TestConnectRetriesTransientRejection: the server answers the first two
// attempts with CodeTooManyConnections (a transient condition) and completes
// the handshake on the third. With retries enabled the client must end up
// connected, having closed both rejected sockets along the way.
func TestConnectRetriesTransientRejection(t *testing.T) {
	srv := newScriptServer(t, func(n int64, nc net.Conn) {
		if !readHello(t, nc) {
			return
		}
		if n <= 2 {
			wire.WriteMessage(nc, &wire.Error{Code: wire.CodeTooManyConnections, Message: "at limit"})
			expectPeerClose(t, nc, "rejected attempt")
			return
		}
		wire.WriteMessage(nc, &wire.Welcome{Version: wire.Version, Server: "script"})
		expectPeerClose(t, nc, "accepted conn after Close")
	})
	c, err := client.ConnectContext(context.Background(), srv.addr(), client.Options{
		MaxRetries: 5,
		BaseDelay:  time.Millisecond,
	})
	if err != nil {
		t.Fatalf("connect with retries: %v", err)
	}
	defer c.Close()
	if got := c.Server(); got != "script" {
		t.Errorf("Server() = %q, want %q", got, "script")
	}
	if n := srv.accepted.Load(); n != 3 {
		t.Errorf("accepted %d connections, want 3 (two rejections + success)", n)
	}
}

// TestConnectRetriesTransportFailure: a server that hangs up before the
// handshake is a transport failure, and transport failures are retryable.
// The counting listener verifies the configured attempt budget is spent.
func TestConnectRetriesTransportFailure(t *testing.T) {
	srv := newScriptServer(t, func(_ int64, nc net.Conn) {
		// Hang up without answering the Hello.
	})
	_, err := client.ConnectContext(context.Background(), srv.addr(), client.Options{
		MaxRetries: 2,
		BaseDelay:  time.Millisecond,
	})
	if err == nil {
		t.Fatal("connect succeeded against a hanging-up server")
	}
	if n := srv.accepted.Load(); n != 3 {
		t.Errorf("accepted %d connections, want 3 (initial + 2 retries)", n)
	}
}

// TestConnectDoesNotRetryVersionMismatch: a protocol-level refusal will fail
// identically on every attempt, so the retry budget must not be spent on it.
// The refusal costs exactly two connections — the v2 attempt plus the single
// v1 downgrade redial — never the full retry budget.
func TestConnectDoesNotRetryVersionMismatch(t *testing.T) {
	srv := newScriptServer(t, func(_ int64, nc net.Conn) {
		if !readHello(t, nc) {
			return
		}
		wire.WriteMessage(nc, &wire.Error{Code: wire.CodeVersionMismatch, Message: "speak v999"})
		expectPeerClose(t, nc, "version mismatch")
	})
	_, err := client.ConnectContext(context.Background(), srv.addr(), client.Options{
		MaxRetries: 5,
		BaseDelay:  time.Millisecond,
	})
	var se *client.ServerError
	if !errors.As(err, &se) || se.Code != wire.CodeVersionMismatch {
		t.Fatalf("err = %v, want CodeVersionMismatch ServerError", err)
	}
	if n := srv.accepted.Load(); n != 2 {
		t.Errorf("accepted %d connections, want 2 (v2 + v1 downgrade, no further retries)", n)
	}
}

// TestConnectContextCancelStopsRetries: cancellation during backoff returns
// promptly with the context error instead of sleeping out the budget.
func TestConnectContextCancelStopsRetries(t *testing.T) {
	srv := newScriptServer(t, func(_ int64, nc net.Conn) {
		// Hang up: retryable, pushing the client into its backoff sleep.
	})
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(50 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	_, err := client.ConnectContext(ctx, srv.addr(), client.Options{
		MaxRetries: 10,
		BaseDelay:  10 * time.Second, // without cancellation this would sleep ~5s+
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Errorf("cancellation took %v to surface", elapsed)
	}
}

// TestErrConnClosed: every operation on a locally-closed Conn reports the
// typed ErrConnClosed, and Close is idempotent.
func TestErrConnClosed(t *testing.T) {
	srv := newScriptServer(t, func(_ int64, nc net.Conn) {
		if !readHello(t, nc) {
			return
		}
		wire.WriteMessage(nc, &wire.Welcome{Version: wire.Version, Server: "script"})
		expectPeerClose(t, nc, "closed conn")
	})
	c, err := client.Connect(srv.addr())
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	if err := c.Close(); err != nil {
		t.Errorf("second close: %v, want nil", err)
	}
	if _, err := c.Query(context.Background(), "SELECT 1"); !errors.Is(err, client.ErrConnClosed) {
		t.Errorf("Query after close: %v, want ErrConnClosed", err)
	}
	if err := c.Cancel(); !errors.Is(err, client.ErrConnClosed) {
		t.Errorf("Cancel after close: %v, want ErrConnClosed", err)
	}
	if err := c.Set("batch_size", "64"); !errors.Is(err, client.ErrConnClosed) {
		t.Errorf("Set after close: %v, want ErrConnClosed", err)
	}
	if err := c.Ping(context.Background()); !errors.Is(err, client.ErrConnClosed) {
		t.Errorf("Ping after close: %v, want ErrConnClosed", err)
	}
}
