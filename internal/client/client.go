// Package client is the Go client for sgbd's wire protocol. It exposes the
// same Result shape as the embedded engine API, so code written against
// engine.DB ports to a remote server by swapping the handle:
//
//	conn, err := client.Connect("127.0.0.1:7433")
//	res, err := conn.Query(ctx, "SELECT count(*) FROM checkins GROUP BY lat, lon DISTANCE-TO-ANY L2 WITHIN 0.5")
//
// Query materializes; Stream returns a Rows iterator that yields batches as
// they arrive. Canceling the context mid-query sends a wire Cancel frame:
// the server aborts the statement promptly and the connection stays usable
// for the next query.
//
// A Conn runs one query at a time (calls serialize on an internal mutex);
// open several connections for concurrent statements.
package client

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand/v2"
	"net"
	"sync"
	"time"

	"sgb/internal/engine"
	"sgb/internal/obs"
	"sgb/internal/wire"
)

// ServerError is a typed failure reported by the server. Use the wire.Code*
// constants to classify it.
type ServerError = wire.Error

// ErrConnClosed reports an operation on a connection that was closed locally
// (Close was called). It is a transport-level condition, distinct from query
// errors (*ServerError) — callers can retry it on a fresh connection.
var ErrConnClosed = errors.New("client: connection closed")

// Options tunes ConnectContext. The zero value means a single attempt.
type Options struct {
	// MaxRetries is how many additional connection attempts follow a failed
	// dial or handshake (so MaxRetries = 2 means up to 3 attempts). Retries
	// apply to transport failures and to the server's transient rejections
	// (CodeTooManyConnections, CodeShuttingDown); protocol-level failures
	// such as a version mismatch fail immediately.
	MaxRetries int
	// BaseDelay is the first retry's backoff; it doubles per attempt with
	// jitter. 0 means 50ms.
	BaseDelay time.Duration
	// MaxDelay caps the backoff. 0 means 2s.
	MaxDelay time.Duration
}

// Conn is one client connection to an sgbd server.
type Conn struct {
	nc net.Conn

	// wmu serializes frame writes: Cancel is sent from the canceling
	// goroutine while the querying goroutine owns the conversation.
	wmu sync.Mutex
	// qmu serializes conversations (query/set/ping); one at a time per conn.
	qmu sync.Mutex

	// closed is set under qmu+wmu by Close.
	closed bool

	server  string // server identification from the Welcome handshake
	version uint32 // negotiated protocol version from the Welcome handshake

	// idMu guards lastTraceID, readable from any goroutine while the
	// querying goroutine advances it.
	idMu        sync.Mutex
	lastTraceID string
}

// Connect dials addr and performs the protocol handshake.
func Connect(addr string) (*Conn, error) {
	return ConnectContext(context.Background(), addr)
}

// ConnectContext is Connect bounded by ctx (dial and handshake). An optional
// Options enables retry with exponential backoff and jitter on dial or
// handshake failure.
func ConnectContext(ctx context.Context, addr string, opts ...Options) (*Conn, error) {
	var o Options
	if len(opts) > 0 {
		o = opts[0]
	}
	if o.BaseDelay <= 0 {
		o.BaseDelay = 50 * time.Millisecond
	}
	if o.MaxDelay <= 0 {
		o.MaxDelay = 2 * time.Second
	}
	var err error
	for attempt := 0; ; attempt++ {
		var c *Conn
		c, err = dialAndHandshake(ctx, addr)
		if err == nil {
			return c, nil
		}
		if attempt >= o.MaxRetries || ctx.Err() != nil || !retryable(err) {
			return nil, err
		}
		select {
		case <-time.After(backoffDelay(err, attempt, o)):
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
}

// retryable classifies a connect failure: transport errors and the server's
// transient rejections are worth another attempt; protocol-level refusals
// (version mismatch, bad handshake) will fail the same way every time.
// CodeReadOnly (degraded store pending disk recovery) and CodeOverloaded
// (admission queue full) are transient by design — the server attaches a
// retry-after hint that backoffDelay honors.
func retryable(err error) bool {
	var se *ServerError
	if errors.As(err, &se) {
		switch se.Code {
		case wire.CodeTooManyConnections, wire.CodeShuttingDown,
			wire.CodeReadOnly, wire.CodeOverloaded:
			return true
		}
		return false
	}
	return true
}

// backoffDelay computes the next retry sleep. When the server attached a
// retry-after hint (v4), the hint wins — plus up to 25% jitter so a herd of
// hinted clients still spreads out. Otherwise: exponential backoff with
// jitter, half the window fixed and half random.
func backoffDelay(err error, attempt int, o Options) time.Duration {
	var se *ServerError
	if errors.As(err, &se) && se.RetryAfterMS != 0 {
		hint := se.RetryAfter()
		return hint + rand.N(hint/4+1)
	}
	delay := o.BaseDelay << attempt
	if delay > o.MaxDelay || delay <= 0 {
		delay = o.MaxDelay
	}
	return delay/2 + rand.N(delay/2+1)
}

// dialAndHandshake performs one connection attempt at the current protocol
// version. When an older server refuses it with CodeVersionMismatch, the
// client redials once offering the oldest version it still speaks — so a new
// client keeps working against a v1 server (losing only the newer extras,
// such as trace-ID propagation and subscriptions).
func dialAndHandshake(ctx context.Context, addr string) (*Conn, error) {
	c, err := dialAt(ctx, addr, wire.MaxVersion)
	var se *ServerError
	if err != nil && errors.As(err, &se) && se.Code == wire.CodeVersionMismatch &&
		wire.MinVersion < wire.MaxVersion {
		return dialAt(ctx, addr, wire.MinVersion)
	}
	return c, err
}

// dialAt performs one connection attempt offering the given protocol version.
// Every failure path closes the socket — the deferred cleanup is the single
// place that decides, so no early return can leak the net.Conn.
func dialAt(ctx context.Context, addr string, version uint32) (c *Conn, err error) {
	var d net.Dialer
	nc, err := d.DialContext(ctx, "tcp", addr)
	if err != nil {
		return nil, err
	}
	defer func() {
		if err != nil {
			nc.Close()
		}
	}()
	if deadline, ok := ctx.Deadline(); ok {
		nc.SetDeadline(deadline)
	} else {
		nc.SetDeadline(time.Now().Add(10 * time.Second))
	}
	if err := wire.WriteMessage(nc, &wire.Hello{Version: version}); err != nil {
		return nil, fmt.Errorf("client: handshake: %w", err)
	}
	msg, err := wire.ReadMessage(nc)
	if err != nil {
		return nil, fmt.Errorf("client: handshake: %w", err)
	}
	switch m := msg.(type) {
	case *wire.Welcome:
		nc.SetDeadline(time.Time{})
		return &Conn{nc: nc, server: m.Server, version: m.Version}, nil
	case *wire.Error:
		return nil, m
	default:
		return nil, fmt.Errorf("client: handshake: unexpected %T", msg)
	}
}

// Server reports the server identification string from the handshake.
func (c *Conn) Server() string { return c.server }

// Version reports the negotiated protocol version from the handshake.
func (c *Conn) Version() uint32 { return c.version }

// LastTraceID reports the trace ID the client attached to its most recent
// query, empty before the first query or when the server only speaks protocol
// v1 (which has no trace propagation). Safe to call from any goroutine.
func (c *Conn) LastTraceID() string {
	c.idMu.Lock()
	defer c.idMu.Unlock()
	return c.lastTraceID
}

// Close sends a graceful goodbye and closes the socket.
func (c *Conn) Close() error {
	c.qmu.Lock()
	defer c.qmu.Unlock()
	c.wmu.Lock()
	defer c.wmu.Unlock()
	if c.closed {
		return nil
	}
	c.closed = true
	_ = wire.WriteMessage(c.nc, &wire.Close{})
	return c.nc.Close()
}

// closeSocket force-closes the transport without taking the conversation
// lock — the way a subscription watcher unblocks a reader waiting in a socket
// read. The conn is unusable afterwards.
func (c *Conn) closeSocket() error { return c.nc.Close() }

// writeMsg sends one frame under the write lock.
func (c *Conn) writeMsg(m wire.Message) error {
	c.wmu.Lock()
	defer c.wmu.Unlock()
	if c.closed {
		return ErrConnClosed
	}
	return wire.WriteMessage(c.nc, m)
}

// Cancel asks the server to abort the connection's in-flight query, if any.
// It is safe to call from any goroutine — a REPL's Ctrl-C handler, a
// context watcher — while another goroutine is reading the query's rows.
func (c *Conn) Cancel() error {
	return c.writeMsg(&wire.Cancel{})
}

// Query executes one statement and materializes the full result — the same
// Result shape the embedded engine.DB.ExecContext returns. Canceling ctx
// mid-query sends a wire Cancel and returns ctx.Err().
func (c *Conn) Query(ctx context.Context, sql string) (*engine.Result, error) {
	rows, err := c.Stream(ctx, sql)
	if err != nil {
		return nil, err
	}
	res := &engine.Result{Columns: rows.Columns()}
	for {
		batch, err := rows.NextBatch()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, err
		}
		res.Rows = append(res.Rows, batch...)
	}
	res.RowsAffected = int(rows.RowsAffected())
	return res, nil
}

// Exec is Query without a context, mirroring engine.DB.Exec.
func (c *Conn) Exec(sql string) (*engine.Result, error) {
	return c.Query(context.Background(), sql)
}

// Rows is a streamed query result. It must be drained (NextBatch to io.EOF)
// or Close()d before the connection can run another statement.
type Rows struct {
	c        *Conn
	ctx      context.Context
	traceID  string
	cols     []string
	done     bool
	affected int64
	rowCount int64
	// stopWatch releases the context watcher goroutine; cancelMu/finished
	// fence the watcher's Cancel against query completion, so a Cancel frame
	// can never land after a subsequent Query frame.
	stopWatch chan struct{}
	watchOnce sync.Once
	cancelMu  sync.Mutex
	finished  bool
}

// Stream executes one statement and returns an iterator over its row
// batches. The first response frame (RowHeader, Done, or Error) is consumed
// before Stream returns, so column names are immediately available.
func (c *Conn) Stream(ctx context.Context, sql string) (*Rows, error) {
	c.qmu.Lock()
	// Trace propagation is a v2 extra: the client mints the query's trace ID
	// so the end-to-end trace starts at the caller, and the server's slowlog
	// entry can be looked up by an ID the client already holds. Against a v1
	// server the field must stay empty — the frame then encodes byte-for-byte
	// as a v1 Query.
	var traceID string
	if c.version >= 2 {
		traceID = obs.NewTraceID()
		c.idMu.Lock()
		c.lastTraceID = traceID
		c.idMu.Unlock()
	}
	// The lock is held until the Rows is fully drained or closed; Rows.finish
	// releases it.
	if err := c.writeMsg(&wire.Query{SQL: sql, TraceID: traceID}); err != nil {
		c.qmu.Unlock()
		return nil, err
	}
	r := &Rows{c: c, ctx: ctx, traceID: traceID, stopWatch: make(chan struct{})}
	if ctx.Done() != nil {
		go func() {
			select {
			case <-ctx.Done():
				// Best effort: the server replies with CodeCanceled, which
				// the reading goroutine maps back to ctx.Err(). The fence
				// skips the send once the query has already completed.
				r.cancelMu.Lock()
				if !r.finished {
					c.Cancel()
				}
				r.cancelMu.Unlock()
			case <-r.stopWatch:
			}
		}()
	}

	msg, err := r.read()
	if err != nil {
		r.finish()
		return nil, err
	}
	switch m := msg.(type) {
	case *wire.RowHeader:
		r.cols = m.Columns
		return r, nil
	case *wire.Done:
		// Columnless statement (DDL/DML): the result is complete.
		r.affected, r.rowCount = m.RowsAffected, m.RowCount
		r.finish()
		return r, nil
	default:
		r.finish()
		return nil, fmt.Errorf("client: unexpected %T starting result", msg)
	}
}

// read receives the next frame, mapping server-reported failures (and local
// context cancellation) to errors.
func (r *Rows) read() (wire.Message, error) {
	msg, err := wire.ReadMessage(r.c.nc)
	if err != nil {
		// The socket is broken; no further queries can run on this conn.
		return nil, err
	}
	if e, ok := msg.(*wire.Error); ok {
		if e.Code == wire.CodeCanceled && r.ctx.Err() != nil {
			return nil, r.ctx.Err()
		}
		return nil, e
	}
	return msg, nil
}

// TraceID reports the trace ID attached to this query (empty on a v1
// connection). Present the ID to \slowlog or /debug/slowlog to retrieve the
// server-side trace.
func (r *Rows) TraceID() string { return r.traceID }

// Columns names the result columns (empty for DDL/DML).
func (r *Rows) Columns() []string { return r.cols }

// RowsAffected reports the DML row count; valid once the stream is drained.
func (r *Rows) RowsAffected() int64 { return r.affected }

// RowCount reports the server-side total row count; valid once drained.
func (r *Rows) RowCount() int64 { return r.rowCount }

// NextBatch returns the next batch of rows, or io.EOF when the result is
// complete. Any other error means the statement failed (typed *ServerError,
// or the context error after a cancellation).
func (r *Rows) NextBatch() ([]engine.Row, error) {
	if r.done {
		return nil, io.EOF
	}
	msg, err := r.read()
	if err != nil {
		r.finish()
		return nil, err
	}
	switch m := msg.(type) {
	case *wire.RowBatch:
		return m.Rows, nil
	case *wire.Done:
		r.affected, r.rowCount = m.RowsAffected, m.RowCount
		r.finish()
		return nil, io.EOF
	default:
		r.finish()
		return nil, fmt.Errorf("client: unexpected %T mid-result", msg)
	}
}

// Close drains and discards the remainder of the stream so the connection
// can run the next statement.
func (r *Rows) Close() error {
	for !r.done {
		if _, err := r.NextBatch(); err != nil {
			if err == io.EOF {
				break
			}
			return err
		}
	}
	return nil
}

// finish releases the per-query resources: the context watcher and the
// conversation lock.
func (r *Rows) finish() {
	if r.done {
		return
	}
	r.done = true
	r.cancelMu.Lock()
	r.finished = true
	r.cancelMu.Unlock()
	r.watchOnce.Do(func() { close(r.stopWatch) })
	r.c.qmu.Unlock()
}

// Set changes one session-scoped setting on the server. Names:
// sgb_algorithm (allpairs|bounds|index), parallelism, batch_size, max_rows,
// max_time (Go duration, "0" clears).
func (c *Conn) Set(name, value string) error {
	c.qmu.Lock()
	defer c.qmu.Unlock()
	if err := c.writeMsg(&wire.Set{Name: name, Value: value}); err != nil {
		return err
	}
	return c.expectDone()
}

// Ping round-trips a liveness probe.
func (c *Conn) Ping(ctx context.Context) error {
	c.qmu.Lock()
	defer c.qmu.Unlock()
	if deadline, ok := ctx.Deadline(); ok {
		c.nc.SetReadDeadline(deadline)
		defer c.nc.SetReadDeadline(time.Time{})
	}
	if err := c.writeMsg(&wire.Ping{}); err != nil {
		return err
	}
	msg, err := wire.ReadMessage(c.nc)
	if err != nil {
		return err
	}
	switch m := msg.(type) {
	case *wire.Pong:
		return nil
	case *wire.Error:
		return m
	default:
		return fmt.Errorf("client: unexpected %T to Ping", msg)
	}
}

// Stats fetches the server's metrics registry in Prometheus text format.
func (c *Conn) Stats() (string, error) {
	c.qmu.Lock()
	defer c.qmu.Unlock()
	if err := c.writeMsg(&wire.Stats{}); err != nil {
		return "", err
	}
	msg, err := wire.ReadMessage(c.nc)
	if err != nil {
		return "", err
	}
	switch m := msg.(type) {
	case *wire.StatsText:
		return m.Text, nil
	case *wire.Error:
		return "", m
	default:
		return "", fmt.Errorf("client: unexpected %T to Stats", msg)
	}
}

// ProcessList fetches the server's in-flight queries (oldest first) — the
// wire form of \processlist. Requires a v2 server.
func (c *Conn) ProcessList(ctx context.Context) ([]obs.QueryInfo, error) {
	var out []obs.QueryInfo
	if err := c.introspect(ctx, wire.IntrospectProcessList, &out); err != nil {
		return nil, err
	}
	return out, nil
}

// SlowLog fetches the server's slow-query ring buffer, newest first — the
// wire form of \slowlog. Requires a v2 server.
func (c *Conn) SlowLog(ctx context.Context) ([]obs.SlowQuery, error) {
	var out []obs.SlowQuery
	if err := c.introspect(ctx, wire.IntrospectSlowLog, &out); err != nil {
		return nil, err
	}
	return out, nil
}

// introspect round-trips one Introspect request and unmarshals the JSON
// payload into v.
func (c *Conn) introspect(ctx context.Context, what string, v any) error {
	c.qmu.Lock()
	defer c.qmu.Unlock()
	if deadline, ok := ctx.Deadline(); ok {
		c.nc.SetReadDeadline(deadline)
		defer c.nc.SetReadDeadline(time.Time{})
	}
	if err := c.writeMsg(&wire.Introspect{What: what}); err != nil {
		return err
	}
	msg, err := wire.ReadMessage(c.nc)
	if err != nil {
		return err
	}
	switch m := msg.(type) {
	case *wire.IntrospectResult:
		return json.Unmarshal([]byte(m.JSON), v)
	case *wire.Error:
		return m
	default:
		return fmt.Errorf("client: unexpected %T to Introspect", msg)
	}
}

// expectDone reads the acknowledgement for a settings change.
func (c *Conn) expectDone() error {
	msg, err := wire.ReadMessage(c.nc)
	if err != nil {
		return err
	}
	switch m := msg.(type) {
	case *wire.Done:
		return nil
	case *wire.Error:
		return m
	default:
		return fmt.Errorf("client: unexpected %T to Set", msg)
	}
}

// IsCanceled reports whether err is a cancellation: either the local context
// error or the server's typed canceled code.
func IsCanceled(err error) bool {
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		return true
	}
	var se *ServerError
	return errors.As(err, &se) && se.Code == wire.CodeCanceled
}
