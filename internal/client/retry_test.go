package client_test

// Scripted-server tests for the degradation-aware retry policy: CodeReadOnly
// (store degraded after a disk fault) and CodeOverloaded (admission queue or
// memory budget full) are transient by contract, so the client retries them —
// and when the rejection carries a retry-after hint, the hint replaces the
// exponential backoff schedule. The tests prove the hint is honored by
// configuring a backoff so large that ignoring the hint would blow the test
// deadline.

import (
	"context"
	"errors"
	"net"
	"testing"
	"time"

	"sgb/internal/client"
	"sgb/internal/wire"
)

// hugeDelay is a backoff no test can afford to sleep: if a retry completes
// promptly anyway, the server's retry-after hint must have replaced it.
const hugeDelay = 5 * time.Minute

func TestConnectRetriesOverloadedHonoringHint(t *testing.T) {
	srv := newScriptServer(t, func(n int64, nc net.Conn) {
		if !readHello(t, nc) {
			return
		}
		if n <= 2 {
			wire.WriteMessage(nc, &wire.Error{Code: wire.CodeOverloaded,
				Message: "admission queue full", RetryAfterMS: 25})
			expectPeerClose(t, nc, "overloaded rejection")
			return
		}
		wire.WriteMessage(nc, &wire.Welcome{Version: wire.Version, Server: "script"})
		expectPeerClose(t, nc, "accepted conn after Close")
	})
	start := time.Now()
	c, err := client.ConnectContext(context.Background(), srv.addr(), client.Options{
		MaxRetries: 5,
		BaseDelay:  hugeDelay,
		MaxDelay:   hugeDelay,
	})
	if err != nil {
		t.Fatalf("connect with overloaded retries: %v", err)
	}
	defer c.Close()
	if elapsed := time.Since(start); elapsed > 30*time.Second {
		t.Fatalf("retries took %v: the 25ms retry-after hint was not honored", elapsed)
	}
	if n := srv.accepted.Load(); n != 3 {
		t.Errorf("accepted %d connections, want 3 (two sheds + success)", n)
	}
}

func TestConnectRetriesReadOnly(t *testing.T) {
	srv := newScriptServer(t, func(n int64, nc net.Conn) {
		if !readHello(t, nc) {
			return
		}
		if n == 1 {
			wire.WriteMessage(nc, &wire.Error{Code: wire.CodeReadOnly,
				Message: "store degraded (read-only)", RetryAfterMS: 10})
			expectPeerClose(t, nc, "read-only rejection")
			return
		}
		wire.WriteMessage(nc, &wire.Welcome{Version: wire.Version, Server: "script"})
		expectPeerClose(t, nc, "accepted conn after Close")
	})
	c, err := client.ConnectContext(context.Background(), srv.addr(), client.Options{
		MaxRetries: 2,
		BaseDelay:  time.Millisecond,
	})
	if err != nil {
		t.Fatalf("connect with read-only retry: %v", err)
	}
	defer c.Close()
	if n := srv.accepted.Load(); n != 2 {
		t.Errorf("accepted %d connections, want 2 (one rejection + success)", n)
	}
}

// TestConnectReadOnlyNotRetriedWithoutBudget: the rejection is typed, so with
// MaxRetries 0 it surfaces immediately — carrying the hint for the caller.
func TestConnectReadOnlyNotRetriedWithoutBudget(t *testing.T) {
	srv := newScriptServer(t, func(_ int64, nc net.Conn) {
		if !readHello(t, nc) {
			return
		}
		wire.WriteMessage(nc, &wire.Error{Code: wire.CodeReadOnly,
			Message: "store degraded (read-only)", RetryAfterMS: 1000})
		expectPeerClose(t, nc, "read-only rejection")
	})
	_, err := client.Connect(srv.addr())
	var se *client.ServerError
	if !errors.As(err, &se) || se.Code != wire.CodeReadOnly {
		t.Fatalf("err = %v, want CodeReadOnly ServerError", err)
	}
	if se.RetryAfter() != time.Second {
		t.Errorf("surfaced hint %v, want 1s", se.RetryAfter())
	}
	if n := srv.accepted.Load(); n != 1 {
		t.Errorf("accepted %d connections, want 1 (no retry budget)", n)
	}
}

// TestSubscribeReattachHonorsHint drives the managed Subscribe loop through a
// mid-stream disconnect followed by an overloaded re-attach: the stream must
// resume with the consumed token, pacing the retry by the server's hint
// rather than the (deliberately unaffordable) exponential schedule.
func TestSubscribeReattachHonorsHint(t *testing.T) {
	tokens := make(chan uint64, 8)
	srv := newScriptServer(t, func(n int64, nc net.Conn) {
		if !readHello(t, nc) {
			return
		}
		wire.WriteMessage(nc, &wire.Welcome{Version: wire.Version, Server: "script"})
		msg, err := wire.ReadMessage(nc)
		if err != nil {
			t.Errorf("script server: reading Subscribe: %v", err)
			return
		}
		sub, ok := msg.(*wire.Subscribe)
		if !ok {
			t.Errorf("script server: expected Subscribe, got %T", msg)
			return
		}
		tokens <- sub.Token
		switch n {
		case 1:
			// Deliver one delta, then drop the connection mid-stream.
			wire.WriteMessage(nc, &wire.Subscribed{Seq: 0, Snapshot: true})
			wire.WriteMessage(nc, &wire.Delta{View: sub.View, Seq: 1, Kind: 0,
				Group: 10, Members: []int64{10, 11}})
			return // handler return closes nc: a dead socket
		case 2:
			// Re-attach arrives while "overloaded": shed with a hint.
			wire.WriteMessage(nc, &wire.Error{Code: wire.CodeOverloaded,
				Message: "admission queue full", RetryAfterMS: 25})
		default:
			wire.WriteMessage(nc, &wire.Subscribed{Seq: sub.Token, Snapshot: false})
			wire.WriteMessage(nc, &wire.Delta{View: sub.View, Seq: 2, Kind: 1,
				Group: 10, Members: []int64{12}})
			expectPeerClose(t, nc, "stream conn at test end")
		}
	})

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	start := time.Now()
	sub, err := client.Subscribe(ctx, srv.addr(), "v", client.Options{
		MaxRetries: 3,
		BaseDelay:  hugeDelay,
		MaxDelay:   hugeDelay,
	})
	if err != nil {
		t.Fatalf("subscribe: %v", err)
	}

	read := func(what string) client.Event {
		select {
		case ev, ok := <-sub.Events:
			if !ok {
				t.Fatalf("events closed waiting for %s: %v", what, sub.Err())
			}
			return ev
		case <-time.After(30 * time.Second):
			t.Fatalf("timed out waiting for %s", what)
		}
		panic("unreachable")
	}
	if ev := read("rebase marker"); !ev.Rebase {
		t.Fatalf("first event %+v, want rebase marker", ev)
	}
	if ev := read("first delta"); ev.Delta.Seq != 1 {
		t.Fatalf("first delta %+v, want seq 1", ev.Delta)
	}
	// The connection drops after seq 1; the managed loop must reconnect —
	// riding through the overloaded shed via its hint — and resume at token 1.
	if ev := read("post-reattach delta"); ev.Delta.Seq != 2 {
		t.Fatalf("post-reattach delta %+v, want seq 2", ev.Delta)
	}
	if elapsed := time.Since(start); elapsed > 30*time.Second {
		t.Fatalf("reattach took %v: the 25ms retry-after hint was not honored", elapsed)
	}
	if tok := <-tokens; tok != 0 {
		t.Errorf("first attach token %d, want 0", tok)
	}
	if tok := <-tokens; tok != 1 {
		t.Errorf("shed re-attach token %d, want 1 (the consumed delta)", tok)
	}
	if tok := <-tokens; tok != 1 {
		t.Errorf("successful re-attach token %d, want 1", tok)
	}
	cancel()
}
