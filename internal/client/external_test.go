package client_test

// External-server integration tests: these run against an already-running
// sgbd named by the SGBD_ADDR environment variable, and are skipped
// otherwise. CI builds cmd/sgbd, starts it on a random port, and runs this
// file against the live process — the in-process server tests live in
// internal/server instead.

import (
	"context"
	"errors"
	"fmt"
	"io"
	"os"
	"strings"
	"sync"
	"testing"
	"time"

	"sgb/internal/client"
	"sgb/internal/stream"
)

func externalConn(t *testing.T) *client.Conn {
	t.Helper()
	addr := os.Getenv("SGBD_ADDR")
	if addr == "" {
		t.Skip("SGBD_ADDR not set; skipping external-server test")
	}
	c, err := client.Connect(addr)
	if err != nil {
		t.Fatalf("connect %s: %v", addr, err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

// uniqueTable returns a table name that is distinct per test process run, so
// repeated CI invocations against one server do not collide.
func uniqueTable(prefix string) string {
	return fmt.Sprintf("%s_%d", prefix, time.Now().UnixNano())
}

// TestExternalServerQueries drives a live sgbd end to end: DDL, DML, plain
// and similarity aggregation, and settings changes over the wire.
func TestExternalServerQueries(t *testing.T) {
	c := externalConn(t)
	ctx := context.Background()
	tbl := uniqueTable("ext_pts")
	defer c.Query(ctx, "DROP TABLE "+tbl)

	if _, err := c.Query(ctx, fmt.Sprintf("CREATE TABLE %s (id INT, x FLOAT, y FLOAT)", tbl)); err != nil {
		t.Fatalf("create: %v", err)
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "INSERT INTO %s VALUES ", tbl)
	for i := 0; i < 200; i++ {
		if i > 0 {
			sb.WriteString(", ")
		}
		fmt.Fprintf(&sb, "(%d, %d.5, %d.25)", i, i%13, i%29)
	}
	res, err := c.Query(ctx, sb.String())
	if err != nil {
		t.Fatalf("insert: %v", err)
	}
	if res.RowsAffected != 200 {
		t.Fatalf("rows affected = %d, want 200", res.RowsAffected)
	}

	res, err = c.Query(ctx, fmt.Sprintf(
		"SELECT count(*) FROM %s GROUP BY x, y DISTANCE-TO-ANY L2 WITHIN 1.5 ORDER BY count(*)", tbl))
	if err != nil {
		t.Fatalf("sgb query: %v", err)
	}
	if len(res.Rows) == 0 {
		t.Fatal("sgb query returned no groups")
	}

	if err := c.Set("parallelism", "2"); err != nil {
		t.Fatalf("set parallelism: %v", err)
	}
	if err := c.Ping(ctx); err != nil {
		t.Fatalf("ping: %v", err)
	}
}

// TestExternalServerConcurrentClients hits the live server from several
// connections at once and checks each sees consistent results.
func TestExternalServerConcurrentClients(t *testing.T) {
	addr := os.Getenv("SGBD_ADDR")
	if addr == "" {
		t.Skip("SGBD_ADDR not set; skipping external-server test")
	}
	setup := externalConn(t)
	ctx := context.Background()
	tbl := uniqueTable("ext_conc")
	defer setup.Query(ctx, "DROP TABLE "+tbl)
	if _, err := setup.Query(ctx, fmt.Sprintf("CREATE TABLE %s (k INT, v INT)", tbl)); err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "INSERT INTO %s VALUES ", tbl)
	for i := 0; i < 300; i++ {
		if i > 0 {
			sb.WriteString(", ")
		}
		fmt.Fprintf(&sb, "(%d, %d)", i%7, i)
	}
	if _, err := setup.Query(ctx, sb.String()); err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	for n := 0; n < 4; n++ {
		wg.Add(1)
		go func(n int) {
			defer wg.Done()
			c, err := client.Connect(addr)
			if err != nil {
				t.Errorf("client %d: %v", n, err)
				return
			}
			defer c.Close()
			for i := 0; i < 5; i++ {
				res, err := c.Query(ctx, fmt.Sprintf(
					"SELECT k, count(*), sum(v) FROM %s GROUP BY k ORDER BY k", tbl))
				if err != nil {
					t.Errorf("client %d: %v", n, err)
					return
				}
				if len(res.Rows) != 7 {
					t.Errorf("client %d: got %d groups, want 7", n, len(res.Rows))
					return
				}
			}
		}(n)
	}
	wg.Wait()
}

// TestExternalServerCancel verifies wire cancellation against the live
// process: a long query aborts well under a second and the connection stays
// usable.
func TestExternalServerCancel(t *testing.T) {
	c := externalConn(t)
	bg := context.Background()
	tbl := uniqueTable("ext_cancel")
	defer c.Query(bg, "DROP TABLE "+tbl)
	if _, err := c.Query(bg, fmt.Sprintf("CREATE TABLE %s (id INT, x FLOAT, y FLOAT)", tbl)); err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "INSERT INTO %s VALUES ", tbl)
	for i := 0; i < 2000; i++ {
		if i > 0 {
			sb.WriteString(", ")
		}
		fmt.Fprintf(&sb, "(%d, %d.%d, %d.5)", i, i%97, i%7, i%89)
	}
	if _, err := c.Query(bg, sb.String()); err != nil {
		t.Fatal(err)
	}
	if err := c.Set("sgb_algorithm", "allpairs"); err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithCancel(bg)
	go func() {
		time.Sleep(100 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	_, err := c.Query(ctx, fmt.Sprintf(`SELECT count(*) FROM %s AS a, %s AS b
		GROUP BY a.x, b.y DISTANCE-TO-ALL L2 WITHIN 0.1 ON-OVERLAP FORM-NEW-GROUP`, tbl, tbl))
	elapsed := time.Since(start)
	if err == nil {
		t.Fatal("long query was not canceled")
	}
	if !client.IsCanceled(err) {
		t.Fatalf("want cancellation, got %v", err)
	}
	if elapsed > time.Second {
		t.Fatalf("cancellation took %v", elapsed)
	}
	if _, err := c.Query(bg, fmt.Sprintf("SELECT count(*) FROM %s", tbl)); err != nil {
		t.Fatalf("connection unusable after cancel: %v", err)
	}
}

// TestExternalServerSubscribe drives a materialized view and a live
// subscription against the running sgbd: DDL for the view over the wire, a
// snapshot attach, deltas for committed writes, and a clean detach that
// returns the connection to query duty.
func TestExternalServerSubscribe(t *testing.T) {
	addr := os.Getenv("SGBD_ADDR")
	if addr == "" {
		t.Skip("SGBD_ADDR not set; skipping external-server test")
	}
	c := externalConn(t)
	ctx := context.Background()
	tbl := uniqueTable("ext_stream")
	view := tbl + "_v"
	defer c.Query(ctx, "DROP TABLE "+tbl)
	defer c.Query(ctx, "DROP MATERIALIZED VIEW "+view)

	if _, err := c.Query(ctx, fmt.Sprintf("CREATE TABLE %s (x FLOAT, y FLOAT)", tbl)); err != nil {
		t.Fatalf("create table: %v", err)
	}
	if _, err := c.Query(ctx, fmt.Sprintf(
		"CREATE MATERIALIZED VIEW %s AS SELECT x, y FROM %s GROUP BY x, y DISTANCE-TO-ANY L2 WITHIN 1.5", view, tbl)); err != nil {
		t.Fatalf("create view: %v", err)
	}

	// Managed subscription on its own connection; the plain connection writes.
	subCtx, cancel := context.WithCancel(ctx)
	defer cancel()
	sub, err := client.Subscribe(subCtx, addr, view)
	if err != nil {
		t.Fatalf("subscribe: %v", err)
	}
	const groups = 5
	for i := 0; i < groups; i++ {
		if _, err := c.Query(ctx, fmt.Sprintf("INSERT INTO %s VALUES (%d.0, 0.5)", tbl, i*10)); err != nil {
			t.Fatalf("insert %d: %v", i, err)
		}
	}
	state := make(map[int64][]int64)
	deadline := time.After(30 * time.Second)
	for len(state) < groups {
		select {
		case ev, ok := <-sub.Events:
			if !ok {
				t.Fatalf("events closed early: %v", sub.Err())
			}
			if ev.Rebase {
				state = make(map[int64][]int64)
				continue
			}
			stream.Apply(state, ev.Delta)
		case <-deadline:
			t.Fatalf("saw %d groups, want %d", len(state), groups)
		}
	}
	total := 0
	for _, ms := range state {
		total += len(ms)
	}
	if total != groups {
		t.Fatalf("replayed state covers %d rows, want %d", total, groups)
	}
	cancel()
	for range sub.Events {
	}
	if err := sub.Err(); err != nil && !errors.Is(err, context.Canceled) && !errors.Is(err, io.EOF) {
		t.Fatalf("subscription error after cancel: %v", err)
	}

	// The writing connection is still a plain query connection.
	res, err := c.Query(ctx, fmt.Sprintf("SELECT count(*) FROM %s", tbl))
	if err != nil {
		t.Fatalf("query after subscribe test: %v", err)
	}
	if res.Rows[0][0].I != groups {
		t.Fatalf("count = %d, want %d", res.Rows[0][0].I, groups)
	}
}

// TestExternalServerStats scrapes the wire Stats message and checks the
// server gauges are present.
func TestExternalServerStats(t *testing.T) {
	c := externalConn(t)
	text, err := c.Stats()
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{
		"server_connections_open", "server_connections_total",
		"server_sessions_active", "server_bytes_in_total", "server_bytes_out_total",
	} {
		if !strings.Contains(text, name) {
			t.Errorf("stats missing %s", name)
		}
	}
}
