package client

import (
	"context"
	"errors"
	"fmt"
	"io"
	"sync"
	"time"

	"sgb/internal/stream"
	"sgb/internal/wire"
)

// Delta is the client-side view delta; it is the stream layer's type, so
// consumers share the canonical replay semantics (stream.Apply).
type Delta = stream.Delta

// SubStream is a live subscription conversation on a single connection
// (SubscribeOnce). The connection is dedicated to the stream until Close.
type SubStream struct {
	c *Conn
	// Seq is the stream's resume baseline from the Subscribed reply: the
	// token the server resumed after (or, under Snapshot, the sequence the
	// state image carries).
	Seq uint64
	// Snapshot reports that the presented token predated the server's delta
	// retention: the consumer must discard local state, and the first deltas
	// are a full state image (one GroupCreated per group).
	Snapshot bool

	done bool
}

// SubscribeOnce attaches this connection to a materialized view's delta
// stream, resuming after token (0 = from the server's current retention
// floor, which yields a snapshot image). The connection is occupied until the
// stream ends; use Next to read deltas and Close for a clean detach. Requires
// a v3 server.
func (c *Conn) SubscribeOnce(view string, token uint64) (*SubStream, error) {
	if c.version < 3 {
		return nil, fmt.Errorf("client: server speaks protocol %d; subscriptions require 3", c.version)
	}
	c.qmu.Lock()
	if err := c.writeMsg(&wire.Subscribe{View: view, Token: token}); err != nil {
		c.qmu.Unlock()
		return nil, err
	}
	msg, err := wire.ReadMessage(c.nc)
	if err != nil {
		c.qmu.Unlock()
		return nil, err
	}
	switch m := msg.(type) {
	case *wire.Subscribed:
		return &SubStream{c: c, Seq: m.Seq, Snapshot: m.Snapshot}, nil
	case *wire.Error:
		c.qmu.Unlock()
		return nil, m
	default:
		c.qmu.Unlock()
		return nil, fmt.Errorf("client: unexpected %T to Subscribe", msg)
	}
}

// Next blocks for the next delta. io.EOF reports a clean end (after Close's
// Cancel); any other error means the stream broke — reconnect and resume with
// the Seq of the last delta consumed.
func (s *SubStream) Next() (Delta, error) {
	if s.done {
		return Delta{}, io.EOF
	}
	msg, err := wire.ReadMessage(s.c.nc)
	if err != nil {
		s.finish()
		return Delta{}, err
	}
	switch m := msg.(type) {
	case *wire.Delta:
		return Delta{
			View:    m.View,
			Seq:     m.Seq,
			Kind:    stream.DeltaKind(m.Kind),
			Group:   m.Group,
			Members: m.Members,
			Merged:  m.Merged,
		}, nil
	case *wire.Done:
		s.finish()
		return Delta{}, io.EOF
	case *wire.Error:
		s.finish()
		return Delta{}, m
	default:
		s.finish()
		return Delta{}, fmt.Errorf("client: unexpected %T mid-subscription", msg)
	}
}

// Close cancels the subscription and drains to the server's Done, returning
// the connection to the idle state for further queries.
func (s *SubStream) Close() error {
	if s.done {
		return nil
	}
	if err := s.c.Cancel(); err != nil {
		s.finish()
		return err
	}
	for {
		msg, err := wire.ReadMessage(s.c.nc)
		if err != nil {
			s.finish()
			return err
		}
		switch msg.(type) {
		case *wire.Delta:
			// In-flight deltas between our Cancel and the server's Done.
		case *wire.Done, *wire.Error:
			s.finish()
			return nil
		default:
			s.finish()
			return fmt.Errorf("client: unexpected %T draining subscription", msg)
		}
	}
}

// finish releases the conversation lock once.
func (s *SubStream) finish() {
	if !s.done {
		s.done = true
		s.c.qmu.Unlock()
	}
}

// Event is one notification from a managed Subscription. Rebase marks a
// resume that landed past the server's delta retention: the consumer discards
// its local group state, and the deltas that follow begin with a full state
// image. Otherwise Delta carries the next state transition; apply it with
// stream.Apply.
type Event struct {
	Delta  Delta
	Rebase bool
}

// Subscription is a managed, auto-reconnecting delta stream created by
// Subscribe. Events delivers in Seq order across reconnects with no loss or
// duplication for consumed sequences (the resume token advances only as
// events are delivered). The channel closes when the context ends, the server
// reports a permanent error, or reconnection attempts are exhausted; Err
// explains which.
type Subscription struct {
	Events <-chan Event

	mu  sync.Mutex
	err error
}

// Err reports why Events closed (nil after a clean context end).
func (s *Subscription) Err() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.err
}

func (s *Subscription) setErr(err error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.err == nil {
		s.err = err
	}
}

// Subscribe opens a managed subscription to view on the server at addr,
// starting from token 0 (a fresh snapshot). Dial, handshake, and every
// reconnect use o's retry/backoff policy (the same schedule ConnectContext
// applies); between stream breaks the resume token is the last delivered
// delta's Seq, so a server restart — even a kill -9, since WAL replay
// regenerates delta history deterministically — continues the stream without
// losing or duplicating consumed deltas.
func Subscribe(ctx context.Context, addr, view string, opts ...Options) (*Subscription, error) {
	var o Options
	if len(opts) > 0 {
		o = opts[0]
	}
	if o.BaseDelay <= 0 {
		o.BaseDelay = 50 * time.Millisecond
	}
	if o.MaxDelay <= 0 {
		o.MaxDelay = 2 * time.Second
	}

	events := make(chan Event, 64)
	sub := &Subscription{Events: events}

	// First attach synchronously so an unknown view or protocol problem is an
	// immediate error rather than a closed channel.
	conn, ss, err := subscribeAttach(ctx, addr, view, 0, o)
	if err != nil {
		return nil, err
	}

	go func() {
		defer close(events)
		token := ss.Seq
		rebase := ss.Snapshot
		for {
			token, err = pumpStream(ctx, ss, events, token, rebase)
			// The conn is dedicated to the finished stream cycle; force the
			// socket shut rather than Close(), which waits on the
			// conversation lock the stream may still hold.
			ss.finish()
			conn.closeSocket()
			if err == nil || ctx.Err() != nil {
				if ctx.Err() != nil && !errors.Is(err, io.EOF) {
					sub.setErr(ctx.Err())
				}
				return
			}
			// Stream broke: reconnect with backoff and resume after token.
			conn, ss, err = subscribeAttach(ctx, addr, view, token, o)
			if err != nil {
				sub.setErr(err)
				return
			}
			rebase = ss.Snapshot
			if ss.Snapshot {
				token = ss.Seq
			}
		}
	}()
	return sub, nil
}

// subscribeAttach dials (with retry/backoff) and attaches to the view. A
// failed attach on a fresh connection is retried under the same policy when
// retryable — a restarting server refuses dials and may briefly not know the
// view while replaying.
func subscribeAttach(ctx context.Context, addr, view string, token uint64, o Options) (*Conn, *SubStream, error) {
	var lastErr error
	for attempt := 0; ; attempt++ {
		if ctx.Err() != nil {
			return nil, nil, ctx.Err()
		}
		conn, err := ConnectContext(ctx, addr, Options{BaseDelay: o.BaseDelay, MaxDelay: o.MaxDelay})
		if err == nil {
			var ss *SubStream
			ss, err = conn.SubscribeOnce(view, token)
			if err == nil {
				return conn, ss, nil
			}
			conn.Close()
		}
		lastErr = err
		if attempt >= o.MaxRetries || !retryable(err) {
			return nil, nil, lastErr
		}
		// Same schedule as ConnectContext, honoring a server retry-after hint
		// (e.g. a degraded store still replaying after a disk fault).
		select {
		case <-time.After(backoffDelay(err, attempt, o)):
		case <-ctx.Done():
			return nil, nil, ctx.Err()
		}
	}
}

// pumpStream forwards deltas to events until the stream ends, returning the
// last delivered Seq. A nil error is a clean end; rebase emits the discard
// marker before the first delta.
func pumpStream(ctx context.Context, ss *SubStream, events chan<- Event, token uint64, rebase bool) (uint64, error) {
	if rebase {
		select {
		case events <- Event{Rebase: true}:
		case <-ctx.Done():
			return token, nil
		}
	}
	// A context watcher force-closes the socket so a blocked read unblocks;
	// the connection is dedicated to this stream cycle, so that is safe.
	stop := make(chan struct{})
	defer close(stop)
	go func() {
		select {
		case <-ctx.Done():
			ss.c.closeSocket()
		case <-stop:
		}
	}()
	for {
		d, err := ss.Next()
		if err != nil {
			if ctx.Err() != nil {
				return token, nil
			}
			// io.EOF included: the managed loop never sends Cancel, so a
			// server Done is unsolicited and a raw EOF is a dead socket —
			// either way the stream broke; reconnect and resume.
			return token, err
		}
		select {
		case events <- Event{Delta: d}:
			token = d.Seq
		case <-ctx.Done():
			return token, nil
		}
	}
}
