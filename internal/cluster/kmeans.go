// Package cluster provides the standalone clustering baselines the paper
// compares against in §8.6 (Figure 11): K-means, DBSCAN and BIRCH. They are
// deliberately faithful to the classic formulations — in particular they are
// multi-pass, which is the structural reason the single-pass SGB operators
// outperform them.
package cluster

import (
	"fmt"
	"math"
	"math/rand"

	"sgb/internal/geom"
)

// KMeansResult is the outcome of Lloyd's algorithm.
type KMeansResult struct {
	// Assignments maps each input point to its cluster index in [0, k).
	Assignments []int
	// Centroids holds the final cluster centres.
	Centroids []geom.Point
	// Iterations is the number of assignment/update passes performed.
	Iterations int
	// Converged reports whether the assignment reached a fixed point
	// before the iteration cap.
	Converged bool
}

// KMeans runs Lloyd's algorithm with k-means++ seeding (Kanungo et al. style
// refinement loop) until convergence or maxIter passes. The seed makes runs
// reproducible.
func KMeans(points []geom.Point, k, maxIter int, seed int64) (*KMeansResult, error) {
	if k <= 0 {
		return nil, fmt.Errorf("cluster: k must be positive, got %d", k)
	}
	if len(points) == 0 {
		return &KMeansResult{Converged: true}, nil
	}
	if k > len(points) {
		k = len(points)
	}
	if maxIter <= 0 {
		maxIter = 100
	}
	r := rand.New(rand.NewSource(seed))
	dim := len(points[0])
	centroids := seedPlusPlus(points, k, r)
	assign := make([]int, len(points))
	res := &KMeansResult{}
	for iter := 0; iter < maxIter; iter++ {
		res.Iterations = iter + 1
		changed := false
		for i, p := range points {
			best, bestD := 0, math.Inf(1)
			for c, ctr := range centroids {
				if d := sqDist(p, ctr); d < bestD {
					best, bestD = c, d
				}
			}
			if assign[i] != best {
				assign[i] = best
				changed = true
			}
		}
		if !changed && iter > 0 {
			res.Converged = true
			break
		}
		// Update step.
		counts := make([]int, k)
		sums := make([]geom.Point, k)
		for c := range sums {
			sums[c] = make(geom.Point, dim)
		}
		for i, p := range points {
			c := assign[i]
			counts[c]++
			for d := range p {
				sums[c][d] += p[d]
			}
		}
		for c := range centroids {
			if counts[c] == 0 {
				// Re-seed an empty cluster at a random point.
				centroids[c] = points[r.Intn(len(points))].Clone()
				continue
			}
			for d := range sums[c] {
				sums[c][d] /= float64(counts[c])
			}
			centroids[c] = sums[c]
		}
	}
	res.Assignments = assign
	res.Centroids = centroids
	return res, nil
}

// seedPlusPlus picks initial centres with the k-means++ D² weighting.
func seedPlusPlus(points []geom.Point, k int, r *rand.Rand) []geom.Point {
	centroids := make([]geom.Point, 0, k)
	centroids = append(centroids, points[r.Intn(len(points))].Clone())
	d2 := make([]float64, len(points))
	for len(centroids) < k {
		var total float64
		last := centroids[len(centroids)-1]
		for i, p := range points {
			d := sqDist(p, last)
			if len(centroids) == 1 || d < d2[i] {
				d2[i] = d
			}
			total += d2[i]
		}
		if total == 0 {
			// All remaining points coincide with a centre.
			centroids = append(centroids, points[r.Intn(len(points))].Clone())
			continue
		}
		target := r.Float64() * total
		idx := len(points) - 1
		var acc float64
		for i := range points {
			acc += d2[i]
			if acc >= target {
				idx = i
				break
			}
		}
		centroids = append(centroids, points[idx].Clone())
	}
	return centroids
}

func sqDist(p, q geom.Point) float64 {
	var s float64
	for i := range p {
		d := p[i] - q[i]
		s += d * d
	}
	return s
}
