package cluster

import (
	"fmt"
	"math"

	"sgb/internal/geom"
)

// cf is a clustering feature: the (N, LS, SS) summary of a sub-cluster
// (Zhang, Ramakrishnan & Livny 1996).
type cf struct {
	n  int
	ls geom.Point // linear sum
	ss float64    // sum of squared norms
}

func newCF(dim int) *cf { return &cf{ls: make(geom.Point, dim)} }

func (c *cf) add(p geom.Point) {
	c.n++
	for i, v := range p {
		c.ls[i] += v
	}
	c.ss += sqNorm(p)
}

func (c *cf) merge(o *cf) {
	c.n += o.n
	for i, v := range o.ls {
		c.ls[i] += v
	}
	c.ss += o.ss
}

// centroid returns the CF centroid LS/N.
func (c *cf) centroid() geom.Point {
	out := make(geom.Point, len(c.ls))
	for i, v := range c.ls {
		out[i] = v / float64(c.n)
	}
	return out
}

// radiusWith returns the cluster radius after hypothetically absorbing p:
// sqrt(SS/N − ‖LS/N‖²) over the merged feature.
func (c *cf) radiusWith(p geom.Point) float64 {
	n := float64(c.n + 1)
	var lsSq float64
	for i, v := range c.ls {
		s := v + p[i]
		lsSq += s * s
	}
	ss := c.ss + sqNorm(p)
	v := ss/n - lsSq/(n*n)
	if v < 0 {
		v = 0 // numerical noise on tight clusters
	}
	return math.Sqrt(v)
}

func sqNorm(p geom.Point) float64 {
	var s float64
	for _, v := range p {
		s += v * v
	}
	return s
}

// cfNode is a CF-tree node.
type cfNode struct {
	leaf     bool
	features []*cf     // per-entry summaries
	children []*cfNode // internal nodes only, parallel to features
}

// BIRCHResult is the outcome of a BIRCH run.
type BIRCHResult struct {
	// Assignments maps each input point to a final cluster in [0, k).
	Assignments []int
	// Centroids holds the final cluster centres.
	Centroids []geom.Point
	// LeafEntries is the number of CF entries after phase 1 — the size of
	// the summary the global clustering phase operates on.
	LeafEntries int
}

// BIRCH clusters points with a two-phase BIRCH: phase 1 builds a CF-tree
// with the given radius threshold and branching factor, phase 3 runs a
// weighted k-means over the leaf CF centroids, and points inherit the
// cluster of their nearest leaf entry. Like the original, it scans the data
// once to build the tree and once more to assign points — plus the k-means
// passes over the (much smaller) summary.
func BIRCH(points []geom.Point, threshold float64, branching, k int, seed int64) (*BIRCHResult, error) {
	if !(threshold > 0) {
		return nil, fmt.Errorf("cluster: threshold must be positive, got %v", threshold)
	}
	if branching < 2 {
		return nil, fmt.Errorf("cluster: branching factor must be >= 2, got %d", branching)
	}
	if k <= 0 {
		return nil, fmt.Errorf("cluster: k must be positive, got %d", k)
	}
	res := &BIRCHResult{}
	if len(points) == 0 {
		return res, nil
	}
	dim := len(points[0])
	t := &cfTree{threshold: threshold, branching: branching, dim: dim,
		root: &cfNode{leaf: true}}
	for i, p := range points {
		if len(p) != dim {
			return nil, fmt.Errorf("cluster: point %d has dimension %d, want %d", i, len(p), dim)
		}
		t.insert(p)
	}

	// Collect leaf entries.
	var leaves []*cf
	var walk func(n *cfNode)
	walk = func(n *cfNode) {
		if n.leaf {
			leaves = append(leaves, n.features...)
			return
		}
		for _, c := range n.children {
			walk(c)
		}
	}
	walk(t.root)
	res.LeafEntries = len(leaves)

	// Phase 3: weighted k-means over leaf centroids. Weights are applied by
	// replicating the centroid contribution in the update step.
	centroids := make([]geom.Point, len(leaves))
	weights := make([]float64, len(leaves))
	for i, c := range leaves {
		centroids[i] = c.centroid()
		weights[i] = float64(c.n)
	}
	labels, centres := weightedKMeans(centroids, weights, k, 50, seed)

	// Map original points to their nearest leaf entry's cluster.
	res.Assignments = make([]int, len(points))
	for i, p := range points {
		best, bestD := 0, math.Inf(1)
		for j := range centroids {
			if d := sqDist(p, centroids[j]); d < bestD {
				best, bestD = j, d
			}
		}
		res.Assignments[i] = labels[best]
	}
	res.Centroids = centres
	return res, nil
}

type cfTree struct {
	threshold float64
	branching int
	dim       int
	root      *cfNode
}

// insert descends to the closest leaf entry, absorbing p if the merged
// radius stays under the threshold and adding a new entry otherwise;
// overflowing nodes split on the farthest-pair seeds.
func (t *cfTree) insert(p geom.Point) {
	if split := t.insertAt(t.root, p); split != nil {
		old := t.root
		t.root = &cfNode{
			leaf:     false,
			features: []*cf{sumNode(old, t.dim), sumNode(split, t.dim)},
			children: []*cfNode{old, split},
		}
	}
}

// insertAt inserts p under n and returns a new sibling if n split.
func (t *cfTree) insertAt(n *cfNode, p geom.Point) *cfNode {
	if n.leaf {
		if len(n.features) > 0 {
			best, bestD := 0, math.Inf(1)
			for i, f := range n.features {
				if d := sqDist(f.centroid(), p); d < bestD {
					best, bestD = i, d
				}
			}
			if n.features[best].radiusWith(p) <= t.threshold {
				n.features[best].add(p)
				return nil
			}
		}
		f := newCF(t.dim)
		f.add(p)
		n.features = append(n.features, f)
		if len(n.features) > t.branching {
			return t.split(n)
		}
		return nil
	}
	best, bestD := 0, math.Inf(1)
	for i, f := range n.features {
		if d := sqDist(f.centroid(), p); d < bestD {
			best, bestD = i, d
		}
	}
	child := n.children[best]
	split := t.insertAt(child, p)
	n.features[best] = sumNode(child, t.dim)
	if split == nil {
		return nil
	}
	n.features = append(n.features, sumNode(split, t.dim))
	n.children = append(n.children, split)
	if len(n.children) > t.branching {
		return t.split(n)
	}
	return nil
}

// split divides n's entries between n and a new sibling using the two
// farthest centroids as seeds.
func (t *cfTree) split(n *cfNode) *cfNode {
	si, sj, worst := 0, 1, -1.0
	for i := range n.features {
		for j := i + 1; j < len(n.features); j++ {
			if d := sqDist(n.features[i].centroid(), n.features[j].centroid()); d > worst {
				si, sj, worst = i, j, d
			}
		}
	}
	sib := &cfNode{leaf: n.leaf}
	keepF := n.features[:0:0]
	var keepC []*cfNode
	for i, f := range n.features {
		toSib := sqDist(f.centroid(), n.features[sj].centroid()) <
			sqDist(f.centroid(), n.features[si].centroid())
		if i == sj {
			toSib = true
		}
		if i == si {
			toSib = false
		}
		if toSib {
			sib.features = append(sib.features, f)
			if !n.leaf {
				sib.children = append(sib.children, n.children[i])
			}
		} else {
			keepF = append(keepF, f)
			if !n.leaf {
				keepC = append(keepC, n.children[i])
			}
		}
	}
	n.features = keepF
	n.children = keepC
	return sib
}

// sumNode summarizes a node as a single CF for its parent entry.
func sumNode(n *cfNode, dim int) *cf {
	out := newCF(dim)
	for _, f := range n.features {
		out.merge(f)
	}
	return out
}

// weightedKMeans is Lloyd's algorithm over weighted points.
func weightedKMeans(points []geom.Point, weights []float64, k, maxIter int, seed int64) ([]int, []geom.Point) {
	if k > len(points) {
		k = len(points)
	}
	if k == 0 {
		return nil, nil
	}
	dim := len(points[0])
	// Deterministic spread seeding over the weighted points.
	r := newLCG(seed)
	centroids := make([]geom.Point, k)
	for i := range centroids {
		centroids[i] = points[int(r.next()%uint64(len(points)))].Clone()
	}
	labels := make([]int, len(points))
	for iter := 0; iter < maxIter; iter++ {
		changed := false
		for i, p := range points {
			best, bestD := 0, math.Inf(1)
			for c := range centroids {
				if d := sqDist(p, centroids[c]); d < bestD {
					best, bestD = c, d
				}
			}
			if labels[i] != best {
				labels[i] = best
				changed = true
			}
		}
		if !changed && iter > 0 {
			break
		}
		sums := make([]geom.Point, k)
		totals := make([]float64, k)
		for c := range sums {
			sums[c] = make(geom.Point, dim)
		}
		for i, p := range points {
			c := labels[i]
			totals[c] += weights[i]
			for d := range p {
				sums[c][d] += p[d] * weights[i]
			}
		}
		for c := range centroids {
			if totals[c] == 0 {
				centroids[c] = points[int(r.next()%uint64(len(points)))].Clone()
				continue
			}
			for d := range sums[c] {
				sums[c][d] /= totals[c]
			}
			centroids[c] = sums[c]
		}
	}
	return labels, centroids
}

// lcg is a tiny deterministic generator so BIRCH does not share rand state
// with callers.
type lcg struct{ s uint64 }

func newLCG(seed int64) *lcg { return &lcg{s: uint64(seed)*2862933555777941757 + 3037000493} }

func (l *lcg) next() uint64 {
	l.s = l.s*6364136223846793005 + 1442695040888963407
	return l.s >> 1
}
