package cluster

import (
	"fmt"
	"math"
	"math/rand"

	"sgb/internal/geom"
)

// CUREResult is the outcome of a CURE run.
type CUREResult struct {
	// Assignments maps each input point to a cluster in [0, k).
	Assignments []int
	// Representatives holds, per cluster, the shrunken representative
	// points used for the final assignment.
	Representatives [][]geom.Point
}

// CURE implements the hierarchical clustering of Guha, Rastogi & Shim
// (1998), cited by the paper's related work: clusters are summarized by a
// set of well-scattered representative points shrunk toward the centroid by
// factor alpha, and merged agglomeratively by closest representative pair
// until k clusters remain. For tractability on large inputs the
// agglomeration runs on a random sample (sampleSize; <=0 picks
// min(n, 1000)), and the remaining points join the cluster of their nearest
// representative — the partitioning shortcut the original paper also uses.
func CURE(points []geom.Point, k, numReps int, alpha float64, sampleSize int, seed int64) (*CUREResult, error) {
	if k <= 0 {
		return nil, fmt.Errorf("cluster: k must be positive, got %d", k)
	}
	if numReps <= 0 {
		return nil, fmt.Errorf("cluster: numReps must be positive, got %d", numReps)
	}
	if alpha < 0 || alpha > 1 {
		return nil, fmt.Errorf("cluster: shrink factor must be in [0,1], got %v", alpha)
	}
	res := &CUREResult{}
	if len(points) == 0 {
		return res, nil
	}
	dim := len(points[0])
	for i, p := range points {
		if len(p) != dim {
			return nil, fmt.Errorf("cluster: point %d has dimension %d, want %d", i, len(p), dim)
		}
	}
	if sampleSize <= 0 {
		sampleSize = 1000
	}
	if sampleSize > len(points) {
		sampleSize = len(points)
	}
	if k > sampleSize {
		k = sampleSize
	}

	r := rand.New(rand.NewSource(seed))
	sample := r.Perm(len(points))[:sampleSize]

	// Each sample point starts as its own cluster.
	type cureCluster struct {
		members  []int
		centroid geom.Point
		reps     []geom.Point
	}
	clusters := make([]*cureCluster, 0, sampleSize)
	for _, idx := range sample {
		clusters = append(clusters, &cureCluster{
			members:  []int{idx},
			centroid: points[idx].Clone(),
			reps:     []geom.Point{points[idx].Clone()},
		})
	}

	repDist := func(a, b *cureCluster) float64 {
		best := math.Inf(1)
		for _, pa := range a.reps {
			for _, pb := range b.reps {
				if d := geom.Dist(geom.L2, pa, pb); d < best {
					best = d
				}
			}
		}
		return best
	}

	rebuildReps := func(c *cureCluster) {
		// Centroid.
		cen := make(geom.Point, dim)
		for _, m := range c.members {
			for d, v := range points[m] {
				cen[d] += v
			}
		}
		for d := range cen {
			cen[d] /= float64(len(c.members))
		}
		c.centroid = cen
		// Well-scattered representatives: farthest-point heuristic.
		var reps []geom.Point
		for len(reps) < numReps && len(reps) < len(c.members) {
			var best geom.Point
			bestD := -1.0
			for _, m := range c.members {
				p := points[m]
				var d float64
				if len(reps) == 0 {
					d = geom.Dist(geom.L2, p, cen)
				} else {
					d = math.Inf(1)
					for _, rp := range reps {
						if dd := geom.Dist(geom.L2, p, rp); dd < d {
							d = dd
						}
					}
				}
				if d > bestD {
					bestD, best = d, p
				}
			}
			reps = append(reps, best.Clone())
		}
		// Shrink toward the centroid.
		for _, rp := range reps {
			for d := range rp {
				rp[d] += alpha * (cen[d] - rp[d])
			}
		}
		c.reps = reps
	}

	// Agglomerate the closest pair until k clusters remain.
	for len(clusters) > k {
		bi, bj, bd := 0, 1, math.Inf(1)
		for i := 0; i < len(clusters); i++ {
			for j := i + 1; j < len(clusters); j++ {
				if d := repDist(clusters[i], clusters[j]); d < bd {
					bi, bj, bd = i, j, d
				}
			}
		}
		clusters[bi].members = append(clusters[bi].members, clusters[bj].members...)
		rebuildReps(clusters[bi])
		clusters[bj] = clusters[len(clusters)-1]
		clusters = clusters[:len(clusters)-1]
	}

	// Assign every point to the cluster of its nearest representative.
	res.Assignments = make([]int, len(points))
	res.Representatives = make([][]geom.Point, len(clusters))
	for ci, c := range clusters {
		res.Representatives[ci] = c.reps
	}
	for i, p := range points {
		best, bd := 0, math.Inf(1)
		for ci, c := range clusters {
			for _, rp := range c.reps {
				if d := geom.Dist(geom.L2, p, rp); d < bd {
					best, bd = ci, d
				}
			}
		}
		res.Assignments[i] = best
	}
	return res, nil
}
