package cluster

import (
	"fmt"

	"sgb/internal/geom"
	"sgb/internal/rtree"
)

// Noise is the DBSCAN label assigned to points in no cluster.
const Noise = -1

// DBSCANResult is the outcome of a DBSCAN run.
type DBSCANResult struct {
	// Labels maps each input point to a cluster id in [0, Clusters), or
	// Noise.
	Labels []int
	// Clusters is the number of clusters discovered.
	Clusters int
	// NoisePoints is the number of points labelled Noise.
	NoisePoints int
	// RegionQueries counts ε-neighbourhood queries issued (each is one
	// R-tree window query plus exact distance verification).
	RegionQueries int64
}

// DBSCAN runs density-based clustering (Ester et al. 1996) with ε-region
// queries served by a pre-built R-tree over all points — the
// "state-of-the-art implementation of DBSCAN with an R-tree" configuration
// the paper benchmarks against.
func DBSCAN(points []geom.Point, m geom.Metric, eps float64, minPts int) (*DBSCANResult, error) {
	if !(eps > 0) {
		return nil, fmt.Errorf("cluster: eps must be positive, got %v", eps)
	}
	if minPts < 1 {
		return nil, fmt.Errorf("cluster: minPts must be >= 1, got %d", minPts)
	}
	res := &DBSCANResult{Labels: make([]int, len(points))}
	if len(points) == 0 {
		return res, nil
	}
	dim := len(points[0])
	entries := make([]rtree.BulkEntry, len(points))
	for i, p := range points {
		if len(p) != dim {
			return nil, fmt.Errorf("cluster: point %d has dimension %d, want %d", i, len(p), dim)
		}
		entries[i] = rtree.BulkEntry{Rect: geom.PointRect(p), Ref: int64(i)}
	}
	// The point set is static, so an STR-packed tree serves the region
	// queries with near-full node occupancy.
	tree := rtree.BulkLoad(dim, entries)

	const unvisited = -2
	for i := range res.Labels {
		res.Labels[i] = unvisited
	}
	region := func(i int) []int {
		res.RegionQueries++
		var out []int
		tree.Search(geom.BoxAround(points[i], eps), func(ref int64) bool {
			j := int(ref)
			if geom.Within(m, points[i], points[j], eps) {
				out = append(out, j)
			}
			return true
		})
		return out
	}

	cluster := 0
	for i := range points {
		if res.Labels[i] != unvisited {
			continue
		}
		neigh := region(i)
		if len(neigh) < minPts {
			res.Labels[i] = Noise
			continue
		}
		// Expand a new cluster from this core point. Only unvisited points
		// enter the frontier (visited and noise points are labelled
		// immediately), which bounds the queue by n even on dense data.
		res.Labels[i] = cluster
		var queue []int
		for _, j := range neigh {
			if res.Labels[j] == unvisited {
				res.Labels[j] = cluster
				queue = append(queue, j)
			} else if res.Labels[j] == Noise {
				res.Labels[j] = cluster // border point
			}
		}
		for len(queue) > 0 {
			j := queue[len(queue)-1]
			queue = queue[:len(queue)-1]
			jn := region(j)
			if len(jn) < minPts {
				continue // border point: keeps its label, expands nothing
			}
			for _, k := range jn {
				if res.Labels[k] == unvisited {
					res.Labels[k] = cluster
					queue = append(queue, k)
				} else if res.Labels[k] == Noise {
					res.Labels[k] = cluster
				}
			}
		}
		cluster++
	}
	res.Clusters = cluster
	for _, l := range res.Labels {
		if l == Noise {
			res.NoisePoints++
		}
	}
	return res, nil
}
