package cluster

import (
	"math"
	"math/rand"
	"testing"

	"sgb/internal/geom"
)

// blobs generates g well-separated Gaussian blobs of n points each and
// returns the points with their ground-truth labels.
func blobs(r *rand.Rand, g, n int, spread, sep float64) ([]geom.Point, []int) {
	var pts []geom.Point
	var labels []int
	for c := 0; c < g; c++ {
		cx := float64(c) * sep
		cy := float64(c%2) * sep
		for i := 0; i < n; i++ {
			pts = append(pts, geom.Point{cx + r.NormFloat64()*spread, cy + r.NormFloat64()*spread})
			labels = append(labels, c)
		}
	}
	return pts, labels
}

// purity measures how well an assignment recovers ground-truth blobs:
// the fraction of points whose cluster's majority label matches their own.
func purity(assign, truth []int) float64 {
	type key struct{ c, t int }
	counts := map[key]int{}
	clusterSize := map[int]int{}
	for i := range assign {
		counts[key{assign[i], truth[i]}]++
		clusterSize[assign[i]]++
	}
	majority := map[int]int{}
	for k, n := range counts {
		if n > majority[k.c] {
			majority[k.c] = n
		}
	}
	var correct int
	for _, n := range majority {
		correct += n
	}
	return float64(correct) / float64(len(assign))
}

func TestKMeansRecoversBlobs(t *testing.T) {
	r := rand.New(rand.NewSource(70))
	pts, truth := blobs(r, 4, 100, 0.3, 10)
	res, err := KMeans(pts, 4, 100, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Assignments) != len(pts) || len(res.Centroids) != 4 {
		t.Fatalf("shape wrong: %d assignments, %d centroids", len(res.Assignments), len(res.Centroids))
	}
	if p := purity(res.Assignments, truth); p < 0.95 {
		t.Fatalf("k-means purity %.3f on well-separated blobs", p)
	}
	if !res.Converged {
		t.Error("k-means did not converge on easy blobs")
	}
}

func TestKMeansEdgeCases(t *testing.T) {
	if _, err := KMeans(nil, 0, 10, 1); err == nil {
		t.Error("accepted k=0")
	}
	res, err := KMeans(nil, 3, 10, 1)
	if err != nil || len(res.Assignments) != 0 {
		t.Errorf("empty input: %v %v", res, err)
	}
	// k larger than the input collapses to one point per cluster.
	pts := []geom.Point{{0, 0}, {5, 5}}
	res, err = KMeans(pts, 10, 10, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Centroids) != 2 {
		t.Errorf("k was not clamped: %d centroids", len(res.Centroids))
	}
	// Identical points: must terminate and put everything together.
	same := []geom.Point{{1, 1}, {1, 1}, {1, 1}, {1, 1}}
	res, err = KMeans(same, 2, 10, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Assignments) != 4 {
		t.Error("identical-point input mishandled")
	}
}

func TestKMeansDeterministicForSeed(t *testing.T) {
	r := rand.New(rand.NewSource(71))
	pts, _ := blobs(r, 3, 50, 0.5, 8)
	a, err := KMeans(pts, 3, 50, 42)
	if err != nil {
		t.Fatal(err)
	}
	b, err := KMeans(pts, 3, 50, 42)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Assignments {
		if a.Assignments[i] != b.Assignments[i] {
			t.Fatal("same seed produced different assignments")
		}
	}
}

func TestDBSCANRecoversBlobs(t *testing.T) {
	r := rand.New(rand.NewSource(72))
	pts, truth := blobs(r, 3, 150, 0.3, 10)
	res, err := DBSCAN(pts, geom.L2, 0.8, 4)
	if err != nil {
		t.Fatal(err)
	}
	if res.Clusters != 3 {
		t.Fatalf("DBSCAN found %d clusters, want 3 (noise=%d)", res.Clusters, res.NoisePoints)
	}
	// Exclude noise from the purity computation.
	var a, tr []int
	for i, l := range res.Labels {
		if l != Noise {
			a = append(a, l)
			tr = append(tr, truth[i])
		}
	}
	if p := purity(a, tr); p < 0.99 {
		t.Fatalf("DBSCAN purity %.3f", p)
	}
	if res.RegionQueries == 0 {
		t.Error("region query counter not populated")
	}
}

func TestDBSCANNoise(t *testing.T) {
	// A tight blob plus far-away isolated points: isolates become noise.
	r := rand.New(rand.NewSource(73))
	var pts []geom.Point
	for i := 0; i < 50; i++ {
		pts = append(pts, geom.Point{r.NormFloat64() * 0.2, r.NormFloat64() * 0.2})
	}
	pts = append(pts, geom.Point{100, 100}, geom.Point{-100, 50}, geom.Point{60, -70})
	res, err := DBSCAN(pts, geom.L2, 1.0, 4)
	if err != nil {
		t.Fatal(err)
	}
	if res.Clusters != 1 || res.NoisePoints != 3 {
		t.Fatalf("clusters=%d noise=%d, want 1 and 3", res.Clusters, res.NoisePoints)
	}
}

func TestDBSCANMinPtsOne(t *testing.T) {
	// With minPts=1 every point is a core point: clusters are exactly the
	// ε-connected components and there is no noise — the same semantics as
	// SGB-Any, a useful cross-check.
	pts := []geom.Point{{0, 0}, {1, 0}, {2, 0}, {10, 0}, {11, 0}}
	res, err := DBSCAN(pts, geom.L2, 1.5, 1)
	if err != nil {
		t.Fatal(err)
	}
	if res.Clusters != 2 || res.NoisePoints != 0 {
		t.Fatalf("clusters=%d noise=%d, want 2 and 0", res.Clusters, res.NoisePoints)
	}
	if res.Labels[0] != res.Labels[1] || res.Labels[0] != res.Labels[2] {
		t.Error("chain not connected")
	}
	if res.Labels[3] != res.Labels[4] || res.Labels[3] == res.Labels[0] {
		t.Error("distinct components labelled together")
	}
}

func TestDBSCANValidation(t *testing.T) {
	if _, err := DBSCAN(nil, geom.L2, 0, 4); err == nil {
		t.Error("accepted eps=0")
	}
	if _, err := DBSCAN(nil, geom.L2, 1, 0); err == nil {
		t.Error("accepted minPts=0")
	}
	if _, err := DBSCAN([]geom.Point{{1, 2}, {1}}, geom.L2, 1, 1); err == nil {
		t.Error("accepted mixed dimensions")
	}
	res, err := DBSCAN(nil, geom.L2, 1, 1)
	if err != nil || len(res.Labels) != 0 {
		t.Error("empty input mishandled")
	}
}

func TestBIRCHRecoversBlobs(t *testing.T) {
	r := rand.New(rand.NewSource(74))
	pts, truth := blobs(r, 4, 200, 0.3, 12)
	res, err := BIRCH(pts, 1.0, 8, 4, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Assignments) != len(pts) {
		t.Fatalf("assignment length %d", len(res.Assignments))
	}
	if res.LeafEntries == 0 || res.LeafEntries >= len(pts) {
		t.Fatalf("CF-tree did not summarize: %d leaf entries for %d points", res.LeafEntries, len(pts))
	}
	if p := purity(res.Assignments, truth); p < 0.9 {
		t.Fatalf("BIRCH purity %.3f", p)
	}
}

func TestBIRCHCompression(t *testing.T) {
	// Points repeated in a tiny area must collapse into very few CF
	// entries.
	r := rand.New(rand.NewSource(75))
	var pts []geom.Point
	for i := 0; i < 1000; i++ {
		pts = append(pts, geom.Point{r.Float64() * 0.01, r.Float64() * 0.01})
	}
	res, err := BIRCH(pts, 0.5, 8, 1, 5)
	if err != nil {
		t.Fatal(err)
	}
	if res.LeafEntries > 3 {
		t.Fatalf("tight data produced %d CF entries", res.LeafEntries)
	}
	c := res.Centroids[0]
	if math.Abs(c[0]-0.005) > 0.01 || math.Abs(c[1]-0.005) > 0.01 {
		t.Fatalf("centroid off: %v", c)
	}
}

func TestBIRCHValidation(t *testing.T) {
	if _, err := BIRCH(nil, 0, 8, 2, 1); err == nil {
		t.Error("accepted threshold=0")
	}
	if _, err := BIRCH(nil, 1, 1, 2, 1); err == nil {
		t.Error("accepted branching=1")
	}
	if _, err := BIRCH(nil, 1, 8, 0, 1); err == nil {
		t.Error("accepted k=0")
	}
	if _, err := BIRCH([]geom.Point{{1, 2}, {1}}, 1, 8, 1, 1); err == nil {
		t.Error("accepted mixed dimensions")
	}
	res, err := BIRCH(nil, 1, 8, 2, 1)
	if err != nil || len(res.Assignments) != 0 {
		t.Error("empty input mishandled")
	}
}

func TestCFRadius(t *testing.T) {
	f := newCF(2)
	f.add(geom.Point{0, 0})
	// Radius after absorbing (2,0): points {(0,0),(2,0)}, centroid (1,0),
	// radius sqrt(mean squared deviation) = 1.
	if r := f.radiusWith(geom.Point{2, 0}); math.Abs(r-1) > 1e-12 {
		t.Fatalf("radiusWith = %v, want 1", r)
	}
	f.add(geom.Point{2, 0})
	c := f.centroid()
	if c[0] != 1 || c[1] != 0 {
		t.Fatalf("centroid = %v", c)
	}
	g := newCF(2)
	g.add(geom.Point{4, 4})
	f.merge(g)
	if f.n != 3 || f.ls[0] != 6 || f.ls[1] != 4 {
		t.Fatalf("merge wrong: %+v", f)
	}
}

func TestCURERecoversBlobs(t *testing.T) {
	r := rand.New(rand.NewSource(76))
	pts, truth := blobs(r, 3, 120, 0.3, 12)
	res, err := CURE(pts, 3, 5, 0.3, 0, 7)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Assignments) != len(pts) || len(res.Representatives) != 3 {
		t.Fatalf("shape wrong: %d assignments, %d clusters", len(res.Assignments), len(res.Representatives))
	}
	if p := purity(res.Assignments, truth); p < 0.95 {
		t.Fatalf("CURE purity %.3f on well-separated blobs", p)
	}
}

func TestCUREElongatedClusters(t *testing.T) {
	// CURE's representative points handle elongated shapes that centroid
	// methods split: two parallel line segments.
	r := rand.New(rand.NewSource(77))
	var pts []geom.Point
	var truth []int
	for i := 0; i < 150; i++ {
		pts = append(pts, geom.Point{r.Float64() * 20, r.NormFloat64() * 0.2})
		truth = append(truth, 0)
	}
	for i := 0; i < 150; i++ {
		pts = append(pts, geom.Point{r.Float64() * 20, 6 + r.NormFloat64()*0.2})
		truth = append(truth, 1)
	}
	res, err := CURE(pts, 2, 8, 0.2, 0, 7)
	if err != nil {
		t.Fatal(err)
	}
	if p := purity(res.Assignments, truth); p < 0.98 {
		t.Fatalf("CURE purity %.3f on elongated clusters", p)
	}
}

func TestCUREValidationAndDegenerate(t *testing.T) {
	if _, err := CURE(nil, 0, 4, 0.3, 0, 1); err == nil {
		t.Error("accepted k=0")
	}
	if _, err := CURE(nil, 2, 0, 0.3, 0, 1); err == nil {
		t.Error("accepted numReps=0")
	}
	if _, err := CURE(nil, 2, 4, 1.5, 0, 1); err == nil {
		t.Error("accepted alpha>1")
	}
	if _, err := CURE([]geom.Point{{1, 2}, {1}}, 2, 4, 0.3, 0, 1); err == nil {
		t.Error("accepted mixed dimensions")
	}
	res, err := CURE(nil, 2, 4, 0.3, 0, 1)
	if err != nil || len(res.Assignments) != 0 {
		t.Error("empty input mishandled")
	}
	// k larger than the sample collapses gracefully.
	res, err = CURE([]geom.Point{{0, 0}, {9, 9}}, 10, 4, 0.3, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Representatives) != 2 {
		t.Fatalf("k not clamped: %d clusters", len(res.Representatives))
	}
}

func TestCURESampling(t *testing.T) {
	// With a small sample the agglomeration stays tractable but every
	// point still receives an assignment.
	r := rand.New(rand.NewSource(78))
	pts, truth := blobs(r, 4, 500, 0.3, 15)
	res, err := CURE(pts, 4, 6, 0.3, 200, 7)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Assignments) != len(pts) {
		t.Fatal("not all points assigned")
	}
	if p := purity(res.Assignments, truth); p < 0.9 {
		t.Fatalf("sampled CURE purity %.3f", p)
	}
}
