package hull

import (
	"math"
	"math/rand"
	"testing"

	"sgb/internal/geom"
)

func pts(coords ...float64) []geom.Point {
	out := make([]geom.Point, 0, len(coords)/2)
	for i := 0; i+1 < len(coords); i += 2 {
		out = append(out, geom.Point{coords[i], coords[i+1]})
	}
	return out
}

func TestComputeDegenerate(t *testing.T) {
	if h := Compute(nil); len(h) != 0 {
		t.Fatalf("hull of nothing = %v", h)
	}
	if h := Compute(pts(1, 1)); len(h) != 1 {
		t.Fatalf("hull of a point = %v", h)
	}
	if h := Compute(pts(1, 1, 1, 1, 1, 1)); len(h) != 1 {
		t.Fatalf("hull of duplicates = %v", h)
	}
	if h := Compute(pts(0, 0, 2, 2)); len(h) != 2 {
		t.Fatalf("hull of a segment = %v", h)
	}
	// Collinear points collapse to the extreme pair.
	if h := Compute(pts(0, 0, 1, 1, 2, 2, 3, 3)); len(h) != 2 {
		t.Fatalf("hull of collinear points = %v", h)
	}
}

func TestComputeSquare(t *testing.T) {
	h := Compute(pts(0, 0, 2, 0, 2, 2, 0, 2, 1, 1, 1, 0.5))
	if len(h) != 4 {
		t.Fatalf("square hull has %d vertices: %v", len(h), h)
	}
	for _, v := range h {
		if (v[0] != 0 && v[0] != 2) || (v[1] != 0 && v[1] != 2) {
			t.Fatalf("interior point %v on hull", v)
		}
	}
	// Counter-clockwise orientation: the signed area must be positive.
	var area float64
	for i := range h {
		j := (i + 1) % len(h)
		area += h[i][0]*h[j][1] - h[j][0]*h[i][1]
	}
	if area <= 0 {
		t.Fatalf("hull is not counter-clockwise (signed area %v)", area)
	}
}

func TestContains(t *testing.T) {
	h := Compute(pts(0, 0, 4, 0, 4, 4, 0, 4))
	for _, tc := range []struct {
		p    geom.Point
		want bool
	}{
		{geom.Point{2, 2}, true},
		{geom.Point{0, 0}, true},  // vertex
		{geom.Point{2, 0}, true},  // edge
		{geom.Point{4, 4}, true},  // vertex
		{geom.Point{5, 2}, false}, // outside
		{geom.Point{-0.001, 2}, false},
	} {
		if got := Contains(h, tc.p); got != tc.want {
			t.Errorf("Contains(%v) = %v, want %v", tc.p, got, tc.want)
		}
	}
	// Degenerate hulls.
	if Contains(nil, geom.Point{0, 0}) {
		t.Error("empty hull contains a point")
	}
	if !Contains(pts(1, 1), geom.Point{1, 1}) || Contains(pts(1, 1), geom.Point{1, 2}) {
		t.Error("single-point hull containment wrong")
	}
	seg := pts(0, 0, 2, 2)
	if !Contains(seg, geom.Point{1, 1}) || Contains(seg, geom.Point{1, 0}) || Contains(seg, geom.Point{3, 3}) {
		t.Error("segment hull containment wrong")
	}
}

// TestHullContainsAllInputs is the fundamental hull property.
func TestHullContainsAllInputs(t *testing.T) {
	r := rand.New(rand.NewSource(20))
	for trial := 0; trial < 100; trial++ {
		n := 3 + r.Intn(40)
		points := make([]geom.Point, n)
		for i := range points {
			points[i] = geom.Point{r.Float64() * 10, r.Float64() * 10}
		}
		h := Compute(points)
		for _, p := range points {
			if !Contains(h, p) {
				t.Fatalf("input point %v outside its hull %v", p, h)
			}
		}
		// Idempotence: hull of hull is the hull.
		h2 := Compute(h)
		if len(h2) != len(h) {
			t.Fatalf("hull of hull has %d vertices, want %d", len(h2), len(h))
		}
	}
}

// TestFarthestIsGlobalMax verifies the paper's Procedure 6 premise: the
// farthest point of a set from any probe is a hull vertex.
func TestFarthestIsGlobalMax(t *testing.T) {
	r := rand.New(rand.NewSource(21))
	for _, m := range []geom.Metric{geom.L2, geom.LInf} {
		for trial := 0; trial < 100; trial++ {
			n := 3 + r.Intn(30)
			points := make([]geom.Point, n)
			for i := range points {
				points[i] = geom.Point{r.Float64() * 10, r.Float64() * 10}
			}
			h := Compute(points)
			probe := geom.Point{r.Float64()*20 - 5, r.Float64()*20 - 5}
			_, hd := Farthest(m, h, probe)
			var max float64
			for _, p := range points {
				if d := geom.Dist(m, p, probe); d > max {
					max = d
				}
			}
			if math.Abs(hd-max) > 1e-9 {
				t.Fatalf("%v: hull farthest %v, global farthest %v", m, hd, max)
			}
		}
	}
}

func TestFarthestPanicsOnEmpty(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Farthest on empty hull did not panic")
		}
	}()
	Farthest(geom.L2, nil, geom.Point{0, 0})
}

func TestDiameter(t *testing.T) {
	h := Compute(pts(0, 0, 3, 0, 3, 4, 0, 4))
	if d := Diameter(geom.L2, h); math.Abs(d-5) > 1e-12 {
		t.Fatalf("L2 diameter = %v, want 5", d)
	}
	if d := Diameter(geom.LInf, h); d != 4 {
		t.Fatalf("LInf diameter = %v, want 4", d)
	}
	if Diameter(geom.L2, pts(1, 1)) != 0 || Diameter(geom.L2, nil) != 0 {
		t.Fatal("degenerate diameter should be 0")
	}
}

func TestIncrementalMatchesBatch(t *testing.T) {
	r := rand.New(rand.NewSource(22))
	for trial := 0; trial < 50; trial++ {
		n := 1 + r.Intn(40)
		points := make([]geom.Point, n)
		for i := range points {
			points[i] = geom.Point{r.Float64() * 10, r.Float64() * 10}
		}
		inc := NewIncremental(points[0])
		for _, p := range points[1:] {
			inc.Add(p)
		}
		batch := Compute(points)
		if len(inc.Vertices()) != len(batch) {
			t.Fatalf("incremental hull has %d vertices, batch %d", len(inc.Vertices()), len(batch))
		}
		for _, p := range points {
			if !inc.Contains(p) {
				t.Fatalf("incremental hull misses input %v", p)
			}
		}
		probe := geom.Point{r.Float64() * 10, r.Float64() * 10}
		_, d1 := inc.Farthest(geom.L2, probe)
		_, d2 := Farthest(geom.L2, batch, probe)
		if math.Abs(d1-d2) > 1e-12 {
			t.Fatalf("incremental farthest %v, batch %v", d1, d2)
		}
	}
}

func TestIncrementalRebuild(t *testing.T) {
	inc := NewIncremental(pts(0, 0, 4, 0, 4, 4, 0, 4)...)
	if len(inc.Vertices()) != 4 {
		t.Fatalf("seed hull has %d vertices", len(inc.Vertices()))
	}
	inc.Rebuild(pts(0, 0, 1, 0, 0, 1))
	if len(inc.Vertices()) != 3 {
		t.Fatalf("rebuilt hull has %d vertices", len(inc.Vertices()))
	}
	if inc.Contains(geom.Point{3, 3}) {
		t.Fatal("rebuilt hull still covers old area")
	}
}

func BenchmarkCompute(b *testing.B) {
	r := rand.New(rand.NewSource(23))
	points := make([]geom.Point, 1000)
	for i := range points {
		points[i] = geom.Point{r.Float64(), r.Float64()}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Compute(points)
	}
}
