// Package hull provides the 2-D convex-hull substrate used by the SGB-All
// operator's L2 refinement step (Procedure 6 in the paper): building a hull,
// testing whether a point lies inside it, and finding the hull vertex
// farthest from a query point.
//
// The correctness argument from §6.4 is that for any query point p, the
// member of a group farthest from p is a vertex of the group's convex hull,
// so the distance-to-all predicate holds for p iff it holds between p and
// that farthest vertex.
package hull

import (
	"math"
	"sort"

	"sgb/internal/geom"
)

// cross returns the z-component of (b-a) × (c-a): positive when a→b→c turns
// counter-clockwise, zero when collinear.
func cross(a, b, c geom.Point) float64 {
	return (b[0]-a[0])*(c[1]-a[1]) - (b[1]-a[1])*(c[0]-a[0])
}

// Compute returns the convex hull of the given 2-D points as a
// counter-clockwise polygon without the closing vertex, using Andrew's
// monotone chain. Collinear boundary points are dropped. Degenerate inputs
// (0, 1 or 2 distinct points) return the distinct points themselves.
//
// The input slice is not modified.
func Compute(points []geom.Point) []geom.Point {
	pts := make([]geom.Point, len(points))
	copy(pts, points)
	sort.Slice(pts, func(i, j int) bool {
		if pts[i][0] != pts[j][0] {
			return pts[i][0] < pts[j][0]
		}
		return pts[i][1] < pts[j][1]
	})
	// Deduplicate.
	uniq := pts[:0]
	for i, p := range pts {
		if i == 0 || p[0] != pts[i-1][0] || p[1] != pts[i-1][1] {
			uniq = append(uniq, p)
		}
	}
	pts = uniq
	n := len(pts)
	if n <= 2 {
		out := make([]geom.Point, n)
		copy(out, pts)
		return out
	}
	h := make([]geom.Point, 0, 2*n)
	// Lower chain.
	for _, p := range pts {
		for len(h) >= 2 && cross(h[len(h)-2], h[len(h)-1], p) <= 0 {
			h = h[:len(h)-1]
		}
		h = append(h, p)
	}
	// Upper chain.
	lower := len(h) + 1
	for i := n - 2; i >= 0; i-- {
		p := pts[i]
		for len(h) >= lower && cross(h[len(h)-2], h[len(h)-1], p) <= 0 {
			h = h[:len(h)-1]
		}
		h = append(h, p)
	}
	return h[:len(h)-1] // last point repeats the first
}

// Contains reports whether p lies inside or on the boundary of the convex
// polygon hull (counter-clockwise, as produced by Compute). Degenerate hulls
// fall back to segment/point containment.
func Contains(hull []geom.Point, p geom.Point) bool {
	switch len(hull) {
	case 0:
		return false
	case 1:
		return hull[0][0] == p[0] && hull[0][1] == p[1]
	case 2:
		return onSegment(hull[0], hull[1], p)
	}
	for i := range hull {
		j := (i + 1) % len(hull)
		if cross(hull[i], hull[j], p) < 0 {
			return false
		}
	}
	return true
}

// onSegment reports whether p lies on the closed segment ab.
func onSegment(a, b, p geom.Point) bool {
	if cross(a, b, p) != 0 {
		return false
	}
	return math.Min(a[0], b[0]) <= p[0] && p[0] <= math.Max(a[0], b[0]) &&
		math.Min(a[1], b[1]) <= p[1] && p[1] <= math.Max(a[1], b[1])
}

// Farthest returns the hull vertex farthest from p under metric m, together
// with its distance (getMaxDistElem in Procedure 6). It panics on an empty
// hull.
func Farthest(m geom.Metric, hull []geom.Point, p geom.Point) (geom.Point, float64) {
	if len(hull) == 0 {
		panic("hull: Farthest on empty hull")
	}
	best, bestD := hull[0], geom.Dist(m, hull[0], p)
	for _, v := range hull[1:] {
		if d := geom.Dist(m, v, p); d > bestD {
			best, bestD = v, d
		}
	}
	return best, bestD
}

// Diameter returns the largest pairwise distance between hull vertices under
// metric m (the diameter of the underlying point set). A hull with fewer
// than two vertices has diameter 0.
func Diameter(m geom.Metric, hull []geom.Point) float64 {
	var mx float64
	for i := 0; i < len(hull); i++ {
		for j := i + 1; j < len(hull); j++ {
			if d := geom.Dist(m, hull[i], hull[j]); d > mx {
				mx = d
			}
		}
	}
	return mx
}

// Incremental maintains the convex hull of a growing point set. The SGB-All
// operator keeps one per group so the Procedure 6 test does not rebuild the
// hull from all members on every probe: only the current hull vertices plus
// the new point are re-hulled, which is O(h log h) per insertion.
type Incremental struct {
	verts []geom.Point
}

// NewIncremental returns an incremental hull seeded with the given points.
func NewIncremental(points ...geom.Point) *Incremental {
	return &Incremental{verts: Compute(points)}
}

// Vertices returns the current hull polygon (counter-clockwise). The slice
// must not be mutated.
func (h *Incremental) Vertices() []geom.Point { return h.verts }

// Add extends the hull with p. Points already inside the hull leave it
// unchanged.
func (h *Incremental) Add(p geom.Point) {
	if Contains(h.verts, p) {
		return
	}
	h.verts = Compute(append(append(make([]geom.Point, 0, len(h.verts)+1), h.verts...), p))
}

// Rebuild recomputes the hull from an explicit member list (after removals).
func (h *Incremental) Rebuild(points []geom.Point) {
	h.verts = Compute(points)
}

// Contains reports whether p lies inside or on the hull.
func (h *Incremental) Contains(p geom.Point) bool { return Contains(h.verts, p) }

// Farthest returns the hull vertex farthest from p under metric m.
func (h *Incremental) Farthest(m geom.Metric, p geom.Point) (geom.Point, float64) {
	return Farthest(m, h.verts, p)
}

// AllWithin reports whether every hull vertex satisfies ξ(δ,ε) with p —
// equivalent to Farthest(m, p) ≤ eps but sqrt-free: geom.Within compares
// squared distances under L2 and the scan exits on the first vertex outside
// ε, so the refinement on the SGB-All hot path never pays a square root.
func (h *Incremental) AllWithin(m geom.Metric, p geom.Point, eps float64) bool {
	for _, v := range h.verts {
		if !geom.Within(m, v, p, eps) {
			return false
		}
	}
	return true
}
