package server

import (
	"encoding/json"
	"net/http"
	"sort"
	"time"

	"sgb/internal/obs"
	"sgb/internal/stream"
)

// procEntry is one in-flight query tracked for the process list. The live
// *obs.Trace carries the query's current execution state (parsing, executing,
// committing, streaming), so the process list reads phase transitions without
// any extra bookkeeping on the hot path.
type procEntry struct {
	tr     *obs.Trace
	client string
	sql    string
	start  time.Time
}

// trackQuery registers an in-flight query; the caller must untrackQuery it.
func (s *Server) trackQuery(e *procEntry) {
	s.procMu.Lock()
	s.procs[e] = struct{}{}
	s.procMu.Unlock()
}

func (s *Server) untrackQuery(e *procEntry) {
	s.procMu.Lock()
	delete(s.procs, e)
	s.procMu.Unlock()
}

// ProcessList snapshots the in-flight queries, oldest first — the data
// behind \processlist, the Introspect wire message, and /debug/queries.
func (s *Server) ProcessList() []obs.QueryInfo {
	s.procMu.Lock()
	entries := make([]*procEntry, 0, len(s.procs))
	for e := range s.procs {
		entries = append(entries, e)
	}
	s.procMu.Unlock()
	sort.Slice(entries, func(i, j int) bool { return entries[i].start.Before(entries[j].start) })
	out := make([]obs.QueryInfo, 0, len(entries))
	for _, e := range entries {
		out = append(out, obs.QueryInfo{
			TraceID:   e.tr.ID(),
			Client:    e.client,
			SQL:       e.sql,
			State:     e.tr.State(),
			ElapsedMS: float64(time.Since(e.start).Nanoseconds()) / 1e6,
			StartedAt: e.start.UTC().Format(time.RFC3339Nano),
		})
	}
	return out
}

// SlowLog exposes the server's slow-query ring buffer.
func (s *Server) SlowLog() *obs.SlowLog { return s.slowlog }

// recordFinished folds a completed statement into the slowlog when it
// cleared the configured threshold (0 logs everything, negative disables).
func (s *Server) recordFinished(e *procEntry, settings string, elapsed time.Duration, rows int64, err error) {
	thr := s.cfg.SlowQueryThreshold
	if thr < 0 || elapsed < thr {
		return
	}
	q := obs.SlowQuery{
		TraceID:   e.tr.ID(),
		Client:    e.client,
		SQL:       e.sql,
		Settings:  settings,
		ElapsedMS: float64(elapsed.Nanoseconds()) / 1e6,
		Rows:      rows,
		Trace:     e.tr.Snapshot(),
	}
	if err != nil {
		q.Err = err.Error()
	}
	s.slowlog.Add(q)
	s.db.Metrics().Counter("server_slow_queries_total").Inc()
}

// RegisterDebug installs the JSON introspection endpoints on mux, alongside
// /metrics on the daemon's metrics listener:
//
//	/debug/queries — the live process list ([]obs.QueryInfo)
//	/debug/slowlog — the slow-query ring buffer, newest first ([]obs.SlowQuery)
//	/debug/views   — materialized view status: state sizes, delta rate,
//	                 staleness, subscriber counts ([]stream.ViewStatus)
func (s *Server) RegisterDebug(mux *http.ServeMux) {
	mux.HandleFunc("/debug/queries", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, s.ProcessList())
	})
	mux.HandleFunc("/debug/slowlog", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, s.slowlog.Entries())
	})
	mux.HandleFunc("/debug/views", func(w http.ResponseWriter, r *http.Request) {
		if s.cfg.Streams == nil {
			writeJSON(w, []stream.ViewStatus{})
			return
		}
		writeJSON(w, s.cfg.Streams.Views())
	})
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}
