package server

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"runtime/debug"
	"strconv"
	"strings"
	"sync"
	"time"

	"sgb/internal/core"
	"sgb/internal/engine"
	"sgb/internal/obs"
	"sgb/internal/stream"
	"sgb/internal/wire"
)

// handshakeTimeout bounds how long a fresh connection may take to send its
// Hello; it keeps half-open sockets from pinning connection slots.
const handshakeTimeout = 10 * time.Second

// conn is one client connection: a counting socket, an engine session, and
// the goroutine plumbing that lets Cancel frames arrive mid-query.
type conn struct {
	srv  *Server
	nc   net.Conn
	br   *bufio.Reader
	sess *engine.Session
	// version is the negotiated protocol version for this connection
	// (min(client, server), set by the handshake).
	version uint32

	// ctx is the connection's force-close signal: canceling it aborts the
	// in-flight statement and terminates the session loop.
	ctx    context.Context
	cancel context.CancelFunc
	// drain asks the session loop to exit at the next statement boundary
	// (graceful shutdown); closed at most once by beginDrain.
	drain     chan struct{}
	drainOnce sync.Once
	// in carries frames from the reader goroutine; done stops the reader
	// when the session loop exits first.
	in   chan readResult
	done chan struct{}
}

type readResult struct {
	msg wire.Message
	// dur is the frame's wire-decode time (read + decode, excluding idle
	// wait), recorded as the query's wire_decode span.
	dur time.Duration
	err error
}

func newConn(s *Server, nc net.Conn) *conn {
	m := s.db.Metrics()
	cc := &countingConn{
		Conn: nc,
		in:   m.Counter("server_bytes_in_total"),
		out:  m.Counter("server_bytes_out_total"),
	}
	ctx, cancel := context.WithCancel(context.Background())
	c := &conn{
		srv:    s,
		nc:     cc,
		br:     bufio.NewReader(cc),
		sess:   s.db.NewSession(),
		ctx:    ctx,
		cancel: cancel,
		drain:  make(chan struct{}),
		in:     make(chan readResult),
		done:   make(chan struct{}),
	}
	return c
}

// beginDrain asks the session to finish its current statement and close.
func (c *conn) beginDrain() {
	c.drainOnce.Do(func() { close(c.drain) })
}

// forceClose aborts the in-flight statement and tears the socket down.
func (c *conn) forceClose() {
	c.cancel()
	c.nc.Close()
}

// serve runs the connection to completion: handshake, then the
// request/response loop. It owns the socket and closes it on exit.
func (c *conn) serve() {
	// Last line of panic defense: a bug anywhere in the session loop kills
	// this connection, not the daemon. Registered first so the socket/ctx
	// cleanup defers below still run during unwinding.
	defer func() {
		if p := recover(); p != nil {
			c.srv.db.Metrics().Counter("server_panics_recovered_total").Inc()
		}
	}()
	defer c.nc.Close()
	defer c.cancel()
	defer close(c.done)

	if err := c.handshake(); err != nil {
		return
	}
	go c.readLoop()

	for {
		c.setIdleDeadline()
		select {
		case <-c.ctx.Done():
			return
		case <-c.drain:
			c.writeMsg(&wire.Error{Code: wire.CodeShuttingDown, Message: "server is shutting down"})
			return
		case rr := <-c.in:
			if rr.err != nil {
				// A malformed trace ID is a typed decode failure worth naming
				// to the client before the (now desynced) stream closes.
				if errors.Is(rr.err, wire.ErrBadTraceID) {
					c.writeMsg(&wire.Error{Code: wire.CodeProtocol, Message: rr.err.Error()})
				}
				return
			}
			c.clearDeadline()
			if !c.dispatch(rr) {
				return
			}
		}
	}
}

// handshake performs the Hello/Welcome version exchange under its own
// deadline. The reader goroutine is not running yet; serve reads directly.
func (c *conn) handshake() error {
	c.nc.SetReadDeadline(time.Now().Add(handshakeTimeout))
	defer c.nc.SetReadDeadline(time.Time{})
	msg, err := wire.ReadMessage(c.br)
	if err != nil {
		return err
	}
	hello, ok := msg.(*wire.Hello)
	if !ok {
		c.writeMsg(&wire.Error{Code: wire.CodeProtocol,
			Message: fmt.Sprintf("expected Hello, got %T", msg)})
		return errors.New("server: bad handshake")
	}
	if hello.Version < wire.MinVersion || hello.Version > wire.MaxVersion {
		c.writeMsg(&wire.Error{Code: wire.CodeVersionMismatch,
			Message: fmt.Sprintf("client speaks protocol %d, server speaks %d-%d",
				hello.Version, wire.MinVersion, wire.MaxVersion)})
		return errors.New("server: version mismatch")
	}
	// The conversation runs at the client's version (never above ours, by the
	// check above); Welcome echoes it so the client knows what was agreed.
	c.version = hello.Version
	return c.writeMsg(&wire.Welcome{Version: c.version, Server: c.srv.cfg.ServerName})
}

// readLoop feeds decoded frames to the session loop until the connection
// errors or the session loop exits.
func (c *conn) readLoop() {
	for {
		msg, dur, err := wire.ReadMessageTimed(c.br)
		select {
		case c.in <- readResult{msg, dur, err}:
			if err != nil {
				return
			}
		case <-c.done:
			return
		}
	}
}

// setIdleDeadline arms the between-statements idle timer (a read deadline on
// the socket, which interrupts the reader goroutine's pending Read).
func (c *conn) setIdleDeadline() {
	if t := c.srv.cfg.IdleTimeout; t > 0 {
		c.nc.SetReadDeadline(time.Now().Add(t))
	}
}

// clearDeadline disarms the idle timer while a statement runs — a long query
// is activity, and Cancel frames must be readable indefinitely.
func (c *conn) clearDeadline() {
	if c.srv.cfg.IdleTimeout > 0 {
		c.nc.SetReadDeadline(time.Time{})
	}
}

// dispatch handles one idle-state frame; false terminates the connection.
func (c *conn) dispatch(rr readResult) bool {
	switch m := rr.msg.(type) {
	case *wire.Query:
		return c.runQuery(m, rr.dur)
	case *wire.Set:
		return c.applySetting(m)
	case *wire.Ping:
		return c.writeMsg(&wire.Pong{}) == nil
	case *wire.Stats:
		var sb strings.Builder
		if err := c.srv.db.Metrics().WritePrometheus(&sb); err != nil {
			return c.writeMsg(&wire.Error{Code: wire.CodeInternal, Message: err.Error()}) == nil
		}
		return c.writeMsg(&wire.StatsText{Text: sb.String()}) == nil
	case *wire.Introspect:
		return c.introspect(m)
	case *wire.Subscribe:
		return c.runSubscribe(m)
	case *wire.Cancel:
		// Nothing in flight; a late Cancel for a query that already
		// finished is legal and ignored.
		return true
	case *wire.Close:
		return false
	default:
		c.writeMsg(&wire.Error{Code: wire.CodeProtocol,
			Message: fmt.Sprintf("unexpected %T", rr.msg)})
		return false
	}
}

// introspect answers an Introspect request with the process list or slowlog
// as JSON. Available at any negotiated version — the message type is new, so
// a v1 client simply never sends it.
func (c *conn) introspect(m *wire.Introspect) bool {
	var v any
	switch m.What {
	case wire.IntrospectProcessList:
		v = c.srv.ProcessList()
	case wire.IntrospectSlowLog:
		v = c.srv.SlowLog().Entries()
	default:
		return c.writeMsg(&wire.Error{Code: wire.CodeProtocol,
			Message: fmt.Sprintf("unknown introspection target %q", m.What)}) == nil
	}
	b, err := json.Marshal(v)
	if err != nil {
		return c.writeMsg(&wire.Error{Code: wire.CodeInternal, Message: err.Error()}) == nil
	}
	return c.writeMsg(&wire.IntrospectResult{What: m.What, JSON: string(b)}) == nil
}

// runSubscribe streams a materialized view's deltas until the client cancels
// (Cancel ends the stream with Done; the connection survives), the client
// closes, or the subscription is cut server-side. The resume contract: the
// client presents the Seq of the last delta it consumed, and the reply is
// Subscribed{Seq, Snapshot} followed by the missed deltas (Snapshot=false) or
// a full state image as GroupCreated deltas (Snapshot=true, token predates
// ring retention — the client discards local state first). Live deltas follow
// in Seq order. A consumer that falls behind the manager's buffer is cut with
// a typed error; it re-subscribes with its token and resumes by ring replay.
func (c *conn) runSubscribe(m *wire.Subscribe) bool {
	if c.version < 3 {
		// Subscribe exists only in protocol v3; a frame at a lower negotiated
		// version is a protocol violation, mirroring the unexpected-frame arm
		// of dispatch.
		c.writeMsg(&wire.Error{Code: wire.CodeProtocol,
			Message: fmt.Sprintf("Subscribe requires protocol 3, negotiated %d", c.version)})
		return false
	}
	mgr := c.srv.cfg.Streams
	if mgr == nil {
		return c.writeMsg(&wire.Error{Code: wire.CodeQuery,
			Message: "subscriptions are not enabled on this server"}) == nil
	}
	at, err := mgr.Subscribe(m.View, m.Token, 0)
	if err != nil {
		return c.writeMsg(&wire.Error{Code: wire.CodeQuery, Message: err.Error()}) == nil
	}
	defer at.Sub.Close()

	reg := c.srv.db.Metrics()
	reg.Counter("server_subscribes_total").Inc()
	if err := c.writeMsg(&wire.Subscribed{Seq: at.Seq, Snapshot: at.Snapshot}); err != nil {
		return false
	}
	for _, d := range at.Backlog {
		if c.writeDelta(d) != nil {
			return false
		}
	}
	for {
		select {
		case <-c.ctx.Done():
			return false
		case <-c.drain:
			c.writeMsg(&wire.Error{Code: wire.CodeShuttingDown, Message: "server is shutting down"})
			return false
		case d, ok := <-at.Sub.C:
			if !ok {
				// Lagged past the buffer, view dropped, or view broken. The
				// client re-subscribes with its last consumed Seq.
				c.writeMsg(&wire.Error{Code: wire.CodeQuery,
					Message: "subscription interrupted (lagged or view dropped); resubscribe to resume"})
				return true
			}
			if c.writeDelta(d) != nil {
				return false
			}
		case rr := <-c.in:
			if rr.err != nil {
				return false
			}
			switch rr.msg.(type) {
			case *wire.Cancel:
				return c.writeMsg(&wire.Done{}) == nil
			case *wire.Ping:
				if c.writeMsg(&wire.Pong{}) != nil {
					return false
				}
			case *wire.Close:
				return false
			default:
				c.writeMsg(&wire.Error{Code: wire.CodeProtocol,
					Message: fmt.Sprintf("unexpected %T during subscription", rr.msg)})
				return false
			}
		}
	}
}

// writeDelta maps a stream delta onto its wire frame.
func (c *conn) writeDelta(d stream.Delta) error {
	return c.writeMsg(&wire.Delta{
		View:    d.View,
		Seq:     d.Seq,
		Kind:    uint8(d.Kind),
		Group:   d.Group,
		Members: d.Members,
		Merged:  d.Merged,
	})
}

// statementPanicError marks a statement whose executor goroutine panicked.
// The panic is contained to the statement: the session, the connection, and
// the daemon all keep serving, and the stack lands in the slowlog trace.
type statementPanicError struct {
	val any
}

func (e *statementPanicError) Error() string {
	return fmt.Sprintf("internal error: statement panicked: %v (stack captured to slowlog trace)", e.val)
}

// admit acquires an execution slot when the server caps concurrent
// statements, waiting in the bounded admission queue and shedding beyond it.
// It returns a release func (nil-safe semantics are the caller's: release is
// non-nil iff ok and a slot was taken), ok=false when the statement must not
// run (shed, canceled, or connection-fatal), and fatal=true when the
// connection itself must close.
func (c *conn) admit(tr *obs.Trace, qcancel context.CancelFunc) (release func(), ok, fatal bool) {
	if c.srv.slots == nil {
		return func() {}, true, false
	}
	// Fast path: a slot is free.
	select {
	case c.srv.slots <- struct{}{}:
		return func() { <-c.srv.slots }, true, false
	default:
	}
	m := c.srv.db.Metrics()
	if int(c.srv.queued.Add(1)) > c.srv.cfg.AdmissionQueue {
		// Queue full: shed now rather than queue without bound.
		c.srv.queued.Add(-1)
		m.Counter("server_queries_shed_total").Inc()
		err := c.writeMsg(&wire.Error{
			Code:         wire.CodeOverloaded,
			Message:      "server overloaded: admission queue full; retry later",
			RetryAfterMS: uint32(shedRetryAfter / time.Millisecond),
		})
		return nil, false, err != nil
	}
	tr.SetState("queued")
	queuedGauge := m.Gauge("server_admission_queued")
	queuedGauge.Add(1)
	defer func() {
		queuedGauge.Add(-1)
		c.srv.queued.Add(-1)
	}()
	for {
		select {
		case c.srv.slots <- struct{}{}:
			return func() { <-c.srv.slots }, true, false
		case <-c.ctx.Done():
			return nil, false, true
		case <-c.drain:
			c.writeMsg(&wire.Error{Code: wire.CodeShuttingDown, Message: "server is shutting down"})
			return nil, false, true
		case rr := <-c.in:
			if rr.err != nil {
				return nil, false, true
			}
			switch rr.msg.(type) {
			case *wire.Cancel:
				qcancel()
				err := c.writeMsg(&wire.Error{Code: wire.CodeCanceled, Message: "query canceled while queued"})
				return nil, false, err != nil
			case *wire.Ping:
				if c.writeMsg(&wire.Pong{}) != nil {
					return nil, false, true
				}
			case *wire.Close:
				return nil, false, true
			default:
				c.writeMsg(&wire.Error{Code: wire.CodeProtocol,
					Message: fmt.Sprintf("unexpected %T while queued", rr.msg)})
				return nil, false, true
			}
		}
	}
}

// runQuery executes one statement on the session while concurrently watching
// the wire for Cancel. It reports false when the connection must close.
//
// This is where the end-to-end trace assembles: the client's propagated trace
// ID (or a server-minted one for untraced/v1 clients) heads a trace that
// accumulates the frame's wire_decode span, the engine's parse/plan/execute
// spans, the WAL's wal_append/wal_fsync spans from the commit hook, and
// finally the row-streaming span — then lands in the slowlog.
func (c *conn) runQuery(q *wire.Query, decodeDur time.Duration) bool {
	qctx, qcancel := context.WithCancel(c.ctx)
	defer qcancel()

	m := c.srv.db.Metrics()
	active := m.Gauge("server_sessions_active")
	active.Add(1)
	defer active.Add(-1)

	id := q.TraceID
	if id == "" {
		id = obs.NewTraceID()
	}
	tr := obs.NewTraceWithID(id)
	start := time.Now()
	tr.AddSpan("wire_decode", start.Add(-decodeDur), decodeDur)
	m.Histogram("server_wire_decode_seconds", obs.DefBuckets).Observe(decodeDur.Seconds())
	tr.SetState("parsing")

	entry := &procEntry{tr: tr, client: c.nc.RemoteAddr().String(), sql: q.SQL, start: start}
	c.srv.trackQuery(entry)
	defer c.srv.untrackQuery(entry)

	// Statement admission: when the server caps concurrency, wait for an
	// execution slot (visible as state "queued" in the process list) or shed.
	release, admitted, fatal := c.admit(tr, qcancel)
	if !admitted {
		tr.SetState("done")
		c.srv.recordFinished(entry, c.settingsString(), time.Since(start), 0,
			errors.New("statement not admitted (shed or canceled while queued)"))
		return !fatal
	}
	defer release()
	tr.SetState("parsing")

	type execResult struct {
		res *engine.Result
		err error
	}
	resCh := make(chan execResult, 1)
	go func() {
		// Panic isolation: a panicking statement becomes a typed error on this
		// connection with the stack preserved in the slowlog trace, while the
		// daemon and every other session keep serving.
		defer func() {
			if p := recover(); p != nil {
				m.Counter("server_panics_recovered_total").Inc()
				tr.Annotate("panic: %v", p)
				tr.Annotate("stack: %s", debug.Stack())
				resCh <- execResult{nil, &statementPanicError{val: p}}
			}
		}()
		res, err := c.sess.ExecContextTrace(qctx, q.SQL, tr)
		resCh <- execResult{res, err}
	}()

	// finish streams the outcome (rows or error) and records the statement in
	// the latency histograms and, past the threshold, the slowlog.
	finish := func(res *engine.Result, execErr error, connFatal bool) bool {
		execDur := time.Since(start)
		m.Histogram("server_wire_execute_seconds", obs.DefBuckets).Observe(execDur.Seconds())
		var werr error
		var rows int64
		if execErr != nil {
			if !connFatal {
				werr = c.writeQueryError(execErr)
			}
		} else {
			rows = int64(len(res.Rows))
			if !connFatal {
				tr.SetState("streaming")
				span := tr.StartSpan("stream")
				werr = c.streamResult(res)
				span.End()
				m.Histogram("server_wire_stream_seconds", obs.DefBuckets).
					Observe(span.Duration().Seconds())
			}
		}
		tr.SetState("done")
		c.srv.recordFinished(entry, c.settingsString(), time.Since(start), rows, execErr)
		return !connFatal && werr == nil
	}

	connFatal := false
	for {
		select {
		case r := <-resCh:
			return finish(r.res, r.err, connFatal)
		case <-c.ctx.Done():
			// Force shutdown: the query context is already canceled; wait
			// for the executor goroutine, then drop the connection.
			<-resCh
			return false
		case rr := <-c.in:
			if rr.err != nil {
				// Client went away mid-query: abort the statement, reap the
				// executor goroutine, close.
				qcancel()
				<-resCh
				return false
			}
			switch rr.msg.(type) {
			case *wire.Cancel:
				qcancel()
			case *wire.Ping:
				if c.writeMsg(&wire.Pong{}) != nil {
					qcancel()
					connFatal = true
				}
			case *wire.Close:
				qcancel()
				<-resCh
				return false
			default:
				qcancel()
				<-resCh
				c.writeMsg(&wire.Error{Code: wire.CodeProtocol,
					Message: fmt.Sprintf("unexpected %T during query", rr.msg)})
				return false
			}
		}
	}
}

// streamResult sends a completed statement result: RowHeader (when the
// statement produces columns), RowBatch frames at the session's batch size,
// then Done. This is where the wire maps onto the engine's batch layer — the
// same row granularity the vectorized executor uses internally.
func (c *conn) streamResult(res *engine.Result) error {
	if len(res.Columns) > 0 {
		if err := c.writeMsg(&wire.RowHeader{Columns: res.Columns}); err != nil {
			return err
		}
		batch := c.sess.Settings().BatchSize
		if batch <= 0 {
			batch = engine.DefaultBatchSize()
		}
		for off := 0; off < len(res.Rows); off += batch {
			end := off + batch
			if end > len(res.Rows) {
				end = len(res.Rows)
			}
			if err := c.writeMsg(&wire.RowBatch{Rows: res.Rows[off:end]}); err != nil {
				return err
			}
		}
	}
	return c.writeMsg(&wire.Done{
		RowsAffected: int64(res.RowsAffected),
		RowCount:     int64(len(res.Rows)),
	})
}

// writeQueryError maps an engine failure onto a typed wire error. The
// connection survives query errors; only write failures are fatal.
func (c *conn) writeQueryError(err error) error {
	code := wire.CodeQuery
	var retryMS uint32
	var rle *engine.ResourceLimitError
	var pe *statementPanicError
	switch {
	case errors.Is(err, ErrDegraded):
		// Disk fault: the store is read-only until the probe promotes it back.
		code = wire.CodeReadOnly
		if st := c.srv.cfg.Store; st != nil {
			retryMS = uint32(st.RetryAfter() / time.Millisecond)
		}
	case errors.As(err, &pe):
		code = wire.CodeInternal
	case errors.As(err, &rle):
		if rle.Global() {
			// Global memory pressure, not this query's fault: retryable.
			code = wire.CodeOverloaded
			retryMS = uint32(shedRetryAfter / time.Millisecond)
		} else {
			code = wire.CodeResourceLimit
		}
	case errors.Is(err, context.Canceled), errors.Is(err, context.DeadlineExceeded):
		code = wire.CodeCanceled
	}
	return c.writeMsg(&wire.Error{Code: code, Message: err.Error(), RetryAfterMS: retryMS})
}

// applySetting maps a Set frame onto the connection's engine session.
func (c *conn) applySetting(m *wire.Set) bool {
	fail := func(format string, args ...any) bool {
		return c.writeMsg(&wire.Error{Code: wire.CodeUnknownSetting,
			Message: fmt.Sprintf(format, args...)}) == nil
	}
	switch m.Name {
	case "sgb_algorithm":
		if m.Value == "auto" {
			c.sess.SetSGBAlgorithmAuto()
			break
		}
		alg, ok := parseAlgorithm(m.Value)
		if !ok {
			return fail("unknown SGB algorithm %q (want auto|allpairs|bounds|index)", m.Value)
		}
		c.sess.SetSGBAlgorithm(alg)
	case "parallelism":
		n, err := strconv.Atoi(m.Value)
		if err != nil || n < 0 {
			return fail("bad parallelism %q", m.Value)
		}
		c.sess.SetParallelism(n)
	case "batch_size":
		n, err := strconv.Atoi(m.Value)
		if err != nil || n < 0 {
			return fail("bad batch_size %q", m.Value)
		}
		c.sess.SetBatchSize(n)
	case "max_rows":
		n, err := strconv.ParseInt(m.Value, 10, 64)
		if err != nil || n < 0 {
			return fail("bad max_rows %q", m.Value)
		}
		lim := c.sess.Settings().Limits
		lim.MaxRowsMaterialized = n
		c.sess.SetLimits(lim)
	case "max_time":
		d, err := time.ParseDuration(m.Value)
		if (err != nil && m.Value != "0") || d < 0 {
			return fail("bad max_time %q (want a duration like 2s, or 0)", m.Value)
		}
		lim := c.sess.Settings().Limits
		lim.MaxExecutionTime = d
		c.sess.SetLimits(lim)
	default:
		return fail("unknown setting %q", m.Name)
	}
	return c.writeMsg(&wire.Done{}) == nil
}

// writeMsg sends one frame. Frame writes are serialized by the session loop
// (the only writer), so no extra locking is needed here. Pre-v4 peers reject
// trailing payload bytes, so the retry-after hint is stripped for them.
func (c *conn) writeMsg(m wire.Message) error {
	if e, ok := m.(*wire.Error); ok && e.RetryAfterMS != 0 && c.version < 4 {
		clone := *e
		clone.RetryAfterMS = 0
		m = &clone
	}
	return wire.WriteMessage(c.nc, m)
}

// settingsString summarizes the session knobs that shaped a statement's plan,
// recorded alongside the statement in the slowlog.
func (c *conn) settingsString() string {
	st := c.sess.Settings()
	name := algName(st.SGBAlgorithm)
	if st.SGBAuto {
		name = "auto"
	}
	return fmt.Sprintf("algorithm=%s parallelism=%d batch_size=%d",
		name, st.Parallelism, st.BatchSize)
}

// algName is the inverse of parseAlgorithm.
func algName(a core.Algorithm) string {
	switch a {
	case core.AllPairs:
		return "allpairs"
	case core.BoundsChecking:
		return "bounds"
	case core.IndexBounds:
		return "index"
	}
	return fmt.Sprintf("alg(%d)", a)
}

// parseAlgorithm maps the wire spelling onto the core enum.
func parseAlgorithm(s string) (core.Algorithm, bool) {
	switch s {
	case "allpairs":
		return core.AllPairs, true
	case "bounds":
		return core.BoundsChecking, true
	case "index":
		return core.IndexBounds, true
	}
	return 0, false
}

// countingConn counts every socket byte into the server traffic metrics.
type countingConn struct {
	net.Conn
	in, out *obs.Counter
}

func (c *countingConn) Read(p []byte) (int, error) {
	n, err := c.Conn.Read(p)
	c.in.Add(int64(n))
	return n, err
}

func (c *countingConn) Write(p []byte) (int, error) {
	n, err := c.Conn.Write(p)
	c.out.Add(int64(n))
	return n, err
}
