package server

import (
	"bytes"
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"sgb/internal/engine"
	"sgb/internal/obs"
	"sgb/internal/wal"
)

// checkpointFile is the snapshot the WAL tail replays on top of. Its header
// records the WAL sequence number the snapshot covers, CRC-protected like the
// log itself:
//
//	[8 bytes magic "SGBCKPT1"][8 bytes covered seq][4 bytes CRC32C of body][gob snapshot body]
const (
	checkpointFile  = "checkpoint.sgb"
	checkpointMagic = "SGBCKPT1"
)

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// ErrStoreClosed reports a mutating statement that reached the engine after
// Store.Close began: the log no longer accepts records, so the statement
// cannot be made durable and is failed rather than silently acknowledged.
var ErrStoreClosed = errors.New("server: store closed; statement not logged")

// ErrDegraded reports a write rejected because the store is degraded: a disk
// fault (ENOSPC, fsync failure) latched the WAL, so reads, subscriptions, and
// introspection keep serving but no statement can be made durable. A
// background probe repairs the log and promotes the store back to writable;
// the write is safe to retry after the probe interval.
var ErrDegraded = errors.New("server: store degraded (read-only): disk fault pending recovery")

// Resyncer is an optional CommitObserver extension. After the store promotes
// out of the degraded state it calls Resync with the engine and the current
// WAL seq: statements that applied in memory but failed durability never
// reached Commit, so derived state (materialized views) must rebuild from the
// engine's actual contents.
type Resyncer interface {
	Resync(db *engine.DB, seq uint64)
}

// defaultProbeInterval is how often the degraded-state probe retries disk
// recovery (and the retry-after hint handed to clients).
const defaultProbeInterval = time.Second

// StoreOptions configures a durable Store.
type StoreOptions struct {
	// Dir is the data directory (created if missing): checkpoint.sgb plus
	// wal-*.log segments.
	Dir string
	// Policy is the WAL fsync policy; the zero value is wal.SyncAlways.
	Policy wal.SyncPolicy
	// SyncInterval is the flush period under wal.SyncInterval.
	SyncInterval time.Duration
	// CheckpointInterval is the background checkpoint period; 0 disables the
	// background checkpointer (Checkpoint can still be called, and Close
	// always writes a final one).
	CheckpointInterval time.Duration
	// Metrics, when non-nil, replaces the recovered DB's registry before
	// replay so the wal_*/checkpoint_* series land in the server's registry.
	Metrics *obs.Registry
	// FS substitutes the filesystem (fault-injection tests); nil = real.
	FS wal.FS
	// Observer, when non-nil, follows the store's committed statement stream
	// (see CommitObserver). The stream layer hooks here to keep materialized
	// views incrementally maintained and to regenerate delta history on
	// recovery.
	Observer CommitObserver
	// ProbeInterval is how often the degraded-state probe attempts disk
	// recovery; 0 = one second. It doubles as the retry-after hint clients
	// receive with CodeReadOnly rejections.
	ProbeInterval time.Duration
}

// CommitObserver follows the store's committed statement stream — both the
// statements replayed from the WAL during recovery and every statement logged
// live afterwards — with each statement's WAL sequence number. Because the
// delta stream an observer derives is a deterministic function of the
// statement stream, replay regenerates exactly the history a crash lost.
//
// Bootstrap runs once during OpenStore, after the checkpoint image has loaded
// and before the WAL tail replays; seq is the sequence the checkpoint covers.
// Commit runs after a statement is applied and durable: during recovery from
// the replay loop, and live from inside the engine's commit hook (statement
// lock held, so observers may use engine read helpers like ScanFloats but
// must not re-enter the DB's statement path). Commit is infallible by design:
// view-maintenance problems must not fail writes, so observers record errors
// internally and surface them out of band.
type CommitObserver interface {
	Bootstrap(db *engine.DB, seq uint64)
	Commit(stmt engine.Statement, seq uint64)
}

// Store is a crash-durable engine.DB: a checkpoint snapshot plus a
// write-ahead log, wired into the engine's commit path. Open it with
// OpenStore; every acknowledged DML/DDL statement is appended (and, under
// SyncAlways, fsynced) to the log before the engine reports it successful,
// and recovery replays the log tail over the latest checkpoint.
type Store struct {
	opts StoreOptions
	db   *engine.DB
	log  *wal.Log
	fs   wal.FS

	// ckptMu serializes checkpoints (background timer vs Close vs manual).
	ckptMu   sync.Mutex
	replayed int

	// ckptSeq is the WAL sequence the latest durable checkpoint covers;
	// firstUncoveredNS is the unix-nano timestamp of the first commit after
	// that checkpoint (0 = the checkpoint covers everything). Together they
	// drive the checkpoint_lag_seq / checkpoint_lag_seconds gauges.
	ckptSeq          atomic.Uint64
	firstUncoveredNS atomic.Int64

	// degraded is the read-only latch: set on the first WAL append/fsync
	// failure, cleared by the probe after a successful log repair +
	// checkpoint. degradedMu guards the cause and entry time.
	degraded   atomic.Bool
	degradedMu sync.Mutex
	degradedAt time.Time
	degradedBy error

	stop      chan struct{}
	wg        sync.WaitGroup
	closeOnce sync.Once
	closeErr  error
}

// OpenStore recovers the database in opts.Dir — load the checkpoint if one
// exists, replay the WAL tail (truncating a torn final record), then open
// the log for appending and install the engine commit hook. The returned
// store is serving-ready.
func OpenStore(opts StoreOptions) (*Store, error) {
	if opts.FS == nil {
		opts.FS = wal.OS
	}
	if err := os.MkdirAll(opts.Dir, 0o755); err != nil {
		return nil, err
	}
	s := &Store{opts: opts, fs: opts.FS, stop: make(chan struct{})}

	db, seq, err := s.loadCheckpoint()
	if err != nil {
		return nil, err
	}
	s.db = db
	if opts.Metrics != nil {
		db.SetMetrics(opts.Metrics)
	}
	m := db.Metrics()

	// Bootstrap the observer against the checkpoint image before the tail
	// replays, so replayed statements arrive as incremental commits on top of
	// the bootstrapped state — the same sequence a live subscriber saw.
	if opts.Observer != nil {
		opts.Observer.Bootstrap(db, seq)
	}

	// Replay the tail. The commit hook is not installed yet, so replayed
	// statements are not re-appended to the log.
	st, err := wal.Replay(s.fs, opts.Dir, seq, func(rec wal.Record) error {
		if rec.Kind != wal.KindStatement {
			return nil // unknown kinds are forward-compatible no-ops
		}
		if _, err := db.ExecContext(context.Background(), string(rec.Data)); err != nil {
			return err
		}
		if opts.Observer != nil {
			// Re-parse so the observer sees the same typed statement the live
			// hook hands it; parse errors are impossible here (the statement
			// just executed).
			if parsed, perr := engine.Parse(string(rec.Data)); perr == nil {
				opts.Observer.Commit(parsed, rec.Seq)
			}
		}
		return nil
	})
	if err != nil {
		return nil, fmt.Errorf("server: wal recovery in %s: %w", opts.Dir, err)
	}
	s.replayed = st.Applied
	m.Counter("wal_replayed_records_total").Add(int64(st.Applied))
	if st.Truncated {
		m.Counter("wal_truncations_total").Inc()
	}

	// Seed the log past both the replayed tail and the checkpoint's covered
	// seq. After a graceful shutdown the trimmed log is empty (LastSeq 0) and
	// the checkpoint alone carries the position; restarting numbering below
	// it would make the next recovery skip freshly acknowledged records as
	// already covered.
	startSeq := st.LastSeq
	if seq > startSeq {
		startSeq = seq
	}
	log, err := wal.Open(wal.Options{
		Dir:      opts.Dir,
		Policy:   opts.Policy,
		Interval: opts.SyncInterval,
		FS:       s.fs,
		OnSync: func(d time.Duration) {
			m.Histogram("wal_fsync_seconds", obs.DefBuckets).Observe(d.Seconds())
		},
	}, startSeq)
	if err != nil {
		return nil, fmt.Errorf("server: opening wal in %s: %w", opts.Dir, err)
	}
	s.log = log
	s.ckptSeq.Store(seq)
	s.updateSegmentGauge()
	s.updateLagGauges()

	db.SetCommitHook(func(stmt engine.Statement, sql string, tr *obs.Trace) error {
		if !loggedStatement(stmt) {
			return nil
		}
		if sql == "" {
			return errors.New("server: cannot log a pre-parsed statement; execute SQL text")
		}
		// Degraded fast path: while the disk fault stands, reject writes with
		// the typed error instead of hammering the latched log. Reads never
		// reach the hook and keep serving.
		if s.degraded.Load() {
			return s.degradedError()
		}
		appendStart := time.Now()
		seq, syncDur, err := s.log.AppendSynced(wal.KindStatement, []byte(sql))
		if err != nil {
			// First disk fault: enter the managed degraded state. The probe
			// loop owns the way back.
			s.enterDegraded(err)
			return fmt.Errorf("%w: %w", ErrDegraded, err)
		}
		// Attribute the durability cost to the committing statement's trace:
		// wal_append is the record write, wal_fsync the inline fsync (zero
		// duration under interval/never policies, where no fsync blocks the
		// commit).
		total := time.Since(appendStart)
		tr.AddSpan("wal_append", appendStart, total-syncDur)
		tr.AddSpan("wal_fsync", appendStart.Add(total-syncDur), syncDur)
		m.Counter("wal_appends_total").Inc()
		m.Counter("wal_append_bytes_total").Add(int64(len(sql)))
		s.firstUncoveredNS.CompareAndSwap(0, time.Now().UnixNano())
		m.Gauge("checkpoint_lag_seq").Set(float64(s.log.LastSeq() - s.ckptSeq.Load()))
		if opts.Observer != nil {
			// After durability: the observer only ever sees acknowledged-able
			// statements, stamped with their WAL sequence.
			opts.Observer.Commit(stmt, seq)
		}
		return nil
	})

	if opts.CheckpointInterval > 0 {
		s.wg.Add(1)
		go s.checkpointLoop()
	}
	s.wg.Add(1)
	go s.lagLoop()
	m.Gauge("server_degraded").Set(0)
	s.wg.Add(1)
	go s.probeLoop()
	return s, nil
}

// probeInterval is the degraded-probe period / client retry-after hint.
func (s *Store) probeInterval() time.Duration {
	if s.opts.ProbeInterval > 0 {
		return s.opts.ProbeInterval
	}
	return defaultProbeInterval
}

// RetryAfter is the hint handed to clients with CodeReadOnly rejections: the
// earliest the probe could have promoted the store back to writable.
func (s *Store) RetryAfter() time.Duration { return s.probeInterval() }

// Degraded reports whether the store is in the read-only degraded state,
// with the triggering fault and entry time.
func (s *Store) Degraded() (degraded bool, cause error, since time.Time) {
	if !s.degraded.Load() {
		return false, nil, time.Time{}
	}
	s.degradedMu.Lock()
	defer s.degradedMu.Unlock()
	return true, s.degradedBy, s.degradedAt
}

// degradedError renders the current rejection, wrapping ErrDegraded so
// callers classify with errors.Is through the DurabilityError layer.
func (s *Store) degradedError() error {
	s.degradedMu.Lock()
	cause := s.degradedBy
	s.degradedMu.Unlock()
	if cause != nil {
		return fmt.Errorf("%w: %w", ErrDegraded, cause)
	}
	return ErrDegraded
}

// enterDegraded latches the read-only state (idempotent).
func (s *Store) enterDegraded(cause error) {
	if s.degraded.Swap(true) {
		return
	}
	s.degradedMu.Lock()
	s.degradedBy = cause
	s.degradedAt = time.Now()
	s.degradedMu.Unlock()
	m := s.db.Metrics()
	m.Gauge("server_degraded").Set(1)
	m.Counter("server_degraded_transitions_total").Inc()
}

// probeLoop is the way back from degraded: every probe interval it re-checks
// the disk and promotes the store to writable once a full repair succeeds.
func (s *Store) probeLoop() {
	defer s.wg.Done()
	t := time.NewTicker(s.probeInterval())
	defer t.Stop()
	for {
		select {
		case <-t.C:
			if s.degraded.Load() {
				s.tryPromote()
			}
		case <-s.stop:
			return
		}
	}
}

// tryPromote attempts the degraded→writable transition: recover the log (it
// truncates the torn tail and starts a fresh, clean segment — real disk I/O,
// so it fails while the fault persists), then write a checkpoint making every
// statement the engine has applied durable (statements whose hook failed are
// in memory with no WAL record — the snapshot is what makes them safe), then
// resync derived state, and only then reopen for writes.
func (s *Store) tryPromote() bool {
	m := s.db.Metrics()
	if err := s.log.Recover(); err != nil {
		m.Counter("server_degraded_probe_failures_total").Inc()
		return false
	}
	if err := s.Checkpoint(); err != nil {
		m.Counter("server_degraded_probe_failures_total").Inc()
		return false
	}
	if r, ok := s.opts.Observer.(Resyncer); ok {
		r.Resync(s.db, s.log.LastSeq())
	}
	s.degraded.Store(false)
	m.Gauge("server_degraded").Set(0)
	m.Counter("server_degraded_recoveries_total").Inc()
	return true
}

// loggedStatement reports whether stmt belongs in the WAL: the catalog- and
// data-mutating statements. Plain views are session-scoped query definitions
// and are not persisted (matching snapshots), so their DDL is not logged;
// materialized views are durable catalog objects, so theirs is.
func loggedStatement(stmt engine.Statement) bool {
	switch stmt.(type) {
	case *engine.InsertStmt, *engine.UpdateStmt, *engine.DeleteStmt, *engine.CopyStmt,
		*engine.CreateTableStmt, *engine.DropTableStmt,
		*engine.CreateIndexStmt, *engine.DropIndexStmt,
		*engine.CreateMaterializedViewStmt, *engine.DropMaterializedViewStmt:
		return true
	}
	return false
}

// DB returns the recovered database. Its commit hook is owned by the store;
// do not replace it.
func (s *Store) DB() *engine.DB { return s.db }

// ReplayedRecords reports how many WAL records recovery applied at open.
func (s *Store) ReplayedRecords() int { return s.replayed }

// loadCheckpoint reads checkpoint.sgb if present. A missing file starts
// empty; a corrupt one (bad magic or CRC — e.g. a torn write from a crash
// during a pre-rename filesystem, which the atomic rename protocol should
// prevent) is an error rather than silent data loss.
func (s *Store) loadCheckpoint() (*engine.DB, uint64, error) {
	path := filepath.Join(s.opts.Dir, checkpointFile)
	f, err := s.fs.Open(path)
	if err != nil {
		if os.IsNotExist(err) {
			return engine.NewDB(), 0, nil
		}
		return nil, 0, err
	}
	defer f.Close()
	raw, err := io.ReadAll(f)
	if err != nil {
		return nil, 0, err
	}
	if len(raw) < len(checkpointMagic)+12 || string(raw[:len(checkpointMagic)]) != checkpointMagic {
		return nil, 0, fmt.Errorf("server: checkpoint %s: bad header", path)
	}
	seq := binary.BigEndian.Uint64(raw[8:16])
	wantCRC := binary.BigEndian.Uint32(raw[16:20])
	body := raw[20:]
	if crc32.Checksum(body, crcTable) != wantCRC {
		return nil, 0, fmt.Errorf("server: checkpoint %s: checksum mismatch", path)
	}
	db, err := engine.Load(bytes.NewReader(body))
	if err != nil {
		return nil, 0, fmt.Errorf("server: checkpoint %s: %w", path, err)
	}
	return db, seq, nil
}

// Checkpoint writes a snapshot covering every committed statement, durably
// and atomically (temp file, fsync, rename, directory fsync), then rotates
// the log and trims segments the snapshot covers — bounding recovery time.
func (s *Store) Checkpoint() error {
	s.ckptMu.Lock()
	defer s.ckptMu.Unlock()
	m := s.db.Metrics()
	start := time.Now()

	// SaveLocked holds the statement lock in read mode, and commits append
	// under the exclusive lock, so the captured seq is exactly the last
	// statement inside the snapshot.
	var buf bytes.Buffer
	var seq uint64
	if err := s.db.SaveLocked(&buf, func() { seq = s.log.LastSeq() }); err != nil {
		m.Counter("checkpoint_failures_total").Inc()
		return err
	}

	path := filepath.Join(s.opts.Dir, checkpointFile)
	tmp := path + ".tmp"
	if err := s.writeCheckpointFile(tmp, seq, buf.Bytes()); err != nil {
		m.Counter("checkpoint_failures_total").Inc()
		_ = s.fs.Remove(tmp)
		return err
	}
	if err := s.fs.Rename(tmp, path); err != nil {
		m.Counter("checkpoint_failures_total").Inc()
		_ = s.fs.Remove(tmp)
		return err
	}
	if err := s.fs.SyncDir(s.opts.Dir); err != nil {
		m.Counter("checkpoint_failures_total").Inc()
		return err
	}

	// The snapshot is durable: the log prefix it covers can be released.
	if err := s.log.Rotate(); err != nil {
		return err
	}
	if _, err := s.log.TrimBefore(seq); err != nil {
		return err
	}
	s.updateSegmentGauge()
	s.ckptSeq.Store(seq)
	// If commits landed while the snapshot was being written they remain
	// uncovered; restart the lag clock at the checkpoint instant rather than
	// keeping the older stamp.
	if s.log.LastSeq() == seq {
		s.firstUncoveredNS.Store(0)
	} else {
		s.firstUncoveredNS.Store(time.Now().UnixNano())
	}
	s.updateLagGauges()
	m.Counter("checkpoints_total").Inc()
	m.Gauge("checkpoint_last_seq").Set(float64(seq))
	m.Histogram("checkpoint_seconds", obs.DefBuckets).Observe(time.Since(start).Seconds())
	return nil
}

// writeCheckpointFile writes and fsyncs one checkpoint image at path.
func (s *Store) writeCheckpointFile(path string, seq uint64, body []byte) error {
	f, err := s.fs.Create(path)
	if err != nil {
		return err
	}
	hdr := make([]byte, 0, 20)
	hdr = append(hdr, checkpointMagic...)
	hdr = binary.BigEndian.AppendUint64(hdr, seq)
	hdr = binary.BigEndian.AppendUint32(hdr, crc32.Checksum(body, crcTable))
	_, err = f.Write(hdr)
	if err == nil {
		_, err = f.Write(body)
	}
	if err == nil {
		err = f.Sync()
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	return err
}

func (s *Store) updateSegmentGauge() {
	if n, err := s.log.SegmentCount(); err == nil {
		s.db.Metrics().Gauge("wal_segments").Set(float64(n))
	}
}

// updateLagGauges refreshes the durability-telemetry gauges: how far the log
// has run ahead of the last checkpoint (in records and in seconds) and the
// log's on-disk footprint.
func (s *Store) updateLagGauges() {
	m := s.db.Metrics()
	m.Gauge("checkpoint_lag_seq").Set(float64(s.log.LastSeq() - s.ckptSeq.Load()))
	var lagSec float64
	if ns := s.firstUncoveredNS.Load(); ns > 0 {
		lagSec = time.Since(time.Unix(0, ns)).Seconds()
	}
	m.Gauge("checkpoint_lag_seconds").Set(lagSec)
	if n, err := s.log.SizeBytes(); err == nil {
		m.Gauge("wal_size_bytes").Set(float64(n))
	}
}

// lagLoop keeps the checkpoint-lag and WAL-size gauges fresh between
// commits, so an idle-but-behind server still reports its true lag.
func (s *Store) lagLoop() {
	defer s.wg.Done()
	t := time.NewTicker(time.Second)
	defer t.Stop()
	for {
		select {
		case <-t.C:
			s.updateLagGauges()
			s.updateSegmentGauge()
		case <-s.stop:
			return
		}
	}
}

// checkpointLoop is the background checkpointer.
func (s *Store) checkpointLoop() {
	defer s.wg.Done()
	t := time.NewTicker(s.opts.CheckpointInterval)
	defer t.Stop()
	for {
		select {
		case <-t.C:
			// Failures are counted (checkpoint_failures_total) and retried
			// next tick; the WAL still protects everything since the last
			// successful checkpoint.
			_ = s.Checkpoint()
		case <-s.stop:
			return
		}
	}
}

// Close stops the checkpointer, writes a final checkpoint (the graceful-
// shutdown snapshot), and closes the log. Safe to call more than once.
//
// Close fences the commit path rather than unhooking it: any mutating
// statement that reaches the engine after the fence fails with
// ErrStoreClosed instead of being acknowledged with neither a WAL record nor
// checkpoint coverage. The fence stays installed after Close — this store
// owns the DB's durability and can no longer provide it.
func (s *Store) Close() error {
	s.closeOnce.Do(func() {
		close(s.stop)
		s.wg.Wait()
		s.db.SetCommitHook(func(stmt engine.Statement, _ string, _ *obs.Trace) error {
			if !loggedStatement(stmt) {
				return nil
			}
			return ErrStoreClosed
		})
		var err error
		if s.degraded.Load() && s.log.Recover() != nil {
			// Disk still broken: a final snapshot cannot be written. Safe —
			// no write was acknowledged while degraded, so the last durable
			// checkpoint plus the WAL still cover everything acknowledged.
			err = s.degradedError()
		} else {
			err = s.Checkpoint()
		}
		if cerr := s.log.Close(); err == nil {
			err = cerr
		}
		s.closeErr = err
	})
	return s.closeErr
}
