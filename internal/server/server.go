// Package server is sgbd's serving layer: a TCP listener speaking the
// internal/wire protocol, with one session goroutine per connection layered
// over a shared engine.DB.
//
// Each connection gets its own engine.Session, so the execution knobs a
// client adjusts over the wire (SGB algorithm, parallelism, batch size,
// resource limits) are scoped to that connection and resolved at plan time —
// two clients can never race each other's settings. Statements execute under
// a per-query context wired into engine.ExecContext, so a wire Cancel frame
// aborts an in-flight query promptly while the connection stays usable.
//
// The server enforces a connection limit and an idle timeout, exports
// server_* metrics through the engine's obs registry, and drains gracefully:
// Shutdown stops accepting, lets in-flight statements finish (bounded by the
// caller's context), then force-closes whatever remains.
package server

import (
	"context"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"sgb/internal/engine"
	"sgb/internal/obs"
	"sgb/internal/stream"
	"sgb/internal/wire"
)

// Config tunes a Server. The zero value listens on a random localhost port
// with no connection limit and no idle timeout.
type Config struct {
	// Addr is the TCP listen address; empty means "127.0.0.1:0".
	Addr string
	// MaxConns caps concurrently open connections; 0 means unlimited.
	// Connections over the limit are rejected with CodeTooManyConnections.
	MaxConns int
	// IdleTimeout closes connections with no client activity between
	// statements; 0 disables. The timer never fires mid-query.
	IdleTimeout time.Duration
	// ServerName is the identification string in the Welcome handshake.
	// Empty means "sgbd".
	ServerName string
	// SlowQueryThreshold selects which finished statements enter the
	// slow-query log: those at least this slow. 0 logs every statement;
	// negative disables the slowlog entirely.
	SlowQueryThreshold time.Duration
	// SlowLogSize is the slow-query ring buffer capacity; 0 means 128.
	SlowLogSize int
	// Streams, when non-nil, serves SUBSCRIBE: it is the stream manager
	// maintaining the materialized similarity-group views (wired to the same
	// DB via the store observer or AttachEngine). Subscribe frames are
	// rejected when nil.
	Streams *stream.Manager
	// Store, when non-nil, is the durable store the server fronts. The
	// serving layer uses it to map degraded-state write rejections to
	// CodeReadOnly with the probe interval as the retry-after hint.
	Store *Store
	// MaxActiveQueries caps statements executing concurrently across all
	// connections; 0 = unlimited. Excess statements wait in a bounded
	// admission queue and are shed with CodeOverloaded beyond it.
	MaxActiveQueries int
	// AdmissionQueue bounds how many statements may wait for an execution
	// slot when MaxActiveQueries is reached; 0 = 64. Statements beyond the
	// bound are refused immediately with CodeOverloaded and a retry-after
	// hint — shedding early beats queueing without bound.
	AdmissionQueue int
}

// defaultAdmissionQueue is the statement wait-queue bound when Config leaves
// AdmissionQueue 0 (and MaxActiveQueries is set).
const defaultAdmissionQueue = 64

// shedRetryAfter is the retry-after hint attached to CodeOverloaded sheds: a
// beat longer than a typical queued statement takes to drain.
const shedRetryAfter = 250 * time.Millisecond

// defaultSlowLogSize is the slow-query ring capacity when Config leaves it 0.
const defaultSlowLogSize = 128

// Server is a running sgbd listener. Create with New, start with Start.
type Server struct {
	cfg Config
	db  *engine.DB
	ln  net.Listener

	mu       sync.Mutex
	conns    map[*conn]struct{}
	draining bool

	// procMu guards the process list of in-flight queries; slowlog is the
	// finished-query ring buffer (internally synchronized).
	procMu  sync.Mutex
	procs   map[*procEntry]struct{}
	slowlog *obs.SlowLog

	// slots is the statement-admission semaphore (nil = unlimited); queued
	// counts statements waiting for a slot against cfg.AdmissionQueue.
	slots  chan struct{}
	queued atomic.Int64

	wg sync.WaitGroup // accept loop + one goroutine per connection
}

// New prepares a server over db. The db's metrics registry gains the
// server_* series.
func New(db *engine.DB, cfg Config) *Server {
	if cfg.Addr == "" {
		cfg.Addr = "127.0.0.1:0"
	}
	if cfg.ServerName == "" {
		cfg.ServerName = "sgbd"
	}
	if cfg.SlowLogSize <= 0 {
		cfg.SlowLogSize = defaultSlowLogSize
	}
	if cfg.AdmissionQueue <= 0 {
		cfg.AdmissionQueue = defaultAdmissionQueue
	}
	s := &Server{
		cfg:     cfg,
		db:      db,
		conns:   make(map[*conn]struct{}),
		procs:   make(map[*procEntry]struct{}),
		slowlog: obs.NewSlowLog(cfg.SlowLogSize),
	}
	if cfg.MaxActiveQueries > 0 {
		s.slots = make(chan struct{}, cfg.MaxActiveQueries)
	}
	return s
}

// DB returns the shared database the server serves.
func (s *Server) DB() *engine.DB { return s.db }

// Start binds the listen address and begins accepting connections in a
// background goroutine. It returns once the listener is bound, so Addr is
// valid immediately after.
func (s *Server) Start() error {
	ln, err := net.Listen("tcp", s.cfg.Addr)
	if err != nil {
		return fmt.Errorf("server: listen %s: %w", s.cfg.Addr, err)
	}
	s.ln = ln
	// Pre-register the server metric series so a scrape before the first
	// connection still sees them at zero.
	m := s.db.Metrics()
	m.Gauge("server_connections_open")
	m.Counter("server_connections_total")
	m.Gauge("server_sessions_active")
	m.Counter("server_bytes_in_total")
	m.Counter("server_bytes_out_total")
	m.Counter("server_slow_queries_total")
	m.Histogram("server_wire_decode_seconds", obs.DefBuckets)
	m.Histogram("server_wire_execute_seconds", obs.DefBuckets)
	m.Histogram("server_wire_stream_seconds", obs.DefBuckets)
	m.Gauge("server_degraded")
	m.Gauge("server_admission_queued")
	m.Counter("server_queries_shed_total")
	m.Counter("server_panics_recovered_total")

	s.wg.Add(1)
	go s.acceptLoop()
	return nil
}

// Addr reports the bound listen address (useful with ":0").
func (s *Server) Addr() net.Addr { return s.ln.Addr() }

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		nc, err := s.ln.Accept()
		if err != nil {
			// Listener closed: shutdown.
			return
		}
		s.admit(nc)
	}
}

// admit applies the drain state and connection limit, then hands the
// connection to its session goroutine.
func (s *Server) admit(nc net.Conn) {
	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		rejectConn(nc, wire.CodeShuttingDown, "server is shutting down")
		return
	}
	if s.cfg.MaxConns > 0 && len(s.conns) >= s.cfg.MaxConns {
		s.mu.Unlock()
		s.db.Metrics().Counter("server_connections_rejected_total").Inc()
		rejectConn(nc, wire.CodeTooManyConnections,
			fmt.Sprintf("connection limit (%d) reached", s.cfg.MaxConns))
		return
	}
	c := newConn(s, nc)
	s.conns[c] = struct{}{}
	s.mu.Unlock()

	m := s.db.Metrics()
	m.Counter("server_connections_total").Inc()
	m.Gauge("server_connections_open").Add(1)

	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		c.serve()
		s.mu.Lock()
		delete(s.conns, c)
		s.mu.Unlock()
		m.Gauge("server_connections_open").Add(-1)
	}()
}

// rejectConn sends a terminal error frame on a connection that never gets a
// session, then closes it. Best effort with a short deadline: a stalled peer
// must not wedge the accept loop's goroutine.
func rejectConn(nc net.Conn, code uint16, msg string) {
	nc.SetWriteDeadline(time.Now().Add(2 * time.Second))
	_ = wire.WriteMessage(nc, &wire.Error{Code: code, Message: msg})
	nc.Close()
}

// Shutdown drains the server: it stops accepting, closes idle connections,
// and lets in-flight statements finish. When ctx expires first, remaining
// statements are canceled and their connections force-closed. Shutdown
// returns once every session goroutine has exited.
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		return errors.New("server: already shut down")
	}
	s.draining = true
	conns := make([]*conn, 0, len(s.conns))
	for c := range s.conns {
		conns = append(conns, c)
	}
	s.mu.Unlock()

	if s.ln != nil {
		s.ln.Close()
	}
	for _, c := range conns {
		c.beginDrain()
	}

	done := make(chan struct{})
	go func() { s.wg.Wait(); close(done) }()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
	}
	// Grace period over: abort in-flight queries and close the sockets.
	for _, c := range conns {
		c.forceClose()
	}
	<-done
	return ctx.Err()
}
