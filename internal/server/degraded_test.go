package server

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"sgb/internal/client"
	"sgb/internal/engine"
	"sgb/internal/wal"
	"sgb/internal/wire"
)

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// TestStoreDegradedPromotes is the full degraded-state round trip: a disk
// that fills mid-write latches the store read-only, reads keep serving, and
// once the disk is restored the background probe promotes the store back to
// writable — with every applied statement durable across a restart.
func TestStoreDegradedPromotes(t *testing.T) {
	dir := t.TempDir()
	ffs := wal.NewFaultFS(wal.OS)
	s, err := OpenStore(StoreOptions{Dir: dir, FS: ffs, ProbeInterval: 10 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	mustExec(t, s.DB(), "CREATE TABLE t (x INT)")
	for i := 0; i < 3; i++ {
		mustExec(t, s.DB(), fmt.Sprintf("INSERT INTO t VALUES (%d)", i))
	}

	// The disk fills: the next append tears and the store degrades. The
	// statement applied in memory before the hook ran, so it is visible to
	// reads (and the promotion checkpoint will make it durable) but was never
	// acknowledged to the caller.
	ffs.FailWithENOSPCAfter(0)
	_, err = s.DB().Exec("INSERT INTO t VALUES (100)")
	if !errors.Is(err, ErrDegraded) {
		t.Fatalf("write on full disk: %v, want ErrDegraded in the chain", err)
	}
	degraded, cause, since := s.Degraded()
	if !degraded || !errors.Is(cause, wal.ErrNoSpace) || since.IsZero() {
		t.Fatalf("Degraded() = %v/%v/%v after ENOSPC", degraded, cause, since)
	}
	if got := s.DB().Metrics().Gauge("server_degraded").Value(); got != 1 {
		t.Fatalf("server_degraded = %v while degraded", got)
	}
	if s.RetryAfter() != 10*time.Millisecond {
		t.Fatalf("RetryAfter() = %v, want the probe interval", s.RetryAfter())
	}
	// Reads keep serving the in-process state while the disk is broken.
	if n := countRows(t, s.DB(), "t"); n != 4 {
		t.Fatalf("read while degraded: %d rows, want 4 (3 acked + 1 applied-unacked)", n)
	}
	// The probe keeps failing while the disk stays full; the store stays
	// read-only and keeps rejecting writes fast.
	time.Sleep(30 * time.Millisecond)
	if d, _, _ := s.Degraded(); !d {
		t.Fatal("store promoted while the disk was still full")
	}
	if _, err := s.DB().Exec("INSERT INTO t VALUES (101)"); !errors.Is(err, ErrDegraded) {
		t.Fatalf("write while degraded: %v, want ErrDegraded", err)
	}

	// Disk space frees up: the probe repairs the log, checkpoints, and
	// promotes without any operator call.
	ffs.RestoreDisk()
	waitFor(t, "probe promotion", func() bool { d, _, _ := s.Degraded(); return !d })
	m := s.DB().Metrics()
	if got := m.Gauge("server_degraded").Value(); got != 0 {
		t.Fatalf("server_degraded = %v after promotion", got)
	}
	if got := m.Counter("server_degraded_recoveries_total").Value(); got == 0 {
		t.Fatal("server_degraded_recoveries_total not incremented")
	}
	mustExec(t, s.DB(), "INSERT INTO t VALUES (200)")
	if err := s.Close(); err != nil {
		t.Fatalf("close after promotion: %v", err)
	}

	// Restart: the acked prefix, both applied-during-fault statements (made
	// durable by the promotion checkpoint), and the post-promotion write all
	// survive.
	s2, err := OpenStore(StoreOptions{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if n := countRows(t, s2.DB(), "t"); n != 6 {
		t.Fatalf("recovered %d rows, want 6", n)
	}
}

// TestStoreDegradedPromoteRetriesCheckpointFault: promotion is atomic — if
// the log repairs but the checkpoint-publish rename fails, the store stays
// degraded and the next probe tick completes the promotion.
func TestStoreDegradedPromoteRetriesCheckpointFault(t *testing.T) {
	dir := t.TempDir()
	ffs := wal.NewFaultFS(wal.OS)
	s, err := OpenStore(StoreOptions{Dir: dir, FS: ffs, ProbeInterval: 10 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	mustExec(t, s.DB(), "CREATE TABLE t (x INT)")
	mustExec(t, s.DB(), "INSERT INTO t VALUES (1)")

	// A delayed-allocation disk: the write lands but the fsync reports ENOSPC.
	ffs.FailSyncAtErr(1, wal.ErrNoSpace)
	if _, err := s.DB().Exec("INSERT INTO t VALUES (2)"); !errors.Is(err, ErrDegraded) {
		t.Fatalf("write with failing fsync: %v, want ErrDegraded", err)
	}
	// Heal the fsyncs but fail the next checkpoint rename: the first probe's
	// Recover succeeds, its Checkpoint does not, and the store must stay
	// degraded rather than promote with no durable snapshot.
	ffs.FailSyncAtErr(0, nil)
	ffs.FailRenameAt(1)
	m := s.DB().Metrics()
	waitFor(t, "a failed promotion probe", func() bool {
		return m.Counter("server_degraded_probe_failures_total").Value() > 0
	})
	// The rename fault is one-shot, so a later tick finishes the job.
	waitFor(t, "probe promotion after checkpoint retry", func() bool {
		d, _, _ := s.Degraded()
		return !d
	})
	mustExec(t, s.DB(), "INSERT INTO t VALUES (3)")
	if n := countRows(t, s.DB(), "t"); n != 3 {
		t.Fatalf("%d rows after recovered promotion, want 3", n)
	}
}

// TestServerDegradedReadOnlyOverWire drives the degraded state end to end
// through the wire protocol: writes come back as CodeReadOnly with the probe
// interval as a retry-after hint, reads keep streaming rows, and after the
// disk recovers the same session's writes succeed again.
func TestServerDegradedReadOnlyOverWire(t *testing.T) {
	dir := t.TempDir()
	ffs := wal.NewFaultFS(wal.OS)
	store, err := OpenStore(StoreOptions{Dir: dir, FS: ffs, ProbeInterval: 20 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { store.Close() })
	srv := startServer(t, store.DB(), Config{Store: store})
	c := connect(t, srv)

	if _, err := c.Exec("CREATE TABLE t (x INT)"); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Exec("INSERT INTO t VALUES (1), (2)"); err != nil {
		t.Fatal(err)
	}

	ffs.FailWithENOSPCAfter(0)
	_, err = c.Exec("INSERT INTO t VALUES (3)")
	var se *client.ServerError
	if !errors.As(err, &se) || se.Code != wire.CodeReadOnly {
		t.Fatalf("write on degraded server: %v, want CodeReadOnly ServerError", err)
	}
	if se.RetryAfterMS == 0 {
		t.Fatal("CodeReadOnly rejection carried no retry-after hint")
	}
	if se.RetryAfter() != 20*time.Millisecond {
		t.Fatalf("retry-after hint %v, want the 20ms probe interval", se.RetryAfter())
	}
	// The same connection keeps serving reads while degraded.
	res, err := c.Exec("SELECT count(*) FROM t")
	if err != nil {
		t.Fatalf("read on degraded server: %v", err)
	}
	if res.Rows[0][0].I != 3 {
		t.Fatalf("read %d rows while degraded, want 3 (applied-unacked included)", res.Rows[0][0].I)
	}

	// Disk restored: retrying per the hint eventually succeeds on the same
	// connection, exactly what a well-behaved client does with the hint.
	ffs.RestoreDisk()
	waitFor(t, "a write to succeed after restore", func() bool {
		_, err := c.Exec("INSERT INTO t VALUES (4)")
		return err == nil
	})
}

// TestServerPanicIsolation: a panic inside statement execution must be
// contained to that statement — the client gets CodeInternal, the connection
// stays usable, the daemon keeps serving, and the stack lands in the slowlog
// trace for diagnosis.
func TestServerPanicIsolation(t *testing.T) {
	db := engine.NewDB()
	loadPoints(t, db, 100)
	// Threshold 0 logs every statement, so the panicking one reaches the
	// slowlog with its annotated trace.
	srv := startServer(t, db, Config{SlowQueryThreshold: 0})
	db.SetExecHook(func(sql string) {
		if strings.Contains(sql, "424242") {
			panic("injected engine bug")
		}
	})
	defer db.SetExecHook(nil)
	c := connect(t, srv)

	_, err := c.Exec("SELECT count(*) FROM pts WHERE id = 424242")
	var se *client.ServerError
	if !errors.As(err, &se) || se.Code != wire.CodeInternal {
		t.Fatalf("panicking statement returned %v, want CodeInternal ServerError", err)
	}
	if !strings.Contains(se.Message, "panicked") {
		t.Fatalf("error message %q does not mention the panic", se.Message)
	}
	// The connection survives and serves the next statement.
	res, err := c.Exec("SELECT count(*) FROM pts")
	if err != nil {
		t.Fatalf("statement after panic on same connection: %v", err)
	}
	if res.Rows[0][0].I != 100 {
		t.Fatalf("count after panic = %d, want 100", res.Rows[0][0].I)
	}
	// So does a fresh connection — the daemon never went down.
	c2 := connect(t, srv)
	if _, err := c2.Exec("SELECT count(*) FROM pts"); err != nil {
		t.Fatalf("fresh connection after panic: %v", err)
	}
	if got := db.Metrics().Counter("server_panics_recovered_total").Value(); got == 0 {
		t.Fatal("server_panics_recovered_total not incremented")
	}
	// The stack trace is captured on the statement's slowlog entry.
	waitFor(t, "the panic in the slowlog", func() bool {
		for _, q := range srv.SlowLog().Entries() {
			if !strings.Contains(q.SQL, "424242") {
				continue
			}
			var sawPanic, sawStack bool
			for _, n := range q.Trace.Notes {
				if strings.Contains(n, "panic: injected engine bug") {
					sawPanic = true
				}
				if strings.Contains(n, "goroutine") { // debug.Stack output
					sawStack = true
				}
			}
			return sawPanic && sawStack
		}
		return false
	})
}

// TestServerAdmissionQueueAndShed: with one execution slot and a one-deep
// admission queue, a second statement queues (visible in the process list)
// and a third sheds immediately with CodeOverloaded plus a retry-after hint;
// once the slot frees, the queued statement completes normally.
func TestServerAdmissionQueueAndShed(t *testing.T) {
	db := engine.NewDB()
	loadPoints(t, db, 50)
	srv := startServer(t, db, Config{
		MaxActiveQueries:   1,
		AdmissionQueue:     1,
		SlowQueryThreshold: -1,
	})
	block := make(chan struct{})
	var unblock sync.Once
	release := func() { unblock.Do(func() { close(block) }) }
	defer release()
	db.SetExecHook(func(sql string) {
		if strings.Contains(sql, "777000") {
			<-block
		}
	})
	defer db.SetExecHook(nil)

	// Statement 1 takes the only slot and parks inside the engine.
	c1 := connect(t, srv)
	slotHeld := make(chan error, 1)
	go func() {
		_, err := c1.Exec("SELECT count(*) FROM pts WHERE id = 777000")
		slotHeld <- err
	}()
	waitFor(t, "the blocking statement to hold the slot", func() bool {
		return len(srv.ProcessList()) == 1
	})

	// Statement 2 queues for admission; the process list shows it waiting.
	c2 := connect(t, srv)
	queuedDone := make(chan error, 1)
	go func() {
		_, err := c2.Exec("SELECT count(*) FROM pts")
		queuedDone <- err
	}()
	waitFor(t, "a queued statement in the process list", func() bool {
		for _, q := range srv.ProcessList() {
			if q.State == "queued" {
				return true
			}
		}
		return false
	})
	if got := db.Metrics().Gauge("server_admission_queued").Value(); got != 1 {
		t.Fatalf("server_admission_queued = %v with one waiter", got)
	}

	// Statement 3 finds the queue full: shed, not queued, with a hint.
	c3 := connect(t, srv)
	_, err := c3.Exec("SELECT count(*) FROM pts")
	var se *client.ServerError
	if !errors.As(err, &se) || se.Code != wire.CodeOverloaded {
		t.Fatalf("over-queue statement returned %v, want CodeOverloaded ServerError", err)
	}
	if se.RetryAfter() != shedRetryAfter {
		t.Fatalf("shed hint %v, want %v", se.RetryAfter(), shedRetryAfter)
	}
	if got := db.Metrics().Counter("server_queries_shed_total").Value(); got == 0 {
		t.Fatal("server_queries_shed_total not incremented")
	}
	// The shed connection remains usable once load drops.
	release()
	if err := <-slotHeld; err != nil {
		t.Fatalf("blocking statement: %v", err)
	}
	if err := <-queuedDone; err != nil {
		t.Fatalf("queued statement: %v", err)
	}
	if _, err := c3.Exec("SELECT count(*) FROM pts"); err != nil {
		t.Fatalf("shed connection after load dropped: %v", err)
	}
	waitFor(t, "the admission-queued gauge to drain", func() bool {
		return db.Metrics().Gauge("server_admission_queued").Value() == 0
	})
}

// TestServerQueuedStatementCancel: a wire Cancel aborts a statement still
// waiting for admission — it never takes a slot, the client gets
// CodeCanceled, and the connection stays usable.
func TestServerQueuedStatementCancel(t *testing.T) {
	db := engine.NewDB()
	loadPoints(t, db, 50)
	srv := startServer(t, db, Config{
		MaxActiveQueries:   1,
		AdmissionQueue:     4,
		SlowQueryThreshold: -1,
	})
	block := make(chan struct{})
	var unblock sync.Once
	release := func() { unblock.Do(func() { close(block) }) }
	defer release()
	db.SetExecHook(func(sql string) {
		if strings.Contains(sql, "777000") {
			<-block
		}
	})
	defer db.SetExecHook(nil)

	c1 := connect(t, srv)
	slotHeld := make(chan error, 1)
	go func() {
		_, err := c1.Exec("SELECT count(*) FROM pts WHERE id = 777000")
		slotHeld <- err
	}()
	waitFor(t, "the blocking statement to hold the slot", func() bool {
		return len(srv.ProcessList()) == 1
	})

	c2 := connect(t, srv)
	ctx, cancel := context.WithCancel(context.Background())
	queuedDone := make(chan error, 1)
	go func() {
		_, err := c2.Query(ctx, "SELECT count(*) FROM pts")
		queuedDone <- err
	}()
	waitFor(t, "the statement to queue", func() bool {
		for _, q := range srv.ProcessList() {
			if q.State == "queued" {
				return true
			}
		}
		return false
	})
	cancel()
	select {
	case err := <-queuedDone:
		if err == nil {
			t.Fatal("canceled queued statement succeeded")
		}
	case <-time.After(10 * time.Second):
		t.Fatal("canceled queued statement never returned")
	}
	// The connection survives the canceled-while-queued statement.
	release()
	if err := <-slotHeld; err != nil {
		t.Fatalf("blocking statement: %v", err)
	}
	if _, err := c2.Exec("SELECT count(*) FROM pts"); err != nil {
		t.Fatalf("connection after queued cancel: %v", err)
	}
}

// TestHealthDegradedReadyz: a degraded store stays ready (it serves reads)
// but /readyz reports the state for operators and balancers.
func TestHealthDegradedReadyz(t *testing.T) {
	h := NewHealth()
	mux := http.NewServeMux()
	h.Register(mux)
	h.SetReady(true)
	degraded := false
	h.SetDegradedFunc(func() bool { return degraded })

	get := func() (int, string) {
		req := httptest.NewRequest("GET", "/readyz", nil)
		rec := httptest.NewRecorder()
		mux.ServeHTTP(rec, req)
		return rec.Code, rec.Body.String()
	}
	if code, body := get(); code != http.StatusOK || strings.Contains(body, "degraded") {
		t.Fatalf("healthy readyz: %d %q", code, body)
	}
	degraded = true
	if code, body := get(); code != http.StatusOK || !strings.Contains(body, "degraded") {
		t.Fatalf("degraded readyz: %d %q — must stay 200 but report the state", code, body)
	}
}
