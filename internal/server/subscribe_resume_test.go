package server_test

import (
	"context"
	"fmt"
	"reflect"
	"runtime"
	"sync"
	"syscall"
	"testing"
	"time"

	"sgb/internal/client"
	"sgb/internal/stream"
)

// TestSubscribeResumeKill9 is the streaming acceptance crash test: a managed
// subscription rides through a kill -9 of the server mid-ingest. The client
// reconnects with its resume token, the restarted server regenerates delta
// history from WAL replay, and the subscriber's replayed state must converge
// on the server's — no lost and no duplicated deltas for consumed sequences.
func TestSubscribeResumeKill9(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and kills a real sgbd process")
	}
	if runtime.GOOS == "windows" {
		t.Skip("SIGKILL semantics")
	}
	dataDir := t.TempDir()
	p := startSgbd(t, dataDir)
	defer p.cmd.Process.Kill()

	setup, err := client.Connect(p.addr)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := setup.Exec("CREATE TABLE pts (x FLOAT, y FLOAT)"); err != nil {
		t.Fatal(err)
	}
	if _, err := setup.Exec("CREATE MATERIALIZED VIEW live_v AS SELECT x, y FROM pts GROUP BY x, y DISTANCE-TO-ANY L2 WITHIN 1.5"); err != nil {
		t.Fatal(err)
	}
	setup.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	sub, err := client.Subscribe(ctx, p.addr, "live_v", client.Options{
		MaxRetries: 100, BaseDelay: 50 * time.Millisecond, MaxDelay: 500 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}

	// The consumer replays every event into state, checking the no-dup /
	// no-loss discipline as it goes: within one attach, delta sequences never
	// move backwards (snapshot-image deltas legitimately share one Seq).
	var (
		mu      sync.Mutex
		state   = make(map[int64][]int64)
		lastSeq uint64
		seqErr  error
	)
	consumerDone := make(chan struct{})
	go func() {
		defer close(consumerDone)
		for ev := range sub.Events {
			mu.Lock()
			if ev.Rebase {
				state = make(map[int64][]int64)
				lastSeq = 0
			} else {
				if ev.Delta.Seq < lastSeq && seqErr == nil {
					seqErr = fmt.Errorf("delta seq regressed: %d after %d", ev.Delta.Seq, lastSeq)
				}
				lastSeq = ev.Delta.Seq
				stream.Apply(state, ev.Delta)
			}
			mu.Unlock()
		}
	}()

	// Phase 1: acknowledged single-row inserts until the crash. Points land
	// on a sparse diagonal so most inserts create groups and some merge.
	insert := func(conn *client.Conn, i int) error {
		_, err := conn.Exec(fmt.Sprintf("INSERT INTO pts VALUES (%d.0, %d.5)", i%40, (i*3)%20))
		return err
	}
	writer, err := client.Connect(p.addr)
	if err != nil {
		t.Fatal(err)
	}
	acked := 0
	for i := 0; acked < 25; i++ {
		if err := insert(writer, i); err != nil {
			t.Fatalf("pre-crash insert %d: %v", i, err)
		}
		acked++
	}
	writer.Close()

	// Kill -9 with the subscription live, then restart on the same address
	// so the managed subscription's reconnect loop finds the new process.
	p.cmd.Process.Signal(syscall.SIGKILL)
	p.cmd.Wait()
	p2 := startSgbd(t, dataDir, "-addr", p.addr)
	defer func() {
		p2.cmd.Process.Signal(syscall.SIGTERM)
		p2.cmd.Wait()
	}()

	// Phase 2: more acknowledged writes after recovery.
	writer2, err := client.ConnectContext(ctx, p2.addr, client.Options{MaxRetries: 20, BaseDelay: 50 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1000; i < 1015; i++ {
		if err := insert(writer2, i); err != nil {
			t.Fatalf("post-recovery insert %d: %v", i, err)
		}
	}

	// Reference: a fresh snapshot attach serves the server's current state.
	reference := func() map[int64][]int64 {
		c, err := client.Connect(p2.addr)
		if err != nil {
			t.Fatal(err)
		}
		defer c.Close()
		ss, err := c.SubscribeOnce("live_v", 0)
		if err != nil {
			t.Fatal(err)
		}
		// Detach before the connection closes: Conn.Close waits for the
		// active conversation, and a subscription only ends on demand.
		defer ss.Close()
		if !ss.Snapshot {
			t.Fatal("token 0 after restart must snapshot")
		}
		img := make(map[int64][]int64)
		for {
			d, derr := ss.Next()
			if derr != nil {
				t.Fatalf("reference stream: %v", derr)
			}
			stream.Apply(img, d)
			if memberCount(img) >= 25+15 {
				return img
			}
		}
	}
	// The snapshot image is finite (one delta per group) but the stream stays
	// open after it; read until the image covers every row.
	want := reference()

	// The subscriber must converge on the same state.
	deadline := time.After(60 * time.Second)
	for {
		mu.Lock()
		got := make(map[int64][]int64, len(state))
		for g, ms := range state {
			got[g] = append([]int64(nil), ms...)
		}
		serr := seqErr
		mu.Unlock()
		if serr != nil {
			t.Fatal(serr)
		}
		if reflect.DeepEqual(got, want) {
			break
		}
		select {
		case <-deadline:
			t.Fatalf("subscriber never converged\n got: %v\nwant: %v", got, want)
		case <-time.After(100 * time.Millisecond):
		}
	}
	if n := memberCount(want); n != 40 {
		t.Fatalf("reference covers %d rows, want 40", n)
	}
	cancel()
	select {
	case <-consumerDone:
	case <-time.After(10 * time.Second):
		t.Fatal("consumer never stopped after cancel")
	}
	if err := sub.Err(); err != nil && err != context.Canceled {
		t.Fatalf("subscription error: %v", err)
	}
}

func memberCount(state map[int64][]int64) int {
	n := 0
	for _, ms := range state {
		n += len(ms)
	}
	return n
}
