package server_test

// End-to-end observability test against a real sgbd process: a traced write
// issued through internal/client must be retrievable by its trace ID from
// /debug/slowlog with spans covering the whole pipeline — wire decode, parse,
// plan, execute (with per-operator actuals), WAL fsync, and row streaming —
// and the debug/metrics surface (/debug/queries, /debug/pprof, durability
// gauges) must be live on the metrics listener.

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"sgb/internal/client"
	"sgb/internal/obs"
	"sgb/internal/wire"
)

// httpGet fetches url with a deadline, returning the body.
func httpGet(t *testing.T, url string) []byte {
	t.Helper()
	hc := &http.Client{Timeout: 10 * time.Second}
	resp, err := hc.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: status %d", url, resp.StatusCode)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	return body
}

func TestEndToEndTraceInSlowlog(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs a real sgbd process")
	}
	dataDir := t.TempDir()
	p := startSgbd(t, dataDir,
		"-metrics-addr", "127.0.0.1:0", "-slow-query", "0", "-trace-sample", "1")
	defer p.cmd.Process.Kill()
	if p.metricsURL == "" {
		t.Fatal("sgbd never printed its metrics address")
	}
	base := strings.TrimSuffix(p.metricsURL, "/metrics")

	conn, err := client.Connect(p.addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if v := conn.Version(); v != wire.MaxVersion {
		t.Fatalf("negotiated version %d, want %d", v, wire.MaxVersion)
	}

	if _, err := conn.Exec("CREATE TABLE pts (id INT, x FLOAT, y FLOAT)"); err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	sb.WriteString("INSERT INTO pts VALUES ")
	for i := 0; i < 200; i++ {
		if i > 0 {
			sb.WriteString(", ")
		}
		fmt.Fprintf(&sb, "(%d, %d.25, %d.5)", i, i%13, i%7)
	}
	if _, err := conn.Exec(sb.String()); err != nil {
		t.Fatal(err)
	}
	if _, err := conn.Exec("CREATE TABLE dst (x FLOAT, c INT)"); err != nil {
		t.Fatal(err)
	}

	// The probe statement: a write with an embedded SELECT, so one trace
	// covers planning, per-operator execution, WAL append+fsync, and the
	// wire reply.
	if _, err := conn.Exec(
		"INSERT INTO dst SELECT x, count(*) FROM pts GROUP BY x, y DISTANCE-TO-ANY L2 WITHIN 0.5"); err != nil {
		t.Fatal(err)
	}
	traceID := conn.LastTraceID()
	if !obs.ValidTraceID(traceID) {
		t.Fatalf("client trace ID %q invalid", traceID)
	}

	// Retrieve the trace by ID from /debug/slowlog.
	var entries []obs.SlowQuery
	if err := json.Unmarshal(httpGet(t, base+"/debug/slowlog"), &entries); err != nil {
		t.Fatalf("decoding /debug/slowlog: %v", err)
	}
	var entry *obs.SlowQuery
	for i := range entries {
		if entries[i].TraceID == traceID {
			entry = &entries[i]
			break
		}
	}
	if entry == nil {
		t.Fatalf("trace %s not in /debug/slowlog (%d entries)", traceID, len(entries))
	}
	have := make(map[string]bool, len(entry.Trace.Spans))
	for _, sp := range entry.Trace.Spans {
		have[sp.Name] = true
	}
	for _, want := range []string{"wire_decode", "parse", "plan", "execute", "wal_append", "wal_fsync", "stream"} {
		if !have[want] {
			t.Errorf("trace %s missing span %q (have %+v)", traceID, want, entry.Trace.Spans)
		}
	}
	planText := strings.Join(entry.Trace.Plan, "\n")
	if !strings.Contains(planText, "rows=") {
		t.Errorf("trace plan has no per-operator actuals:\n%s", planText)
	}

	// /debug/queries serves the (now idle) process list as JSON.
	var procs []obs.QueryInfo
	if err := json.Unmarshal(httpGet(t, base+"/debug/queries"), &procs); err != nil {
		t.Fatalf("decoding /debug/queries: %v", err)
	}

	// pprof is mounted on the same mux.
	if body := httpGet(t, base+"/debug/pprof/goroutine?debug=1"); !strings.Contains(string(body), "goroutine") {
		t.Error("/debug/pprof/goroutine served no goroutine dump")
	}

	// The durability and build telemetry is on /metrics.
	metrics := string(httpGet(t, p.metricsURL))
	for _, want := range []string{
		"wal_fsync_seconds", "checkpoint_lag_seq", "checkpoint_lag_seconds",
		"wal_size_bytes", "sgbd_build_info", "server_uptime_seconds",
		"server_wire_decode_seconds", "engine_commit_hook_seconds",
	} {
		if !strings.Contains(metrics, want) {
			t.Errorf("/metrics missing %s", want)
		}
	}
}
