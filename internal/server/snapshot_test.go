package server

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"sgb/internal/core"
	"sgb/internal/engine"
)

// TestSnapshotRoundTrip covers the full sgbd -snapshot save/load cycle:
// tables with data, secondary indexes, and the SGB algorithm selection must
// all survive, and a loaded server must answer queries (including
// index-assisted and SGB ones) identically to the original.
func TestSnapshotRoundTrip(t *testing.T) {
	db := engine.NewDB()
	db.SetSGBAlgorithm(core.BoundsChecking)
	mustExecSQL(t, db, "CREATE TABLE pts (id INT, x FLOAT, y FLOAT, tag TEXT)")
	mustExecSQL(t, db, `INSERT INTO pts VALUES
		(1, 0.5, 0.5, 'a'), (2, 1.0, 1.25, 'a'), (3, 9.0, 9.5, 'b'),
		(4, 9.25, 9.75, 'b'), (5, 50.0, 50.0, 'c')`)
	mustExecSQL(t, db, "CREATE TABLE empty_t (n INT)")
	mustExecSQL(t, db, "CREATE INDEX pts_tag ON pts (tag)")

	path := filepath.Join(t.TempDir(), "snap.sgb")
	if err := SaveSnapshotFile(db, path); err != nil {
		t.Fatalf("save: %v", err)
	}
	loaded, err := LoadSnapshotFile(path)
	if err != nil {
		t.Fatalf("load: %v", err)
	}

	if got := loaded.SGBAlgorithm(); got != core.BoundsChecking {
		t.Errorf("SGB algorithm not restored: got %v", got)
	}
	if names := loaded.Catalog().Names(); len(names) != 2 {
		t.Errorf("catalog names = %v, want 2 tables", names)
	}
	tab, err := loaded.Catalog().Get("pts")
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Indexes) != 1 || tab.Indexes[0].Name != "pts_tag" {
		t.Errorf("index not restored: %+v", tab.Indexes)
	}

	// Queries over the restored DB match the original, including one the
	// restored index serves and one through the restored SGB algorithm.
	for _, q := range []string{
		"SELECT id FROM pts WHERE tag = 'b' ORDER BY id",
		"SELECT count(*) FROM pts GROUP BY x, y DISTANCE-TO-ALL LINF WITHIN 2 ON-OVERLAP FORM-NEW-GROUP ORDER BY count(*)",
	} {
		want, err := db.Exec(q)
		if err != nil {
			t.Fatalf("original %q: %v", q, err)
		}
		got, err := loaded.Exec(q)
		if err != nil {
			t.Fatalf("restored %q: %v", q, err)
		}
		sameResult(t, q, got, want)
	}
}

// TestSnapshotCorruptedFile pins the error path: truncated and garbage
// snapshot files must fail loudly at load, not produce an empty database.
func TestSnapshotCorruptedFile(t *testing.T) {
	db := engine.NewDB()
	mustExecSQL(t, db, "CREATE TABLE t (n INT)")
	mustExecSQL(t, db, "INSERT INTO t VALUES (1), (2), (3)")

	dir := t.TempDir()
	path := filepath.Join(dir, "snap.sgb")
	if err := SaveSnapshotFile(db, path); err != nil {
		t.Fatal(err)
	}

	t.Run("truncated", func(t *testing.T) {
		raw, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		trunc := filepath.Join(dir, "trunc.sgb")
		if err := os.WriteFile(trunc, raw[:len(raw)/2], 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := LoadSnapshotFile(trunc); err == nil {
			t.Fatal("truncated snapshot loaded without error")
		} else if !strings.Contains(err.Error(), "snapshot") {
			t.Errorf("error does not identify the snapshot: %v", err)
		}
	})
	t.Run("garbage", func(t *testing.T) {
		garbage := filepath.Join(dir, "garbage.sgb")
		if err := os.WriteFile(garbage, []byte("this is not a gob stream at all"), 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := LoadSnapshotFile(garbage); err == nil {
			t.Fatal("garbage snapshot loaded without error")
		}
	})
	t.Run("missing", func(t *testing.T) {
		if _, err := LoadSnapshotFile(filepath.Join(dir, "nope.sgb")); !os.IsNotExist(err) {
			t.Errorf("want IsNotExist, got %v", err)
		}
	})
}

// TestSnapshotSaveAtomic checks a failed save cannot clobber the previous
// snapshot: saving over an existing file goes through a temp file + rename.
func TestSnapshotSaveAtomic(t *testing.T) {
	db := engine.NewDB()
	mustExecSQL(t, db, "CREATE TABLE t (n INT)")
	path := filepath.Join(t.TempDir(), "snap.sgb")
	if err := SaveSnapshotFile(db, path); err != nil {
		t.Fatal(err)
	}
	// Overwrite with a second save; the temp file must not linger.
	mustExecSQL(t, db, "INSERT INTO t VALUES (42)")
	if err := SaveSnapshotFile(db, path); err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(filepath.Dir(path))
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Errorf("stray files after save: %v", entries)
	}
	loaded, err := LoadSnapshotFile(path)
	if err != nil {
		t.Fatal(err)
	}
	res, err := loaded.Exec("SELECT count(*) FROM t")
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows[0][0].I != 1 {
		t.Errorf("second save not visible after load: %v", res.Rows)
	}
}

func mustExecSQL(t *testing.T, db *engine.DB, sql string) {
	t.Helper()
	if _, err := db.Exec(sql); err != nil {
		t.Fatalf("exec: %v", err)
	}
}
