package server

import (
	"fmt"
	"os"
	"path/filepath"

	"sgb/internal/engine"
)

// LoadSnapshotFile restores a database from a snapshot file written by
// SaveSnapshotFile (or sgbcli's \save). It is how sgbd -snapshot brings a
// persisted catalog back up at boot.
func LoadSnapshotFile(path string) (*engine.DB, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	db, err := engine.Load(f)
	if err != nil {
		return nil, fmt.Errorf("server: snapshot %s: %w", path, err)
	}
	return db, nil
}

// SaveSnapshotFile writes the database to path atomically: the snapshot is
// staged in a temp file in the same directory and renamed into place, so a
// crash mid-save never corrupts the previous snapshot.
func SaveSnapshotFile(db *engine.DB, path string) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp*")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name())
	err = db.Save(tmp)
	if cerr := tmp.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return fmt.Errorf("server: saving snapshot %s: %w", path, err)
	}
	return os.Rename(tmp.Name(), path)
}
