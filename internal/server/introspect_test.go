package server

// Introspection tests: the slowlog captures finished queries with their
// end-to-end traces, the process list tracks in-flight queries through their
// state transitions (and forgets them on completion or cancel), and both are
// reachable over the wire via the Introspect message. Run with -race: the
// process list reads live traces while the query goroutine mutates them.

import (
	"context"
	"net"
	"testing"
	"time"

	"sgb/internal/client"
	"sgb/internal/engine"
	"sgb/internal/obs"
	"sgb/internal/wire"
)

// spanNames flattens a trace snapshot's span names for containment checks.
func spanNames(tr obs.TraceSnapshot) map[string]bool {
	names := make(map[string]bool, len(tr.Spans))
	for _, sp := range tr.Spans {
		names[sp.Name] = true
	}
	return names
}

// TestSlowLogCapturesTrace: with threshold 0 and sampling 1, a SELECT issued
// through the client lands in the slowlog under the client-minted trace ID,
// carrying the full span chain (wire_decode → parse → plan → execute →
// stream) and the EXPLAIN ANALYZE plan with per-operator actuals.
func TestSlowLogCapturesTrace(t *testing.T) {
	db := engine.NewDB()
	db.SetTraceSampling(1)
	loadPoints(t, db, 500)
	srv := startServer(t, db, Config{SlowQueryThreshold: 0})
	c := connect(t, srv)

	rows, err := c.Stream(context.Background(),
		"SELECT count(*) FROM pts GROUP BY x, y DISTANCE-TO-ANY L2 WITHIN 0.5")
	if err != nil {
		t.Fatal(err)
	}
	traceID := rows.TraceID()
	if !obs.ValidTraceID(traceID) {
		t.Fatalf("client minted invalid trace ID %q", traceID)
	}
	if got := c.LastTraceID(); got != traceID {
		t.Fatalf("LastTraceID() = %q, want %q", got, traceID)
	}
	if err := rows.Close(); err != nil {
		t.Fatal(err)
	}

	q, ok := srv.SlowLog().Find(traceID)
	if !ok {
		t.Fatalf("trace %s not in slowlog; entries: %+v", traceID, srv.SlowLog().Entries())
	}
	names := spanNames(q.Trace)
	for _, want := range []string{"wire_decode", "parse", "plan", "execute", "stream"} {
		if !names[want] {
			t.Errorf("trace %s missing span %q (have %v)", traceID, want, q.Trace.Spans)
		}
	}
	if len(q.Trace.Plan) == 0 {
		t.Error("sampled query has no EXPLAIN ANALYZE plan in its trace")
	}
	if q.Rows <= 0 {
		t.Errorf("slowlog rows = %d, want > 0", q.Rows)
	}
	if q.Settings == "" {
		t.Error("slowlog entry has no settings summary")
	}

	// The wire path returns the same entry.
	entries, err := c.SlowLog(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, e := range entries {
		if e.TraceID == traceID {
			found = true
		}
	}
	if !found {
		t.Errorf("trace %s not in wire slowlog (%d entries)", traceID, len(entries))
	}
}

// TestSlowLogThreshold: fast queries stay out of the log above a high
// threshold, and a negative threshold disables logging entirely.
func TestSlowLogThreshold(t *testing.T) {
	db := engine.NewDB()
	loadPoints(t, db, 10)
	srv := startServer(t, db, Config{SlowQueryThreshold: time.Hour})
	c := connect(t, srv)
	if _, err := c.Query(context.Background(), "SELECT count(*) FROM pts"); err != nil {
		t.Fatal(err)
	}
	if n := srv.SlowLog().Len(); n != 0 {
		t.Fatalf("slowlog has %d entries under a 1h threshold, want 0", n)
	}

	db2 := engine.NewDB()
	loadPoints(t, db2, 10)
	srv2 := startServer(t, db2, Config{SlowQueryThreshold: -1})
	c2 := connect(t, srv2)
	if _, err := c2.Query(context.Background(), "SELECT count(*) FROM pts"); err != nil {
		t.Fatal(err)
	}
	if n := srv2.SlowLog().Len(); n != 0 {
		t.Fatalf("slowlog has %d entries while disabled, want 0", n)
	}
}

// TestProcessListLifecycle: an in-flight query appears in the process list
// with its trace ID and a live state, is visible over the wire from a second
// connection, and disappears once canceled.
func TestProcessListLifecycle(t *testing.T) {
	db := engine.NewDB()
	loadPoints(t, db, 3000)
	srv := startServer(t, db, Config{SlowQueryThreshold: -1})
	c := connect(t, srv)

	if err := c.Set("sgb_algorithm", "allpairs"); err != nil {
		t.Fatal(err)
	}
	long := `SELECT count(*) FROM pts AS a, pts AS b
	         GROUP BY a.x, b.y DISTANCE-TO-ALL L2 WITHIN 0.1 ON-OVERLAP FORM-NEW-GROUP`

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	errCh := make(chan error, 1)
	go func() {
		_, err := c.Query(ctx, long)
		errCh <- err
	}()

	// Wait for the query to surface in the process list.
	var info obs.QueryInfo
	deadline := time.Now().Add(5 * time.Second)
	for {
		if procs := srv.ProcessList(); len(procs) == 1 {
			info = procs[0]
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("query never appeared in the process list")
		}
		time.Sleep(time.Millisecond)
	}
	if !obs.ValidTraceID(info.TraceID) {
		t.Errorf("process list trace ID %q invalid", info.TraceID)
	}
	validStates := map[string]bool{"parsing": true, "executing": true, "committing": true, "streaming": true}
	if !validStates[info.State] {
		t.Errorf("process list state %q, want a live query state", info.State)
	}
	if info.Client == "" || info.SQL == "" {
		t.Errorf("process list entry incomplete: %+v", info)
	}

	// A second connection sees it over the wire.
	c2 := connect(t, srv)
	procs, err := c2.ProcessList(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	// The introspecting query itself is not in flight (Introspect is not a
	// Query), so only the long statement shows.
	if len(procs) != 1 || procs[0].TraceID != info.TraceID {
		t.Fatalf("wire process list = %+v, want the in-flight query %s", procs, info.TraceID)
	}

	// Cancel and wait for the entry to vanish.
	cancel()
	if err := <-errCh; !client.IsCanceled(err) {
		t.Fatalf("want cancellation error, got %v", err)
	}
	deadline = time.Now().Add(5 * time.Second)
	for {
		if len(srv.ProcessList()) == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("canceled query still in process list: %+v", srv.ProcessList())
		}
		time.Sleep(time.Millisecond)
	}
}

// TestV1ClientStillServed speaks raw protocol v1 — Hello{1}, a Query frame
// with no trace tail — and asserts the v2 server negotiates down, answers the
// query, and still mints a server-side trace for its slowlog.
func TestV1ClientStillServed(t *testing.T) {
	db := engine.NewDB()
	loadPoints(t, db, 10)
	srv := startServer(t, db, Config{SlowQueryThreshold: 0})

	nc, err := net.Dial("tcp", srv.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer nc.Close()
	if err := wire.WriteMessage(nc, &wire.Hello{Version: 1}); err != nil {
		t.Fatal(err)
	}
	msg, err := wire.ReadMessage(nc)
	if err != nil {
		t.Fatal(err)
	}
	w, ok := msg.(*wire.Welcome)
	if !ok {
		t.Fatalf("expected Welcome, got %#v", msg)
	}
	if w.Version != 1 {
		t.Fatalf("negotiated version %d for a v1 client, want 1", w.Version)
	}

	if err := wire.WriteMessage(nc, &wire.Query{SQL: "SELECT count(*) FROM pts"}); err != nil {
		t.Fatal(err)
	}
	var rows int64
	for {
		msg, err := wire.ReadMessage(nc)
		if err != nil {
			t.Fatal(err)
		}
		switch m := msg.(type) {
		case *wire.RowHeader, *wire.RowBatch:
		case *wire.Done:
			rows = m.RowCount
		case *wire.Error:
			t.Fatalf("server error for v1 query: %v", m)
		default:
			t.Fatalf("unexpected %T", msg)
		}
		if _, done := msg.(*wire.Done); done {
			break
		}
	}
	if rows != 1 {
		t.Fatalf("v1 query returned %d rows, want 1", rows)
	}

	// The untraced query still got a server-minted trace in the slowlog.
	entries := srv.SlowLog().Entries()
	if len(entries) != 1 {
		t.Fatalf("slowlog has %d entries, want 1", len(entries))
	}
	if !obs.ValidTraceID(entries[0].TraceID) {
		t.Errorf("server-minted trace ID %q invalid", entries[0].TraceID)
	}
}
