package server

import (
	"net/http"
	"sync/atomic"
)

// Health tracks process liveness vs serving readiness for sgbd's HTTP
// endpoints:
//
//   - /healthz answers 200 whenever the process is up — a liveness probe.
//   - /readyz answers 503 until recovery (checkpoint load + WAL replay)
//     completes and the wire listener is accepting, and 503 again once the
//     server begins draining — a readiness probe that takes the instance out
//     of a load balancer before shutdown and during boot-time replay.
//
// The zero value is not ready. All methods are safe for concurrent use.
type Health struct {
	ready atomic.Bool
}

// NewHealth returns a not-yet-ready Health.
func NewHealth() *Health { return &Health{} }

// SetReady flips the readiness state (true once serving, false on drain).
func (h *Health) SetReady(ready bool) { h.ready.Store(ready) }

// Ready reports the current readiness state.
func (h *Health) Ready() bool { return h.ready.Load() }

// Register installs the /healthz and /readyz handlers on mux.
func (h *Health) Register(mux *http.ServeMux) {
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		w.WriteHeader(http.StatusOK)
		_, _ = w.Write([]byte("ok\n"))
	})
	mux.HandleFunc("/readyz", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		if h.Ready() {
			w.WriteHeader(http.StatusOK)
			_, _ = w.Write([]byte("ready\n"))
			return
		}
		w.WriteHeader(http.StatusServiceUnavailable)
		_, _ = w.Write([]byte("not ready\n"))
	})
}
