package server

import (
	"net/http"
	"sync/atomic"
)

// Health tracks process liveness vs serving readiness for sgbd's HTTP
// endpoints:
//
//   - /healthz answers 200 whenever the process is up — a liveness probe.
//   - /readyz answers 503 until recovery (checkpoint load + WAL replay)
//     completes and the wire listener is accepting, and 503 again once the
//     server begins draining — a readiness probe that takes the instance out
//     of a load balancer before shutdown and during boot-time replay.
//
// A degraded store (read-only after a disk fault) stays ready — it is still
// serving reads — but /readyz reports the state so operators and balancers
// can see it. Wire a reporter with SetDegradedFunc.
//
// The zero value is not ready. All methods are safe for concurrent use.
type Health struct {
	ready    atomic.Bool
	degraded atomic.Pointer[func() bool]
}

// NewHealth returns a not-yet-ready Health.
func NewHealth() *Health { return &Health{} }

// SetReady flips the readiness state (true once serving, false on drain).
func (h *Health) SetReady(ready bool) { h.ready.Store(ready) }

// Ready reports the current readiness state.
func (h *Health) Ready() bool { return h.ready.Load() }

// SetDegradedFunc wires the store's degraded state into /readyz (nil clears).
func (h *Health) SetDegradedFunc(f func() bool) {
	if f == nil {
		h.degraded.Store(nil)
		return
	}
	h.degraded.Store(&f)
}

// Degraded reports whether the wired store is degraded (false when unwired).
func (h *Health) Degraded() bool {
	if fp := h.degraded.Load(); fp != nil {
		return (*fp)()
	}
	return false
}

// Register installs the /healthz and /readyz handlers on mux.
func (h *Health) Register(mux *http.ServeMux) {
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		w.WriteHeader(http.StatusOK)
		_, _ = w.Write([]byte("ok\n"))
	})
	mux.HandleFunc("/readyz", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		if h.Ready() {
			w.WriteHeader(http.StatusOK)
			if h.Degraded() {
				_, _ = w.Write([]byte("ready (degraded: read-only)\n"))
				return
			}
			_, _ = w.Write([]byte("ready\n"))
			return
		}
		w.WriteHeader(http.StatusServiceUnavailable)
		_, _ = w.Write([]byte("not ready\n"))
	})
}
