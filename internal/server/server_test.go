package server

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"sgb/internal/client"
	"sgb/internal/engine"
	"sgb/internal/wire"
)

// startServer boots a server on a random localhost port over db and tears it
// down with the test.
func startServer(t *testing.T, db *engine.DB, cfg Config) *Server {
	t.Helper()
	srv := New(db, cfg)
	if err := srv.Start(); err != nil {
		t.Fatalf("start: %v", err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		_ = srv.Shutdown(ctx)
	})
	return srv
}

// connect dials the test server, failing the test on error.
func connect(t *testing.T, srv *Server) *client.Conn {
	t.Helper()
	c, err := client.Connect(srv.Addr().String())
	if err != nil {
		t.Fatalf("connect: %v", err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

// loadPoints populates a 2-D point table sized for SGB queries.
func loadPoints(t *testing.T, db *engine.DB, rows int) {
	t.Helper()
	if _, err := db.Exec("CREATE TABLE pts (id INT, x FLOAT, y FLOAT, tag TEXT)"); err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	sb.WriteString("INSERT INTO pts VALUES ")
	for i := 0; i < rows; i++ {
		if i > 0 {
			sb.WriteString(", ")
		}
		fmt.Fprintf(&sb, "(%d, %d.%d, %d.5, 't%d')", i, i%89, i%7, i%61, i%3)
	}
	if _, err := db.Exec(sb.String()); err != nil {
		t.Fatal(err)
	}
}

// sameResult asserts two results are bit-for-bit identical: same columns,
// same row order, and float cells compared by bit pattern (Value is
// comparable, so == covers that).
func sameResult(t *testing.T, label string, got, want *engine.Result) {
	t.Helper()
	if len(got.Columns) != len(want.Columns) {
		t.Fatalf("%s: columns %v != %v", label, got.Columns, want.Columns)
	}
	for i := range want.Columns {
		if got.Columns[i] != want.Columns[i] {
			t.Fatalf("%s: columns %v != %v", label, got.Columns, want.Columns)
		}
	}
	if got.RowsAffected != want.RowsAffected {
		t.Fatalf("%s: rows affected %d != %d", label, got.RowsAffected, want.RowsAffected)
	}
	if len(got.Rows) != len(want.Rows) {
		t.Fatalf("%s: %d rows != %d rows", label, len(got.Rows), len(want.Rows))
	}
	for i := range want.Rows {
		if len(got.Rows[i]) != len(want.Rows[i]) {
			t.Fatalf("%s: row %d width mismatch", label, i)
		}
		for j := range want.Rows[i] {
			if got.Rows[i][j] != want.Rows[i][j] {
				t.Fatalf("%s: row %d col %d: %v != %v",
					label, i, j, got.Rows[i][j], want.Rows[i][j])
			}
		}
	}
}

// TestWireMatchesEmbedded is the acceptance test: a query issued through
// internal/client returns rows identical to DB.ExecContext for the same SQL.
func TestWireMatchesEmbedded(t *testing.T) {
	db := engine.NewDB()
	loadPoints(t, db, 500)
	srv := startServer(t, db, Config{})
	c := connect(t, srv)

	queries := []string{
		"SELECT tag, count(*), avg(x) FROM pts GROUP BY tag ORDER BY tag",
		"SELECT count(*), avg(x), min(y) FROM pts GROUP BY x, y DISTANCE-TO-ALL LINF WITHIN 3 ON-OVERLAP FORM-NEW-GROUP ORDER BY count(*), avg(x)",
		"SELECT count(*) FROM pts GROUP BY x, y DISTANCE-TO-ANY L2 WITHIN 2.5 ORDER BY count(*)",
		"SELECT id, x FROM pts WHERE y > 10.0 ORDER BY id LIMIT 37",
	}
	for _, q := range queries {
		want, err := db.ExecContext(context.Background(), q)
		if err != nil {
			t.Fatalf("embedded %q: %v", q, err)
		}
		got, err := c.Query(context.Background(), q)
		if err != nil {
			t.Fatalf("wire %q: %v", q, err)
		}
		sameResult(t, q, got, want)
	}
}

// TestConcurrentClientsBitIdentical runs N concurrent clients issuing
// SGB-All, SGB-Any, and hash-agg queries against one server and asserts
// every result matches embedded execution bit-for-bit (run under -race in
// CI).
func TestConcurrentClientsBitIdentical(t *testing.T) {
	db := engine.NewDB()
	loadPoints(t, db, 400)
	srv := startServer(t, db, Config{})

	queries := []string{
		"SELECT tag, count(*), sum(x) FROM pts GROUP BY tag ORDER BY tag",
		"SELECT count(*), avg(y) FROM pts GROUP BY x, y DISTANCE-TO-ALL LINF WITHIN 4 ON-OVERLAP FORM-NEW-GROUP ORDER BY count(*), avg(x)",
		"SELECT count(*), max(x) FROM pts GROUP BY x, y DISTANCE-TO-ANY L2 WITHIN 2 ORDER BY count(*), max(x)",
	}

	const clients = 8
	const iters = 5
	var wg sync.WaitGroup
	for n := 0; n < clients; n++ {
		wg.Add(1)
		go func(n int) {
			defer wg.Done()
			c, err := client.Connect(srv.Addr().String())
			if err != nil {
				t.Errorf("client %d: %v", n, err)
				return
			}
			defer c.Close()
			// Each client picks its own execution shape, mirrored by an
			// embedded reference session with identical settings: float
			// aggregation order (and therefore the exact bits) is defined by
			// the session's parallelism and batch size, and the wire layer
			// must add no divergence on top of that.
			workers, batch := 1+n%4, 32<<(n%3)
			if err := c.Set("parallelism", fmt.Sprint(workers)); err != nil {
				t.Errorf("client %d: set: %v", n, err)
				return
			}
			if err := c.Set("batch_size", fmt.Sprint(batch)); err != nil {
				t.Errorf("client %d: set: %v", n, err)
				return
			}
			ref := db.NewSession()
			ref.SetParallelism(workers)
			ref.SetBatchSize(batch)
			for i := 0; i < iters; i++ {
				q := queries[(n+i)%len(queries)]
				want, err := ref.ExecContext(context.Background(), q)
				if err != nil {
					t.Errorf("client %d iter %d embedded: %v", n, i, err)
					return
				}
				got, err := c.Query(context.Background(), q)
				if err != nil {
					t.Errorf("client %d iter %d: %v", n, i, err)
					return
				}
				sameResult(t, fmt.Sprintf("client %d iter %d", n, i), got, want)
			}
		}(n)
	}
	wg.Wait()
}

// TestWireCancelPromptAndConnUsable cancels a long-running SGB query over
// the wire and asserts (a) it aborts well under a second, and (b) both the
// connection and the server remain usable afterwards.
func TestWireCancelPromptAndConnUsable(t *testing.T) {
	db := engine.NewDB()
	loadPoints(t, db, 3000)
	srv := startServer(t, db, Config{})
	c := connect(t, srv)

	// All-pairs SGB over a cross join: effectively unbounded work.
	if err := c.Set("sgb_algorithm", "allpairs"); err != nil {
		t.Fatal(err)
	}
	long := `SELECT count(*) FROM pts AS a, pts AS b
	         GROUP BY a.x, b.y DISTANCE-TO-ALL L2 WITHIN 0.1 ON-OVERLAP FORM-NEW-GROUP`

	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(100 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	_, err := c.Query(ctx, long)
	elapsed := time.Since(start)
	if err == nil {
		t.Fatal("long query was not canceled")
	}
	if !client.IsCanceled(err) {
		t.Fatalf("want cancellation error, got %v", err)
	}
	if elapsed > time.Second {
		t.Fatalf("cancellation took %v, want well under 1s", elapsed)
	}

	// The same connection keeps working.
	res, err := c.Query(context.Background(), "SELECT count(*) FROM pts")
	if err != nil {
		t.Fatalf("connection unusable after cancel: %v", err)
	}
	if len(res.Rows) != 1 || res.Rows[0][0].I != 3000 {
		t.Fatalf("bad post-cancel result: %+v", res.Rows)
	}
	// And so does a fresh one.
	c2 := connect(t, srv)
	if _, err := c2.Query(context.Background(), "SELECT count(*) FROM pts"); err != nil {
		t.Fatalf("server unusable after cancel: %v", err)
	}
}

// TestMaxConnectionsRejected fills the connection limit and asserts the next
// dial is refused with the typed wire error, then that closing a connection
// frees a slot.
func TestMaxConnectionsRejected(t *testing.T) {
	db := engine.NewDB()
	srv := startServer(t, db, Config{MaxConns: 2})

	c1 := connect(t, srv)
	c2 := connect(t, srv)
	_, _ = c1, c2

	_, err := client.Connect(srv.Addr().String())
	var se *client.ServerError
	if !errors.As(err, &se) || se.Code != wire.CodeTooManyConnections {
		t.Fatalf("want CodeTooManyConnections, got %v", err)
	}

	// Freeing a slot admits a new connection. Closing is asynchronous on the
	// server side, so poll briefly.
	c1.Close()
	deadline := time.Now().Add(2 * time.Second)
	for {
		c3, err := client.Connect(srv.Addr().String())
		if err == nil {
			c3.Close()
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("slot not freed after close: %v", err)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestSessionSettingsScopedPerConnection pins the wire-level version of the
// settings-isolation bugfix: one connection's Set must not leak into another
// connection's statements.
func TestSessionSettingsScopedPerConnection(t *testing.T) {
	db := engine.NewDB()
	loadPoints(t, db, 100)
	srv := startServer(t, db, Config{})

	a := connect(t, srv)
	b := connect(t, srv)

	if err := a.Set("max_rows", "10"); err != nil {
		t.Fatal(err)
	}
	// a is limited...
	_, err := a.Query(context.Background(), "SELECT id FROM pts")
	var se *client.ServerError
	if !errors.As(err, &se) || se.Code != wire.CodeResourceLimit {
		t.Fatalf("session a: want CodeResourceLimit, got %v", err)
	}
	// ...b is not.
	res, err := b.Query(context.Background(), "SELECT id FROM pts")
	if err != nil {
		t.Fatalf("session b: %v", err)
	}
	if len(res.Rows) != 100 {
		t.Fatalf("session b: got %d rows, want 100", len(res.Rows))
	}
	// Neither is the embedded default path.
	if res, err := db.Exec("SELECT id FROM pts"); err != nil || len(res.Rows) != 100 {
		t.Fatalf("db default contaminated: %v, %d rows", err, len(res.Rows))
	}
}

// TestIdleTimeout asserts an idle connection is closed by the server, while
// an active one survives.
func TestIdleTimeout(t *testing.T) {
	db := engine.NewDB()
	srv := startServer(t, db, Config{IdleTimeout: 150 * time.Millisecond})
	c := connect(t, srv)

	// Activity within the window keeps the connection alive.
	for i := 0; i < 3; i++ {
		time.Sleep(60 * time.Millisecond)
		if err := c.Ping(context.Background()); err != nil {
			t.Fatalf("ping %d on active conn: %v", i, err)
		}
	}
	// Going idle past the window gets the socket closed.
	time.Sleep(400 * time.Millisecond)
	if err := c.Ping(context.Background()); err == nil {
		t.Fatal("ping succeeded on idle-timed-out connection")
	}
}

// TestGracefulShutdownDrains verifies Shutdown lets an in-flight statement
// finish and that new connections are refused while draining.
func TestGracefulShutdownDrains(t *testing.T) {
	db := engine.NewDB()
	loadPoints(t, db, 2000)
	srv := New(db, Config{})
	if err := srv.Start(); err != nil {
		t.Fatal(err)
	}
	c, err := client.Connect(srv.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	type qres struct {
		res *engine.Result
		err error
	}
	resCh := make(chan qres, 1)
	go func() {
		r, err := c.Query(context.Background(),
			"SELECT count(*) FROM pts GROUP BY x, y DISTANCE-TO-ANY L2 WITHIN 2 ORDER BY count(*)")
		resCh <- qres{r, err}
	}()
	// Give the query time to reach the server before draining.
	time.Sleep(50 * time.Millisecond)

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	r := <-resCh
	if r.err != nil {
		t.Fatalf("in-flight query did not finish across graceful drain: %v", r.err)
	}
	if len(r.res.Rows) == 0 {
		t.Fatal("in-flight query returned no rows")
	}
	if _, err := client.Connect(srv.Addr().String()); err == nil {
		t.Fatal("connect succeeded after shutdown")
	}
}

// TestForcedShutdownCancelsInFlight verifies that an expired drain deadline
// cancels the in-flight statement instead of hanging Shutdown.
func TestForcedShutdownCancelsInFlight(t *testing.T) {
	db := engine.NewDB()
	loadPoints(t, db, 3000)
	srv := New(db, Config{})
	if err := srv.Start(); err != nil {
		t.Fatal(err)
	}
	c, err := client.Connect(srv.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.Set("sgb_algorithm", "allpairs"); err != nil {
		t.Fatal(err)
	}

	errCh := make(chan error, 1)
	go func() {
		_, err := c.Query(context.Background(), `SELECT count(*) FROM pts AS a, pts AS b
			GROUP BY a.x, b.y DISTANCE-TO-ALL L2 WITHIN 0.1 ON-OVERLAP FORM-NEW-GROUP`)
		errCh <- err
	}()
	time.Sleep(100 * time.Millisecond)

	ctx, cancel := context.WithTimeout(context.Background(), 200*time.Millisecond)
	defer cancel()
	start := time.Now()
	err = srv.Shutdown(ctx)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("shutdown: got %v, want deadline exceeded", err)
	}
	if e := time.Since(start); e > 3*time.Second {
		t.Fatalf("forced shutdown took %v", e)
	}
	if qerr := <-errCh; qerr == nil {
		t.Fatal("in-flight query survived forced shutdown")
	}
}

// TestServerMetricsExported checks the new server gauges/counters appear in
// the Prometheus text (both over the wire and via the registry) and track
// connection activity.
func TestServerMetricsExported(t *testing.T) {
	db := engine.NewDB()
	loadPoints(t, db, 50)
	srv := startServer(t, db, Config{})
	c := connect(t, srv)

	if _, err := c.Query(context.Background(), "SELECT count(*) FROM pts"); err != nil {
		t.Fatal(err)
	}
	text, err := c.Stats()
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{
		"server_connections_open", "server_connections_total",
		"server_sessions_active", "server_bytes_in_total", "server_bytes_out_total",
	} {
		if !strings.Contains(text, name) {
			t.Errorf("metrics missing %s", name)
		}
	}
	snap := db.Metrics().Snapshot()
	if snap.Counters["server_connections_total"] < 1 {
		t.Errorf("server_connections_total = %d, want >= 1", snap.Counters["server_connections_total"])
	}
	if snap.Gauges["server_connections_open"] < 1 {
		t.Errorf("server_connections_open = %v, want >= 1", snap.Gauges["server_connections_open"])
	}
	if snap.Counters["server_bytes_in_total"] == 0 || snap.Counters["server_bytes_out_total"] == 0 {
		t.Error("byte counters did not move")
	}
}

// TestHandshakeRejectsGarbage makes sure a non-protocol client (e.g. an HTTP
// probe) is refused instead of wedging a session.
func TestHandshakeRejectsGarbage(t *testing.T) {
	db := engine.NewDB()
	srv := startServer(t, db, Config{})

	nc, err := net.Dial("tcp", srv.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer nc.Close()
	if _, err := io.WriteString(nc, "GET / HTTP/1.1\r\nHost: x\r\n\r\n"); err != nil {
		t.Fatal(err)
	}
	nc.SetReadDeadline(time.Now().Add(2 * time.Second))
	buf := make([]byte, 1024)
	n, _ := nc.Read(buf)
	// Whatever came back (an error frame or nothing), the connection must be
	// closed promptly.
	if _, err := nc.Read(buf[n:]); err == nil {
		t.Fatal("connection stayed open after garbage handshake")
	}
}

// TestVersionMismatchRejected pins the protocol-versioning contract.
func TestVersionMismatchRejected(t *testing.T) {
	db := engine.NewDB()
	srv := startServer(t, db, Config{})

	nc, err := net.Dial("tcp", srv.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer nc.Close()
	if err := wire.WriteMessage(nc, &wire.Hello{Version: wire.Version + 7}); err != nil {
		t.Fatal(err)
	}
	nc.SetReadDeadline(time.Now().Add(2 * time.Second))
	msg, err := wire.ReadMessage(nc)
	if err != nil {
		t.Fatal(err)
	}
	e, ok := msg.(*wire.Error)
	if !ok || e.Code != wire.CodeVersionMismatch {
		t.Fatalf("got %#v, want CodeVersionMismatch error", msg)
	}
}
