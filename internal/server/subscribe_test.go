package server

import (
	"context"
	"errors"
	"fmt"
	"io"
	"reflect"
	"testing"
	"time"

	"sgb/internal/client"
	"sgb/internal/engine"
	"sgb/internal/stream"
)

// streamServer boots a server whose engine has an attached stream manager and
// one materialized view over a fresh pts table.
func streamServer(t *testing.T) (*Server, *engine.DB, *stream.Manager) {
	t.Helper()
	db := engine.NewDB()
	mgr := stream.NewManager()
	if _, err := db.Exec("CREATE TABLE pts (x FLOAT, y FLOAT)"); err != nil {
		t.Fatal(err)
	}
	mgr.AttachEngine(db)
	if _, err := db.Exec("CREATE MATERIALIZED VIEW groups_v AS SELECT x, y FROM pts GROUP BY x, y DISTANCE-TO-ANY L2 WITHIN 1.5"); err != nil {
		t.Fatal(err)
	}
	srv := startServer(t, db, Config{Addr: "127.0.0.1:0", Streams: mgr})
	return srv, db, mgr
}

// TestSubscribeEndToEnd walks the whole wire path: snapshot attach, live
// deltas for committed writes, clean detach with the connection returning to
// query duty, and an exact-suffix resume from a mid-stream token.
func TestSubscribeEndToEnd(t *testing.T) {
	srv, _, mgr := streamServer(t)
	sub := connect(t, srv)
	writer := connect(t, srv)

	ss, err := sub.SubscribeOnce("groups_v", 0)
	if err != nil {
		t.Fatal(err)
	}
	if !ss.Snapshot {
		t.Fatal("fresh token must attach as a snapshot")
	}

	// Committed writes stream as deltas; replaying them tracks the view.
	state := make(map[int64][]int64)
	var lastSeq uint64
	for i := 0; i < 6; i++ {
		if _, err := writer.Exec(fmt.Sprintf("INSERT INTO pts VALUES (%d.0, 0.5)", i*10)); err != nil {
			t.Fatal(err)
		}
	}
	for len(state) < 6 {
		d, err := ss.Next()
		if err != nil {
			t.Fatalf("stream ended early: %v", err)
		}
		if d.Seq <= lastSeq {
			t.Fatalf("non-monotonic delta seq %d after %d", d.Seq, lastSeq)
		}
		lastSeq = d.Seq
		stream.Apply(state, d)
	}
	want, err := mgr.State("groups_v")
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(state, want) {
		t.Fatalf("replayed state diverged\n got: %v\nwant: %v", state, want)
	}

	// Clean detach: the connection must be usable for plain queries again.
	if err := ss.Close(); err != nil {
		t.Fatalf("close subscription: %v", err)
	}
	res, err := sub.Query(context.Background(), "SELECT count(*) FROM pts")
	if err != nil {
		t.Fatalf("query after unsubscribe: %v", err)
	}
	if res.Rows[0][0].I != 6 {
		t.Fatalf("count = %d, want 6", res.Rows[0][0].I)
	}

	// Resume after the last consumed seq: only newer deltas arrive.
	if _, err := writer.Exec("INSERT INTO pts VALUES (100.0, 0.5)"); err != nil {
		t.Fatal(err)
	}
	ss2, err := sub.SubscribeOnce("groups_v", lastSeq)
	if err != nil {
		t.Fatal(err)
	}
	if ss2.Snapshot {
		t.Fatal("in-retention resume must not snapshot")
	}
	d, err := ss2.Next()
	if err != nil {
		t.Fatal(err)
	}
	if d.Seq <= lastSeq {
		t.Fatalf("resume replayed consumed seq %d (token %d)", d.Seq, lastSeq)
	}
	stream.Apply(state, d)
	if want, _ = mgr.State("groups_v"); !reflect.DeepEqual(state, want) {
		t.Fatalf("post-resume state diverged")
	}
	ss2.Close()
}

// TestSubscribeErrors pins the failure modes that must keep the connection
// alive: an unknown view, and a server with no stream manager at all.
func TestSubscribeErrors(t *testing.T) {
	srv, _, _ := streamServer(t)
	c := connect(t, srv)
	if _, err := c.SubscribeOnce("nope", 0); err == nil {
		t.Fatal("unknown view must refuse subscription")
	}
	if _, err := c.Query(context.Background(), "SELECT count(*) FROM pts"); err != nil {
		t.Fatalf("connection unusable after refused subscribe: %v", err)
	}

	plain := startServer(t, engine.NewDB(), Config{Addr: "127.0.0.1:0"})
	c2 := connect(t, plain)
	if _, err := c2.SubscribeOnce("groups_v", 0); err == nil {
		t.Fatal("server without streams must refuse subscription")
	}
	if _, err := c2.Query(context.Background(), "SELECT 1"); err != nil {
		t.Fatalf("connection unusable after refused subscribe: %v", err)
	}
}

// TestManagedSubscribe exercises the auto-reconnecting client wrapper against
// a live server: events flow, and canceling the context ends the stream
// cleanly with a closed channel and a nil error.
func TestManagedSubscribe(t *testing.T) {
	srv, _, mgr := streamServer(t)
	writer := connect(t, srv)

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	sub, err := client.Subscribe(ctx, srv.Addr().String(), "groups_v")
	if err != nil {
		t.Fatal(err)
	}
	state := make(map[int64][]int64)
	go func() {
		for i := 0; i < 5; i++ {
			writer.Exec(fmt.Sprintf("INSERT INTO pts VALUES (%d.0, 0.5)", i*10))
		}
	}()
	deadline := time.After(10 * time.Second)
	for len(state) < 5 {
		select {
		case ev, ok := <-sub.Events:
			if !ok {
				t.Fatalf("events closed early: %v", sub.Err())
			}
			if ev.Rebase {
				state = make(map[int64][]int64)
				continue
			}
			stream.Apply(state, ev.Delta)
		case <-deadline:
			t.Fatal("never saw all five groups")
		}
	}
	if want, _ := mgr.State("groups_v"); !reflect.DeepEqual(state, want) {
		t.Fatalf("managed subscription state diverged")
	}
	cancel()
	for {
		if _, ok := <-sub.Events; !ok {
			break
		}
	}
	if err := sub.Err(); err != nil && !errors.Is(err, context.Canceled) && !errors.Is(err, io.EOF) {
		t.Fatalf("unexpected error after cancel: %v", err)
	}

	// An unknown view fails synchronously, not via the channel.
	if _, err := client.Subscribe(context.Background(), srv.Addr().String(), "nope"); err == nil {
		t.Fatal("managed subscribe to unknown view must fail immediately")
	}
}
