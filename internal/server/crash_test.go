package server_test

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"io"
	"os/exec"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"syscall"
	"testing"
	"time"

	"sgb/internal/client"
	"sgb/internal/wire"
)

// sgbdProc is one running sgbd child process.
type sgbdProc struct {
	cmd  *exec.Cmd
	addr string
	// metricsURL is the /metrics endpoint ("" when -metrics-addr is empty);
	// its host:port also serves /debug/queries, /debug/slowlog, /debug/pprof/.
	metricsURL string
	out        *bufio.Scanner
}

// buildSgbd compiles the daemon once per test binary.
var buildSgbd = sync.OnceValues(func() (string, error) {
	bin := "/tmp/sgbd-crash-test"
	out, err := exec.Command("go", "build", "-o", bin, "sgb/cmd/sgbd").CombinedOutput()
	if err != nil {
		return "", fmt.Errorf("go build sgbd: %v\n%s", err, out)
	}
	return bin, nil
})

// startSgbd launches sgbd on a random port over dataDir and waits for the
// listen address.
func startSgbd(t *testing.T, dataDir string, extra ...string) *sgbdProc {
	t.Helper()
	bin, err := buildSgbd()
	if err != nil {
		t.Fatal(err)
	}
	args := append([]string{
		"-addr", "127.0.0.1:0", "-metrics-addr", "",
		"-data-dir", dataDir, "-fsync", "always",
	}, extra...)
	cmd := exec.Command(bin, args...)
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	cmd.Stderr = cmd.Stdout
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	p := &sgbdProc{cmd: cmd, out: bufio.NewScanner(stdout)}
	deadline := time.After(30 * time.Second)
	got := make(chan string, 1)
	go func() {
		// The metrics line (when enabled) prints before the listen line.
		for p.out.Scan() {
			line := p.out.Text()
			if u, ok := strings.CutPrefix(line, "metrics on "); ok {
				p.metricsURL = u
				continue
			}
			if a, ok := strings.CutPrefix(line, "listening on "); ok {
				got <- a
				break
			}
		}
		close(got)
	}()
	select {
	case a, ok := <-got:
		if !ok {
			cmd.Process.Kill()
			t.Fatal("sgbd exited before listening")
		}
		p.addr = a
	case <-deadline:
		cmd.Process.Kill()
		t.Fatal("sgbd never printed its listen address")
	}
	// Keep draining output so the child never blocks on a full pipe.
	go func() { io.Copy(io.Discard, stdout) }()
	return p
}

// TestCrashRecoveryKill9 is the acceptance crash test: a real sgbd process
// with -fsync always is SIGKILLed in the middle of concurrent client ingest.
// After restart, every client-acknowledged statement must be present, no
// half-applied statement may appear (statements insert 3 rows each, so the
// recovered count must be a multiple of 3), and at most the per-connection
// in-flight statement may additionally survive (durable but unacknowledged).
func TestCrashRecoveryKill9(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and kills a real sgbd process")
	}
	if runtime.GOOS == "windows" {
		t.Skip("SIGKILL semantics")
	}
	dataDir := t.TempDir()
	p := startSgbd(t, dataDir, "-metrics-addr", "127.0.0.1:0")
	defer p.cmd.Process.Kill()

	setup, err := client.Connect(p.addr)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := setup.Exec("CREATE TABLE ingest (id INT, x FLOAT, y FLOAT)"); err != nil {
		t.Fatal(err)
	}
	setup.Close()

	// With at least one durable commit down, the durability telemetry must be
	// live on /metrics: fsync latency observed, checkpoint lag tracked.
	metrics := string(httpGet(t, p.metricsURL))
	for _, want := range []string{"wal_fsync_seconds_count", "checkpoint_lag_seq", "checkpoint_lag_seconds"} {
		if !strings.Contains(metrics, want) {
			t.Errorf("/metrics missing %s before the crash", want)
		}
	}

	// Concurrent ingest: each worker owns a connection and an id range, and
	// counts a statement only once the server acknowledged it.
	const workers = 3
	var (
		acked   [workers]atomic.Int64
		killAt  = int64(25) // total acks before pulling the trigger
		killREQ = make(chan struct{})
		killed  = make(chan struct{})
		wg      sync.WaitGroup
	)
	var totalAcks atomic.Int64
	var killOnce sync.Once
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			conn, err := client.Connect(p.addr)
			if err != nil {
				t.Errorf("worker %d connect: %v", w, err)
				return
			}
			defer conn.Close()
			for i := 0; ; i++ {
				base := w*1_000_000 + i*3
				sql := fmt.Sprintf("INSERT INTO ingest VALUES (%d, %d.5, 1.0), (%d, %d.5, 2.0), (%d, %d.5, 3.0)",
					base, base, base+1, base, base+2, base)
				if _, err := conn.Exec(sql); err != nil {
					return // the crash: connection is gone
				}
				acked[w].Add(1)
				if totalAcks.Add(1) == killAt {
					killOnce.Do(func() { close(killREQ) })
				}
			}
		}(w)
	}

	go func() {
		<-killREQ
		// Ingest is in full flight: kill -9, no drain, no checkpoint.
		p.cmd.Process.Signal(syscall.SIGKILL)
		p.cmd.Wait()
		close(killed)
	}()
	wg.Wait()
	select {
	case <-killed:
	case <-time.After(30 * time.Second):
		t.Fatal("sgbd never died after SIGKILL")
	}

	var ackedTotal int64
	for w := range acked {
		ackedTotal += acked[w].Load()
	}
	if ackedTotal < killAt {
		t.Fatalf("only %d statements acknowledged before the crash", ackedTotal)
	}

	// Restart on the same data dir: recovery = checkpoint + WAL replay.
	p2 := startSgbd(t, dataDir)
	defer func() {
		p2.cmd.Process.Signal(syscall.SIGTERM)
		p2.cmd.Wait()
	}()
	conn, err := client.Connect(p2.addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	res, err := conn.Query(context.Background(), "SELECT count(*) FROM ingest")
	if err != nil {
		t.Fatal(err)
	}
	rows := res.Rows[0][0].I

	if rows%3 != 0 {
		t.Errorf("recovered %d rows: not a multiple of 3 — a half-applied statement survived", rows)
	}
	stmts := rows / 3
	if stmts < ackedTotal {
		t.Errorf("lost acknowledged statements: recovered %d, acknowledged %d", stmts, ackedTotal)
	}
	// Each connection has at most one unacknowledged statement in flight.
	if stmts > ackedTotal+workers {
		t.Errorf("recovered %d statements, acknowledged only %d (+%d in-flight max)",
			stmts, ackedTotal, workers)
	}

	// The recovered server keeps accepting durable writes.
	if _, err := conn.Exec("INSERT INTO ingest VALUES (-1, 0.0, 0.0), (-2, 0.0, 0.0), (-3, 0.0, 0.0)"); err != nil {
		t.Fatalf("write after recovery: %v", err)
	}
}

// TestCrashRecoveryKill9WhileDiskFull extends the kill -9 acceptance to the
// degraded state: a real sgbd with an injected WAL byte budget
// (-fault-disk-budget) ingests until the disk "fills" and the daemon turns
// read-only, keeps serving reads in that state, and is then SIGKILLed while
// degraded. Restarted on a healthy disk, it must hold every acknowledged
// statement, no half-applied one, and accept writes again. Statements that
// applied in memory but were rejected read-only are legitimately lost — they
// were never acknowledged and the promotion checkpoint never ran.
func TestCrashRecoveryKill9WhileDiskFull(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and kills a real sgbd process")
	}
	if runtime.GOOS == "windows" {
		t.Skip("SIGKILL semantics")
	}
	dataDir := t.TempDir()
	// ~2KB of WAL budget: the schema plus a handful of inserts land, then the
	// disk is full. A long probe interval pins the degraded state so the kill
	// always happens inside it.
	p := startSgbd(t, dataDir, "-metrics-addr", "127.0.0.1:0",
		"-fault-disk-budget", "2048", "-probe-interval", "1h")
	defer p.cmd.Process.Kill()

	conn, err := client.Connect(p.addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if _, err := conn.Exec("CREATE TABLE ingest (id INT, x FLOAT, y FLOAT)"); err != nil {
		t.Fatal(err)
	}

	// Ingest until the budget runs out. Every acknowledged statement counts;
	// the first failure must be the typed read-only rejection with a hint.
	acked := int64(0)
	var rejection error
	for i := 0; i < 1000; i++ {
		base := i * 3
		sql := fmt.Sprintf("INSERT INTO ingest VALUES (%d, %d.5, 1.0), (%d, %d.5, 2.0), (%d, %d.5, 3.0)",
			base, base, base+1, base, base+2, base)
		if _, err := conn.Exec(sql); err != nil {
			rejection = err
			break
		}
		acked++
	}
	if rejection == nil {
		t.Fatal("the 2KB disk budget never ran out after 1000 statements")
	}
	if acked == 0 {
		t.Fatal("no statement was acknowledged before the disk filled")
	}
	var se *client.ServerError
	if !errors.As(rejection, &se) || se.Code != wire.CodeReadOnly || se.RetryAfterMS == 0 {
		t.Fatalf("disk-full rejection was %v, want hinted CodeReadOnly", rejection)
	}

	// Degraded, not down: reads serve on the same connection, further writes
	// keep failing read-only, and the state shows on /metrics and /readyz.
	if _, err := conn.Exec("SELECT count(*) FROM ingest"); err != nil {
		t.Fatalf("read while degraded: %v", err)
	}
	if _, err := conn.Exec("INSERT INTO ingest VALUES (-9, 0.0, 0.0)"); err == nil {
		t.Fatal("write succeeded while degraded")
	}
	metrics := string(httpGet(t, p.metricsURL))
	if !strings.Contains(metrics, "server_degraded 1") {
		t.Error("/metrics does not report server_degraded 1 while degraded")
	}
	ready := string(httpGet(t, strings.Replace(p.metricsURL, "/metrics", "/readyz", 1)))
	if !strings.Contains(ready, "degraded") {
		t.Errorf("/readyz says %q while degraded, want the degraded marker", ready)
	}

	// kill -9 in the degraded state: no drain, no promotion, no checkpoint.
	p.cmd.Process.Signal(syscall.SIGKILL)
	p.cmd.Wait()

	// Restart on the same dir with a healthy disk.
	p2 := startSgbd(t, dataDir)
	defer func() {
		p2.cmd.Process.Signal(syscall.SIGTERM)
		p2.cmd.Wait()
	}()
	conn2, err := client.Connect(p2.addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn2.Close()
	res, err := conn2.Query(context.Background(), "SELECT count(*) FROM ingest")
	if err != nil {
		t.Fatal(err)
	}
	rows := res.Rows[0][0].I
	if rows%3 != 0 {
		t.Errorf("recovered %d rows: not a multiple of 3 — a half-applied statement survived", rows)
	}
	if stmts := rows / 3; stmts != acked {
		// Exactly the acked prefix: one sequential connection, so there is no
		// in-flight statement, and nothing unacknowledged carries a WAL record.
		t.Errorf("recovered %d statements, acknowledged %d", stmts, acked)
	}
	if _, err := conn2.Exec("INSERT INTO ingest VALUES (-1, 0.0, 0.0), (-2, 0.0, 0.0), (-3, 0.0, 0.0)"); err != nil {
		t.Fatalf("write after recovery: %v", err)
	}
}
