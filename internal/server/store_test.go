package server

import (
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"
	"time"

	"sgb/internal/engine"
	"sgb/internal/wal"
)

// mustExec runs one statement or fails the test.
func mustExec(t *testing.T, db *engine.DB, sql string) {
	t.Helper()
	if _, err := db.Exec(sql); err != nil {
		t.Fatalf("%s: %v", sql, err)
	}
}

// countRows reads count(*) from t.
func countRows(t *testing.T, db *engine.DB, table string) int64 {
	t.Helper()
	res, err := db.Query("SELECT count(*) FROM " + table)
	if err != nil {
		t.Fatalf("count(%s): %v", table, err)
	}
	return res.Rows[0][0].I
}

// TestStoreRecoversFromWALOnly simulates a crash: the first store is simply
// abandoned (no Close, so no final checkpoint), and a second store on the
// same directory must rebuild every acknowledged statement from the log.
func TestStoreRecoversFromWALOnly(t *testing.T) {
	dir := t.TempDir()
	s1, err := OpenStore(StoreOptions{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	mustExec(t, s1.DB(), "CREATE TABLE pts (id INT, x FLOAT, y FLOAT)")
	for i := 0; i < 10; i++ {
		mustExec(t, s1.DB(), fmt.Sprintf("INSERT INTO pts VALUES (%d, %d.5, %d.5)", i, i, i))
	}
	mustExec(t, s1.DB(), "DELETE FROM pts WHERE id = 0")
	mustExec(t, s1.DB(), "UPDATE pts SET x = 100.0 WHERE id = 1")
	// Crash: no Close, no checkpoint.

	s2, err := OpenStore(StoreOptions{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if got := s2.ReplayedRecords(); got != 13 {
		t.Errorf("replayed %d records, want 13", got)
	}
	if n := countRows(t, s2.DB(), "pts"); n != 9 {
		t.Errorf("recovered %d rows, want 9", n)
	}
	res, err := s2.DB().Query("SELECT x FROM pts WHERE id = 1")
	if err != nil || len(res.Rows) != 1 || res.Rows[0][0].F != 100.0 {
		t.Errorf("UPDATE not replayed: %+v err=%v", res, err)
	}
	if got := s2.DB().Metrics().Counter("wal_replayed_records_total").Value(); got != 13 {
		t.Errorf("wal_replayed_records_total = %d", got)
	}
}

// TestStoreCheckpointBoundsReplay: after a checkpoint, recovery replays only
// the records past it, and covered segments are trimmed.
func TestStoreCheckpointBoundsReplay(t *testing.T) {
	dir := t.TempDir()
	s1, err := OpenStore(StoreOptions{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	mustExec(t, s1.DB(), "CREATE TABLE t (x INT)")
	for i := 0; i < 5; i++ {
		mustExec(t, s1.DB(), fmt.Sprintf("INSERT INTO t VALUES (%d)", i))
	}
	if err := s1.Checkpoint(); err != nil {
		t.Fatalf("checkpoint: %v", err)
	}
	if _, err := os.Stat(filepath.Join(dir, checkpointFile)); err != nil {
		t.Fatalf("checkpoint file: %v", err)
	}
	// Two more statements after the checkpoint, then crash.
	mustExec(t, s1.DB(), "INSERT INTO t VALUES (100)")
	mustExec(t, s1.DB(), "INSERT INTO t VALUES (101)")

	s2, err := OpenStore(StoreOptions{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if got := s2.ReplayedRecords(); got != 2 {
		t.Errorf("replayed %d records, want 2 (checkpoint covers the rest)", got)
	}
	if n := countRows(t, s2.DB(), "t"); n != 7 {
		t.Errorf("recovered %d rows, want 7", n)
	}
	if got := s2.DB().Metrics().Counter("checkpoints_total").Value(); got != 0 {
		t.Errorf("fresh store inherited checkpoint count %d", got)
	}
}

// TestStoreGracefulClose: Close writes a final checkpoint, so a clean
// restart replays nothing.
func TestStoreGracefulClose(t *testing.T) {
	dir := t.TempDir()
	s1, err := OpenStore(StoreOptions{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	mustExec(t, s1.DB(), "CREATE TABLE t (x INT)")
	mustExec(t, s1.DB(), "INSERT INTO t VALUES (1), (2), (3)")
	if err := s1.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	if err := s1.Close(); err != nil {
		t.Fatalf("second close: %v", err)
	}

	s2, err := OpenStore(StoreOptions{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if got := s2.ReplayedRecords(); got != 0 {
		t.Errorf("replayed %d records after graceful close, want 0", got)
	}
	if n := countRows(t, s2.DB(), "t"); n != 3 {
		t.Errorf("recovered %d rows, want 3", n)
	}
}

// TestStoreSeqContinuesAfterGracefulRestart pins the regression where a
// graceful close (checkpoint + trimmed, empty log) made the next generation
// restart WAL numbering at 1: its acknowledged writes then carried seqs at
// or below the checkpoint's covered seq, and a later recovery skipped them
// as already covered — open → write → close → open → write → crash → open
// lost the second-generation write.
func TestStoreSeqContinuesAfterGracefulRestart(t *testing.T) {
	dir := t.TempDir()
	s1, err := OpenStore(StoreOptions{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	mustExec(t, s1.DB(), "CREATE TABLE t (x INT)")
	mustExec(t, s1.DB(), "INSERT INTO t VALUES (1)")
	if err := s1.Close(); err != nil {
		t.Fatal(err)
	}

	s2, err := OpenStore(StoreOptions{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	mustExec(t, s2.DB(), "INSERT INTO t VALUES (2)")
	// Crash: abandon s2 without Close — no final checkpoint.

	s3, err := OpenStore(StoreOptions{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer s3.Close()
	if got := s3.ReplayedRecords(); got != 1 {
		t.Errorf("replayed %d records, want 1 (the post-restart insert)", got)
	}
	if n := countRows(t, s3.DB(), "t"); n != 2 {
		t.Errorf("recovered %d rows, want 2 — second-generation write lost", n)
	}
}

// TestStoreCloseFencesLateWrites: once Close has run, a mutating statement
// must fail with ErrStoreClosed rather than be acknowledged with neither a
// WAL record nor checkpoint coverage; reads keep working.
func TestStoreCloseFencesLateWrites(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenStore(StoreOptions{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	mustExec(t, s.DB(), "CREATE TABLE t (x INT)")
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	_, err = s.DB().Exec("INSERT INTO t VALUES (1)")
	var de *engine.DurabilityError
	if !errors.As(err, &de) || !errors.Is(err, ErrStoreClosed) {
		t.Fatalf("write after close: %v, want DurabilityError wrapping ErrStoreClosed", err)
	}
	if _, err := s.DB().Query("SELECT count(*) FROM t"); err != nil {
		t.Fatalf("read after close: %v", err)
	}
	// The fenced write was never acknowledged, so recovery must not show it.
	s2, err := OpenStore(StoreOptions{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if n := countRows(t, s2.DB(), "t"); n != 0 {
		t.Errorf("recovered %d rows, want 0 — unlogged write resurfaced", n)
	}
}

// TestStoreTornTailRecovery tears the final WAL record (as a mid-append
// crash would) and verifies recovery truncates it: every earlier statement
// survives, the torn one vanishes, and the store keeps serving writes.
func TestStoreTornTailRecovery(t *testing.T) {
	dir := t.TempDir()
	s1, err := OpenStore(StoreOptions{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	mustExec(t, s1.DB(), "CREATE TABLE t (x INT)")
	for i := 0; i < 5; i++ {
		mustExec(t, s1.DB(), fmt.Sprintf("INSERT INTO t VALUES (%d)", i))
	}
	// Crash, then tear the last record in the active segment.
	seg := filepath.Join(dir, "wal-0000000000000001.log")
	fi, err := os.Stat(seg)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(seg, fi.Size()-4); err != nil {
		t.Fatal(err)
	}

	s2, err := OpenStore(StoreOptions{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if got := s2.ReplayedRecords(); got != 5 {
		t.Errorf("replayed %d records, want 5 (6 minus the torn tail)", got)
	}
	if n := countRows(t, s2.DB(), "t"); n != 4 {
		t.Errorf("recovered %d rows, want 4", n)
	}
	if got := s2.DB().Metrics().Counter("wal_truncations_total").Value(); got != 1 {
		t.Errorf("wal_truncations_total = %d", got)
	}
	// The store must accept and persist new writes after the repair.
	mustExec(t, s2.DB(), "INSERT INTO t VALUES (99)")
	s2.Close()

	s3, err := OpenStore(StoreOptions{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer s3.Close()
	if n := countRows(t, s3.DB(), "t"); n != 5 {
		t.Errorf("after repair + write: %d rows, want 5", n)
	}
}

// TestStoreFaultInjection drives the store through an injected disk failure:
// the failing statement surfaces a typed DurabilityError (never
// acknowledged), later writes fail fast, and recovery yields exactly the
// acknowledged prefix.
func TestStoreFaultInjection(t *testing.T) {
	dir := t.TempDir()
	ffs := wal.NewFaultFS(wal.OS)
	// A long probe interval keeps the degraded state latched for the whole
	// test: this test asserts the fail-fast behavior, not the auto-promotion
	// (TestStoreDegradedPromotes covers that).
	s1, err := OpenStore(StoreOptions{Dir: dir, FS: ffs, ProbeInterval: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	mustExec(t, s1.DB(), "CREATE TABLE t (x INT)")
	acked := 0
	for i := 0; i < 3; i++ {
		mustExec(t, s1.DB(), fmt.Sprintf("INSERT INTO t VALUES (%d)", i))
		acked++
	}
	// The next WAL write tears half-way through.
	ffs.FailWriteAt(1, true)
	_, err = s1.DB().Exec("INSERT INTO t VALUES (1000)")
	var de *engine.DurabilityError
	if !errors.As(err, &de) || !errors.Is(err, wal.ErrInjected) {
		t.Fatalf("injected failure surfaced as %v, want DurabilityError wrapping ErrInjected", err)
	}
	if !errors.Is(err, ErrDegraded) {
		t.Fatalf("injected failure surfaced as %v, want ErrDegraded in the chain", err)
	}
	// The store is degraded: subsequent writes fail fast without touching disk.
	_, err = s1.DB().Exec("INSERT INTO t VALUES (1001)")
	if !errors.As(err, &de) || !errors.Is(err, ErrDegraded) {
		t.Fatalf("post-failure write surfaced as %v, want DurabilityError wrapping ErrDegraded", err)
	}
	// Reads still work on the in-process state.
	if _, err := s1.DB().Query("SELECT count(*) FROM t"); err != nil {
		t.Fatalf("read after wal failure: %v", err)
	}

	// Recovery (healthy disk) sees exactly the acknowledged statements; the
	// torn record from the injected short write is truncated away.
	s2, err := OpenStore(StoreOptions{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if n := countRows(t, s2.DB(), "t"); n != int64(acked) {
		t.Errorf("recovered %d rows, want %d acknowledged", n, acked)
	}
}

// TestStoreBackgroundCheckpointer: a short interval produces checkpoints
// without any manual call.
func TestStoreBackgroundCheckpointer(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenStore(StoreOptions{Dir: dir, CheckpointInterval: 10 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	mustExec(t, s.DB(), "CREATE TABLE t (x INT)")
	mustExec(t, s.DB(), "INSERT INTO t VALUES (1)")
	deadline := time.Now().Add(5 * time.Second)
	for s.DB().Metrics().Counter("checkpoints_total").Value() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("background checkpointer never ran")
		}
		time.Sleep(5 * time.Millisecond)
	}
	s.Close()
	if _, err := os.Stat(filepath.Join(dir, checkpointFile)); err != nil {
		t.Fatalf("checkpoint file: %v", err)
	}
}

// TestStoreLogsOnlyWrites: SELECT/EXPLAIN and view DDL produce no WAL
// records (views are session-scoped and not persisted, matching snapshots).
func TestStoreLogsOnlyWrites(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenStore(StoreOptions{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	db := s.DB()
	mustExec(t, db, "CREATE TABLE t (x INT)")
	mustExec(t, db, "INSERT INTO t VALUES (1)")
	appends := db.Metrics().Counter("wal_appends_total")
	base := appends.Value()
	mustExec(t, db, "SELECT x FROM t")
	mustExec(t, db, "EXPLAIN SELECT x FROM t")
	mustExec(t, db, "CREATE VIEW v AS SELECT x FROM t")
	mustExec(t, db, "DROP VIEW v")
	if got := appends.Value(); got != base {
		t.Errorf("non-logged statements appended %d records", got-base)
	}
}

// TestHealthEndpoints pins the liveness/readiness contract: /healthz is
// always 200, /readyz tracks SetReady.
func TestHealthEndpoints(t *testing.T) {
	h := NewHealth()
	mux := http.NewServeMux()
	h.Register(mux)
	get := func(path string) int {
		req := httptest.NewRequest("GET", path, nil)
		rec := httptest.NewRecorder()
		mux.ServeHTTP(rec, req)
		return rec.Code
	}
	if got := get("/healthz"); got != http.StatusOK {
		t.Errorf("/healthz before ready: %d", got)
	}
	if got := get("/readyz"); got != http.StatusServiceUnavailable {
		t.Errorf("/readyz before ready: %d", got)
	}
	h.SetReady(true)
	if got := get("/readyz"); got != http.StatusOK {
		t.Errorf("/readyz when ready: %d", got)
	}
	if !h.Ready() {
		t.Error("Ready() = false after SetReady(true)")
	}
	// Drain: readiness drops, liveness stays.
	h.SetReady(false)
	if got := get("/readyz"); got != http.StatusServiceUnavailable {
		t.Errorf("/readyz during drain: %d", got)
	}
	if got := get("/healthz"); got != http.StatusOK {
		t.Errorf("/healthz during drain: %d", got)
	}
}
