// Package chaos is the fault-injection harness for sgbd's acceptance tests.
//
// Its centerpiece is Proxy, a TCP relay that sits between a client and a
// server and misbehaves on demand: added latency, connection resets, frames
// truncated mid-payload, and single-byte corruption. Combined with
// wal.FaultFS (disk faults) and engine.DB.SetExecHook (statement panics and
// stalls), it drives the chaos matrix: under every injected fault the daemon
// must keep serving reads, no acknowledged write may be lost across kill -9
// and restart, and in-budget queries must complete bit-identical to an
// unloaded run.
package chaos

import (
	"fmt"
	"io"
	"net"
	"sync"
	"time"
)

// Plan is one connection's fault schedule. The zero value relays faithfully.
// Byte offsets are 1-based and count client→server traffic only, so a plan
// can target a precise position inside a known frame; server→client traffic
// always relays untouched (the protocol under test must survive request-path
// damage, and response-path damage exercises the same client code paths).
type Plan struct {
	// Latency delays every client→server write by this much.
	Latency time.Duration
	// ResetAfter, when > 0, hard-resets the connection (RST, not FIN) once
	// this many client→server bytes have been relayed.
	ResetAfter int64
	// TruncateAfter, when > 0, relays this many client→server bytes and then
	// closes both sides cleanly — the server sees a partial frame.
	TruncateAfter int64
	// CorruptAt, when > 0, XOR-flips the byte at this 1-based client→server
	// offset, leaving length intact — a CRC/decode-level fault.
	CorruptAt int64
}

// Proxy is a fault-injecting TCP relay. Create with New; point clients at
// Addr(). Each accepted connection captures the plan current at accept time,
// so SetPlan between dials gives per-connection fault schedules.
type Proxy struct {
	target string
	ln     net.Listener

	mu   sync.Mutex
	plan Plan

	wg     sync.WaitGroup
	closed sync.Once
}

// New starts a proxy on a random localhost port relaying to target.
func New(target string) (*Proxy, error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, fmt.Errorf("chaos: listen: %w", err)
	}
	p := &Proxy{target: target, ln: ln}
	p.wg.Add(1)
	go p.acceptLoop()
	return p, nil
}

// Addr is the proxy's listen address — dial this instead of the real server.
func (p *Proxy) Addr() string { return p.ln.Addr().String() }

// SetPlan installs the fault schedule for connections accepted from now on.
func (p *Proxy) SetPlan(plan Plan) {
	p.mu.Lock()
	p.plan = plan
	p.mu.Unlock()
}

// Close stops accepting and waits for the relay goroutines to finish.
func (p *Proxy) Close() {
	p.closed.Do(func() { p.ln.Close() })
	p.wg.Wait()
}

func (p *Proxy) acceptLoop() {
	defer p.wg.Done()
	for {
		cl, err := p.ln.Accept()
		if err != nil {
			return
		}
		p.mu.Lock()
		plan := p.plan
		p.mu.Unlock()
		p.wg.Add(1)
		go p.relay(cl, plan)
	}
}

// relay runs one proxied connection to completion under its fault plan.
func (p *Proxy) relay(cl net.Conn, plan Plan) {
	defer p.wg.Done()
	sv, err := net.Dial("tcp", p.target)
	if err != nil {
		cl.Close()
		return
	}
	var once sync.Once
	closeBoth := func() {
		once.Do(func() {
			cl.Close()
			sv.Close()
		})
	}
	reset := func() {
		once.Do(func() {
			// SetLinger(0) makes Close send RST instead of FIN: the peer sees
			// a connection reset, not a clean end-of-stream.
			if tc, ok := cl.(*net.TCPConn); ok {
				tc.SetLinger(0)
			}
			cl.Close()
			sv.Close()
		})
	}

	var inner sync.WaitGroup
	inner.Add(2)
	// Client → server: the faulted direction.
	go func() {
		defer inner.Done()
		defer closeBoth()
		var relayed int64
		buf := make([]byte, 4096)
		for {
			n, err := cl.Read(buf)
			if n > 0 {
				b := buf[:n]
				if plan.CorruptAt > relayed && plan.CorruptAt <= relayed+int64(n) {
					b[plan.CorruptAt-relayed-1] ^= 0xFF
				}
				if plan.TruncateAfter > 0 && relayed+int64(n) >= plan.TruncateAfter {
					sv.Write(b[:plan.TruncateAfter-relayed])
					return
				}
				if plan.Latency > 0 {
					time.Sleep(plan.Latency)
				}
				if _, werr := sv.Write(b); werr != nil {
					return
				}
				relayed += int64(n)
				if plan.ResetAfter > 0 && relayed >= plan.ResetAfter {
					reset()
					return
				}
			}
			if err != nil {
				return
			}
		}
	}()
	// Server → client: faithful relay.
	go func() {
		defer inner.Done()
		defer closeBoth()
		io.Copy(cl, sv) //nolint:errcheck
	}()
	inner.Wait()
}
