package chaos_test

// The chaos acceptance matrix: a real sgbd serving stack (durable store +
// wire server) fronted by the fault-injecting proxy, driven through network
// faults (latency, hard resets, partial frames, byte corruption), an injected
// engine panic, and a disk that fills mid-run. The invariants, per ISSUE and
// ROADMAP: the daemon never goes down, reads keep serving in every state, and
// after all faults clear a cold restart of the store sees every acknowledged
// write — no acked-write loss, ever. Run under -race in CI's chaos suite.

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"testing"
	"time"

	"sgb/internal/chaos"
	"sgb/internal/client"
	"sgb/internal/server"
	"sgb/internal/wal"
	"sgb/internal/wire"
)

// contextWithTimeout is context.WithTimeout from Background, for shutdowns.
func contextWithTimeout(d time.Duration) (context.Context, context.CancelFunc) {
	return context.WithTimeout(context.Background(), d)
}

// harness is the full serving stack under test.
type harness struct {
	dir   string
	ffs   *wal.FaultFS
	store *server.Store
	srv   *server.Server
	proxy *chaos.Proxy
}

func newHarness(t *testing.T) *harness {
	t.Helper()
	h := &harness{dir: t.TempDir(), ffs: wal.NewFaultFS(wal.OS)}
	var err error
	h.store, err = server.OpenStore(server.StoreOptions{
		Dir: h.dir, FS: h.ffs, ProbeInterval: 20 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	h.srv = server.New(h.store.DB(), server.Config{Store: h.store})
	if err := h.srv.Start(); err != nil {
		t.Fatal(err)
	}
	h.proxy, err = chaos.New(h.srv.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		h.proxy.Close()
		ctx, cancel := contextWithTimeout(5 * time.Second)
		defer cancel()
		_ = h.srv.Shutdown(ctx)
		_ = h.store.Close()
	})
	return h
}

// direct connects straight to the server, bypassing the proxy.
func (h *harness) direct(t *testing.T) *client.Conn {
	t.Helper()
	c, err := client.Connect(h.srv.Addr().String())
	if err != nil {
		t.Fatalf("direct connect: %v", err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

// serverHealthy asserts a fresh direct connection can read — the daemon is up
// and serving regardless of what the chaos plan did to proxied clients.
func (h *harness) serverHealthy(t *testing.T) {
	t.Helper()
	c, err := client.Connect(h.srv.Addr().String())
	if err != nil {
		t.Fatalf("server unreachable after fault: %v", err)
	}
	defer c.Close()
	if _, err := c.Exec("SELECT count(*) FROM chaos"); err != nil {
		t.Fatalf("server cannot serve reads after fault: %v", err)
	}
}

// TestChaosNetworkFaultMatrix runs the network-fault plans against live
// proxied connections. Acked writes are collected across all plans; after the
// run the store is restarted cold and must contain every one of them.
func TestChaosNetworkFaultMatrix(t *testing.T) {
	h := newHarness(t)
	setup := h.direct(t)
	if _, err := setup.Exec("CREATE TABLE chaos (id INT, x FLOAT)"); err != nil {
		t.Fatal(err)
	}

	// An engine panic on a marker statement: one cell of the matrix drives it
	// through the proxy to prove isolation holds end to end.
	h.store.DB().SetExecHook(func(sql string) {
		if strings.Contains(sql, "31337") {
			panic("chaos: injected engine bug")
		}
	})
	defer h.store.DB().SetExecHook(nil)

	var acked []int
	next := 0
	// tryWrites pushes a few inserts through one proxied connection under the
	// current plan, recording which were acknowledged. Connection and
	// statement failures are expected outcomes, never test failures.
	tryWrites := func(label string) {
		c, err := client.Connect(h.proxy.Addr())
		if err != nil {
			t.Logf("%s: connect failed (acceptable under fault): %v", label, err)
			return
		}
		defer c.Close()
		for i := 0; i < 3; i++ {
			id := next
			next++
			_, err := c.Exec(fmt.Sprintf("INSERT INTO chaos VALUES (%d, %d.5)", id, id))
			if err == nil {
				acked = append(acked, id)
			} else {
				t.Logf("%s: insert %d failed (acceptable under fault): %v", label, id, err)
			}
		}
	}

	plans := []struct {
		label string
		plan  chaos.Plan
	}{
		{"baseline", chaos.Plan{}},
		{"latency-10ms", chaos.Plan{Latency: 10 * time.Millisecond}},
		// The Hello frame is 13 bytes; offsets past it land inside statement
		// frames, so the handshake survives and the fault hits a query.
		{"reset-mid-frame", chaos.Plan{ResetAfter: 40}},
		{"truncate-mid-frame", chaos.Plan{TruncateAfter: 30}},
		{"corrupt-payload-byte", chaos.Plan{CorruptAt: 25}},
	}
	for _, p := range plans {
		h.proxy.SetPlan(p.plan)
		tryWrites(p.label)
		h.serverHealthy(t)
	}
	h.proxy.SetPlan(chaos.Plan{})

	// The panic cell: the statement dies with CodeInternal, the daemon lives.
	pc, err := client.Connect(h.proxy.Addr())
	if err != nil {
		t.Fatalf("connect for panic cell: %v", err)
	}
	defer pc.Close()
	_, err = pc.Exec("SELECT count(*) FROM chaos WHERE id = 31337")
	var se *client.ServerError
	if !errors.As(err, &se) || se.Code != wire.CodeInternal {
		t.Fatalf("panicking statement returned %v, want CodeInternal", err)
	}
	h.serverHealthy(t)
	if len(acked) == 0 {
		t.Fatal("no write was ever acknowledged across the whole matrix")
	}

	// Cold restart: every acknowledged write must be present.
	ctx, cancel := contextWithTimeout(5 * time.Second)
	defer cancel()
	_ = h.srv.Shutdown(ctx)
	if err := h.store.Close(); err != nil {
		t.Fatalf("store close: %v", err)
	}
	verifyAcked(t, h.dir, acked)
}

// TestChaosDiskFullDegradesAndRecovers is the disk-exhaustion cell run end to
// end over the wire: ENOSPC degrades the server to read-only with a
// retry-after hint, reads keep serving, restoring the disk auto-promotes it,
// and a cold restart holds every acknowledged write.
func TestChaosDiskFullDegradesAndRecovers(t *testing.T) {
	h := newHarness(t)
	c, err := client.Connect(h.proxy.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.Exec("CREATE TABLE chaos (id INT, x FLOAT)"); err != nil {
		t.Fatal(err)
	}
	var acked []int
	for i := 0; i < 5; i++ {
		if _, err := c.Exec(fmt.Sprintf("INSERT INTO chaos VALUES (%d, 0.5)", i)); err != nil {
			t.Fatalf("insert %d: %v", i, err)
		}
		acked = append(acked, i)
	}

	// The disk fills. Writes are rejected read-only with a hint; reads serve.
	h.ffs.FailWithENOSPCAfter(0)
	_, err = c.Exec("INSERT INTO chaos VALUES (100, 0.5)")
	var se *client.ServerError
	if !errors.As(err, &se) || se.Code != wire.CodeReadOnly || se.RetryAfterMS == 0 {
		t.Fatalf("write on full disk returned %v, want hinted CodeReadOnly", err)
	}
	if _, err := c.Exec("SELECT count(*) FROM chaos"); err != nil {
		t.Fatalf("read while degraded: %v", err)
	}
	if d, _, _ := h.store.Degraded(); !d {
		t.Fatal("store not degraded after ENOSPC")
	}

	// Space frees: the probe promotes, writes flow again on the same conn.
	h.ffs.RestoreDisk()
	deadline := time.Now().Add(10 * time.Second)
	for {
		if _, err := c.Exec("INSERT INTO chaos VALUES (200, 0.5)"); err == nil {
			acked = append(acked, 200)
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("writes never recovered after RestoreDisk")
		}
		time.Sleep(se.RetryAfter())
	}
	if d, _, _ := h.store.Degraded(); d {
		t.Fatal("store still degraded after successful write")
	}

	ctx, cancel := contextWithTimeout(5 * time.Second)
	defer cancel()
	_ = h.srv.Shutdown(ctx)
	if err := h.store.Close(); err != nil {
		t.Fatalf("store close: %v", err)
	}
	verifyAcked(t, h.dir, acked)
}

// TestChaosLatencyPreservesResults pins that a slow network changes timing
// only: a proxied query under injected latency returns rows identical to a
// direct one, and observably later.
func TestChaosLatencyPreservesResults(t *testing.T) {
	h := newHarness(t)
	setup := h.direct(t)
	if _, err := setup.Exec("CREATE TABLE chaos (id INT, x FLOAT)"); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		if _, err := setup.Exec(fmt.Sprintf("INSERT INTO chaos VALUES (%d, %d.5)", i, i)); err != nil {
			t.Fatal(err)
		}
	}
	const q = "SELECT count(*), avg(x) FROM chaos GROUP BY x DISTANCE-TO-ANY L2 WITHIN 3 ORDER BY count(*)"
	want, err := setup.Exec(q)
	if err != nil {
		t.Fatal(err)
	}

	h.proxy.SetPlan(chaos.Plan{Latency: 15 * time.Millisecond})
	start := time.Now()
	c, err := client.Connect(h.proxy.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	got, err := c.Exec(q)
	if err != nil {
		t.Fatalf("query under latency: %v", err)
	}
	// Handshake + query = two delayed client→server writes minimum.
	if elapsed := time.Since(start); elapsed < 30*time.Millisecond {
		t.Fatalf("latency plan not applied: connect+query took %v", elapsed)
	}
	if len(got.Rows) != len(want.Rows) {
		t.Fatalf("%d rows under latency, want %d", len(got.Rows), len(want.Rows))
	}
	for i := range want.Rows {
		for j := range want.Rows[i] {
			if got.Rows[i][j] != want.Rows[i][j] {
				t.Fatalf("row %d col %d: %v != %v", i, j, got.Rows[i][j], want.Rows[i][j])
			}
		}
	}
}

// verifyAcked reopens the data directory cold (real filesystem, no faults)
// and asserts every acknowledged id is present — the no-acked-write-loss
// invariant. Applied-but-unacknowledged rows may legitimately also exist
// (statements that applied in memory before their durability hook failed and
// were then checkpointed at promotion), so the check is containment, not
// equality.
func verifyAcked(t *testing.T, dir string, acked []int) {
	t.Helper()
	s, err := server.OpenStore(server.StoreOptions{Dir: dir})
	if err != nil {
		t.Fatalf("cold reopen: %v", err)
	}
	defer s.Close()
	res, err := s.DB().Query("SELECT id FROM chaos")
	if err != nil {
		t.Fatalf("reading recovered rows: %v", err)
	}
	have := make(map[int64]bool, len(res.Rows))
	for _, r := range res.Rows {
		have[r[0].I] = true
	}
	for _, id := range acked {
		if !have[int64(id)] {
			t.Errorf("acknowledged write id=%d lost after recovery", id)
		}
	}
}
