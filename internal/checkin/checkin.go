// Package checkin generates synthetic location-based social check-in data
// standing in for the Brightkite and Gowalla datasets the paper evaluates on
// (§8.3, Figure 11).
//
// Real check-ins are heavily skewed: most activity concentrates in a modest
// number of urban hotspots over a sparse global background. The generator
// reproduces that shape with a seeded Gaussian mixture — hotspot centres
// drawn uniformly over a bounding box, hotspot weights following a Zipf-like
// decay, per-hotspot spread in the sub-degree range — plus a uniform
// background component. That skew is what drives both the clustering
// baselines' iteration counts and the SGB operators' group counts, which is
// the behaviour Figure 11 compares.
package checkin

import (
	"math/rand"

	"sgb/internal/engine"
	"sgb/internal/geom"
)

// Config parameterizes a generation run.
type Config struct {
	// N is the number of check-ins to generate.
	N int
	// Hotspots is the number of Gaussian mixture components (default 40).
	Hotspots int
	// Spread is the per-hotspot standard deviation in degrees (default 0.05,
	// roughly city-sized).
	Spread float64
	// Background is the fraction of check-ins drawn uniformly over the
	// bounding box rather than from a hotspot (default 0.05).
	Background float64
	// Users is the size of the user population check-ins are attributed to
	// (default N/20, at least 1).
	Users int
	// Box bounds the coordinates: [latMin, latMax, lonMin, lonMax]
	// (default {25, 49, -125, -67}, roughly the continental US, matching
	// the Brightkite/Gowalla concentration).
	Box [4]float64
	// Seed makes generation reproducible. Different seeds stand in for the
	// two distinct datasets of Figure 11.
	Seed int64
}

func (c Config) withDefaults() Config {
	if c.Hotspots <= 0 {
		c.Hotspots = 40
	}
	if c.Spread <= 0 {
		c.Spread = 0.05
	}
	if c.Background <= 0 {
		c.Background = 0.05
	}
	if c.Users <= 0 {
		c.Users = c.N / 20
		if c.Users < 1 {
			c.Users = 1
		}
	}
	if c.Box == [4]float64{} {
		c.Box = [4]float64{25, 49, -125, -67}
	}
	return c
}

// Checkin is one generated record.
type Checkin struct {
	UserID   int
	Lat, Lon float64
}

// Generate produces n check-ins under the given configuration.
func Generate(cfg Config) []Checkin {
	cfg = cfg.withDefaults()
	r := rand.New(rand.NewSource(cfg.Seed))

	type hotspot struct {
		lat, lon, w float64
	}
	spots := make([]hotspot, cfg.Hotspots)
	var totalW float64
	for i := range spots {
		spots[i] = hotspot{
			lat: cfg.Box[0] + r.Float64()*(cfg.Box[1]-cfg.Box[0]),
			lon: cfg.Box[2] + r.Float64()*(cfg.Box[3]-cfg.Box[2]),
			w:   1 / float64(i+1), // Zipf-like popularity decay
		}
		totalW += spots[i].w
	}

	out := make([]Checkin, 0, cfg.N)
	for len(out) < cfg.N {
		var lat, lon float64
		if r.Float64() < cfg.Background {
			lat = cfg.Box[0] + r.Float64()*(cfg.Box[1]-cfg.Box[0])
			lon = cfg.Box[2] + r.Float64()*(cfg.Box[3]-cfg.Box[2])
		} else {
			target := r.Float64() * totalW
			var acc float64
			idx := len(spots) - 1
			for i, s := range spots {
				acc += s.w
				if acc >= target {
					idx = i
					break
				}
			}
			lat = spots[idx].lat + r.NormFloat64()*cfg.Spread
			lon = spots[idx].lon + r.NormFloat64()*cfg.Spread
		}
		// Clamp strays back into the box so downstream normalization is
		// stable.
		lat = clamp(lat, cfg.Box[0], cfg.Box[1])
		lon = clamp(lon, cfg.Box[2], cfg.Box[3])
		out = append(out, Checkin{
			UserID: 1 + r.Intn(cfg.Users),
			Lat:    lat,
			Lon:    lon,
		})
	}
	return out
}

func clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// Points converts check-ins to bare 2-D points (lat, lon) for the core-level
// benchmarks.
func Points(cs []Checkin) []geom.Point {
	out := make([]geom.Point, len(cs))
	for i, c := range cs {
		out[i] = geom.Point{c.Lat, c.Lon}
	}
	return out
}

// Schema is the check-in table layout.
func Schema() engine.Schema {
	return engine.Schema{
		{Name: "user_id", T: engine.TypeInt},
		{Name: "lat", T: engine.TypeFloat},
		{Name: "lon", T: engine.TypeFloat},
	}
}

// Load creates a check-in table with the given name in db and bulk-loads the
// records.
func Load(db *engine.DB, table string, cs []Checkin) error {
	t, err := db.Catalog().Create(table, Schema())
	if err != nil {
		return err
	}
	rows := make([]engine.Row, len(cs))
	for i, c := range cs {
		rows[i] = engine.Row{
			engine.NewInt(int64(c.UserID)),
			engine.NewFloat(c.Lat),
			engine.NewFloat(c.Lon),
		}
	}
	return t.Insert(rows...)
}
