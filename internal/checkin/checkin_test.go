package checkin

import (
	"math"
	"reflect"
	"testing"

	"sgb/internal/engine"
)

func TestGenerateBasics(t *testing.T) {
	cs := Generate(Config{N: 5000, Seed: 1})
	if len(cs) != 5000 {
		t.Fatalf("generated %d check-ins", len(cs))
	}
	cfg := Config{}.withDefaults()
	for _, c := range cs {
		if c.Lat < cfg.Box[0] || c.Lat > cfg.Box[1] || c.Lon < cfg.Box[2] || c.Lon > cfg.Box[3] {
			t.Fatalf("check-in outside bounding box: %+v", c)
		}
		if c.UserID < 1 {
			t.Fatalf("bad user id %d", c.UserID)
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a := Generate(Config{N: 1000, Seed: 42})
	b := Generate(Config{N: 1000, Seed: 42})
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same seed produced different data")
	}
	c := Generate(Config{N: 1000, Seed: 43})
	if reflect.DeepEqual(a, c) {
		t.Fatal("different seeds produced identical data")
	}
}

// TestSkewed verifies the defining property of the substitution: check-ins
// concentrate in hotspots rather than spreading uniformly. We measure that
// by gridding the box and checking that a small fraction of cells holds the
// majority of points.
func TestSkewed(t *testing.T) {
	cfg := Config{N: 20000, Seed: 2}.withDefaults()
	cs := Generate(cfg)
	const grid = 40
	cells := map[[2]int]int{}
	for _, c := range cs {
		gx := int(float64(grid) * (c.Lat - cfg.Box[0]) / (cfg.Box[1] - cfg.Box[0]))
		gy := int(float64(grid) * (c.Lon - cfg.Box[2]) / (cfg.Box[3] - cfg.Box[2]))
		if gx == grid {
			gx--
		}
		if gy == grid {
			gy--
		}
		cells[[2]int{gx, gy}]++
	}
	// Count points in the 5% most loaded cells.
	var counts []int
	for _, n := range cells {
		counts = append(counts, n)
	}
	// Simple selection: top k cells.
	k := grid * grid / 20
	top := 0
	for i := 0; i < k && len(counts) > 0; i++ {
		best := 0
		for j, n := range counts {
			if n > counts[best] {
				best = j
			}
		}
		top += counts[best]
		counts = append(counts[:best], counts[best+1:]...)
	}
	frac := float64(top) / float64(len(cs))
	if frac < 0.5 {
		t.Fatalf("data is not skewed: top 5%% of cells hold only %.1f%% of points", frac*100)
	}
}

func TestPointsConversion(t *testing.T) {
	cs := []Checkin{{UserID: 1, Lat: 30, Lon: -100}, {UserID: 2, Lat: 40, Lon: -90}}
	pts := Points(cs)
	if len(pts) != 2 || pts[0][0] != 30 || pts[1][1] != -90 {
		t.Fatalf("points = %v", pts)
	}
}

func TestLoadAndSGBQuery(t *testing.T) {
	db := engine.NewDB()
	cs := Generate(Config{N: 800, Hotspots: 5, Seed: 3})
	if err := Load(db, "checkins", cs); err != nil {
		t.Fatal(err)
	}
	res, err := db.Query(`
		SELECT count(*) FROM checkins
		GROUP BY lat, lon DISTANCE-TO-ANY L2 WITHIN 0.5`)
	if err != nil {
		t.Fatal(err)
	}
	var total int64
	for _, r := range res.Rows {
		total += r[0].I
	}
	if total != 800 {
		t.Fatalf("SGB-Any group sizes sum to %d, want 800", total)
	}
	if len(res.Rows) < 2 {
		t.Fatalf("expected several spatial groups, got %d", len(res.Rows))
	}
	// Clustered data: group count far below N.
	if len(res.Rows) > 400 {
		t.Fatalf("too many groups for clustered data: %d", len(res.Rows))
	}
	if math.IsNaN(float64(total)) {
		t.Fatal("unreachable")
	}
}

func TestCustomBoxAndUsers(t *testing.T) {
	cs := Generate(Config{N: 500, Users: 10, Box: [4]float64{0, 1, 0, 1}, Seed: 4})
	for _, c := range cs {
		if c.UserID > 10 {
			t.Fatalf("user id %d beyond population", c.UserID)
		}
		if c.Lat < 0 || c.Lat > 1 || c.Lon < 0 || c.Lon > 1 {
			t.Fatalf("check-in outside custom box: %+v", c)
		}
	}
}
