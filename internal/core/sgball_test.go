package core

import (
	"math/rand"
	"reflect"
	"sort"
	"testing"

	"sgb/internal/geom"
)

// figure2Points reproduces the arrival order a1..a5 of Figure 2: two cliques
// {a1,a2} and {a3,a4}, then a5 within ε=3 (L∞) of all four.
func figure2Points() []geom.Point {
	return []geom.Point{
		{1, 1},   // a1
		{2, 2},   // a2
		{6, 1},   // a3
		{7, 2},   // a4
		{4, 1.5}, // a5 — candidate of both groups
	}
}

func sortedSizes(r *Result) []int {
	s := r.Sizes()
	sort.Ints(s)
	return s
}

func allAlgorithms() []Algorithm { return []Algorithm{AllPairs, BoundsChecking, IndexBounds} }

// TestFigure2JoinAny reproduces Example 1: JOIN-ANY yields counts {3,2}.
func TestFigure2JoinAny(t *testing.T) {
	for _, alg := range allAlgorithms() {
		res, err := SGBAll(figure2Points(), Options{Metric: geom.LInf, Eps: 3, Overlap: JoinAny, Algorithm: alg})
		if err != nil {
			t.Fatalf("%v: %v", alg, err)
		}
		if got := sortedSizes(res); !reflect.DeepEqual(got, []int{2, 3}) {
			t.Errorf("%v: sizes = %v, want [2 3]", alg, got)
		}
		if len(res.Dropped) != 0 {
			t.Errorf("%v: JOIN-ANY dropped %v", alg, res.Dropped)
		}
	}
}

// TestFigure2Eliminate reproduces Example 1: ELIMINATE yields counts {2,2}
// with a5 dropped.
func TestFigure2Eliminate(t *testing.T) {
	for _, alg := range allAlgorithms() {
		res, err := SGBAll(figure2Points(), Options{Metric: geom.LInf, Eps: 3, Overlap: Eliminate, Algorithm: alg})
		if err != nil {
			t.Fatalf("%v: %v", alg, err)
		}
		if got := sortedSizes(res); !reflect.DeepEqual(got, []int{2, 2}) {
			t.Errorf("%v: sizes = %v, want [2 2]", alg, got)
		}
		if !reflect.DeepEqual(res.Dropped, []int{4}) {
			t.Errorf("%v: dropped = %v, want [4] (a5)", alg, res.Dropped)
		}
	}
}

// TestFigure2FormNewGroup reproduces Example 1: FORM-NEW-GROUP yields counts
// {2,2,1}, the singleton being a5's dedicated group.
func TestFigure2FormNewGroup(t *testing.T) {
	for _, alg := range allAlgorithms() {
		res, err := SGBAll(figure2Points(), Options{Metric: geom.LInf, Eps: 3, Overlap: FormNewGroup, Algorithm: alg})
		if err != nil {
			t.Fatalf("%v: %v", alg, err)
		}
		if got := sortedSizes(res); !reflect.DeepEqual(got, []int{1, 2, 2}) {
			t.Errorf("%v: sizes = %v, want [1 2 2]", alg, got)
		}
		var single *Group
		for i := range res.Groups {
			if len(res.Groups[i].IDs) == 1 {
				single = &res.Groups[i]
			}
		}
		if single == nil || single.IDs[0] != 4 {
			t.Errorf("%v: singleton group is %v, want [4]", alg, single)
		}
		if res.Stats.Rounds != 2 {
			t.Errorf("%v: rounds = %d, want 2", alg, res.Stats.Rounds)
		}
	}
}

// TestFigure1Clique reproduces Figure 1a: points a–e form a single clique
// under ε=3, with an L2 check that the same set groups together.
func TestFigure1Clique(t *testing.T) {
	pts := []geom.Point{{1, 2}, {2, 3}, {3, 2.5}, {2, 1}, {3, 1.5}}
	for _, m := range []geom.Metric{geom.LInf, geom.L2, geom.L1} {
		for _, alg := range allAlgorithms() {
			res, err := SGBAll(pts, Options{Metric: m, Eps: 3, Overlap: JoinAny, Algorithm: alg})
			if err != nil {
				t.Fatalf("%v/%v: %v", m, alg, err)
			}
			if len(res.Groups) != 1 || len(res.Groups[0].IDs) != 5 {
				t.Errorf("%v/%v: groups = %v, want one group of 5", m, alg, res.Groups)
			}
		}
	}
}

// TestPartialOverlapEliminate exercises ProcessOverlap: a probe that joins a
// new group while being within ε of *some* members of an existing group
// causes those members to be eliminated (Figure 4's a3).
func TestPartialOverlapEliminate(t *testing.T) {
	// 1-D layout: g1 = {0, 2} is a clique at ε=2; x=3.5 is within ε of 2
	// but not of 0, so g1 partially overlaps. x forms its own group and
	// the overlapped member (point id 1, value 2) is eliminated.
	pts := []geom.Point{{0}, {2}, {3.5}}
	for _, alg := range allAlgorithms() {
		res, err := SGBAll(pts, Options{Metric: geom.LInf, Eps: 2, Overlap: Eliminate, Algorithm: alg})
		if err != nil {
			t.Fatalf("%v: %v", alg, err)
		}
		if got := sortedSizes(res); !reflect.DeepEqual(got, []int{1, 1}) {
			t.Errorf("%v: sizes = %v, want [1 1]", alg, got)
		}
		if !reflect.DeepEqual(res.Dropped, []int{1}) {
			t.Errorf("%v: dropped = %v, want [1]", alg, res.Dropped)
		}
	}
}

// TestPartialOverlapFormNewGroup: same layout, but the overlapped member is
// diverted to S′ and re-grouped in a second round.
func TestPartialOverlapFormNewGroup(t *testing.T) {
	pts := []geom.Point{{0}, {2}, {3.5}}
	for _, alg := range allAlgorithms() {
		res, err := SGBAll(pts, Options{Metric: geom.LInf, Eps: 2, Overlap: FormNewGroup, Algorithm: alg})
		if err != nil {
			t.Fatalf("%v: %v", alg, err)
		}
		if got := sortedSizes(res); !reflect.DeepEqual(got, []int{1, 1, 1}) {
			t.Errorf("%v: sizes = %v, want [1 1 1]", alg, got)
		}
		if len(res.Dropped) != 0 {
			t.Errorf("%v: FORM-NEW-GROUP dropped %v", alg, res.Dropped)
		}
		if res.Stats.Rounds < 2 {
			t.Errorf("%v: rounds = %d, want >= 2", alg, res.Stats.Rounds)
		}
	}
}

// TestL2FalsePositiveFiltered reproduces Figure 7b: a point inside the ε-All
// rectangle but outside the ε-circle must not join under L2, on every
// algorithm (with and without the hull refinement).
func TestL2FalsePositiveFiltered(t *testing.T) {
	// a1 at origin, ε=5. a2 at (4,4): L∞ distance 4 (inside rectangle),
	// L2 distance ~5.66 (outside the circle).
	pts := []geom.Point{{0, 0}, {4, 4}}
	for _, alg := range allAlgorithms() {
		for _, disable := range []bool{false, true} {
			res, err := SGBAll(pts, Options{Metric: geom.L2, Eps: 5, Overlap: JoinAny, Algorithm: alg, DisableHullRefine: disable})
			if err != nil {
				t.Fatalf("%v: %v", alg, err)
			}
			if len(res.Groups) != 2 {
				t.Errorf("%v (hull disabled=%v): L2 false positive joined the group: %v", alg, disable, res.Groups)
			}
		}
	}
	// Under L∞ the same pair is a clique.
	res, err := SGBAll(pts, Options{Metric: geom.LInf, Eps: 5, Overlap: JoinAny, Algorithm: BoundsChecking})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Groups) != 1 {
		t.Errorf("LInf: groups = %v, want one group", res.Groups)
	}
}

// cliqueOK verifies the defining SGB-All invariant on a result: every pair
// inside every group satisfies the similarity predicate.
func cliqueOK(t *testing.T, pts []geom.Point, res *Result, m geom.Metric, eps float64) {
	t.Helper()
	for _, g := range res.Groups {
		for i := 0; i < len(g.IDs); i++ {
			for j := i + 1; j < len(g.IDs); j++ {
				a, b := pts[g.IDs[i]], pts[g.IDs[j]]
				if !geom.Within(m, a, b, eps) {
					t.Fatalf("group %v is not a clique: δ(%v,%v) > %v", g.IDs, a, b, eps)
				}
			}
		}
	}
}

// partitionOK verifies that groups plus dropped points exactly partition the
// input.
func partitionOK(t *testing.T, n int, res *Result) {
	t.Helper()
	seen := make([]bool, n)
	mark := func(id int) {
		if id < 0 || id >= n {
			t.Fatalf("out-of-range point id %d", id)
		}
		if seen[id] {
			t.Fatalf("point %d appears twice in the result", id)
		}
		seen[id] = true
	}
	for _, g := range res.Groups {
		for _, id := range g.IDs {
			mark(id)
		}
	}
	for _, id := range res.Dropped {
		mark(id)
	}
	for id, ok := range seen {
		if !ok {
			t.Fatalf("point %d missing from the result", id)
		}
	}
}

func randomPoints(r *rand.Rand, n, dim int, span float64) []geom.Point {
	pts := make([]geom.Point, n)
	for i := range pts {
		p := make(geom.Point, dim)
		for d := range p {
			p[d] = r.Float64() * span
		}
		pts[i] = p
	}
	return pts
}

// TestAlgorithmsAgree is the central cross-validation property: the three
// SGB-All implementations must produce identical groupings for any input,
// metric, and overlap clause (deterministic JOIN-ANY).
func TestAlgorithmsAgree(t *testing.T) {
	r := rand.New(rand.NewSource(50))
	for _, m := range []geom.Metric{geom.LInf, geom.L2, geom.L1} {
		for _, ov := range []Overlap{JoinAny, Eliminate, FormNewGroup} {
			for _, dim := range []int{1, 2, 3} {
				for trial := 0; trial < 8; trial++ {
					n := 30 + r.Intn(120)
					eps := 0.5 + r.Float64()*2
					pts := randomPoints(r, n, dim, 12)
					var results []*Result
					for _, alg := range allAlgorithms() {
						res, err := SGBAll(pts, Options{Metric: m, Eps: eps, Overlap: ov, Algorithm: alg})
						if err != nil {
							t.Fatalf("%v/%v/dim%d: %v", m, ov, dim, err)
						}
						cliqueOK(t, pts, res, m, eps)
						partitionOK(t, n, res)
						results = append(results, res)
					}
					for i := 1; i < len(results); i++ {
						if !reflect.DeepEqual(results[0].Groups, results[i].Groups) {
							t.Fatalf("%v/%v/dim%d n=%d eps=%v: %v and %v disagree:\n%v\nvs\n%v",
								m, ov, dim, n, eps, allAlgorithms()[0], allAlgorithms()[i],
								results[0].Groups, results[i].Groups)
						}
						if !reflect.DeepEqual(results[0].Dropped, results[i].Dropped) {
							t.Fatalf("%v/%v/dim%d: dropped sets disagree: %v vs %v",
								m, ov, dim, results[0].Dropped, results[i].Dropped)
						}
					}
				}
			}
		}
	}
}

// TestHullRefineMatchesExact checks the ablation switch: the convex hull
// refinement must not change any grouping decision versus exact member scans.
func TestHullRefineMatchesExact(t *testing.T) {
	r := rand.New(rand.NewSource(51))
	for _, ov := range []Overlap{JoinAny, Eliminate, FormNewGroup} {
		for trial := 0; trial < 10; trial++ {
			n := 50 + r.Intn(150)
			eps := 0.5 + r.Float64()*2
			pts := randomPoints(r, n, 2, 10)
			withHull, err := SGBAll(pts, Options{Metric: geom.L2, Eps: eps, Overlap: ov, Algorithm: IndexBounds})
			if err != nil {
				t.Fatal(err)
			}
			exact, err := SGBAll(pts, Options{Metric: geom.L2, Eps: eps, Overlap: ov, Algorithm: IndexBounds, DisableHullRefine: true})
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(withHull.Groups, exact.Groups) || !reflect.DeepEqual(withHull.Dropped, exact.Dropped) {
				t.Fatalf("%v: hull refinement changed the grouping", ov)
			}
			if withHull.Stats.HullTests == 0 {
				t.Fatalf("%v: hull refinement never exercised", ov)
			}
		}
	}
}

// TestJoinAnyRandomizedStillValid verifies that a seeded random arbitration
// still yields valid cliques partitioning the input.
func TestJoinAnyRandomizedStillValid(t *testing.T) {
	r := rand.New(rand.NewSource(52))
	pts := randomPoints(r, 200, 2, 8)
	res, err := SGBAll(pts, Options{
		Metric: geom.L2, Eps: 1.0, Overlap: JoinAny, Algorithm: IndexBounds,
		Rand: rand.New(rand.NewSource(99)),
	})
	if err != nil {
		t.Fatal(err)
	}
	cliqueOK(t, pts, res, geom.L2, 1.0)
	partitionOK(t, len(pts), res)
}

// TestEliminatedPointsWereOverlapping: every dropped point must have been
// within ε of members of at least two groups, or removed by ProcessOverlap
// (within ε of a non-member probe). At minimum, a dropped point must be
// within ε of some surviving or dropped point — dropping an isolated point
// would be a bug.
func TestEliminatedPointsNotIsolated(t *testing.T) {
	r := rand.New(rand.NewSource(53))
	for trial := 0; trial < 10; trial++ {
		pts := randomPoints(r, 150, 2, 10)
		eps := 0.8
		res, err := SGBAll(pts, Options{Metric: geom.L2, Eps: eps, Overlap: Eliminate, Algorithm: IndexBounds})
		if err != nil {
			t.Fatal(err)
		}
		for _, d := range res.Dropped {
			near := false
			for i := range pts {
				if i != d && geom.Within(geom.L2, pts[d], pts[i], eps) {
					near = true
					break
				}
			}
			if !near {
				t.Fatalf("isolated point %d was eliminated", d)
			}
		}
	}
}

// TestSingletonAndEmptyInputs covers the degenerate cases.
func TestSingletonAndEmptyInputs(t *testing.T) {
	for _, alg := range allAlgorithms() {
		res, err := SGBAll(nil, Options{Metric: geom.L2, Eps: 1, Algorithm: alg})
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Groups) != 0 {
			t.Fatalf("%v: empty input produced groups", alg)
		}
		res, err = SGBAll([]geom.Point{{1, 1}}, Options{Metric: geom.L2, Eps: 1, Algorithm: alg})
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Groups) != 1 || len(res.Groups[0].IDs) != 1 {
			t.Fatalf("%v: singleton input produced %v", alg, res.Groups)
		}
	}
}

func TestDuplicatePointsGroupTogether(t *testing.T) {
	pts := []geom.Point{{1, 1}, {1, 1}, {1, 1}, {9, 9}}
	for _, alg := range allAlgorithms() {
		res, err := SGBAll(pts, Options{Metric: geom.LInf, Eps: 0.5, Overlap: JoinAny, Algorithm: alg})
		if err != nil {
			t.Fatal(err)
		}
		if got := sortedSizes(res); !reflect.DeepEqual(got, []int{1, 3}) {
			t.Fatalf("%v: sizes = %v, want [1 3]", alg, got)
		}
	}
}

func TestOptionValidation(t *testing.T) {
	if _, err := SGBAll(nil, Options{Metric: geom.L2, Eps: 0}); err == nil {
		t.Error("accepted eps = 0")
	}
	if _, err := SGBAll(nil, Options{Metric: geom.L2, Eps: -1}); err == nil {
		t.Error("accepted negative eps")
	}
	if _, err := SGBAll(nil, Options{Metric: geom.Metric(7), Eps: 1}); err == nil {
		t.Error("accepted unknown metric")
	}
	if _, err := SGBAll(nil, Options{Metric: geom.L2, Eps: 1, Algorithm: Algorithm(9)}); err == nil {
		t.Error("accepted unknown algorithm")
	}
	if _, err := SGBAll(nil, Options{Metric: geom.L2, Eps: 1, Overlap: Overlap(9)}); err == nil {
		t.Error("accepted unknown overlap clause")
	}
}

func TestGrouperLifecycleErrors(t *testing.T) {
	g, err := NewAllGrouper(Options{Metric: geom.L2, Eps: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := g.Add(geom.Point{}); err == nil {
		t.Error("accepted zero-dimensional point")
	}
	if _, err := g.Add(geom.Point{1, 2}); err != nil {
		t.Fatal(err)
	}
	if _, err := g.Add(geom.Point{1}); err != ErrDimensionMismatch {
		t.Errorf("dimension mismatch error = %v", err)
	}
	if _, err := g.Finish(); err != nil {
		t.Fatal(err)
	}
	if _, err := g.Add(geom.Point{3, 3}); err == nil {
		t.Error("Add after Finish succeeded")
	}
	if _, err := g.Finish(); err == nil {
		t.Error("double Finish succeeded")
	}
}

func TestParseOverlap(t *testing.T) {
	cases := map[string]Overlap{
		"JOIN-ANY": JoinAny, "join_any": JoinAny, "JoinAny": JoinAny,
		"ELIMINATE": Eliminate, "eliminate": Eliminate,
		"FORM-NEW-GROUP": FormNewGroup, "form-new": FormNewGroup, "FORM NEW GROUP": FormNewGroup,
	}
	for in, want := range cases {
		got, err := ParseOverlap(in)
		if err != nil || got != want {
			t.Errorf("ParseOverlap(%q) = %v, %v; want %v", in, got, err, want)
		}
	}
	if _, err := ParseOverlap("merge"); err == nil {
		t.Error("ParseOverlap accepted garbage")
	}
}

func TestEnumStrings(t *testing.T) {
	if JoinAny.String() != "JOIN-ANY" || Eliminate.String() != "ELIMINATE" || FormNewGroup.String() != "FORM-NEW-GROUP" {
		t.Error("overlap names wrong")
	}
	if AllPairs.String() != "All-Pairs" || BoundsChecking.String() != "Bounds-Checking" || IndexBounds.String() != "on-the-fly Index" {
		t.Error("algorithm names wrong")
	}
	if Overlap(9).String() == "" || Algorithm(9).String() == "" {
		t.Error("unknown enum String empty")
	}
}

// TestStatsPopulated sanity-checks the instrumentation counters.
func TestStatsPopulated(t *testing.T) {
	r := rand.New(rand.NewSource(54))
	pts := randomPoints(r, 300, 2, 10)
	opt := Options{Metric: geom.L2, Eps: 0.7, Overlap: Eliminate}

	opt.Algorithm = AllPairs
	ap, err := SGBAll(pts, opt)
	if err != nil {
		t.Fatal(err)
	}
	opt.Algorithm = BoundsChecking
	bc, err := SGBAll(pts, opt)
	if err != nil {
		t.Fatal(err)
	}
	opt.Algorithm = IndexBounds
	ix, err := SGBAll(pts, opt)
	if err != nil {
		t.Fatal(err)
	}
	if ap.Stats.DistanceComps <= bc.Stats.DistanceComps {
		t.Errorf("bounds-checking did not reduce distance computations: %d vs %d",
			bc.Stats.DistanceComps, ap.Stats.DistanceComps)
	}
	if ix.Stats.WindowQueries == 0 || ix.Stats.IndexUpdates == 0 {
		t.Error("index stats not populated")
	}
	if bc.Stats.RectTests == 0 {
		t.Error("rect test count not populated")
	}
	if ap.Stats.Points != 300 || bc.Stats.Points != 300 || ix.Stats.Points != 300 {
		t.Error("point counts wrong")
	}
	// The index prunes the rectangle tests relative to the linear scan.
	if ix.Stats.RectTests > bc.Stats.RectTests {
		t.Errorf("index did not prune rect tests: %d vs %d", ix.Stats.RectTests, bc.Stats.RectTests)
	}
}

// TestManyRoundsFormNewGroup builds a pathological chain that forces several
// FORM-NEW-GROUP rounds and checks termination and validity.
func TestManyRoundsFormNewGroup(t *testing.T) {
	// A tight line of points: each new point overlaps the previous groups,
	// repeatedly deferring points.
	var pts []geom.Point
	for i := 0; i < 60; i++ {
		pts = append(pts, geom.Point{float64(i) * 0.6, 0})
	}
	for _, alg := range allAlgorithms() {
		res, err := SGBAll(pts, Options{Metric: geom.LInf, Eps: 1, Overlap: FormNewGroup, Algorithm: alg})
		if err != nil {
			t.Fatalf("%v: %v", alg, err)
		}
		cliqueOK(t, pts, res, geom.LInf, 1)
		partitionOK(t, len(pts), res)
		if res.Stats.Rounds < 2 {
			t.Errorf("%v: expected multiple rounds, got %d", alg, res.Stats.Rounds)
		}
	}
}
