package core

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"sgb/internal/geom"
)

// pointCloud is a quick.Generator input: a compact encoding of a random
// point set plus operator parameters, so testing/quick can drive the
// operators with structured inputs.
type pointCloud struct {
	Coords []float64
	Dim    uint8
	Eps    float64
	Metric uint8
	Seed   int64
}

// materialize turns the raw generated values into a valid operator input.
func (c pointCloud) materialize() ([]geom.Point, geom.Metric, float64) {
	dim := int(c.Dim)%3 + 1
	eps := 0.2 + mod1(c.Eps)*1.5
	metric := []geom.Metric{geom.L2, geom.LInf, geom.L1}[int(c.Metric)%3]
	// Clamp the cloud size and spread.
	coords := c.Coords
	if len(coords) > 600 {
		coords = coords[:600]
	}
	var pts []geom.Point
	for i := 0; i+dim <= len(coords); i += dim {
		p := make(geom.Point, dim)
		for d := 0; d < dim; d++ {
			p[d] = mod1(coords[i+d]) * 8
		}
		pts = append(pts, p)
	}
	return pts, metric, eps
}

// mod1 maps any float (including NaN/Inf) into [0,1).
func mod1(f float64) float64 {
	if f != f || f > 1e18 || f < -1e18 { // NaN or huge
		return 0.5
	}
	if f < 0 {
		f = -f
	}
	for f >= 1 {
		f /= 2
	}
	return f
}

// TestQuickAllInvariants drives SGB-All with quick-generated clouds and
// checks, for every algorithm and overlap clause, that the output is a
// partition of the input into ε-cliques and that all three algorithms agree.
func TestQuickAllInvariants(t *testing.T) {
	cfg := &quick.Config{MaxCount: 60, Rand: rand.New(rand.NewSource(80))}
	property := func(c pointCloud) bool {
		pts, metric, eps := c.materialize()
		for _, ov := range []Overlap{JoinAny, Eliminate, FormNewGroup} {
			var base *Result
			for _, alg := range []Algorithm{AllPairs, BoundsChecking, IndexBounds} {
				res, err := SGBAll(pts, Options{Metric: metric, Eps: eps, Overlap: ov, Algorithm: alg})
				if err != nil {
					t.Logf("SGBAll error: %v", err)
					return false
				}
				// Clique invariant.
				for _, g := range res.Groups {
					for i := 0; i < len(g.IDs); i++ {
						for j := i + 1; j < len(g.IDs); j++ {
							if !geom.Within(metric, pts[g.IDs[i]], pts[g.IDs[j]], eps) {
								t.Logf("%v/%v: non-clique group", ov, alg)
								return false
							}
						}
					}
				}
				// Partition invariant.
				seen := make([]bool, len(pts))
				count := 0
				for _, g := range res.Groups {
					for _, id := range g.IDs {
						if seen[id] {
							t.Logf("%v/%v: duplicate id", ov, alg)
							return false
						}
						seen[id] = true
						count++
					}
				}
				for _, id := range res.Dropped {
					if seen[id] {
						t.Logf("%v/%v: dropped id also grouped", ov, alg)
						return false
					}
					seen[id] = true
					count++
				}
				if count != len(pts) {
					t.Logf("%v/%v: result covers %d of %d points", ov, alg, count, len(pts))
					return false
				}
				if ov != Eliminate && len(res.Dropped) != 0 {
					t.Logf("%v/%v: non-ELIMINATE run dropped points", ov, alg)
					return false
				}
				if base == nil {
					base = res
				} else if !reflect.DeepEqual(base.Groups, res.Groups) || !reflect.DeepEqual(base.Dropped, res.Dropped) {
					t.Logf("%v: %v disagrees with All-Pairs", ov, alg)
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(property, cfg); err != nil {
		t.Error(err)
	}
}

// TestQuickAnyMatchesComponents drives SGB-Any with quick-generated clouds
// and checks the connected-components semantics for both algorithms.
func TestQuickAnyMatchesComponents(t *testing.T) {
	cfg := &quick.Config{MaxCount: 60, Rand: rand.New(rand.NewSource(81))}
	property := func(c pointCloud) bool {
		pts, metric, eps := c.materialize()
		want := referenceComponents(pts, metric, eps)
		for _, alg := range []Algorithm{AllPairs, IndexBounds} {
			res, err := SGBAny(pts, Options{Metric: metric, Eps: eps, Algorithm: alg})
			if err != nil {
				t.Logf("SGBAny error: %v", err)
				return false
			}
			if !reflect.DeepEqual(res.Groups, want) {
				t.Logf("%v: component mismatch", alg)
				return false
			}
		}
		return true
	}
	if err := quick.Check(property, cfg); err != nil {
		t.Error(err)
	}
}

// TestQuickAnyCoarserThanAll: every SGB-All JOIN-ANY group is contained in
// exactly one SGB-Any group (cliques are sub-structures of connected
// components; clique membership requires ε-adjacency to all members, so all
// members are in one component).
func TestQuickAnyCoarserThanAll(t *testing.T) {
	cfg := &quick.Config{MaxCount: 60, Rand: rand.New(rand.NewSource(82))}
	property := func(c pointCloud) bool {
		pts, metric, eps := c.materialize()
		if len(pts) == 0 {
			return true
		}
		all, err := SGBAll(pts, Options{Metric: metric, Eps: eps, Overlap: JoinAny, Algorithm: IndexBounds})
		if err != nil {
			return false
		}
		anyRes, err := SGBAny(pts, Options{Metric: metric, Eps: eps, Algorithm: IndexBounds})
		if err != nil {
			return false
		}
		comp := make([]int, len(pts))
		for ci, g := range anyRes.Groups {
			for _, id := range g.IDs {
				comp[id] = ci
			}
		}
		for _, g := range all.Groups {
			if len(g.IDs) < 2 {
				continue
			}
			c0 := comp[g.IDs[0]]
			for _, id := range g.IDs[1:] {
				if comp[id] != c0 {
					t.Logf("clique split across SGB-Any components")
					return false
				}
			}
		}
		// Group counts: SGB-Any can never have more groups than SGB-All.
		if len(anyRes.Groups) > len(all.Groups) {
			t.Logf("SGB-Any produced more groups (%d) than SGB-All (%d)",
				len(anyRes.Groups), len(all.Groups))
			return false
		}
		return true
	}
	if err := quick.Check(property, cfg); err != nil {
		t.Error(err)
	}
}

// TestQuickStatsConsistency: instrumentation counters are internally
// consistent — points processed equals the input size, rounds is at least 1,
// and the index variant issues one window query per processed point and
// round.
func TestQuickStatsConsistency(t *testing.T) {
	cfg := &quick.Config{MaxCount: 40, Rand: rand.New(rand.NewSource(83))}
	property := func(c pointCloud) bool {
		pts, metric, eps := c.materialize()
		res, err := SGBAll(pts, Options{Metric: metric, Eps: eps, Overlap: FormNewGroup, Algorithm: IndexBounds})
		if err != nil {
			return false
		}
		if res.Stats.Points != len(pts) {
			return false
		}
		if res.Stats.Rounds < 1 {
			return false
		}
		// Each processed point issues exactly one window query, and
		// deferred points are re-processed in later rounds.
		if res.Stats.WindowQueries < int64(len(pts)) && len(pts) > 0 {
			return false
		}
		return true
	}
	if err := quick.Check(property, cfg); err != nil {
		t.Error(err)
	}
}

// TestQuickEliminateSubset: under ELIMINATE the surviving groups are exactly
// the JOIN-ANY groups one would get after removing the dropped points and
// re-running? That stronger claim is false in general (removal changes the
// stream), but a weaker invariant must hold: re-running ELIMINATE on the
// surviving points drops nothing new when fed in the original relative
// order... which is also not guaranteed by the streaming semantics. What is
// guaranteed — and checked here — is determinism: the same input always
// yields the same result.
func TestQuickDeterminism(t *testing.T) {
	cfg := &quick.Config{MaxCount: 30, Rand: rand.New(rand.NewSource(84))}
	property := func(c pointCloud) bool {
		pts, metric, eps := c.materialize()
		for _, ov := range []Overlap{JoinAny, Eliminate, FormNewGroup} {
			a, err := SGBAll(pts, Options{Metric: metric, Eps: eps, Overlap: ov, Algorithm: IndexBounds})
			if err != nil {
				return false
			}
			b, err := SGBAll(pts, Options{Metric: metric, Eps: eps, Overlap: ov, Algorithm: IndexBounds})
			if err != nil {
				return false
			}
			if !reflect.DeepEqual(a, b) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(property, cfg); err != nil {
		t.Error(err)
	}
}
