package core

import (
	"context"
	"errors"
	"math"
	"math/rand"
	"reflect"
	"testing"
	"time"

	"sgb/internal/geom"
)

// adversarialPoints generates coordinates engineered to sit on or near ε-grid
// cell walls: exact multiples of ε, values a few ULPs either side, negative
// cells, and the origin — the inputs where truncation-based cell flooring
// used to disagree with math.Floor.
func adversarialPoints(r *rand.Rand, n, dim int, eps float64) []geom.Point {
	deltas := []float64{0, 1e-12, -1e-12, eps / 2, -eps / 2, eps * 1e-9, -eps * 1e-9}
	pts := make([]geom.Point, n)
	for i := range pts {
		p := make(geom.Point, dim)
		for d := range p {
			k := float64(r.Intn(9) - 4) // cells -4..4, straddling the origin
			p[d] = k*eps + deltas[r.Intn(len(deltas))]
		}
		pts[i] = p
	}
	return pts
}

// TestParallelAnyAdversarialCellBoundaries pins SGBAnyParallel == SGBAny on
// boundary-straddling inputs across metrics, dimensions and worker counts.
func TestParallelAnyAdversarialCellBoundaries(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	for _, m := range []geom.Metric{geom.L2, geom.LInf, geom.L1} {
		for _, dim := range []int{1, 2, 3} {
			for _, eps := range []float64{0.25, 1, 3.7} {
				for trial := 0; trial < 4; trial++ {
					pts := adversarialPoints(r, 80+r.Intn(120), dim, eps)
					opt := Options{Metric: m, Eps: eps}
					seqOpt := opt
					seqOpt.Algorithm = AllPairs
					want, err := SGBAny(pts, seqOpt)
					if err != nil {
						t.Fatal(err)
					}
					got, err := SGBAnyParallel(pts, opt, 1+r.Intn(7))
					if err != nil {
						t.Fatal(err)
					}
					if !reflect.DeepEqual(got.Groups, want.Groups) {
						t.Fatalf("%v/dim%d/eps%g: parallel grouping differs on boundary points",
							m, dim, eps)
					}
				}
			}
		}
	}
}

// TestNonFiniteCoordinatesRejected: NaN and ±Inf poison distance comparisons
// and grid hashing; every entry point must reject them with the typed error.
func TestNonFiniteCoordinatesRejected(t *testing.T) {
	bad := []geom.Point{{1, 2}, {math.NaN(), 0}}
	opt := Options{Metric: geom.L2, Eps: 1}

	if _, err := SGBAny(bad, opt); !errors.Is(err, ErrNonFiniteCoordinate) {
		t.Fatalf("SGBAny: err = %v, want ErrNonFiniteCoordinate", err)
	}
	if _, err := SGBAll(bad, opt); !errors.Is(err, ErrNonFiniteCoordinate) {
		t.Fatalf("SGBAll: err = %v, want ErrNonFiniteCoordinate", err)
	}
	if _, err := SGBAnyParallel(bad, opt, 2); !errors.Is(err, ErrNonFiniteCoordinate) {
		t.Fatalf("SGBAnyParallel: err = %v, want ErrNonFiniteCoordinate", err)
	}
	for _, v := range []float64{math.Inf(1), math.Inf(-1)} {
		if _, err := SGBAnyParallel([]geom.Point{{v, 0}}, opt, 2); !errors.Is(err, ErrNonFiniteCoordinate) {
			t.Fatalf("SGBAnyParallel(%v): err = %v, want ErrNonFiniteCoordinate", v, err)
		}
	}

	g, err := NewAnyGrouper(opt)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := g.Add(geom.Point{math.Inf(1), 0}); !errors.Is(err, ErrNonFiniteCoordinate) {
		t.Fatalf("AnyGrouper.Add: err = %v, want ErrNonFiniteCoordinate", err)
	}
	ag, err := NewAllGrouper(opt)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ag.Add(geom.Point{0, math.NaN()}); !errors.Is(err, ErrNonFiniteCoordinate) {
		t.Fatalf("AllGrouper.Add: err = %v, want ErrNonFiniteCoordinate", err)
	}
}

// TestParallelCtxCancel: a canceled context aborts the parallel grouping and
// surfaces ctx.Err() instead of a partial result.
func TestParallelCtxCancel(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	pts := randomPoints(r, 5000, 2, 3)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, err := SGBAnyParallelCtx(ctx, pts, Options{Metric: geom.L2, Eps: 0.5}, 4)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if res != nil {
		t.Fatal("canceled run returned a partial result")
	}
	// A live context behaves exactly like the ctx-free API.
	want, err := SGBAnyParallel(pts, Options{Metric: geom.L2, Eps: 0.5}, 4)
	if err != nil {
		t.Fatal(err)
	}
	got, err := SGBAnyParallelCtx(context.Background(), pts, Options{Metric: geom.L2, Eps: 0.5}, 4)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got.Groups, want.Groups) {
		t.Fatal("ctx variant diverged from SGBAnyParallel")
	}
}

// TestGrouperWithContextCancel: once the armed context dies, streaming Add
// fails within one poll stride.
func TestGrouperWithContextCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	opt := Options{Metric: geom.L2, Eps: 0.5, Algorithm: AllPairs}

	any, err := NewAnyGrouper(opt)
	if err != nil {
		t.Fatal(err)
	}
	any.WithContext(ctx)
	if err := addUntilError(func(p geom.Point) error { _, e := any.Add(p); return e }); !errors.Is(err, context.Canceled) {
		t.Fatalf("AnyGrouper: err = %v, want context.Canceled", err)
	}

	all, err := NewAllGrouper(opt)
	if err != nil {
		t.Fatal(err)
	}
	all.WithContext(ctx)
	if err := addUntilError(func(p geom.Point) error { _, e := all.Add(p); return e }); !errors.Is(err, context.Canceled) {
		t.Fatalf("AllGrouper: err = %v, want context.Canceled", err)
	}

	// A deadline works the same way through the shared context machinery.
	dctx, dcancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer dcancel()
	g2, err := NewAnyGrouper(opt)
	if err != nil {
		t.Fatal(err)
	}
	g2.WithContext(dctx)
	if err := addUntilError(func(p geom.Point) error { _, e := g2.Add(p); return e }); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("deadline: err = %v, want context.DeadlineExceeded", err)
	}
}

// addUntilError feeds points until the grouper reports an error, bounded by a
// few poll strides so a broken cancellation path fails the test instead of
// spinning.
func addUntilError(add func(geom.Point) error) error {
	r := rand.New(rand.NewSource(1))
	for i := 0; i < 4*ctxCheckStride; i++ {
		if err := add(geom.Point{r.Float64(), r.Float64()}); err != nil {
			return err
		}
	}
	return nil
}
