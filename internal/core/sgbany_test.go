package core

import (
	"math/rand"
	"reflect"
	"testing"

	"sgb/internal/geom"
	"sgb/internal/unionfind"
)

// TestFigure2Any reproduces Example 2: a5 bridges both groups, so SGB-Any
// outputs one group of 5.
func TestFigure2Any(t *testing.T) {
	for _, alg := range []Algorithm{AllPairs, IndexBounds} {
		res, err := SGBAny(figure2Points(), Options{Metric: geom.LInf, Eps: 3, Algorithm: alg})
		if err != nil {
			t.Fatalf("%v: %v", alg, err)
		}
		if len(res.Groups) != 1 || len(res.Groups[0].IDs) != 5 {
			t.Errorf("%v: groups = %v, want one group of 5", alg, res.Groups)
		}
	}
}

// TestFigure1Chain reproduces Figure 1b: a chain a–h connected pairwise
// within ε=3 forms a single SGB-Any group even though the extremes are far
// apart.
func TestFigure1Chain(t *testing.T) {
	pts := []geom.Point{
		{1, 1}, {3.5, 1}, {6, 1}, {8.5, 1}, {11, 1}, {13.5, 1}, {16, 1}, {18.5, 1},
	}
	for _, m := range []geom.Metric{geom.LInf, geom.L2, geom.L1} {
		for _, alg := range []Algorithm{AllPairs, IndexBounds} {
			res, err := SGBAny(pts, Options{Metric: m, Eps: 3, Algorithm: alg})
			if err != nil {
				t.Fatalf("%v/%v: %v", m, alg, err)
			}
			if len(res.Groups) != 1 || len(res.Groups[0].IDs) != len(pts) {
				t.Errorf("%v/%v: groups = %v, want one chain group", m, alg, res.Groups)
			}
		}
	}
	// An SGB-All on the same chain must not produce a single clique.
	resAll, err := SGBAll(pts, Options{Metric: geom.LInf, Eps: 3, Overlap: JoinAny, Algorithm: AllPairs})
	if err != nil {
		t.Fatal(err)
	}
	if len(resAll.Groups) == 1 {
		t.Error("SGB-All grouped a long chain into one clique")
	}
}

// referenceComponents computes the connected components of the
// ε-neighbourhood graph by brute force.
func referenceComponents(pts []geom.Point, m geom.Metric, eps float64) []Group {
	uf := unionfind.New(len(pts))
	for i := range pts {
		for j := i + 1; j < len(pts); j++ {
			if geom.Within(m, pts[i], pts[j], eps) {
				uf.Union(i, j)
			}
		}
	}
	var groups []Group
	for _, ids := range uf.Groups() {
		groups = append(groups, Group{IDs: ids})
	}
	sortGroups(groups)
	return groups
}

func sortGroups(groups []Group) {
	for i := range groups {
		ids := groups[i].IDs
		for j := 1; j < len(ids); j++ {
			for k := j; k > 0 && ids[k] < ids[k-1]; k-- {
				ids[k], ids[k-1] = ids[k-1], ids[k]
			}
		}
	}
	for i := 1; i < len(groups); i++ {
		for j := i; j > 0 && groups[j].IDs[0] < groups[j-1].IDs[0]; j-- {
			groups[j], groups[j-1] = groups[j-1], groups[j]
		}
	}
}

// TestAnyMatchesConnectedComponents is the defining SGB-Any property: the
// output must equal the connected components of the ε-neighbourhood graph,
// independent of insertion order and algorithm.
func TestAnyMatchesConnectedComponents(t *testing.T) {
	r := rand.New(rand.NewSource(60))
	for _, m := range []geom.Metric{geom.LInf, geom.L2, geom.L1} {
		for _, dim := range []int{1, 2, 3} {
			for trial := 0; trial < 10; trial++ {
				n := 30 + r.Intn(200)
				eps := 0.3 + r.Float64()
				pts := randomPoints(r, n, dim, 10)
				want := referenceComponents(pts, m, eps)
				for _, alg := range []Algorithm{AllPairs, IndexBounds} {
					res, err := SGBAny(pts, Options{Metric: m, Eps: eps, Algorithm: alg})
					if err != nil {
						t.Fatalf("%v/%v: %v", m, alg, err)
					}
					if !reflect.DeepEqual(res.Groups, want) {
						t.Fatalf("%v/%v/dim%d: SGB-Any disagrees with connected components", m, alg, dim)
					}
				}
			}
		}
	}
}

// TestAnyOrderInvariance: unlike SGB-All, the SGB-Any grouping is invariant
// under input permutation (connected components are order-free).
func TestAnyOrderInvariance(t *testing.T) {
	r := rand.New(rand.NewSource(61))
	pts := randomPoints(r, 120, 2, 8)
	base, err := SGBAny(pts, Options{Metric: geom.L2, Eps: 0.8, Algorithm: IndexBounds})
	if err != nil {
		t.Fatal(err)
	}
	// Shuffle, regroup, and map ids back through the permutation.
	perm := r.Perm(len(pts))
	shuffled := make([]geom.Point, len(pts))
	for i, p := range perm {
		shuffled[p] = pts[i] // shuffled[p] holds original point i
	}
	res, err := SGBAny(shuffled, Options{Metric: geom.L2, Eps: 0.8, Algorithm: IndexBounds})
	if err != nil {
		t.Fatal(err)
	}
	remapped := make([]Group, len(res.Groups))
	for i, g := range res.Groups {
		ids := make([]int, len(g.IDs))
		for j, id := range g.IDs {
			// shuffled[id] was original point inv(id).
			for orig, pos := range perm {
				if pos == id {
					ids[j] = orig
					break
				}
			}
		}
		remapped[i] = Group{IDs: ids}
	}
	sortGroups(remapped)
	if !reflect.DeepEqual(base.Groups, remapped) {
		t.Fatal("SGB-Any grouping changed under input permutation")
	}
}

func TestAnyRejectsBoundsChecking(t *testing.T) {
	if _, err := SGBAny(nil, Options{Metric: geom.L2, Eps: 1, Algorithm: BoundsChecking}); err == nil {
		t.Fatal("SGB-Any accepted the Bounds-Checking algorithm")
	}
}

func TestAnyDegenerateInputs(t *testing.T) {
	for _, alg := range []Algorithm{AllPairs, IndexBounds} {
		res, err := SGBAny(nil, Options{Metric: geom.L2, Eps: 1, Algorithm: alg})
		if err != nil || len(res.Groups) != 0 {
			t.Fatalf("%v: empty input: %v %v", alg, res, err)
		}
		res, err = SGBAny([]geom.Point{{1, 2}}, Options{Metric: geom.L2, Eps: 1, Algorithm: alg})
		if err != nil || len(res.Groups) != 1 {
			t.Fatalf("%v: singleton input: %v %v", alg, res, err)
		}
	}
}

func TestAnyLifecycleErrors(t *testing.T) {
	g, err := NewAnyGrouper(Options{Metric: geom.L2, Eps: 1, Algorithm: IndexBounds})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := g.Add(geom.Point{}); err == nil {
		t.Error("accepted zero-dimensional point")
	}
	if _, err := g.Add(geom.Point{0, 0}); err != nil {
		t.Fatal(err)
	}
	if _, err := g.Add(geom.Point{0, 0, 0}); err != ErrDimensionMismatch {
		t.Errorf("dimension mismatch error = %v", err)
	}
	if _, err := g.Finish(); err != nil {
		t.Fatal(err)
	}
	if _, err := g.Add(geom.Point{1, 1}); err == nil {
		t.Error("Add after Finish succeeded")
	}
	if _, err := g.Finish(); err == nil {
		t.Error("double Finish succeeded")
	}
}

// TestAnyMergeStats: merging k chains into one group performs k-1 merges.
func TestAnyMergeStats(t *testing.T) {
	// Three separate pairs, then one point connecting all of them.
	pts := []geom.Point{
		{0, 0}, {1, 0},
		{10, 0}, {11, 0},
		{5, 8}, {5, 9},
		{5, 2}, // within 6 (LInf) of one point of each pair? Check below.
	}
	res, err := SGBAny(pts, Options{Metric: geom.LInf, Eps: 6, Algorithm: IndexBounds})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Groups) != 1 {
		t.Fatalf("groups = %v", res.Groups)
	}
	if res.Stats.GroupsMerged == 0 {
		t.Fatal("no merges recorded")
	}
}

// TestAnyL2VerifyStep: under L2 the window query needs the verify pass;
// a point at LInf distance < eps but L2 distance > eps must not connect.
func TestAnyL2VerifyStep(t *testing.T) {
	pts := []geom.Point{{0, 0}, {4, 4}}
	res, err := SGBAny(pts, Options{Metric: geom.L2, Eps: 5, Algorithm: IndexBounds})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Groups) != 2 {
		t.Fatalf("L2 verify step missed a false positive: %v", res.Groups)
	}
	res, err = SGBAny(pts, Options{Metric: geom.LInf, Eps: 5, Algorithm: IndexBounds})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Groups) != 1 {
		t.Fatalf("LInf window query should connect the pair: %v", res.Groups)
	}
}
