package core

import (
	"context"
	"fmt"
	"sort"

	"sgb/internal/geom"
	"sgb/internal/hull"
	"sgb/internal/rtree"
)

// ctxCheckStride is how many Add/processPoint steps a grouper takes between
// context polls: frequent enough that a canceled multi-second run aborts in
// well under a second, rare enough to keep the hot path branch-predictable.
const ctxCheckStride = 1024

// kernelBlock is the maximum row count of one batch-kernel probe: member
// scans walk a group's columnar mirror in slabs of up to this many points per
// geom.WithinMask call. It bounds the kernel scratch buffers; large enough to
// amortize the call and let the inner loop vectorize.
const kernelBlock = 256

// kernelHead is the number of members an early-exit scan probes
// row-at-a-time with geom.Within before switching to batch kernels. A scan
// that decides on its first member — the common case for JOIN-ANY candidacy
// over sparse data — pays exactly one distance computation and no kernel
// dispatch, matching the historical per-row scan; only scans that survive
// the head amortize kernel-call overhead over wide blocks.
const kernelHead = 16

// kernelBlockMin is the first kernel block size after the scalar head.
// Blocks double from here up to kernelBlock, so a scan deciding at member k
// computes fewer than 2k distances while long scans spend almost all their
// rows in full-width blocks.
const kernelBlockMin = 32

// scanBlocks iterates [lo, n) in kernel blocks ramping from kernelBlockMin
// up to kernelBlock. f returns false to stop the scan early.
func scanBlocks(lo, n int, f func(lo, hi int) bool) {
	blk := kernelBlockMin
	for lo < n {
		hi := lo + blk
		if hi > n {
			hi = n
		}
		if !f(lo, hi) {
			return
		}
		lo = hi
		if blk < kernelBlock {
			blk <<= 1
		}
	}
}

// headLen caps the scalar head of a scan at kernelHead members.
func headLen(n int) int {
	if n < kernelHead {
		return n
	}
	return kernelHead
}

// allGroup is one live SGB-All group under construction.
type allGroup struct {
	id      int
	members []int         // point ids, in insertion order
	cols    geom.Cols     // columnar mirror of the member coordinates, row i = members[i]
	rect    *geom.EpsRect // ε-All bounding rectangle + member MBR
	hull    *hull.Incremental
	// treeRect is the rectangle currently stored for this group in the
	// on-the-fly index. The stored rectangle is always a superset of the
	// live ε-All rectangle (it is only refreshed when removals may grow
	// the live one), so window queries never miss a relevant group.
	treeRect geom.Rect
	inTree   bool
}

// AllGrouper is a streaming SGB-All operator instance. Points are fed in
// input order with Add and the final grouping is materialized by Finish.
type AllGrouper struct {
	opt    Options
	dim    int
	points []geom.Point

	active []*allGroup // groups of the current grouping round
	final  []*allGroup // groups sealed by earlier FORM-NEW-GROUP rounds
	nextID int
	tree   *rtree.Tree // IndexBounds only

	deferred []int   // S′: points diverted by FORM-NEW-GROUP
	dropped  []int   // points discarded by ELIMINATE
	gidBuf   []int64 // scratch buffer for window-query results

	// Kernel scratch, reused across every member scan: a column view of the
	// current block plus the distance/verdict buffers for one WithinMask
	// call. Bounded by kernelBlock, alloc-free in steady state.
	view  geom.Cols
	dists []float64
	mask  []bool

	stats    Stats
	useHull  bool
	finished bool

	// ctx, when set via WithContext, lets a canceled or deadline-expired
	// query abort the grouping mid-stream; ctxTick strides the polls.
	ctx     context.Context
	ctxTick uint64
}

// NewAllGrouper returns a streaming SGB-All operator configured by opt.
func NewAllGrouper(opt Options) (*AllGrouper, error) {
	if err := opt.Validate(); err != nil {
		return nil, err
	}
	return &AllGrouper{opt: opt}, nil
}

// WithContext arms the grouper with a cancellation context: Add and Finish
// return ctx.Err() promptly once ctx is done. It returns g for chaining.
func (g *AllGrouper) WithContext(ctx context.Context) *AllGrouper {
	g.ctx = ctx
	return g
}

// checkCtx polls the context every ctxCheckStride calls.
func (g *AllGrouper) checkCtx() error {
	if g.ctx == nil {
		return nil
	}
	g.ctxTick++
	if g.ctxTick%ctxCheckStride != 0 {
		return nil
	}
	return g.ctx.Err()
}

// Add feeds the next point, in input order, and returns its point id.
// All points must share one dimensionality.
func (g *AllGrouper) Add(p geom.Point) (int, error) {
	if g.finished {
		return 0, fmt.Errorf("core: Add after Finish")
	}
	if err := checkFinite(p); err != nil {
		return 0, err
	}
	if err := g.checkCtx(); err != nil {
		return 0, err
	}
	if g.dim == 0 {
		if len(p) == 0 {
			return 0, fmt.Errorf("core: zero-dimensional point")
		}
		g.dim = len(p)
		// The convex-hull refinement (Procedure 6) applies to the 2-D L2
		// case — and equally to L1, whose distance-to-a-fixed-probe is
		// also convex, so the farthest member from any probe is a hull
		// vertex. Elsewhere the rectangle test is exact (L∞, or 1-D where
		// the metrics coincide) or we fall back to exact member scans.
		g.useHull = (g.opt.Metric == geom.L2 || g.opt.Metric == geom.L1) &&
			g.dim == 2 && !g.opt.DisableHullRefine
		if g.opt.Algorithm == IndexBounds {
			g.tree = rtree.New(g.dim)
		}
	} else if len(p) != g.dim {
		return 0, ErrDimensionMismatch
	}
	id := len(g.points)
	g.points = append(g.points, p)
	g.stats.Points++
	g.processPoint(id)
	return id, nil
}

// Finish runs the FORM-NEW-GROUP recursion over the deferred set S′ (if any)
// and materializes the result. The grouper cannot be reused afterwards.
func (g *AllGrouper) Finish() (*Result, error) {
	if g.finished {
		return nil, fmt.Errorf("core: Finish called twice")
	}
	g.finished = true
	g.stats.Rounds = 1
	for len(g.deferred) > 0 {
		// Each round groups S′ against a fresh group universe: the points
		// in S′ form new groups among themselves (Procedures 1 and 3).
		// Progress is expected: the ProcessOverlap removals only ever
		// take the members of a group that are within ε of the probe and
		// the OverlapGroups definition requires at least one member that
		// is not, so groups are (near-)never fully emptied — see
		// rebuildGroup for the floating-point boundary exception — and at
		// least one group survives every round, so |S′| decreases. The
		// check below turns any pathological counterexample into an error
		// instead of a livelock.
		before := len(g.deferred)
		g.final = append(g.final, g.active...)
		g.active = nil
		if g.opt.Algorithm == IndexBounds {
			g.tree = rtree.New(g.dim)
		}
		round := g.deferred
		g.deferred = nil
		for _, id := range round {
			if err := g.checkCtx(); err != nil {
				return nil, err
			}
			g.processPoint(id)
		}
		g.stats.Rounds++
		if len(g.deferred) >= before {
			return nil, fmt.Errorf("core: FORM-NEW-GROUP made no progress (%d -> %d deferred)", before, len(g.deferred))
		}
	}
	g.final = append(g.final, g.active...)
	g.active = nil

	res := &Result{Stats: g.stats}
	for _, grp := range g.final {
		if len(grp.members) == 0 {
			continue
		}
		ids := append([]int(nil), grp.members...)
		sort.Ints(ids)
		res.Groups = append(res.Groups, Group{IDs: ids})
	}
	sort.Slice(res.Groups, func(i, j int) bool {
		return res.Groups[i].IDs[0] < res.Groups[j].IDs[0]
	})
	sort.Ints(g.dropped)
	res.Dropped = g.dropped
	return res, nil
}

// Snapshot materializes the grouping as it stands without consuming the
// grouper: unlike Finish, the grouper keeps accepting points afterwards. The
// result is bit-identical to what Finish would return at this prefix (same
// groups, same dropped set, same round count) — the invariant incremental
// view maintenance is checked against.
//
// Sealed and active groups are copied out directly. A non-empty deferred set
// (FORM-NEW-GROUP) is resolved on a scratch grouper fed the deferred points
// in order: Finish's first recursion round processes exactly those points
// against an empty group universe, so the scratch run reproduces the
// recursion without touching this grouper's state. (Only FORM-NEW-GROUP
// defers points, and that mode never consults opt.Rand, so the scratch run
// has no side effects.)
func (g *AllGrouper) Snapshot() (*Result, error) {
	if g.finished {
		return nil, fmt.Errorf("core: Snapshot after Finish")
	}
	res := &Result{Stats: g.stats}
	res.Stats.Rounds = 1
	collect := func(groups []*allGroup) {
		for _, grp := range groups {
			if len(grp.members) == 0 {
				continue
			}
			ids := append([]int(nil), grp.members...)
			sort.Ints(ids)
			res.Groups = append(res.Groups, Group{IDs: ids})
		}
	}
	collect(g.final)
	collect(g.active)
	dropped := append([]int(nil), g.dropped...)
	if len(g.deferred) > 0 {
		sub, err := NewAllGrouper(g.opt)
		if err != nil {
			return nil, err
		}
		for _, id := range g.deferred {
			if _, err := sub.Add(g.points[id]); err != nil {
				return nil, err
			}
		}
		subRes, err := sub.Finish()
		if err != nil {
			return nil, err
		}
		// Scratch ids are dense over the deferred slice; map them back to
		// this grouper's point ids and restore the sort invariants.
		for _, grp := range subRes.Groups {
			ids := make([]int, len(grp.IDs))
			for i, sid := range grp.IDs {
				ids[i] = g.deferred[sid]
			}
			sort.Ints(ids)
			res.Groups = append(res.Groups, Group{IDs: ids})
		}
		for _, sid := range subRes.Dropped {
			dropped = append(dropped, g.deferred[sid])
		}
		res.Stats.Rounds = subRes.Stats.Rounds + 1
	}
	sort.Slice(res.Groups, func(i, j int) bool {
		return res.Groups[i].IDs[0] < res.Groups[j].IDs[0]
	})
	sort.Ints(dropped)
	res.Dropped = dropped
	return res, nil
}

// processPoint runs Procedure 1 for one point: find the candidate and
// overlap groups, arbitrate membership, then apply the overlap semantics.
func (g *AllGrouper) processPoint(id int) {
	p := g.points[id]
	var candidates, overlaps []*allGroup
	switch g.opt.Algorithm {
	case AllPairs:
		candidates, overlaps = g.findAllPairs(p)
	case BoundsChecking:
		candidates, overlaps = g.findBounds(p)
	case IndexBounds:
		candidates, overlaps = g.findIndexed(p)
	}

	// ProcessGroupingALL (Procedure 3).
	switch {
	case len(candidates) == 0:
		g.newGroup(id)
	case len(candidates) == 1:
		g.insert(candidates[0], id)
	default:
		switch g.opt.Overlap {
		case JoinAny:
			pick := candidates[0]
			if g.opt.Rand != nil {
				pick = candidates[g.opt.Rand.Intn(len(candidates))]
			}
			g.insert(pick, id)
		case Eliminate:
			g.dropped = append(g.dropped, id)
		case FormNewGroup:
			g.deferred = append(g.deferred, id)
		}
	}

	if g.opt.Overlap != JoinAny && len(overlaps) > 0 {
		g.processOverlap(p, overlaps)
	}
}

// findAllPairs is Naive FindCloseGroupsALL (Procedure 2): evaluate the
// similarity predicate between p and every previously grouped point.
func (g *AllGrouper) findAllPairs(p geom.Point) (candidates, overlaps []*allGroup) {
	joinAny := g.opt.Overlap == JoinAny
	for _, grp := range g.active {
		if len(grp.members) == 0 {
			continue
		}
		candidate, overlap := g.scanMembers(grp, p, joinAny)
		switch {
		case candidate:
			candidates = append(candidates, grp)
		case !joinAny && overlap:
			overlaps = append(overlaps, grp)
		}
	}
	return candidates, overlaps
}

// scratch returns the distance and mask buffers grown to hold n rows
// (n ≤ kernelBlock).
func (g *AllGrouper) scratch(n int) ([]float64, []bool) {
	if cap(g.dists) < n {
		g.dists = make([]float64, kernelBlock)
		g.mask = make([]bool, kernelBlock)
	}
	return g.dists[:n], g.mask[:n]
}

// scanMembers evaluates the similarity predicate between p and every member
// of grp: a scalar head of geom.Within calls (so a scan deciding on its
// first members costs what the historical per-row scan did), then one
// WithinMask kernel call per ramping block of the group's columnar mirror.
// allIn reports whether every member qualifies, anyIn whether at least one
// does. Under JOIN-ANY the overlap verdict is never consulted, so the scan
// stops at the first violation (head) or first violating block (tail);
// otherwise every member is evaluated, preserving the row-at-a-time scan's
// DistanceComps accounting exactly.
func (g *AllGrouper) scanMembers(grp *allGroup, p geom.Point, joinAny bool) (allIn, anyIn bool) {
	allIn = true
	head := headLen(len(grp.members))
	for i := 0; i < head; i++ {
		g.stats.DistanceComps++
		if geom.Within(g.opt.Metric, p, g.points[grp.members[i]], g.opt.Eps) {
			anyIn = true
		} else {
			allIn = false
			if joinAny {
				return
			}
		}
	}
	scanBlocks(head, grp.cols.Len(), func(lo, hi int) bool {
		g.view.SliceInto(grp.cols, lo, hi)
		dists, mask := g.scratch(hi - lo)
		g.stats.DistanceComps += int64(hi - lo)
		cnt := geom.WithinMask(g.opt.Metric, g.view, p, g.opt.Eps, dists, mask)
		if cnt > 0 {
			anyIn = true
		}
		if cnt < hi-lo {
			allIn = false
			if joinAny {
				return false
			}
		}
		return true
	})
	return
}

// findBounds is Bounds-Checking FindCloseGroups (Procedure 4): the ε-All
// rectangle decides candidacy in constant time per group (exactly under L∞,
// as a conservative filter refined by Procedure 6 under L2).
func (g *AllGrouper) findBounds(p geom.Point) (candidates, overlaps []*allGroup) {
	joinAny := g.opt.Overlap == JoinAny
	var pBox geom.Rect
	if !joinAny {
		pBox = geom.BoxAround(p, g.opt.Eps)
	}
	for _, grp := range g.active {
		if len(grp.members) == 0 {
			continue
		}
		g.stats.RectTests++
		if grp.rect.ContainsPoint(p) {
			if g.qualifies(grp, p) {
				candidates = append(candidates, grp)
				continue
			}
			// An L2 false positive of the rectangle filter can still
			// partially overlap the group.
			if !joinAny && g.anyWithin(grp, p) {
				overlaps = append(overlaps, grp)
			}
			continue
		}
		if joinAny {
			continue
		}
		// OverlapRectangleTest: p can only be within ε of some member if
		// its ε-box reaches the group's member MBR.
		g.stats.RectTests++
		if pBox.Intersects(grp.rect.MBR()) && g.anyWithin(grp, p) {
			overlaps = append(overlaps, grp)
		}
	}
	return candidates, overlaps
}

// findIndexed is Index Bounds-Checking FindCloseGroups (Procedure 5): a
// window query on Groups_IX prunes the group list before the per-group
// rectangle tests.
func (g *AllGrouper) findIndexed(p geom.Point) (candidates, overlaps []*allGroup) {
	joinAny := g.opt.Overlap == JoinAny
	pBox := geom.BoxAround(p, g.opt.Eps)
	g.stats.WindowQueries++
	gids := g.gidBuf[:0]
	g.tree.Search(pBox, func(ref int64) bool {
		gids = append(gids, ref)
		return true
	})
	g.gidBuf = gids
	// The R-tree reports matches in traversal order; sort for run-to-run
	// determinism of the JOIN-ANY "first candidate" choice.
	sort.Slice(gids, func(i, j int) bool { return gids[i] < gids[j] })
	for _, gid := range gids {
		grp := g.groupByID(int(gid))
		if grp == nil || len(grp.members) == 0 {
			continue
		}
		g.stats.RectTests++
		if grp.rect.ContainsPoint(p) {
			if g.qualifies(grp, p) {
				candidates = append(candidates, grp)
				continue
			}
			if !joinAny && g.anyWithin(grp, p) {
				overlaps = append(overlaps, grp)
			}
			continue
		}
		if joinAny {
			continue
		}
		// The window query matched the (possibly stale, superset) indexed
		// rectangle; the member MBR test prunes groups with no member near
		// p before the exact scan, exactly as Bounds-Checking does.
		g.stats.RectTests++
		if pBox.Intersects(grp.rect.MBR()) && g.anyWithin(grp, p) {
			overlaps = append(overlaps, grp)
		}
	}
	return candidates, overlaps
}

// qualifies refines a positive ε-All rectangle test into an exact membership
// decision. Under L∞ (and in 1-D, where the metrics coincide) the rectangle
// is exact. Under 2-D L2 the convex hull test (Procedure 6) is used: a point
// inside the hull is within ε of all members, and otherwise the hull vertex
// farthest from p bounds the farthest member. Other dimensionalities fall
// back to an exact member scan.
func (g *AllGrouper) qualifies(grp *allGroup, p geom.Point) bool {
	if g.opt.Metric == geom.LInf || g.dim == 1 {
		return true
	}
	if grp.hull != nil {
		g.stats.HullTests++
		if grp.hull.Contains(p) {
			return true
		}
		// Farthest-vertex bound, evaluated sqrt-free: every vertex within ε
		// (squared-distance compare under L2, early exit) iff the farthest
		// vertex is. Counted as one comparison like the Farthest sweep it
		// replaces.
		g.stats.DistanceComps++
		return grp.hull.AllWithin(g.opt.Metric, p, g.opt.Eps)
	}
	return g.allWithin(grp, p)
}

// anyWithin reports whether any member of grp satisfies the predicate with p.
// The scan is block-wise and stops at the first block containing a hit.
func (g *AllGrouper) anyWithin(grp *allGroup, p geom.Point) bool {
	head := headLen(len(grp.members))
	for i := 0; i < head; i++ {
		g.stats.DistanceComps++
		if geom.Within(g.opt.Metric, p, g.points[grp.members[i]], g.opt.Eps) {
			return true
		}
	}
	found := false
	scanBlocks(head, grp.cols.Len(), func(lo, hi int) bool {
		g.view.SliceInto(grp.cols, lo, hi)
		dists, mask := g.scratch(hi - lo)
		g.stats.DistanceComps += int64(hi - lo)
		if geom.WithinMask(g.opt.Metric, g.view, p, g.opt.Eps, dists, mask) > 0 {
			found = true
			return false
		}
		return true
	})
	return found
}

// allWithin reports whether every member of grp satisfies the predicate.
// The scan is block-wise and stops at the first block containing a violation.
func (g *AllGrouper) allWithin(grp *allGroup, p geom.Point) bool {
	head := headLen(len(grp.members))
	for i := 0; i < head; i++ {
		g.stats.DistanceComps++
		if !geom.Within(g.opt.Metric, p, g.points[grp.members[i]], g.opt.Eps) {
			return false
		}
	}
	all := true
	scanBlocks(head, grp.cols.Len(), func(lo, hi int) bool {
		g.view.SliceInto(grp.cols, lo, hi)
		dists, mask := g.scratch(hi - lo)
		g.stats.DistanceComps += int64(hi - lo)
		if geom.WithinMask(g.opt.Metric, g.view, p, g.opt.Eps, dists, mask) < hi-lo {
			all = false
			return false
		}
		return true
	})
	return all
}

func (g *AllGrouper) groupByID(id int) *allGroup {
	// Group ids are dense within a round; the active slice is indexed by
	// creation order with ids offset by the first active id.
	if len(g.active) == 0 {
		return nil
	}
	first := g.active[0].id
	idx := id - first
	if idx < 0 || idx >= len(g.active) {
		return nil
	}
	return g.active[idx]
}

func (g *AllGrouper) newGroup(id int) *allGroup {
	p := g.points[id]
	grp := &allGroup{
		id:      g.nextID,
		members: []int{id},
		cols:    geom.NewCols(g.dim),
		rect:    geom.NewEpsRect(p, g.opt.Eps),
	}
	grp.cols.AppendPoint(p)
	g.nextID++
	if g.useHull {
		grp.hull = hull.NewIncremental(p)
	}
	g.active = append(g.active, grp)
	if g.tree != nil {
		grp.treeRect = grp.rect.Bound().Clone()
		g.tree.Insert(grp.treeRect, int64(grp.id))
		grp.inTree = true
		g.stats.IndexUpdates++
	}
	return grp
}

// insert is ProcessInsert: add the point and shrink the ε-All rectangle.
// The indexed rectangle is left untouched — it only ever needs to be a
// superset of the live one, and insertions only shrink it.
func (g *AllGrouper) insert(grp *allGroup, id int) {
	p := g.points[id]
	grp.members = append(grp.members, id)
	grp.cols.AppendPoint(p)
	grp.rect.Add(p)
	if grp.hull != nil {
		grp.hull.Add(p)
	}
}

// processOverlap is ProcessOverlap (Procedure 1, line 5): the members of
// each partially overlapping group that satisfy the predicate with p are
// pulled out — discarded under ELIMINATE, diverted to S′ under
// FORM-NEW-GROUP — and the group's summaries are rebuilt.
func (g *AllGrouper) processOverlap(p geom.Point, overlaps []*allGroup) {
	for _, grp := range overlaps {
		// Partition the members by one block-wise kernel pass: mask row i
		// decides members[i]. The keep compaction is in place — its write
		// index never passes the read index.
		n := grp.cols.Len()
		keep := grp.members[:0]
		var removed []int
		for lo := 0; lo < n; lo += kernelBlock {
			hi := lo + kernelBlock
			if hi > n {
				hi = n
			}
			g.view.SliceInto(grp.cols, lo, hi)
			dists, mask := g.scratch(hi - lo)
			g.stats.DistanceComps += int64(hi - lo)
			geom.WithinMask(g.opt.Metric, g.view, p, g.opt.Eps, dists, mask)
			for i, in := range mask {
				m := grp.members[lo+i]
				if in {
					removed = append(removed, m)
				} else {
					keep = append(keep, m)
				}
			}
		}
		if len(removed) == 0 {
			continue
		}
		grp.members = keep
		switch g.opt.Overlap {
		case Eliminate:
			g.dropped = append(g.dropped, removed...)
		case FormNewGroup:
			g.deferred = append(g.deferred, removed...)
		}
		g.rebuildGroup(grp)
	}
}

// rebuildGroup recomputes a group's rectangle and hull after removals. The
// ε-All rectangle can legitimately grow, so the indexed rectangle must be
// refreshed to stay a superset.
func (g *AllGrouper) rebuildGroup(grp *allGroup) {
	pts := make([]geom.Point, len(grp.members))
	grp.cols.Reset()
	for i, m := range grp.members {
		pts[i] = g.points[m]
		grp.cols.AppendPoint(g.points[m])
	}
	if grp.inTree {
		g.tree.Delete(grp.treeRect, int64(grp.id))
		g.stats.IndexUpdates++
		grp.inTree = false
	}
	if len(grp.members) == 0 {
		// Near-unreachable per the OverlapGroups definition (see Finish) —
		// but at floating-point boundaries the ε-All rectangle filter
		// (coordinate arithmetic) can under-approximate the exact predicate
		// (squared-distance compare), misclassifying a full candidate as a
		// partial overlap, and ProcessOverlap then strips every member. The
		// emptied group stays behind as an inert zombie: it is skipped by
		// every find path and dropped by Finish.
		grp.rect.Rebuild(nil)
		return
	}
	grp.rect.Rebuild(pts)
	if grp.hull != nil {
		grp.hull.Rebuild(pts)
	}
	if g.tree != nil {
		grp.treeRect = grp.rect.Bound().Clone()
		g.tree.Insert(grp.treeRect, int64(grp.id))
		grp.inTree = true
		g.stats.IndexUpdates++
	}
}

// AddCols feeds every point of a columnar batch in row order, as if each had
// been passed to Add. The coordinates are copied into a private row-major
// arena (the grouper retains per-point storage for the rectangle and hull
// summaries), one allocation per batch; c is not retained.
func (g *AllGrouper) AddCols(c geom.Cols) error {
	n, dim := c.Len(), c.Dim()
	if n == 0 {
		return nil
	}
	arena := make([]float64, n*dim)
	for i := 0; i < n; i++ {
		pt := geom.Point(arena[i*dim : (i+1)*dim : (i+1)*dim])
		pt = c.PointAt(i, pt)
		if _, err := g.Add(pt); err != nil {
			return err
		}
	}
	return nil
}

// SGBAll groups points with the DISTANCE-TO-ALL semantics in input order and
// returns the final grouping. It is the batch convenience wrapper around
// AllGrouper.
func SGBAll(points []geom.Point, opt Options) (*Result, error) {
	g, err := NewAllGrouper(opt)
	if err != nil {
		return nil, err
	}
	for _, p := range points {
		if _, err := g.Add(p); err != nil {
			return nil, err
		}
	}
	return g.Finish()
}

// SGBAllCols is SGBAll over a columnar point set.
func SGBAllCols(c geom.Cols, opt Options) (*Result, error) {
	g, err := NewAllGrouper(opt)
	if err != nil {
		return nil, err
	}
	if err := g.AddCols(c); err != nil {
		return nil, err
	}
	return g.Finish()
}
