package core

import (
	"context"
	"fmt"
	"sort"

	"sgb/internal/geom"
	"sgb/internal/hull"
	"sgb/internal/rtree"
)

// ctxCheckStride is how many Add/processPoint steps a grouper takes between
// context polls: frequent enough that a canceled multi-second run aborts in
// well under a second, rare enough to keep the hot path branch-predictable.
const ctxCheckStride = 1024

// allGroup is one live SGB-All group under construction.
type allGroup struct {
	id      int
	members []int         // point ids, in insertion order
	rect    *geom.EpsRect // ε-All bounding rectangle + member MBR
	hull    *hull.Incremental
	// treeRect is the rectangle currently stored for this group in the
	// on-the-fly index. The stored rectangle is always a superset of the
	// live ε-All rectangle (it is only refreshed when removals may grow
	// the live one), so window queries never miss a relevant group.
	treeRect geom.Rect
	inTree   bool
}

// AllGrouper is a streaming SGB-All operator instance. Points are fed in
// input order with Add and the final grouping is materialized by Finish.
type AllGrouper struct {
	opt    Options
	dim    int
	points []geom.Point

	active []*allGroup // groups of the current grouping round
	final  []*allGroup // groups sealed by earlier FORM-NEW-GROUP rounds
	nextID int
	tree   *rtree.Tree // IndexBounds only

	deferred []int   // S′: points diverted by FORM-NEW-GROUP
	dropped  []int   // points discarded by ELIMINATE
	gidBuf   []int64 // scratch buffer for window-query results

	stats    Stats
	useHull  bool
	finished bool

	// ctx, when set via WithContext, lets a canceled or deadline-expired
	// query abort the grouping mid-stream; ctxTick strides the polls.
	ctx     context.Context
	ctxTick uint64
}

// NewAllGrouper returns a streaming SGB-All operator configured by opt.
func NewAllGrouper(opt Options) (*AllGrouper, error) {
	if err := opt.Validate(); err != nil {
		return nil, err
	}
	return &AllGrouper{opt: opt}, nil
}

// WithContext arms the grouper with a cancellation context: Add and Finish
// return ctx.Err() promptly once ctx is done. It returns g for chaining.
func (g *AllGrouper) WithContext(ctx context.Context) *AllGrouper {
	g.ctx = ctx
	return g
}

// checkCtx polls the context every ctxCheckStride calls.
func (g *AllGrouper) checkCtx() error {
	if g.ctx == nil {
		return nil
	}
	g.ctxTick++
	if g.ctxTick%ctxCheckStride != 0 {
		return nil
	}
	return g.ctx.Err()
}

// Add feeds the next point, in input order, and returns its point id.
// All points must share one dimensionality.
func (g *AllGrouper) Add(p geom.Point) (int, error) {
	if g.finished {
		return 0, fmt.Errorf("core: Add after Finish")
	}
	if err := checkFinite(p); err != nil {
		return 0, err
	}
	if err := g.checkCtx(); err != nil {
		return 0, err
	}
	if g.dim == 0 {
		if len(p) == 0 {
			return 0, fmt.Errorf("core: zero-dimensional point")
		}
		g.dim = len(p)
		// The convex-hull refinement (Procedure 6) applies to the 2-D L2
		// case — and equally to L1, whose distance-to-a-fixed-probe is
		// also convex, so the farthest member from any probe is a hull
		// vertex. Elsewhere the rectangle test is exact (L∞, or 1-D where
		// the metrics coincide) or we fall back to exact member scans.
		g.useHull = (g.opt.Metric == geom.L2 || g.opt.Metric == geom.L1) &&
			g.dim == 2 && !g.opt.DisableHullRefine
		if g.opt.Algorithm == IndexBounds {
			g.tree = rtree.New(g.dim)
		}
	} else if len(p) != g.dim {
		return 0, ErrDimensionMismatch
	}
	id := len(g.points)
	g.points = append(g.points, p)
	g.stats.Points++
	g.processPoint(id)
	return id, nil
}

// Finish runs the FORM-NEW-GROUP recursion over the deferred set S′ (if any)
// and materializes the result. The grouper cannot be reused afterwards.
func (g *AllGrouper) Finish() (*Result, error) {
	if g.finished {
		return nil, fmt.Errorf("core: Finish called twice")
	}
	g.finished = true
	g.stats.Rounds = 1
	for len(g.deferred) > 0 {
		// Each round groups S′ against a fresh group universe: the points
		// in S′ form new groups among themselves (Procedures 1 and 3).
		// Progress is guaranteed: the ProcessOverlap removals only ever
		// take the members of a group that are within ε of the probe and
		// the OverlapGroups definition requires at least one member that
		// is not, so no group is ever fully emptied; at least one group
		// therefore survives every round and |S′| strictly decreases.
		before := len(g.deferred)
		g.final = append(g.final, g.active...)
		g.active = nil
		if g.opt.Algorithm == IndexBounds {
			g.tree = rtree.New(g.dim)
		}
		round := g.deferred
		g.deferred = nil
		for _, id := range round {
			if err := g.checkCtx(); err != nil {
				return nil, err
			}
			g.processPoint(id)
		}
		g.stats.Rounds++
		if len(g.deferred) >= before {
			return nil, fmt.Errorf("core: FORM-NEW-GROUP made no progress (%d -> %d deferred)", before, len(g.deferred))
		}
	}
	g.final = append(g.final, g.active...)
	g.active = nil

	res := &Result{Stats: g.stats}
	for _, grp := range g.final {
		if len(grp.members) == 0 {
			continue
		}
		ids := append([]int(nil), grp.members...)
		sort.Ints(ids)
		res.Groups = append(res.Groups, Group{IDs: ids})
	}
	sort.Slice(res.Groups, func(i, j int) bool {
		return res.Groups[i].IDs[0] < res.Groups[j].IDs[0]
	})
	sort.Ints(g.dropped)
	res.Dropped = g.dropped
	return res, nil
}

// processPoint runs Procedure 1 for one point: find the candidate and
// overlap groups, arbitrate membership, then apply the overlap semantics.
func (g *AllGrouper) processPoint(id int) {
	p := g.points[id]
	var candidates, overlaps []*allGroup
	switch g.opt.Algorithm {
	case AllPairs:
		candidates, overlaps = g.findAllPairs(p)
	case BoundsChecking:
		candidates, overlaps = g.findBounds(p)
	case IndexBounds:
		candidates, overlaps = g.findIndexed(p)
	}

	// ProcessGroupingALL (Procedure 3).
	switch {
	case len(candidates) == 0:
		g.newGroup(id)
	case len(candidates) == 1:
		g.insert(candidates[0], id)
	default:
		switch g.opt.Overlap {
		case JoinAny:
			pick := candidates[0]
			if g.opt.Rand != nil {
				pick = candidates[g.opt.Rand.Intn(len(candidates))]
			}
			g.insert(pick, id)
		case Eliminate:
			g.dropped = append(g.dropped, id)
		case FormNewGroup:
			g.deferred = append(g.deferred, id)
		}
	}

	if g.opt.Overlap != JoinAny && len(overlaps) > 0 {
		g.processOverlap(p, overlaps)
	}
}

// findAllPairs is Naive FindCloseGroupsALL (Procedure 2): evaluate the
// similarity predicate between p and every previously grouped point.
func (g *AllGrouper) findAllPairs(p geom.Point) (candidates, overlaps []*allGroup) {
	joinAny := g.opt.Overlap == JoinAny
	for _, grp := range g.active {
		candidate, overlap := true, false
		for _, m := range grp.members {
			g.stats.DistanceComps++
			if geom.Within(g.opt.Metric, p, g.points[m], g.opt.Eps) {
				overlap = true
			} else {
				candidate = false
				if joinAny {
					// JOIN-ANY never consults OverlapGroups, so the
					// scan can stop at the first violation.
					break
				}
			}
		}
		switch {
		case candidate:
			candidates = append(candidates, grp)
		case !joinAny && overlap:
			overlaps = append(overlaps, grp)
		}
	}
	return candidates, overlaps
}

// findBounds is Bounds-Checking FindCloseGroups (Procedure 4): the ε-All
// rectangle decides candidacy in constant time per group (exactly under L∞,
// as a conservative filter refined by Procedure 6 under L2).
func (g *AllGrouper) findBounds(p geom.Point) (candidates, overlaps []*allGroup) {
	joinAny := g.opt.Overlap == JoinAny
	var pBox geom.Rect
	if !joinAny {
		pBox = geom.BoxAround(p, g.opt.Eps)
	}
	for _, grp := range g.active {
		g.stats.RectTests++
		if grp.rect.ContainsPoint(p) {
			if g.qualifies(grp, p) {
				candidates = append(candidates, grp)
				continue
			}
			// An L2 false positive of the rectangle filter can still
			// partially overlap the group.
			if !joinAny && g.anyWithin(grp, p) {
				overlaps = append(overlaps, grp)
			}
			continue
		}
		if joinAny {
			continue
		}
		// OverlapRectangleTest: p can only be within ε of some member if
		// its ε-box reaches the group's member MBR.
		g.stats.RectTests++
		if pBox.Intersects(grp.rect.MBR()) && g.anyWithin(grp, p) {
			overlaps = append(overlaps, grp)
		}
	}
	return candidates, overlaps
}

// findIndexed is Index Bounds-Checking FindCloseGroups (Procedure 5): a
// window query on Groups_IX prunes the group list before the per-group
// rectangle tests.
func (g *AllGrouper) findIndexed(p geom.Point) (candidates, overlaps []*allGroup) {
	joinAny := g.opt.Overlap == JoinAny
	pBox := geom.BoxAround(p, g.opt.Eps)
	g.stats.WindowQueries++
	gids := g.gidBuf[:0]
	g.tree.Search(pBox, func(ref int64) bool {
		gids = append(gids, ref)
		return true
	})
	g.gidBuf = gids
	// The R-tree reports matches in traversal order; sort for run-to-run
	// determinism of the JOIN-ANY "first candidate" choice.
	sort.Slice(gids, func(i, j int) bool { return gids[i] < gids[j] })
	for _, gid := range gids {
		grp := g.groupByID(int(gid))
		if grp == nil {
			continue
		}
		g.stats.RectTests++
		if grp.rect.ContainsPoint(p) {
			if g.qualifies(grp, p) {
				candidates = append(candidates, grp)
				continue
			}
			if !joinAny && g.anyWithin(grp, p) {
				overlaps = append(overlaps, grp)
			}
			continue
		}
		if joinAny {
			continue
		}
		// The window query matched the (possibly stale, superset) indexed
		// rectangle; the member MBR test prunes groups with no member near
		// p before the exact scan, exactly as Bounds-Checking does.
		g.stats.RectTests++
		if pBox.Intersects(grp.rect.MBR()) && g.anyWithin(grp, p) {
			overlaps = append(overlaps, grp)
		}
	}
	return candidates, overlaps
}

// qualifies refines a positive ε-All rectangle test into an exact membership
// decision. Under L∞ (and in 1-D, where the metrics coincide) the rectangle
// is exact. Under 2-D L2 the convex hull test (Procedure 6) is used: a point
// inside the hull is within ε of all members, and otherwise the hull vertex
// farthest from p bounds the farthest member. Other dimensionalities fall
// back to an exact member scan.
func (g *AllGrouper) qualifies(grp *allGroup, p geom.Point) bool {
	if g.opt.Metric == geom.LInf || g.dim == 1 {
		return true
	}
	if grp.hull != nil {
		g.stats.HullTests++
		if grp.hull.Contains(p) {
			return true
		}
		// Farthest-vertex bound, evaluated sqrt-free: every vertex within ε
		// (squared-distance compare under L2, early exit) iff the farthest
		// vertex is. Counted as one comparison like the Farthest sweep it
		// replaces.
		g.stats.DistanceComps++
		return grp.hull.AllWithin(g.opt.Metric, p, g.opt.Eps)
	}
	return g.allWithin(grp, p)
}

// anyWithin reports whether any member of grp satisfies the predicate with p.
func (g *AllGrouper) anyWithin(grp *allGroup, p geom.Point) bool {
	for _, m := range grp.members {
		g.stats.DistanceComps++
		if geom.Within(g.opt.Metric, p, g.points[m], g.opt.Eps) {
			return true
		}
	}
	return false
}

// allWithin reports whether every member of grp satisfies the predicate.
func (g *AllGrouper) allWithin(grp *allGroup, p geom.Point) bool {
	for _, m := range grp.members {
		g.stats.DistanceComps++
		if !geom.Within(g.opt.Metric, p, g.points[m], g.opt.Eps) {
			return false
		}
	}
	return true
}

func (g *AllGrouper) groupByID(id int) *allGroup {
	// Group ids are dense within a round; the active slice is indexed by
	// creation order with ids offset by the first active id.
	if len(g.active) == 0 {
		return nil
	}
	first := g.active[0].id
	idx := id - first
	if idx < 0 || idx >= len(g.active) {
		return nil
	}
	return g.active[idx]
}

func (g *AllGrouper) newGroup(id int) *allGroup {
	p := g.points[id]
	grp := &allGroup{
		id:      g.nextID,
		members: []int{id},
		rect:    geom.NewEpsRect(p, g.opt.Eps),
	}
	g.nextID++
	if g.useHull {
		grp.hull = hull.NewIncremental(p)
	}
	g.active = append(g.active, grp)
	if g.tree != nil {
		grp.treeRect = grp.rect.Bound().Clone()
		g.tree.Insert(grp.treeRect, int64(grp.id))
		grp.inTree = true
		g.stats.IndexUpdates++
	}
	return grp
}

// insert is ProcessInsert: add the point and shrink the ε-All rectangle.
// The indexed rectangle is left untouched — it only ever needs to be a
// superset of the live one, and insertions only shrink it.
func (g *AllGrouper) insert(grp *allGroup, id int) {
	p := g.points[id]
	grp.members = append(grp.members, id)
	grp.rect.Add(p)
	if grp.hull != nil {
		grp.hull.Add(p)
	}
}

// processOverlap is ProcessOverlap (Procedure 1, line 5): the members of
// each partially overlapping group that satisfy the predicate with p are
// pulled out — discarded under ELIMINATE, diverted to S′ under
// FORM-NEW-GROUP — and the group's summaries are rebuilt.
func (g *AllGrouper) processOverlap(p geom.Point, overlaps []*allGroup) {
	for _, grp := range overlaps {
		keep := grp.members[:0]
		var removed []int
		for _, m := range grp.members {
			g.stats.DistanceComps++
			if geom.Within(g.opt.Metric, p, g.points[m], g.opt.Eps) {
				removed = append(removed, m)
			} else {
				keep = append(keep, m)
			}
		}
		if len(removed) == 0 {
			continue
		}
		grp.members = keep
		switch g.opt.Overlap {
		case Eliminate:
			g.dropped = append(g.dropped, removed...)
		case FormNewGroup:
			g.deferred = append(g.deferred, removed...)
		}
		g.rebuildGroup(grp)
	}
}

// rebuildGroup recomputes a group's rectangle and hull after removals. The
// ε-All rectangle can legitimately grow, so the indexed rectangle must be
// refreshed to stay a superset.
func (g *AllGrouper) rebuildGroup(grp *allGroup) {
	pts := make([]geom.Point, len(grp.members))
	for i, m := range grp.members {
		pts[i] = g.points[m]
	}
	if grp.inTree {
		g.tree.Delete(grp.treeRect, int64(grp.id))
		g.stats.IndexUpdates++
		grp.inTree = false
	}
	if len(grp.members) == 0 {
		// Unreachable per the OverlapGroups definition (see Finish), but
		// kept so a future semantics tweak degrades gracefully.
		grp.rect.Rebuild(nil)
		return
	}
	grp.rect.Rebuild(pts)
	if grp.hull != nil {
		grp.hull.Rebuild(pts)
	}
	if g.tree != nil {
		grp.treeRect = grp.rect.Bound().Clone()
		g.tree.Insert(grp.treeRect, int64(grp.id))
		grp.inTree = true
		g.stats.IndexUpdates++
	}
}

// SGBAll groups points with the DISTANCE-TO-ALL semantics in input order and
// returns the final grouping. It is the batch convenience wrapper around
// AllGrouper.
func SGBAll(points []geom.Point, opt Options) (*Result, error) {
	g, err := NewAllGrouper(opt)
	if err != nil {
		return nil, err
	}
	for _, p := range points {
		if _, err := g.Add(p); err != nil {
			return nil, err
		}
	}
	return g.Finish()
}
