package core

import (
	"fmt"

	"sgb/internal/geom"
	"sgb/internal/hull"
)

// GroupSummary describes one output group geometrically — the material the
// paper's application queries surface per group (coverage polygons for
// MANETs, areas for geo-social groups).
type GroupSummary struct {
	// Size is the member count.
	Size int
	// Centroid is the member mean.
	Centroid geom.Point
	// MBR is the members' minimum bounding rectangle.
	MBR geom.Rect
	// Hull is the convex hull polygon (counter-clockwise); only populated
	// for 2-D groups.
	Hull []geom.Point
	// Diameter is the largest pairwise member distance under the metric
	// the summary was computed with. For SGB-All groups it never exceeds ε.
	Diameter float64
}

// Summarize computes per-group geometric summaries for a grouping result
// over its input points, in the result's group order. For 2-D inputs the
// diameter is computed over the hull vertices (the farthest pair is always
// a hull pair); other dimensionalities fall back to all member pairs.
func Summarize(points []geom.Point, res *Result, m geom.Metric) ([]GroupSummary, error) {
	out := make([]GroupSummary, 0, len(res.Groups))
	for _, g := range res.Groups {
		if len(g.IDs) == 0 {
			return nil, fmt.Errorf("core: empty group in result")
		}
		for _, id := range g.IDs {
			if id < 0 || id >= len(points) {
				return nil, fmt.Errorf("core: group references point %d outside the input", id)
			}
		}
		dim := len(points[g.IDs[0]])
		s := GroupSummary{
			Size:     len(g.IDs),
			Centroid: make(geom.Point, dim),
			MBR:      geom.PointRect(points[g.IDs[0]]),
		}
		members := make([]geom.Point, len(g.IDs))
		for i, id := range g.IDs {
			p := points[id]
			members[i] = p
			for d, v := range p {
				s.Centroid[d] += v
			}
			s.MBR = s.MBR.Expand(p)
		}
		for d := range s.Centroid {
			s.Centroid[d] /= float64(len(g.IDs))
		}
		if dim == 2 {
			s.Hull = hull.Compute(members)
			s.Diameter = hull.Diameter(m, s.Hull)
		} else {
			for i := 0; i < len(members); i++ {
				for j := i + 1; j < len(members); j++ {
					if d := geom.Dist(m, members[i], members[j]); d > s.Diameter {
						s.Diameter = d
					}
				}
			}
		}
		out = append(out, s)
	}
	return out, nil
}
