package core

import (
	"context"
	"fmt"
	"math"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"

	"sgb/internal/geom"
	"sgb/internal/unionfind"
)

// SGBAnyParallel computes the DISTANCE-TO-ANY grouping with a grid-partition
// parallel algorithm — an extension beyond the paper (its evaluation is
// single-threaded), exploiting that SGB-Any's output (the connected
// components of the ε-neighbourhood graph) is order-free and therefore
// embarrassingly decomposable:
//
//  1. Points are hashed into grid cells of side ε.
//  2. Workers process cells concurrently; each point is compared against
//     points in its own cell and in "forward" neighbour cells (offset
//     lexicographically positive), so every pair is examined exactly once.
//  3. Verified ε-edges are merged into a union-find forest; the components
//     are the groups.
//
// The result is identical to SGBAny (which the tests assert). workers <= 0
// selects GOMAXPROCS. Options.Algorithm is ignored.
func SGBAnyParallel(points []geom.Point, opt Options, workers int) (*Result, error) {
	res, _, err := sgbAnyParallel(context.Background(), points, opt, workers)
	return res, err
}

// SGBAnyParallelCtx is SGBAnyParallel with a cancellation context: once ctx
// is done the workers drain out and the call returns ctx.Err() instead of a
// partial result.
func SGBAnyParallelCtx(ctx context.Context, points []geom.Point, opt Options, workers int) (*Result, error) {
	res, _, err := sgbAnyParallel(ctx, points, opt, workers)
	return res, err
}

// SGBAnyParallelCols is SGBAnyParallel over a columnar point set.
func SGBAnyParallelCols(pts geom.Cols, opt Options, workers int) (*Result, error) {
	res, _, err := sgbAnyParallelCols(context.Background(), pts, opt, workers)
	return res, err
}

// SGBAnyParallelColsCtx is SGBAnyParallelCols with a cancellation context.
func SGBAnyParallelColsCtx(ctx context.Context, pts geom.Cols, opt Options, workers int) (*Result, error) {
	res, _, err := sgbAnyParallelCols(ctx, pts, opt, workers)
	return res, err
}

// gridCoord is the ε-grid cell index of coordinate v: floor(v/eps). Using
// math.Floor (rather than truncation patched up with a float-equality test)
// keeps boundary-straddling coordinates — negative values, exact multiples
// of ε — in their canonical cell, so no ε-edge can be dropped at a cell wall.
func gridCoord(v, eps float64) int64 {
	return int64(math.Floor(v / eps))
}

// sgbAnyParallel adapts the row-major entry points onto the columnar
// implementation: validate dimensional uniformity (a Cols cannot represent a
// ragged point set), then transpose once.
func sgbAnyParallel(ctx context.Context, points []geom.Point, opt Options, workers int) (*Result, []Stats, error) {
	{
		o := opt
		o.Overlap = JoinAny
		o.Algorithm = IndexBounds
		if err := o.Validate(); err != nil {
			return nil, nil, err
		}
	}
	if len(points) > 0 {
		dim := len(points[0])
		if dim == 0 {
			return nil, nil, fmt.Errorf("core: zero-dimensional point")
		}
		for i, p := range points {
			if len(p) != dim {
				return nil, nil, fmt.Errorf("core: point %d: %w", i, ErrDimensionMismatch)
			}
		}
	}
	return sgbAnyParallelCols(ctx, geom.ColsFromPoints(points), opt, workers)
}

// sgbAnyParallelCols is the implementation behind the SGBAnyParallel family.
// It additionally returns the per-worker partial Stats, which the driver
// folds into the result via Stats.add — the same aggregation path a
// distributed deployment would use, and the one the tests assert is lossless.
//
// The hot path is fully columnar: each worker gathers a cell's coordinates
// into a reusable columnar scratch slab once, then evaluates the similarity
// predicate against whole slabs with geom.WithinMask — one kernel call per
// probe point instead of a geom.Within call per pair.
func sgbAnyParallelCols(ctx context.Context, pts geom.Cols, opt Options, workers int) (*Result, []Stats, error) {
	opt.Overlap = JoinAny
	opt.Algorithm = IndexBounds
	if err := opt.Validate(); err != nil {
		return nil, nil, err
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	res := &Result{}
	n := pts.Len()
	if n == 0 {
		res.Stats.Rounds = 1
		return res, nil, nil
	}
	dim := pts.Dim()
	ptBuf := make(geom.Point, dim)
	for i := 0; i < n; i++ {
		ptBuf = pts.PointAt(i, ptBuf)
		if err := checkFinite(ptBuf); err != nil {
			return nil, nil, fmt.Errorf("core: point %d: %w", i, err)
		}
	}

	// Build the grid: cell key -> member ids. Cell side = ε guarantees that
	// any two points within ε (under any supported metric, since δ∞ ≤ δ)
	// sit in the same or an adjacent cell.
	type cellKey string
	cellOf := func(i int) cellKey {
		// A compact integer encoding of the per-axis cell coordinates.
		buf := make([]byte, 0, dim*10)
		for d := 0; d < dim; d++ {
			buf = appendInt(buf, gridCoord(pts.Col(d)[i], opt.Eps))
		}
		return cellKey(buf)
	}
	coordsOf := func(i int) []int64 {
		out := make([]int64, dim)
		for d := range out {
			out[d] = gridCoord(pts.Col(d)[i], opt.Eps)
		}
		return out
	}
	keyOfCoords := func(cs []int64) cellKey {
		buf := make([]byte, 0, dim*10)
		for _, c := range cs {
			buf = appendInt(buf, c)
		}
		return cellKey(buf)
	}

	cells := make(map[cellKey][]int, n/2+1)
	var order []cellKey
	for i := 0; i < n; i++ {
		k := cellOf(i)
		if _, ok := cells[k]; !ok {
			order = append(order, k)
		}
		cells[k] = append(cells[k], i)
	}

	// Forward neighbour offsets: the lexicographically positive half of
	// {-1,0,1}^dim \ {0}, so each unordered cell pair is visited once.
	var offsets [][]int64
	var gen func(prefix []int64)
	gen = func(prefix []int64) {
		if len(prefix) == dim {
			for _, v := range prefix {
				if v != 0 {
					off := append([]int64(nil), prefix...)
					offsets = append(offsets, off)
					return
				}
			}
			return
		}
		for _, v := range []int64{-1, 0, 1} {
			gen(append(prefix, v))
		}
	}
	gen(nil)
	forward := offsets[:0]
	for _, off := range offsets {
		for _, v := range off {
			if v > 0 {
				forward = append(forward, off)
				break
			} else if v < 0 {
				break
			}
		}
	}

	// Workers emit verified edges into per-worker buffers and keep their own
	// partial Stats; the driver merges the partials with Stats.add below, so
	// worker-side counters are never double-counted or dropped.
	type edge struct{ a, b int32 }
	edgeBufs := make([][]edge, workers)
	partStats := make([]Stats, workers)
	done := ctx.Done()
	canceled := func() bool {
		select {
		case <-done:
			return true
		default:
			return false
		}
	}
	var next int64 = -1
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			var local []edge
			var part Stats
			// Per-worker kernel scratch, reused across every cell this
			// worker claims.
			cellScr := geom.NewCols(dim)
			nbScr := geom.NewCols(dim)
			var view geom.Cols
			var dists []float64
			var mask []bool
			grow := func(k int) ([]float64, []bool) {
				if cap(dists) < k {
					dists = make([]float64, k)
					mask = make([]bool, k)
				}
				return dists[:k], mask[:k]
			}
			probe := make(geom.Point, dim)
			nb := make([]int64, dim)
			for {
				ci := atomic.AddInt64(&next, 1)
				if ci >= int64(len(order)) || canceled() {
					break
				}
				members := cells[order[ci]]
				// Each cell is owned by exactly one worker, so counting its
				// members here partitions Points across workers.
				part.Points += len(members)
				cellScr.Gather(pts, members)
				// Intra-cell pairs: probe member i against the slab of
				// members after it.
				for i := 0; i+1 < len(members); i++ {
					probe = cellScr.PointAt(i, probe)
					view.SliceInto(cellScr, i+1, len(members))
					k := len(members) - i - 1
					d, m := grow(k)
					part.DistanceComps += int64(k)
					geom.WithinMask(opt.Metric, view, probe, opt.Eps, d, m)
					for j, in := range m {
						if in {
							local = append(local, edge{int32(members[i]), int32(members[i+1+j])})
						}
					}
				}
				// Forward neighbour cells: gather the other cell's slab once
				// per offset, then probe every member against it.
				base := coordsOf(members[0])
				for _, off := range forward {
					for d := range nb {
						nb[d] = base[d] + off[d]
					}
					other, ok := cells[keyOfCoords(nb)]
					if !ok {
						continue
					}
					nbScr.Gather(pts, other)
					for ai, a := range members {
						probe = cellScr.PointAt(ai, probe)
						d, m := grow(len(other))
						part.DistanceComps += int64(len(other))
						geom.WithinMask(opt.Metric, nbScr, probe, opt.Eps, d, m)
						for bi, in := range m {
							if in {
								local = append(local, edge{int32(a), int32(other[bi])})
							}
						}
					}
				}
			}
			edgeBufs[w] = local
			partStats[w] = part
		}(w)
	}
	wg.Wait()
	if err := ctx.Err(); err != nil {
		return nil, nil, err
	}

	uf := unionfind.New(n)
	var merges int64
	for _, buf := range edgeBufs {
		for _, e := range buf {
			if uf.Find(int(e.a)) != uf.Find(int(e.b)) {
				uf.Union(int(e.a), int(e.b))
				merges++
			}
		}
	}
	for _, ids := range uf.Groups() {
		sort.Ints(ids)
		res.Groups = append(res.Groups, Group{IDs: ids})
	}
	sort.Slice(res.Groups, func(i, j int) bool {
		return res.Groups[i].IDs[0] < res.Groups[j].IDs[0]
	})
	// Fold the per-worker partials; the merge phase runs on the driver, so
	// GroupsMerged and the pass count are added on top.
	for _, part := range partStats {
		res.Stats.add(part)
	}
	res.Stats.GroupsMerged = merges
	res.Stats.Rounds = 1
	return res, partStats, nil
}

// appendInt appends a length-prefixed little-endian encoding of v, making
// concatenated coordinates unambiguous.
func appendInt(buf []byte, v int64) []byte {
	u := uint64(v)
	var tmp [8]byte
	n := 0
	for {
		tmp[n] = byte(u)
		n++
		u >>= 8
		if u == 0 || n == 8 {
			break
		}
	}
	buf = append(buf, byte(n))
	return append(buf, tmp[:n]...)
}
