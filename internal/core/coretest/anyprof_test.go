// Package coretest holds core benchmarks that need the checkin generator,
// which cannot be imported from core's own tests (checkin depends on engine,
// engine depends on core).
package coretest

import (
	"testing"

	"sgb/internal/checkin"
	"sgb/internal/core"
	"sgb/internal/geom"
)

// BenchmarkAnyIndexCheckin runs the SGB-Any Index-Bounds grouper over the
// clustered check-in dataset — the same shape as the sgbbench sgb_any_l2_index
// probe, minus the engine. The clustered distribution matters: window-query
// candidate sets grow with every insertion into a hotspot, which is exactly
// the access pattern that exposed quadratic scratch reallocation and the
// probe-buffer aliasing bug in the verification path.
func BenchmarkAnyIndexCheckin(b *testing.B) {
	cs := checkin.Generate(checkin.Config{N: 5000, Seed: 1})
	pts := make([]geom.Point, len(cs))
	for i, c := range cs {
		pts[i] = geom.Point{c.Lat, c.Lon}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for it := 0; it < b.N; it++ {
		g, _ := core.NewAnyGrouper(core.Options{Metric: geom.L2, Eps: 0.25, Algorithm: core.IndexBounds})
		for _, p := range pts {
			if _, err := g.Add(p); err != nil {
				b.Fatal(err)
			}
		}
		if _, err := g.Finish(); err != nil {
			b.Fatal(err)
		}
	}
}
