package core

import (
	"context"
	"math/rand"
	"reflect"
	"testing"

	"sgb/internal/geom"
)

// TestParallelAnyMatchesSequential is the defining property of the parallel
// extension: byte-for-byte identical groupings to the sequential SGB-Any.
func TestParallelAnyMatchesSequential(t *testing.T) {
	r := rand.New(rand.NewSource(100))
	for _, m := range []geom.Metric{geom.L2, geom.LInf, geom.L1} {
		for _, dim := range []int{1, 2, 3} {
			for _, workers := range []int{1, 2, 8} {
				for trial := 0; trial < 6; trial++ {
					n := 50 + r.Intn(300)
					eps := 0.3 + r.Float64()
					pts := randomPoints(r, n, dim, 10)
					want, err := SGBAny(pts, Options{Metric: m, Eps: eps, Algorithm: IndexBounds})
					if err != nil {
						t.Fatal(err)
					}
					got, err := SGBAnyParallel(pts, Options{Metric: m, Eps: eps}, workers)
					if err != nil {
						t.Fatal(err)
					}
					if !reflect.DeepEqual(got.Groups, want.Groups) {
						t.Fatalf("%v/dim%d/workers%d: parallel grouping differs", m, dim, workers)
					}
				}
			}
		}
	}
}

func TestParallelAnyNegativeCoordinates(t *testing.T) {
	// Cells around the origin exercise the floor-division boundary.
	pts := []geom.Point{
		{-0.1, -0.1}, {0.1, 0.1}, // adjacent cells across the origin, within eps
		{-5, -5}, {-5.2, -5.2}, // negative-quadrant pair
		{3, 3}, // isolated
	}
	want, err := SGBAny(pts, Options{Metric: geom.L2, Eps: 0.5, Algorithm: AllPairs})
	if err != nil {
		t.Fatal(err)
	}
	got, err := SGBAnyParallel(pts, Options{Metric: geom.L2, Eps: 0.5}, 4)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got.Groups, want.Groups) {
		t.Fatalf("parallel %v vs sequential %v", got.Groups, want.Groups)
	}
}

func TestParallelAnyExactCellBoundary(t *testing.T) {
	// Points exactly eps apart land in adjacent cells and must connect
	// (the predicate is <=).
	pts := []geom.Point{{0, 0}, {1, 0}, {2, 0}}
	got, err := SGBAnyParallel(pts, Options{Metric: geom.L2, Eps: 1}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Groups) != 1 || len(got.Groups[0].IDs) != 3 {
		t.Fatalf("boundary chain split: %v", got.Groups)
	}
}

func TestParallelAnyDegenerate(t *testing.T) {
	res, err := SGBAnyParallel(nil, Options{Metric: geom.L2, Eps: 1}, 0)
	if err != nil || len(res.Groups) != 0 {
		t.Fatalf("empty input: %v %v", res, err)
	}
	res, err = SGBAnyParallel([]geom.Point{{1, 1}}, Options{Metric: geom.L2, Eps: 1}, 0)
	if err != nil || len(res.Groups) != 1 {
		t.Fatalf("singleton: %v %v", res, err)
	}
	if _, err := SGBAnyParallel([]geom.Point{{1, 1}, {1}}, Options{Metric: geom.L2, Eps: 1}, 0); err == nil {
		t.Error("mixed dimensions accepted")
	}
	if _, err := SGBAnyParallel(nil, Options{Metric: geom.L2, Eps: 0}, 0); err == nil {
		t.Error("eps=0 accepted")
	}
	if _, err := SGBAnyParallel([]geom.Point{{}}, Options{Metric: geom.L2, Eps: 1}, 0); err == nil {
		t.Error("zero-dimensional point accepted")
	}
}

func TestParallelAnyStats(t *testing.T) {
	r := rand.New(rand.NewSource(101))
	pts := randomPoints(r, 500, 2, 5)
	res, parts, err := sgbAnyParallel(context.Background(), pts, Options{Metric: geom.L2, Eps: 0.5}, 4)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Points != 500 || res.Stats.DistanceComps == 0 || res.Stats.Rounds != 1 {
		t.Fatalf("stats = %+v", res.Stats)
	}
	// Groups + merges bookkeeping: n - merges = number of groups.
	if int64(len(res.Groups)) != int64(500)-res.Stats.GroupsMerged {
		t.Fatalf("%d groups but %d merges over 500 points", len(res.Groups), res.Stats.GroupsMerged)
	}

	// Stats.add over the per-partition (per-worker) stats must reproduce the
	// result's aggregate exactly: the cells partition the input, so worker
	// counters are disjoint and their sum is the whole.
	if len(parts) != 4 {
		t.Fatalf("%d partitions, want 4", len(parts))
	}
	var merged Stats
	for _, p := range parts {
		merged.add(p)
	}
	if merged.Points != res.Stats.Points {
		t.Errorf("merged Points = %d, result reports %d", merged.Points, res.Stats.Points)
	}
	if merged.DistanceComps != res.Stats.DistanceComps {
		t.Errorf("merged DistanceComps = %d, result reports %d", merged.DistanceComps, res.Stats.DistanceComps)
	}
	// The driver-side merge phase is the only source of GroupsMerged; the
	// workers must not have claimed any.
	if merged.GroupsMerged != 0 {
		t.Errorf("workers reported %d merges; merging happens on the driver", merged.GroupsMerged)
	}
}

// TestStatsAddCoversAllFields locks the contract between Stats.add and the
// parallel executor: every counter field must be summed when partition stats
// are folded together. Rounds is the one deliberate exception (it counts
// grouping passes, not per-partition work). Reflection catches any future
// Stats field that is added to the struct but forgotten in add.
func TestStatsAddCoversAllFields(t *testing.T) {
	var sum, part Stats
	pv := reflect.ValueOf(&part).Elem()
	for i := 0; i < pv.NumField(); i++ {
		pv.Field(i).SetInt(int64(i + 1))
	}
	sum.add(part)
	sum.add(part)
	sv := reflect.ValueOf(&sum).Elem()
	for i := 0; i < sv.NumField(); i++ {
		name := sv.Type().Field(i).Name
		got := sv.Field(i).Int()
		if name == "Rounds" {
			if got != 0 {
				t.Errorf("Rounds must not be summed across partitions, got %d", got)
			}
			continue
		}
		if want := int64(2 * (i + 1)); got != want {
			t.Errorf("Stats.add drops or miscounts field %s: got %d, want %d", name, got, want)
		}
	}
}

func BenchmarkParallelAnyVsSequential(b *testing.B) {
	r := rand.New(rand.NewSource(102))
	pts := randomPoints(r, 30000, 2, 30)
	opt := Options{Metric: geom.L2, Eps: 0.5}
	b.Run("sequential-index", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			o := opt
			o.Algorithm = IndexBounds
			if _, err := SGBAny(pts, o); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("parallel-grid", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := SGBAnyParallel(pts, opt, 0); err != nil {
				b.Fatal(err)
			}
		}
	})
}
