package core

import (
	"math/rand"
	"reflect"
	"testing"

	"sgb/internal/geom"
)

// TestAddColsMatchesAdd pins the columnar entry points to the row-at-a-time
// ones: feeding a batch through AddCols must produce exactly the groups,
// dropped set, and merge counts of an Add loop over the same points, for
// every semantics × algorithm combination, on adversarial cell-boundary
// inputs.
func TestAddColsMatchesAdd(t *testing.T) {
	r := rand.New(rand.NewSource(77))
	for _, m := range []geom.Metric{geom.L2, geom.LInf, geom.L1} {
		for _, dim := range []int{1, 2, 3} {
			pts := adversarialPoints(r, 150, dim, 0.5)
			cols := geom.ColsFromPoints(pts)

			for _, ov := range []Overlap{JoinAny, Eliminate, FormNewGroup} {
				for _, alg := range []Algorithm{AllPairs, BoundsChecking, IndexBounds} {
					opt := Options{Metric: m, Eps: 0.5, Overlap: ov, Algorithm: alg}
					want, err := SGBAll(pts, opt)
					if err != nil {
						t.Fatal(err)
					}
					got, err := SGBAllCols(cols, opt)
					if err != nil {
						t.Fatal(err)
					}
					if !reflect.DeepEqual(got.Groups, want.Groups) || !reflect.DeepEqual(got.Dropped, want.Dropped) {
						t.Fatalf("SGB-All %v/%v/dim%d: columnar batch feed differs from Add loop", m, alg, dim)
					}
					if got.Stats != want.Stats {
						t.Fatalf("SGB-All %v/%v/dim%d: stats differ: %+v vs %+v", m, alg, dim, got.Stats, want.Stats)
					}
				}
			}

			for _, alg := range []Algorithm{AllPairs, IndexBounds} {
				opt := Options{Metric: m, Eps: 0.5, Algorithm: alg}
				want, err := SGBAny(pts, opt)
				if err != nil {
					t.Fatal(err)
				}
				got, err := SGBAnyCols(cols, opt)
				if err != nil {
					t.Fatal(err)
				}
				if !reflect.DeepEqual(got.Groups, want.Groups) {
					t.Fatalf("SGB-Any %v/%v/dim%d: columnar batch feed differs from Add loop", m, alg, dim)
				}
				if got.Stats != want.Stats {
					t.Fatalf("SGB-Any %v/%v/dim%d: stats differ: %+v vs %+v", m, alg, dim, got.Stats, want.Stats)
				}
			}
		}
	}
}

// TestParallelColsMatchesSerial pins the columnar parallel path against the
// serial reference across worker counts on adversarial cell-boundary inputs.
// Run under -race this also exercises the shared-slab read paths.
func TestParallelColsMatchesSerial(t *testing.T) {
	r := rand.New(rand.NewSource(78))
	for _, m := range []geom.Metric{geom.L2, geom.LInf, geom.L1} {
		for _, eps := range []float64{0.25, 1.5} {
			pts := adversarialPoints(r, 120+r.Intn(80), 2, eps)
			cols := geom.ColsFromPoints(pts)
			opt := Options{Metric: m, Eps: eps}
			seqOpt := opt
			seqOpt.Algorithm = AllPairs
			want, err := SGBAny(pts, seqOpt)
			if err != nil {
				t.Fatal(err)
			}
			for _, workers := range []int{1, 2, 4} {
				got, err := SGBAnyParallelCols(cols, opt, workers)
				if err != nil {
					t.Fatal(err)
				}
				if !reflect.DeepEqual(got.Groups, want.Groups) {
					t.Fatalf("%v/eps%g/workers%d: columnar parallel grouping differs", m, eps, workers)
				}
			}
			// The row-major wrapper and the columnar entry point must agree
			// exactly, stats included (they share one implementation).
			a, err := SGBAnyParallel(pts, opt, 3)
			if err != nil {
				t.Fatal(err)
			}
			b, err := SGBAnyParallelCols(cols, opt, 3)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(a.Groups, b.Groups) || a.Stats != b.Stats {
				t.Fatalf("%v/eps%g: Point wrapper and Cols entry point disagree", m, eps)
			}
		}
	}
}

// TestGrouperSteadyStateAllocs pins the kernel probing of the streaming
// groupers allocation-free in steady state: once the scratch buffers have
// grown, Add must not allocate per probe beyond the per-point bookkeeping
// (point storage, union-find slot, index node amortization).
func TestGrouperSteadyStateAllocs(t *testing.T) {
	r := rand.New(rand.NewSource(79))
	g, err := NewAnyGrouper(Options{Metric: geom.L2, Eps: 0.25, Algorithm: AllPairs})
	if err != nil {
		t.Fatal(err)
	}
	// Warm: grow the columnar store and kernel scratch.
	for i := 0; i < 2000; i++ {
		if _, err := g.Add(geom.Point{r.Float64(), r.Float64()}); err != nil {
			t.Fatal(err)
		}
	}
	p := geom.Point{0.5, 0.5}
	// Each Add appends one point (amortized growth) and probes 2000+ points
	// through the kernels. The kernel calls themselves must contribute no
	// allocations; a generous bound of 4 covers amortized slice growth of
	// the stores.
	avg := testing.AllocsPerRun(200, func() {
		if _, err := g.Add(p); err != nil {
			t.Fatal(err)
		}
	})
	if avg > 4 {
		t.Fatalf("AnyGrouper.Add allocates %.1f per call in steady state, want <= 4", avg)
	}
}
