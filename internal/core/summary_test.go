package core

import (
	"math"
	"math/rand"
	"testing"

	"sgb/internal/geom"
)

func TestSummarizeBasics(t *testing.T) {
	pts := []geom.Point{{0, 0}, {2, 0}, {2, 2}, {0, 2}, {10, 10}}
	res, err := SGBAll(pts, Options{Metric: geom.LInf, Eps: 2.5, Overlap: JoinAny, Algorithm: IndexBounds})
	if err != nil {
		t.Fatal(err)
	}
	sums, err := Summarize(pts, res, geom.LInf)
	if err != nil {
		t.Fatal(err)
	}
	if len(sums) != len(res.Groups) {
		t.Fatalf("%d summaries for %d groups", len(sums), len(res.Groups))
	}
	// The square group.
	var sq *GroupSummary
	for i := range sums {
		if sums[i].Size == 4 {
			sq = &sums[i]
		}
	}
	if sq == nil {
		t.Fatalf("square group missing: %+v", sums)
	}
	if sq.Centroid[0] != 1 || sq.Centroid[1] != 1 {
		t.Errorf("centroid = %v", sq.Centroid)
	}
	if !sq.MBR.Equal(geom.NewRect(geom.Point{0, 0}, geom.Point{2, 2})) {
		t.Errorf("MBR = %v", sq.MBR)
	}
	if len(sq.Hull) != 4 {
		t.Errorf("hull has %d vertices", len(sq.Hull))
	}
	if sq.Diameter != 2 { // LInf diameter of the square
		t.Errorf("diameter = %v", sq.Diameter)
	}
}

// TestSummarizeDiameterBound: SGB-All group diameters never exceed ε under
// the grouping metric.
func TestSummarizeDiameterBound(t *testing.T) {
	r := rand.New(rand.NewSource(120))
	for _, m := range []geom.Metric{geom.L2, geom.LInf, geom.L1} {
		pts := randomPoints(r, 300, 2, 8)
		eps := 1.2
		res, err := SGBAll(pts, Options{Metric: m, Eps: eps, Overlap: JoinAny, Algorithm: IndexBounds})
		if err != nil {
			t.Fatal(err)
		}
		sums, err := Summarize(pts, res, m)
		if err != nil {
			t.Fatal(err)
		}
		for i, s := range sums {
			if s.Diameter > eps+1e-9 {
				t.Fatalf("%v: group %d diameter %v exceeds eps %v", m, i, s.Diameter, eps)
			}
			if !s.MBR.Contains(s.Centroid) {
				t.Fatalf("%v: centroid outside MBR", m)
			}
		}
	}
}

func TestSummarizeThreeD(t *testing.T) {
	pts := []geom.Point{{0, 0, 0}, {1, 0, 0}, {0, 1, 1}}
	res, err := SGBAny(pts, Options{Metric: geom.L2, Eps: 2, Algorithm: AllPairs})
	if err != nil {
		t.Fatal(err)
	}
	sums, err := Summarize(pts, res, geom.L2)
	if err != nil {
		t.Fatal(err)
	}
	if len(sums) != 1 || sums[0].Hull != nil {
		t.Fatalf("3-D summary should not carry a hull: %+v", sums)
	}
	want := math.Sqrt(3)
	if math.Abs(sums[0].Diameter-want) > 1e-12 {
		t.Fatalf("diameter = %v, want %v", sums[0].Diameter, want)
	}
}

func TestSummarizeErrors(t *testing.T) {
	pts := []geom.Point{{0, 0}}
	if _, err := Summarize(pts, &Result{Groups: []Group{{IDs: []int{5}}}}, geom.L2); err == nil {
		t.Error("out-of-range member accepted")
	}
	if _, err := Summarize(pts, &Result{Groups: []Group{{}}}, geom.L2); err == nil {
		t.Error("empty group accepted")
	}
}
