package core

import (
	"context"
	"fmt"
	"sort"

	"sgb/internal/geom"
	"sgb/internal/rtree"
	"sgb/internal/unionfind"
)

// AnyGrouper is a streaming SGB-Any operator instance (Procedure 7). Group
// identity is tracked in a Union-Find forest: a new point unions with every
// ε-neighbour, which transparently merges all candidate groups into one
// (Procedure 9's MergeGroupsInsert).
type AnyGrouper struct {
	opt    Options
	dim    int
	points []geom.Point
	uf     *unionfind.Forest
	tree   *rtree.Tree // IndexBounds only (Points_IX)

	stats    Stats
	finished bool

	// ctx, when set via WithContext, lets a canceled or deadline-expired
	// query abort the grouping mid-stream; ctxTick strides the polls.
	ctx     context.Context
	ctxTick uint64
}

// NewAnyGrouper returns a streaming SGB-Any operator configured by opt. The
// Overlap clause is ignored: overlapping groups always merge. Supported
// algorithms are AllPairs and IndexBounds; the rectangle formulation of
// BoundsChecking does not apply to the distance-to-any semantics (§7.1) and
// is rejected.
func NewAnyGrouper(opt Options) (*AnyGrouper, error) {
	opt.Overlap = JoinAny // irrelevant for SGB-Any; normalize for Validate
	if err := opt.Validate(); err != nil {
		return nil, err
	}
	if opt.Algorithm == BoundsChecking {
		return nil, fmt.Errorf("core: SGB-Any has no Bounds-Checking variant (use AllPairs or IndexBounds)")
	}
	return &AnyGrouper{opt: opt, uf: &unionfind.Forest{}}, nil
}

// WithContext arms the grouper with a cancellation context: Add returns
// ctx.Err() promptly once ctx is done. It returns g for chaining.
func (g *AnyGrouper) WithContext(ctx context.Context) *AnyGrouper {
	g.ctx = ctx
	return g
}

// checkCtx polls the context every ctxCheckStride calls.
func (g *AnyGrouper) checkCtx() error {
	if g.ctx == nil {
		return nil
	}
	g.ctxTick++
	if g.ctxTick%ctxCheckStride != 0 {
		return nil
	}
	return g.ctx.Err()
}

// Add feeds the next point, in input order, and returns its point id.
func (g *AnyGrouper) Add(p geom.Point) (int, error) {
	if g.finished {
		return 0, fmt.Errorf("core: Add after Finish")
	}
	if err := checkFinite(p); err != nil {
		return 0, err
	}
	if err := g.checkCtx(); err != nil {
		return 0, err
	}
	if g.dim == 0 {
		if len(p) == 0 {
			return 0, fmt.Errorf("core: zero-dimensional point")
		}
		g.dim = len(p)
		if g.opt.Algorithm == IndexBounds {
			g.tree = rtree.New(g.dim)
		}
	} else if len(p) != g.dim {
		return 0, ErrDimensionMismatch
	}
	id := len(g.points)
	g.points = append(g.points, p)
	g.uf.MakeSet()
	g.stats.Points++

	switch g.opt.Algorithm {
	case AllPairs:
		// Naive FindCandidateGroups: probe every processed point.
		for q := 0; q < id; q++ {
			g.stats.DistanceComps++
			if geom.Within(g.opt.Metric, p, g.points[q], g.opt.Eps) {
				g.union(id, q)
			}
		}
	case IndexBounds:
		// FindCandidateGroups (Procedure 8): a window query on Points_IX
		// retrieves the points within ε under L∞ exactly; under L2 the
		// box is a conservative filter and VerifyPoints re-checks each
		// hit with the exact distance.
		pBox := geom.BoxAround(p, g.opt.Eps)
		g.stats.WindowQueries++
		verify := g.opt.Metric != geom.LInf // box hits are exact under L∞ only
		g.tree.Search(pBox, func(ref int64) bool {
			q := int(ref)
			if verify {
				g.stats.DistanceComps++
				if !geom.Within(g.opt.Metric, p, g.points[q], g.opt.Eps) {
					return true
				}
			}
			g.union(id, q)
			return true
		})
		g.tree.Insert(geom.PointRect(p), int64(id))
		g.stats.IndexUpdates++
	}
	return id, nil
}

// union merges the groups of a and b, counting actual merges.
func (g *AnyGrouper) union(a, b int) {
	if g.uf.Find(a) != g.uf.Find(b) {
		g.stats.GroupsMerged++
		g.uf.Union(a, b)
	}
}

// Finish materializes the connected components as groups. The grouper cannot
// be reused afterwards.
func (g *AnyGrouper) Finish() (*Result, error) {
	if g.finished {
		return nil, fmt.Errorf("core: Finish called twice")
	}
	g.finished = true
	g.stats.Rounds = 1
	res := &Result{Stats: g.stats}
	for _, ids := range g.uf.Groups() {
		sort.Ints(ids)
		res.Groups = append(res.Groups, Group{IDs: ids})
	}
	sort.Slice(res.Groups, func(i, j int) bool {
		return res.Groups[i].IDs[0] < res.Groups[j].IDs[0]
	})
	return res, nil
}

// SGBAny groups points with the DISTANCE-TO-ANY semantics in input order and
// returns the final grouping. It is the batch convenience wrapper around
// AnyGrouper.
func SGBAny(points []geom.Point, opt Options) (*Result, error) {
	g, err := NewAnyGrouper(opt)
	if err != nil {
		return nil, err
	}
	for _, p := range points {
		if _, err := g.Add(p); err != nil {
			return nil, err
		}
	}
	return g.Finish()
}
